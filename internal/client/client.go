// Package client implements the GekkoFS client library (paper §III-B,
// Fig. 1). The paper's client is an LD_PRELOAD interposition library; the
// Go-native equivalent exposes the same operations as methods. Everything
// behind the call boundary is faithful to the paper:
//
//   - a file map tracks open files independently of the kernel,
//   - every operation resolves its target daemon locally by hashing
//     (no central placement tables),
//   - reads and writes are split into chunk spans and issued as parallel
//     RPCs to the owning daemons, with data in bulk regions,
//   - operations are synchronous and cache-less by default; the opt-in
//     exceptions are the paper's size-update cache for the shared-file
//     bottleneck (§IV-B), the write-behind pipeline (pipeline.go) and
//     the read-ahead pipeline with its chunk cache (readahead.go),
//   - rename, links and permissions are unsupported (§III-A).
package client

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/distributor"
	"repro/internal/meta"
	"repro/internal/proto"
	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// Re-exported flag bits (values match package os).
const (
	O_RDONLY = os.O_RDONLY
	O_WRONLY = os.O_WRONLY
	O_RDWR   = os.O_RDWR
	O_CREATE = os.O_CREATE
	O_EXCL   = os.O_EXCL
	O_TRUNC  = os.O_TRUNC
	O_APPEND = os.O_APPEND
)

// ErrBadFD reports an operation on an unknown or closed file descriptor.
var ErrBadFD = errors.New("gekkofs: bad file descriptor")

// Config wires a client to a cluster.
type Config struct {
	// Conns are connections to every daemon, indexed like the
	// distributor's node space.
	Conns []rpc.Conn
	// Dist resolves paths and chunks to daemons. Nil selects the paper's
	// SimpleHash over len(Conns).
	Dist distributor.Distributor
	// ChunkSize must match the daemons'. Zero selects the default
	// (512 KiB).
	ChunkSize int64
	// SizeCacheOps > 0 buffers file-size updates client-side and flushes
	// them every SizeCacheOps writes (and on close/sync) — the paper's
	// shared-file fix. Zero keeps the strict synchronous protocol.
	SizeCacheOps int
	// AsyncWrites enables the write-behind pipeline: Write/WriteAt stage
	// chunk RPCs into a bounded per-descriptor window and return
	// immediately; Fsync/Close drain the window and flush the size
	// candidate; errors latch and surface on the next write or barrier
	// (see pipeline.go). Size updates are always deferred to barriers in
	// this mode — SizeCacheOps is subsumed and ignored.
	AsyncWrites bool
	// WriteWindow bounds in-flight chunk-write RPCs per descriptor when
	// AsyncWrites is on. Zero selects DefaultWriteWindow.
	WriteWindow int
	// ReadAhead enables the sequential read-ahead pipeline on every
	// read-capable descriptor: once a descriptor's reads are sequential,
	// the next chunk-sized blocks are speculatively fetched into a
	// bounded in-flight window and served from the chunk cache (see
	// readahead.go). OpenReadAhead enables it per descriptor regardless.
	ReadAhead bool
	// ReadWindow bounds in-flight prefetch span fetches per descriptor
	// when read-ahead is on (each fetch covers up to prefetchSpanChunks
	// chunks in one RPC wave). Zero selects DefaultReadWindow.
	ReadWindow int
	// CacheBytes bounds the client-side chunk cache (LRU over pooled
	// buffers). Any positive value enables the cache even without
	// ReadAhead — demand reads deposit the blocks they cover, so
	// re-reads of cached data move zero wire bytes. Zero sizes the cache
	// at DefaultCacheBytes if and when read-ahead needs it.
	CacheBytes int64
	// Replicas is the chunk replication factor R. R > 1 writes every
	// chunk to the R daemons of its replica chain, reads with hedging
	// and failover over the chain, and routes around condemned daemons
	// (see replica.go). 0 or 1 keeps the unreplicated protocol
	// bit-for-bit. Must not exceed the daemon count — a silent clamp
	// would fake a durability level the cluster cannot provide.
	Replicas int
	// Telemetry, when non-nil, receives the client's metrics: per-RPC
	// round-trip histograms, the in-flight gauge, pool/segment wait
	// histograms and the replication counters (see
	// internal/telemetry/names.go). Nil disables all recording — the
	// instrumented paths reduce to single branches.
	Telemetry *telemetry.Registry
	// TraceSample sets the RPC trace sampling interval: every N-th call
	// carries a trace ID to the daemon and both ends log a span event.
	// Zero selects DefaultTraceSample; sampling requires Telemetry.
	TraceSample int
}

// Client is one application's view of the file system.
type Client struct {
	conns        []rpc.Conn
	dist         distributor.Distributor
	chunkSize    int64
	sizeCacheOps int
	asyncWrites  bool
	writeWindow  int
	readAhead    bool
	readWindow   int
	cacheBytes   int64
	replicas     int
	readDirPage  uint32 // entries requested per OpReadDir page

	// Replication state (replica.go): per-daemon health records and the
	// client-side counters behind Stats(). health is sized like conns
	// and never reallocated, so entries are addressed lock-free.
	health        []daemonHealth
	hedgedReads   atomic.Uint64
	failoverReads atomic.Uint64
	replicaWrites atomic.Uint64

	// tel is the client metric set (telemetry.go); zero-valued (all nil
	// metrics) when Config.Telemetry was nil.
	tel clientTelemetry

	// cache is the chunk cache (readahead.go), created eagerly when the
	// configuration asks for one and lazily by the first OpenReadAhead
	// otherwise; nil means no caching anywhere on the read path.
	cache     atomic.Pointer[chunkCache]
	cacheInit sync.Mutex

	mu     sync.Mutex
	files  map[int]*openFile // guarded by mu
	nextFD int               // guarded by mu
}

// openFile is a file-map slot.
type openFile struct {
	mu    sync.Mutex
	path  string
	flags int
	pos   int64

	// Size-update cache state (active when Client.sizeCacheOps > 0).
	// pendingSize is the max unflushed size candidate (0 = none); it is
	// atomic so lock-free readers (ReadAt's EOF clamp) can consult it.
	pendingSize atomic.Int64
	pendingOps  int

	// Write-behind state (active when Client.asyncWrites). pl is the
	// descriptor's in-flight window; sizeDirty marks an unflushed
	// pendingSize candidate awaiting the next barrier. Both are guarded
	// by mu.
	pl        *pipeline
	sizeDirty bool

	// Read-ahead state (active when the client or this open enabled it):
	// the sequential-access detector and the prefetch window. Owns its
	// own lock — ReadAt runs off the descriptor lock.
	ra *readahead
}

// sizeFloor returns the best known lower bound for the file size: the
// server's view, raised by this descriptor's own unflushed size candidate.
// Without it, consecutive cached appends would resolve EOF from the stale
// server size and overwrite each other, and reads-after-cached-writes
// would clamp short.
func (of *openFile) sizeFloor(serverSize int64) int64 {
	if ps := of.pendingSize.Load(); ps > serverSize {
		return ps
	}
	return serverSize
}

// New builds a client.
func New(cfg Config) (*Client, error) {
	if len(cfg.Conns) == 0 {
		return nil, errors.New("client: no daemon connections")
	}
	if cfg.Dist == nil {
		cfg.Dist = distributor.NewSimpleHash(len(cfg.Conns))
	}
	if cfg.Dist.Nodes() != len(cfg.Conns) {
		return nil, fmt.Errorf("client: distributor spans %d nodes, have %d conns",
			cfg.Dist.Nodes(), len(cfg.Conns))
	}
	if cfg.ChunkSize == 0 {
		cfg.ChunkSize = meta.DefaultChunkSize
	}
	if cfg.ChunkSize < 0 {
		return nil, fmt.Errorf("client: invalid chunk size %d", cfg.ChunkSize)
	}
	if cfg.WriteWindow < 0 {
		return nil, fmt.Errorf("client: invalid write window %d", cfg.WriteWindow)
	}
	if cfg.ReadWindow < 0 {
		return nil, fmt.Errorf("client: invalid read window %d", cfg.ReadWindow)
	}
	if cfg.CacheBytes < 0 {
		return nil, fmt.Errorf("client: invalid cache size %d", cfg.CacheBytes)
	}
	if cfg.Replicas < 0 {
		return nil, fmt.Errorf("client: invalid replication factor %d", cfg.Replicas)
	}
	if cfg.Replicas > len(cfg.Conns) {
		return nil, fmt.Errorf("client: replication factor %d exceeds %d daemons — %d distinct replicas cannot exist",
			cfg.Replicas, len(cfg.Conns), cfg.Replicas)
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 1
	}
	c := &Client{
		conns:        cfg.Conns,
		dist:         cfg.Dist,
		chunkSize:    cfg.ChunkSize,
		sizeCacheOps: cfg.SizeCacheOps,
		asyncWrites:  cfg.AsyncWrites,
		writeWindow:  cfg.WriteWindow,
		readAhead:    cfg.ReadAhead,
		readWindow:   cfg.ReadWindow,
		cacheBytes:   cfg.CacheBytes,
		replicas:     cfg.Replicas,
		readDirPage:  proto.DefaultReadDirPage,
		health:       make([]daemonHealth, len(cfg.Conns)),
		files:        make(map[int]*openFile),
		nextFD:       3,
	}
	if cfg.ReadAhead || cfg.CacheBytes > 0 {
		c.cache.Store(newChunkCache(cfg.CacheBytes))
	}
	c.initTelemetry(cfg.Telemetry, cfg.TraceSample)
	return c, nil
}

// ChunkSize returns the configured chunk size.
func (c *Client) ChunkSize() int64 { return c.chunkSize }

// call issues one RPC and peels the errno header off the response.
// This is the client's RPC chokepoint: round-trip timing, the
// in-flight gauge and trace sampling all live here, so every caller —
// metadata, chunk I/O, replication retries — is covered.
func (c *Client) call(node int, op rpc.Op, payload, bulk []byte, dir rpc.BulkDir) (*rpc.Dec, error) {
	var resp []byte
	var err error
	if c.tel.reg == nil {
		resp, err = c.conns[node].Call(op, payload, bulk, dir)
	} else {
		tr := c.nextTrace()
		c.tel.inflight.Add(1)
		t0 := time.Now()
		resp, err = rpc.CallTrace(c.conns[node], op, payload, bulk, dir, tr)
		elapsed := time.Since(t0)
		c.tel.inflight.Add(-1)
		c.tel.rpcHist(op).Observe(int64(elapsed))
		if tr.Sampled() {
			c.emitTrace(node, op, tr, elapsed, err)
		}
	}
	if err != nil {
		return nil, err
	}
	d := rpc.NewDec(resp)
	if errno := proto.Errno(d.U16()); errno != proto.OK {
		return nil, errno.Err()
	}
	return d, nil
}

// fanOut runs fn for every daemon in parallel and returns the first error.
func (c *Client) fanOut(fn func(node int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(c.conns))
	for n := range c.conns {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			errs[n] = fn(n)
		}(n)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// EnsureRoot creates the root directory record if missing. Mount calls it
// once; it is idempotent across clients.
func (c *Client) EnsureRoot() error {
	err := c.createPath(meta.Root, meta.ModeDir)
	if errors.Is(err, proto.ErrExist) {
		return nil
	}
	return err
}

func (c *Client) createPath(path string, mode meta.Mode) error {
	e := rpc.NewEnc(len(path) + 16)
	e.Str(path).U8(uint8(mode)).I64(time.Now().UnixNano())
	_, err := c.call(c.dist.MetaTarget(path), proto.OpCreate, e.Bytes(), nil, rpc.BulkNone)
	return err
}

// statPath fetches a path's metadata.
func (c *Client) statPath(path string) (meta.Metadata, error) {
	e := rpc.NewEnc(len(path) + 4)
	e.Str(path)
	d, err := c.call(c.dist.MetaTarget(path), proto.OpStat, e.Bytes(), nil, rpc.BulkNone)
	if err != nil {
		return meta.Metadata{}, err
	}
	blob := d.Blob()
	if err := d.Done(); err != nil {
		return meta.Metadata{}, err
	}
	return meta.DecodeMetadata(blob)
}

// Mkdir creates a directory. The parent must exist (one stat RPC); the
// entry itself is a single KV insert — directories carry no entry lists.
func (c *Client) Mkdir(path string) error {
	p, err := meta.Clean(path)
	if err != nil {
		return err
	}
	if p == meta.Root {
		return proto.ErrExist
	}
	if parent := meta.Parent(p); parent != meta.Root {
		md, err := c.statPath(parent)
		if err != nil {
			return err
		}
		if !md.IsDir() {
			return proto.ErrNotDir
		}
	}
	return c.createPath(p, meta.ModeDir)
}

// MkdirAll creates path and any missing parents, tolerating components
// that already exist. One RPC per component; the facade's MkdirAll and
// staging's destination-root creation share it.
func (c *Client) MkdirAll(path string) error {
	p, err := meta.Clean(path)
	if err != nil {
		return err
	}
	if p == meta.Root {
		return nil
	}
	cur := ""
	for _, part := range strings.Split(strings.TrimPrefix(p, "/"), "/") {
		cur += "/" + part
		if err := c.Mkdir(cur); err != nil && !errors.Is(err, proto.ErrExist) {
			return err
		}
	}
	return nil
}

// Open opens (and with O_CREATE creates) a file, returning a descriptor
// from the client-side file map. Directories cannot be opened; GekkoFS
// applications list them via ReadDir.
func (c *Client) Open(path string, flags int) (int, error) {
	return c.open(path, flags, c.readAhead)
}

// OpenReadAhead opens path like Open but with the sequential read-ahead
// pipeline enabled on the returned descriptor even when the client was
// configured without Config.ReadAhead, creating the chunk cache on first
// use. Staging's stage-out workers use it: their reads are sequential by
// construction, so the prefetch window converts the read fan-out's
// round-trip latency into pipelined throughput.
func (c *Client) OpenReadAhead(path string, flags int) (int, error) {
	return c.open(path, flags, true)
}

func (c *Client) open(path string, flags int, readAhead bool) (int, error) {
	p, err := meta.Clean(path)
	if err != nil {
		return -1, err
	}
	accMode := flags & (O_RDONLY | O_WRONLY | O_RDWR)
	if flags&O_CREATE != 0 {
		// The flat namespace makes file creation a single RPC: no parent
		// lookups, no directory entry insertion (paper §III-B).
		err := c.createPath(p, meta.ModeRegular)
		switch {
		case err == nil:
		case errors.Is(err, proto.ErrExist):
			if flags&O_EXCL != 0 {
				return -1, proto.ErrExist
			}
			md, err := c.statPath(p)
			if err != nil {
				return -1, err
			}
			if md.IsDir() {
				return -1, proto.ErrIsDir
			}
			if flags&O_TRUNC != 0 && md.Size > 0 {
				if err := c.Truncate(p, 0); err != nil {
					return -1, err
				}
			}
		default:
			return -1, err
		}
	} else {
		md, err := c.statPath(p)
		if err != nil {
			return -1, err
		}
		if md.IsDir() {
			return -1, proto.ErrIsDir
		}
		if flags&O_TRUNC != 0 && accMode != O_RDONLY && md.Size > 0 {
			if err := c.Truncate(p, 0); err != nil {
				return -1, err
			}
		}
	}

	of := &openFile{path: p, flags: flags}
	if c.asyncWrites && accMode != O_RDONLY {
		of.pl = newPipeline(c.writeWindow)
		// A latched write failure leaves the failed byte ranges
		// undefined; a cached pre-write image must not paper over that.
		of.pl.onFail = func() { c.cacheDropPath(p) }
	}
	if readAhead && accMode != O_WRONLY {
		cc := c.ensureCache()
		// The in-flight window must fit comfortably inside the cache:
		// reservations beyond it would force the eviction scan to shed
		// blocks the reader has not consumed yet — prefetching ahead of
		// what the cache can hold is pure thrash.
		span := c.chunkSize * prefetchSpanChunks
		maxWindow := max(1, int(cc.cap/(2*span)))
		window := c.readWindow
		if window <= 0 {
			window = DefaultReadWindow
		}
		of.ra = newReadahead(min(window, maxWindow))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	fd := c.nextFD
	c.nextFD++
	c.files[fd] = of
	return fd, nil
}

// Create is shorthand for Open(path, O_RDWR|O_CREATE|O_TRUNC).
func (c *Client) Create(path string) (int, error) {
	return c.Open(path, O_RDWR|O_CREATE|O_TRUNC)
}

func (c *Client) lookupFD(fd int) (*openFile, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	of, ok := c.files[fd]
	if !ok {
		return nil, ErrBadFD
	}
	return of, nil
}

// Close releases a descriptor. It is a barrier: under AsyncWrites it
// drains the descriptor's in-flight window and surfaces any latched
// write error; in every mode it flushes cached size updates. The
// descriptor is released even when the barrier reports an error.
func (c *Client) Close(fd int) error {
	c.mu.Lock()
	of, ok := c.files[fd]
	delete(c.files, fd)
	c.mu.Unlock()
	if !ok {
		return ErrBadFD
	}
	of.mu.Lock()
	defer of.mu.Unlock()
	return c.barrierLocked(of)
}

// Fsync is the write barrier. Under AsyncWrites it drains the
// descriptor's in-flight window, surfaces any latched write error
// (exactly once), and flushes the cached size candidate; a nil return
// means every prior write on this descriptor is stored and its size is
// visible cluster-wide. In the synchronous modes data needs no flushing —
// every write RPC is acknowledged only after the daemon stored it — so
// only cached size updates move.
func (c *Client) Fsync(fd int) error {
	of, err := c.lookupFD(fd)
	if err != nil {
		return err
	}
	of.mu.Lock()
	defer of.mu.Unlock()
	return c.barrierLocked(of)
}

// barrierLocked drains the descriptor's write-behind window (when one
// exists) and flushes its size state. Caller holds of.mu. Both the
// latched write error and a size-flush failure are reported; the write
// error is cleared (surfaced exactly once), and after a failed write the
// affected byte ranges are undefined — temporary-FS semantics leave
// recovery (rewrite or discard) to the application.
func (c *Client) barrierLocked(of *openFile) error {
	if of.pl == nil {
		return c.flushSizeLocked(of)
	}
	of.pl.drain()
	werr := of.pl.takeErr()
	serr := c.flushAsyncSizeLocked(of)
	return errors.Join(werr, serr)
}

// VerifyProtocol pings every daemon and checks it speaks this client's
// protocol generation. Deployments carry no per-message version tags, so
// this is the guard that turns a mixed-generation cluster into one clear
// mount-time error instead of undecodable replies mid-I/O.
//
// With replication (Config.Replicas > 1) up to R−1 unreachable daemons
// are tolerated — they are condemned instead of failing the mount, so a
// cluster that lost a daemon can still be mounted to read the surviving
// replicas. A daemon that answers with the wrong protocol version is
// always a hard error: it is alive and will keep corrupting placement.
func (c *Client) VerifyProtocol() error {
	errs := make([]error, len(c.conns))
	var wg sync.WaitGroup
	for n := range c.conns {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			d, err := c.call(node, proto.OpPing, nil, nil, rpc.BulkNone)
			if err != nil {
				errs[node] = err
				return
			}
			_ = d.U32() // daemon ID
			if d.Remaining() < 2 {
				errs[node] = fmt.Errorf("client: daemon %d predates protocol version %d (no version in ping reply)",
					node, proto.ProtocolVersion)
				return
			}
			if v := d.U16(); v != proto.ProtocolVersion {
				errs[node] = fmt.Errorf("client: daemon %d speaks protocol version %d, client requires %d",
					node, v, proto.ProtocolVersion)
			}
		}(n)
	}
	wg.Wait()
	budget := c.replicas - 1
	for node, err := range errs {
		if err != nil && budget > 0 && transportError(err) {
			c.condemn(node)
			errs[node] = nil
			budget--
		}
	}
	return errors.Join(errs...)
}

// PathOf reports the path behind a descriptor (tooling).
func (c *Client) PathOf(fd int) (string, error) {
	of, err := c.lookupFD(fd)
	if err != nil {
		return "", err
	}
	return of.path, nil
}

// Seek adjusts a descriptor's position. SEEK_END costs one stat RPC.
func (c *Client) Seek(fd int, offset int64, whence int) (int64, error) {
	of, err := c.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	of.mu.Lock()
	defer of.mu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = of.pos
	case io.SeekEnd:
		md, err := c.statPath(of.path)
		if err != nil {
			return 0, err
		}
		base = of.sizeFloor(md.Size)
	default:
		return 0, proto.ErrInval
	}
	np := base + offset
	if np < 0 {
		return 0, proto.ErrInval
	}
	of.pos = np
	return np, nil
}

// Stat returns a path's file information.
func (c *Client) Stat(path string) (FileInfo, error) {
	p, err := meta.Clean(path)
	if err != nil {
		return FileInfo{}, err
	}
	md, err := c.statPath(p)
	if err != nil {
		return FileInfo{}, err
	}
	return infoFromMeta(p, md), nil
}

// FileInfo describes a file or directory.
type FileInfo struct {
	name  string
	size  int64
	isDir bool
	mtime time.Time
	ctime time.Time
}

func infoFromMeta(path string, md meta.Metadata) FileInfo {
	return FileInfo{
		name:  meta.Base(path),
		size:  md.Size,
		isDir: md.IsDir(),
		mtime: time.Unix(0, md.MTimeNS),
		ctime: time.Unix(0, md.CTimeNS),
	}
}

// Name returns the base name.
func (fi FileInfo) Name() string { return fi.name }

// Size returns the size in bytes.
func (fi FileInfo) Size() int64 { return fi.size }

// IsDir reports whether the entry is a directory.
func (fi FileInfo) IsDir() bool { return fi.isDir }

// ModTime returns the last modification time.
func (fi FileInfo) ModTime() time.Time { return fi.mtime }

// CreateTime returns the creation time.
func (fi FileInfo) CreateTime() time.Time { return fi.ctime }

// DirEntry is one directory listing element.
type DirEntry struct {
	// Name is the entry's base name.
	Name string
	// IsDir reports whether the entry is a directory.
	IsDir bool
	// Size is the size observed during the scan (eventually consistent).
	Size int64
}

// ReadDir lists a directory by gathering per-daemon scans, draining each
// daemon page by page (continuation token + page limit) so listings of
// any size stream in bounded frames. The listing is eventually
// consistent: concurrent creates and removes may or may not appear (paper
// §III-A); entries that do appear are each reported by exactly one
// daemon, so there are no duplicates.
func (c *Client) ReadDir(path string) ([]DirEntry, error) {
	p, err := meta.Clean(path)
	if err != nil {
		return nil, err
	}
	if p != meta.Root {
		md, err := c.statPath(p)
		if err != nil {
			return nil, err
		}
		if !md.IsDir() {
			return nil, proto.ErrNotDir
		}
	}
	perNode := make([][]DirEntry, len(c.conns))
	err = c.fanOut(func(node int) error {
		ents, err := c.readDirNode(node, p)
		if err != nil {
			return err
		}
		perNode[node] = ents
		return nil
	})
	if err != nil {
		return nil, err
	}
	var all []DirEntry
	for _, ents := range perNode {
		all = append(all, ents...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all, nil
}

// readDirNode drains one daemon's directory scan page by page. Entry
// names are validated to be single path components: a hostile or buggy
// daemon must not be able to plant "..", "", or slash-bearing names that
// a consumer (stage-out's host-tree recreation, a recursive walk) would
// resolve outside the directory it asked about.
func (c *Client) readDirNode(node int, dir string) ([]DirEntry, error) {
	return c.readDirNodeAt(node, dir, 0, 0)
}

// readDirNodeAt is readDirNode with the v8 trailing extension: with
// proto.StatAtEpoch in flags, the daemon resolves every record at the
// given snapshot epoch instead of its live state.
func (c *Client) readDirNodeAt(node int, dir string, flags uint8, at uint64) ([]DirEntry, error) {
	var ents []DirEntry
	after := ""
	for {
		e := rpc.NewEnc(len(dir) + len(after) + 24)
		e.Str(dir).Str(after).U32(c.readDirPage)
		if flags != 0 {
			e.U8(flags)
			if flags&proto.StatAtEpoch != 0 {
				e.U64(at)
			}
		}
		d, err := c.call(node, proto.OpReadDir, e.Bytes(), nil, rpc.BulkNone)
		if err != nil {
			return nil, err
		}
		n := d.U32()
		// Each entry is at least 10 wire bytes (1-byte uvarint name length +
		// u8 kind + i64 size); a count that cannot fit the remaining frame
		// is a forged or corrupt page, not a short one.
		const minDirEntBytes = 1 + 1 + 8
		if int64(n)*minDirEntBytes > int64(d.Remaining()) {
			return nil, fmt.Errorf("gekkofs: daemon %d returned corrupt directory page (%d entries in %d bytes): %w",
				node, n, d.Remaining(), proto.ErrInval)
		}
		for i := uint32(0); i < n; i++ {
			ent := DirEntry{Name: d.Str(), IsDir: d.U8() == 1, Size: d.I64()}
			if ent.Name == "" || ent.Name == "." || ent.Name == ".." ||
				strings.ContainsRune(ent.Name, '/') {
				return nil, fmt.Errorf("gekkofs: daemon %d listed hostile entry name %q: %w",
					node, ent.Name, proto.ErrInval)
			}
			ents = append(ents, ent)
		}
		next := d.Str()
		if err := d.Done(); err != nil {
			return nil, err
		}
		if next == "" {
			return ents, nil
		}
		after = next
	}
}

// Remove unlinks a file or removes an empty directory. A regular file
// costs one metadata RPC — the daemon refuses directories via the
// RemoveFileOnly flag, so no leading stat is needed to tell them apart —
// plus chunk collection only when the file had data.
func (c *Client) Remove(path string) error {
	p, err := meta.Clean(path)
	if err != nil {
		return err
	}
	if p == meta.Root {
		return proto.ErrInval
	}
	_, size, err := c.removeMeta(p, true)
	if errors.Is(err, proto.ErrIsDir) {
		// Directory: verify it is empty, then remove without the flag.
		ents, err := c.ReadDir(p)
		if err != nil {
			return err
		}
		if len(ents) > 0 {
			return proto.ErrNotEmpty
		}
		// The record can have been swapped for a file with data between
		// the listing and this remove; honor the returned size so such a
		// file's chunks are still collected.
		_, size, err = c.removeMeta(p, false)
		if err != nil {
			return err
		}
	} else if err != nil {
		return err
	}
	// The path no longer names this file: cached blocks (including EOF
	// markers) must not survive into a future file of the same name.
	c.cacheDropPath(p)
	if size > 0 {
		return c.collectChunks([]string{p})
	}
	return nil
}

// removeMeta issues one OpRemoveMeta, reporting the removed record's mode
// and size. fileOnly asks the daemon to refuse directories with ErrIsDir.
func (c *Client) removeMeta(p string, fileOnly bool) (meta.Mode, int64, error) {
	var flags uint8
	if fileOnly {
		flags |= proto.RemoveFileOnly
	}
	e := rpc.NewEnc(len(p) + 8)
	e.Str(p).U8(flags)
	d, err := c.call(c.dist.MetaTarget(p), proto.OpRemoveMeta, e.Bytes(), nil, rpc.BulkNone)
	if err != nil {
		return 0, 0, err
	}
	mode := meta.Mode(d.U8())
	size := d.I64()
	if err := d.Done(); err != nil {
		return 0, 0, err
	}
	return mode, size, nil
}

// collectChunks removes the chunk data of paths on every daemon (chunks
// are spread everywhere): daemons are visited in parallel, the paths on
// each sequentially. Remove and RemoveMany share it.
func (c *Client) collectChunks(paths []string) error {
	return c.fanOut(func(node int) error {
		for _, p := range paths {
			e := rpc.NewEnc(len(p) + 4)
			e.Str(p)
			if _, err := c.call(node, proto.OpRemoveChunks, e.Bytes(), nil, rpc.BulkNone); err != nil {
				return err
			}
		}
		return nil
	})
}

// Truncate sets a file's size, discarding data beyond it.
func (c *Client) Truncate(path string, size int64) error {
	p, err := meta.Clean(path)
	if err != nil {
		return err
	}
	if size < 0 {
		return proto.ErrInval
	}
	// Drain this client's write-behind windows for the path first: a
	// staged chunk write landing after OpTruncateChunks would resurrect
	// discarded bytes. (Cross-client truncate-while-writing remains
	// undefined, as the paper has it; program order within this client
	// is preserved.)
	c.mu.Lock()
	var pending []*openFile
	for _, of := range c.files {
		if of.path == p && of.pl != nil {
			pending = append(pending, of)
		}
	}
	c.mu.Unlock()
	for _, of := range pending {
		of.mu.Lock()
		of.pl.drain()
		of.mu.Unlock()
	}
	e := rpc.NewEnc(len(p) + 24)
	e.Str(p).I64(size).U8(1).I64(time.Now().UnixNano())
	if _, err := c.call(c.dist.MetaTarget(p), proto.OpUpdateSize, e.Bytes(), nil, rpc.BulkNone); err != nil {
		return err
	}
	// Unflushed size candidates beyond the new size are obsolete — the
	// data they described is being discarded. Without this, the size
	// floor (append/SEEK_END/read clamping) would resurrect the
	// pre-truncate size on this client's open descriptors.
	c.mu.Lock()
	for _, of := range c.files {
		if of.path == p {
			for {
				ps := of.pendingSize.Load()
				if ps <= size || of.pendingSize.CompareAndSwap(ps, size) {
					break
				}
			}
		}
	}
	c.mu.Unlock()
	te := rpc.NewEnc(len(p) + 12)
	te.Str(p).I64(size)
	err = c.fanOut(func(node int) error {
		_, err := c.call(node, proto.OpTruncateChunks, te.Bytes(), nil, rpc.BulkNone)
		return err
	})
	// Prefetched and cached spans describe the pre-truncate file; drop
	// them all (cheap, and truncate is rare on hot read paths). In-flight
	// prefetches are poisoned too — their data may predate the discard.
	c.cacheDropPath(p)
	return err
}

// notSupported wraps proto.ErrNotSupported in a *fs.PathError naming the
// operation and path, so staging reports and user-facing errors say
// `symlink /job/x: gekkofs: operation not supported` instead of a bare
// sentinel. errors.Is(err, proto.ErrNotSupported) still holds.
func notSupported(op, path string) error {
	return &fs.PathError{Op: op, Path: path, Err: proto.ErrNotSupported}
}

// Rename is not supported: HPC application studies show parallel jobs
// rarely if ever rename (paper §III-A, citing [17]).
func (c *Client) Rename(oldpath, newpath string) error {
	return notSupported("rename", oldpath+" -> "+newpath)
}

// Link is not supported (paper §III-A).
func (c *Client) Link(oldpath, newpath string) error {
	return notSupported("link", oldpath+" -> "+newpath)
}

// Symlink is not supported (paper §III-A).
func (c *Client) Symlink(oldpath, newpath string) error {
	return notSupported("symlink", newpath)
}

// Chmod is not supported: GekkoFS delegates security to the node-local
// file system (paper §III-A).
func (c *Client) Chmod(path string, mode uint32) error {
	return notSupported("chmod", path)
}

// DaemonStats fans out OpStats and returns every daemon's operation
// counters, indexed by node — the remote equivalent of
// core.Cluster.DaemonStats for TCP deployments (gkfs-shell's stats
// command). Under replication, condemned (or freshly unreachable)
// daemons contribute zero-valued entries instead of failing the whole
// fan-out — the dead daemon is exactly the situation stats are consulted
// in.
func (c *Client) DaemonStats() ([]proto.DaemonStats, error) {
	out, _, err := c.DaemonStatsExt()
	return out, err
}

// DaemonStatsExt is DaemonStats plus each daemon's latency-histogram
// extension (protocol v7): per-op handle-time and queue-wait
// distributions, mergeable across daemons into cluster-wide percentile
// tables. A daemon reply without the extension (or one contributed by
// a condemned daemon) yields an empty StatsExt at its index.
func (c *Client) DaemonStatsExt() ([]proto.DaemonStats, []proto.StatsExt, error) {
	out := make([]proto.DaemonStats, len(c.conns))
	exts := make([]proto.StatsExt, len(c.conns))
	err := c.fanOut(func(node int) error {
		if c.replicas > 1 && !c.alive(node) {
			return nil
		}
		d, err := c.call(node, proto.OpStats, nil, nil, rpc.BulkNone)
		if err != nil {
			if c.replicas > 1 && transportError(err) {
				c.strike(node)
				return nil
			}
			return err
		}
		st := proto.DecodeDaemonStats(d)
		var ext proto.StatsExt
		if d.Err() == nil && d.Remaining() > 0 {
			ext = proto.DecodeStatsExt(d)
		}
		if err := d.Done(); err != nil {
			return err
		}
		out[node] = st
		exts[node] = ext
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, exts, nil
}
