package client

import (
	"bytes"
	"errors"
	"io/fs"
	"testing"

	"repro/internal/proto"
	"repro/internal/rpc"
	"repro/internal/transport"
)

// The bulk-ingest primitives staging is built on: descriptor-free chunk
// writes (WritePath), batched size updates (GrowMany), data-free size
// extension (GrowSize), and the stats fan-out.

func TestWritePathAndGrowMany(t *testing.T) {
	c := newLocalCluster(t, 4, Config{ChunkSize: 512})
	// Three files, written without descriptors, sized in one batch.
	paths := []string{"/a", "/b", "/c"}
	data := [][]byte{
		bytes.Repeat([]byte{1}, 100),
		bytes.Repeat([]byte{2}, 1500), // multi-chunk
		nil,
	}
	for _, err := range c.CreateMany(paths) {
		if err != nil {
			t.Fatal(err)
		}
	}
	sizes := make([]int64, len(paths))
	for i, p := range paths {
		if err := c.WritePath(p, data[i], 0); err != nil {
			t.Fatal(err)
		}
		sizes[i] = int64(len(data[i]))
	}
	for i, err := range c.GrowMany(paths, sizes) {
		if err != nil {
			t.Fatalf("grow %s: %v", paths[i], err)
		}
	}
	for i, p := range paths {
		info, err := c.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() != sizes[i] {
			t.Fatalf("%s size = %d, want %d", p, info.Size(), sizes[i])
		}
		if sizes[i] == 0 {
			continue
		}
		fd, err := c.Open(p, O_RDONLY)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, sizes[i])
		if _, err := c.ReadAt(fd, buf, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, data[i]) {
			t.Fatalf("%s content mismatch", p)
		}
		c.Close(fd)
	}
}

func TestGrowManyErrorAlignment(t *testing.T) {
	c := newLocalCluster(t, 2, Config{ChunkSize: 512})
	if err := errors.Join(c.CreateMany([]string{"/ok"})...); err != nil {
		t.Fatal(err)
	}
	errs := c.GrowMany([]string{"relative", "/ok", "/dir-missing-is-fine"}, []int64{1, -5, 3})
	if errs[0] == nil {
		t.Fatal("relative path accepted")
	}
	if !errors.Is(errs[1], proto.ErrInval) {
		t.Fatalf("negative size = %v", errs[1])
	}
	// Size merges recreate missing records (relaxed semantics), so a
	// grow of an absent path succeeds — only shape errors fail.
	if errs[2] != nil {
		t.Fatalf("grow of fresh path = %v", errs[2])
	}
	for _, err := range c.GrowMany([]string{"/ok"}, []int64{1, 2}) {
		if err == nil {
			t.Fatal("mismatched paths/sizes accepted")
		}
	}
}

func TestGrowSizeSparseTail(t *testing.T) {
	for _, async := range []bool{false, true} {
		cfg := Config{ChunkSize: 512, AsyncWrites: async}
		c := newLocalCluster(t, 2, cfg)
		fd, err := c.Create("/tail")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.WriteAt(fd, []byte("head"), 0); err != nil {
			t.Fatal(err)
		}
		if err := c.GrowSize(fd, 10_000); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(fd); err != nil {
			t.Fatal(err)
		}
		info, err := c.Stat("/tail")
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() != 10_000 {
			t.Fatalf("async=%v: size = %d, want 10000", async, info.Size())
		}
		// The extension reads as zeros.
		fd, err = c.Open("/tail", O_RDONLY)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 16)
		if _, err := c.ReadAt(fd, buf, 5000); err != nil {
			t.Fatal(err)
		}
		for _, b := range buf {
			if b != 0 {
				t.Fatalf("async=%v: tail hole reads non-zero", async)
			}
		}
		c.Close(fd)
	}
}

func TestGrowSizeValidation(t *testing.T) {
	c := newLocalCluster(t, 1, Config{ChunkSize: 512})
	fd, err := c.Open("/ro", O_CREATE|O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(fd)
	if err := c.GrowSize(fd, 10); !errors.Is(err, proto.ErrInval) {
		t.Fatalf("grow on read-only descriptor = %v", err)
	}
	wfd, err := c.Create("/w")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(wfd)
	if err := c.GrowSize(wfd, -1); !errors.Is(err, proto.ErrInval) {
		t.Fatalf("negative grow = %v", err)
	}
}

func TestDaemonStatsFanOut(t *testing.T) {
	c := newLocalCluster(t, 3, Config{ChunkSize: 512})
	fd, err := c.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteAt(fd, bytes.Repeat([]byte{7}, 2048), 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}
	sts, err := c.DaemonStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 3 {
		t.Fatalf("got %d stat sets, want 3", len(sts))
	}
	var total proto.DaemonStats
	for _, st := range sts {
		total.Add(st)
	}
	if total.Creates == 0 {
		t.Fatal("no creates counted")
	}
	if total.WriteBytes != 2048 {
		t.Fatalf("WriteBytes = %d, want 2048", total.WriteBytes)
	}
}

// TestReadDirRejectsHostileNames pins the decode-side guard: a daemon
// listing entry names that are not single path components ("..",
// slashes, empties) must poison the listing, not reach consumers that
// join names into paths (stage-out's host-tree recreation).
func TestReadDirRejectsHostileNames(t *testing.T) {
	for _, name := range []string{"..", ".", "", "a/b", "../../etc"} {
		srv := rpc.NewServer(0)
		srv.Register(proto.OpReadDir, func([]byte, rpc.Bulk) ([]byte, error) {
			e := rpc.NewEnc(64)
			e.U16(uint16(proto.OK))
			e.U32(1)
			e.Str(name).U8(0).I64(0)
			e.Str("") // scan exhausted
			return e.Bytes(), nil
		})
		net := transport.NewMemNetwork()
		net.Register(0, srv)
		conn, err := net.Dial(0)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(Config{Conns: []rpc.Conn{conn}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.ReadDir("/"); err == nil {
			t.Fatalf("hostile entry name %q accepted", name)
		}
	}
}

// TestReadDirRejectsForgedEntryCount pins the wrap-proof count guard in
// readDirNode: a reply claiming more entries than its frame could
// possibly hold (at least 10 wire bytes each) must be rejected before
// the entry loop runs, while a legitimate minimal page — one one-letter
// name, which encodes in just 12 bytes after the count — still decodes.
func TestReadDirRejectsForgedEntryCount(t *testing.T) {
	dial := func(t *testing.T, h rpc.Handler) *Client {
		t.Helper()
		srv := rpc.NewServer(0)
		srv.Register(proto.OpReadDir, h)
		net := transport.NewMemNetwork()
		net.Register(0, srv)
		conn, err := net.Dial(0)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(Config{Conns: []rpc.Conn{conn}})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	c := dial(t, func([]byte, rpc.Bulk) ([]byte, error) {
		e := rpc.NewEnc(16)
		e.U16(uint16(proto.OK))
		e.U32(1 << 30) // a billion entries in an empty frame
		return e.Bytes(), nil
	})
	if _, err := c.ReadDir("/"); !errors.Is(err, proto.ErrInval) {
		t.Fatalf("forged entry count produced %v, want ErrInval", err)
	}

	c = dial(t, func([]byte, rpc.Bulk) ([]byte, error) {
		e := rpc.NewEnc(32)
		e.U16(uint16(proto.OK))
		e.U32(1)
		e.Str("a").U8(0).I64(7)
		e.Str("") // scan exhausted
		return e.Bytes(), nil
	})
	ents, err := c.ReadDir("/")
	if err != nil || len(ents) != 1 || ents[0].Name != "a" || ents[0].Size != 7 {
		t.Fatalf("minimal page = %+v, %v; want one entry \"a\"", ents, err)
	}
}

func TestUnsupportedOpsNamePathAndOp(t *testing.T) {
	c := newLocalCluster(t, 1, Config{ChunkSize: 512})
	cases := []struct {
		err      error
		op, path string
	}{
		{c.Rename("/old", "/new"), "rename", "/old"},
		{c.Link("/t", "/l"), "link", "/t"},
		{c.Symlink("/t", "/l"), "symlink", "/l"},
		{c.Chmod("/f", 0o600), "chmod", "/f"},
	}
	for _, tc := range cases {
		if !errors.Is(tc.err, proto.ErrNotSupported) {
			t.Fatalf("%s: not ErrNotSupported: %v", tc.op, tc.err)
		}
		var pe *fs.PathError
		if !errors.As(tc.err, &pe) {
			t.Fatalf("%s: not a *fs.PathError: %v", tc.op, tc.err)
		}
		if pe.Op != tc.op {
			t.Fatalf("op = %q, want %q", pe.Op, tc.op)
		}
		if !bytes.Contains([]byte(pe.Path), []byte(tc.path)) {
			t.Fatalf("%s: path %q does not mention %q", tc.op, pe.Path, tc.path)
		}
	}
}
