package client

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/meta"
	"repro/internal/proto"
	"repro/internal/rpc"
)

// The vectored metadata plane (client side). CreateMany, StatMany and
// RemoveMany shard their operation vectors by metadata owner, issue one
// OpBatchMeta RPC per involved daemon in parallel over the pooled
// connections, and stitch the per-op outcomes back into caller order —
// the batching that turns mdtest-style namespace storms from one RPC per
// op into one RPC per daemon per page (paper §IV's metadata experiments).

// batchMeta runs an operation vector through the batch plane. Paths in
// ops must already be canonical. results[i] is op i's outcome; errs[i]
// carries a transport or RPC failure of the shard op i traveled in (the
// whole shard fails together, but other shards are unaffected).
func (c *Client) batchMeta(ops []proto.MetaOp) ([]proto.MetaResult, []error) {
	results := make([]proto.MetaResult, len(ops))
	errs := make([]error, len(ops))
	shards := make(map[int][]int, len(c.conns)) // node → indices into ops
	for i := range ops {
		node := c.dist.MetaTarget(ops[i].Path)
		shards[node] = append(shards[node], i)
	}
	var wg sync.WaitGroup
	for node, idx := range shards {
		wg.Add(1)
		go func(node int, idx []int) {
			defer wg.Done()
			// Oversized shards split into multiple RPCs, bounding how
			// long a daemon holds its KV locks for one batch.
			for len(idx) > 0 {
				n := min(len(idx), proto.MaxBatchOps)
				c.batchMetaCall(node, idx[:n], ops, results, errs)
				idx = idx[n:]
			}
		}(node, idx)
	}
	wg.Wait()
	return results, errs
}

// batchMetaCall issues one OpBatchMeta carrying ops[idx...] and scatters
// the reply back through idx. The shard is encoded and decoded in place
// — no gathered copy of the sub-ops.
func (c *Client) batchMetaCall(node int, idx []int, ops []proto.MetaOp, results []proto.MetaResult, errs []error) {
	wire := 8
	for _, i := range idx {
		wire += len(ops[i].Path) + 24
	}
	fail := func(err error) {
		for _, i := range idx {
			errs[i] = err
		}
	}
	e := rpc.NewEnc(wire)
	e.U32(uint32(len(idx)))
	for _, i := range idx {
		proto.EncodeMetaOp(e, &ops[i])
	}
	d, err := c.call(node, proto.OpBatchMeta, e.Bytes(), nil, rpc.BulkNone)
	if err != nil {
		fail(err)
		return
	}
	if n := d.U32(); int(n) != len(idx) {
		fail(rpc.ErrMalformed)
		return
	}
	for _, i := range idx {
		results[i] = proto.DecodeMetaResult(d, ops[i].Kind)
	}
	if err := d.Done(); err != nil {
		fail(err)
	}
}

// CreateMany creates zero-byte regular files at paths — the mdtest create
// phase as one RPC per daemon instead of one per file. The returned slice
// has one error per path, aligned with the input; a path that already
// exists reports ErrExist without disturbing its batchmates.
func (c *Client) CreateMany(paths []string) []error {
	errs := make([]error, len(paths))
	ops := make([]proto.MetaOp, 0, len(paths))
	opIdx := make([]int, 0, len(paths)) // ops index → paths index
	now := time.Now().UnixNano()
	for i, path := range paths {
		p, err := meta.Clean(path)
		if err != nil {
			errs[i] = err
			continue
		}
		ops = append(ops, proto.MetaOp{Kind: proto.MetaOpCreate, Path: p, Mode: meta.ModeRegular, TimeNS: now})
		opIdx = append(opIdx, i)
	}
	results, rerrs := c.batchMeta(ops)
	for j := range results {
		if rerrs[j] != nil {
			errs[opIdx[j]] = rerrs[j]
			continue
		}
		errs[opIdx[j]] = results[j].Errno.Err()
	}
	return errs
}

// StatMany fetches file information for paths, one batch RPC per daemon.
// infos[i] is valid exactly when errs[i] is nil.
func (c *Client) StatMany(paths []string) ([]FileInfo, []error) {
	infos := make([]FileInfo, len(paths))
	errs := make([]error, len(paths))
	ops := make([]proto.MetaOp, 0, len(paths))
	opIdx := make([]int, 0, len(paths))
	for i, path := range paths {
		p, err := meta.Clean(path)
		if err != nil {
			errs[i] = err
			continue
		}
		ops = append(ops, proto.MetaOp{Kind: proto.MetaOpStat, Path: p})
		opIdx = append(opIdx, i)
	}
	results, rerrs := c.batchMeta(ops)
	for j := range results {
		i := opIdx[j]
		if rerrs[j] != nil {
			errs[i] = rerrs[j]
			continue
		}
		if err := results[j].Errno.Err(); err != nil {
			errs[i] = err
			continue
		}
		md, err := meta.DecodeMetadata(results[j].Blob)
		if err != nil {
			errs[i] = err
			continue
		}
		infos[i] = infoFromMeta(ops[j].Path, md)
	}
	return infos, errs
}

// GrowMany raises file sizes through the vector plane: sizes[i] becomes a
// grow (merge) candidate for paths[i], sharded by metadata owner into one
// OpBatchMeta per daemon — one RPC and one WAL append per batch instead
// of one OpUpdateSize round trip per file. Staging's small-file path
// pairs it with WritePath: chunk data first, then the whole batch's sizes
// in one stroke. One error per path, aligned with the input.
func (c *Client) GrowMany(paths []string, sizes []int64) []error {
	errs := make([]error, len(paths))
	if len(sizes) != len(paths) {
		for i := range errs {
			errs[i] = fmt.Errorf("client: GrowMany got %d paths, %d sizes: %w",
				len(paths), len(sizes), proto.ErrInval)
		}
		return errs
	}
	ops := make([]proto.MetaOp, 0, len(paths))
	opIdx := make([]int, 0, len(paths))
	now := time.Now().UnixNano()
	for i, path := range paths {
		p, err := meta.Clean(path)
		if err != nil {
			errs[i] = err
			continue
		}
		if sizes[i] < 0 {
			errs[i] = proto.ErrInval
			continue
		}
		ops = append(ops, proto.MetaOp{Kind: proto.MetaOpUpdateSize, Path: p, Size: sizes[i], TimeNS: now})
		opIdx = append(opIdx, i)
	}
	results, rerrs := c.batchMeta(ops)
	for j := range results {
		if rerrs[j] != nil {
			errs[opIdx[j]] = rerrs[j]
			continue
		}
		errs[opIdx[j]] = results[j].Errno.Err()
		if errs[opIdx[j]] == nil {
			// The file end may have moved: drop cached EOF-bearing
			// blocks, exactly as the single-path sendGrow does —
			// otherwise a grown file keeps serving a spurious EOF from
			// this client's own cache.
			c.cacheInvalidate(ops[j].Path, 0, 0)
		}
	}
	return errs
}

// RemoveMany unlinks paths, one batch RPC per daemon plus chunk
// collection only for the files that had data. Directories take the
// one-path protocol (empty check, then remove) — the daemon's ErrIsDir
// answer routes them there without a leading stat.
func (c *Client) RemoveMany(paths []string) []error {
	errs := make([]error, len(paths))
	ops := make([]proto.MetaOp, 0, len(paths))
	opIdx := make([]int, 0, len(paths))
	for i, path := range paths {
		p, err := meta.Clean(path)
		if err != nil {
			errs[i] = err
			continue
		}
		if p == meta.Root {
			errs[i] = proto.ErrInval
			continue
		}
		ops = append(ops, proto.MetaOp{Kind: proto.MetaOpRemove, Path: p, FileOnly: true})
		opIdx = append(opIdx, i)
	}
	results, rerrs := c.batchMeta(ops)
	var chunky []string // removed files with data, needing chunk collection
	var chunkyIdx []int
	for j := range results {
		i := opIdx[j]
		switch {
		case rerrs[j] != nil:
			errs[i] = rerrs[j]
		case results[j].Errno == proto.ErrnoIsDir:
			errs[i] = c.Remove(ops[j].Path)
		case results[j].Errno != proto.OK:
			errs[i] = results[j].Errno.Err()
		default:
			// Removed: cached blocks must not outlive the record (a new
			// file under the same name would read the old one's bytes).
			c.cacheDropPath(ops[j].Path)
			if results[j].Size > 0 {
				chunky = append(chunky, ops[j].Path)
				chunkyIdx = append(chunkyIdx, i)
			}
		}
	}
	if len(chunky) > 0 {
		if err := c.collectChunks(chunky); err != nil {
			for _, i := range chunkyIdx {
				if errs[i] == nil {
					errs[i] = err
				}
			}
		}
	}
	return errs
}
