package client

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

// TestClientTelemetryRecordsRPCs mounts a telemetry-enabled client,
// pushes real traffic through it, and asserts the registry's RPC
// histograms, trace counter, and in-flight gauge all moved — and that
// DaemonStatsExt returns matching per-daemon histogram extensions.
func TestClientTelemetryRecordsRPCs(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := newLocalCluster(t, 3, Config{ChunkSize: 512, Telemetry: reg, TraceSample: 1})

	fd, err := c.Create("/t.dat")
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xAB}, 4096)
	if _, err := c.WriteAt(fd, data, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Fsync(fd); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := c.ReadAt(fd, got, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	if s.Hists[telemetry.ClientRPCMetaNS].Count == 0 {
		t.Fatal("meta RPC histogram never recorded")
	}
	if s.Hists[telemetry.ClientRPCWriteNS].Count == 0 {
		t.Fatal("write RPC histogram never recorded")
	}
	if s.Hists[telemetry.ClientRPCReadNS].Count == 0 {
		t.Fatal("read RPC histogram never recorded")
	}
	// TraceSample=1 samples every call, so the trace counter tracks the
	// total RPC count.
	var rpcs uint64
	for _, n := range []string{telemetry.ClientRPCMetaNS, telemetry.ClientRPCWriteNS, telemetry.ClientRPCReadNS} {
		rpcs += s.Hists[n].Count
	}
	if traces := s.Counters[telemetry.ClientTracesTotal]; traces != rpcs {
		t.Fatalf("traces = %d, want %d (every call sampled)", traces, rpcs)
	}
	if inflight := s.Gauges[telemetry.ClientRPCInflight]; inflight != 0 {
		t.Fatalf("in-flight gauge = %d after all calls returned", inflight)
	}

	stats, exts, err := c.DaemonStatsExt()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 || len(exts) != 3 {
		t.Fatalf("DaemonStatsExt = %d stats, %d exts, want 3 each", len(stats), len(exts))
	}
	sawWrite := false
	for _, ext := range exts {
		for _, oh := range ext.Ops {
			if oh.Name == telemetry.DaemonOpWriteChunksNS && oh.Hist.Count > 0 {
				sawWrite = true
			}
		}
	}
	if !sawWrite {
		t.Fatal("no daemon reported write_chunks histogram samples")
	}
}

// TestDaemonStatsLegacyDecode keeps the pre-extension accessor working:
// DaemonStats must consume the trailing StatsExt the daemon now always
// appends and still return correct counters.
func TestDaemonStatsLegacyDecode(t *testing.T) {
	c := newLocalCluster(t, 2, Config{ChunkSize: 512})
	if _, err := c.Stat("/"); err != nil {
		t.Fatal(err)
	}
	stats, err := c.DaemonStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("DaemonStats = %d entries, want 2", len(stats))
	}
	var statOps uint64
	for _, st := range stats {
		statOps += st.StatOps
	}
	if statOps == 0 {
		t.Fatal("stat counter never moved")
	}
}

// TestStatsScrapeUnderTraffic races a telemetry scrape loop against
// live I/O: N writers hammer the cluster while a poller reads
// DaemonStatsExt and the registry snapshot. Run under -race this
// guards every counter and histogram access on both sides of the wire
// (the ISSUE's counter-hygiene audit, as a regression test).
func TestStatsScrapeUnderTraffic(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := newLocalCluster(t, 3, Config{ChunkSize: 512, Telemetry: reg, TraceSample: 4})

	const writers, rounds = 4, 25
	var writerWG sync.WaitGroup
	stop := make(chan struct{})
	scraperDone := make(chan struct{})

	go func() {
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := c.DaemonStatsExt(); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			s := reg.Snapshot()
			for name, h := range s.Hists {
				_ = h.Quantile(0.99)
				_ = name
			}
		}
	}()

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			buf := bytes.Repeat([]byte{byte(w)}, 1024)
			for i := 0; i < rounds; i++ {
				path := fmt.Sprintf("/w%d-%d", w, i)
				fd, err := c.Create(path)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := c.WriteAt(fd, buf, 0); err != nil {
					t.Error(err)
					return
				}
				got := make([]byte, len(buf))
				if _, err := c.ReadAt(fd, got, 0); err != nil {
					t.Error(err)
					return
				}
				if err := c.Close(fd); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	writerWG.Wait()
	close(stop)
	<-scraperDone

	if reg.Snapshot().Hists[telemetry.ClientRPCWriteNS].Count == 0 {
		t.Fatal("no write RPCs recorded during the stress run")
	}
}
