package client

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/daemon"
	"repro/internal/rpc"
	"repro/internal/transport"
	"repro/internal/vfs"
)

// recordingListener remembers every accepted connection so a test can
// sever them — the client-visible signature of kill -9 is the socket
// dying mid-conversation, not a polite daemon shutdown.
type recordingListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (r *recordingListener) Accept() (net.Conn, error) {
	c, err := r.Listener.Accept()
	if err == nil {
		r.mu.Lock()
		r.conns = append(r.conns, c)
		r.mu.Unlock()
	}
	return c, err
}

func (r *recordingListener) kill() {
	r.Listener.Close()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.conns {
		c.Close()
	}
}

// replicaCluster is a loopback TCP deployment whose daemons a test can
// crash one at a time.
type replicaCluster struct {
	c   *Client
	lns []*recordingListener
}

func startReplicaCluster(t *testing.T, nodes int, cfg Config) *replicaCluster {
	t.Helper()
	rc := &replicaCluster{lns: make([]*recordingListener, nodes)}
	conns := make([]rpc.Conn, nodes)
	for i := 0; i < nodes; i++ {
		d, err := daemon.New(daemon.Config{ID: i, FS: vfs.NewMem(), ChunkSize: 1024})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		rl := &recordingListener{Listener: l}
		rc.lns[i] = rl
		t.Cleanup(rl.kill)
		go transport.ServeTCP(rl, d.Server())
		conn, err := transport.DialTCP(l.Addr().String(), 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		conns[i] = conn
	}
	cfg.Conns = conns
	if cfg.ChunkSize == 0 {
		cfg.ChunkSize = 1024
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rc.c = c
	if err := c.EnsureRoot(); err != nil {
		t.Fatal(err)
	}
	return rc
}

// pattern fills a deterministic byte stream the replicas must agree on.
func pattern(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*31 + i/257)
	}
	return p
}

// TestReplicatedReadFailsOverOnCrash crashes a chunk primary between two
// read phases: the survivors' copies must serve the exact bytes with no
// error surfacing to the caller, and the client must record the hedged
// service and eventually condemn the dead daemon.
func TestReplicatedReadFailsOverOnCrash(t *testing.T) {
	rc := startReplicaCluster(t, 3, Config{Replicas: 2})
	c := rc.c
	const path = "/failover.bin"
	data := pattern(64 * 1024) // 64 chunks: every daemon owns primaries
	fd, err := c.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteAt(fd, data, 0); err != nil {
		t.Fatal(err)
	}

	// First read phase, all daemons healthy.
	got := make([]byte, len(data))
	if _, err := c.ReadAt(fd, got[:8*1024], 0); err != nil {
		t.Fatal(err)
	}

	// Crash a daemon that is not the file's metadata owner (metadata is
	// not replicated; the size probe must keep answering).
	victim := (c.dist.MetaTarget(path) + 1) % 3
	rc.lns[victim].kill()

	// Second read phase: several piecewise reads so the dead daemon
	// accumulates strikes and is condemned along the way.
	for off := 0; off < len(data); off += 8 * 1024 {
		if _, err := c.ReadAt(fd, got[off:off+8*1024], int64(off)); err != nil {
			t.Fatalf("read at %d after crash: %v", off, err)
		}
	}
	if !bytes.Equal(got, data) {
		t.Fatal("failover read returned wrong bytes")
	}
	st := c.Stats()
	if st.HedgedReads == 0 {
		t.Error("no hedged reads recorded despite a dead primary")
	}
	if st.CondemnedDaemons != 1 {
		t.Errorf("CondemnedDaemons = %d, want 1", st.CondemnedDaemons)
	}
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}
}

// TestReplicatedWriteSurvivesCrash crashes a daemon before any data is
// written: with R=2 every chunk still lands on at least one live
// replica, the writes succeed, and the read-back is byte-exact.
func TestReplicatedWriteSurvivesCrash(t *testing.T) {
	rc := startReplicaCluster(t, 3, Config{Replicas: 2})
	c := rc.c
	const path = "/degraded-write.bin"
	fd, err := c.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	victim := (c.dist.MetaTarget(path) + 2) % 3
	rc.lns[victim].kill()

	data := pattern(48 * 1024)
	for off := 0; off < len(data); off += 4 * 1024 {
		if _, err := c.WriteAt(fd, data[off:off+4*1024], int64(off)); err != nil {
			t.Fatalf("write at %d with a dead daemon: %v", off, err)
		}
	}
	got := make([]byte, len(data))
	if _, err := c.ReadAt(fd, got, 0); err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded write round trip returned wrong bytes")
	}
	if st := c.Stats(); st.ReplicaWrites == 0 {
		t.Error("no replica writes recorded under R=2")
	}
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}
}

// TestReplicatedAsyncWriteSurvivesCrash is the write-behind variant of
// the crash test — the CI smoke's exact shape: a daemon dies mid-stream
// while the pipeline is in flight, and the failure must be absorbed by
// the replica fan-out instead of latching the descriptor.
func TestReplicatedAsyncWriteSurvivesCrash(t *testing.T) {
	rc := startReplicaCluster(t, 3, Config{Replicas: 2, AsyncWrites: true})
	c := rc.c
	const path = "/async-crash.bin"
	fd, err := c.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	victim := (c.dist.MetaTarget(path) + 1) % 3
	data := pattern(96 * 1024)
	half := len(data) / 2
	for off := 0; off < half; off += 4 * 1024 {
		if _, err := c.WriteAt(fd, data[off:off+4*1024], int64(off)); err != nil {
			t.Fatalf("write at %d: %v", off, err)
		}
	}
	rc.lns[victim].kill()
	for off := half; off < len(data); off += 4 * 1024 {
		if _, err := c.WriteAt(fd, data[off:off+4*1024], int64(off)); err != nil {
			t.Fatalf("write at %d after crash: %v", off, err)
		}
	}
	// Close is the pipeline barrier: any replica-tier failure that
	// wrongly latched would surface here.
	if err := c.Close(fd); err != nil {
		t.Fatalf("close after mid-stream crash: %v", err)
	}

	fd, err = c.Open(path, O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(fd)
	got := make([]byte, len(data))
	if _, err := c.ReadAt(fd, got, 0); err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("async crash round trip returned wrong bytes")
	}
}

// TestReplicatedReadDegradesWhenChainDies kills both daemons of one
// chunk's replica chain: the read must surface ErrDegraded rather than
// hang, invent zeros, or report a deterministic errno.
func TestReplicatedReadDegradesWhenChainDies(t *testing.T) {
	rc := startReplicaCluster(t, 3, Config{Replicas: 2})
	c := rc.c
	const path = "/doomed.bin"
	data := pattern(64 * 1024)
	fd, err := c.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteAt(fd, data, 0); err != nil {
		t.Fatal(err)
	}
	// Killing m+1 and m+2 wipes the full chain {m+1, m+2} while the
	// metadata owner m keeps answering size probes.
	m := c.dist.MetaTarget(path)
	rc.lns[(m+1)%3].kill()
	rc.lns[(m+2)%3].kill()

	got := make([]byte, len(data))
	_, err = c.ReadAt(fd, got, 0)
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("read with a dead replica chain = %v, want ErrDegraded", err)
	}
	c.Close(fd)
}

// TestReplicasConfigRejected pins the constructor contract: a
// replication factor the daemon count cannot provide must fail loudly —
// silently clamping would fake a durability level that does not exist.
func TestReplicasConfigRejected(t *testing.T) {
	mk := func(n int) []rpc.Conn { return make([]rpc.Conn, n) }
	if _, err := New(Config{Conns: mk(2), ChunkSize: 1024, Replicas: 3}); err == nil {
		t.Error("Replicas=3 over 2 daemons accepted")
	}
	if _, err := New(Config{Conns: mk(2), ChunkSize: 1024, Replicas: -1}); err == nil {
		t.Error("negative Replicas accepted")
	}
}
