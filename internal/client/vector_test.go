package client

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"repro/internal/daemon"
	"repro/internal/proto"
	"repro/internal/rpc"
	"repro/internal/transport"
	"repro/internal/vfs"
)

// newLocalClusterWithDaemons is newLocalCluster but keeps the daemon
// handles, so tests can assert on server-side counters.
func newLocalClusterWithDaemons(t testing.TB, nodes int, cfg Config) (*Client, []*daemon.Daemon) {
	t.Helper()
	net := transport.NewMemNetwork()
	conns := make([]rpc.Conn, nodes)
	daemons := make([]*daemon.Daemon, nodes)
	for i := 0; i < nodes; i++ {
		d, err := daemon.New(daemon.Config{ID: i, FS: vfs.NewMem(), ChunkSize: cfg.ChunkSize})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		daemons[i] = d
		net.Register(i, d.Server())
		conn, err := net.Dial(i)
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = conn
	}
	cfg.Conns = conns
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EnsureRoot(); err != nil {
		t.Fatal(err)
	}
	return c, daemons
}

func TestVectoredCreateStatRemoveRoundTrip(t *testing.T) {
	c, daemons := newLocalClusterWithDaemons(t, 4, Config{})
	const n = 40
	paths := make([]string, n)
	for i := range paths {
		paths[i] = fmt.Sprintf("/vec/f.%d", i)
	}
	if err := c.Mkdir("/vec"); err != nil {
		t.Fatal(err)
	}
	for i, err := range c.CreateMany(paths) {
		if err != nil {
			t.Fatalf("create %s: %v", paths[i], err)
		}
	}
	// The ops traveled batched: far fewer RPCs than ops, spread over the
	// daemons that own the paths.
	var rpcs, subops uint64
	for _, d := range daemons {
		st := d.Stats()
		rpcs += st.BatchRPCs
		subops += st.BatchedOps
	}
	if subops != n {
		t.Fatalf("batched sub-ops = %d, want %d", subops, n)
	}
	if rpcs > 4 {
		t.Fatalf("batch RPCs = %d, want ≤ one per daemon", rpcs)
	}

	infos, errs := c.StatMany(paths)
	for i := range paths {
		if errs[i] != nil {
			t.Fatalf("stat %s: %v", paths[i], errs[i])
		}
		if infos[i].IsDir() || infos[i].Size() != 0 {
			t.Fatalf("stat %s = %+v", paths[i], infos[i])
		}
	}
	if infos[7].Name() != "f.7" {
		t.Fatalf("stitched name = %q, want caller order preserved", infos[7].Name())
	}

	for i, err := range c.RemoveMany(paths) {
		if err != nil {
			t.Fatalf("remove %s: %v", paths[i], err)
		}
	}
	if ents, err := c.ReadDir("/vec"); err != nil || len(ents) != 0 {
		t.Fatalf("after RemoveMany: %d entries, %v", len(ents), err)
	}
}

func TestVectoredPartialFailureStitching(t *testing.T) {
	c := newLocalCluster(t, 4, Config{})
	// Pre-create every third path; CreateMany over the full set must
	// report ErrExist at exactly those indices and nil elsewhere.
	const n = 30
	paths := make([]string, n)
	for i := range paths {
		paths[i] = fmt.Sprintf("/pf.%d", i)
	}
	for i := 0; i < n; i += 3 {
		if fd, err := c.Create(paths[i]); err != nil {
			t.Fatal(err)
		} else {
			c.Close(fd)
		}
	}
	errs := c.CreateMany(paths)
	for i := range paths {
		if i%3 == 0 {
			if !errors.Is(errs[i], proto.ErrExist) {
				t.Fatalf("errs[%d] = %v, want ErrExist", i, errs[i])
			}
		} else if errs[i] != nil {
			t.Fatalf("errs[%d] = %v, want nil", i, errs[i])
		}
	}

	// Same stitching on the stat side: missing paths error individually,
	// and a malformed path fails client-side without sinking its batch.
	statPaths := []string{"/pf.1", "/definitely-missing", "relative", "/pf.2"}
	infos, serrs := c.StatMany(statPaths)
	if serrs[0] != nil || serrs[3] != nil {
		t.Fatalf("valid stats errored: %v, %v", serrs[0], serrs[3])
	}
	if !errors.Is(serrs[1], proto.ErrNotExist) {
		t.Fatalf("missing stat = %v", serrs[1])
	}
	if serrs[2] == nil {
		t.Fatal("relative path accepted")
	}
	if infos[0].Name() != "pf.1" || infos[3].Name() != "pf.2" {
		t.Fatalf("stitched infos misordered: %q, %q", infos[0].Name(), infos[3].Name())
	}

	// RemoveMany: mix of files, a directory (falls back to the one-path
	// protocol), a non-empty directory, and a missing path.
	if err := c.Mkdir("/pfdir"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/pffull"); err != nil {
		t.Fatal(err)
	}
	if fd, err := c.Create("/pffull/child"); err != nil {
		t.Fatal(err)
	} else {
		c.Close(fd)
	}
	rerrs := c.RemoveMany([]string{"/pf.0", "/pfdir", "/pffull", "/gone", "/"})
	if rerrs[0] != nil {
		t.Fatalf("file remove = %v", rerrs[0])
	}
	if rerrs[1] != nil {
		t.Fatalf("empty dir remove = %v", rerrs[1])
	}
	if !errors.Is(rerrs[2], proto.ErrNotEmpty) {
		t.Fatalf("non-empty dir remove = %v", rerrs[2])
	}
	if !errors.Is(rerrs[3], proto.ErrNotExist) {
		t.Fatalf("missing remove = %v", rerrs[3])
	}
	if !errors.Is(rerrs[4], proto.ErrInval) {
		t.Fatalf("root remove = %v", rerrs[4])
	}
}

func TestRemoveManyCollectsChunks(t *testing.T) {
	c := newLocalCluster(t, 4, Config{ChunkSize: 256})
	fd, err := c.Create("/data")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2000) // spans several chunks and daemons
	for i := range buf {
		buf[i] = 0xAB
	}
	if _, err := c.WriteAt(fd, buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}
	if errs := c.RemoveMany([]string{"/data"}); errs[0] != nil {
		t.Fatal(errs[0])
	}
	// Recreating the path must not resurrect old chunk data.
	fd, err = c.Create("/data")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(fd)
	if err := c.sendGrow("/data", 2000); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2000)
	if _, err := c.ReadAt(fd, got, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("stale chunk byte %#x at %d after RemoveMany", b, i)
		}
	}
}

func TestRemoveFileSkipsStatRPC(t *testing.T) {
	c, daemons := newLocalClusterWithDaemons(t, 4, Config{})
	fd, err := c.Create("/single")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}
	statsBefore := func() (stats, removes uint64) {
		for _, d := range daemons {
			st := d.Stats()
			stats += st.StatOps
			removes += st.Removes
		}
		return
	}
	s0, r0 := statsBefore()
	if err := c.Remove("/single"); err != nil {
		t.Fatal(err)
	}
	s1, r1 := statsBefore()
	if s1 != s0 {
		t.Fatalf("file remove issued %d stat RPCs, want 0", s1-s0)
	}
	if r1 != r0+1 {
		t.Fatalf("file remove issued %d remove RPCs, want 1", r1-r0)
	}
}

func TestReadDirDrainsMultiplePages(t *testing.T) {
	c, daemons := newLocalClusterWithDaemons(t, 4, Config{})
	c.readDirPage = 7 // force multi-page scans
	const n = 100
	paths := make([]string, n)
	want := make([]string, n)
	for i := range paths {
		want[i] = fmt.Sprintf("page.%03d", i)
		paths[i] = "/" + want[i]
	}
	if errs := c.CreateMany(paths); errors.Join(errs...) != nil {
		t.Fatal(errors.Join(errs...))
	}
	ents, err := c.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, e := range ents {
		got = append(got, e.Name)
	}
	sort.Strings(want)
	if len(got) != n {
		t.Fatalf("paged ReadDir returned %d entries, want %d", len(got), n)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %q, want %q (sorted merge broken)", i, got[i], want[i])
		}
	}
	// The drain really paged: more scan calls than daemons.
	var pages uint64
	for _, d := range daemons {
		pages += d.Stats().ReadDirs
	}
	if pages <= uint64(len(daemons)) {
		t.Fatalf("readdir pages served = %d, want > %d (multi-page drain)", pages, len(daemons))
	}
}
