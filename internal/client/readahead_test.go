package client

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/daemon"
	"repro/internal/meta"
	"repro/internal/proto"
)

// raQuiesce waits until every in-flight prefetch of fd has settled, so
// daemon counters are stable before a test snapshots them.
func raQuiesce(t *testing.T, c *Client, fd int) {
	t.Helper()
	of, err := c.lookupFD(fd)
	if err != nil {
		t.Fatal(err)
	}
	if of.ra != nil {
		of.ra.wg.Wait()
	}
}

// writeFileVia creates path and stores data through its own descriptor.
func writeFileVia(t *testing.T, c *Client, path string, data []byte) {
	t.Helper()
	fd, err := c.Open(path, O_CREATE|O_WRONLY|O_TRUNC)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 0 {
		if _, err := c.WriteAt(fd, data, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}
}

// patternedBytes returns n distinct-ish bytes seeded by seed.
func patternedBytes(n int, seed byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i)*7 + seed
	}
	return p
}

// TestReadAheadSequentialStream verifies the tentpole end to end on one
// descriptor: a sequential stream reads back byte-identical under
// read-ahead, and a second sequential pass over the (cache-resident)
// file moves zero read RPCs.
func TestReadAheadSequentialStream(t *testing.T) {
	c, daemons, _ := pipelineCluster(t, 4, Config{
		ChunkSize: 64, ReadAhead: true, ReadWindow: 4, CacheBytes: 1 << 20,
	})
	want := patternedBytes(64*32, 1)
	writeFileVia(t, c, "/stream", want)

	read := func(fd int) []byte {
		t.Helper()
		var got []byte
		buf := make([]byte, 150) // unaligned reads straddle block boundaries
		for {
			n, err := c.Read(fd, buf)
			got = append(got, buf[:n]...)
			if err == io.EOF {
				return got
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	fd, err := c.Open("/stream", O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	if got := read(fd); !bytes.Equal(got, want) {
		t.Fatalf("first pass read %d bytes, mismatch (want %d)", len(got), len(want))
	}
	raQuiesce(t, c, fd)
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}

	// Second pass: every block is cached (prefetched or deposited by the
	// demand reads), so no read RPC may leave the client.
	before := sumStats(daemons)
	fd, err = c.Open("/stream", O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(fd)
	if got := read(fd); !bytes.Equal(got, want) {
		t.Fatal("second pass returned different bytes")
	}
	raQuiesce(t, c, fd)
	if d := sumStats(daemons).ReadOps - before.ReadOps; d != 0 {
		t.Fatalf("cached re-read still issued %d read RPCs, want 0", d)
	}
}

// TestReadAheadPrefetchAcrossEOF verifies speculation near and past the
// file end: the EOF arrives at the right byte, prefetches past it are
// harmless, and speculation stops at the observed end instead of
// hammering the daemons with EOF probes.
func TestReadAheadPrefetchAcrossEOF(t *testing.T) {
	c, daemons, _ := pipelineCluster(t, 3, Config{
		ChunkSize: 64, ReadAhead: true, ReadWindow: 8, CacheBytes: 1 << 20,
	})
	const size = 64*5 + 17 // EOF mid-block
	want := patternedBytes(size, 3)
	writeFileVia(t, c, "/eof", want)

	fd, err := c.Open("/eof", O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(fd)
	var got []byte
	buf := make([]byte, 64)
	sawEOF := false
	for i := 0; i < 64; i++ { // bounded: must EOF long before this
		n, err := c.Read(fd, buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			sawEOF = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sawEOF {
		t.Fatal("sequential read loop never saw io.EOF")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read %d bytes across EOF, want %d identical", len(got), len(want))
	}
	// Reads at and past EOF keep answering EOF (served by the cached EOF
	// block — no new RPC per probe).
	raQuiesce(t, c, fd)
	before := sumStats(daemons)
	for i := 0; i < 5; i++ {
		if n, err := c.ReadAt(fd, buf, size+int64(i)*64); err != io.EOF || n != 0 {
			t.Fatalf("read past EOF = %d, %v; want 0, io.EOF", n, err)
		}
	}
	if d := sumStats(daemons).ReadOps - before.ReadOps; d > 5 {
		t.Fatalf("EOF probes issued %d RPCs", d)
	}
}

// TestReadAheadWriteInvalidatesCache verifies a same-descriptor write
// drops the cached blocks it overlaps: the following read must return
// the new bytes (and provably used the cache before the write).
func TestReadAheadWriteInvalidatesCache(t *testing.T) {
	c, daemons, _ := pipelineCluster(t, 3, Config{
		ChunkSize: 64, ReadAhead: true, ReadWindow: 4, CacheBytes: 1 << 20,
	})
	v1 := patternedBytes(64*8, 5)
	writeFileVia(t, c, "/inv", v1)

	fd, err := c.Open("/inv", O_RDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(fd)
	got := make([]byte, len(v1))
	// Two sequential passes warm the cache; the second must be served
	// from it (the precondition that makes the invalidation assertion
	// meaningful).
	for i := 0; i < 2; i++ {
		if _, err := c.ReadAt(fd, got, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
	}
	raQuiesce(t, c, fd)
	before := sumStats(daemons)
	if _, err := c.ReadAt(fd, got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if d := sumStats(daemons).ReadOps - before.ReadOps; d != 0 {
		t.Fatalf("warm read still issued %d RPCs, want 0 (cache not serving)", d)
	}

	// Overwrite the middle, then read it back: no stale bytes.
	v2 := patternedBytes(64*3, 9)
	if _, err := c.WriteAt(fd, v2, 64*2); err != nil {
		t.Fatal(err)
	}
	if n, err := c.ReadAt(fd, got, 0); (err != nil && err != io.EOF) || n != len(v1) {
		t.Fatalf("post-write read = %d, %v", n, err)
	}
	want := append([]byte(nil), v1...)
	copy(want[64*2:], v2)
	if !bytes.Equal(got, want) {
		t.Fatal("read served stale cached bytes after same-descriptor write")
	}
}

// TestReadAheadTruncateDropsCache verifies Truncate discards prefetched
// and cached spans: reads after the truncate see the new EOF, never the
// cached pre-truncate tail.
func TestReadAheadTruncateDropsCache(t *testing.T) {
	c, daemons, _ := pipelineCluster(t, 3, Config{
		ChunkSize: 64, ReadAhead: true, ReadWindow: 8, CacheBytes: 1 << 20,
	})
	data := patternedBytes(64*16, 2)
	writeFileVia(t, c, "/trunc", data)

	fd, err := c.Open("/trunc", O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(fd)
	got := make([]byte, len(data))
	if _, err := c.ReadAt(fd, got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	raQuiesce(t, c, fd)
	if n := c.cache.Load().entries(); n == 0 {
		t.Fatal("precondition: nothing cached before the truncate")
	}

	const newSize = 64 * 3
	if err := c.Truncate("/trunc", newSize); err != nil {
		t.Fatal(err)
	}
	n, err := c.ReadAt(fd, got, 0)
	if err != io.EOF || n != newSize {
		t.Fatalf("post-truncate read = %d, %v; want %d, io.EOF (cached tail resurrected)", n, err, newSize)
	}
	if !bytes.Equal(got[:n], data[:newSize]) {
		t.Fatal("post-truncate prefix mismatch")
	}
	if n, err := c.ReadAt(fd, got, newSize+5); err != io.EOF || n != 0 {
		t.Fatalf("read past new EOF = %d, %v; want 0, io.EOF", n, err)
	}
	_ = daemons
}

// TestReadAheadRandomAccessNoSpeculation verifies the detector: a
// random access pattern must never issue speculative fetches — only the
// demanded blocks may enter the cache.
func TestReadAheadRandomAccessNoSpeculation(t *testing.T) {
	c, _, _ := pipelineCluster(t, 3, Config{
		ChunkSize: 64, ReadAhead: true, ReadWindow: 8, CacheBytes: 1 << 20,
	})
	const chunks = 64
	writeFileVia(t, c, "/rand", patternedBytes(64*chunks, 4))

	fd, err := c.Open("/rand", O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(fd)
	// Chunk-aligned single-block reads at strided, never-adjacent
	// offsets: each is a cache miss and a full-block deposit, and none
	// may arm speculation.
	offs := []int64{40, 3, 57, 21, 9, 33, 48, 12}
	buf := make([]byte, 64)
	for _, o := range offs {
		if _, err := c.ReadAt(fd, buf, o*64); err != nil && err != io.EOF {
			t.Fatal(err)
		}
	}
	raQuiesce(t, c, fd)
	if n := c.cache.Load().entries(); n != len(offs) {
		t.Fatalf("cache holds %d blocks after %d random reads, want exactly the demanded blocks (speculation ran)", n, len(offs))
	}
}

// TestReadAheadRandomSmallReadsExactRange pins the no-amplification
// contract: a non-sequential miss smaller than a chunk pays an
// exact-range wire read — a random 100-byte reader on a cache-enabled
// client must not be turned into a chunk-sized fetcher.
func TestReadAheadRandomSmallReadsExactRange(t *testing.T) {
	c, daemons, _ := pipelineCluster(t, 3, Config{
		ChunkSize: 4096, ReadAhead: true, CacheBytes: 1 << 20,
	})
	writeFileVia(t, c, "/tiny", patternedBytes(4096*16, 29))
	fd, err := c.Open("/tiny", O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(fd)
	before := sumStatsAll(daemons)
	buf := make([]byte, 100)
	offs := []int64{5*4096 + 7, 2*4096 + 1, 9 * 4096, 12*4096 + 500}
	for _, o := range offs {
		if n, err := c.ReadAt(fd, buf, o); err != nil || n != len(buf) {
			t.Fatalf("read at %d = %d, %v", o, n, err)
		}
	}
	raQuiesce(t, c, fd)
	if d := sumStatsAll(daemons).ReadBytes - before.ReadBytes; d != uint64(len(offs)*len(buf)) {
		t.Fatalf("random 100-byte reads requested %d wire bytes, want %d (amplified)", d, len(offs)*len(buf))
	}
}

// TestReadAheadCrashMidPrefetchSurfacesOnce crashes a daemon while a
// prefetch window is in flight over real TCP. A failed prefetch must
// never latch anywhere: the reads that need the dead daemon's chunks
// surface a transport error (each read exactly one), reads served
// entirely by surviving daemons keep working, and Close stays clean.
func TestReadAheadCrashMidPrefetchSurfacesOnce(t *testing.T) {
	c, daemons := tcpPipelineCluster(t, 3, Config{
		ChunkSize: 64, ReadAhead: true, ReadWindow: 4, CacheBytes: 1 << 20,
	})
	const chunks = 48
	data := patternedBytes(64*chunks, 6)
	writeFileVia(t, c, "/crash", data)

	fd, err := c.Open("/crash", O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the detector so prefetches are in flight, then crash node 2.
	buf := make([]byte, 64)
	for i := 0; i < 4; i++ {
		if _, err := c.ReadAt(fd, buf, int64(i)*64); err != nil && err != io.EOF {
			t.Fatal(err)
		}
	}
	daemons[2].Close()

	failed, succeeded := 0, 0
	for i := 4; i < chunks; i++ {
		n, err := c.ReadAt(fd, buf, int64(i)*64)
		switch {
		case err == nil || err == io.EOF:
			succeeded++
			if !bytes.Equal(buf[:n], data[int64(i)*64:int64(i)*64+int64(n)]) {
				t.Fatalf("chunk %d: wrong bytes after crash", i)
			}
		default:
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("no read surfaced the dead daemon (placement degenerate?)")
	}
	raQuiesce(t, c, fd)
	// The failure lives in the reads that needed the dead daemon, not in
	// a latch: the barrier path must be clean.
	if err := c.Fsync(fd); err != nil {
		t.Fatalf("Fsync after prefetch failures: %v", err)
	}
	if err := c.Close(fd); err != nil {
		t.Fatalf("Close after prefetch failures: %v", err)
	}
}

// TestReadAheadNeverServesStaleBytes is the -race workhorse: interleaved
// write/read rounds on one descriptor (write-behind AND read-ahead both
// on) must always read back the latest round's bytes, regardless of how
// prefetches, invalidations and window drains interleave underneath.
func TestReadAheadNeverServesStaleBytes(t *testing.T) {
	c, _, _ := pipelineCluster(t, 4, Config{
		ChunkSize: 64, AsyncWrites: true, WriteWindow: 4,
		ReadAhead: true, ReadWindow: 4, CacheBytes: 1 << 20,
	})
	fd, err := c.Open("/stale", O_CREATE|O_RDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(fd)
	const span = 64 * 6
	got := make([]byte, span)
	for round := 0; round < 24; round++ {
		want := patternedBytes(span, byte(round))
		if _, err := c.WriteAt(fd, want, 0); err != nil {
			t.Fatal(err)
		}
		// Sequential re-reads arm speculation; every one must see this
		// round's bytes.
		for pass := 0; pass < 3; pass++ {
			for off := int64(0); off < span; off += 128 {
				n, err := c.ReadAt(fd, got[off:off+128], off)
				if (err != nil && err != io.EOF) || n != 128 {
					t.Fatalf("round %d: read = %d, %v", round, n, err)
				}
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("round %d pass %d: stale bytes served from cache", round, pass)
			}
		}
	}
}

// TestReadSurfacesLatchedError pins the satellite fix: a read on a
// descriptor whose write-behind window latched a failure returns that
// failure (exactly once) instead of silently handing over bytes whose
// producing writes already failed.
func TestReadSurfacesLatchedError(t *testing.T) {
	c, daemons := tcpPipelineCluster(t, 3, Config{ChunkSize: 64, AsyncWrites: true, WriteWindow: 8})
	path := ""
	for _, cand := range []string{"/r0", "/r1", "/r2", "/r3", "/r4"} {
		if c.dist.MetaTarget(cand) == 0 {
			path = cand
			break
		}
	}
	if path == "" {
		t.Fatal("no candidate path with metadata on node 0")
	}
	fd, err := c.Open(path, O_CREATE|O_RDWR)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64*32) // spans all daemons
	hits := 0
	for id := int64(0); id < 32; id++ {
		if c.dist.ChunkTarget(path, meta.ChunkID(id)) == 2 {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no chunk lands on node 2; widen the range")
	}
	daemons[2].Close()
	if _, err := c.WriteAt(fd, payload, 0); err != nil {
		t.Fatalf("async write returned synchronously: %v", err)
	}
	// The read drains the window and must surface the latched failure.
	buf := make([]byte, 64)
	if _, err := c.Read(fd, buf); err == nil {
		t.Fatal("read after latched async-write failure returned nil")
	}
	// Exactly once: the barrier after the surfacing read is clean.
	if err := c.Fsync(fd); err != nil {
		t.Fatalf("Fsync re-surfaced the latched error: %v", err)
	}
	if err := c.Close(fd); err != nil {
		t.Fatalf("Close after surfaced error: %v", err)
	}
}

// TestReadAheadConcurrentReaders hammers one read-ahead descriptor and
// several plain ones from concurrent goroutines (run under -race): the
// shared chunk cache must stay coherent while entries are inserted,
// served, evicted and invalidated concurrently.
func TestReadAheadConcurrentReaders(t *testing.T) {
	c, _, _ := pipelineCluster(t, 4, Config{
		ChunkSize: 64, ReadAhead: true, ReadWindow: 4,
		CacheBytes: 4096, // tiny: constant eviction churn
	})
	const span = 64 * 64
	want := patternedBytes(span, 8)
	writeFileVia(t, c, "/conc", want)

	var wg sync.WaitGroup
	errs := make([]error, 6)
	for g := range errs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fd, err := c.Open("/conc", O_RDONLY)
			if err != nil {
				errs[g] = err
				return
			}
			defer c.Close(fd)
			buf := make([]byte, 200)
			for pass := 0; pass < 4; pass++ {
				for off := int64(0); off < span; off += int64(len(buf)) {
					n, err := c.ReadAt(fd, buf, off)
					if err != nil && err != io.EOF {
						errs[g] = err
						return
					}
					if !bytes.Equal(buf[:n], want[off:off+int64(n)]) {
						errs[g] = fmt.Errorf("goroutine %d: stale bytes at %d", g, off)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestOpenReadAheadForcesPipeline verifies the per-descriptor override
// staging relies on: OpenReadAhead speculates (and caches) on a client
// configured without ReadAhead or CacheBytes, while plain descriptors
// of the same client stay cache-less.
func TestOpenReadAheadForcesPipeline(t *testing.T) {
	c, daemons, _ := pipelineCluster(t, 3, Config{ChunkSize: 64})
	if c.cache.Load() != nil {
		t.Fatal("default client grew a chunk cache")
	}
	want := patternedBytes(64*16, 11)
	writeFileVia(t, c, "/force", want)

	fd, err := c.OpenReadAhead("/force", O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(fd)
	got := make([]byte, 128)
	var all []byte
	for {
		n, err := c.Read(fd, got)
		all = append(all, got[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(all, want) {
		t.Fatal("OpenReadAhead stream mismatch")
	}
	raQuiesce(t, c, fd)
	if c.cache.Load() == nil || c.cache.Load().entries() == 0 {
		t.Fatal("OpenReadAhead descriptor never cached a block")
	}
	// And the re-read is wire-free.
	before := sumStats(daemons)
	buf := make([]byte, len(want))
	if n, err := c.ReadAt(fd, buf, 0); (err != nil && err != io.EOF) || n != len(want) {
		t.Fatalf("re-read = %d, %v", n, err)
	}
	raQuiesce(t, c, fd)
	if d := sumStats(daemons).ReadOps - before.ReadOps; d != 0 {
		t.Fatalf("re-read issued %d RPCs, want 0", d)
	}
}

// TestReadAheadRemoveDropsCache verifies cached blocks die with the
// file: a new file under the same name must never read the old one's
// cached bytes.
func TestReadAheadRemoveDropsCache(t *testing.T) {
	c, _, _ := pipelineCluster(t, 3, Config{
		ChunkSize: 64, ReadAhead: true, ReadWindow: 4, CacheBytes: 1 << 20,
	})
	old := patternedBytes(64*4, 13)
	writeFileVia(t, c, "/reborn", old)
	fd, err := c.Open("/reborn", O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(old))
	if _, err := c.ReadAt(fd, buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	raQuiesce(t, c, fd)
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("/reborn"); err != nil {
		t.Fatal(err)
	}
	fresh := patternedBytes(64*2, 17)
	writeFileVia(t, c, "/reborn", fresh)
	fd, err = c.Open("/reborn", O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(fd)
	n, err := c.ReadAt(fd, buf, 0)
	if err != io.EOF || n != len(fresh) {
		t.Fatalf("reborn read = %d, %v; want %d, io.EOF", n, err, len(fresh))
	}
	if !bytes.Equal(buf[:n], fresh) {
		t.Fatal("reborn file served the removed file's cached bytes")
	}
}

// TestReadAheadStatsCounters verifies the protocol-4 observability: read
// RPCs report the spans they carried and the bulk bytes they actually
// pushed, and hole-heavy reads push (almost) nothing.
func TestReadAheadStatsCounters(t *testing.T) {
	c, daemons, _ := pipelineCluster(t, 2, Config{ChunkSize: 64})
	// 4 chunks of data, then a hole to 16 chunks via truncate-up.
	writeFileVia(t, c, "/holes", patternedBytes(64*4, 19))
	gfd, err := c.Open("/holes", O_WRONLY)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.GrowSize(gfd, 64*16); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(gfd); err != nil {
		t.Fatal(err)
	}

	fd, err := c.Open("/holes", O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(fd)
	before := sumStatsAll(daemons)
	buf := make([]byte, 64*16)
	if n, err := c.ReadAt(fd, buf, 0); err != nil && err != io.EOF || n != 64*16 {
		t.Fatalf("read = %d, %v", n, err)
	}
	after := sumStatsAll(daemons)
	if d := after.ReadSpans - before.ReadSpans; d != 16 {
		t.Fatalf("ReadSpans delta = %d, want 16", d)
	}
	if d := after.ReadBytes - before.ReadBytes; d != 64*16 {
		t.Fatalf("ReadBytes delta = %d, want %d", d, 64*16)
	}
	// Only the 4 data chunks have present bytes; the hole's 12 chunks
	// push nothing.
	if d := after.ReadBytesPushed - before.ReadBytesPushed; d != 64*4 {
		t.Fatalf("ReadBytesPushed delta = %d, want %d", d, 64*4)
	}
}

// TestReadAheadGrowPastCachedEOF pins two regressions around cached EOF
// blocks and size growth: (1) a deferred GrowSize under write-behind
// overrules a cached EOF via the descriptor's pending size — the read
// must fall back to the wire and return the hole's zeros, never a
// short (0, nil) that would livelock a read loop; (2) GrowMany drops
// EOF-bearing blocks exactly like the single-path size update, so a
// grown file never serves a spurious EOF from this client's own cache.
func TestReadAheadGrowPastCachedEOF(t *testing.T) {
	const size = 100
	t.Run("deferred-growsize", func(t *testing.T) {
		c, _, _ := pipelineCluster(t, 3, Config{
			ChunkSize: 64, AsyncWrites: true, ReadAhead: true, CacheBytes: 1 << 20,
		})
		fd, err := c.Open("/grow", O_CREATE|O_RDWR)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close(fd)
		if _, err := c.WriteAt(fd, patternedBytes(size, 21), 0); err != nil {
			t.Fatal(err)
		}
		if err := c.Fsync(fd); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64)
		// Read to EOF so the cache holds an EOF-marked block.
		if n, err := c.ReadAt(fd, buf, size-10); err != io.EOF || n != 10 {
			t.Fatalf("pre-grow read = %d, %v; want 10, io.EOF", n, err)
		}
		// Deferred grow: the candidate stays local until the barrier.
		if err := c.GrowSize(fd, size+50); err != nil {
			t.Fatal(err)
		}
		n, err := c.ReadAt(fd, buf, size)
		if err != io.EOF || n != 50 {
			t.Fatalf("post-grow read = %d, %v; want 50, io.EOF (stale cached EOF served)", n, err)
		}
		for i := 0; i < n; i++ {
			if buf[i] != 0 {
				t.Fatalf("hole byte %d = %d, want 0", i, buf[i])
			}
		}
	})
	t.Run("growmany", func(t *testing.T) {
		c, _, _ := pipelineCluster(t, 3, Config{
			ChunkSize: 64, ReadAhead: true, CacheBytes: 1 << 20,
		})
		writeFileVia(t, c, "/gm", patternedBytes(size, 23))
		fd, err := c.Open("/gm", O_RDONLY)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close(fd)
		buf := make([]byte, 256)
		if n, err := c.ReadAt(fd, buf, 0); err != io.EOF || n != size {
			t.Fatalf("pre-grow read = %d, %v; want %d, io.EOF", n, err, size)
		}
		for _, err := range c.GrowMany([]string{"/gm"}, []int64{size + 60}) {
			if err != nil {
				t.Fatal(err)
			}
		}
		n, err := c.ReadAt(fd, buf, size)
		if err != io.EOF || n != 60 {
			t.Fatalf("post-GrowMany read = %d, %v; want 60, io.EOF (stale cached EOF served)", n, err)
		}
	})
}

// sumStatsAll aggregates every counter (sumStats in pipeline_test only
// carries the ones those tests need).
func sumStatsAll(daemons []*daemon.Daemon) proto.DaemonStats {
	var total proto.DaemonStats
	for _, d := range daemons {
		total.Add(d.Stats())
	}
	return total
}
