package client

// Snapshots, client side. Daemons never coordinate with each other, so
// the client drives the two-phase pin: reserve the tag at every daemon
// (each proposes its current epoch), take the maximum M, then commit
// tag→M everywhere. A reserve or commit that cannot reach a daemon
// aborts the tag — a snapshot either exists identically on every daemon
// or is not usable at all (Snapshots intersects the per-daemon views).
// Snapshot reads are plain reads with a pinned epoch riding the v8
// trailing extensions; they fan out exactly like live ones.

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/meta"
	"repro/internal/proto"
	"repro/internal/rpc"
)

// ErrSnapshotTag reports an unusable snapshot tag.
var ErrSnapshotTag = errors.New("gekkofs: invalid snapshot tag")

func validTag(tag string) error {
	if len(tag) == 0 || len(tag) > proto.MaxSnapshotTag {
		return fmt.Errorf("%w: %q", ErrSnapshotTag, tag)
	}
	return nil
}

// SnapshotReserve runs phase one against every daemon and returns the
// cluster epoch the snapshot will pin: the maximum of the per-daemon
// proposals. Exposed separately from Snapshot (alongside SnapshotCommit
// and SnapshotAbort) so crash harnesses can sever a daemon between the
// phases; applications want Snapshot.
func (c *Client) SnapshotReserve(tag string) (uint64, error) {
	if err := validTag(tag); err != nil {
		return 0, err
	}
	proposals := make([]uint64, len(c.conns))
	err := c.fanOut(func(node int) error {
		e := rpc.NewEnc(len(tag) + 4)
		e.U8(proto.SnapReserve).Str(tag)
		d, err := c.call(node, proto.OpSnapshot, e.Bytes(), nil, rpc.BulkNone)
		if err != nil {
			return err
		}
		proposals[node] = d.U64()
		return d.Done()
	})
	if err != nil {
		return 0, err
	}
	var epoch uint64
	for _, p := range proposals {
		epoch = max(epoch, p)
	}
	return epoch, nil
}

// SnapshotCommit pins tag at epoch on every daemon (phase two).
// Idempotent — safe to retry against daemons that already committed or
// that restarted since the reserve.
func (c *Client) SnapshotCommit(tag string, epoch uint64) error {
	if err := validTag(tag); err != nil {
		return err
	}
	return c.fanOut(func(node int) error {
		e := rpc.NewEnc(len(tag) + 12)
		e.U8(proto.SnapCommit).Str(tag).U64(epoch)
		d, err := c.call(node, proto.OpSnapshot, e.Bytes(), nil, rpc.BulkNone)
		if err != nil {
			return err
		}
		d.U64() // pinned epoch (echoes the request, or the prior commit's)
		return d.Done()
	})
}

// SnapshotAbort discards tag's reservation everywhere it still pends.
// Idempotent; committed daemons are untouched.
func (c *Client) SnapshotAbort(tag string) error {
	if err := validTag(tag); err != nil {
		return err
	}
	return c.fanOut(func(node int) error {
		e := rpc.NewEnc(len(tag) + 4)
		e.U8(proto.SnapAbort).Str(tag)
		d, err := c.call(node, proto.OpSnapshot, e.Bytes(), nil, rpc.BulkNone)
		if err != nil {
			return err
		}
		return d.Done()
	})
}

// Snapshot pins the namespace under tag and returns the epoch the tag
// pinned. On failure the reservation is aborted best-effort and the tag
// is not usable (a partially committed tag never survives the
// Snapshots intersection).
func (c *Client) Snapshot(tag string) (uint64, error) {
	epoch, err := c.SnapshotReserve(tag)
	if err != nil {
		if !errors.Is(err, ErrSnapshotTag) {
			_ = c.SnapshotAbort(tag)
		}
		return 0, err
	}
	if err := c.SnapshotCommit(tag, epoch); err != nil {
		_ = c.SnapshotAbort(tag)
		return 0, fmt.Errorf("snapshot %s: commit: %w", tag, err)
	}
	return epoch, nil
}

// Snapshots lists the usable snapshots: tags every daemon has committed
// at the same epoch. A tag a failed commit left on only some daemons is
// filtered out here rather than surfacing as a readable-but-torn view.
func (c *Client) Snapshots() ([]proto.SnapshotEntry, error) {
	perNode := make([][]proto.SnapshotEntry, len(c.conns))
	err := c.fanOut(func(node int) error {
		d, err := c.call(node, proto.OpSnapshotList, nil, nil, rpc.BulkNone)
		if err != nil {
			return err
		}
		ents := proto.DecodeSnapshotList(d)
		if err := d.Done(); err != nil {
			return err
		}
		perNode[node] = ents
		return nil
	})
	if err != nil {
		return nil, err
	}
	agreed := make(map[string]uint64, len(perNode[0]))
	for _, ent := range perNode[0] {
		agreed[ent.Tag] = ent.Epoch
	}
	for _, ents := range perNode[1:] {
		seen := make(map[string]uint64, len(ents))
		for _, ent := range ents {
			seen[ent.Tag] = ent.Epoch
		}
		for tag, epoch := range agreed {
			if e, ok := seen[tag]; !ok || e != epoch {
				delete(agreed, tag)
			}
		}
	}
	out := make([]proto.SnapshotEntry, 0, len(agreed))
	for tag, epoch := range agreed {
		out = append(out, proto.SnapshotEntry{Tag: tag, Epoch: epoch})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
	return out, nil
}

// SnapshotEpoch maps a usable (fully committed) tag to its pinned
// epoch, for snapshot-aware readers that work in epochs — staging,
// fsck — so they resolve the tag once and pin every subsequent read.
func (c *Client) SnapshotEpoch(tag string) (uint64, error) {
	if err := validTag(tag); err != nil {
		return 0, err
	}
	ents, err := c.Snapshots()
	if err != nil {
		return 0, err
	}
	for _, ent := range ents {
		if ent.Tag == tag {
			return ent.Epoch, nil
		}
	}
	return 0, fmt.Errorf("snapshot %s: %w", tag, proto.ErrNotExist)
}

// SnapshotDrop unpins tag cluster-wide, releasing the version history
// and chunk pre-images it retained. ErrNotExist only when no daemon
// knew the tag — dropping a partially committed tag cleans up the
// daemons that do hold it.
func (c *Client) SnapshotDrop(tag string) error {
	if err := validTag(tag); err != nil {
		return err
	}
	missing := make([]bool, len(c.conns))
	err := c.fanOut(func(node int) error {
		e := rpc.NewEnc(len(tag) + 4)
		e.Str(tag)
		d, err := c.call(node, proto.OpSnapshotDrop, e.Bytes(), nil, rpc.BulkNone)
		if errors.Is(err, proto.ErrNotExist) {
			missing[node] = true
			return nil
		}
		if err != nil {
			return err
		}
		return d.Done()
	})
	if err != nil {
		return err
	}
	for _, m := range missing {
		if !m {
			return nil
		}
	}
	return fmt.Errorf("snapshot %s: %w", tag, proto.ErrNotExist)
}

// StatAt is Stat against the namespace a snapshot epoch pinned.
func (c *Client) StatAt(path string, epoch uint64) (FileInfo, error) {
	p, err := meta.Clean(path)
	if err != nil {
		return FileInfo{}, err
	}
	e := rpc.NewEnc(len(p) + 16)
	e.Str(p).U8(proto.StatAtEpoch).U64(epoch)
	d, err := c.call(c.dist.MetaTarget(p), proto.OpStat, e.Bytes(), nil, rpc.BulkNone)
	if err != nil {
		return FileInfo{}, err
	}
	blob := d.Blob()
	if err := d.Done(); err != nil {
		return FileInfo{}, err
	}
	md, err := meta.DecodeMetadata(blob)
	if err != nil {
		return FileInfo{}, err
	}
	return infoFromMeta(p, md), nil
}

// Versions returns a path's stored version history, newest first — the
// vkv-style accessor. The history reflects the bounded retention
// window, not every write ever made.
func (c *Client) Versions(path string) ([]meta.Version, error) {
	p, err := meta.Clean(path)
	if err != nil {
		return nil, err
	}
	e := rpc.NewEnc(len(p) + 8)
	e.Str(p).U8(proto.StatWantVersions)
	d, err := c.call(c.dist.MetaTarget(p), proto.OpStat, e.Bytes(), nil, rpc.BulkNone)
	if err != nil {
		return nil, err
	}
	d.Blob() // resolved live record; history follows
	vs := proto.DecodeVersions(d)
	if err := d.Done(); err != nil {
		return nil, err
	}
	return vs, nil
}

// ReadDirAt is ReadDir against the namespace a snapshot epoch pinned.
func (c *Client) ReadDirAt(path string, epoch uint64) ([]DirEntry, error) {
	p, err := meta.Clean(path)
	if err != nil {
		return nil, err
	}
	if p != meta.Root {
		fi, err := c.StatAt(p, epoch)
		if err != nil {
			return nil, err
		}
		if !fi.IsDir() {
			return nil, proto.ErrNotDir
		}
	}
	perNode := make([][]DirEntry, len(c.conns))
	err = c.fanOut(func(node int) error {
		ents, err := c.readDirNodeAt(node, p, proto.StatAtEpoch, epoch)
		if err != nil {
			return err
		}
		perNode[node] = ents
		return nil
	})
	if err != nil {
		return nil, err
	}
	var all []DirEntry
	for _, ents := range perNode {
		all = append(all, ents...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all, nil
}

// ReadSnapshot reads [off, off+len(p)) of path as pinned at epoch,
// without a descriptor: snapshot content is immutable, so there is no
// position, no write-behind and no size cache to coordinate with. Spans
// fan out to the owning daemons exactly like live reads, each carrying
// the epoch; the size clamp uses the metadata owner's view at that
// epoch. Snapshot reads go to the primary replica only — pre-images
// live where the primary chunk lived.
func (c *Client) ReadSnapshot(path string, epoch uint64, p []byte, off int64) (int, error) {
	cp, err := meta.Clean(path)
	if err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("gekkofs: negative offset %d: %w", off, proto.ErrInval)
	}
	if len(p) == 0 {
		return 0, nil
	}
	groups := c.groupByTarget(cp, off, int64(len(p)))
	metaNode := c.dist.MetaTarget(cp)
	if _, ok := groups[metaNode]; !ok {
		groups[metaNode] = &targetGroup{} // pure size probe, no bulk
	}
	var sizeState uint8
	var sizeView int64
	err = runGroups(groups, func(node int, g *targetGroup) error {
		e := rpc.NewEnc(len(cp) + 26 + 24*len(g.spans))
		e.Str(cp)
		proto.EncodeSpans(e, g.spans)
		e.U8(proto.ReadWantSize | proto.ReadAtEpoch).U64(epoch)
		var bulk []byte
		pooled := false
		dir := rpc.BulkNone
		if g.bytes > 0 {
			if len(g.spans) == 1 {
				bulk = p[g.bufOff[0] : g.bufOff[0]+g.spans[0].Len]
			} else {
				bulk = rpc.GetBuf(int(g.bytes))
				pooled = true
				defer rpc.PutBuf(bulk)
			}
			clear(bulk)
			dir = rpc.BulkOut
		}
		d, err := c.call(node, proto.OpReadChunks, e.Bytes(), bulk, dir)
		if err != nil {
			return err
		}
		cnt := d.U32()
		if int(cnt) != len(g.spans) {
			return fmt.Errorf("gekkofs: read reply carries %d span counts, want %d: %w",
				cnt, len(g.spans), proto.ErrInval)
		}
		for i := uint32(0); i < cnt; i++ {
			got := d.I64()
			if s := g.spans[i]; got < 0 || got > s.Len {
				return fmt.Errorf("gekkofs: read reply claims %d present bytes for a %d-byte span: %w",
					got, s.Len, proto.ErrInval)
			}
		}
		state := d.U8()
		size := d.I64()
		if err := d.Done(); err != nil {
			return err
		}
		if node == metaNode {
			sizeState, sizeView = state, size
		}
		if pooled {
			var boff int64
			for i, s := range g.spans {
				copy(p[g.bufOff[i]:g.bufOff[i]+s.Len], bulk[boff:boff+s.Len])
				boff += s.Len
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	switch sizeState {
	case proto.ReadSizeFile:
	case proto.ReadSizeNone:
		return 0, proto.ErrNotExist // path did not exist at the epoch
	default:
		return 0, fmt.Errorf("gekkofs: read reply size state %d: %w", sizeState, proto.ErrInval)
	}
	if off >= sizeView {
		return 0, io.EOF
	}
	n := int64(len(p))
	if off+n > sizeView {
		n = sizeView - off
	}
	if n < int64(len(p)) {
		return int(n), io.EOF
	}
	return int(n), nil
}
