package client

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/daemon"
	"repro/internal/meta"
	"repro/internal/proto"
	"repro/internal/rpc"
	"repro/internal/transport"
	"repro/internal/vfs"
)

// pipelineCluster is newLocalCluster with daemon handles exposed, so
// tests can assert on daemon-side operation counters and crash daemons.
func pipelineCluster(t testing.TB, nodes int, cfg Config) (*Client, []*daemon.Daemon, func() *Client) {
	t.Helper()
	fabric := transport.NewMemNetwork()
	daemons := make([]*daemon.Daemon, nodes)
	for i := 0; i < nodes; i++ {
		d, err := daemon.New(daemon.Config{ID: i, FS: vfs.NewMem(), ChunkSize: cfg.ChunkSize})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		fabric.Register(i, d.Server())
		daemons[i] = d
	}
	mount := func() *Client {
		conns := make([]rpc.Conn, nodes)
		for i := range conns {
			conn, err := fabric.Dial(i)
			if err != nil {
				t.Fatal(err)
			}
			conns[i] = conn
		}
		mcfg := cfg
		mcfg.Conns = conns
		c, err := New(mcfg)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c := mount()
	if err := c.EnsureRoot(); err != nil {
		t.Fatal(err)
	}
	return c, daemons, mount
}

func sumStats(daemons []*daemon.Daemon) daemon.Stats {
	var total daemon.Stats
	for _, d := range daemons {
		st := d.Stats()
		total.StatOps += st.StatOps
		total.ReadOps += st.ReadOps
		total.WriteOps += st.WriteOps
		total.SizeUpdates += st.SizeUpdates
	}
	return total
}

// TestAsyncFsyncBarrier verifies the two halves of the Fsync contract
// under write-behind: the in-flight window is drained (data readable by
// another client) and the cached size candidate is flushed (no size
// update RPC leaves the client before the barrier, exactly one does at
// it).
func TestAsyncFsyncBarrier(t *testing.T) {
	c, daemons, mount := pipelineCluster(t, 4, Config{ChunkSize: 64, AsyncWrites: true, WriteWindow: 4})
	fd, err := c.Open("/a", O_CREATE|O_WRONLY)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5A}, 1000) // spans many chunks, all daemons
	if _, err := c.WriteAt(fd, payload, 0); err != nil {
		t.Fatal(err)
	}
	if n := sumStats(daemons).SizeUpdates; n != 0 {
		t.Fatalf("size update RPC before the barrier (%d)", n)
	}
	other := mount()
	if info, err := other.Stat("/a"); err != nil || info.Size() != 0 {
		t.Fatalf("pre-barrier stat = %v, %v; want size 0 (candidate unflushed)", info.Size(), err)
	}
	if err := c.Fsync(fd); err != nil {
		t.Fatal(err)
	}
	if n := sumStats(daemons).SizeUpdates; n != 1 {
		t.Fatalf("size updates after barrier = %d, want 1", n)
	}
	if info, err := other.Stat("/a"); err != nil || info.Size() != int64(len(payload)) {
		t.Fatalf("post-barrier stat = %v, %v; want %d", info.Size(), err, len(payload))
	}
	got := make([]byte, len(payload))
	rfd, err := other.Open("/a", O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := other.ReadAt(rfd, got, 0); err != nil && err != io.EOF || n != len(payload) {
		t.Fatalf("post-barrier read = %d, %v", n, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("post-barrier read returned wrong bytes")
	}
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncCloseBarrier verifies Close alone (no Fsync) drains the
// window and flushes the size.
func TestAsyncCloseBarrier(t *testing.T) {
	c, _, mount := pipelineCluster(t, 3, Config{ChunkSize: 32, AsyncWrites: true})
	fd, err := c.Open("/b", O_CREATE|O_WRONLY)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{7}, 500)
	if _, err := c.WriteAt(fd, payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}
	other := mount()
	got, n := make([]byte, 600), 0
	rfd, err := other.Open("/b", O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	if n, err = other.ReadAt(rfd, got, 0); err != io.EOF {
		t.Fatalf("read past EOF = %v, want io.EOF", err)
	}
	if n != len(payload) || !bytes.Equal(got[:n], payload) {
		t.Fatalf("after Close: read %d bytes, want %d", n, len(payload))
	}
}

// TestAsyncReadDrainsWindow verifies program-order read-after-write on
// one descriptor: a read issued right after an asynchronous write must
// observe it (the descriptor's window is drained before the read).
func TestAsyncReadDrainsWindow(t *testing.T) {
	c, _, _ := pipelineCluster(t, 4, Config{ChunkSize: 64, AsyncWrites: true, WriteWindow: 2})
	fd, err := c.Open("/rw", O_CREATE|O_RDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(fd)
	for round := 0; round < 8; round++ {
		payload := bytes.Repeat([]byte{byte(round + 1)}, 333)
		off := int64(round) * 333
		if _, err := c.WriteAt(fd, payload, off); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(payload))
		if n, err := c.ReadAt(fd, got, off); (err != nil && err != io.EOF) || n != len(payload) {
			t.Fatalf("round %d: read-after-write = %d, %v", round, n, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round %d: read-after-write returned stale bytes", round)
		}
	}
	// The positioned Read path drains too.
	if _, err := c.Seek(fd, 0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	first := make([]byte, 333)
	if _, err := c.Read(fd, first); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if first[0] != 1 {
		t.Fatalf("positioned read = %d, want 1", first[0])
	}
}

// TestAsyncOverlappingWritesOrdered verifies program order for
// overlapping writes on one descriptor: a rewrite of a region still in
// flight must not lose to the earlier write racing it. The pipeline
// drains before enqueueing a conflicting extent.
func TestAsyncOverlappingWritesOrdered(t *testing.T) {
	c, _, _ := pipelineCluster(t, 4, Config{ChunkSize: 64, AsyncWrites: true, WriteWindow: 8})
	fd, err := c.Open("/ow", O_CREATE|O_RDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(fd)
	region := bytes.Repeat([]byte{0}, 640) // 10 chunks, all daemons
	for round := 0; round < 32; round++ {
		for i := range region {
			region[i] = byte(round + 1)
		}
		if _, err := c.WriteAt(fd, region, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Fsync(fd); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(region))
	if n, err := c.ReadAt(fd, got, 0); (err != nil && err != io.EOF) || n != len(region) {
		t.Fatalf("read = %d, %v", n, err)
	}
	for i, b := range got {
		if b != 32 {
			t.Fatalf("byte %d = %d after 32 overlapping rewrites, want 32 (earlier write won the race)", i, b)
		}
	}
}

// TestAsyncTruncateDrains verifies Truncate waits for the path's staged
// writes before discarding: an in-flight chunk RPC landing after the
// truncate would resurrect discarded bytes.
func TestAsyncTruncateDrains(t *testing.T) {
	c, _, _ := pipelineCluster(t, 3, Config{ChunkSize: 64, AsyncWrites: true, WriteWindow: 8})
	fd, err := c.Open("/tr", O_CREATE|O_RDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(fd)
	for round := 0; round < 16; round++ {
		if _, err := c.WriteAt(fd, bytes.Repeat([]byte{0xEE}, 640), 0); err != nil {
			t.Fatal(err)
		}
		if err := c.Truncate("/tr", 0); err != nil {
			t.Fatal(err)
		}
		if _, err := c.WriteAt(fd, []byte{1, 2, 3}, 0); err != nil {
			t.Fatal(err)
		}
		if err := c.Fsync(fd); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 640)
		n, err := c.ReadAt(fd, got, 0)
		if err != io.EOF || n != 3 {
			t.Fatalf("round %d: post-truncate read = %d, %v; want 3, io.EOF (stale bytes resurrected)", round, n, err)
		}
		if got[0] != 1 || got[1] != 2 || got[2] != 3 {
			t.Fatalf("round %d: post-truncate bytes = %v", round, got[:3])
		}
	}
}

// TestAsyncAppend verifies consecutive O_APPEND writes under write-behind
// don't overwrite each other: EOF resolves against the descriptor's own
// unflushed size candidate, which is raised at enqueue time.
func TestAsyncAppend(t *testing.T) {
	c, _, _ := pipelineCluster(t, 3, Config{ChunkSize: 64, AsyncWrites: true})
	fd, err := c.Open("/log", O_CREATE|O_WRONLY|O_APPEND)
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for i := 0; i < 5; i++ {
		part := bytes.Repeat([]byte{'a' + byte(i)}, 33)
		if _, err := c.Write(fd, part); err != nil {
			t.Fatal(err)
		}
		want = append(want, part...)
	}
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}
	rfd, err := c.Open("/log", O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(rfd)
	got := make([]byte, len(want)+8)
	n, err := c.ReadAt(rfd, got, 0)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if n != len(want) || !bytes.Equal(got[:n], want) {
		t.Fatalf("async appends interleaved wrong: got %d bytes, want %d", n, len(want))
	}
}

// tcpPipelineCluster stands daemons up on real sockets; the returned
// slice lets the fault tests crash one mid-window.
func tcpPipelineCluster(t *testing.T, nodes int, cfg Config) (*Client, []*daemon.Daemon) {
	t.Helper()
	conns := make([]rpc.Conn, nodes)
	daemons := make([]*daemon.Daemon, nodes)
	for i := 0; i < nodes; i++ {
		d, err := daemon.New(daemon.Config{ID: i, FS: vfs.NewMem(), ChunkSize: cfg.ChunkSize})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		daemons[i] = d
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go transport.ServeTCP(l, d.Server())
		conn, err := transport.DialTCP(l.Addr().String(), 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		conns[i] = conn
	}
	cfg.Conns = conns
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyProtocol(); err != nil {
		t.Fatal(err)
	}
	if err := c.EnsureRoot(); err != nil {
		t.Fatal(err)
	}
	return c, daemons
}

// TestAsyncCrashMidWindowLatchesOnce crashes a daemon under a
// write-behind window over real TCP. The write that hits the dead daemon
// still returns nil (it is acknowledged locally); the failure must
// surface at the next barrier — exactly once — and later barriers must
// run clean.
func TestAsyncCrashMidWindowLatchesOnce(t *testing.T) {
	c, daemons := tcpPipelineCluster(t, 3, Config{ChunkSize: 64, AsyncWrites: true, WriteWindow: 8})

	// A path whose metadata lives on a daemon that stays alive (node 0),
	// so only chunk traffic hits the crashed node and the barrier's size
	// flush itself succeeds.
	path := ""
	for _, cand := range []string{"/f0", "/f1", "/f2", "/f3", "/f4", "/f5"} {
		if c.dist.MetaTarget(cand) == 0 {
			path = cand
			break
		}
	}
	if path == "" {
		t.Fatal("no candidate path with metadata on node 0")
	}
	fd, err := c.Open(path, O_CREATE|O_WRONLY)
	if err != nil {
		t.Fatal(err)
	}
	// The write range must include chunks owned by the victim, node 2.
	payload := make([]byte, 64*32) // chunks 0..31, hash-spread over 3 nodes
	hits := 0
	for id := int64(0); id < 32; id++ {
		if c.dist.ChunkTarget(path, meta.ChunkID(id)) == 2 {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no chunk of the write range lands on node 2; widen the range")
	}

	daemons[2].Close() // crash: every RPC it receives now fails

	// One call, so no earlier latch can surface here: it must return nil.
	if _, err := c.WriteAt(fd, payload, 0); err != nil {
		t.Fatalf("async write after crash returned synchronously: %v", err)
	}
	if err := c.Fsync(fd); err == nil {
		t.Fatal("Fsync after crashed-daemon writes returned nil")
	}
	// Surfaced exactly once: the next barrier is clean.
	if err := c.Fsync(fd); err != nil {
		t.Fatalf("second Fsync re-surfaced the latched error: %v", err)
	}
	if err := c.Close(fd); err != nil {
		t.Fatalf("Close after surfaced error: %v", err)
	}
}

// TestAsyncErrorSurfacesOnWrite verifies the other surfacing path: when
// the application keeps writing, the latched failure comes back from a
// Write call instead, and once surfaced the descriptor quiesces.
func TestAsyncErrorSurfacesOnWrite(t *testing.T) {
	c, daemons := tcpPipelineCluster(t, 2, Config{ChunkSize: 64, AsyncWrites: true, WriteWindow: 2})
	path := ""
	for _, cand := range []string{"/g0", "/g1", "/g2", "/g3"} {
		if c.dist.MetaTarget(cand) == 0 {
			path = cand
			break
		}
	}
	if path == "" {
		t.Fatal("no candidate path with metadata on node 0")
	}
	fd, err := c.Open(path, O_CREATE|O_WRONLY)
	if err != nil {
		t.Fatal(err)
	}
	daemons[1].Close()
	payload := make([]byte, 64*16)
	surfaced := 0
	for i := 0; i < 50 && surfaced == 0; i++ {
		if _, err := c.WriteAt(fd, payload, int64(i)*int64(len(payload))); err != nil {
			surfaced++
		}
	}
	if surfaced == 0 {
		t.Fatal("no write surfaced the latched error in 50 calls")
	}
	// Drain whatever is still in flight; the tail may latch one more
	// failure, but barriers must eventually run clean.
	_ = c.Fsync(fd)
	if err := c.Fsync(fd); err != nil {
		t.Fatalf("barrier did not quiesce after surfacing: %v", err)
	}
	if err := c.Close(fd); err != nil {
		t.Fatalf("Close after quiesce: %v", err)
	}
}

// TestStatFreeReadRPCCount is the acceptance assertion for the stat-free
// read protocol: a Read costs chunk RPCs only — the stat counter must
// not move. A single-chunk read whose chunk lives on the path's metadata
// owner is exactly one RPC (down from two); a read elsewhere adds one
// parallel size probe instead of a serial stat.
func TestStatFreeReadRPCCount(t *testing.T) {
	c, daemons, _ := pipelineCluster(t, 4, Config{ChunkSize: 64})
	fd, err := c.Open("/data", O_CREATE|O_RDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(fd)
	payload := bytes.Repeat([]byte{3}, 64*16)
	if _, err := c.WriteAt(fd, payload, 0); err != nil {
		t.Fatal(err)
	}

	metaNode := c.dist.MetaTarget("/data")
	onOwner, offOwner := int64(-1), int64(-1)
	for id := int64(0); id < 16; id++ {
		if c.dist.ChunkTarget("/data", meta.ChunkID(id)) == metaNode {
			if onOwner < 0 {
				onOwner = id
			}
		} else if offOwner < 0 {
			offOwner = id
		}
	}
	if onOwner < 0 || offOwner < 0 {
		t.Fatalf("degenerate placement: onOwner=%d offOwner=%d", onOwner, offOwner)
	}
	buf := make([]byte, 64)

	// Chunk on the metadata owner: exactly 1 RPC per read, 0 stats.
	before := sumStats(daemons)
	const reads = 10
	for i := 0; i < reads; i++ {
		if _, err := c.ReadAt(fd, buf, onOwner*64); err != nil {
			t.Fatal(err)
		}
	}
	after := sumStats(daemons)
	if d := after.StatOps - before.StatOps; d != 0 {
		t.Fatalf("stat RPCs during reads = %d, want 0", d)
	}
	if d := after.ReadOps - before.ReadOps; d != reads {
		t.Fatalf("read RPCs = %d, want %d (1 per Read)", d, reads)
	}

	// Chunk elsewhere: 2 parallel RPCs (chunk + size probe), still 0 stats.
	before = after
	for i := 0; i < reads; i++ {
		if _, err := c.ReadAt(fd, buf, offOwner*64); err != nil {
			t.Fatal(err)
		}
	}
	after = sumStats(daemons)
	if d := after.StatOps - before.StatOps; d != 0 {
		t.Fatalf("stat RPCs during off-owner reads = %d, want 0", d)
	}
	if d := after.ReadOps - before.ReadOps; d != 2*reads {
		t.Fatalf("off-owner read RPCs = %d, want %d (chunk + probe)", d, 2*reads)
	}
}

// TestStatFreeReadSemantics pins the caller-visible contract the stat
// used to provide: EOF clamping, reads past EOF, holes as zeros, and
// ErrNotExist for a removed file.
func TestStatFreeReadSemantics(t *testing.T) {
	c, _, _ := pipelineCluster(t, 3, Config{ChunkSize: 64})
	fd, err := c.Open("/s", O_CREATE|O_RDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(fd)
	if _, err := c.WriteAt(fd, []byte("hello"), 200); err != nil { // hole below 200
		t.Fatal(err)
	}
	got := make([]byte, 300)
	n, err := c.ReadAt(fd, got, 0)
	if err != io.EOF || n != 205 {
		t.Fatalf("read = %d, %v; want 205, io.EOF", n, err)
	}
	for i := 0; i < 200; i++ {
		if got[i] != 0 {
			t.Fatalf("hole byte %d = %d, want 0", i, got[i])
		}
	}
	if string(got[200:205]) != "hello" {
		t.Fatalf("tail = %q", got[200:205])
	}
	if n, err := c.ReadAt(fd, got, 500); err != io.EOF || n != 0 {
		t.Fatalf("read past EOF = %d, %v; want 0, io.EOF", n, err)
	}
	if err := c.Remove("/s"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadAt(fd, got, 0); !errors.Is(err, proto.ErrNotExist) {
		t.Fatalf("read of removed file = %v, want ErrNotExist", err)
	}
}

// evilReadServer answers OpReadChunks with per-span present-byte counts
// it chooses, standing in for a hostile or buggy daemon.
func evilReadServer(t *testing.T, countFor func(spanLen int64) int64, state uint8) *Client {
	t.Helper()
	srv := rpc.NewServer(4)
	ok := func(extra int) *rpc.Enc {
		e := rpc.NewEnc(2 + extra)
		e.U16(uint16(proto.OK))
		return e
	}
	srv.Register(proto.OpPing, func([]byte, rpc.Bulk) ([]byte, error) {
		e := ok(6)
		e.U32(0).U16(proto.ProtocolVersion)
		return e.Bytes(), nil
	})
	srv.Register(proto.OpCreate, func([]byte, rpc.Bulk) ([]byte, error) {
		return ok(0).Bytes(), nil
	})
	srv.Register(proto.OpReadChunks, func(req []byte, _ rpc.Bulk) ([]byte, error) {
		d := rpc.NewDec(req)
		_ = d.Str()
		spans := proto.DecodeSpans(d)
		e := ok(4 + 8*len(spans) + 9)
		e.U32(uint32(len(spans)))
		for _, s := range spans {
			e.I64(countFor(s.Len))
		}
		e.U8(state)
		e.I64(1 << 30) // claimed size: huge
		return e.Bytes(), nil
	})
	mem := transport.NewMemNetwork()
	mem.Register(0, srv)
	conn, err := mem.Dial(0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Conns: []rpc.Conn{conn}, ChunkSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestHostileReadCounts verifies the client refuses read replies whose
// per-span present-byte counts claim more than the span could hold (or
// are negative), and replies with an unknown size state.
func TestHostileReadCounts(t *testing.T) {
	cases := []struct {
		name  string
		count func(int64) int64
		state uint8
	}{
		{"count-over-span", func(l int64) int64 { return l + 1 }, proto.ReadSizeFile},
		{"count-negative", func(int64) int64 { return -1 }, proto.ReadSizeFile},
		{"unknown-state", func(l int64) int64 { return l }, 9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := evilReadServer(t, tc.count, tc.state)
			fd, err := c.Open("/x", O_CREATE|O_RDWR)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.ReadAt(fd, make([]byte, 64), 0); !errors.Is(err, proto.ErrInval) {
				t.Fatalf("hostile reply accepted: err = %v, want ErrInval", err)
			}
		})
	}
}

// TestVerifyProtocolRejectsOldDaemon verifies the mount-time version
// guard: a daemon whose ping reply carries no (or a different) protocol
// version is refused.
func TestVerifyProtocolRejectsOldDaemon(t *testing.T) {
	for _, tc := range []struct {
		name  string
		reply func(e *rpc.Enc)
	}{
		{"pre-version daemon", func(e *rpc.Enc) { e.U32(0) }},
		{"version mismatch", func(e *rpc.Enc) { e.U32(0).U16(proto.ProtocolVersion + 1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv := rpc.NewServer(1)
			srv.Register(proto.OpPing, func([]byte, rpc.Bulk) ([]byte, error) {
				e := rpc.NewEnc(8)
				e.U16(uint16(proto.OK))
				tc.reply(e)
				return e.Bytes(), nil
			})
			mem := transport.NewMemNetwork()
			mem.Register(0, srv)
			conn, err := mem.Dial(0)
			if err != nil {
				t.Fatal(err)
			}
			c, err := New(Config{Conns: []rpc.Conn{conn}})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.VerifyProtocol(); err == nil {
				t.Fatal("mixed-generation daemon accepted")
			}
		})
	}
	// And the real daemon passes.
	c, _, _ := pipelineCluster(t, 2, Config{})
	if err := c.VerifyProtocol(); err != nil {
		t.Fatalf("current daemon refused: %v", err)
	}
}
