package client

// Chunk replication, client failover and hedged reads. With
// Config.Replicas = R > 1 every chunk write fans out to the R daemons of
// the chunk's replica chain (distributor.ChunkReplicas: the primary plus
// R−1 ring successors), and reads prefer the primary but hedge to the
// next replica when the first RPC outlives the daemon's tracked p95
// latency — the classic tail-at-scale move — or fails outright. A
// per-mount condemnation list routes both demand reads and read-ahead
// around daemons that accumulated condemnStrikes consecutive transport
// errors; condemned daemons are re-probed in the background
// (ProbeDaemon) and rejoin when they answer again. Metadata is NOT
// replicated — only chunk data survives a daemon loss; a file whose
// metadata owner dies keeps serving reads on descriptors that already
// resolved, but stats and opens on it fail until the daemon returns.
//
// With Replicas ≤ 1 none of this machinery runs: placement, write
// fan-out and the read path reproduce the unreplicated protocol
// bit-for-bit.

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/proto"
	"repro/internal/rpc"
)

// ErrDegraded reports an I/O that found no live replica for a needed
// chunk: every daemon of the chunk's replica chain is condemned or
// failed the RPC at the transport level. It surfaces only then — losing
// up to R−1 replicas of a chunk degrades silently.
var ErrDegraded = errors.New("gekkofs: degraded: no live replica of a needed chunk")

const (
	// condemnStrikes is K: the number of consecutive transport errors
	// after which a daemon is condemned and skipped.
	condemnStrikes = 3
	// reprobeInterval rate-limits background ProbeDaemon re-probes of a
	// condemned daemon.
	reprobeInterval = 2 * time.Second
	// defaultHedgeDelay is the hedge trigger used before a daemon has
	// latencyMinSamples observations.
	defaultHedgeDelay = 20 * time.Millisecond
	// minHedgeDelay floors the hedge trigger so a sub-millisecond p95
	// (in-memory transports) cannot make every read fire two RPCs.
	minHedgeDelay = 2 * time.Millisecond
	// latencyWindow is the per-daemon ring of recent read latencies the
	// p95 estimate is computed over.
	latencyWindow = 64
	// latencyMinSamples gates the estimate: below it the default delay
	// applies.
	latencyMinSamples = 8
)

// daemonHealth is one daemon's client-side health record.
type daemonHealth struct {
	// strikes counts consecutive transport errors; any success resets it.
	strikes atomic.Int32
	// condemned marks the daemon dead for placement decisions.
	condemned atomic.Bool
	// lastProbe is the UnixNano of the last background re-probe launch.
	lastProbe atomic.Int64

	mu   sync.Mutex
	lat  []time.Duration // guarded by mu; ring of recent read latencies
	next int             // guarded by mu; ring write cursor
}

// observe records one successful read RPC's latency.
func (h *daemonHealth) observe(d time.Duration) {
	h.mu.Lock()
	if len(h.lat) < latencyWindow {
		h.lat = append(h.lat, d)
	} else {
		h.lat[h.next] = d
		h.next = (h.next + 1) % latencyWindow
	}
	h.mu.Unlock()
}

// p95 estimates the daemon's 95th-percentile read latency from the
// recent-latency ring, floored by minHedgeDelay; defaultHedgeDelay until
// enough samples accumulated.
func (h *daemonHealth) p95() time.Duration {
	h.mu.Lock()
	n := len(h.lat)
	if n < latencyMinSamples {
		h.mu.Unlock()
		return defaultHedgeDelay
	}
	tmp := make([]time.Duration, n)
	copy(tmp, h.lat)
	h.mu.Unlock()
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	p := tmp[n*95/100]
	if p < minHedgeDelay {
		p = minHedgeDelay
	}
	return p
}

// ClientStats are the client-side replication counters (the daemon-side
// view lives in proto.DaemonStats; these count decisions only the client
// can see).
type ClientStats struct {
	// HedgedReads counts reads served (or attempted) away from the
	// primary: a secondary RPC launched because the first attempt
	// outlived the p95 trigger or failed (see FailoverReads for the
	// failure subset), or a group whose condemned primary was skipped
	// outright — so degraded service stays visible after condemnation
	// settles.
	HedgedReads uint64
	// FailoverReads is the subset of HedgedReads launched because every
	// outstanding attempt had already failed, rather than merely slowed.
	FailoverReads uint64
	// ReplicaWrites counts acknowledged non-primary chunk-write copies
	// this client issued.
	ReplicaWrites uint64
	// CondemnedDaemons is the number of daemons currently condemned.
	CondemnedDaemons uint64
}

// Stats snapshots the client-side replication counters.
func (c *Client) Stats() ClientStats {
	st := ClientStats{
		HedgedReads:   c.hedgedReads.Load(),
		FailoverReads: c.failoverReads.Load(),
		ReplicaWrites: c.replicaWrites.Load(),
	}
	for i := range c.health {
		if c.health[i].condemned.Load() {
			st.CondemnedDaemons++
		}
	}
	return st
}

// transportError reports whether err is a transport-level failure (dead
// or unreachable daemon, closed pool, timeout) as opposed to an answer
// the daemon itself produced. Only transport failures justify failover:
// a decoded errno or a remote handler error is deterministic — every
// replica would say the same — and must surface, not be retried around.
func transportError(err error) bool {
	if err == nil {
		return false
	}
	var re *rpc.RemoteError
	if errors.As(err, &re) {
		return false
	}
	for _, deterministic := range []error{
		proto.ErrNotExist, proto.ErrExist, proto.ErrIsDir, proto.ErrNotDir,
		proto.ErrNotEmpty, proto.ErrInval, proto.ErrNotSupported,
	} {
		if errors.Is(err, deterministic) {
			return false
		}
	}
	return true
}

// strike records a transport error against node; condemnStrikes
// consecutive ones condemn it.
func (c *Client) strike(node int) {
	h := &c.health[node]
	if h.strikes.Add(1) >= condemnStrikes {
		h.condemned.Store(true)
	}
}

// condemn marks node dead immediately (mount-time verification failure).
func (c *Client) condemn(node int) {
	h := &c.health[node]
	h.strikes.Store(condemnStrikes)
	h.condemned.Store(true)
}

// observeSuccess resets node's strike count after any successful RPC.
func (c *Client) observeSuccess(node int) {
	c.health[node].strikes.Store(0)
}

// alive reports whether node should be used for placement. A condemned
// node additionally arms a rate-limited background re-probe, so a daemon
// that comes back rejoins the chain without any foreground stall.
func (c *Client) alive(node int) bool {
	if c.replicas <= 1 {
		return true
	}
	h := &c.health[node]
	if !h.condemned.Load() {
		return true
	}
	now := time.Now().UnixNano()
	last := h.lastProbe.Load()
	if now-last >= int64(reprobeInterval) && h.lastProbe.CompareAndSwap(last, now) {
		go func() {
			if info, err := ProbeDaemon(c.conns[node]); err == nil && info.Version == proto.ProtocolVersion {
				h.strikes.Store(0)
				h.condemned.Store(false)
			}
		}()
	}
	return false
}

// chunkChain returns the replica chain shared by every span of g. The
// spans of one target group were grouped by their primary, and
// ChunkReplicas derives the chain from the primary alone (the
// replica-distinctness invariant, docs/INVARIANTS.md), so any span's
// chain is the group's chain.
func (c *Client) chunkChain(path string, g *targetGroup) []int {
	return c.dist.ChunkReplicas(path, g.spans[0].ID, c.replicas)
}

// liveChain filters a replica chain down to non-condemned daemons.
func (c *Client) liveChain(chain []int) []int {
	live := make([]int, 0, len(chain))
	for _, n := range chain {
		if c.alive(n) {
			live = append(live, n)
		}
	}
	return live
}

// gatherBulk materializes the concatenated bulk region of g from p. A
// single-span group borrows the caller's slice (zero copy); multi-span
// groups concatenate into a pooled buffer the caller must release.
func gatherBulk(g *targetGroup, p []byte) (bulk []byte, pooled bool) {
	if len(g.spans) == 1 {
		s := g.spans[0]
		return p[g.bufOff[0] : g.bufOff[0]+s.Len], false
	}
	bulk = rpc.GetBuf(int(g.bytes))[:0]
	for i, s := range g.spans {
		bulk = append(bulk, p[g.bufOff[i]:g.bufOff[i]+s.Len]...)
	}
	return bulk, true
}

// writeGroupReplicated pushes one target group's spans to every live
// replica of its chain, in parallel. bulk is borrowed — every replica
// RPC reads it (BulkIn) and none mutates it, so one region backs the
// whole fan-out. The write succeeds when at least one replica
// acknowledged and no replica returned a deterministic error; a replica
// failing at the transport level is struck (and eventually condemned)
// instead of failing the write — that is the failover semantics that
// keeps a killed daemon from latching every descriptor. Only when the
// entire chain is condemned or fails does the write surface ErrDegraded.
func (c *Client) writeGroupReplicated(path string, g *targetGroup, chain []int, bulk []byte) error {
	live := c.liveChain(chain)
	if len(live) == 0 {
		return fmt.Errorf("gekkofs: write %s: replica chain %v: %w", path, chain, ErrDegraded)
	}
	errs := make([]error, len(live))
	var wg sync.WaitGroup
	for i, node := range live {
		flags := uint8(0)
		if node != chain[0] {
			flags = proto.WriteReplica
		}
		e := rpc.NewEnc(len(path) + 17 + 24*len(g.spans))
		e.Str(path)
		proto.EncodeSpans(e, g.spans)
		e.U8(flags)
		wg.Add(1)
		go func(i, node int, payload []byte) {
			defer wg.Done()
			d, err := c.call(node, proto.OpWriteChunks, payload, bulk, rpc.BulkIn)
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = checkWritten(d, g.bytes)
		}(i, node, e.Bytes())
	}
	wg.Wait()
	acked := 0
	var hard error
	var soft []error
	for i, err := range errs {
		switch {
		case err == nil:
			acked++
			c.observeSuccess(live[i])
			if live[i] != chain[0] {
				c.replicaWrites.Add(1)
				c.tel.replica.Inc()
			}
		case transportError(err):
			c.strike(live[i])
			soft = append(soft, fmt.Errorf("daemon %d: %w", live[i], err))
		default:
			if hard == nil {
				hard = err
			}
		}
	}
	if hard != nil {
		return hard
	}
	if acked == 0 {
		return fmt.Errorf("gekkofs: write %s: %w: %w", path, ErrDegraded, errors.Join(soft...))
	}
	return nil
}

// probeSize asks the path's metadata owner for its size view with a
// zero-span OpReadChunks — the stat-free read protocol's size half,
// split out because replicated reads may be served by a daemon that is
// not the metadata owner (only the owner's answer is authoritative, and
// metadata is not replicated).
func (c *Client) probeSize(path string, metaNode int) (uint8, int64, error) {
	e := rpc.NewEnc(len(path) + 9)
	e.Str(path)
	proto.EncodeSpans(e, nil)
	e.U8(proto.ReadWantSize)
	d, err := c.call(metaNode, proto.OpReadChunks, e.Bytes(), nil, rpc.BulkNone)
	if err != nil {
		return 0, 0, err
	}
	if cnt := d.U32(); cnt != 0 {
		return 0, 0, fmt.Errorf("gekkofs: size probe reply carries %d span counts: %w", cnt, proto.ErrInval)
	}
	state := d.U8()
	size := d.I64()
	if err := d.Done(); err != nil {
		return 0, 0, err
	}
	return state, size, nil
}

// readGroupInto issues one OpReadChunks for g against node, landing the
// concatenated span data in bulk (len g.bytes, pre-zeroed by the
// caller). No size view is requested — replicated reads resolve the EOF
// clamp through a dedicated probeSize at the metadata owner.
func (c *Client) readGroupInto(node int, path string, g *targetGroup, bulk []byte) error {
	e := rpc.NewEnc(len(path) + 17 + 24*len(g.spans))
	e.Str(path)
	proto.EncodeSpans(e, g.spans)
	d, err := c.call(node, proto.OpReadChunks, e.Bytes(), bulk, rpc.BulkOut)
	if err != nil {
		return err
	}
	cnt := d.U32()
	if int(cnt) != len(g.spans) {
		return fmt.Errorf("gekkofs: read reply carries %d span counts, want %d: %w",
			cnt, len(g.spans), proto.ErrInval)
	}
	for i := uint32(0); i < cnt; i++ {
		got := d.I64()
		if s := g.spans[i]; got < 0 || got > s.Len {
			return fmt.Errorf("gekkofs: read reply claims %d present bytes for a %d-byte span: %w",
				got, s.Len, proto.ErrInval)
		}
	}
	return d.Done()
}

// readResult is one read attempt's outcome; buf is the attempt's pooled
// bulk region, owned by whoever receives the result.
type readResult struct {
	node int
	buf  []byte
	err  error
}

// readGroupHedged serves one target group from its replica chain. The
// first live replica (normally the primary) is tried first; a second
// attempt launches at the next live replica when the first outlives the
// daemon's p95 latency estimate (a hedged read) or when every
// outstanding attempt has failed (a failover read). The first successful
// reply wins and is scattered into p; losers are drained in the
// background and their buffers recycled. Each attempt lands in its own
// pooled buffer — two racing RPCs must never scatter into the caller's
// memory concurrently.
func (c *Client) readGroupHedged(path string, g *targetGroup, p []byte, chain []int) error {
	cands := c.liveChain(chain)
	if len(cands) == 0 {
		return fmt.Errorf("gekkofs: read %s: replica chain %v: %w", path, chain, ErrDegraded)
	}
	if cands[0] != chain[0] {
		// The condemned primary was skipped: this group is served by a
		// secondary from the first RPC on.
		c.hedgedReads.Add(1)
		c.tel.hedged.Inc()
	}
	results := make(chan readResult, len(cands))
	launched := 0
	launch := func() {
		node := cands[launched]
		launched++
		go func() {
			//gkfs:owns-buf (released here on failure, or by the result's receiver)
			buf := rpc.GetBuf(int(g.bytes))
			// The daemon pushes only up to the last present byte; holes and
			// EOF tails must read as zeros.
			clear(buf)
			start := time.Now()
			if err := c.readGroupInto(node, path, g, buf); err != nil {
				rpc.PutBuf(buf)
				results <- readResult{node: node, err: err}
				return
			}
			c.health[node].observe(time.Since(start))
			results <- readResult{node: node, buf: buf}
		}()
	}
	launch()
	hedge := time.NewTimer(c.health[cands[0]].p95())
	defer hedge.Stop()
	var winner []byte
	var hard error
	var soft []error
	pending := 1
	for pending > 0 && winner == nil {
		select {
		case r := <-results:
			pending--
			if r.err == nil {
				winner = r.buf
				c.observeSuccess(r.node)
				break
			}
			if transportError(r.err) {
				c.strike(r.node)
				soft = append(soft, fmt.Errorf("daemon %d: %w", r.node, r.err))
			} else if hard == nil {
				hard = r.err
			}
			if pending == 0 && launched < len(cands) {
				// Every outstanding attempt failed: fail over to the next
				// replica immediately instead of waiting for the timer.
				c.hedgedReads.Add(1)
				c.failoverReads.Add(1)
				c.tel.hedged.Inc()
				c.tel.failover.Inc()
				launch()
				pending++
			}
		case <-hedge.C:
			if launched < len(cands) {
				c.hedgedReads.Add(1)
				c.tel.hedged.Inc()
				launch()
				pending++
			}
		}
	}
	if pending > 0 {
		// Losers still in flight own pooled buffers; recycle them as they
		// land without holding up the winner.
		go func(pending int) {
			for i := 0; i < pending; i++ {
				if r := <-results; r.buf != nil {
					rpc.PutBuf(r.buf)
				}
			}
		}(pending)
	}
	if winner == nil {
		if hard != nil {
			return hard
		}
		return fmt.Errorf("gekkofs: read %s: %w: %w", path, ErrDegraded, errors.Join(soft...))
	}
	var boff int64
	for i, s := range g.spans {
		copy(p[g.bufOff[i]:g.bufOff[i]+s.Len], winner[boff:boff+s.Len])
		boff += s.Len
	}
	rpc.PutBuf(winner)
	return nil
}

// readSpansReplicated is readSpans' replicated twin (Replicas > 1): each
// target group is served by readGroupHedged over its replica chain, and
// the size view comes from a dedicated probe at the metadata owner
// running alongside the data fan-out — still one parallel round trip.
func (c *Client) readSpansReplicated(of *openFile, p []byte, off int64) (int, error) {
	groups := c.groupByTarget(of.path, off, int64(len(p)))
	metaNode := c.dist.MetaTarget(of.path)
	var sizeState uint8
	var sizeView int64
	var sizeErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sizeState, sizeView, sizeErr = c.probeSize(of.path, metaNode)
	}()
	gerr := runGroups(groups, func(node int, g *targetGroup) error {
		return c.readGroupHedged(of.path, g, p, c.chunkChain(of.path, g))
	})
	wg.Wait()
	if err := errors.Join(gerr, sizeErr); err != nil {
		return 0, err
	}
	switch sizeState {
	case proto.ReadSizeFile:
	case proto.ReadSizeNone:
		return 0, proto.ErrNotExist
	default:
		return 0, fmt.Errorf("gekkofs: read reply size state %d: %w", sizeState, proto.ErrInval)
	}
	size := of.sizeFloor(sizeView)
	if off >= size {
		return 0, io.EOF
	}
	n := int64(len(p))
	if off+n > size {
		n = size - off
	}
	if n < int64(len(p)) {
		return int(n), io.EOF
	}
	return int(n), nil
}
