package client

import (
	"errors"
	"io"
	"math"
	"sync"
	"time"

	"repro/internal/rpc"
)

// The asynchronous read-ahead pipeline and the client-side chunk cache —
// the read mirror of pipeline.go's write-behind. The paper's data path
// keeps every node's SSD busy with overlapping chunk transfers (§III-A,
// §IV); a client that blocks each Read on a full RPC fan-out is bounded
// by round-trip latency instead, exactly as writes were before the
// write-behind window. With read-ahead enabled on a descriptor:
//
//   - a detector watches the descriptor's access pattern; once reads are
//     sequential (each starting where the previous ended), the client
//     speculatively issues the next chunk-span fetches into a bounded
//     per-descriptor in-flight window (ReadWindow counts span fetches,
//     each covering up to prefetchSpanChunks chunks in one RPC wave), so
//     the data for the *next* Read is already moving while the current
//     one is being consumed,
//   - completed prefetches land in a size-bounded, client-wide LRU chunk
//     cache (CacheBytes) over pooled buffers; Read/ReadAt serve from it
//     without touching the wire, and demand reads opportunistically
//     deposit the full chunk blocks they cover, so sequential re-reads
//     of a cached file move zero wire bytes,
//   - random access never speculates: a non-sequential read resets the
//     detector, and a non-sequential miss smaller than a chunk pays an
//     exact-range wire read (no block amplification; only the full
//     blocks it happens to cover are deposited) — block-aligned
//     expansion applies to sequential runs and chunk-or-larger
//     requests, where it costs at most two partial chunks and buys
//     complete, re-servable blocks,
//   - the cache never serves this client's own stale bytes: every write
//     path invalidates the blocks it overlaps after the data lands
//     (synchronous writes, write-behind completions, WritePath), size
//     growth drops EOF-bearing blocks, Truncate/Remove drop the path,
//     and a latched write-behind error drops the path too (the failed
//     ranges are undefined — serving a cached pre-write image would hide
//     that),
//   - a failed prefetch is never latched: the entry is discarded and the
//     read that needs those bytes pays a demand fetch, surfacing the
//     error (if it persists) exactly once, from that read.
//
// Cross-client staleness is the standard client-cache relaxation (XUFS
// and kin): another client's concurrent write or append may not be
// observed by a cached read until the affected blocks age out or this
// client writes the file itself. GekkoFS already leaves concurrent
// conflicting I/O undefined (paper §III-A); see docs/ARCHITECTURE.md.

// Read-ahead defaults.
const (
	// DefaultReadWindow is the in-flight prefetch span-fetch limit per
	// descriptor when read-ahead is on and Config.ReadWindow is zero.
	DefaultReadWindow = 4
	// DefaultCacheBytes sizes the client chunk cache when read-ahead is
	// enabled without an explicit Config.CacheBytes.
	DefaultCacheBytes = 32 << 20
	// prefetchSpanChunks is how many chunks one speculative span fetch
	// covers. Fetching chunk by chunk would pay one RPC wave — and
	// usually one size-probe RPC to the path's metadata owner — per
	// chunk; grouping amortizes the probe and engages several daemons
	// per wave exactly like a demand read's fan-out does.
	prefetchSpanChunks = 4
)

// seqThreshold is how many consecutive sequential reads arm speculation:
// the first read of a stream establishes the pattern, the second
// confirms it and starts prefetching.
const seqThreshold = 2

// errCacheDropped poisons a cache entry that was invalidated while its
// fetch was still in flight; readers treat it as a miss.
var errCacheDropped = errors.New("gekkofs: cached block dropped mid-fetch")

// readahead is one descriptor's prefetch state. The detector fields are
// guarded by mu; slots is the in-flight window (one token per
// outstanding span fetch — up to prefetchSpanChunks blocks each) and wg
// tracks outstanding fetch goroutines so tests can quiesce
// deterministically.
type readahead struct {
	slots chan struct{}
	wg    sync.WaitGroup

	mu      sync.Mutex
	lastEnd int64 // guarded by mu; end offset of the previous read on this descriptor
	seq     int   // guarded by mu; consecutive sequential reads observed
	nextOff int64 // guarded by mu; next block offset speculation would issue
	eofAt   int64 // guarded by mu; lowest believed EOF; prefetch never crosses it
}

func newReadahead(window int) *readahead {
	if window <= 0 {
		window = DefaultReadWindow
	}
	return &readahead{slots: make(chan struct{}, window), eofAt: math.MaxInt64}
}

// noteEOF lowers the believed EOF (a fetch observed the file end there).
func (ra *readahead) noteEOF(at int64) {
	ra.mu.Lock()
	if at < ra.eofAt {
		ra.eofAt = at
	}
	ra.mu.Unlock()
}

// continues reports whether a read at off continues the current
// sequential run (it starts exactly where the last read ended).
func (ra *readahead) continues(off int64) bool {
	ra.mu.Lock()
	defer ra.mu.Unlock()
	return off == ra.lastEnd
}

// --- chunk cache ---

// cacheEnt is one cached (or in-flight) chunk-aligned block of one path.
// done closes when the fetch settles; data/n/eof/err are immutable after
// that. The LRU links, ref count and gone flag are guarded by the cache
// mutex.
type cacheEnt struct {
	path string
	off  int64 // chunk-aligned block offset
	size int64 // block size charged against the cache budget

	done chan struct{}
	data []byte // pooled; nil until settled and after recycling
	n    int    // present bytes (n == block size unless eof)
	eof  bool   // the file ended at off+n when fetched
	err  error  // fetch failure; entry is already unlinked

	settled    bool      // guarded by chunkCache.mu
	gone       bool      // guarded by chunkCache.mu; unlinked from the cache (invalidated/evicted)
	ref        int       // guarded by chunkCache.mu; readers copying from data; blocks buffer recycling
	prev, next *cacheEnt // guarded by chunkCache.mu
}

// end returns the first byte past the entry's present data.
func (ent *cacheEnt) end() int64 { return ent.off + int64(ent.n) }

// pathBlocks indexes one path's cached blocks. eofs counts settled
// entries carrying an EOF mark, so size growth can drop exactly those
// without scanning paths that have none; eofHint remembers the lowest
// file end those entries observed, so fresh descriptors never speculate
// past a known EOF (it resets whenever an EOF entry is dropped — the
// end may have moved). gen counts this path's invalidations: a demand
// read snapshots it before going to the wire and its deposit is
// accepted only if no write to this path landed in between — per path,
// so an unrelated path's writes never discard the deposit.
type pathBlocks struct {
	blocks  map[int64]*cacheEnt // guarded by chunkCache.mu
	eofs    int                 // guarded by chunkCache.mu
	eofHint int64               // guarded by chunkCache.mu
	gen     uint64              // guarded by chunkCache.mu
}

func newPathBlocks() *pathBlocks {
	return &pathBlocks{blocks: make(map[int64]*cacheEnt), eofHint: math.MaxInt64}
}

// chunkCache is the client-wide block cache: chunk-aligned spans of file
// data keyed by (path, block offset), bounded by cap bytes, evicted LRU.
// Buffers are pooled (rpc.GetBuf/PutBuf) and recycled only once no
// reader holds a reference.
type chunkCache struct {
	mu    sync.Mutex
	cap   int64
	used  int64                  // guarded by mu
	paths map[string]*pathBlocks // guarded by mu
	// LRU list: head is most recently used, tail the eviction candidate.
	head, tail *cacheEnt // guarded by mu
}

func newChunkCache(capBytes int64) *chunkCache {
	if capBytes <= 0 {
		capBytes = DefaultCacheBytes
	}
	return &chunkCache{cap: capBytes, paths: make(map[string]*pathBlocks)}
}

// lruUnlink removes ent from the LRU list. Caller holds mu.
func (cc *chunkCache) lruUnlink(ent *cacheEnt) {
	if ent.prev != nil {
		ent.prev.next = ent.next
	} else if cc.head == ent {
		cc.head = ent.next
	}
	if ent.next != nil {
		ent.next.prev = ent.prev
	} else if cc.tail == ent {
		cc.tail = ent.prev
	}
	ent.prev, ent.next = nil, nil
}

// lruFront moves ent to the MRU position. Caller holds mu.
func (cc *chunkCache) lruFront(ent *cacheEnt) {
	if cc.head == ent {
		return
	}
	cc.lruUnlink(ent)
	ent.next = cc.head
	if cc.head != nil {
		cc.head.prev = ent
	}
	cc.head = ent
	if cc.tail == nil {
		cc.tail = ent
	}
}

// unlink removes ent from the index and the LRU list and releases its
// budget; the buffer is recycled once the last reader lets go (or here,
// when none holds it). Caller holds mu.
func (cc *chunkCache) unlink(ent *cacheEnt) {
	if ent.gone {
		return
	}
	ent.gone = true
	cc.used -= ent.size
	cc.lruUnlink(ent)
	if pb := cc.paths[ent.path]; pb != nil {
		delete(pb.blocks, ent.off)
		if ent.settled && ent.eof {
			pb.eofs--
			pb.eofHint = math.MaxInt64 // the file end may have moved
		}
		// An emptied pathBlocks is garbage-collected only when its
		// generation never moved: a gen>0 stub must survive so a deposit
		// whose wire read raced the invalidation cannot be fooled by a
		// freshly recreated gen-0 record (ABA). The retained stub is a
		// few words, only for paths both read and written by this client.
		if len(pb.blocks) == 0 && pb.gen == 0 {
			delete(cc.paths, ent.path)
		}
	}
	if ent.settled && ent.ref == 0 && ent.data != nil {
		rpc.PutBuf(ent.data)
		ent.data = nil
	}
}

// evict drops settled LRU entries until the budget fits. In-flight
// entries are pinned (their fetch is already paid for). Caller holds mu.
func (cc *chunkCache) evict() {
	for ent := cc.tail; ent != nil && cc.used > cc.cap; {
		prev := ent.prev
		if ent.settled {
			cc.unlink(ent)
		}
		ent = prev
	}
}

// contains reports whether a block (settled or in flight) exists at
// (path, off) without touching the LRU order or reference counts.
func (cc *chunkCache) contains(path string, off int64) bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	pb := cc.paths[path]
	return pb != nil && pb.blocks[off] != nil
}

// coverage reports how far into [off, end) the cache can serve: the
// offset of the first byte whose block (granularity bs) is neither
// present nor in flight, clamped to end. One lock acquisition for the
// whole scan.
func (cc *chunkCache) coverage(path string, off, end, bs int64) int64 {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	pb := cc.paths[path]
	if pb == nil {
		return off
	}
	pos := off
	for pos < end && pb.blocks[pos-pos%bs] != nil {
		pos = pos - pos%bs + bs
	}
	return min(pos, end)
}

// acquire returns the block at (path, off) with a reader reference, or
// nil. The caller must wait on done, then release.
func (cc *chunkCache) acquire(path string, off int64) *cacheEnt {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	pb := cc.paths[path]
	if pb == nil {
		return nil
	}
	ent := pb.blocks[off]
	if ent == nil {
		return nil
	}
	ent.ref++
	cc.lruFront(ent)
	return ent
}

// release drops a reader reference taken by acquire, recycling the
// buffer of an unlinked entry once the last reader is gone. A served
// entry is demoted to the eviction end: under pressure the cache must
// shed blocks the stream already consumed, never the prefetched blocks
// the reader is about to need (plain LRU does exactly the wrong thing
// here — consumption would refresh consumed blocks while the prefetch
// frontier's oldest, soonest-needed block ages to the tail).
func (cc *chunkCache) release(ent *cacheEnt) {
	cc.mu.Lock()
	ent.ref--
	switch {
	case ent.gone:
		if ent.ref == 0 && ent.data != nil {
			rpc.PutBuf(ent.data)
			ent.data = nil
		}
	default:
		cc.lruBack(ent)
	}
	cc.mu.Unlock()
}

// lruBack moves ent to the eviction end. Caller holds mu.
func (cc *chunkCache) lruBack(ent *cacheEnt) {
	if cc.tail == ent {
		return
	}
	cc.lruUnlink(ent)
	ent.prev = cc.tail
	if cc.tail != nil {
		cc.tail.next = ent
	}
	cc.tail = ent
	if cc.head == nil {
		cc.head = ent
	}
}

// startFetch registers an in-flight entry for (path, off), reserving
// size bytes of budget. It returns (ent, false) when the block is
// already present or being fetched.
func (cc *chunkCache) startFetch(path string, off, size int64) (*cacheEnt, bool) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	pb := cc.paths[path]
	if pb == nil {
		pb = newPathBlocks()
		cc.paths[path] = pb
	}
	if ent := pb.blocks[off]; ent != nil {
		return ent, false
	}
	ent := &cacheEnt{path: path, off: off, size: size, done: make(chan struct{})}
	pb.blocks[off] = ent
	cc.used += size
	cc.lruFront(ent)
	cc.evict()
	return ent, true
}

// settle completes an in-flight fetch with data. If the entry was
// invalidated mid-flight the buffer is recycled and waiters see a miss.
//
//gkfs:owns-buf
func (cc *chunkCache) settle(ent *cacheEnt, data []byte, n int, eof bool) {
	cc.mu.Lock()
	if ent.gone {
		ent.err = errCacheDropped
		rpc.PutBuf(data)
	} else {
		ent.data, ent.n, ent.eof = data, n, eof
		if eof {
			pb := cc.paths[ent.path]
			pb.eofs++
			if end := ent.end(); end < pb.eofHint {
				pb.eofHint = end
			}
		}
	}
	ent.settled = true
	close(ent.done)
	cc.mu.Unlock()
}

// settleErr completes an in-flight fetch that failed: the entry is
// unlinked and waiters treat it as a miss. Prefetch failures are never
// latched — the demand read that needs the bytes refetches and surfaces
// its own error.
func (cc *chunkCache) settleErr(ent *cacheEnt, err error) {
	cc.mu.Lock()
	ent.err = err
	ent.settled = true
	cc.unlink(ent)
	close(ent.done)
	cc.mu.Unlock()
}

// insert deposits an already-fetched block (a demand read's opportunistic
// contribution). gen must be the path's generation observed before the
// wire read was issued (see generation): an invalidation of this path
// since then means the bytes may predate a write and must not be cached.
//
//gkfs:owns-buf
func (cc *chunkCache) insert(path string, off int64, data []byte, eof bool, gen uint64) {
	size := int64(len(data))
	if eof {
		size = int64(cap(data)) // charge the class the pool will hold
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	pb := cc.paths[path]
	if pb == nil {
		pb = newPathBlocks()
		cc.paths[path] = pb
	}
	if pb.gen != gen {
		rpc.PutBuf(data)
		return
	}
	if pb.blocks[off] != nil {
		rpc.PutBuf(data)
		return
	}
	ent := &cacheEnt{
		path: path, off: off, size: size,
		done: make(chan struct{}),
		data: data, n: len(data), eof: eof, settled: true,
	}
	close(ent.done)
	pb.blocks[off] = ent
	if eof {
		pb.eofs++
		if end := ent.end(); end < pb.eofHint {
			pb.eofHint = end
		}
	}
	cc.used += size
	cc.lruFront(ent)
	cc.evict()
}

// generation snapshots the path's invalidation counter (see insert),
// materializing the path record so a later invalidation — even one that
// finds no blocks to drop — is observable against this snapshot.
func (cc *chunkCache) generation(path string) uint64 {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	pb := cc.paths[path]
	if pb == nil {
		pb = newPathBlocks()
		cc.paths[path] = pb
	}
	return pb.gen
}

// eofHint reports the lowest file end the path's cached EOF entries
// observed (MaxInt64 when none): fresh descriptors cap their
// speculation there instead of re-probing past a known EOF.
func (cc *chunkCache) eofHint(path string) int64 {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if pb := cc.paths[path]; pb != nil {
		return pb.eofHint
	}
	return math.MaxInt64
}

// invalidate drops every block of path overlapping [off, end), plus any
// EOF-bearing block of the path (a write or size grow may have moved the
// file end past what those blocks believed). In-flight blocks are
// poisoned: their fetch may have read the daemons before the write
// landed. bs is the block granularity.
func (cc *chunkCache) invalidate(path string, off, end, bs int64) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	pb := cc.paths[path]
	if pb == nil {
		// No blocks and no reader has snapshotted this path (generation
		// materializes the record) — nothing can go stale.
		return
	}
	pb.gen++
	for boff := off - off%bs; boff < end; boff += bs {
		if ent := pb.blocks[boff]; ent != nil {
			cc.unlink(ent)
		}
	}
	if pb.eofs > 0 {
		for _, ent := range pb.blocks {
			if ent.settled && ent.eof {
				cc.unlink(ent)
			}
		}
	}
}

// dropPath forgets every block of path (truncate, remove, latched write
// error — the cached image no longer describes the file).
func (cc *chunkCache) dropPath(path string) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	pb := cc.paths[path]
	if pb == nil {
		return
	}
	pb.gen++
	for _, ent := range pb.blocks {
		cc.unlink(ent)
	}
}

// entries reports how many blocks (settled or in flight) the cache
// holds; tests use it to prove random access never speculates.
func (cc *chunkCache) entries() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	n := 0
	for _, pb := range cc.paths {
		n += len(pb.blocks)
	}
	return n
}

// --- client integration ---

// cacheInvalidate drops the cached blocks overlapping a write to
// [off, end) of path, once the data has landed (or failed — either way
// the cached image is no longer trustworthy).
func (c *Client) cacheInvalidate(path string, off, end int64) {
	if cc := c.cache.Load(); cc != nil {
		cc.invalidate(path, off, end, c.chunkSize)
	}
}

// cacheDropPath drops every cached block of path.
func (c *Client) cacheDropPath(path string) {
	if cc := c.cache.Load(); cc != nil {
		cc.dropPath(path)
	}
}

// ensureCache returns the client's chunk cache, creating it on first use
// (OpenReadAhead on a client configured without one).
func (c *Client) ensureCache() *chunkCache {
	if cc := c.cache.Load(); cc != nil {
		return cc
	}
	c.cacheInit.Lock()
	defer c.cacheInit.Unlock()
	if cc := c.cache.Load(); cc != nil {
		return cc
	}
	cc := newChunkCache(c.cacheBytes)
	c.cache.Store(cc)
	return cc
}

// wireRead is one block-aligned wire fetch's outcome (see readThrough).
type wireRead struct {
	scratch []byte
	n       int
	err     error
}

// readThrough is the cache-aware read path. It splits [off, off+len(p))
// at the cache's coverage boundary: the missing tail goes to the wire
// immediately (one block-aligned fan-out — the alignment is what lets
// the whole range be deposited; unaligned edges would never complete a
// cached block), the covered prefix is copied from cached blocks (and
// in-flight prefetches awaited) while that fan-out is already moving.
// Without the overlap a large buffered read would pay the prefix wait
// and the tail fan-out as two serial round trips. It preserves
// readSpans's contract: a short count is always accompanied by io.EOF
// (or a real error).
func (c *Client) readThrough(of *openFile, p []byte, off int64) (int, error) {
	cc := c.cache.Load()
	if cc == nil {
		return c.readSpans(of, p, off)
	}
	if len(p) == 0 {
		return 0, nil
	}
	bs := c.chunkSize
	end := off + int64(len(p))

	// Launch the wire fetch for everything past the cache's coverage
	// before serving a single cached byte. Sequential continuations and
	// chunk-or-larger requests expand to block alignment (at most two
	// partial chunks of overhead, buying complete depositable blocks); a
	// non-sequential sub-chunk miss pays an exact-range read — a random
	// 4 KiB reader must not be amplified to chunk-sized fetches.
	miss := cc.coverage(of.path, off, end, bs)
	var wire chan wireRead
	var gen uint64
	var blo int64
	if miss < end {
		expand := end-off >= bs || (of.ra != nil && of.ra.continues(off))
		blo = miss
		bhi := end
		if expand {
			blo = miss - miss%bs
			bhi = end + (bs-end%bs)%bs
		}
		gen = cc.generation(of.path)
		scratch := rpc.GetBuf(int(bhi - blo))
		wire = make(chan wireRead, 1)
		go func() {
			n, err := c.readSpans(of, scratch, blo)
			wire <- wireRead{scratch, n, err}
		}()
	}

	pos := off
	var hitEOF bool
	for pos < miss {
		boff := pos - pos%bs
		ent := cc.acquire(of.path, boff)
		if ent == nil {
			break // invalidated since the coverage scan
		}
		<-ent.done
		if ent.err != nil {
			cc.release(ent)
			break
		}
		if bpos := int(pos - boff); bpos < ent.n {
			pos += int64(copy(p[pos-off:], ent.data[bpos:ent.n]))
		}
		isEOF, entEnd := ent.eof, ent.end()
		cc.release(ent)
		if isEOF && pos < end {
			// The block says the file ends at entEnd. The descriptor's
			// own unflushed size candidate overrules it (those bytes live
			// in the write-behind state, not in this cache) — fall back
			// to the wire, which consults the size floor.
			if of.pendingSize.Load() > entEnd {
				break
			}
			hitEOF = true
			break
		}
		if pos < miss && pos != boff+bs {
			break // incomplete non-EOF block: defensive, go to the wire
		}
	}

	if wire == nil {
		if hitEOF && pos < end {
			c.maybePrefetch(of, off, pos, true)
			return int(pos - off), io.EOF
		}
		if pos < end {
			// Coverage said fully cached, but the serve stopped early: a
			// block failed or was invalidated mid-flight, or a cached EOF
			// is overruled by the descriptor's own pending size. Never
			// return short without io.EOF — pay a wire read for the rest
			// (which consults the size floor and re-deposits nothing
			// stale: it runs under the current generation).
			n, err := c.readSpans(of, p[pos-off:], pos)
			if err == nil || err == io.EOF {
				// Still feed the detector: one transient fallback must
				// not cost a sequential stream its speculation.
				c.maybePrefetch(of, off, pos+int64(n), err == io.EOF)
			}
			return int(pos-off) + n, err
		}
		c.maybePrefetch(of, off, pos, false)
		return int(pos - off), nil
	}
	res := <-wire
	if res.err != nil && res.err != io.EOF {
		rpc.PutBuf(res.scratch)
		return int(pos - off), res.err
	}
	c.depositBlocks(cc, of.path, blo, res.scratch[:res.n], res.err == io.EOF, gen)
	if pos == miss && !hitEOF {
		// Clean splice: append the wire bytes to the served prefix.
		valid := blo + int64(res.n) // [blo, valid) holds good bytes
		if valid > pos {
			m := min(valid, end) - pos
			copy(p[pos-off:], res.scratch[pos-blo:pos-blo+m])
			pos += m
		}
		rpc.PutBuf(res.scratch)
		total := int(pos - off)
		// The aligned expansion may have observed EOF past the request's
		// end; the caller only sees EOF when its own range came up short.
		if pos < end {
			c.maybePrefetch(of, off, pos, true)
			return total, io.EOF
		}
		c.maybePrefetch(of, off, end, false)
		return total, nil
	}
	rpc.PutBuf(res.scratch)
	// The prefix serve stopped short of the wire range. A cache-served
	// EOF is the answer; an invalidated or failed block costs one
	// serial read for the gap (rare).
	if hitEOF {
		c.maybePrefetch(of, off, pos, true)
		return int(pos - off), io.EOF
	}
	n, err := c.readSpans(of, p[pos-off:], pos)
	if err == nil || err == io.EOF {
		c.maybePrefetch(of, off, pos+int64(n), err == io.EOF)
	}
	return int(pos-off) + n, err
}

// depositBlocks contributes a wire read's data to the cache: data holds
// the valid bytes starting at blo (an exact-range read may start
// mid-block; the lead-in to the first boundary is not depositable and
// is skipped). Every complete block is inserted; with eof (the read
// observed the file end at blo+len(data)) the trailing partial block is
// inserted as an EOF block — or, when the file ends exactly on a block
// boundary, an empty EOF marker block — so later reads at or past the
// end resolve EOF without touching the wire.
func (c *Client) depositBlocks(cc *chunkCache, path string, blo int64, data []byte, eof bool, gen uint64) {
	bs := c.chunkSize
	end := blo + int64(len(data))
	boff := blo + (bs-blo%bs)%bs // first block boundary at or past blo
	for ; boff+bs <= end; boff += bs {
		buf := rpc.GetBuf(int(bs))
		copy(buf, data[boff-blo:boff-blo+bs])
		cc.insert(path, boff, buf, false, gen)
	}
	if !eof {
		return
	}
	if boff < end {
		buf := rpc.GetBuf(int(end - boff))
		copy(buf, data[boff-blo:])
		cc.insert(path, boff, buf, true, gen)
	} else if boff == end {
		cc.insert(path, boff, nil, true, gen)
	}
}

// maybePrefetch feeds the sequential detector with a finished read
// [off, end) and, when the pattern is sequential, tops the descriptor's
// speculation window up: span fetches of up to prefetchSpanChunks
// chunk-sized blocks from the read end forward, bounded by the
// in-flight window and the believed EOF. It never blocks — a full
// window simply means speculation is already as deep as allowed.
func (c *Client) maybePrefetch(of *openFile, off, end int64, sawEOF bool) {
	ra := of.ra
	if ra == nil {
		return
	}
	bs := c.chunkSize
	span := bs * prefetchSpanChunks
	ra.mu.Lock()
	if off == ra.lastEnd {
		ra.seq++
	} else {
		ra.seq = 1
		ra.nextOff = 0
	}
	ra.lastEnd = end
	if sawEOF {
		if end < ra.eofAt {
			ra.eofAt = end
		}
	} else if end > ra.eofAt {
		// The file grew past a previously observed EOF; believe it again.
		ra.eofAt = math.MaxInt64
	}
	if ra.seq < seqThreshold || sawEOF {
		ra.mu.Unlock()
		return
	}
	start := end + (bs-end%bs)%bs // first block at or past the read end
	if ra.nextOff > start {
		start = ra.nextOff
	}
	horizon := end + int64(cap(ra.slots))*span
	eofAt := ra.eofAt
	ra.mu.Unlock()

	cc := c.cache.Load()
	if cc == nil {
		return
	}
	if hint := cc.eofHint(of.path); hint < eofAt {
		eofAt = hint
	}
	boff := start
	for boff < horizon && boff < eofAt {
		if cc.contains(of.path, boff) {
			boff += bs
			continue
		}
		select {
		case ra.slots <- struct{}{}:
		default:
			return // window full; the next read tops up again
		}
		// Claim a run of consecutive absent blocks for one span fetch.
		// The horizon gates where runs may start; a started run always
		// extends to full span length (overshooting the horizon by at
		// most one span) — clipping it would degrade the steady state
		// into single-block fetches as the horizon creeps along.
		var ents []*cacheEnt
		runStart := boff
		for boff < eofAt && len(ents) < prefetchSpanChunks {
			ent, fresh := cc.startFetch(of.path, boff, bs)
			if !fresh {
				break
			}
			ents = append(ents, ent)
			boff += bs
		}
		if len(ents) == 0 {
			// Another descriptor claimed the block since the contains
			// check; skip it rather than spin.
			<-ra.slots
			boff += bs
			continue
		}
		ra.mu.Lock()
		if boff > ra.nextOff {
			ra.nextOff = boff
		}
		ra.mu.Unlock()
		ra.wg.Add(1)
		go c.fetchSpan(cc, of, ents, runStart)
	}
}

// fetchSpan is one speculative span fetch: a single readSpans fan-out
// covering the run's blocks, scattered into one cache entry per block.
// EOF is recorded so the detector stops speculating past the file end;
// failures discard the entries without latching anywhere.
func (c *Client) fetchSpan(cc *chunkCache, of *openFile, ents []*cacheEnt, start int64) {
	defer func() {
		<-of.ra.slots
		of.ra.wg.Done()
	}()
	bs := c.chunkSize
	scratch := rpc.GetBuf(int(int64(len(ents)) * bs))
	t0 := time.Time{}
	if c.tel.prefetch != nil {
		t0 = time.Now()
	}
	n, err := c.readSpans(of, scratch, start)
	if c.tel.prefetch != nil {
		c.tel.prefetch.ObserveSince(t0)
	}
	if err != nil && !errors.Is(err, io.EOF) {
		for _, ent := range ents {
			cc.settleErr(ent, err)
		}
		rpc.PutBuf(scratch)
		return
	}
	valid := start + int64(n) // the file holds [start, valid) of this span
	for i, ent := range ents {
		boff := start + int64(i)*bs
		switch {
		case boff+bs <= valid:
			buf := rpc.GetBuf(int(bs))
			copy(buf, scratch[boff-start:boff-start+bs])
			cc.settle(ent, buf, int(bs), false)
		case err != nil: // io.EOF: partial or empty block at the file end
			m := max(valid-boff, 0)
			var buf []byte
			if m > 0 {
				buf = rpc.GetBuf(int(m))
				copy(buf, scratch[boff-start:boff-start+m])
			}
			cc.settle(ent, buf, int(m), true)
		default:
			// A clean readSpans fills the whole span; defensive only.
			cc.settleErr(ent, io.ErrUnexpectedEOF)
		}
	}
	if err != nil {
		of.ra.noteEOF(valid)
	}
	rpc.PutBuf(scratch)
}
