package client

import (
	"testing"
	"testing/quick"

	"repro/internal/daemon"
	"repro/internal/distributor"
	"repro/internal/rpc"
	"repro/internal/transport"
	"repro/internal/vfs"
)

func newLocalCluster(t testing.TB, nodes int, cfg Config) *Client {
	t.Helper()
	net := transport.NewMemNetwork()
	conns := make([]rpc.Conn, nodes)
	for i := 0; i < nodes; i++ {
		d, err := daemon.New(daemon.Config{ID: i, FS: vfs.NewMem(), ChunkSize: cfg.ChunkSize})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		net.Register(i, d.Server())
		conn, err := net.Dial(i)
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = conn
	}
	cfg.Conns = conns
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EnsureRoot(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	net := transport.NewMemNetwork()
	d, err := daemon.New(daemon.Config{FS: vfs.NewMem()})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	net.Register(0, d.Server())
	conn, _ := net.Dial(0)
	if _, err := New(Config{Conns: []rpc.Conn{conn}, Dist: distributor.NewSimpleHash(5)}); err == nil {
		t.Fatal("distributor/conn mismatch accepted")
	}
	if _, err := New(Config{Conns: []rpc.Conn{conn}, ChunkSize: -4}); err == nil {
		t.Fatal("negative chunk size accepted")
	}
}

func TestGroupByTargetPartition(t *testing.T) {
	c := newLocalCluster(t, 4, Config{ChunkSize: 512})
	// Property: the per-target groups partition the byte range exactly.
	f := func(off uint16, length uint16) bool {
		o, n := int64(off), int64(length)+1
		groups := c.groupByTarget("/some/file", o, n)
		var total int64
		seen := make(map[int64]bool) // buffer offsets must be unique
		for tgt, g := range groups {
			if tgt < 0 || tgt >= 4 {
				return false
			}
			if int64(len(g.spans)) != int64(len(g.bufOff)) {
				return false
			}
			var gbytes int64
			for i, s := range g.spans {
				if s.Len <= 0 || s.Off < 0 || s.Off+s.Len > 512 {
					return false
				}
				if seen[g.bufOff[i]] {
					return false
				}
				seen[g.bufOff[i]] = true
				gbytes += s.Len
			}
			if gbytes != g.bytes {
				return false
			}
			total += gbytes
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRelativePathRejected(t *testing.T) {
	c := newLocalCluster(t, 2, Config{ChunkSize: 512})
	if _, err := c.Open("relative/path", O_RDONLY); err == nil {
		t.Fatal("relative path accepted")
	}
	if _, err := c.Open("/a/../b", O_CREATE|O_WRONLY); err == nil {
		t.Fatal("dot-dot path accepted")
	}
	if err := c.Mkdir(""); err == nil {
		t.Fatal("empty path accepted")
	}
}

func TestFDLifecycle(t *testing.T) {
	c := newLocalCluster(t, 2, Config{ChunkSize: 512})
	fd, err := c.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	if p, err := c.PathOf(fd); err != nil || p != "/f" {
		t.Fatalf("PathOf = %q, %v", p, err)
	}
	fd2, err := c.Open("/f", O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	if fd == fd2 {
		t.Fatal("descriptor reuse while open")
	}
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(fd); err != ErrBadFD {
		t.Fatalf("double close = %v", err)
	}
	if _, err := c.PathOf(fd); err != ErrBadFD {
		t.Fatalf("PathOf after close = %v", err)
	}
	if err := c.Close(fd2); err != nil {
		t.Fatal(err)
	}
}

func TestEnsureRootIdempotent(t *testing.T) {
	c := newLocalCluster(t, 3, Config{ChunkSize: 512})
	for i := 0; i < 3; i++ {
		if err := c.EnsureRoot(); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := c.ReadDir("/")
	if err != nil || len(ents) != 0 {
		t.Fatalf("fresh root listing = %v, %v", ents, err)
	}
}

func TestChunkSizeAccessor(t *testing.T) {
	c := newLocalCluster(t, 1, Config{ChunkSize: 2048})
	if c.ChunkSize() != 2048 {
		t.Fatalf("ChunkSize = %d", c.ChunkSize())
	}
}
