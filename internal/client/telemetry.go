package client

import (
	"log/slog"
	"sync/atomic"
	"time"

	"repro/internal/proto"
	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// DefaultTraceSample is the default sampling interval: one RPC in 1024
// carries a trace ID over the wire and is logged on both ends. Cheap
// enough to leave on, frequent enough to always have recent spans.
const DefaultTraceSample = 1024

// clientTelemetry is the client's metric set, resolved once at New so
// the per-RPC record path does no map lookups. All pointers are nil
// when telemetry is disabled — every record call is then a single
// branch (the metrics are nil-receiver-safe).
type clientTelemetry struct {
	reg *telemetry.Registry

	metaHist  *telemetry.Histogram // round-trip, metadata ops
	writeHist *telemetry.Histogram // round-trip, OpWriteChunks
	readHist  *telemetry.Histogram // round-trip, OpReadChunks
	stageWait *telemetry.Histogram // write-behind window admission wait
	prefetch  *telemetry.Histogram // read-ahead span fetch duration
	inflight  *telemetry.Gauge
	traces    *telemetry.Counter
	hedged    *telemetry.Counter
	failover  *telemetry.Counter
	replica   *telemetry.Counter

	// Trace sampling: every sample-th RPC (counted by seq) is traced.
	// IDs are a splitmix64 walk from a per-client random seed, so
	// concurrent clients on one node emit distinct, greppable IDs.
	sample uint64
	seed   uint64
	seq    atomic.Uint64
}

// initTelemetry resolves the client metric set against reg and wires
// the transport-level histograms into the connection pools. sample <= 0
// selects DefaultTraceSample; reg == nil leaves everything disabled.
func (c *Client) initTelemetry(reg *telemetry.Registry, sample int) {
	if reg == nil {
		return
	}
	if sample <= 0 {
		sample = DefaultTraceSample
	}
	c.tel = clientTelemetry{
		reg:       reg,
		metaHist:  reg.Histogram(telemetry.ClientRPCMetaNS),
		writeHist: reg.Histogram(telemetry.ClientRPCWriteNS),
		readHist:  reg.Histogram(telemetry.ClientRPCReadNS),
		stageWait: reg.Histogram(telemetry.ClientWriteStageWaitNS),
		prefetch:  reg.Histogram(telemetry.ClientPrefetchFetchNS),
		inflight:  reg.Gauge(telemetry.ClientRPCInflight),
		traces:    reg.Counter(telemetry.ClientTracesTotal),
		hedged:    reg.Counter(telemetry.ClientHedgedReadsTotal),
		failover:  reg.Counter(telemetry.ClientFailoverReadsTotal),
		replica:   reg.Counter(telemetry.ClientReplicaWritesTotal),
		sample:    uint64(sample),
		seed:      uint64(time.Now().UnixNano()),
	}
	acquire := reg.Histogram(telemetry.ClientPoolAcquireWaitNS)
	segWait := reg.Histogram(telemetry.ClientShmSegWaitNS)
	for _, conn := range c.conns {
		if p, ok := conn.(interface {
			SetAcquireHist(*telemetry.Histogram)
		}); ok {
			p.SetAcquireHist(acquire)
		}
		hookSegWait(conn, segWait)
		if p, ok := conn.(interface{ SetConnHook(func(rpc.Conn)) }); ok {
			p.SetConnHook(func(inner rpc.Conn) { hookSegWait(inner, segWait) })
		}
	}
}

// hookSegWait installs the segment-wait histogram on connections that
// have one (the shared-memory transport). Pools apply it to every
// lazily dialed connection through their conn hook.
func hookSegWait(conn rpc.Conn, h *telemetry.Histogram) {
	if s, ok := conn.(interface {
		SetSegWaitHist(*telemetry.Histogram)
	}); ok {
		s.SetSegWaitHist(h)
	}
}

// rpcHist maps an op to its client round-trip histogram family: bulk
// writes, bulk reads, everything else metadata.
func (t *clientTelemetry) rpcHist(op rpc.Op) *telemetry.Histogram {
	switch op {
	case proto.OpWriteChunks:
		return t.writeHist
	case proto.OpReadChunks:
		return t.readHist
	default:
		return t.metaHist
	}
}

// nextTrace decides whether this RPC is sampled, minting its wire ID
// if so. Unsampled calls cost one atomic add.
func (c *Client) nextTrace() rpc.Trace {
	if c.tel.reg == nil {
		return rpc.Trace{}
	}
	n := c.tel.seq.Add(1)
	if n%c.tel.sample != 0 {
		return rpc.Trace{}
	}
	id := splitmix64(c.tel.seed + n)
	if id == 0 {
		id = 1 // 0 means unsampled on the wire
	}
	return rpc.Trace{ID: id, Flags: rpc.TraceSampled}
}

// stageWait blocks on a write-behind window slot, timing the wait (the
// pipeline's backpressure signal) when telemetry is on.
func (c *Client) stageWait(pl *pipeline) {
	if c.tel.stageWait == nil {
		pl.slots <- struct{}{}
		return
	}
	t0 := time.Now()
	pl.slots <- struct{}{}
	c.tel.stageWait.ObserveSince(t0)
}

// emitTrace logs the client half of a sampled span. The daemon logs
// the matching half under the same hex trace ID.
func (c *Client) emitTrace(node int, op rpc.Op, tr rpc.Trace, elapsed time.Duration, err error) {
	c.tel.traces.Inc()
	attrs := []any{
		slog.String("trace", traceHex(tr.ID)),
		slog.String("side", "client"),
		slog.Int("node", node),
		slog.String("op", proto.OpName(op)),
		slog.Int64("rtt_ns", int64(elapsed)),
	}
	if err != nil {
		attrs = append(attrs, slog.String("error", err.Error()))
	}
	slog.Info("gkfs.trace", attrs...)
}

// splitmix64 is the finalizer of the splitmix64 generator — a cheap
// bijective scramble turning the sequential sample counter into
// well-spread trace IDs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// traceHex renders a trace ID exactly like the daemon side does, so a
// single grep finds both halves of a span.
func traceHex(id uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}
