package client

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/proto"
	"repro/internal/rpc"
	"repro/internal/transport"
)

// DaemonInfo is what a mount-time ping reveals about one daemon.
type DaemonInfo struct {
	// ID is the daemon's index within the cluster's host list.
	ID int
	// Version is the daemon's protocol generation (0 when the daemon
	// predates versioned pings).
	Version uint16
	// ShmSocket is the daemon's shared-memory doorbell path, empty when
	// it serves none.
	ShmSocket string
}

// ProbeDaemon pings a daemon over an established connection and decodes
// its identity, protocol generation and shared-memory advertisement.
// Every trailer is additive, so probing an older daemon simply yields
// zero values for the fields it predates.
func ProbeDaemon(conn rpc.Conn) (DaemonInfo, error) {
	var info DaemonInfo
	payload, err := conn.Call(proto.OpPing, nil, nil, rpc.BulkNone)
	if err != nil {
		return info, err
	}
	d := rpc.NewDec(payload)
	if errno := proto.Errno(d.U16()); errno != proto.OK {
		return info, errno.Err()
	}
	info.ID = int(d.U32())
	if err := d.Err(); err != nil {
		return info, err
	}
	if d.Remaining() >= 2 {
		info.Version = d.U16()
	}
	if d.Err() == nil && d.Remaining() > 0 {
		info.ShmSocket = d.Str()
	}
	return info, d.Err()
}

// DialDaemons connects to every daemon address for a mount, selecting the
// transport per daemon according to mode:
//
//	"tcp"  — striped TCP pools, unconditionally.
//	"shm"  — require the shared-memory fast path on every daemon; fail
//	         loudly when one advertises no doorbell or it is unreachable.
//	"auto" — probe each daemon over TCP and switch to the shared-memory
//	         path when the daemon advertises a doorbell that is dialable
//	         from this node and answers as the same daemon; keep TCP
//	         otherwise. This is the node-local detection the paper's
//	         co-located deployments rely on.
//
// The same-identity check matters: a doorbell path is only meaningful on
// the daemon's own node, and an unrelated socket at the same path on a
// different node must not be silently mistaken for the daemon.
//
// replicas is the mount's chunk replication factor: with replicas > 1 up
// to replicas−1 unreachable daemons do not fail the dial — each dead
// address gets a lazily re-dialing TCP pool instead (the next call, or a
// background re-probe once the client condemns it, redials), so a
// cluster that lost a daemon can still be mounted to reach the surviving
// replicas. VerifyProtocol on the resulting client performs the actual
// tolerate-or-fail accounting; 0 or 1 keeps the fail-fast behavior.
func DialDaemons(addrs []string, mode string, timeout time.Duration, conns, replicas int) ([]rpc.Conn, error) {
	if mode == "" {
		mode = "auto"
	}
	if mode != "auto" && mode != "tcp" && mode != "shm" {
		return nil, fmt.Errorf("client: unknown transport %q (want auto, tcp or shm)", mode)
	}
	out := make([]rpc.Conn, 0, len(addrs))
	closeAll := func() {
		for _, c := range out {
			c.Close()
		}
	}
	// lazyTCP returns a pool that dials on first use: the slot a dead
	// daemon occupies until it comes back.
	lazyTCP := func(addr string) rpc.Conn {
		return transport.NewPool(conns, func() (rpc.Conn, error) {
			return transport.DialTCP(addr, timeout)
		})
	}
	deadBudget := replicas - 1
	for _, a := range addrs {
		a = strings.TrimSpace(a)
		tcp, err := transport.DialTCPPool(a, timeout, conns)
		if err != nil {
			if deadBudget > 0 {
				deadBudget--
				out = append(out, lazyTCP(a))
				continue
			}
			closeAll()
			return nil, fmt.Errorf("client: dial %s: %w", a, err)
		}
		if mode == "tcp" {
			out = append(out, tcp)
			continue
		}
		info, err := ProbeDaemon(tcp)
		if err != nil {
			tcp.Close()
			if deadBudget > 0 && mode != "shm" {
				deadBudget--
				out = append(out, lazyTCP(a))
				continue
			}
			closeAll()
			return nil, fmt.Errorf("client: probe %s: %w", a, err)
		}
		if info.ShmSocket == "" {
			if mode == "shm" {
				tcp.Close()
				closeAll()
				return nil, fmt.Errorf("client: daemon %s advertises no shared-memory doorbell", a)
			}
			out = append(out, tcp)
			continue
		}
		shm, err := transport.DialShmPool(info.ShmSocket, timeout, 1)
		if err == nil {
			var sinfo DaemonInfo
			sinfo, err = ProbeDaemon(shm)
			if err == nil && sinfo.ID != info.ID {
				err = fmt.Errorf("client: doorbell %s answers as daemon %d, expected %d (not co-located?)",
					info.ShmSocket, sinfo.ID, info.ID)
			}
			if err != nil {
				shm.Close()
			}
		}
		if err != nil {
			if mode == "shm" {
				tcp.Close()
				closeAll()
				return nil, fmt.Errorf("client: shm dial %s (daemon %s): %w", info.ShmSocket, a, err)
			}
			// Not co-located (or the doorbell is stale): TCP serves fine.
			out = append(out, tcp)
			continue
		}
		tcp.Close()
		out = append(out, shm)
	}
	return out, nil
}
