package client

import (
	"sync"
)

// The asynchronous write-behind pipeline. The paper's headline data-path
// numbers come from keeping every node's SSD busy with overlapping chunk
// transfers (§III-A, §IV); a client that blocks each Write on a full
// round trip per daemon is bounded by latency instead. With AsyncWrites
// enabled, Write/WriteAt stage their chunk-span RPCs into a bounded
// per-descriptor in-flight window and return immediately:
//
//   - the window depth caps in-flight chunk RPCs per descriptor; a write
//     that would exceed it blocks until a slot retires (backpressure, so
//     a fast producer cannot buffer unbounded data),
//   - completions retire asynchronously; the first failure latches on the
//     descriptor and surfaces exactly once, on the next Write/WriteAt,
//     Read/ReadAt, Fsync or Close (whichever touches the descriptor
//     first — a reader must not consume bytes whose producing writes
//     already failed under it),
//   - Fsync and Close are true barriers: they drain the window and then
//     flush the descriptor's cached size candidate, so after either
//     returns nil all acknowledged data is stored and visible,
//   - reads on the same descriptor drain the window first, and a write
//     overlapping an in-flight write of the same descriptor drains
//     before enqueueing, preserving program order for the issuing
//     process (GekkoFS's relaxed semantics only leave *concurrent*
//     overlapping I/O undefined).
//
// This is DisTRaC's argument for temporary HPC storage applied to the
// client: intermediate data tolerates deferred durability, so the fast
// path acknowledges locally and pipelines.

// DefaultWriteWindow is the in-flight chunk-RPC window depth used when
// AsyncWrites is on and Config.WriteWindow is zero.
const DefaultWriteWindow = 8

// pipeline is one descriptor's write-behind state. Enqueues happen under
// the descriptor lock (of.mu); completions run on their own goroutines
// and touch only the pipeline's internals, so barriers can wait for them
// while holding the descriptor lock without deadlock.
type pipeline struct {
	// slots is the in-flight window: one token per outstanding chunk RPC.
	slots chan struct{}
	// wg tracks outstanding RPCs. Add happens under of.mu, so a barrier
	// holding of.mu can Wait without racing a concurrent Add.
	wg sync.WaitGroup
	// onFail, when set, runs once when the first failure latches — the
	// hook that drops the descriptor path's chunk-cache blocks (a failed
	// write leaves its ranges undefined; a cached pre-write image must
	// not mask that). Set at open time, before any enqueue.
	onFail func()

	mu     sync.Mutex
	err    error       // guarded by mu; first completion failure, latched until surfaced
	ranges []*inflight // guarded by mu; byte extents of in-flight writes
}

// inflight is one staged write call's byte extent, alive until all of
// its per-daemon RPCs have retired.
type inflight struct {
	off, end int64
	rpcs     int
}

// conflicts reports whether [off, end) overlaps an in-flight write.
// Without this check two sequential writes to the same region would
// race in flight and the earlier one could land last.
func (pl *pipeline) conflicts(off, end int64) bool {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	for _, r := range pl.ranges {
		if off < r.end && r.off < end {
			return true
		}
	}
	return false
}

// addRange registers a staged write spanning [off, end) as rpcs
// outstanding RPCs; each completion calls releaseRange once.
func (pl *pipeline) addRange(off, end int64, rpcs int) *inflight {
	r := &inflight{off: off, end: end, rpcs: rpcs}
	pl.mu.Lock()
	pl.ranges = append(pl.ranges, r)
	pl.mu.Unlock()
	return r
}

// releaseRange retires one RPC of r, dropping the extent when the last
// one completes.
func (pl *pipeline) releaseRange(r *inflight) {
	pl.mu.Lock()
	r.rpcs--
	if r.rpcs == 0 {
		for i, x := range pl.ranges {
			if x == r {
				last := len(pl.ranges) - 1
				pl.ranges[i] = pl.ranges[last]
				pl.ranges = pl.ranges[:last]
				break
			}
		}
	}
	pl.mu.Unlock()
}

func newPipeline(depth int) *pipeline {
	if depth <= 0 {
		depth = DefaultWriteWindow
	}
	return &pipeline{slots: make(chan struct{}, depth)}
}

// latch records the first asynchronous failure; later ones are dropped
// (the descriptor is already poisoned and the first cause is the useful
// one).
func (pl *pipeline) latch(err error) {
	if err == nil {
		return
	}
	pl.mu.Lock()
	first := pl.err == nil
	if first {
		pl.err = err
	}
	onFail := pl.onFail
	pl.mu.Unlock()
	if first && onFail != nil {
		onFail()
	}
}

// takeErr returns the latched error and clears it, so a failure is
// surfaced to the application exactly once — on the next write, read,
// or barrier, whichever comes first.
func (pl *pipeline) takeErr() error {
	pl.mu.Lock()
	err := pl.err
	pl.err = nil
	pl.mu.Unlock()
	return err
}

// drain blocks until every in-flight RPC has retired. The caller must
// hold of.mu (excluding new enqueues). Draining does not consume the
// latched error; the callers that surface it (reads included) follow
// the drain with takeErr.
func (pl *pipeline) drain() {
	pl.wg.Wait()
}
