package client

import (
	"bytes"
	"io"
	"testing"
)

// TestAppendUnderSizeCache is the regression test for O_APPEND lost
// writes: with SizeCacheOps > 1 the server's size view lags the
// descriptor's writes, and resolving append EOF from the stat alone made
// the second cached append land on top of the first.
func TestAppendUnderSizeCache(t *testing.T) {
	c := newLocalCluster(t, 3, Config{ChunkSize: 64, SizeCacheOps: 8})
	fd, err := c.Open("/log", O_CREATE|O_WRONLY|O_APPEND)
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for i := 0; i < 5; i++ {
		part := bytes.Repeat([]byte{'a' + byte(i)}, 33) // crosses chunk bounds
		if _, err := c.Write(fd, part); err != nil {
			t.Fatal(err)
		}
		want = append(want, part...)
	}
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}

	rfd, err := c.Open("/log", O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(rfd)
	got := make([]byte, len(want)+16)
	n, err := c.ReadAt(rfd, got, 0)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if n != len(want) || !bytes.Equal(got[:n], want) {
		t.Fatalf("appends overwrote each other: got %d bytes %q, want %d bytes %q",
			n, got[:n], len(want), want)
	}
}

// TestReadOwnCachedWrites verifies a descriptor can read and seek past
// the server's stale size while its size update is still cached.
func TestReadOwnCachedWrites(t *testing.T) {
	c := newLocalCluster(t, 2, Config{ChunkSize: 128, SizeCacheOps: 100})
	fd, err := c.Open("/data", O_CREATE|O_RDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(fd)
	payload := bytes.Repeat([]byte{0xAB}, 300)
	if _, err := c.Write(fd, payload); err != nil {
		t.Fatal(err)
	}
	// The size update is still cached client-side (1 write < 100 ops),
	// so the server believes the file is empty.
	got := make([]byte, 300)
	n, err := c.ReadAt(fd, got, 0)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if n != len(payload) || !bytes.Equal(got[:n], payload) {
		t.Fatalf("read-after-cached-write = %d bytes, want %d", n, len(payload))
	}
	// SEEK_END must land at the cached size, not the stale server size.
	end, err := c.Seek(fd, 0, io.SeekEnd)
	if err != nil {
		t.Fatal(err)
	}
	if end != int64(len(payload)) {
		t.Fatalf("SEEK_END = %d, want %d", end, len(payload))
	}
}

// TestTruncateDropsPendingSize verifies truncate invalidates descriptors'
// unflushed size candidates: without that, the size floor would
// resurrect the pre-truncate size (ghost zero reads, appends past EOF,
// SEEK_END beyond the file).
func TestTruncateDropsPendingSize(t *testing.T) {
	c := newLocalCluster(t, 2, Config{ChunkSize: 64, SizeCacheOps: 100})
	fd, err := c.Open("/t", O_CREATE|O_RDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(fd)
	if _, err := c.Write(fd, bytes.Repeat([]byte{7}, 100)); err != nil {
		t.Fatal(err)
	}
	// Size update still cached (1 write < 100 ops); now discard the data.
	if err := c.Truncate("/t", 0); err != nil {
		t.Fatal(err)
	}
	if n, err := c.ReadAt(fd, make([]byte, 100), 0); err != io.EOF || n != 0 {
		t.Fatalf("read after truncate = %d, %v; want 0, EOF", n, err)
	}
	if end, err := c.Seek(fd, 0, io.SeekEnd); err != nil || end != 0 {
		t.Fatalf("SEEK_END after truncate = %d, %v; want 0", end, err)
	}
}

// BenchmarkReadSmall guards the read path's per-call overhead (stat +
// zero-fill + span gather) on a cache-hot 4 KiB read.
func BenchmarkReadSmall(b *testing.B) {
	c := newLocalCluster(b, 2, Config{ChunkSize: 512 << 10})
	fd, err := c.Open("/bench", O_CREATE|O_RDWR)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close(fd)
	if _, err := c.WriteAt(fd, bytes.Repeat([]byte{1}, 64<<10), 0); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 4<<10)
	b.SetBytes(4 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ReadAt(fd, buf, int64(i%16)<<12); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteLarge guards the striped write path's allocation
// behavior (pooled bulk buffers) on 1 MiB writes.
func BenchmarkWriteLarge(b *testing.B) {
	c := newLocalCluster(b, 4, Config{ChunkSize: 512 << 10})
	fd, err := c.Open("/bench", O_CREATE|O_RDWR)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close(fd)
	buf := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.WriteAt(fd, buf, int64(i%64)<<20); err != nil {
			b.Fatal(err)
		}
	}
}
