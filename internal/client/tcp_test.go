package client

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/daemon"
	"repro/internal/rpc"
	"repro/internal/transport"
	"repro/internal/vfs"
)

// TestTCPClusterEndToEnd runs the full client↔daemon protocol over real
// sockets: three daemons on loopback listeners, one client dialing all of
// them — the multi-process deployment shape of cmd/gkfs-daemon.
func TestTCPClusterEndToEnd(t *testing.T) {
	const nodes = 3
	conns := make([]rpc.Conn, nodes)
	for i := 0; i < nodes; i++ {
		d, err := daemon.New(daemon.Config{ID: i, FS: vfs.NewMem(), ChunkSize: 1024})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go transport.ServeTCP(l, d.Server())
		conn, err := transport.DialTCP(l.Addr().String(), 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		conns[i] = conn
	}

	c, err := New(Config{Conns: conns, ChunkSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EnsureRoot(); err != nil {
		t.Fatal(err)
	}

	// Metadata burst.
	if err := c.Mkdir("/job"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		fd, err := c.Create("/job/rank" + string(rune('a'+i%26)) + ".out")
		if err != nil && err.Error() != "gekkofs: file exists" {
			t.Fatal(err)
		}
		if err == nil {
			if err := c.Close(fd); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Data across chunk boundaries and daemons, over the wire.
	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(i * 13)
	}
	fd, err := c.Create("/job/data.bin")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteAt(fd, data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := c.ReadAt(fd, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("TCP round trip corrupted data")
	}
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}

	ents, err := c.ReadDir("/job")
	if err != nil || len(ents) == 0 {
		t.Fatalf("ReadDir over TCP = %v, %v", ents, err)
	}
}

// TestTCPVectoredMetadata runs the batch plane and the paged ReadDir over
// real sockets: the batched RPCs, per-op errno stitching, and multi-page
// directory drains must survive the framed wire, not just the in-process
// shortcut.
func TestTCPVectoredMetadata(t *testing.T) {
	const nodes = 2
	conns := make([]rpc.Conn, nodes)
	for i := 0; i < nodes; i++ {
		d, err := daemon.New(daemon.Config{ID: i, FS: vfs.NewMem(), ChunkSize: 1024})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go transport.ServeTCP(l, d.Server())
		conn, err := transport.DialTCP(l.Addr().String(), 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		conns[i] = conn
	}
	c, err := New(Config{Conns: conns, ChunkSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EnsureRoot(); err != nil {
		t.Fatal(err)
	}
	c.readDirPage = 5 // force several pages per daemon

	paths := make([]string, 37)
	for i := range paths {
		paths[i] = "/w" + string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	for i, err := range c.CreateMany(paths) {
		if err != nil {
			t.Fatalf("create %s over TCP: %v", paths[i], err)
		}
	}
	// Duplicate batch: every op answers ErrExist individually.
	for i, err := range c.CreateMany(paths) {
		if err == nil {
			t.Fatalf("duplicate create %s succeeded", paths[i])
		}
	}
	ents, err := c.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != len(paths) {
		t.Fatalf("paged TCP ReadDir = %d entries, want %d", len(ents), len(paths))
	}
	for i, err := range c.RemoveMany(paths) {
		if err != nil {
			t.Fatalf("remove %s over TCP: %v", paths[i], err)
		}
	}
}
