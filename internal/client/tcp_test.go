package client

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/daemon"
	"repro/internal/rpc"
	"repro/internal/transport"
	"repro/internal/vfs"
)

// TestTCPClusterEndToEnd runs the full client↔daemon protocol over real
// sockets: three daemons on loopback listeners, one client dialing all of
// them — the multi-process deployment shape of cmd/gkfs-daemon.
func TestTCPClusterEndToEnd(t *testing.T) {
	const nodes = 3
	conns := make([]rpc.Conn, nodes)
	for i := 0; i < nodes; i++ {
		d, err := daemon.New(daemon.Config{ID: i, FS: vfs.NewMem(), ChunkSize: 1024})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go transport.ServeTCP(l, d.Server())
		conn, err := transport.DialTCP(l.Addr().String(), 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		conns[i] = conn
	}

	c, err := New(Config{Conns: conns, ChunkSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EnsureRoot(); err != nil {
		t.Fatal(err)
	}

	// Metadata burst.
	if err := c.Mkdir("/job"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		fd, err := c.Create("/job/rank" + string(rune('a'+i%26)) + ".out")
		if err != nil && err.Error() != "gekkofs: file exists" {
			t.Fatal(err)
		}
		if err == nil {
			if err := c.Close(fd); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Data across chunk boundaries and daemons, over the wire.
	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(i * 13)
	}
	fd, err := c.Create("/job/data.bin")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteAt(fd, data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := c.ReadAt(fd, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("TCP round trip corrupted data")
	}
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}

	ents, err := c.ReadDir("/job")
	if err != nil || len(ents) == 0 {
		t.Fatalf("ReadDir over TCP = %v, %v", ents, err)
	}
}
