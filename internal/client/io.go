package client

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/meta"
	"repro/internal/proto"
	"repro/internal/rpc"
)

// The data path. A write or read is decomposed into chunk spans; spans
// are grouped by owning daemon (hash of path and chunk ID) and issued as
// one RPC per daemon, in parallel, with the span data concatenated in the
// RPC's bulk region. This is the paper's wide striping: a large I/O
// engages every node's SSD at once.

// targetGroup collects the spans of one I/O bound for one daemon.
type targetGroup struct {
	spans  []proto.ChunkSpan
	bufOff []int64 // caller-buffer offset per span
	bytes  int64
}

// groupByTarget splits [off, off+n) into per-daemon span groups.
func (c *Client) groupByTarget(path string, off, n int64) map[int]*targetGroup {
	slices := meta.Slices(off, n, c.chunkSize)
	groups := make(map[int]*targetGroup)
	for _, s := range slices {
		tgt := c.dist.ChunkTarget(path, s.ID)
		g := groups[tgt]
		if g == nil {
			g = &targetGroup{}
			groups[tgt] = g
		}
		g.spans = append(g.spans, proto.ChunkSpan{ID: s.ID, Off: s.ChunkOff, Len: s.Len})
		g.bufOff = append(g.bufOff, s.BufOff)
		g.bytes += s.Len
	}
	return groups
}

// runGroups executes fn per target group, in parallel when more than one
// daemon is involved. Every group's error is reported (errors.Join): a
// multi-daemon failure must not be silently narrowed to whichever single
// cause happened to be observed first.
func runGroups(groups map[int]*targetGroup, fn func(node int, g *targetGroup) error) error {
	if len(groups) == 1 {
		for node, g := range groups {
			return fn(node, g)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, len(groups))
	i := 0
	for node, g := range groups {
		wg.Add(1)
		go func(i, node int, g *targetGroup) {
			defer wg.Done()
			errs[i] = fn(node, g)
		}(i, node, g)
		i++
	}
	wg.Wait()
	return errors.Join(errs...)
}

// WriteAt writes p at offset off, without touching the descriptor
// position.
func (c *Client) WriteAt(fd int, p []byte, off int64) (int, error) {
	of, err := c.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	if of.flags&(O_WRONLY|O_RDWR) == 0 {
		return 0, proto.ErrInval
	}
	if off < 0 {
		return 0, proto.ErrInval
	}
	if len(p) == 0 {
		return 0, nil
	}
	if err := c.writeSpans(of, p, off); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Write writes p at the descriptor position (or at EOF with O_APPEND) and
// advances it.
func (c *Client) Write(fd int, p []byte) (int, error) {
	of, err := c.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	if of.flags&(O_WRONLY|O_RDWR) == 0 {
		return 0, proto.ErrInval
	}
	if len(p) == 0 {
		return 0, nil
	}
	of.mu.Lock()
	defer of.mu.Unlock()
	off := of.pos
	if of.flags&O_APPEND != 0 {
		// Append resolves EOF with a stat; concurrent appenders may
		// interleave (GekkoFS offers no atomic append — applications are
		// responsible for avoiding conflicts, paper §III-A). The stat is
		// raised by this descriptor's own unflushed size candidate: under
		// the size-update cache the server's view lags, and resolving EOF
		// from it alone made consecutive cached appends overwrite each
		// other.
		md, err := c.statPath(of.path)
		if err != nil {
			return 0, err
		}
		off = of.sizeFloor(md.Size)
	}
	if err := c.writeSpansLocked(of, p, off); err != nil {
		return 0, err
	}
	of.pos = off + int64(len(p))
	return len(p), nil
}

func (c *Client) writeSpans(of *openFile, p []byte, off int64) error {
	of.mu.Lock()
	defer of.mu.Unlock()
	return c.writeSpansLocked(of, p, off)
}

// writeSpansLocked sends the chunk writes and then the size update —
// synchronously, or through the write-behind pipeline when the
// descriptor has one. Caller holds of.mu.
func (c *Client) writeSpansLocked(of *openFile, p []byte, off int64) error {
	if of.pl != nil {
		return c.enqueueSpansLocked(of, p, off)
	}
	if err := c.writeGroups(of.path, p, off); err != nil {
		return err
	}
	return c.growSizeLocked(of, off+int64(len(p)))
}

// writeGroups pushes p's chunk spans for [off, off+len(p)) synchronously,
// one RPC per owning daemon in parallel — the shared sync write core of
// descriptor writes and WritePath. Cached chunk blocks overlapping the
// range are invalidated after the RPCs settle (on failure too: the
// affected ranges are undefined and a cached pre-write image must not
// mask that).
func (c *Client) writeGroups(path string, p []byte, off int64) error {
	groups := c.groupByTarget(path, off, int64(len(p)))
	err := runGroups(groups, func(node int, g *targetGroup) error {
		if c.replicas > 1 {
			// Replicated fan-out: every live replica of the group's chain
			// gets the same bulk region (all RPCs only read it), see
			// replica.go for the degraded-success semantics.
			bulk, pooled := gatherBulk(g, p)
			err := c.writeGroupReplicated(path, g, c.chunkChain(path, g), bulk)
			if pooled {
				rpc.PutBuf(bulk)
			}
			return err
		}
		payload, bulk, pooled := encodeWrite(path, g, p, false)
		d, err := c.call(node, proto.OpWriteChunks, payload, bulk, rpc.BulkIn)
		if pooled {
			rpc.PutBuf(bulk)
		}
		if err != nil {
			return err
		}
		return checkWritten(d, g.bytes)
	})
	c.cacheInvalidate(path, off, off+int64(len(p)))
	return err
}

// encodeWrite builds one write RPC's payload and its bulk region. (The
// bulk region is what the daemon pulls; RDMA-read in the paper's
// deployment.)
//
// A single-span group exposes the caller's own slice of p as the bulk
// region — the transport gathers it straight into the socket (writev) or
// copies it once into the shared segment, with no client-side staging
// copy. That is only sound when the caller blocks on the call before
// reusing p; paths that return before the RPC settles (the write-behind
// pipeline) pass copyAlways to force a concatenated pooled copy.
// pooled reports which case happened: a pooled bulk is released by the
// caller with rpc.PutBuf once Call returns; a borrowed slice of p must
// never enter the pool.
func encodeWrite(path string, g *targetGroup, p []byte, copyAlways bool) (payload, bulk []byte, pooled bool) {
	e := rpc.NewEnc(len(path) + 16 + 24*len(g.spans))
	e.Str(path)
	proto.EncodeSpans(e, g.spans)
	if !copyAlways && len(g.spans) == 1 {
		s := g.spans[0]
		return e.Bytes(), p[g.bufOff[0] : g.bufOff[0]+s.Len], false
	}
	bulk = rpc.GetBuf(int(g.bytes))[:0]
	for i, s := range g.spans {
		bulk = append(bulk, p[g.bufOff[i]:g.bufOff[i]+s.Len]...)
	}
	return e.Bytes(), bulk, true
}

// checkWritten validates a write RPC's reply against the bytes sent.
func checkWritten(d *rpc.Dec, want int64) error {
	written := d.I64()
	if err := d.Done(); err != nil {
		return err
	}
	if written != want {
		return io.ErrShortWrite
	}
	return nil
}

// enqueueSpansLocked is the write-behind fast path: it stages one RPC per
// target daemon into the descriptor's bounded in-flight window and
// returns without waiting for any round trip. The caller's buffer is
// copied into pooled bulk buffers before returning (io.Writer allows the
// caller to reuse p immediately), which is the same copy the synchronous
// path performs. A previously latched completion failure is surfaced
// here — before accepting new writes — and cleared. Caller holds of.mu.
func (c *Client) enqueueSpansLocked(of *openFile, p []byte, off int64) error {
	if err := of.pl.takeErr(); err != nil {
		return err
	}
	end := off + int64(len(p))
	if of.pl.conflicts(off, end) {
		// Rewriting a region that is still in flight: drain first, so
		// the writes land in program order. Streaming and strided
		// patterns never pay this; only overlapping rewrites serialize.
		of.pl.drain()
	}
	groups := c.groupByTarget(of.path, off, int64(len(p)))
	r := of.pl.addRange(off, end, len(groups))
	var remaining atomic.Int32
	remaining.Store(int32(len(groups)))
	for node, g := range groups {
		if c.replicas > 1 {
			// Replicated write-behind: the group occupies one window slot
			// regardless of R — the window bounds logical chunk writes, and
			// the replica fan-out inside the slot runs in parallel anyway.
			// The pooled copy is shared by all replica RPCs (BulkIn only
			// reads it). A replica failure condemns that daemon inside
			// writeGroupReplicated; only a write no replica accepted (or a
			// deterministic refusal) latches the descriptor.
			bulk := rpc.GetBuf(int(g.bytes))[:0]
			for i, s := range g.spans {
				bulk = append(bulk, p[g.bufOff[i]:g.bufOff[i]+s.Len]...)
			}
			chain := c.chunkChain(of.path, g)
			c.stageWait(of.pl)
			of.pl.wg.Add(1)
			go func(g *targetGroup, chain []int, bulk []byte) {
				defer func() {
					of.pl.releaseRange(r)
					<-of.pl.slots
					of.pl.wg.Done()
				}()
				err := c.writeGroupReplicated(of.path, g, chain, bulk)
				rpc.PutBuf(bulk)
				if remaining.Add(-1) == 0 {
					c.cacheInvalidate(of.path, off, end)
				}
				of.pl.latch(err)
			}(g, chain, bulk)
			continue
		}
		// copyAlways: this path returns before the RPC settles, so the
		// caller's buffer cannot back the bulk region.
		payload, bulk, _ := encodeWrite(of.path, g, p, true)
		// Blocking on a window slot is the pipeline's backpressure; slots
		// are released by completions, which never need of.mu, so holding
		// the descriptor lock here cannot deadlock.
		c.stageWait(of.pl)
		of.pl.wg.Add(1)
		go func(node int, want int64, payload, bulk []byte) {
			defer func() {
				of.pl.releaseRange(r)
				<-of.pl.slots
				of.pl.wg.Done()
			}()
			d, err := c.call(node, proto.OpWriteChunks, payload, bulk, rpc.BulkIn)
			rpc.PutBuf(bulk)
			// Invalidate once the whole write has settled on the daemons
			// (last group to retire): a chunk-cache block — or in-flight
			// prefetch — fetched before this point may predate the write
			// and must not serve. One invalidation per write, not per
			// group.
			if remaining.Add(-1) == 0 {
				c.cacheInvalidate(of.path, off, end)
			}
			if err != nil {
				of.pl.latch(err)
				return
			}
			of.pl.latch(checkWritten(d, want))
		}(node, g.bytes, payload, bulk)
	}
	// Record the size candidate locally; barriers flush it. The atomic
	// raises this descriptor's own size floor immediately, so appends,
	// SEEK_END and reads see the write's extent before any RPC lands.
	if cand := off + int64(len(p)); cand > of.pendingSize.Load() {
		of.pendingSize.Store(cand)
	}
	of.sizeDirty = true
	return nil
}

// GrowSize raises the file's size to at least size without writing any
// data: the byte range between the old EOF and size reads as zeros (a
// hole), and no chunk is materialized for it. Staging uses it to give a
// sparse file its full extent after skipping trailing zero runs. Under
// AsyncWrites the candidate joins the descriptor's deferred size state
// and lands at the next barrier; otherwise it follows the synchronous (or
// size-cached) update protocol, exactly like a write ending at size.
func (c *Client) GrowSize(fd int, size int64) error {
	of, err := c.lookupFD(fd)
	if err != nil {
		return err
	}
	if of.flags&(O_WRONLY|O_RDWR) == 0 {
		return proto.ErrInval
	}
	if size < 0 {
		return proto.ErrInval
	}
	of.mu.Lock()
	defer of.mu.Unlock()
	if of.pl != nil {
		if err := of.pl.takeErr(); err != nil {
			return err
		}
		if size > of.pendingSize.Load() {
			of.pendingSize.Store(size)
		}
		of.sizeDirty = true
		return nil
	}
	return c.growSizeLocked(of, size)
}

// WritePath stores p at offset off of path without a descriptor: one
// synchronous chunk RPC per owning daemon and nothing else — no file-map
// slot, no stat, and deliberately no size update (callers own that, e.g.
// through GrowMany's batched update-size plane). It is the bulk-ingest
// write half of staging's small-file path; general applications should
// use descriptors, whose size handling is automatic.
func (c *Client) WritePath(path string, p []byte, off int64) error {
	pth, err := meta.Clean(path)
	if err != nil {
		return err
	}
	if off < 0 {
		return proto.ErrInval
	}
	if len(p) == 0 {
		return nil
	}
	return c.writeGroups(pth, p, off)
}

// flushAsyncSizeLocked pushes the write-behind size candidate, if any.
// Caller holds of.mu and has already drained the window, so the
// candidate only ever describes data the daemons acknowledged (or data
// whose failure is being reported alongside).
func (c *Client) flushAsyncSizeLocked(of *openFile) error {
	if !of.sizeDirty {
		return nil
	}
	candidate := of.pendingSize.Load()
	if err := c.sendGrow(of.path, candidate); err != nil {
		return err
	}
	of.sizeDirty = false
	// Cleared only after the server has the candidate, so concurrent
	// readers never see a window where neither side knows the size.
	of.pendingSize.Store(0)
	return nil
}

// growSizeLocked records the new size candidate: either synchronously on
// the metadata daemon (the paper's default) or into the client-side
// size-update cache (§IV-B) which flushes every sizeCacheOps writes.
func (c *Client) growSizeLocked(of *openFile, candidate int64) error {
	if c.sizeCacheOps > 0 {
		if candidate > of.pendingSize.Load() {
			of.pendingSize.Store(candidate)
		}
		of.pendingOps++
		if of.pendingOps < c.sizeCacheOps {
			return nil
		}
		return c.flushSizeLocked(of)
	}
	return c.sendGrow(of.path, candidate)
}

// flushSizeLocked pushes the cached size candidate, if any.
func (c *Client) flushSizeLocked(of *openFile) error {
	if of.pendingOps == 0 {
		return nil
	}
	candidate := of.pendingSize.Load()
	of.pendingOps = 0
	if err := c.sendGrow(of.path, candidate); err != nil {
		return err
	}
	// Cleared only after the server has the candidate, so concurrent
	// readers never see a window where neither side knows the size.
	of.pendingSize.Store(0)
	return nil
}

func (c *Client) sendGrow(path string, candidate int64) error {
	e := rpc.NewEnc(len(path) + 24)
	e.Str(path).I64(candidate).U8(0).I64(time.Now().UnixNano())
	_, err := c.call(c.dist.MetaTarget(path), proto.OpUpdateSize, e.Bytes(), nil, rpc.BulkNone)
	// The file end may have moved: cached blocks carrying an EOF mark
	// would otherwise keep serving the old end as a spurious EOF.
	// Zero-length invalidation drops exactly the EOF-bearing blocks.
	c.cacheInvalidate(path, 0, 0)
	return err
}

// ReadAt reads into p from offset off without touching the descriptor
// position. It returns io.EOF when fewer than len(p) bytes lie below the
// file's current size, after the fashion of io.ReaderAt. Under
// AsyncWrites the descriptor's in-flight window is drained first
// (program-order read-after-write) and a latched write failure surfaces
// here, exactly once — the bytes a failed write covered are undefined,
// so handing them to a reader without the error would be silent
// corruption. Concurrent ReadAts then proceed in parallel, off the
// descriptor lock.
func (c *Client) ReadAt(fd int, p []byte, off int64) (int, error) {
	of, err := c.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	if of.flags&(O_WRONLY) != 0 && of.flags&O_RDWR == 0 {
		return 0, proto.ErrInval
	}
	if off < 0 {
		return 0, proto.ErrInval
	}
	if of.pl != nil {
		// The lock serializes the drain against in-progress enqueues; the
		// read RPCs themselves run outside it, so concurrent ReadAts still
		// overlap on the wire.
		of.mu.Lock()
		of.pl.drain()
		werr := of.pl.takeErr()
		of.mu.Unlock()
		if werr != nil {
			return 0, werr
		}
	}
	return c.readThrough(of, p, off)
}

// Read reads from the descriptor position and advances it. Like ReadAt
// it drains the write-behind window and surfaces a latched write error
// before touching the wire or the cache.
func (c *Client) Read(fd int, p []byte) (int, error) {
	of, err := c.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	if of.flags&(O_WRONLY) != 0 && of.flags&O_RDWR == 0 {
		return 0, proto.ErrInval
	}
	of.mu.Lock()
	defer of.mu.Unlock()
	if of.pl != nil {
		of.pl.drain()
		if werr := of.pl.takeErr(); werr != nil {
			return 0, werr
		}
	}
	n, err := c.readThrough(of, p, of.pos)
	of.pos += int64(n)
	return n, err
}

// readSpans gathers the chunk spans of [off, off+len(p)) from their
// daemons and clamps the result against the file size. The protocol is
// stat-free: every OpReadChunks request asks the daemons to piggyback
// their size view (proto.ReadWantSize), so no leading stat RPC is paid —
// the EOF clamp comes back with the data. Only the path's metadata owner
// holds the record; when none of the read's chunks live there, a
// zero-span size probe is added to the fan-out (still one round trip,
// all in parallel). The server view is raised by the descriptor's own
// unflushed size candidate, exactly as the stat used to be. Regions
// never written inside the size read as zeros.
func (c *Client) readSpans(of *openFile, p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if c.replicas > 1 {
		// Replicated clusters read through the hedging/failover path
		// (replica.go); this one stays bit-for-bit the unreplicated
		// protocol.
		return c.readSpansReplicated(of, p, off)
	}
	groups := c.groupByTarget(of.path, off, int64(len(p)))
	metaNode := c.dist.MetaTarget(of.path)
	if _, ok := groups[metaNode]; !ok {
		groups[metaNode] = &targetGroup{} // pure size probe, no bulk
	}
	// Written only by the metaNode group's closure; runGroups' WaitGroup
	// orders them before the reads below.
	var sizeState uint8
	var sizeView int64
	err := runGroups(groups, func(node int, g *targetGroup) error {
		e := rpc.NewEnc(len(of.path) + 17 + 24*len(g.spans))
		e.Str(of.path)
		proto.EncodeSpans(e, g.spans)
		e.U8(proto.ReadWantSize)
		var bulk []byte
		pooled := false
		dir := rpc.BulkNone
		if g.bytes > 0 {
			if len(g.spans) == 1 {
				// Single-span group: expose the caller's destination slice
				// itself, so the transport scatters the response bulk
				// straight into it — no staging buffer, no gather copy.
				bulk = p[g.bufOff[0] : g.bufOff[0]+g.spans[0].Len]
			} else {
				bulk = rpc.GetBuf(int(g.bytes))
				pooled = true
				defer rpc.PutBuf(bulk)
			}
			// Dirty either way (pooled buffer or caller memory): the daemon
			// sends only up to the last present byte, and everything past
			// it — holes, reads beyond EOF — must still read as zeros.
			clear(bulk)
			dir = rpc.BulkOut
		}
		d, err := c.call(node, proto.OpReadChunks, e.Bytes(), bulk, dir)
		if err != nil {
			return err
		}
		cnt := d.U32()
		if int(cnt) != len(g.spans) {
			return fmt.Errorf("gekkofs: read reply carries %d span counts, want %d: %w",
				cnt, len(g.spans), proto.ErrInval)
		}
		for i := uint32(0); i < cnt; i++ {
			// Per-span present-byte counts; holes are zeros. A count
			// outside [0, span.Len] means a hostile or buggy daemon is
			// claiming bytes it cannot have sent — refuse the reply
			// rather than trusting the bulk region past what was pushed.
			got := d.I64()
			if s := g.spans[i]; got < 0 || got > s.Len {
				return fmt.Errorf("gekkofs: read reply claims %d present bytes for a %d-byte span: %w",
					got, s.Len, proto.ErrInval)
			}
		}
		state := d.U8()
		size := d.I64()
		if err := d.Done(); err != nil {
			return err
		}
		if node == metaNode {
			sizeState, sizeView = state, size
		}
		if pooled {
			// Multi-span groups scatter the concatenated region out to the
			// caller's slices; the single-span path already landed in place.
			var boff int64
			for i, s := range g.spans {
				copy(p[g.bufOff[i]:g.bufOff[i]+s.Len], bulk[boff:boff+s.Len])
				boff += s.Len
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	switch sizeState {
	case proto.ReadSizeFile:
	case proto.ReadSizeNone:
		// The metadata owner has no record: the file was removed. The
		// descriptor's own unflushed writes cannot resurrect it — mirror
		// what the leading stat used to report.
		return 0, proto.ErrNotExist
	default:
		return 0, fmt.Errorf("gekkofs: read reply size state %d: %w", sizeState, proto.ErrInval)
	}
	size := of.sizeFloor(sizeView)
	if off >= size {
		return 0, io.EOF
	}
	n := int64(len(p))
	if off+n > size {
		n = size - off
	}
	if n < int64(len(p)) {
		return int(n), io.EOF
	}
	return int(n), nil
}
