package client

import (
	"io"
	"sync"
	"time"

	"repro/internal/meta"
	"repro/internal/proto"
	"repro/internal/rpc"
)

// The data path. A write or read is decomposed into chunk spans; spans
// are grouped by owning daemon (hash of path and chunk ID) and issued as
// one RPC per daemon, in parallel, with the span data concatenated in the
// RPC's bulk region. This is the paper's wide striping: a large I/O
// engages every node's SSD at once.

// targetGroup collects the spans of one I/O bound for one daemon.
type targetGroup struct {
	spans  []proto.ChunkSpan
	bufOff []int64 // caller-buffer offset per span
	bytes  int64
}

// groupByTarget splits [off, off+n) into per-daemon span groups.
func (c *Client) groupByTarget(path string, off, n int64) map[int]*targetGroup {
	slices := meta.Slices(off, n, c.chunkSize)
	groups := make(map[int]*targetGroup)
	for _, s := range slices {
		tgt := c.dist.ChunkTarget(path, s.ID)
		g := groups[tgt]
		if g == nil {
			g = &targetGroup{}
			groups[tgt] = g
		}
		g.spans = append(g.spans, proto.ChunkSpan{ID: s.ID, Off: s.ChunkOff, Len: s.Len})
		g.bufOff = append(g.bufOff, s.BufOff)
		g.bytes += s.Len
	}
	return groups
}

// runGroups executes fn per target group, in parallel when more than one
// daemon is involved.
func runGroups(groups map[int]*targetGroup, fn func(node int, g *targetGroup) error) error {
	if len(groups) == 1 {
		for node, g := range groups {
			return fn(node, g)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(groups))
	for node, g := range groups {
		wg.Add(1)
		go func(node int, g *targetGroup) {
			defer wg.Done()
			if err := fn(node, g); err != nil {
				errCh <- err
			}
		}(node, g)
	}
	wg.Wait()
	close(errCh)
	return <-errCh // nil when the channel is empty
}

// WriteAt writes p at offset off, without touching the descriptor
// position.
func (c *Client) WriteAt(fd int, p []byte, off int64) (int, error) {
	of, err := c.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	if of.flags&(O_WRONLY|O_RDWR) == 0 {
		return 0, proto.ErrInval
	}
	if off < 0 {
		return 0, proto.ErrInval
	}
	if len(p) == 0 {
		return 0, nil
	}
	if err := c.writeSpans(of, p, off); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Write writes p at the descriptor position (or at EOF with O_APPEND) and
// advances it.
func (c *Client) Write(fd int, p []byte) (int, error) {
	of, err := c.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	if of.flags&(O_WRONLY|O_RDWR) == 0 {
		return 0, proto.ErrInval
	}
	if len(p) == 0 {
		return 0, nil
	}
	of.mu.Lock()
	defer of.mu.Unlock()
	off := of.pos
	if of.flags&O_APPEND != 0 {
		// Append resolves EOF with a stat; concurrent appenders may
		// interleave (GekkoFS offers no atomic append — applications are
		// responsible for avoiding conflicts, paper §III-A). The stat is
		// raised by this descriptor's own unflushed size candidate: under
		// the size-update cache the server's view lags, and resolving EOF
		// from it alone made consecutive cached appends overwrite each
		// other.
		md, err := c.statPath(of.path)
		if err != nil {
			return 0, err
		}
		off = of.sizeFloor(md.Size)
	}
	if err := c.writeSpansLocked(of, p, off); err != nil {
		return 0, err
	}
	of.pos = off + int64(len(p))
	return len(p), nil
}

func (c *Client) writeSpans(of *openFile, p []byte, off int64) error {
	of.mu.Lock()
	defer of.mu.Unlock()
	return c.writeSpansLocked(of, p, off)
}

// writeSpansLocked sends the chunk writes and then the size update.
// Caller holds of.mu.
func (c *Client) writeSpansLocked(of *openFile, p []byte, off int64) error {
	groups := c.groupByTarget(of.path, off, int64(len(p)))
	err := runGroups(groups, func(node int, g *targetGroup) error {
		e := rpc.NewEnc(len(of.path) + 16 + 24*len(g.spans))
		e.Str(of.path)
		proto.EncodeSpans(e, g.spans)
		// Concatenate this daemon's spans; the bulk region is what the
		// daemon pulls (RDMA-read in the paper's deployment). The buffer
		// is pooled — the transport is done with it once Call returns.
		bulk := rpc.GetBuf(int(g.bytes))[:0]
		for i, s := range g.spans {
			bulk = append(bulk, p[g.bufOff[i]:g.bufOff[i]+s.Len]...)
		}
		d, err := c.call(node, proto.OpWriteChunks, e.Bytes(), bulk, rpc.BulkIn)
		rpc.PutBuf(bulk)
		if err != nil {
			return err
		}
		written := d.I64()
		if err := d.Done(); err != nil {
			return err
		}
		if written != g.bytes {
			return io.ErrShortWrite
		}
		return nil
	})
	if err != nil {
		return err
	}
	return c.growSizeLocked(of, off+int64(len(p)))
}

// growSizeLocked records the new size candidate: either synchronously on
// the metadata daemon (the paper's default) or into the client-side
// size-update cache (§IV-B) which flushes every sizeCacheOps writes.
func (c *Client) growSizeLocked(of *openFile, candidate int64) error {
	if c.sizeCacheOps > 0 {
		if candidate > of.pendingSize.Load() {
			of.pendingSize.Store(candidate)
		}
		of.pendingOps++
		if of.pendingOps < c.sizeCacheOps {
			return nil
		}
		return c.flushSizeLocked(of)
	}
	return c.sendGrow(of.path, candidate)
}

// flushSizeLocked pushes the cached size candidate, if any.
func (c *Client) flushSizeLocked(of *openFile) error {
	if of.pendingOps == 0 {
		return nil
	}
	candidate := of.pendingSize.Load()
	of.pendingOps = 0
	if err := c.sendGrow(of.path, candidate); err != nil {
		return err
	}
	// Cleared only after the server has the candidate, so concurrent
	// readers never see a window where neither side knows the size.
	of.pendingSize.Store(0)
	return nil
}

func (c *Client) sendGrow(path string, candidate int64) error {
	e := rpc.NewEnc(len(path) + 24)
	e.Str(path).I64(candidate).U8(0).I64(time.Now().UnixNano())
	_, err := c.call(c.dist.MetaTarget(path), proto.OpUpdateSize, e.Bytes(), nil, rpc.BulkNone)
	return err
}

// ReadAt reads into p from offset off without touching the descriptor
// position. It returns io.EOF when fewer than len(p) bytes lie below the
// file's current size, after the fashion of io.ReaderAt.
func (c *Client) ReadAt(fd int, p []byte, off int64) (int, error) {
	of, err := c.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	if of.flags&(O_WRONLY) != 0 && of.flags&O_RDWR == 0 {
		return 0, proto.ErrInval
	}
	if off < 0 {
		return 0, proto.ErrInval
	}
	return c.readSpans(of, p, off)
}

// Read reads from the descriptor position and advances it.
func (c *Client) Read(fd int, p []byte) (int, error) {
	of, err := c.lookupFD(fd)
	if err != nil {
		return 0, err
	}
	if of.flags&(O_WRONLY) != 0 && of.flags&O_RDWR == 0 {
		return 0, proto.ErrInval
	}
	of.mu.Lock()
	defer of.mu.Unlock()
	n, err := c.readSpans(of, p, of.pos)
	of.pos += int64(n)
	return n, err
}

// readSpans clamps [off, off+len(p)) against the file size (one stat RPC
// — the synchronous, cache-less protocol, raised by the descriptor's own
// unflushed size candidate under the size-update cache) and gathers the
// chunk spans from their daemons. Regions never written inside the size
// read as zeros.
func (c *Client) readSpans(of *openFile, p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	md, err := c.statPath(of.path)
	if err != nil {
		return 0, err
	}
	size := of.sizeFloor(md.Size)
	if off >= size {
		return 0, io.EOF
	}
	n := int64(len(p))
	if off+n > size {
		n = size - off
	}
	// No up-front zero-fill of p: the spans below cover [off, off+n)
	// exactly, and each group's cleared bulk buffer is copied over its
	// full span lengths, so every byte of p[:n] is overwritten — holes
	// arrive as zeros from the (cleared) bulk region. The old code
	// zeroed the window byte-at-a-time and then overwrote it anyway.
	groups := c.groupByTarget(of.path, off, n)
	err = runGroups(groups, func(node int, g *targetGroup) error {
		e := rpc.NewEnc(len(of.path) + 16 + 24*len(g.spans))
		e.Str(of.path)
		proto.EncodeSpans(e, g.spans)
		bulk := rpc.GetBuf(int(g.bytes))
		defer rpc.PutBuf(bulk)
		clear(bulk) // pooled: a short server push must still read as zeros
		d, err := c.call(node, proto.OpReadChunks, e.Bytes(), bulk, rpc.BulkOut)
		if err != nil {
			return err
		}
		cnt := d.U32()
		if int(cnt) != len(g.spans) {
			return proto.ErrInval
		}
		for i := uint32(0); i < cnt; i++ {
			_ = d.I64() // per-span present-byte counts; holes are zeros
		}
		if err := d.Done(); err != nil {
			return err
		}
		var boff int64
		for i, s := range g.spans {
			copy(p[g.bufOff[i]:g.bufOff[i]+s.Len], bulk[boff:boff+s.Len])
			boff += s.Len
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if n < int64(len(p)) {
		return int(n), io.EOF
	}
	return int(n), nil
}
