package core

import (
	"testing"
)

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(Config{Nodes: 0}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := NewCluster(Config{Nodes: -1}); err == nil {
		t.Fatal("negative nodes accepted")
	}
}

func TestUnknownDistributorRejectedAtMount(t *testing.T) {
	c, err := NewCluster(Config{Nodes: 1, Distributor: "nonsense"})
	if err == nil {
		defer c.Close()
		if _, err := c.NewClient(); err == nil {
			t.Fatal("unknown distributor accepted")
		}
		return
	}
	// Rejecting at deploy time is fine too.
}

func TestClusterLifecycle(t *testing.T) {
	c, err := NewCluster(Config{Nodes: 3, ChunkSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if c.Nodes() != 3 || c.ChunkSize() != 2048 {
		t.Fatalf("shape = %d nodes, chunk %d", c.Nodes(), c.ChunkSize())
	}
	if c.DeployTime() <= 0 {
		t.Fatal("deploy time missing")
	}
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	fd, err := cl.Create("/x")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(fd); err != nil {
		t.Fatal(err)
	}
	stats := c.DaemonStats()
	if len(stats) != 3 {
		t.Fatalf("stats for %d daemons", len(stats))
	}
	var creates uint64
	for _, st := range stats {
		creates += st.Creates
	}
	// Root + /x.
	if creates < 2 {
		t.Fatalf("creates = %d", creates)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Idempotent close.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultChunkSize(t *testing.T) {
	c, err := NewCluster(Config{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.ChunkSize() != 512*1024 {
		t.Fatalf("default chunk = %d", c.ChunkSize())
	}
}
