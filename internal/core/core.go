// Package core orchestrates GekkoFS deployments: it brings a set of
// daemons up (in-process for tests and single-machine use, or over TCP
// for multi-process runs), wires clients to them, and tears everything
// down. The paper stresses that any user can deploy the file system for
// the lifetime of a job in under 20 seconds on 512 nodes; Cluster records
// its own bring-up time so the startup experiment (T4 in DESIGN.md) can
// report the equivalent measurement.
package core

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/daemon"
	"repro/internal/distributor"
	"repro/internal/meta"
	"repro/internal/proto"
	"repro/internal/rpc"
	"repro/internal/staging"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/vfs"
)

// StageSpec names one directory-tree transfer between the host file
// system (the job's permanent PFS) and the deployment's namespace. It is
// the configuration form of the staging subsystem's lifecycle hooks: the
// paper's temporary-FS deployment cycle is stage-in, compute, stage-out,
// tear down.
type StageSpec struct {
	// HostDir is the host/PFS-side directory.
	HostDir string
	// FSDir is the GekkoFS-side directory.
	FSDir string
	// Options tune the transfer engine.
	Options staging.Options
}

// Config describes an in-process cluster.
type Config struct {
	// Nodes is the daemon count (one per simulated compute node).
	Nodes int
	// ChunkSize is the cluster-wide chunk size; zero selects 512 KiB.
	ChunkSize int64
	// PoolSize bounds each daemon's concurrent RPC handlers.
	PoolSize int
	// DataDir, when non-empty, stores daemon state under
	// DataDir/node<N>/ on the real file system; otherwise everything is
	// in memory.
	DataDir string
	// SyncWAL makes metadata durable before acknowledgement.
	SyncWAL bool
	// SizeCacheOps configures clients' size-update caching (paper
	// §IV-B); zero keeps strict synchronous updates.
	SizeCacheOps int
	// AsyncWrites enables clients' write-behind pipeline: writes stage
	// bounded in-flight chunk RPCs and return immediately; Fsync/Close
	// are the barriers (see internal/client/pipeline.go).
	AsyncWrites bool
	// WriteWindow bounds each descriptor's in-flight chunk-write RPCs
	// under AsyncWrites; zero selects the client default.
	WriteWindow int
	// ReadAhead enables clients' sequential read-ahead pipeline: once a
	// descriptor's reads are sequential, the next chunk-sized blocks are
	// prefetched into a bounded in-flight window and served from the
	// client chunk cache (see internal/client/readahead.go).
	ReadAhead bool
	// ReadWindow bounds each descriptor's in-flight prefetch block
	// fetches under ReadAhead; zero selects the client default.
	ReadWindow int
	// CacheBytes bounds each client's chunk cache; any positive value
	// enables caching (re-reads of cached data move zero wire bytes)
	// even without ReadAhead. Zero defers to the client default when
	// read-ahead needs a cache.
	CacheBytes int64
	// Replicas is the chunk replication factor R: every chunk is written
	// to R daemons (the primary plus R−1 ring successors) and read with
	// hedging/failover over the chain, so the data plane survives the
	// loss of up to R−1 daemons (see internal/client/replica.go).
	// Metadata is not replicated. 0 or 1 disables replication.
	Replicas int
	// Conns is the number of transport connections each client stripes
	// its per-daemon traffic over (see transport.Pool). Zero or one keeps
	// a single connection per daemon. In-process deployments gain little
	// from striping; the knob mirrors the TCP deployments' -conns flag so
	// both planes run the same code path.
	Conns int
	// Distributor names the placement pattern: "" or "simplehash" for
	// the paper's hashing, "guided-first-chunk" for the co-located
	// first-chunk variant.
	Distributor string
	// Transport names the fabric wiring clients to the in-process
	// daemons: "" or "mem" for the direct in-memory fabric, "shm" to run
	// every daemon behind a shared-memory doorbell socket — the same
	// zero-copy segment path co-located clients use against real daemons,
	// exercised here so library users and benchmarks can drive it without
	// separate processes. Requires a unix platform.
	Transport string
	// StageIn, when set, copies a host directory tree into the namespace
	// during NewCluster, after the health check — the job's input data
	// arrives with the deployment. Stage time is reported separately from
	// bring-up (StageInTime vs DeployTime). Per-file failures do not fail
	// deployment; inspect StageInReport.
	StageIn *StageSpec
	// StageOutOnClose, when set, copies a namespace tree back to the host
	// during Close, before teardown — results are flushed to the
	// permanent file system exactly when the temporary one dissolves.
	// Failures surface in Close's error and in StageOutReport.
	StageOutOnClose *StageSpec
	// StageOutFrom pins StageOutOnClose's reads to the named committed
	// snapshot tag (see staging.Options.Snapshot): the staged tree is the
	// namespace exactly as pinned at the tag's epoch, untorn by whatever
	// the job wrote afterwards. Ignored without StageOutOnClose.
	StageOutFrom string
	// Telemetry enables client-side metrics: every client mounted from
	// this cluster records its per-RPC latency histograms, in-flight
	// gauge and transport wait times into a shared registry
	// (ClientTelemetry). Daemon-side metrics are always on.
	Telemetry bool
	// TraceSample sets the clients' RPC trace sampling interval (every
	// N-th call is traced end to end); zero selects the client default.
	// Requires Telemetry.
	TraceSample int
}

// Cluster is a running in-process deployment.
type Cluster struct {
	cfg     Config
	daemons []*daemon.Daemon
	net     *transport.MemNetwork
	deploy  time.Duration

	// Shared-memory transport state (Config.Transport == "shm"): one
	// doorbell socket per daemon under a private directory.
	shmDir   string
	shmSocks []string
	shmLs    []net.Listener

	stageInTime  time.Duration
	stageOutTime time.Duration
	stageIn      *staging.Report
	stageOut     *staging.Report
	ready        bool // NewCluster completed; Close may stage out

	// telemetry is the registry shared by every client this cluster
	// mounts (nil unless Config.Telemetry).
	telemetry *telemetry.Registry

	mu    sync.Mutex
	conns [][]rpc.Conn // conns handed to clients, closed on Close
}

// NewCluster deploys cfg.Nodes daemons and waits until every one answers
// a ping.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, errors.New("core: cluster needs at least one node")
	}
	if cfg.Transport != "" && cfg.Transport != "mem" && cfg.Transport != "shm" {
		return nil, fmt.Errorf("core: unknown transport %q (want mem or shm)", cfg.Transport)
	}
	begin := time.Now()
	c := &Cluster{cfg: cfg, net: transport.NewMemNetwork()}
	if cfg.Telemetry {
		c.telemetry = telemetry.NewRegistry()
	}
	if cfg.Transport == "shm" {
		dir, err := os.MkdirTemp("", "gkfs-shm-")
		if err != nil {
			return nil, fmt.Errorf("core: shm socket dir: %w", err)
		}
		c.shmDir = dir
		c.shmSocks = make([]string, cfg.Nodes)
		for i := range c.shmSocks {
			c.shmSocks[i] = filepath.Join(dir, fmt.Sprintf("d%d.sock", i))
		}
	}

	// Daemons start concurrently, as a parallel job launcher would start
	// them.
	daemons := make([]*daemon.Daemon, cfg.Nodes)
	errs := make([]error, cfg.Nodes)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Nodes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var fs vfs.FS
			if cfg.DataDir == "" {
				fs = vfs.NewMem()
			} else {
				var err error
				fs, err = vfs.NewOS(filepath.Join(cfg.DataDir, fmt.Sprintf("node%d", i)))
				if err != nil {
					errs[i] = err
					return
				}
			}
			dcfg := daemon.Config{
				ID:        i,
				FS:        fs,
				ChunkSize: cfg.ChunkSize,
				PoolSize:  cfg.PoolSize,
				SyncWAL:   cfg.SyncWAL,
			}
			if c.shmSocks != nil {
				dcfg.ShmSocket = c.shmSocks[i]
			}
			d, err := daemon.New(dcfg)
			if err != nil {
				errs[i] = err
				return
			}
			daemons[i] = d
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		for _, d := range daemons {
			if d != nil {
				d.Close()
			}
		}
		return nil, err
	}
	c.daemons = daemons
	for i, d := range daemons {
		c.net.Register(i, d.Server())
	}
	if cfg.Transport == "shm" {
		for i, d := range daemons {
			l, err := net.Listen("unix", c.shmSocks[i])
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("core: shm doorbell %d: %w", i, err)
			}
			c.shmLs = append(c.shmLs, l)
			go transport.ServeShm(l, d.Server(), 0)
		}
	}

	// Health check: every daemon must answer a ping — and speak this
	// client generation's protocol — before the cluster is usable (the
	// registration step of a real deployment).
	boot, err := c.newClient()
	if err != nil {
		c.Close()
		return nil, err
	}
	if err := boot.VerifyProtocol(); err != nil {
		c.Close()
		return nil, fmt.Errorf("core: health check: %w", err)
	}

	// The namespace root must exist before clients mount.
	if err := boot.EnsureRoot(); err != nil {
		c.Close()
		return nil, err
	}

	c.deploy = time.Since(begin)

	// Stage-in runs after bring-up and is timed separately: the paper's
	// deployability claim (< 20 s at 512 nodes) is about the file system
	// itself; how long the job's input data takes to arrive depends on
	// its volume, not on GekkoFS bring-up.
	if cfg.StageIn != nil {
		sb := time.Now()
		stager, err := c.newClient()
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("core: stage-in: %w", err)
		}
		rep, err := staging.StageIn(stager, cfg.StageIn.HostDir, cfg.StageIn.FSDir, cfg.StageIn.Options)
		c.stageIn = rep
		c.stageInTime = time.Since(sb)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("core: stage-in: %w", err)
		}
	}
	c.ready = true
	return c, nil
}

// DeployTime reports how long bring-up took (daemon start + health check
// + namespace bootstrap), excluding any configured stage-in.
func (c *Cluster) DeployTime() time.Duration { return c.deploy }

// StageInTime reports how long the configured stage-in took (zero when
// none was configured).
func (c *Cluster) StageInTime() time.Duration { return c.stageInTime }

// StageOutTime reports how long Close's configured stage-out took.
func (c *Cluster) StageOutTime() time.Duration { return c.stageOutTime }

// StageInReport returns the deploy-time stage-in's report (nil when no
// stage-in was configured). Per-file failures land here, not in
// NewCluster's error — partial input is still a running deployment.
func (c *Cluster) StageInReport() *staging.Report { return c.stageIn }

// StageOutReport returns the Close-time stage-out's report (nil until
// Close runs, or when no stage-out was configured).
func (c *Cluster) StageOutReport() *staging.Report { return c.stageOut }

// Nodes returns the daemon count.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// ChunkSize returns the cluster's chunk size.
func (c *Cluster) ChunkSize() int64 {
	if c.cfg.ChunkSize == 0 {
		return meta.DefaultChunkSize
	}
	return c.cfg.ChunkSize
}

func (c *Cluster) dist() (distributor.Distributor, error) {
	d, err := distributor.New(c.cfg.Distributor, c.cfg.Nodes)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return d, nil
}

func (c *Cluster) newClient() (*client.Client, error) {
	conns := make([]rpc.Conn, c.cfg.Nodes)
	for i := range conns {
		if c.cfg.Transport == "shm" {
			conn, err := transport.DialShmPool(c.shmSocks[i], 0, max(c.cfg.Conns, 1))
			if err != nil {
				return nil, fmt.Errorf("core: shm dial %d: %w", i, err)
			}
			conns[i] = conn
			continue
		}
		if c.cfg.Conns > 1 {
			node := i
			conns[i] = transport.NewPool(c.cfg.Conns, func() (rpc.Conn, error) {
				return c.net.Dial(node)
			})
			continue
		}
		conn, err := c.net.Dial(i)
		if err != nil {
			return nil, err
		}
		conns[i] = conn
	}
	dist, err := c.dist()
	if err != nil {
		return nil, err
	}
	cl, err := client.New(client.Config{
		Conns:        conns,
		Dist:         dist,
		ChunkSize:    c.cfg.ChunkSize,
		SizeCacheOps: c.cfg.SizeCacheOps,
		AsyncWrites:  c.cfg.AsyncWrites,
		WriteWindow:  c.cfg.WriteWindow,
		ReadAhead:    c.cfg.ReadAhead,
		ReadWindow:   c.cfg.ReadWindow,
		CacheBytes:   c.cfg.CacheBytes,
		Replicas:     c.cfg.Replicas,
		Telemetry:    c.telemetry,
		TraceSample:  c.cfg.TraceSample,
	})
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.conns = append(c.conns, conns)
	c.mu.Unlock()
	return cl, nil
}

// NewClient mounts the file system: it returns a client wired to every
// daemon (the preloaded library of the paper's architecture).
func (c *Cluster) NewClient() (*client.Client, error) { return c.newClient() }

// DaemonStats returns per-daemon operation counters.
func (c *Cluster) DaemonStats() []daemon.Stats {
	out := make([]daemon.Stats, len(c.daemons))
	for i, d := range c.daemons {
		out[i] = d.Stats()
	}
	return out
}

// DaemonStatsExt returns per-daemon latency-histogram snapshots (the
// protocol-v7 stats extension): queue wait and per-op handle time,
// mergeable across daemons into cluster-wide percentile tables.
func (c *Cluster) DaemonStatsExt() []proto.StatsExt {
	out := make([]proto.StatsExt, len(c.daemons))
	for i, d := range c.daemons {
		out[i] = d.StatsExt()
	}
	return out
}

// ClientTelemetry returns the registry shared by this cluster's clients
// (nil unless Config.Telemetry): per-RPC round-trip histograms, the
// in-flight gauge, pool/segment waits and replication counters.
func (c *Cluster) ClientTelemetry() *telemetry.Registry { return c.telemetry }

// Close tears the deployment down. In-memory state vanishes — GekkoFS is
// a temporary file system; persistence across jobs is exactly what it
// does not promise (DataDir deployments can be reopened, which tests use
// to verify crash recovery of the metadata store).
func (c *Cluster) Close() error {
	// Stage-out first, while the deployment still serves: the results
	// must reach the permanent file system before the temporary one
	// dissolves. Both structural and per-file failures surface in the
	// returned error — losing result data on teardown must be loud.
	var stageErrs []error
	if c.cfg.StageOutOnClose != nil && c.ready && c.daemons != nil {
		c.ready = false // a second Close must not stage out again
		sb := time.Now()
		stager, err := c.newClient()
		if err != nil {
			stageErrs = append(stageErrs, fmt.Errorf("core: stage-out: %w", err))
		} else {
			sopts := c.cfg.StageOutOnClose.Options
			if c.cfg.StageOutFrom != "" {
				sopts.Snapshot = c.cfg.StageOutFrom
			}
			rep, err := staging.StageOut(stager, c.cfg.StageOutOnClose.FSDir,
				c.cfg.StageOutOnClose.HostDir, sopts)
			c.stageOut = rep
			if err != nil {
				stageErrs = append(stageErrs, fmt.Errorf("core: stage-out: %w", err))
			}
			if err := rep.Err(); err != nil {
				stageErrs = append(stageErrs, fmt.Errorf("core: stage-out: %w", err))
			}
		}
		c.stageOutTime = time.Since(sb)
	}
	c.mu.Lock()
	for _, conns := range c.conns {
		for _, conn := range conns {
			conn.Close()
		}
	}
	c.conns = nil
	c.mu.Unlock()
	errs := stageErrs
	for _, l := range c.shmLs {
		l.Close()
	}
	c.shmLs = nil
	for _, d := range c.daemons {
		if d != nil {
			if err := d.Close(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	c.daemons = nil
	if c.shmDir != "" {
		os.RemoveAll(c.shmDir)
		c.shmDir = ""
	}
	return errors.Join(errs...)
}
