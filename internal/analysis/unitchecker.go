package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// The `go vet -vettool` protocol: cmd/go invokes the tool once per
// package as `tool <objdir>/vet.cfg`, passing everything needed to
// type-check that unit — file list, the import map, and the paths of the
// dependencies' export data in the build cache. The tool prints
// diagnostics to stderr and exits non-zero when it found any. Before
// that, cmd/go probes the tool with -V=full (version fingerprint for
// build caching) and -flags (supported flags as JSON). This mirrors
// x/tools' unitchecker driver on the standard library alone.

// vetConfig is the JSON shape of cmd/go's vet.cfg.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// PrintVersion implements the -V=full handshake. The fingerprint is the
// tool binary's own content hash, so editing an analyzer invalidates
// cmd/go's cached vet results for every package.
func PrintVersion(w io.Writer, progname string) {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:12])
		}
	}
	fmt.Fprintf(w, "%s version devel buildID=%s\n", progname, id)
}

// PrintFlags implements the -flags handshake: the JSON list of flags
// cmd/go may forward. gkfs-vet takes none in vettool mode.
func PrintFlags(w io.Writer) {
	fmt.Fprintln(w, "[]")
}

// RunVetTool processes one vet.cfg unit and returns the process exit
// code: 0 clean, 2 findings (diagnostics on stderr), 1 operational
// failure.
func RunVetTool(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "gkfs-vet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "gkfs-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	if cfg.VetxOnly {
		// Dependency pass for analyzer facts; gkfs-vet's analyzers are
		// fact-free, so there is nothing to export.
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(stderr, "gkfs-vet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}

	// Resolve imports through the build cache's export data, exactly as
	// the unit's compile did: import path → ImportMap → PackageFile.
	compImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			path = importPath
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compImp.Import(path)
	})

	pkg := typeCheck(fset, cfg.ImportPath, files, imp)
	if pkg.TypeError != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "gkfs-vet: typecheck %s: %v\n", cfg.ImportPath, pkg.TypeError)
		return 1
	}
	pkg.Dir = cfg.Dir

	findings := RunAnalyzers([]*Package{pkg}, All())
	if len(findings) == 0 {
		return 0
	}
	for _, f := range findings {
		fmt.Fprintf(stderr, "%s: %s: %s\n", f.Pos, f.Analyzer, f.Message)
	}
	return 2
}

// IsVetCfg reports whether the sole positional argument is a vet.cfg
// path, i.e. the tool is being driven by cmd/go.
func IsVetCfg(args []string) bool {
	return len(args) == 1 && strings.HasSuffix(args[0], ".cfg")
}
