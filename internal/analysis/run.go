package analysis

import (
	"go/token"
	"sort"
)

// Finding is one diagnostic with its position resolved, the shape the
// drivers print and the -json mode serializes (mirroring the
// docs/bench/BENCH_*.json convention of stable machine-readable
// artifacts).
type Finding struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string `json:"analyzer"`
	// Package is the import path of the package the finding is in.
	Package string `json:"package"`
	// Pos is the "file:line:col" position of the finding.
	Pos string `json:"pos"`
	// Message states the violated invariant.
	Message string `json:"message"`

	position token.Position
}

// RunAnalyzers applies every analyzer to every package and returns the
// findings ordered by file position. Analyzer Run errors are reported
// as findings at the package level rather than aborting the sweep.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Fset:  pkg.Fset,
				Files: pkg.Files,
				Pkg:   pkg.Types,
				Info:  pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				posn := pkg.Fset.Position(d.Pos)
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Package:  pkg.Path,
					Pos:      posn.String(),
					Message:  d.Message,
					position: posn,
				})
			}
			if err := a.Run(pass); err != nil {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Package:  pkg.Path,
					Pos:      pkg.Path,
					Message:  "analyzer failed: " + err.Error(),
				})
			}
		}
	}
	sort.SliceStable(findings, func(i, j int) bool {
		a, b := findings[i].position, findings[j].position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings
}
