package analysis

import (
	"go/ast"
	"go/types"
)

// MetricCheck enforces the telemetry tier's write discipline: counter
// state only changes through its API. Live counters are atomics
// (telemetry.Counter/Gauge/Histogram, rpc.WireCounters) and everything
// handed to readers is a point-in-time snapshot (telemetry.Snapshot,
// HistSnapshot, rpc.WireStats, proto.DaemonStats, the client's
// ClientStats) — a direct field write to any of them outside the
// defining package is either a lost update (mutating a copy that never
// reaches the live counter) or a bypass of the atomic record path.
// Reads, composite-literal construction, and inserts into maps reached
// through a field remain legal; assignment, compound assignment, and
// ++/-- on the fields themselves are flagged. Test files are skipped.
var MetricCheck = &Analyzer{
	Name: "metriccheck",
	Doc:  "telemetry counter and snapshot fields must only be written by their defining package (use the telemetry API)",
	Run:  runMetricCheck,
}

// metricTypes maps a defining package path to the counter-carrying
// type names guarded there. A nil set guards every type in the
// package (internal/telemetry is counters all the way down).
var metricTypes = map[string]map[string]bool{
	"repro/internal/telemetry": nil,
	"repro/internal/rpc":       {"WireCounters": true, "WireStats": true},
	"repro/internal/proto":     {"DaemonStats": true},
	"repro/internal/client":    {"ClientStats": true},
}

func runMetricCheck(pass *Pass) error {
	for _, file := range pass.Files {
		if pass.isTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkMetricWrite(pass, lhs)
				}
			case *ast.IncDecStmt:
				checkMetricWrite(pass, n.X)
			}
			return true
		})
	}
	return nil
}

// checkMetricWrite flags lhs when it is a direct selector onto a
// guarded counter field declared in another package. Only the bare
// field is a violation: `st.Creates = 0` rebinds counter state, while
// `s.Counters[k] = v` mutates a map the snapshot handed out, which is
// the documented way to fold extra values in.
func checkMetricWrite(pass *Pass, lhs ast.Expr) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	obj := selection.Obj()
	if obj.Pkg() == nil || obj.Pkg() == pass.Pkg {
		return
	}
	guarded, ok := metricTypes[obj.Pkg().Path()]
	if !ok {
		return
	}
	owner := namedTypeName(selection.Recv())
	if guarded != nil && !guarded[owner] {
		return
	}
	pass.Reportf(sel.Sel.Pos(),
		"field %s.%s is telemetry counter state owned by %s — write it through the package's API, not directly",
		owner, sel.Sel.Name, obj.Pkg().Path())
}
