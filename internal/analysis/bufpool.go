package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BufPool enforces the pooled-buffer lifecycle: every rpc.GetBuf result
// must reach rpc.PutBuf (directly, via defer, or via a call to a
// //gkfs:owns-buf function) on every path out of the acquiring function,
// and must not be used after it was released. Storing the buffer into a
// struct field, map, slice, channel, composite literal, returning it, or
// handing it to a goroutine transfers ownership out of the function and
// ends local tracking — those boundaries are where the //gkfs:owns-buf
// and "caller frees" doc conventions take over.
var BufPool = &Analyzer{
	Name: "bufpool",
	Doc:  "rpc.GetBuf results must reach rpc.PutBuf or an ownership transfer on every path, and never be used after release",
	Run:  runBufPool,
}

// bufState is the per-path lifecycle state of one tracked buffer.
type bufState int

const (
	bufInactive  bufState = iota // not yet acquired on this path
	bufHeld                      // acquired, release still owed
	bufMaybe                     // owed on some merged-in path
	bufReleased                  // released or transferred; uses are errors
	bufSatisfied                 // release guaranteed (defer) or path never acquired; uses fine
)

// mergeBuf joins the states of two control-flow paths.
func mergeBuf(a, b bufState) bufState {
	if a == b {
		return a
	}
	if a == bufHeld || a == bufMaybe || b == bufHeld || b == bufMaybe {
		return bufMaybe
	}
	// Distinct members of {Inactive, Released, Satisfied}: the release
	// obligation is met either way; tolerate uses since one path allows
	// them.
	return bufSatisfied
}

func runBufPool(pass *Pass) error {
	c := &bufChecker{pass: pass, owns: ownsBufFuncs(pass)}
	for _, file := range pass.Files {
		if pass.isTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					c.checkBody(fn.Body)
				}
			case *ast.FuncLit:
				c.checkBody(fn.Body)
			}
			return true
		})
	}
	return nil
}

// ownsBufFuncs collects this package's //gkfs:owns-buf functions.
func ownsBufFuncs(pass *Pass) map[types.Object]bool {
	owns := make(map[types.Object]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasDirective(fd.Doc, "owns-buf") {
				continue
			}
			if obj := pass.Info.Defs[fd.Name]; obj != nil {
				owns[obj] = true
			}
		}
	}
	return owns
}

type bufChecker struct {
	pass *Pass
	owns map[types.Object]bool
}

// calleeObj resolves a call's static callee object, if any.
func (c *bufChecker) calleeObj(call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return c.pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		return c.pass.Info.Uses[fun.Sel]
	}
	return nil
}

// isPoolFunc reports whether call invokes repro/internal/rpc.GetBuf or
// PutBuf (also matching unqualified references inside package rpc).
func (c *bufChecker) isPoolFunc(call *ast.CallExpr, name string) bool {
	fn, ok := c.calleeObj(call).(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	pkg := fn.Pkg()
	return pkg != nil && pkg.Name() == "rpc"
}

// transfersOwnership reports whether calling this callee with the buffer
// hands the release obligation to it.
func (c *bufChecker) transfersOwnership(call *ast.CallExpr) bool {
	obj := c.calleeObj(call)
	return obj != nil && c.owns[obj]
}

// acquisition is one statement binding a GetBuf result to a local.
type acquisition struct {
	stmt ast.Stmt     // the binding statement
	obj  types.Object // the local holding the buffer
	pos  token.Pos    // position of the GetBuf call
}

// checkBody analyzes one function body: classifies every GetBuf call as
// a tracked local acquisition or an immediate transfer (or reports a
// drop), then path-walks each tracked acquisition.
func (c *bufChecker) checkBody(body *ast.BlockStmt) {
	// Bail out on goto: the structural walk cannot model it.
	unsupported := false
	ast.Inspect(body, func(n ast.Node) bool {
		if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.GOTO {
			unsupported = true
		}
		return !unsupported
	})
	if unsupported {
		return
	}

	acqs, ok := c.collectAcquisitions(body)
	if !ok {
		return
	}
	for _, acq := range acqs {
		w := &bufWalk{c: c, acq: acq}
		st, terminated := w.stmts(body.List, bufInactive)
		if !terminated && (st == bufHeld || st == bufMaybe) {
			c.leak(acq, "function exit")
		} else if w.leaked != "" {
			c.leak(acq, w.leaked)
		}
	}
}

// leak reports a missed release at the acquisition site, naming the
// first escaping path.
func (c *bufChecker) leak(acq acquisition, where string) {
	c.pass.Reportf(acq.pos,
		"rpc.GetBuf result may not reach rpc.PutBuf on %s; release it, defer the release, or transfer ownership (//gkfs:owns-buf)", where)
}

// collectAcquisitions finds every GetBuf call in body (excluding nested
// function literals, which are analyzed separately), recording
// ident-bound results for path tracking and reporting results that are
// discarded outright. Returns ok=false when an acquisition shape is too
// dynamic to classify (none currently are).
func (c *bufChecker) collectAcquisitions(body *ast.BlockStmt) ([]acquisition, bool) {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	var calls []*ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		if _, ok := n.(*ast.FuncLit); ok && len(stack) > 1 {
			stack = stack[:len(stack)-1]
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && c.isPoolFunc(call, "GetBuf") {
			calls = append(calls, call)
		}
		return true
	})

	var acqs []acquisition
	for _, call := range calls {
		// Climb out of paren/slice/index wrappers to the binding context.
		var node ast.Node = call
		for {
			p := parents[node]
			switch p.(type) {
			case *ast.ParenExpr, *ast.SliceExpr, *ast.IndexExpr:
				node = p
				continue
			}
			break
		}
		switch p := parents[node].(type) {
		case *ast.AssignStmt:
			if obj := bindTarget(c.pass, p, node.(ast.Expr)); obj != nil {
				acqs = append(acqs, acquisition{stmt: p, obj: obj, pos: call.Pos()})
				continue
			}
			// Assigned into a field, map, slice element, or dereference:
			// ownership moves into that structure.
			if isRHS(p, node.(ast.Expr)) {
				continue
			}
			c.pass.Reportf(call.Pos(), "rpc.GetBuf result is discarded; the buffer can never be released")
		case *ast.ValueSpec:
			if obj := specTarget(c.pass, p, node.(ast.Expr)); obj != nil {
				acqs = append(acqs, acquisition{stmt: parents[p].(*ast.DeclStmt), obj: obj, pos: call.Pos()})
				continue
			}
			c.pass.Reportf(call.Pos(), "rpc.GetBuf result is discarded; the buffer can never be released")
		case *ast.ReturnStmt:
			// Transfer to the caller.
		case *ast.CallExpr:
			if c.isPoolFunc(p, "PutBuf") || c.transfersOwnership(p) {
				continue
			}
			c.pass.Reportf(call.Pos(),
				"rpc.GetBuf result passed to a function that does not take ownership; bind it and release it, or annotate the callee //gkfs:owns-buf")
		case *ast.KeyValueExpr, *ast.CompositeLit, *ast.SendStmt:
			// Transfer into a structure or channel.
		case *ast.ExprStmt:
			c.pass.Reportf(call.Pos(), "rpc.GetBuf result is discarded; the buffer can never be released")
		default:
			// Unclassified context (e.g. binary expression): treat as a
			// borrow-and-lose shape.
			c.pass.Reportf(call.Pos(), "rpc.GetBuf result is discarded; the buffer can never be released")
		}
	}
	return acqs, true
}

// bindTarget returns the local object an assignment binds the given RHS
// expression to, or nil when the target is not a plain identifier.
func bindTarget(pass *Pass, as *ast.AssignStmt, rhs ast.Expr) types.Object {
	if len(as.Lhs) != len(as.Rhs) {
		return nil
	}
	for i, r := range as.Rhs {
		if r != rhs {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			return obj
		}
		return pass.Info.Uses[id]
	}
	return nil
}

// isRHS reports whether expr is one of the assignment's right-hand sides.
func isRHS(as *ast.AssignStmt, expr ast.Expr) bool {
	for _, r := range as.Rhs {
		if r == expr {
			return true
		}
	}
	return false
}

// specTarget is bindTarget for `var x = rpc.GetBuf(n)` declarations.
func specTarget(pass *Pass, spec *ast.ValueSpec, rhs ast.Expr) types.Object {
	if len(spec.Names) != len(spec.Values) {
		return nil
	}
	for i, v := range spec.Values {
		if v != rhs {
			continue
		}
		if spec.Names[i].Name == "_" {
			return nil
		}
		return pass.Info.Defs[spec.Names[i]]
	}
	return nil
}

// bufWalk path-walks one function body for one acquisition.
type bufWalk struct {
	c      *bufChecker
	acq    acquisition
	leaked string // first leaking exit found ("" if none)
}

// note records the first leaking exit.
func (w *bufWalk) note(where string) {
	if w.leaked == "" {
		w.leaked = where
	}
}

// uses reports whether n references the tracked buffer outside nested
// function literals.
func (w *bufWalk) uses(n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := x.(*ast.Ident); ok && w.c.pass.Info.Uses[id] == w.acq.obj {
			found = true
		}
		return !found
	})
	return found
}

// capturedByFuncLit reports whether a nested function literal under n
// references the tracked buffer.
func (w *bufWalk) capturedByFuncLit(n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(y ast.Node) bool {
				if id, ok := y.(*ast.Ident); ok && w.c.pass.Info.Uses[id] == w.acq.obj {
					found = true
				}
				return !found
			})
			return false
		}
		return !found
	})
	return found
}

// releasesInExpr reports whether n contains, outside nested literals, a
// call that releases or takes ownership of the buffer.
func (w *bufWalk) releasesInExpr(n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok && w.callReleases(call) {
			found = true
		}
		return !found
	})
	return found
}

// callReleases reports whether this specific call releases or takes
// ownership of the tracked buffer.
func (w *bufWalk) callReleases(call *ast.CallExpr) bool {
	if !w.c.isPoolFunc(call, "PutBuf") && !w.c.transfersOwnership(call) {
		return false
	}
	for _, arg := range call.Args {
		if w.uses(arg) {
			return true
		}
	}
	return false
}

// checkUse flags a use after release.
func (w *bufWalk) checkUse(n ast.Node, st bufState) {
	if st != bufReleased || n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := x.(*ast.Ident); ok && w.c.pass.Info.Uses[id] == w.acq.obj {
			w.c.pass.Reportf(id.Pos(), "buffer used after rpc.PutBuf released it back to the pool")
			return false
		}
		return true
	})
}

// stmts walks a statement sequence, returning the outgoing state and
// whether every path through the sequence terminates (return/panic).
func (w *bufWalk) stmts(list []ast.Stmt, st bufState) (bufState, bool) {
	for _, s := range list {
		var term bool
		st, term = w.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

// stmt walks one statement.
func (w *bufWalk) stmt(s ast.Stmt, st bufState) (bufState, bool) {
	if s == w.acq.stmt {
		// The binding statement: evaluate RHS in the old state, then the
		// buffer is live. Re-acquisition also re-arms tracking.
		return bufHeld, false
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.stmts(s.List, st)

	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if w.callReleases(call) {
				if st == bufReleased {
					w.c.pass.Reportf(call.Pos(), "buffer released twice; double rpc.PutBuf corrupts the pool")
				}
				return bufReleased, false
			}
			if isPanicCall(w.c.pass, call) {
				// Unwinding: deferred releases still run; a held buffer is
				// reclaimed by GC rather than pool-leaked, so don't flag.
				return st, true
			}
		}
		w.checkUse(s.X, st)
		if (st == bufHeld || st == bufMaybe) && w.capturedByFuncLit(s.X) {
			// Synchronous call with a closure borrowing the buffer: still
			// held afterwards. (Transfer shapes hand the closure to go/defer
			// or store it; those are handled in their statements.)
			return st, false
		}
		return st, false

	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.checkUse(r, st)
		}
		if st == bufHeld || st == bufMaybe {
			if w.releasesInExpr(s) {
				return bufReleased, false
			}
			// Buffer stored anywhere but back into its own variable is a
			// transfer; capture by a stored closure likewise.
			if w.transferInAssign(s) || w.capturedByFuncLit(s) {
				return bufReleased, false
			}
			// Overwriting the tracked variable while held leaks the old
			// buffer.
			for i, l := range s.Lhs {
				if id, ok := l.(*ast.Ident); ok && w.c.pass.Info.Uses[id] == w.acq.obj {
					if i < len(s.Rhs) && w.uses(s.Rhs[i]) {
						continue // self-update: b = append(b, ...)
					}
					w.c.pass.Reportf(s.Pos(), "buffer overwritten while still owed to the pool; release it first")
					return bufSatisfied, false
				}
			}
		}
		return st, false

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkUse(v, st)
					}
				}
			}
		}
		return st, false

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.checkUse(r, st)
		}
		if st == bufHeld || st == bufMaybe {
			returned := false
			for _, r := range s.Results {
				if w.storesBuf(r) || w.capturedByFuncLit(r) {
					returned = true
				}
			}
			if !returned {
				w.note("return at " + w.c.pass.Fset.Position(s.Pos()).String())
			}
		}
		return bufSatisfied, true

	case *ast.DeferStmt:
		if w.callReleases(s.Call) {
			return bufSatisfied, false
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			released := false
			ast.Inspect(lit.Body, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok && w.callReleases(call) {
					released = true
				}
				return !released
			})
			if released {
				return bufSatisfied, false
			}
		}
		w.checkUse(s.Call, st)
		return st, false

	case *ast.GoStmt:
		w.checkUse(s.Call, st)
		if st == bufHeld || st == bufMaybe {
			if w.uses(s.Call) || w.capturedByFuncLit(s.Call) {
				// The goroutine owns it now.
				return bufReleased, false
			}
		}
		return st, false

	case *ast.SendStmt:
		w.checkUse(s.Chan, st)
		w.checkUse(s.Value, st)
		if (st == bufHeld || st == bufMaybe) && (w.storesBuf(s.Value) || w.capturedByFuncLit(s.Value)) {
			return bufReleased, false
		}
		return st, false

	case *ast.IfStmt:
		if s.Init != nil {
			var term bool
			st, term = w.stmt(s.Init, st)
			if term {
				return st, true
			}
		}
		w.checkUse(s.Cond, st)
		thenSt, thenTerm := w.stmts(s.Body.List, st)
		elseSt, elseTerm := st, false
		if s.Else != nil {
			elseSt, elseTerm = w.stmt(s.Else, st)
		}
		switch {
		case thenTerm && elseTerm:
			return bufSatisfied, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return mergeBuf(thenSt, elseSt), false
		}

	case *ast.ForStmt:
		if s.Init != nil {
			var term bool
			st, term = w.stmt(s.Init, st)
			if term {
				return st, true
			}
		}
		w.checkUse(s.Cond, st)
		bodySt, _ := w.stmts(s.Body.List, st)
		if s.Post != nil {
			bodySt, _ = w.stmt(s.Post, bodySt)
		}
		return mergeBuf(st, bodySt), false

	case *ast.RangeStmt:
		w.checkUse(s.X, st)
		bodySt, _ := w.stmts(s.Body.List, st)
		return mergeBuf(st, bodySt), false

	case *ast.SwitchStmt:
		if s.Init != nil {
			var term bool
			st, term = w.stmt(s.Init, st)
			if term {
				return st, true
			}
		}
		w.checkUse(s.Tag, st)
		return w.clauses(s.Body.List, st)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			var term bool
			st, term = w.stmt(s.Init, st)
			if term {
				return st, true
			}
		}
		w.checkUse(s.Assign, st)
		return w.clauses(s.Body.List, st)

	case *ast.SelectStmt:
		var states []bufState
		allTerm := true
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			clSt := st
			if comm.Comm != nil {
				var term bool
				clSt, term = w.stmt(comm.Comm, clSt)
				if term {
					continue
				}
			}
			clSt, term := w.stmts(comm.Body, clSt)
			if !term {
				states = append(states, clSt)
				allTerm = false
			}
		}
		if allTerm && len(s.Body.List) > 0 {
			return bufSatisfied, true
		}
		out := st
		for i, cs := range states {
			if i == 0 {
				out = cs
			} else {
				out = mergeBuf(out, cs)
			}
		}
		return out, false

	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)

	case *ast.BranchStmt:
		// break/continue leave the linear path; loop/switch merges are
		// already conservative.
		return st, true

	case *ast.IncDecStmt:
		w.checkUse(s.X, st)
		return st, false

	default:
		return st, false
	}
}

// transferInAssign reports whether the assignment stores the buffer into
// anything other than its own variable. Passing the buffer as a plain
// call argument is a borrow, not a store — only the value itself (or a
// reslice of it, or a composite literal wrapping it) moving under a new
// name or into a structure transfers ownership.
func (w *bufWalk) transferInAssign(s *ast.AssignStmt) bool {
	for i, r := range s.Rhs {
		if !w.storesBuf(r) {
			continue
		}
		if i < len(s.Lhs) && len(s.Lhs) == len(s.Rhs) {
			if id, ok := s.Lhs[i].(*ast.Ident); ok && w.c.pass.Info.Uses[id] == w.acq.obj {
				continue // self-update: b = b[:0]
			}
		}
		return true
	}
	return false
}

// storesBuf reports whether evaluating e yields (or embeds in a value)
// the tracked buffer itself, as opposed to merely lending it to a call.
func (w *bufWalk) storesBuf(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return w.c.pass.Info.Uses[e] == w.acq.obj
	case *ast.SliceExpr:
		return w.storesBuf(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if w.storesBuf(el) {
				return true
			}
		}
		return false
	case *ast.UnaryExpr:
		return e.Op == token.AND && w.storesBuf(e.X)
	default:
		return false
	}
}

// clauses merges the bodies of switch/type-switch case clauses, adding
// the fall-past path when no default clause exists.
func (w *bufWalk) clauses(list []ast.Stmt, st bufState) (bufState, bool) {
	var states []bufState
	hasDefault := false
	for _, cl := range list {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			w.checkUse(e, st)
		}
		clSt, term := w.stmts(cc.Body, st)
		if !term {
			states = append(states, clSt)
		}
	}
	if !hasDefault {
		states = append(states, st)
	}
	if len(states) == 0 {
		return bufSatisfied, true
	}
	out := states[0]
	for _, cs := range states[1:] {
		out = mergeBuf(out, cs)
	}
	return out, false
}

// isPanicCall reports whether call is the builtin panic or a
// log.Fatal-style terminator.
func isPanicCall(pass *Pass, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok {
			switch fn.Name() {
			case "Fatal", "Fatalf", "Exit":
				if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "log" || pkg.Path() == "os") {
					return true
				}
			}
		}
	}
	return false
}
