package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Source-mode package loading for the standalone driver and the
// analysistest harness. Packages of this module are parsed and
// type-checked from source (the module root is found via go.mod);
// standard-library imports are type-checked from GOROOT source through
// go/importer's "source" compiler, so no export data, build cache, or
// third-party machinery is needed. The vet-tool driver (unitchecker.go)
// uses export data instead — this path is for contexts with nothing but
// the source tree.

// Package is one loaded, type-checked package plus everything a Pass
// needs.
type Package struct {
	// Path is the package's import path ("repro/internal/rpc").
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the parsed sources, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checker's facts about Files.
	Info *types.Info
	// TypeError is the first type-checking error, if any. Analyses still
	// run on partially checked packages, but the driver surfaces it.
	TypeError error
}

// Loader loads module packages from source, caching by import path.
type Loader struct {
	fset    *token.FileSet
	root    string // module root directory
	modPath string // module path from go.mod
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and reads the
// module path from it.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer: module paths resolve to source
// directories under the module root, everything else (the standard
// library) goes through the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.LoadImportPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadImportPath loads a package of this module by import path.
func (l *Loader) LoadImportPath(path string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
	return l.LoadDir(filepath.Join(l.root, filepath.FromSlash(rel)), path)
}

// LoadDir parses and type-checks the package in dir under the given
// import path. Results are cached; import cycles are reported rather
// than recursed into.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg := typeCheck(l.fset, path, files, l)
	pkg.Dir = dir
	l.pkgs[path] = pkg
	return pkg, nil
}

// goFilesIn lists dir's buildable non-test Go files, sorted. Build
// constraints are evaluated against the host platform, mirroring the go
// tool's file selection for the tag vocabulary this module uses (GOOS,
// GOARCH and the unix umbrella tag) — otherwise platform-gated pairs
// like shm.go/shm_stub.go would both load and collide.
func goFilesIn(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		ok, err := buildConstraintOK(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// unixGOOS lists the GOOS values the "unix" build tag covers (the go
// tool's definition).
var unixGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "hurd": true, "illumos": true, "ios": true,
	"linux": true, "netbsd": true, "openbsd": true, "solaris": true,
}

// hostTagOK reports whether the host platform satisfies one build tag.
// Unknown tags (custom tags, cgo, release tags) evaluate false — a file
// gated on them is treated as not buildable here, which is the
// conservative choice for a source-mode loader.
func hostTagOK(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH:
		return true
	case "unix":
		return unixGOOS[runtime.GOOS]
	}
	return false
}

// buildConstraintOK reports whether path's //go:build line — if it has
// one in its preamble — is satisfied on the host platform.
func buildConstraintOK(path string) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if constraint.IsGoBuild(line) {
			expr, err := constraint.Parse(line)
			if err != nil {
				return false, fmt.Errorf("analysis: %s: %w", path, err)
			}
			return expr.Eval(hostTagOK), nil
		}
		if strings.HasPrefix(line, "package ") {
			break // past the preamble: any constraint would be inert
		}
	}
	return true, nil
}

// typeCheck runs go/types over files, recording every fact a Pass
// consumes. Type errors do not abort: analyses run on what checked.
func typeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) *Package {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if firstErr == nil {
		firstErr = err
	}
	return &Package{
		Path:      path,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		Info:      info,
		TypeError: firstErr,
	}
}

// ModuleRoot reports the loader's module root directory.
func (l *Loader) ModuleRoot() string { return l.root }

// ModulePath reports the loader's module path.
func (l *Loader) ModulePath() string { return l.modPath }

// ExpandPatterns resolves command-line package patterns ("./...",
// "./internal/rpc", import paths) into module packages, skipping
// testdata, hidden and vendor directories exactly like the go tool.
func (l *Loader) ExpandPatterns(patterns []string) ([]*Package, error) {
	var pkgs []*Package
	seen := make(map[string]bool)
	add := func(dir string) error {
		rel, err := filepath.Rel(l.root, dir)
		if err != nil {
			return err
		}
		path := l.modPath
		if rel != "." {
			path = l.modPath + "/" + filepath.ToSlash(rel)
		}
		if seen[path] {
			return nil
		}
		seen[path] = true
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
		return nil
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			err := filepath.WalkDir(l.root, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
					name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				names, err := goFilesIn(p)
				if err != nil || len(names) == 0 {
					return nil
				}
				return add(p)
			})
			if err != nil {
				return nil, err
			}
		case strings.HasPrefix(pat, l.modPath):
			pkg, err := l.LoadImportPath(pat)
			if err != nil {
				return nil, err
			}
			if !seen[pat] {
				seen[pat] = true
				pkgs = append(pkgs, pkg)
			}
		default:
			dir := pat
			if !filepath.IsAbs(dir) {
				var err error
				dir, err = filepath.Abs(dir)
				if err != nil {
					return nil, err
				}
			}
			if err := add(dir); err != nil {
				return nil, err
			}
		}
	}
	return pkgs, nil
}
