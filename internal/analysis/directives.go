package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Annotation grammar shared by the analyzers (documented with examples
// in docs/INVARIANTS.md):
//
//   //gkfs:owns-buf        on a func declaration: passing a pooled
//                          buffer to this function transfers ownership;
//                          the callee (not the caller) must release it.
//   // guarded by <mu>     on a struct field: the field may only be
//                          accessed while <mu> is held. <mu> is either a
//                          sibling mutex field ("guarded by mu") or a
//                          qualified <Type>.<field> naming another
//                          struct's mutex ("guarded by chunkCache.mu").
//   // Caller holds <mu>.  on a func declaration: the function runs with
//                          the receiver's <mu> already held.
//   //gkfs:bounded         on a statement line: the wire-derived value
//                          on this line is bounded by construction;
//                          framebound trusts the author.

// hasDirective reports whether the doc comment carries the given
// //gkfs: directive (exact word, e.g. "owns-buf").
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if strings.TrimSpace(strings.TrimPrefix(text, "gkfs:")) == name && strings.HasPrefix(text, "gkfs:") {
			return true
		}
	}
	return false
}

// lineDirective reports whether any comment on pos's source line carries
// the given //gkfs: directive.
func lineDirective(fset *token.FileSet, file *ast.File, pos token.Pos, name string) bool {
	line := fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if fset.Position(c.Pos()).Line != line {
				continue
			}
			text := strings.TrimPrefix(c.Text, "//")
			if strings.HasPrefix(text, "gkfs:") && strings.TrimSpace(strings.TrimPrefix(text, "gkfs:")) == name {
				return true
			}
		}
	}
	return false
}

// guardedByRe parses the lock-guard field comment grammar. The guard is
// either a bare sibling field name or Type.field.
var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)?)`)

// guardName extracts the guard named by a field's comments, or "".
func guardName(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// callerHoldsRe parses the "Caller holds mu." doc convention.
var callerHoldsRe = regexp.MustCompile(`Caller (?:must hold|holds) ([A-Za-z_][A-Za-z0-9_]*)`)

// callerHolds extracts the mutex field name a function's doc declares as
// held on entry, or "".
func callerHolds(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	if m := callerHoldsRe.FindStringSubmatch(doc.Text()); m != nil {
		return m[1]
	}
	return ""
}
