package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// ErrnoExhaustive keeps the RPC surface fully plumbed: every Errno
// constant (except the zero OK) must appear in both halves of the
// errno codec — the errnoToErr decode table and the ErrnoOf encode
// switch — and every Op constant of a package whose ops are registered
// with an rpc.Server must actually be registered. A replication op added
// to proto but not to the daemon's register() table is caught the moment
// gkfs-vet runs, not the first time a client hangs on ErrnoNosys.
var ErrnoExhaustive = &Analyzer{
	Name: "errnoexhaustive",
	Doc:  "every Errno must be in the encode/decode tables and every Op of a registered package must be registered",
	Run:  runErrnoExhaustive,
}

func runErrnoExhaustive(pass *Pass) error {
	checkErrnoTables(pass)
	checkOpRegistration(pass)
	return nil
}

// checkErrnoTables runs in the package defining a type named Errno with
// the errnoToErr / ErrnoOf codec convention, and demands every non-zero
// Errno constant appear in both.
func checkErrnoTables(pass *Pass) {
	if pass.Pkg == nil {
		return
	}
	scope := pass.Pkg.Scope()
	errnoType, ok := scope.Lookup("Errno").(*types.TypeName)
	if !ok {
		return
	}
	var errnos []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Type() != errnoType.Type() {
			continue
		}
		if v, ok := constant.Int64Val(c.Val()); ok && v == 0 {
			continue // OK: the zero errno needs no table entry
		}
		errnos = append(errnos, c)
	}
	if len(errnos) == 0 {
		return
	}

	decodeKeys, decodeFound := constsIn(pass, findVarInit(pass, "errnoToErr"))
	encodeRefs, encodeFound := constsIn(pass, findFuncBody(pass, "ErrnoOf"))
	for _, c := range errnos {
		if decodeFound && !decodeKeys[c] {
			pass.Reportf(c.Pos(), "Errno %s is missing from the errnoToErr decode table; clients would surface it as a raw errno", c.Name())
		}
		if encodeFound && !encodeRefs[c] {
			pass.Reportf(c.Pos(), "Errno %s is never produced by ErrnoOf; its error class would encode as the ErrnoIO fallback", c.Name())
		}
	}
}

// findVarInit returns the initializer expression of the named
// package-level variable, if declared in this package.
func findVarInit(pass *Pass, name string) ast.Node {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, n := range vs.Names {
					if n.Name == name && i < len(vs.Values) {
						return vs.Values[i]
					}
				}
			}
		}
	}
	return nil
}

// findFuncBody returns the body of the named package-level function.
func findFuncBody(pass *Pass, name string) ast.Node {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name {
				if fd.Body != nil {
					return fd.Body
				}
			}
		}
	}
	return nil
}

// constsIn collects every constant object referenced under n.
func constsIn(pass *Pass, n ast.Node) (map[types.Object]bool, bool) {
	if n == nil {
		return nil, false
	}
	refs := make(map[types.Object]bool)
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok {
			if c, ok := pass.Info.Uses[id].(*types.Const); ok {
				refs[c] = true
			}
		}
		return true
	})
	return refs, true
}

// checkOpRegistration collects rpc.Server.Register calls; when a package
// registers any op of some defining package, every op constant that
// package exports must be registered.
func checkOpRegistration(pass *Pass) {
	registered := make(map[types.Object]bool)
	var firstReg ast.Node
	for _, file := range pass.Files {
		if pass.isTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Register" {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "rpc" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || namedTypeName(sig.Recv().Type()) != "Server" {
				return true
			}
			if firstReg == nil {
				firstReg = call
			}
			if c := constOf(pass, call.Args[0]); c != nil {
				registered[c] = true
			}
			return true
		})
	}
	if len(registered) == 0 {
		return
	}

	// The packages whose op namespaces this server claims to serve.
	opPkgs := make(map[*types.Package]types.Type)
	for obj := range registered {
		if obj.Pkg() != nil {
			opPkgs[obj.Pkg()] = obj.Type()
		}
	}
	for pkg, opType := range opPkgs {
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || !types.Identical(c.Type(), opType) || registered[c] {
				continue
			}
			pass.Reportf(firstReg.Pos(),
				"op %s.%s is never registered with the rpc server; clients invoking it get ErrnoNosys", pkg.Name(), c.Name())
		}
	}
}

// constOf resolves an expression to the constant object it names.
func constOf(pass *Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if c, ok := pass.Info.Uses[e].(*types.Const); ok {
			return c
		}
	case *ast.SelectorExpr:
		if c, ok := pass.Info.Uses[e.Sel].(*types.Const); ok {
			return c
		}
	}
	return nil
}
