// Package bufpool is a gkfs-vet fixture exercising the bufpool
// analyzer: leaks on early-return paths, double releases, use after
// release, deferred and per-branch releases, discarded results, and
// ownership transfer through a //gkfs:owns-buf callee.
package bufpool

import "repro/internal/rpc"

// leakOnError forgets the buffer on the error path.
func leakOnError(fail bool) int {
	buf := rpc.GetBuf(64) // want `rpc\.GetBuf result may not reach rpc\.PutBuf`
	if fail {
		return 0
	}
	n := len(buf)
	rpc.PutBuf(buf)
	return n
}

// deferRelease is the canonical safe shape: release pinned at
// acquisition, good on every path.
func deferRelease(fail bool) int {
	buf := rpc.GetBuf(64)
	defer rpc.PutBuf(buf)
	if fail {
		return 0
	}
	return len(buf)
}

// conditionalRelease releases explicitly on each branch.
func conditionalRelease(short bool) int {
	buf := rpc.GetBuf(64)
	if short {
		rpc.PutBuf(buf)
		return 0
	}
	n := len(buf)
	rpc.PutBuf(buf)
	return n
}

// useAfterRelease touches the buffer after handing it back.
func useAfterRelease() int {
	buf := rpc.GetBuf(64)
	rpc.PutBuf(buf)
	return len(buf) // want `buffer used after rpc\.PutBuf released it back to the pool`
}

// doubleRelease returns the same buffer twice.
func doubleRelease() {
	buf := rpc.GetBuf(64)
	rpc.PutBuf(buf)
	rpc.PutBuf(buf) // want `buffer released twice`
}

// consume takes over the buffer and releases it itself.
//
//gkfs:owns-buf
func consume(b []byte) {
	rpc.PutBuf(b)
}

// transferOwnership hands the buffer to an owning callee; no release is
// owed here.
func transferOwnership() {
	buf := rpc.GetBuf(64)
	consume(buf)
}

// borrowOnly lends the buffer to a plain callee and still owes the
// release.
func borrowOnly() {
	buf := rpc.GetBuf(64) // want `rpc\.GetBuf result may not reach rpc\.PutBuf`
	fill(buf)
}

// discard drops the buffer on the floor.
func discard() {
	rpc.GetBuf(64) // want `rpc\.GetBuf result is discarded`
}

func fill(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
