// Package metriccheck is a gkfs-vet fixture exercising the metriccheck
// analyzer: direct writes to counter and snapshot fields owned by the
// telemetry tier are flagged, while reads, composite-literal
// construction, API calls, and map inserts through a field stay legal.
package metriccheck

import (
	"repro/internal/proto"
	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// assignSnapshotField rebinds counter state on a snapshot copy: the
// write never reaches a live counter.
func assignSnapshotField(st proto.DaemonStats) proto.DaemonStats {
	st.Creates = 0 // want `field DaemonStats\.Creates is telemetry counter state`
	return st
}

// compoundAssign aggregates by hand instead of DaemonStats.Add.
func compoundAssign(a, b proto.DaemonStats) uint64 {
	a.WriteBytes += b.WriteBytes // want `field DaemonStats\.WriteBytes is telemetry counter state`
	return a.WriteBytes
}

// incDec bumps a histogram snapshot's total without touching buckets.
func incDec(h telemetry.HistSnapshot) uint64 {
	h.Count++ // want `field HistSnapshot\.Count is telemetry counter state`
	return h.Count
}

// clearWireStats zeroes a wire snapshot field.
func clearWireStats(w rpc.WireStats) rpc.WireStats {
	w.FramesIn = 0 // want `field WireStats\.FramesIn is telemetry counter state`
	return w
}

// replaceHists swaps out a registry snapshot's histogram map.
func replaceHists(s telemetry.Snapshot) telemetry.Snapshot {
	s.Hists = nil // want `field Snapshot\.Hists is telemetry counter state`
	return s
}

// legalUses are the blessed shapes: the telemetry API mutates live
// counters, composite literals construct snapshots, map inserts fold
// extra values into a handed-out snapshot, and reads are always fine.
func legalUses(reg *telemetry.Registry, s telemetry.Snapshot, st proto.DaemonStats) uint64 {
	reg.Counter("fixture_total").Inc()
	reg.Counter("fixture_total").Add(3)
	reg.Gauge("fixture_gauge").Add(-1)
	reg.Histogram("fixture_ns").Observe(42)

	fresh := telemetry.HistSnapshot{Count: 1, Sum: 42}
	_ = fresh

	s.Counters["extra_total"] = st.Creates // map insert through the field, not a field write
	total := st.WriteBytes + st.ReadBytes  // reads
	return total
}

// localSameShapeType proves the guard is type-identity based, not
// name based: a local struct with counter-like fields is untouched.
type localSameShapeType struct {
	Creates uint64
	Count   uint64
}

func localWrites(l localSameShapeType) uint64 {
	l.Creates = 7
	l.Count++
	return l.Creates + l.Count
}
