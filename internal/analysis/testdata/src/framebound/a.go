// Package framebound is a gkfs-vet fixture exercising the framebound
// analyzer: wire-decoded counts sizing make and rpc.GetBuf allocations
// or bounding loops, with and without a prior bounds check, plus the
// //gkfs:bounded suppression for counts bounded by construction.
package framebound

import "repro/internal/rpc"

// uncheckedMake sizes an allocation straight off the wire.
func uncheckedMake(d *rpc.Dec) []byte {
	n := d.U32()
	return make([]byte, n) // want `allocation sized by wire-decoded n without a bounds check`
}

// checkedMake gates the count before allocating.
func checkedMake(d *rpc.Dec) []byte {
	n := d.U32()
	if n > 4096 {
		return nil
	}
	return make([]byte, n)
}

// uncheckedGetBuf pulls a pool buffer sized by a raw wire count.
func uncheckedGetBuf(d *rpc.Dec) []byte {
	n := d.U64()
	return rpc.GetBuf(int(n)) // want `allocation sized by wire-decoded n without a bounds check`
}

// uncheckedLoop iterates a wire count without validating it.
func uncheckedLoop(d *rpc.Dec) int {
	n := d.U32()
	sum := 0
	for i := uint32(0); i < n; i++ { // want `loop bounded by wire-decoded n without a prior bounds check`
		sum += int(d.U8())
	}
	return sum
}

// checkedLoop validates the count first, the repo's decoder style.
func checkedLoop(d *rpc.Dec) int {
	n := d.U32()
	if n > 64 {
		return -1
	}
	sum := 0
	for i := uint32(0); i < n; i++ {
		sum += int(d.U8())
	}
	return sum
}

// boundedByConstruction vouches for the count: a u8 can demand at most
// 255 bytes, so no explicit check is needed.
func boundedByConstruction(d *rpc.Dec) []byte {
	n := d.U8()
	return make([]byte, n) //gkfs:bounded
}
