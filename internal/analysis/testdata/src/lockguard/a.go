// Package lockguard is a gkfs-vet fixture exercising the lockguard
// analyzer: sibling and type-qualified "guarded by" fields accessed with
// and without their mutex, read locks that do and do not suffice, and
// the "Caller holds mu." doc convention.
package lockguard

import "sync"

type counter struct {
	mu sync.RWMutex
	n  int // guarded by mu
}

// lockedWrite takes the write lock around the write.
func lockedWrite(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// readUnderRLock reads under the read half, which suffices.
func readUnderRLock(c *counter) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// writeUnderRLock mutates while holding only the read half.
func writeUnderRLock(c *counter) {
	c.mu.RLock()
	c.n++ // want `field n is guarded by c\.mu but written without holding it`
	c.mu.RUnlock()
}

// unlockedRead touches the field with no lock at all.
func unlockedRead(c *counter) int {
	return c.n // want `field n is guarded by c\.mu but read without holding it`
}

// releasedTooEarly unlocks before the access.
func releasedTooEarly(c *counter) {
	c.mu.Lock()
	c.mu.Unlock()
	c.n = 0 // want `field n is guarded by c\.mu but written without holding it`
}

// lockedInOneBranch only holds the lock on the merge's then-path.
func lockedInOneBranch(c *counter, maybe bool) {
	if maybe {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	c.n = 1 // want `field n is guarded by c\.mu but written without holding it`
}

// bump relies on the caller's lock.
// Caller holds mu.
func (c *counter) bump() {
	c.n++
}

type shard struct {
	mu sync.Mutex
}

type ent struct {
	refs int // guarded by shard.mu
}

// touchEnt holds the owning shard's lock while mutating the entry.
func touchEnt(s *shard, e *ent) {
	s.mu.Lock()
	e.refs++
	s.mu.Unlock()
}

// touchEntUnlocked mutates the entry with no shard lock held.
func touchEntUnlocked(e *ent) {
	e.refs++ // want `field refs is guarded by shard\.mu but written without holding it`
}
