// Package errnoexhaustive is a gkfs-vet fixture exercising the
// errnoexhaustive analyzer: an Errno constant missing from one or both
// halves of the errno codec, and an Op constant never registered with
// the rpc server.
package errnoexhaustive

import (
	"errors"

	"repro/internal/rpc"
)

// Errno mirrors the proto wire errno convention.
type Errno uint16

const (
	ErrnoOK    Errno = 0
	ErrnoNoent Errno = 1
	ErrnoIO    Errno = 2
	ErrnoStale Errno = 3 // want `Errno ErrnoStale is missing from the errnoToErr decode table` `Errno ErrnoStale is never produced by ErrnoOf`
)

var (
	errNoent = errors.New("no entry")
	errIO    = errors.New("io failure")
)

// errnoToErr is the decode half of the codec.
var errnoToErr = map[Errno]error{
	ErrnoNoent: errNoent,
	ErrnoIO:    errIO,
}

// ErrnoOf is the encode half of the codec.
func ErrnoOf(err error) Errno {
	switch {
	case err == nil:
		return ErrnoOK
	case errors.Is(err, errNoent):
		return ErrnoNoent
	default:
		return ErrnoIO
	}
}

const (
	opPing rpc.Op = iota + 1
	opRead
	opWrite
)

// register wires up the op table but forgets opWrite.
func register(srv *rpc.Server) {
	srv.Register(opPing, handle) // want `op errnoexhaustive\.opWrite is never registered with the rpc server`
	srv.Register(opRead, handle)
}

func handle(req []byte, bulk rpc.Bulk) ([]byte, error) {
	_ = bulk
	return nil, nil
}
