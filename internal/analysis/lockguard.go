package analysis

import (
	"go/ast"
	"go/types"
)

// LockGuard enforces the "guarded by <mu>" field-comment convention:
// a field so documented may only be read while its mutex is held (RLock
// suffices) and only written under the write lock. The guard is a
// sibling field ("guarded by mu" — the access base must hold base.mu) or
// a qualified type's mutex ("guarded by chunkCache.mu" — some
// chunkCache's mu must be held). Function docs saying "Caller holds mu."
// seed the held set for that method. The walk is branch-sensitive: a
// lock released inside a terminating branch stays held on the
// fall-through path, and a lock taken inside one branch does not count
// after the merge.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "fields documented \"guarded by <mu>\" must only be accessed with that mutex held (write lock for writes)",
	Run:  runLockGuard,
}

// guardSpec names the mutex protecting one field.
type guardSpec struct {
	sibling  string // sibling field name ("mu"), or ""
	typeName string // qualified guard: owning type name…
	muName   string // …and its mutex field
}

// heldLock is one mutex known locked at the current program point.
type heldLock struct {
	muName   string // the mutex field's name ("mu")
	baseName string // type name of the value owning the mutex, "" if free-standing
	write    bool   // Lock (true) vs RLock (false)
}

// heldSet maps rendered lock expressions ("cc.mu") to lock facts.
type heldSet map[string]heldLock

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// intersect keeps only locks held in both sets, downgrading to a read
// lock when either side only holds the read half.
func intersect(a, b heldSet) heldSet {
	out := make(heldSet)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			va.write = va.write && vb.write
			out[k] = va
		}
	}
	return out
}

func runLockGuard(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	lw := &lockWalk{pass: pass, guards: guards}
	for _, file := range pass.Files {
		if pass.isTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := make(heldSet)
			if mu := callerHolds(fd.Doc); mu != "" && fd.Recv != nil && len(fd.Recv.List) == 1 {
				recv := fd.Recv.List[0]
				if len(recv.Names) == 1 {
					held[recv.Names[0].Name+"."+mu] = heldLock{
						muName:   mu,
						baseName: namedTypeName(pass.Info.TypeOf(recv.Type)),
						write:    true,
					}
				}
			}
			lw.block(fd.Body.List, held)
		}
	}
	return nil
}

// collectGuards maps each "guarded by" field object to its guard spec.
func collectGuards(pass *Pass) map[types.Object]guardSpec {
	guards := make(map[types.Object]guardSpec)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				g := guardName(field)
				if g == "" {
					continue
				}
				spec := guardSpec{sibling: g}
				if dot := indexByte(g, '.'); dot >= 0 {
					spec = guardSpec{typeName: g[:dot], muName: g[dot+1:]}
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guards[obj] = spec
					}
				}
			}
			return true
		})
	}
	return guards
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

// namedTypeName unwraps pointers and reports the named type's name.
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

type lockWalk struct {
	pass   *Pass
	guards map[types.Object]guardSpec
}

// block walks a statement list with branch-sensitive lock tracking,
// returning the outgoing held set and whether all paths terminated.
func (lw *lockWalk) block(list []ast.Stmt, held heldSet) (heldSet, bool) {
	for _, s := range list {
		var term bool
		held, term = lw.stmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (lw *lockWalk) stmt(s ast.Stmt, held heldSet) (heldSet, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if key, lock, isLockOp, acquire := lw.lockOp(call); isLockOp {
				if acquire {
					held[key] = lock
				} else {
					delete(held, key)
				}
				return held, false
			}
			if isPanicCall(lw.pass, call) {
				lw.scan(s.X, nil, held)
				return held, true
			}
		}
		lw.scan(s.X, nil, held)
		return held, false

	case *ast.AssignStmt:
		writes := writeTargets(s.Lhs)
		for _, e := range s.Rhs {
			lw.scan(e, writes, held)
		}
		for _, e := range s.Lhs {
			lw.scan(e, writes, held)
		}
		return held, false

	case *ast.IncDecStmt:
		lw.scan(s.X, writeTargets([]ast.Expr{s.X}), held)
		return held, false

	case *ast.DeclStmt:
		lw.scan(s, nil, held)
		return held, false

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			lw.scan(r, nil, held)
		}
		return held, true

	case *ast.DeferStmt:
		// Deferred unlocks keep the mutex held for the body; deferred
		// closures run at exit, so their guarded accesses are checked
		// under the locks the defer itself names — conservatively, none.
		if _, _, isLockOp, _ := lw.lockOp(s.Call); isLockOp {
			return held, false
		}
		lw.scan(s.Call, nil, held)
		return held, false

	case *ast.GoStmt:
		lw.scan(s.Call, nil, held)
		return held, false

	case *ast.SendStmt:
		lw.scan(s.Chan, nil, held)
		lw.scan(s.Value, nil, held)
		return held, false

	case *ast.BlockStmt:
		return lw.block(s.List, held)

	case *ast.IfStmt:
		if s.Init != nil {
			var term bool
			held, term = lw.stmt(s.Init, held)
			if term {
				return held, true
			}
		}
		lw.scan(s.Cond, nil, held)
		thenHeld, thenTerm := lw.block(s.Body.List, held.clone())
		elseHeld, elseTerm := held, false
		if s.Else != nil {
			elseHeld, elseTerm = lw.stmt(s.Else, held.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		default:
			return intersect(thenHeld, elseHeld), false
		}

	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = lw.stmt(s.Init, held)
		}
		lw.scan(s.Cond, nil, held)
		bodyHeld, term := lw.block(s.Body.List, held.clone())
		if s.Post != nil {
			lw.stmt(s.Post, bodyHeld)
		}
		if term {
			return held, false
		}
		return intersect(held, bodyHeld), false

	case *ast.RangeStmt:
		lw.scan(s.X, nil, held)
		bodyHeld, term := lw.block(s.Body.List, held.clone())
		if term {
			return held, false
		}
		return intersect(held, bodyHeld), false

	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = lw.stmt(s.Init, held)
		}
		lw.scan(s.Tag, nil, held)
		return lw.caseClauses(s.Body.List, held)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = lw.stmt(s.Init, held)
		}
		lw.scan(s.Assign, nil, held)
		return lw.caseClauses(s.Body.List, held)

	case *ast.SelectStmt:
		outs := []heldSet{}
		allTerm := len(s.Body.List) > 0
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			clHeld := held.clone()
			if comm.Comm != nil {
				clHeld, _ = lw.stmt(comm.Comm, clHeld)
			}
			clHeld, term := lw.block(comm.Body, clHeld)
			if !term {
				outs = append(outs, clHeld)
				allTerm = false
			}
		}
		if allTerm {
			return held, true
		}
		out := outs[0]
		for _, o := range outs[1:] {
			out = intersect(out, o)
		}
		return out, false

	case *ast.LabeledStmt:
		return lw.stmt(s.Stmt, held)

	case *ast.BranchStmt:
		return held, true

	default:
		return held, false
	}
}

// caseClauses merges switch clause bodies, including the fall-past path
// when no default exists.
func (lw *lockWalk) caseClauses(list []ast.Stmt, held heldSet) (heldSet, bool) {
	outs := []heldSet{}
	hasDefault := false
	for _, cl := range list {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			lw.scan(e, nil, held)
		}
		clHeld, term := lw.block(cc.Body, held.clone())
		if !term {
			outs = append(outs, clHeld)
		}
	}
	if !hasDefault {
		outs = append(outs, held)
	}
	if len(outs) == 0 {
		return held, true
	}
	out := outs[0]
	for _, o := range outs[1:] {
		out = intersect(out, o)
	}
	return out, false
}

// lockOp classifies a call as a mutex acquire/release, returning the
// rendered lock key ("cc.mu") and the lock fact.
func (lw *lockWalk) lockOp(call *ast.CallExpr) (key string, lock heldLock, isLockOp, acquire bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", heldLock{}, false, false
	}
	var write bool
	switch sel.Sel.Name {
	case "Lock":
		isLockOp, acquire, write = true, true, true
	case "RLock":
		isLockOp, acquire = true, true
	case "Unlock", "RUnlock":
		isLockOp = true
	default:
		return "", heldLock{}, false, false
	}
	recvType := lw.pass.Info.TypeOf(sel.X)
	name := namedTypeName(recvType)
	if name != "Mutex" && name != "RWMutex" {
		return "", heldLock{}, false, false
	}
	key = types.ExprString(sel.X)
	lock = heldLock{muName: lastComponent(key), write: write}
	if muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
		lock.baseName = namedTypeName(lw.pass.Info.TypeOf(muSel.X))
	}
	return key, lock, isLockOp, acquire
}

func lastComponent(s string) string {
	if i := lastIndexByte(s, '.'); i >= 0 {
		return s[i+1:]
	}
	return s
}

func lastIndexByte(s string, c byte) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == c {
			return i
		}
	}
	return -1
}

// scan inspects an expression tree for guarded-field accesses. writes
// holds the selector nodes in write position. Function literals are
// walked with a fresh held set: they may run on another goroutine.
func (lw *lockWalk) scan(n ast.Node, writes map[*ast.SelectorExpr]bool, held heldSet) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			lw.block(x.Body.List, make(heldSet))
			return false
		case *ast.SelectorExpr:
			lw.checkAccess(x, writes[x], held)
		}
		return true
	})
}

// checkAccess verifies one selector against the guard table.
func (lw *lockWalk) checkAccess(sel *ast.SelectorExpr, write bool, held heldSet) {
	selection, ok := lw.pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	spec, guarded := lw.guards[selection.Obj()]
	if !guarded {
		return
	}
	if spec.typeName != "" {
		// Qualified guard: any held mutex of that name on a value of that
		// type satisfies it.
		for _, l := range held {
			if l.muName == spec.muName && l.baseName == spec.typeName && (l.write || !write) {
				return
			}
		}
		lw.report(sel, write, spec.typeName+"."+spec.muName)
		return
	}
	key := types.ExprString(sel.X) + "." + spec.sibling
	if l, ok := held[key]; ok && (l.write || !write) {
		return
	}
	lw.report(sel, write, key)
}

func (lw *lockWalk) report(sel *ast.SelectorExpr, write bool, want string) {
	verb := "read"
	if write {
		verb = "written"
	}
	lw.pass.Reportf(sel.Sel.Pos(), "field %s is guarded by %s but %s without holding it",
		sel.Sel.Name, want, verb)
}

// writeTargets marks the root selector of each assignment target as a
// write: `cc.used = n`, `cc.paths[p] = pb`, and `*of.sizep = v` all
// mutate state reached through the selector.
func writeTargets(lhs []ast.Expr) map[*ast.SelectorExpr]bool {
	writes := make(map[*ast.SelectorExpr]bool)
	for _, l := range lhs {
		e := l
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.SelectorExpr:
				writes[x] = true
				e = nil
			default:
				e = nil
			}
			if e == nil {
				break
			}
		}
	}
	return writes
}
