package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness mirrors golang.org/x/tools' analysistest on top of
// the package's own source loader: each testdata/src/<name> directory is
// a real, type-checking package seeded with violations, and every
// expected diagnostic is declared in the source as a trailing
//
//	// want `regexp`
//
// comment on the line the analyzer must flag (several backquoted or
// quoted patterns may follow one want). The test fails on any
// expectation the analyzer missed and on any diagnostic the fixture did
// not expect, so analyzer and fixtures pin each other down.

// wantPatternRe extracts the quoted patterns following the want keyword.
var wantPatternRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// expectation is one declared diagnostic: a pattern anchored to a line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// runFixture loads testdata/src/<name>, runs one analyzer over it, and
// diffs the findings against the fixture's want comments.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	importPath := loader.ModulePath() + "/internal/analysis/testdata/src/" + name
	pkg, err := loader.LoadDir(dir, importPath)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.TypeError != nil {
		t.Fatalf("fixture %s must type-check: %v", name, pkg.TypeError)
	}

	wants := collectWants(t, pkg)
	findings := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})

	for _, f := range findings {
		if !matchWant(wants, f) {
			t.Errorf("unexpected diagnostic at %s: %s", f.Pos, f.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// collectWants parses every want comment in the fixture package.
func collectWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				for _, m := range wantPatternRe.FindAllStringSubmatch(rest, -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", posn.Filename, posn.Line, pat, err)
					}
					wants = append(wants, &expectation{
						file: filepath.Base(posn.Filename),
						line: posn.Line,
						re:   re,
					})
				}
			}
		}
	}
	return wants
}

// matchWant consumes the first unmet expectation on the finding's line
// whose pattern matches its message.
func matchWant(wants []*expectation, f Finding) bool {
	file := filepath.Base(f.position.Filename)
	for _, w := range wants {
		if !w.met && w.file == file && w.line == f.position.Line && w.re.MatchString(f.Message) {
			w.met = true
			return true
		}
	}
	return false
}

func TestBufPoolFixtures(t *testing.T)         { runFixture(t, BufPool, "bufpool") }
func TestLockGuardFixtures(t *testing.T)       { runFixture(t, LockGuard, "lockguard") }
func TestFrameBoundFixtures(t *testing.T)      { runFixture(t, FrameBound, "framebound") }
func TestErrnoExhaustiveFixtures(t *testing.T) { runFixture(t, ErrnoExhaustive, "errnoexhaustive") }
func TestMetricCheckFixtures(t *testing.T)     { runFixture(t, MetricCheck, "metriccheck") }

// TestSuiteIsCleanOnRepo runs every analyzer over the whole module: the
// invariants gkfs-vet enforces must hold on the tree that ships it.
func TestSuiteIsCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the full module from source")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.ExpandPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		if pkg.TypeError != nil {
			t.Fatalf("%s: %v", pkg.Path, pkg.TypeError)
		}
	}
	for _, f := range RunAnalyzers(pkgs, All()) {
		t.Errorf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
	}
}
