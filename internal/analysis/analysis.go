// Package analysis is gkfs-vet's checker suite: repo-specific static
// analyses that mechanically enforce the invariants the data path is
// built on — pooled-buffer lifecycle (every rpc.GetBuf reaches
// rpc.PutBuf or an annotated ownership transfer on every path),
// mutex-guarded field access ("guarded by mu" comments become machine
// law), wire-decoder bounds discipline (counts from the wire never size
// an allocation unchecked), and RPC-op exhaustiveness (an op constant
// cannot be half-plumbed). The framework mirrors the shape of
// golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic — but is
// self-contained on the standard library's go/ast, go/types and
// go/importer, so the module keeps its zero-dependency property. See
// docs/INVARIANTS.md for the enforced rules and annotation grammar.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named check over a type-checked package, the analogue
// of x/tools' analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -list output.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run inspects the package and reports findings via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	// Fset maps AST positions to source locations.
	Fset *token.FileSet
	// Files are the package's parsed source files, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's expression and identifier facts.
	Info *types.Info
	// Report delivers one finding.
	Report func(Diagnostic)
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	// Pos is where the invariant is violated.
	Pos token.Pos
	// Message states the violation.
	Message string
}

// Reportf formats and reports a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// isTestFile reports whether pos lies in a _test.go file. The invariants
// bind production code; tests deliberately build hostile shapes (leaked
// buffers, forged frames) to prove the defenses, so analyzers skip them.
func (p *Pass) isTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// All returns the gkfs-vet analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		BufPool,
		LockGuard,
		FrameBound,
		ErrnoExhaustive,
		MetricCheck,
	}
}
