package analysis

import (
	"go/ast"
	"go/types"
)

// FrameBound enforces the wrap-proof decoder discipline: an integer read
// off the wire ((*rpc.Dec).U8/U16/U32/U64/I64) must pass through a
// bounds check — any if/switch condition referencing it, which is how
// the repo's decoders compare counts against rpc.Dec.Remaining(),
// MaxBatchOps, or a directory cap — before it may size an allocation
// (make, rpc.GetBuf) or bound a loop. A hostile frame otherwise turns a
// 4-byte count into a multi-gigabyte allocation. The escape hatch for
// values bounded by construction is a //gkfs:bounded comment on the use.
var FrameBound = &Analyzer{
	Name: "framebound",
	Doc:  "wire-decoded counts must be bounds-checked before sizing allocations or bounding loops",
	Run:  runFrameBound,
}

// taint tracks one wire-derived integer; aliases share the pointer so a
// check through any name clears them all.
type taint struct {
	checked bool
}

func runFrameBound(pass *Pass) error {
	for _, file := range pass.Files {
		if pass.isTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fb := &frameWalk{pass: pass, file: file, taints: make(map[types.Object]*taint)}
			fb.walk(fd.Body)
		}
	}
	return nil
}

type frameWalk struct {
	pass   *Pass
	file   *ast.File
	taints map[types.Object]*taint
}

// walk visits the body in source order: taint introductions and checks
// precede, by position, the uses they govern in the decoder style this
// repo writes (read count → validate → allocate).
func (fb *frameWalk) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			fb.assign(n)
		case *ast.IfStmt:
			fb.markChecked(n.Cond)
		case *ast.SwitchStmt:
			fb.markChecked(n.Tag)
		case *ast.ForStmt:
			fb.checkLoopBound(n)
		case *ast.CallExpr:
			fb.checkAlloc(n)
		}
		return true
	})
}

// assign introduces taint for wire reads and propagates it through
// copies and conversions.
func (fb *frameWalk) assign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, r := range as.Rhs {
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := fb.pass.Info.Defs[id]
		if obj == nil {
			obj = fb.pass.Info.Uses[id]
		}
		if obj == nil {
			continue
		}
		src := unwrapConv(fb.pass, r)
		switch {
		case fb.isWireRead(src):
			fb.taints[obj] = &taint{}
		case fb.aliasOf(src) != nil:
			fb.taints[obj] = fb.aliasOf(src)
		}
	}
}

// aliasOf returns the taint behind a bare (possibly converted) tainted
// identifier, or nil.
func (fb *frameWalk) aliasOf(e ast.Expr) *taint {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return fb.taints[fb.pass.Info.Uses[id]]
	}
	return nil
}

// isWireRead reports whether e calls a (*rpc.Dec) integer reader.
func (fb *frameWalk) isWireRead(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "U8", "U16", "U32", "U64", "I64":
	default:
		return false
	}
	fn, ok := fb.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedTypeName(sig.Recv().Type()) == "Dec" && fn.Pkg() != nil && fn.Pkg().Name() == "rpc"
}

// unwrapConv strips type conversions like int(x) or uint64(x).
func unwrapConv(pass *Pass, e ast.Expr) ast.Expr {
	for {
		e = ast.Unparen(e)
		call, ok := e.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return e
		}
		tv, ok := pass.Info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return e
		}
		e = call.Args[0]
	}
}

// markChecked clears taint for every tainted identifier the condition
// references: the decoders' validation style is an if-gate naming the
// count (n > MaxBatchOps, int64(n)*size > int64(d.Remaining()), ...).
func (fb *frameWalk) markChecked(cond ast.Expr) {
	if cond == nil {
		return
	}
	ast.Inspect(cond, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok {
			if t := fb.taints[fb.pass.Info.Uses[id]]; t != nil {
				t.checked = true
			}
		}
		return true
	})
}

// firstUnchecked returns the first unchecked tainted identifier in e.
func (fb *frameWalk) firstUnchecked(e ast.Expr) *ast.Ident {
	var found *ast.Ident
	ast.Inspect(e, func(x ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := x.(*ast.Ident); ok {
			if t := fb.taints[fb.pass.Info.Uses[id]]; t != nil && !t.checked {
				found = id
			}
		}
		return true
	})
	return found
}

// checkAlloc flags make/GetBuf calls sized by unchecked wire counts.
func (fb *frameWalk) checkAlloc(call *ast.CallExpr) {
	sizeArgs := fb.allocSizeArgs(call)
	for _, arg := range sizeArgs {
		id := fb.firstUnchecked(arg)
		if id == nil {
			continue
		}
		if lineDirective(fb.pass.Fset, fb.file, call.Pos(), "bounded") {
			return
		}
		fb.pass.Reportf(call.Pos(),
			"allocation sized by wire-decoded %s without a bounds check; compare it against rpc.Dec.Remaining() or an explicit cap first", id.Name)
		return
	}
}

// allocSizeArgs returns the size-bearing arguments of an allocating
// call: make's len/cap, rpc.GetBuf's n.
func (fb *frameWalk) allocSizeArgs(call *ast.CallExpr) []ast.Expr {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "make" {
			if _, isBuiltin := fb.pass.Info.Uses[fun].(*types.Builtin); isBuiltin && len(call.Args) > 1 {
				return call.Args[1:]
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := fb.pass.Info.Uses[fun.Sel].(*types.Func); ok &&
			fn.Name() == "GetBuf" && fn.Pkg() != nil && fn.Pkg().Name() == "rpc" {
			return call.Args
		}
	}
	return nil
}

// checkLoopBound flags for-loops whose condition is bounded by an
// unchecked wire count.
func (fb *frameWalk) checkLoopBound(loop *ast.ForStmt) {
	if loop.Cond == nil {
		return
	}
	id := fb.firstUnchecked(loop.Cond)
	if id == nil {
		return
	}
	if lineDirective(fb.pass.Fset, fb.file, loop.Pos(), "bounded") {
		// The author vouches for the bound; the condition reference would
		// otherwise also mark it checked below, but keep the directive as
		// the documented suppression.
		return
	}
	fb.pass.Reportf(loop.Pos(),
		"loop bounded by wire-decoded %s without a prior bounds check; validate the count before iterating", id.Name)
	// Don't re-report every later use of the same count.
	if t := fb.taints[fb.pass.Info.Uses[id]]; t != nil {
		t.checked = true
	}
}
