package lustre

import (
	"testing"
	"time"
)

func run(t *testing.T, nodes int, op MDOp, singleDir bool) Result {
	t.Helper()
	return RunMetadata(DefaultParams(), nodes, op, singleDir,
		20*time.Millisecond, 80*time.Millisecond, 3)
}

// TestPlateauFlat is the defining Lustre behaviour in Fig. 2: adding
// client nodes does not add metadata throughput because one MDS serves
// everything.
func TestPlateauFlat(t *testing.T) {
	r8 := run(t, 8, MDOpCreate, true)
	r128 := run(t, 128, MDOpCreate, true)
	if r128.OpsPerSec > 1.25*r8.OpsPerSec {
		t.Fatalf("Lustre 'scaled' from %.0f to %.0f ops/s; MDS should plateau",
			r8.OpsPerSec, r128.OpsPerSec)
	}
}

func TestSingleDirSlowerThanUnique(t *testing.T) {
	single := run(t, 64, MDOpCreate, true)
	unique := run(t, 64, MDOpCreate, false)
	if single.OpsPerSec >= unique.OpsPerSec {
		t.Fatalf("single dir (%.0f) not slower than unique dir (%.0f)",
			single.OpsPerSec, unique.OpsPerSec)
	}
	// The gap comes from the directory lock: expect ≥ 20 % at the
	// create plateau (paper Fig. 2a).
	if single.OpsPerSec > 0.8*unique.OpsPerSec {
		t.Fatalf("single/unique gap too small: %.0f vs %.0f", single.OpsPerSec, unique.OpsPerSec)
	}
}

func TestPlateauLevels(t *testing.T) {
	// Calibration targets from the paper's 512-node ratios: creates
	// ≈ 33 K/s (single dir), stats ≈ 122 K/s, removes ≈ 49 K/s. ±30 %.
	checks := []struct {
		op   MDOp
		want float64
	}{
		{MDOpCreate, 33e3},
		{MDOpStat, 122e3},
		{MDOpRemove, 49e3},
	}
	for _, c := range checks {
		got := run(t, 128, c.op, true).OpsPerSec
		if got < c.want*0.7 || got > c.want*1.3 {
			t.Errorf("op %v plateau = %.0f, want %.0f ±30%%", c.op, got, c.want)
		}
	}
}

func TestStatCheapestOperation(t *testing.T) {
	stat := run(t, 32, MDOpStat, true)
	create := run(t, 32, MDOpCreate, true)
	remove := run(t, 32, MDOpRemove, true)
	if stat.OpsPerSec <= create.OpsPerSec || stat.OpsPerSec <= remove.OpsPerSec {
		t.Fatalf("stat (%.0f) should outpace create (%.0f) and remove (%.0f)",
			stat.OpsPerSec, create.OpsPerSec, remove.OpsPerSec)
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, 16, MDOpCreate, true)
	b := run(t, 16, MDOpCreate, true)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	// More closed-loop clients against the same MDS → deeper queues →
	// higher latency.
	small := run(t, 2, MDOpCreate, true)
	big := run(t, 64, MDOpCreate, true)
	if big.MeanLatency <= small.MeanLatency {
		t.Fatalf("latency did not grow with load: %v vs %v", small.MeanLatency, big.MeanLatency)
	}
}
