// Package lustre models the paper's comparison system: a production
// Lustre file system whose namespace operations funnel through a single
// metadata server (MDS). Two mechanisms shape Fig. 2's Lustre curves and
// both are modeled explicitly:
//
//  1. The MDS is one machine with a bounded service-thread pool — total
//     metadata throughput plateaus regardless of client count, which is
//     why the Lustre lines are flat while GekkoFS scales with nodes.
//  2. Operations inside one directory serialize on the directory's lock
//     (the "sequentialization enforced by underlying POSIX semantics",
//     paper §II), so mdtest in a single shared directory is slower than
//     in per-process unique directories.
//
// Service-time constants are calibrated against the paper's 512-node
// plateaus (creates ≈ 46 M/1405 ≈ 33 K/s single-dir; stats ≈ 44 M/359 ≈
// 122 K/s; removes ≈ 22 M/453 ≈ 49 K/s). The paper notes its Lustre was
// shared with other users; JitterFrac injects that unpredictability.
package lustre

import (
	"time"

	"repro/internal/sim"
)

// MDOp names a metadata operation.
type MDOp int

// Metadata operations.
const (
	// MDOpCreate creates zero-byte files.
	MDOpCreate MDOp = iota
	// MDOpStat stats files.
	MDOpStat
	// MDOpRemove unlinks files.
	MDOpRemove
)

// Params are the MDS model constants.
type Params struct {
	// MDSThreads is the metadata service thread count.
	MDSThreads int
	// NetLatency is the client↔MDS one-way latency (includes the Lustre
	// client stack, which is heavier than GekkoFS's user-space path).
	NetLatency time.Duration
	// CreateSvc, StatSvc, RemoveSvc are per-op service times on an MDS
	// thread (journaling, OST object preallocation, dentry work).
	CreateSvc, StatSvc, RemoveSvc time.Duration
	// CreateLock, StatLock, RemoveLock are the per-op windows during
	// which the parent directory's lock is held exclusively; they bind
	// only in single-directory workloads.
	CreateLock, StatLock, RemoveLock time.Duration
	// JitterFrac models interference from other users of the shared
	// system.
	JitterFrac float64
	// ProcsPerNode matches the benchmark layout (16).
	ProcsPerNode int
}

// DefaultParams returns the calibrated model.
func DefaultParams() Params {
	return Params{
		MDSThreads:   16,
		NetLatency:   30 * time.Microsecond,
		CreateSvc:    290 * time.Microsecond,
		StatSvc:      125 * time.Microsecond,
		RemoveSvc:    320 * time.Microsecond,
		CreateLock:   30 * time.Microsecond,
		StatLock:     8 * time.Microsecond,
		RemoveLock:   21 * time.Microsecond,
		JitterFrac:   0.15,
		ProcsPerNode: 16,
	}
}

// Result is one simulated measurement.
type Result struct {
	// OpsPerSec is the aggregate operation rate.
	OpsPerSec float64
	// MeanLatency is the mean per-op latency.
	MeanLatency time.Duration
}

// RunMetadata simulates nodes×16 processes running the mdtest phase `op`
// against the MDS. singleDir puts every process in one directory (shared
// lock); otherwise each process works in its own directory (the paper's
// "unique dir" configuration, where per-directory locks shard across
// processes and stop binding).
func RunMetadata(p Params, nodes int, op MDOp, singleDir bool, warmup, window time.Duration, seed uint64) Result {
	eng := sim.NewEngine()
	rng := sim.NewRNG(seed)
	mds := sim.NewServer(eng, p.MDSThreads)
	dirLock := sim.NewServer(eng, 1)

	var svc, lock time.Duration
	switch op {
	case MDOpCreate:
		svc, lock = p.CreateSvc, p.CreateLock
	case MDOpStat:
		svc, lock = p.StatSvc, p.StatLock
	default:
		svc, lock = p.RemoveSvc, p.RemoveLock
	}

	start := sim.Dur(warmup)
	end := start + sim.Dur(window)
	var completed uint64
	var latSum sim.Time
	var latN uint64

	lat := sim.Dur(p.NetLatency)
	procs := nodes * p.ProcsPerNode
	for pr := 0; pr < procs; pr++ {
		var loop func()
		loop = func() {
			issued := eng.Now()
			eng.After(lat, func() {
				finish := func() {
					eng.After(lat, func() {
						if eng.Now() > start && eng.Now() <= end {
							completed++
							latSum += eng.Now() - issued
							latN++
						}
						loop()
					})
				}
				// The directory lock is held for its window, then the
				// operation occupies an MDS thread. In unique-dir mode
				// each process has its own directory, so its lock never
				// contends — modeled by skipping the shared lock queue.
				if singleDir {
					dirLock.Process(rng.Jitter(sim.Dur(lock), p.JitterFrac), func() {
						mds.Process(rng.Jitter(sim.Dur(svc), p.JitterFrac), finish)
					})
				} else {
					mds.Process(rng.Jitter(sim.Dur(svc), p.JitterFrac), finish)
				}
			})
		}
		loop()
	}
	eng.RunUntil(end)

	res := Result{OpsPerSec: float64(completed) / window.Seconds()}
	if latN > 0 {
		res.MeanLatency = time.Duration(latSum / sim.Time(latN))
	}
	return res
}
