package distributor

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/meta"
)

func TestSimpleHashDeterministic(t *testing.T) {
	d1 := NewSimpleHash(37)
	d2 := NewSimpleHash(37)
	f := func(path string, id uint16) bool {
		return d1.MetaTarget(path) == d2.MetaTarget(path) &&
			d1.ChunkTarget(path, meta.ChunkID(id)) == d2.ChunkTarget(path, meta.ChunkID(id))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimpleHashInRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 16, 512} {
		d := NewSimpleHash(n)
		for i := 0; i < 1000; i++ {
			p := fmt.Sprintf("/dir/file.%d", i)
			if tgt := d.MetaTarget(p); tgt < 0 || tgt >= n {
				t.Fatalf("n=%d MetaTarget(%q)=%d out of range", n, p, tgt)
			}
			if tgt := d.ChunkTarget(p, meta.ChunkID(i)); tgt < 0 || tgt >= n {
				t.Fatalf("n=%d ChunkTarget out of range", n)
			}
		}
	}
}

// TestSimpleHashBalance checks the load-balancing claim: hashing must
// spread many files roughly uniformly over daemons (within 4 standard
// deviations of the binomial expectation per bin).
func TestSimpleHashBalance(t *testing.T) {
	const n = 32
	const files = 64000
	d := NewSimpleHash(n)
	counts := make([]int, n)
	for i := 0; i < files; i++ {
		counts[d.MetaTarget(fmt.Sprintf("/bench/out.%d", i))]++
	}
	mean := float64(files) / n
	sigma := math.Sqrt(mean * (1 - 1.0/n))
	for node, c := range counts {
		if math.Abs(float64(c)-mean) > 4*sigma {
			t.Errorf("node %d holds %d files, mean %.0f ± %.0f (4σ)", node, c, mean, sigma)
		}
	}
}

// TestChunkSpread checks that the chunks of a single large file land on
// many daemons — the wide-striping property that gives Fig. 3 its
// aggregated-SSD scaling.
func TestChunkSpread(t *testing.T) {
	const n = 64
	d := NewSimpleHash(n)
	seen := make(map[int]bool)
	for c := meta.ChunkID(0); c < 4096; c++ {
		seen[d.ChunkTarget("/data/big.bin", c)] = true
	}
	if len(seen) < n*9/10 {
		t.Fatalf("4096 chunks hit only %d/%d daemons", len(seen), n)
	}
}

func TestGuidedFirstChunk(t *testing.T) {
	const n = 16
	d := NewGuidedFirstChunk(n)
	for i := 0; i < 200; i++ {
		p := fmt.Sprintf("/out/f%d", i)
		if d.ChunkTarget(p, 0) != d.MetaTarget(p) {
			t.Fatalf("chunk 0 of %q not co-located with metadata", p)
		}
	}
	// Later chunks must still spread.
	seen := make(map[int]bool)
	for c := meta.ChunkID(1); c < 512; c++ {
		seen[d.ChunkTarget("/out/large", c)] = true
	}
	if len(seen) < n/2 {
		t.Fatalf("tail chunks hit only %d/%d daemons", len(seen), n)
	}
}

func TestLocalFirst(t *testing.T) {
	d := NewLocalFirst(8, 3)
	for c := meta.ChunkID(0); c < 100; c++ {
		if got := d.ChunkTarget("/x", c); got != 3 {
			t.Fatalf("ChunkTarget = %d, want 3", got)
		}
	}
	if tgt := d.MetaTarget("/x"); tgt < 0 || tgt >= 8 {
		t.Fatalf("MetaTarget out of range: %d", tgt)
	}
}

func TestConstructorsPanicOnBadArgs(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewSimpleHash(0)", func() { NewSimpleHash(0) })
	mustPanic("NewGuidedFirstChunk(-1)", func() { NewGuidedFirstChunk(-1) })
	mustPanic("NewLocalFirst(4,9)", func() { NewLocalFirst(4, 9) })
	mustPanic("NewLocalFirst(0,0)", func() { NewLocalFirst(0, 0) })
}

func TestNames(t *testing.T) {
	if NewSimpleHash(1).Name() == "" || NewGuidedFirstChunk(1).Name() == "" || NewLocalFirst(1, 0).Name() == "" {
		t.Fatal("empty distributor name")
	}
}

func TestChunkReplicasDistinct(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 16} {
		for _, mk := range []func() Distributor{
			func() Distributor { return NewSimpleHash(n) },
			func() Distributor { return NewGuidedFirstChunk(n) },
			func() Distributor { return NewLocalFirst(n, 0) },
		} {
			d := mk()
			for r := 1; r <= n; r++ {
				for c := meta.ChunkID(0); c < 64; c++ {
					reps := d.ChunkReplicas("/data/f", c, r)
					if len(reps) != r {
						t.Fatalf("%s n=%d r=%d: got %d replicas", d.Name(), n, r, len(reps))
					}
					seen := make(map[int]bool, r)
					for _, node := range reps {
						if node < 0 || node >= n {
							t.Fatalf("%s n=%d r=%d: replica %d out of range", d.Name(), n, r, node)
						}
						if seen[node] {
							t.Fatalf("%s n=%d r=%d: duplicate replica %d in %v", d.Name(), n, r, node, reps)
						}
						seen[node] = true
					}
				}
			}
		}
	}
}

// TestChunkReplicasR1Identity: r=1 must reproduce the unreplicated
// placement bit-for-bit, so existing clusters are untouched by the knob.
func TestChunkReplicasR1Identity(t *testing.T) {
	d := NewSimpleHash(17)
	f := func(path string, id uint16) bool {
		reps := d.ChunkReplicas(path, meta.ChunkID(id), 1)
		return len(reps) == 1 && reps[0] == d.ChunkTarget(path, meta.ChunkID(id))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := NewGuidedFirstChunk(9)
	for c := meta.ChunkID(0); c < 100; c++ {
		if reps := g.ChunkReplicas("/a/b", c, 1); len(reps) != 1 || reps[0] != g.ChunkTarget("/a/b", c) {
			t.Fatalf("guided r=1 replicas %v != ChunkTarget %d", reps, g.ChunkTarget("/a/b", c))
		}
	}
}

// TestChunkReplicasDeterministic: two independently constructed
// distributors (two clients) must agree on the full replica chain, and
// the chain must lead with the primary.
func TestChunkReplicasDeterministic(t *testing.T) {
	d1, d2 := NewSimpleHash(11), NewSimpleHash(11)
	f := func(path string, id uint16) bool {
		a := d1.ChunkReplicas(path, meta.ChunkID(id), 3)
		b := d2.ChunkReplicas(path, meta.ChunkID(id), 3)
		if len(a) != 3 || len(b) != 3 || a[0] != d1.ChunkTarget(path, meta.ChunkID(id)) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestChunkReplicasClamped: asking for more replicas than daemons must
// clamp to n (every daemon once), never duplicate or overflow.
func TestChunkReplicasClamped(t *testing.T) {
	const n = 4
	d := NewSimpleHash(n)
	for _, r := range []int{n + 1, 2 * n, 100} {
		reps := d.ChunkReplicas("/x", 7, r)
		if len(reps) != n {
			t.Fatalf("r=%d: got %d replicas, want clamp to %d", r, len(reps), n)
		}
		seen := make(map[int]bool)
		for _, node := range reps {
			seen[node] = true
		}
		if len(seen) != n {
			t.Fatalf("r=%d: clamped chain %v does not cover all %d daemons", r, reps, n)
		}
	}
	// r ≤ 0 degrades to the primary alone rather than panicking.
	if reps := d.ChunkReplicas("/x", 7, 0); len(reps) != 1 || reps[0] != d.ChunkTarget("/x", 7) {
		t.Fatalf("r=0: got %v, want [primary]", reps)
	}
}

func TestDifferentPathsSpread(t *testing.T) {
	// Distinct paths should not all collapse to one node (sanity against a
	// constant hash).
	d := NewSimpleHash(8)
	seen := make(map[int]bool)
	for i := 0; i < 100; i++ {
		seen[d.MetaTarget(fmt.Sprintf("/p/%d", i))] = true
	}
	if len(seen) < 4 {
		t.Fatalf("100 paths map to only %d/8 nodes", len(seen))
	}
}
