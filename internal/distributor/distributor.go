// Package distributor implements GekkoFS's pseudo-random data and metadata
// distribution ("wide striping", paper §III-B). Every client resolves the
// daemon responsible for a path or a chunk locally, by hashing, so the file
// system needs no central placement tables.
//
// The paper's released system hashes the path for metadata and the pair
// (path, chunkID) for data. The paper's conclusion lists "explore different
// data distribution patterns" as future work; this package therefore also
// provides two alternative placements (GuidedFirstChunk and LocalFirst)
// which the ablation experiment A2 compares.
package distributor

import (
	"fmt"
	"hash/fnv"

	"repro/internal/meta"
)

// Distributor decides which daemon owns a path's metadata and a chunk's
// data. Implementations must be deterministic pure functions of their
// inputs so that every client resolves identically.
type Distributor interface {
	// Nodes returns the total number of daemons the distributor spreads
	// over.
	Nodes() int
	// MetaTarget returns the daemon index owning the metadata of path.
	MetaTarget(path string) int
	// ChunkTarget returns the daemon index owning chunk id of path.
	ChunkTarget(path string, id meta.ChunkID) int
	// ChunkReplicas returns the r daemon indexes holding chunk id of
	// path: the primary (identical to ChunkTarget) first, then r−1
	// distinct successors. r is clamped to Nodes(); r ≤ 1 returns
	// exactly [ChunkTarget(path, id)], reproducing the unreplicated
	// placement bit-for-bit. The returned indexes are always pairwise
	// distinct.
	ChunkReplicas(path string, id meta.ChunkID, r int) []int
	// Name identifies the distribution pattern in reports.
	Name() string
}

// successors returns [primary, primary+1, ..., primary+r-1] mod n with r
// clamped to [1, n]. Placing replicas on the ring successors of the
// primary (Grid Datafarm's placement) keeps the chain a pure function of
// the primary alone: every span that hashes to the same primary shares
// one replica chain, so failover and hedging operate per target group.
func successors(primary, n, r int) []int {
	if r > n {
		r = n
	}
	if r < 1 {
		r = 1
	}
	out := make([]int, r)
	for k := range out {
		out[k] = (primary + k) % n
	}
	return out
}

// New returns the named distribution pattern over n daemons: "" or
// "simplehash" for the paper's hashing, "guided-first-chunk" for the
// co-located first-chunk variant. It is the single name→pattern mapping
// shared by the cluster orchestrator and the CLIs, so a new pattern
// becomes reachable everywhere at once.
func New(name string, n int) (Distributor, error) {
	switch name {
	case "", "simplehash":
		return NewSimpleHash(n), nil
	case "guided-first-chunk":
		return NewGuidedFirstChunk(n), nil
	default:
		return nil, fmt.Errorf("distributor: unknown pattern %q", name)
	}
}

// hashPath hashes a path with FNV-1a, the same family of cheap
// non-cryptographic hash the released GekkoFS uses (std::hash).
func hashPath(path string) uint64 {
	h := fnv.New64a()
	// hash.Hash64.Write never fails.
	h.Write([]byte(path))
	return h.Sum64()
}

// hashPathChunk hashes the pair (path, chunk id).
func hashPathChunk(path string, id meta.ChunkID) uint64 {
	h := fnv.New64a()
	h.Write([]byte(path))
	var b [8]byte
	v := uint64(id)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64()
}

// SimpleHash is the paper's distribution: metadata to hash(path) mod N,
// chunk c of a file to hash(path, c) mod N.
type SimpleHash struct {
	n int
}

// NewSimpleHash returns a SimpleHash over n daemons; n must be > 0.
func NewSimpleHash(n int) *SimpleHash {
	if n <= 0 {
		panic("distributor: node count must be positive")
	}
	return &SimpleHash{n: n}
}

// Nodes implements Distributor.
func (d *SimpleHash) Nodes() int { return d.n }

// Name implements Distributor.
func (d *SimpleHash) Name() string { return "simplehash" }

// MetaTarget implements Distributor.
func (d *SimpleHash) MetaTarget(path string) int {
	return int(hashPath(path) % uint64(d.n))
}

// ChunkTarget implements Distributor.
func (d *SimpleHash) ChunkTarget(path string, id meta.ChunkID) int {
	return int(hashPathChunk(path, id) % uint64(d.n))
}

// ChunkReplicas implements Distributor.
func (d *SimpleHash) ChunkReplicas(path string, id meta.ChunkID, r int) []int {
	return successors(d.ChunkTarget(path, id), d.n, r)
}

// GuidedFirstChunk places chunk 0 of every file on the file's metadata
// node and spreads the remaining chunks by hash. Small files (≤ 1 chunk)
// then need a single daemon for create+write+stat, halving RPC fan-out for
// the metadata-heavy small-file workloads of the paper's introduction, at
// the cost of slightly less uniform data placement.
type GuidedFirstChunk struct {
	n int
}

// NewGuidedFirstChunk returns a GuidedFirstChunk over n daemons.
func NewGuidedFirstChunk(n int) *GuidedFirstChunk {
	if n <= 0 {
		panic("distributor: node count must be positive")
	}
	return &GuidedFirstChunk{n: n}
}

// Nodes implements Distributor.
func (d *GuidedFirstChunk) Nodes() int { return d.n }

// Name implements Distributor.
func (d *GuidedFirstChunk) Name() string { return "guided-first-chunk" }

// MetaTarget implements Distributor.
func (d *GuidedFirstChunk) MetaTarget(path string) int {
	return int(hashPath(path) % uint64(d.n))
}

// ChunkTarget implements Distributor.
func (d *GuidedFirstChunk) ChunkTarget(path string, id meta.ChunkID) int {
	if id == 0 {
		return d.MetaTarget(path)
	}
	return int(hashPathChunk(path, id) % uint64(d.n))
}

// ChunkReplicas implements Distributor.
func (d *GuidedFirstChunk) ChunkReplicas(path string, id meta.ChunkID, r int) []int {
	return successors(d.ChunkTarget(path, id), d.n, r)
}

// LocalFirst writes every chunk to the issuing client's own node,
// emulating BurstFS's "write local" placement (the paper contrasts GekkoFS
// against it in §II). Reads from other nodes then pay the remote cost.
// LocalFirst is parameterized per client; construct one per client node.
type LocalFirst struct {
	n     int
	local int
}

// NewLocalFirst returns a LocalFirst distributor for a client running on
// daemon index local out of n daemons.
func NewLocalFirst(n, local int) *LocalFirst {
	if n <= 0 {
		panic("distributor: node count must be positive")
	}
	if local < 0 || local >= n {
		panic(fmt.Sprintf("distributor: local index %d out of range [0,%d)", local, n))
	}
	return &LocalFirst{n: n, local: local}
}

// Nodes implements Distributor.
func (d *LocalFirst) Nodes() int { return d.n }

// Name implements Distributor.
func (d *LocalFirst) Name() string { return "local-first" }

// MetaTarget implements Distributor: metadata stays hash-distributed so
// stats from any node still resolve without a broadcast.
func (d *LocalFirst) MetaTarget(path string) int {
	return int(hashPath(path) % uint64(d.n))
}

// ChunkTarget implements Distributor.
func (d *LocalFirst) ChunkTarget(string, meta.ChunkID) int { return d.local }

// ChunkReplicas implements Distributor.
func (d *LocalFirst) ChunkReplicas(path string, id meta.ChunkID, r int) []int {
	return successors(d.ChunkTarget(path, id), d.n, r)
}
