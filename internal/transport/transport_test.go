package transport

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/rpc"
)

const (
	opEcho rpc.Op = iota + 1
	opFail
	opWrite // pulls bulk, returns its checksum byte count
	opRead  // pushes a pattern into the client's buffer
	opSlow
)

func newTestServer() *rpc.Server {
	s := rpc.NewServer(8)
	s.Register(opEcho, func(req []byte, _ rpc.Bulk) ([]byte, error) {
		return append([]byte("echo:"), req...), nil
	})
	s.Register(opFail, func([]byte, rpc.Bulk) ([]byte, error) {
		return nil, errors.New("handler exploded")
	})
	s.Register(opWrite, func(req []byte, bulk rpc.Bulk) ([]byte, error) {
		buf := make([]byte, bulk.Len())
		if err := bulk.Pull(buf); err != nil {
			return nil, err
		}
		var sum uint64
		for _, b := range buf {
			sum += uint64(b)
		}
		return []byte(fmt.Sprintf("%d:%d", len(buf), sum)), nil
	})
	s.Register(opRead, func(req []byte, bulk rpc.Bulk) ([]byte, error) {
		out := bytes.Repeat([]byte{0x5A}, bulk.Len())
		if err := bulk.Push(out); err != nil {
			return nil, err
		}
		return []byte("ok"), nil
	})
	s.Register(opSlow, func([]byte, rpc.Bulk) ([]byte, error) {
		time.Sleep(200 * time.Millisecond)
		return []byte("late"), nil
	})
	return s
}

// conns builds one connection per transport against the same server.
func conns(t *testing.T) map[string]rpc.Conn {
	t.Helper()
	return connsAgainst(t, newTestServer())
}

// connsAgainst builds one connection per transport against srv, for
// tests that need to hold the server (observers, stats).
func connsAgainst(t *testing.T, srv *rpc.Server) map[string]rpc.Conn {
	t.Helper()

	net1 := NewMemNetwork()
	net1.Register(0, srv)
	memConn, err := net1.Dial(0)
	if err != nil {
		t.Fatal(err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ServeTCP(l, srv)
	t.Cleanup(func() { l.Close() })
	tcpConn, err := DialTCP(l.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tcpConn.Close() })

	poolConn, err := DialTCPPool(l.Addr().String(), 5*time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { poolConn.Close() })

	m := map[string]rpc.Conn{"mem": memConn, "tcp": tcpConn, "tcp-pool": poolConn}
	for name, c := range platformConns(t, srv) {
		m[name] = c
	}
	return m
}

func TestEcho(t *testing.T) {
	for name, c := range conns(t) {
		t.Run(name, func(t *testing.T) {
			resp, err := c.Call(opEcho, []byte("hello"), nil, rpc.BulkNone)
			if err != nil || string(resp) != "echo:hello" {
				t.Fatalf("Call = %q, %v", resp, err)
			}
		})
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	for name, c := range conns(t) {
		t.Run(name, func(t *testing.T) {
			_, err := c.Call(opFail, nil, nil, rpc.BulkNone)
			var re *rpc.RemoteError
			if !errors.As(err, &re) {
				t.Fatalf("err = %v (%T), want RemoteError", err, err)
			}
			if !strings.Contains(re.Msg, "handler exploded") {
				t.Fatalf("msg = %q", re.Msg)
			}
		})
	}
}

func TestBulkWritePath(t *testing.T) {
	for name, c := range conns(t) {
		t.Run(name, func(t *testing.T) {
			data := bytes.Repeat([]byte{3}, 100000)
			resp, err := c.Call(opWrite, nil, data, rpc.BulkIn)
			if err != nil {
				t.Fatal(err)
			}
			if string(resp) != "100000:300000" {
				t.Fatalf("server saw %q", resp)
			}
		})
	}
}

func TestBulkReadPath(t *testing.T) {
	for name, c := range conns(t) {
		t.Run(name, func(t *testing.T) {
			buf := make([]byte, 64*1024)
			resp, err := c.Call(opRead, nil, buf, rpc.BulkOut)
			if err != nil || string(resp) != "ok" {
				t.Fatalf("Call = %q, %v", resp, err)
			}
			for i, b := range buf {
				if b != 0x5A {
					t.Fatalf("byte %d = %#x, want 0x5A", i, b)
				}
			}
		})
	}
}

func TestLargeTransfer(t *testing.T) {
	for name, c := range conns(t) {
		t.Run(name, func(t *testing.T) {
			data := make([]byte, 4<<20)
			for i := range data {
				data[i] = byte(i * 7)
			}
			var sum uint64
			for _, b := range data {
				sum += uint64(b)
			}
			resp, err := c.Call(opWrite, nil, data, rpc.BulkIn)
			if err != nil || string(resp) != fmt.Sprintf("%d:%d", len(data), sum) {
				t.Fatalf("Call = %q, %v", resp, err)
			}
		})
	}
}

func TestConcurrentCalls(t *testing.T) {
	for name, c := range conns(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for i := 0; i < 32; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					msg := []byte(fmt.Sprintf("m%d", i))
					resp, err := c.Call(opEcho, msg, nil, rpc.BulkNone)
					if err != nil || string(resp) != "echo:"+string(msg) {
						t.Errorf("call %d = %q, %v", i, resp, err)
					}
				}(i)
			}
			wg.Wait()
		})
	}
}

func TestTCPTimeout(t *testing.T) {
	srv := newTestServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go ServeTCP(l, srv)
	c, err := DialTCP(l.Addr().String(), 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(opSlow, nil, nil, rpc.BulkNone); err == nil {
		t.Fatal("slow call did not time out")
	}
	// The connection stays usable for later calls.
	time.Sleep(250 * time.Millisecond) // let the late response drain
	resp, err := c.Call(opEcho, []byte("x"), nil, rpc.BulkNone)
	if err != nil || string(resp) != "echo:x" {
		t.Fatalf("post-timeout call = %q, %v", resp, err)
	}
}

func TestTCPConnectionFailure(t *testing.T) {
	srv := newTestServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ServeTCP(l, srv)
	c, err := DialTCP(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the transport under the client.
	l.Close()
	if _, err := c.Call(opEcho, []byte("a"), nil, rpc.BulkNone); err == nil {
		// The first call may still win the race with the close; the next
		// must fail.
		if _, err2 := c.Call(opEcho, []byte("b"), nil, rpc.BulkNone); err2 == nil {
			t.Skip("listener close did not break established conn on this platform")
		}
	}
}

func TestMemDialUnknownNode(t *testing.T) {
	n := NewMemNetwork()
	if _, err := n.Dial(42); err == nil {
		t.Fatal("dial to unregistered node succeeded")
	}
}

func TestUnknownOpOverTransports(t *testing.T) {
	for name, c := range conns(t) {
		t.Run(name, func(t *testing.T) {
			_, err := c.Call(rpc.Op(999), nil, nil, rpc.BulkNone)
			var re *rpc.RemoteError
			if !errors.As(err, &re) || !strings.Contains(re.Msg, "unknown operation") {
				t.Fatalf("err = %v", err)
			}
		})
	}
}
