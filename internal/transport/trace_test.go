package transport

import (
	"encoding/binary"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/rpc"
)

// traceRecorder collects every trace the server observer sees, keyed by
// op, so tests can assert exactly which calls carried which IDs.
type traceRecorder struct {
	mu   sync.Mutex
	seen map[rpc.Op][]rpc.Trace
}

func newTraceRecorder(srv *rpc.Server) *traceRecorder {
	r := &traceRecorder{seen: make(map[rpc.Op][]rpc.Trace)}
	srv.SetObserver(func(op rpc.Op, tr rpc.Trace, queueWait, handle time.Duration, err error) {
		if queueWait < 0 || handle < 0 {
			panic("negative observer duration")
		}
		r.mu.Lock()
		r.seen[op] = append(r.seen[op], tr)
		r.mu.Unlock()
	})
	return r
}

func (r *traceRecorder) take(op rpc.Op) []rpc.Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.seen[op]
	delete(r.seen, op)
	return out
}

// TestTraceRoundTripAllTransports sends a sampled trace through every
// transport and bulk direction and asserts the server observer receives
// the exact ID and flags alongside a correct response.
func TestTraceRoundTripAllTransports(t *testing.T) {
	srv := newTestServer()
	rec := newTraceRecorder(srv)
	for name, c := range connsAgainst(t, srv) {
		tc, ok := c.(rpc.TraceCaller)
		if !ok {
			t.Errorf("%s: connection does not implement rpc.TraceCaller", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			tr := rpc.Trace{ID: 0xDEADBEEFCAFE0001, Flags: rpc.TraceSampled}

			resp, err := tc.CallTrace(opEcho, []byte("hi"), nil, rpc.BulkNone, tr)
			if err != nil || string(resp) != "echo:hi" {
				t.Fatalf("BulkNone CallTrace = %q, %v", resp, err)
			}
			if got := rec.take(opEcho); len(got) != 1 || got[0] != tr {
				t.Fatalf("observer saw %v for BulkNone, want [%v]", got, tr)
			}

			if _, err := tc.CallTrace(opWrite, nil, make([]byte, 4096), rpc.BulkIn, tr); err != nil {
				t.Fatalf("BulkIn CallTrace: %v", err)
			}
			if got := rec.take(opWrite); len(got) != 1 || got[0] != tr {
				t.Fatalf("observer saw %v for BulkIn, want [%v]", got, tr)
			}

			buf := make([]byte, 4096)
			if _, err := tc.CallTrace(opRead, nil, buf, rpc.BulkOut, tr); err != nil {
				t.Fatalf("BulkOut CallTrace: %v", err)
			}
			if buf[0] != 0x5A || buf[len(buf)-1] != 0x5A {
				t.Fatalf("BulkOut data not delivered")
			}
			if got := rec.take(opRead); len(got) != 1 || got[0] != tr {
				t.Fatalf("observer saw %v for BulkOut, want [%v]", got, tr)
			}
		})
	}
}

// TestUntracedCallObservedAsZeroTrace asserts plain Call (and CallTrace
// with an unsampled trace) reaches the observer with a zero Trace: the
// wire must not grow a trailer when nothing was sampled.
func TestUntracedCallObservedAsZeroTrace(t *testing.T) {
	srv := newTestServer()
	rec := newTraceRecorder(srv)
	for name, c := range connsAgainst(t, srv) {
		t.Run(name, func(t *testing.T) {
			if _, err := c.Call(opEcho, []byte("x"), nil, rpc.BulkNone); err != nil {
				t.Fatalf("Call: %v", err)
			}
			if got := rec.take(opEcho); len(got) != 1 || got[0] != (rpc.Trace{}) {
				t.Fatalf("observer saw %v, want one zero trace", got)
			}
			if _, err := rpc.CallTrace(c, opEcho, []byte("y"), nil, rpc.BulkNone, rpc.Trace{}); err != nil {
				t.Fatalf("unsampled CallTrace: %v", err)
			}
			if got := rec.take(opEcho); len(got) != 1 || got[0] != (rpc.Trace{}) {
				t.Fatalf("observer saw %v after unsampled CallTrace, want one zero trace", got)
			}
		})
	}
}

// TestOldShapeRawFrameStillServed is the protocol-v7 backward
// compatibility regression: a hand-built request frame in the pre-trace
// shape — direction byte without the trace bit, no trailer — must still
// be parsed and served by a current daemon exactly as before.
func TestOldShapeRawFrameStillServed(t *testing.T) {
	srv := newTestServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ServeTCP(l, srv)
	defer l.Close()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Old-shape request: [u32 rest][u64 id][u16 op][u8 dir][u32 plen]
	// [payload][u32 blen]. dir carries no 0x80 trace bit and the frame
	// ends at the bulk-length word.
	payload := []byte("hi")
	body := binary.LittleEndian.AppendUint64(nil, 7) // reqID
	body = binary.LittleEndian.AppendUint16(body, uint16(opEcho))
	body = append(body, byte(rpc.BulkNone))
	body = binary.LittleEndian.AppendUint32(body, uint32(len(payload)))
	body = append(body, payload...)
	body = binary.LittleEndian.AppendUint32(body, 0) // blen
	frame := binary.LittleEndian.AppendUint32(nil, uint32(len(body)))
	frame = append(frame, body...)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}

	// Response: [u32 rest][u64 id][u8 status][u32 plen][payload]...
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var pfx [4]byte
	if _, err := io.ReadFull(conn, pfx[:]); err != nil {
		t.Fatalf("read response prefix: %v", err)
	}
	rest := make([]byte, binary.LittleEndian.Uint32(pfx[:]))
	if _, err := io.ReadFull(conn, rest); err != nil {
		t.Fatalf("read response body: %v", err)
	}
	if id := binary.LittleEndian.Uint64(rest[0:]); id != 7 {
		t.Fatalf("response reqID = %d, want 7", id)
	}
	if status := rest[8]; status != 0 {
		t.Fatalf("response status = %d, want OK", status)
	}
	plen := binary.LittleEndian.Uint32(rest[9:])
	if got := string(rest[13 : 13+plen]); got != "echo:hi" {
		t.Fatalf("response payload = %q, want %q", got, "echo:hi")
	}
}

// TestTraceFlagWithMissingTrailerRejected asserts a frame claiming the
// trace bit but whose outer length leaves no room for the trailer is
// treated as hostile: the connection closes, the server keeps serving.
func TestTraceFlagWithMissingTrailerRejected(t *testing.T) {
	srv := newTestServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ServeTCP(l, srv)
	defer l.Close()
	addr := l.Addr().String()

	// Identical to the old-shape frame but with the trace bit set and no
	// trailer bytes: the length check must reject it before dispatch.
	frame := rawRequest(byte(rpc.BulkNone)|dirTraceFlag, 2, 0, true, 2)
	if !sendRaw(t, addr, frame) {
		t.Fatal("server kept a trace-flagged frame with no trailer")
	}

	// The listener must still serve well-formed traffic afterwards.
	c, err := DialTCP(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if resp, err := c.Call(opEcho, []byte("ok"), nil, rpc.BulkNone); err != nil || string(resp) != "echo:ok" {
		t.Fatalf("post-hostile Call = %q, %v", resp, err)
	}
}
