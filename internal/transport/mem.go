// Package transport connects rpc clients to rpc servers. The Mem
// transport wires them up in-process with zero-copy bulk transfer — the
// fabric of the in-process test cluster and of same-node client↔daemon
// traffic (the paper's Margo IPC path). The TCP transport carries the same
// protocol across real sockets for multi-process deployments.
package transport

import (
	"fmt"
	"sync"

	"repro/internal/rpc"
)

// MemNetwork is an in-process fabric: a registry of servers addressable by
// node index.
type MemNetwork struct {
	mu      sync.RWMutex
	servers map[int]*rpc.Server
}

// NewMemNetwork returns an empty fabric.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{servers: make(map[int]*rpc.Server)}
}

// Register attaches a server at node id, replacing any previous one.
func (n *MemNetwork) Register(id int, s *rpc.Server) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.servers[id] = s
}

// Dial returns a connection to node id.
func (n *MemNetwork) Dial(id int) (rpc.Conn, error) {
	n.mu.RLock()
	s, ok := n.servers[id]
	n.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("transport: no server at node %d", id)
	}
	return &memConn{srv: s}, nil
}

// memConn calls straight into the server's dispatcher. The client's bulk
// buffer is handed to the handler as-is, so a Pull or Push is one memcpy —
// the in-process analogue of RDMA.
type memConn struct {
	srv *rpc.Server
}

// Call implements rpc.Conn. The direction hint is irrelevant in-process:
// the handler touches the client's buffer directly either way.
func (c *memConn) Call(op rpc.Op, payload, bulk []byte, dir rpc.BulkDir) ([]byte, error) {
	return c.CallTrace(op, payload, bulk, dir, rpc.Trace{})
}

// CallTrace implements rpc.TraceCaller: in-process there is no frame,
// so the trace is handed to the dispatcher directly.
func (c *memConn) CallTrace(op rpc.Op, payload, bulk []byte, _ rpc.BulkDir, tr rpc.Trace) ([]byte, error) {
	var b rpc.Bulk
	if bulk != nil {
		b = rpc.SliceBulk(bulk)
	}
	resp, err := c.srv.DispatchTrace(op, payload, b, tr)
	if err != nil {
		// Keep error semantics identical to the remote case.
		return nil, &rpc.RemoteError{Msg: err.Error()}
	}
	return resp, nil
}

// Close implements rpc.Conn.
func (c *memConn) Close() error { return nil }
