package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// Pool stripes calls for one server across several underlying
// connections. A single TCP socket serializes every bulk frame behind one
// write mutex and one kernel send queue; with N sockets, large transfers
// from concurrent callers move in parallel — the per-node transport
// parallelism wide striping needs (paper §III-B, Fig. 4).
//
// Requests are spread round-robin by request id. A connection condemned
// by a transport failure is closed and lazily re-dialed on the next call
// that lands on its slot; handler errors and call timeouts do not condemn
// the connection.
type Pool struct {
	dial   func() (rpc.Conn, error)
	next   atomic.Uint64
	slots  []poolSlot
	closed atomic.Bool

	// acquireHist, when set, times slot acquisition (lock wait plus any
	// re-dial) — the client-side queue in front of the wire.
	acquireHist *telemetry.Histogram
	// connHook, when set, runs once on every connection the pool dials
	// (and once on already-dialed slots at installation), letting the
	// owner configure per-connection telemetry without knowing the
	// concrete transport.
	connHook func(rpc.Conn)
}

// SetAcquireHist installs the histogram timing slot acquisition. Call
// before the pool serves traffic; nil leaves timing disabled.
func (p *Pool) SetAcquireHist(h *telemetry.Histogram) { p.acquireHist = h }

// SetConnHook installs f, applying it to connections already dialed
// and to every future re-dial. Call before the pool serves traffic.
func (p *Pool) SetConnHook(f func(rpc.Conn)) {
	p.connHook = f
	if f == nil {
		return
	}
	for i := range p.slots {
		s := &p.slots[i]
		s.mu.Lock()
		if s.conn != nil {
			f(s.conn)
		}
		s.mu.Unlock()
	}
}

type poolSlot struct {
	mu   sync.Mutex
	conn rpc.Conn
}

// ErrPoolClosed reports a call into a closed pool.
var ErrPoolClosed = errors.New("transport: pool closed")

// NewPool returns a pool of n connections obtained from dial, all dialed
// lazily. n < 1 selects 1.
func NewPool(n int, dial func() (rpc.Conn, error)) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{dial: dial, slots: make([]poolSlot, n)}
}

// DialTCPPool connects a pool of n striped TCP connections to addr. The
// first connection is dialed eagerly so address and reachability errors
// surface immediately; the rest come up on first use. n <= 1 degenerates
// to a single connection with reconnect-on-failure.
func DialTCPPool(addr string, timeout time.Duration, n int) (rpc.Conn, error) {
	p := NewPool(n, func() (rpc.Conn, error) { return DialTCP(addr, timeout) })
	conn, err := p.dial()
	if err != nil {
		return nil, err
	}
	p.slots[0].conn = conn
	return p, nil
}

// Size returns the number of connection slots.
func (p *Pool) Size() int { return len(p.slots) }

// Call implements rpc.Conn, forwarding to the slot selected by the next
// request id.
func (p *Pool) Call(op rpc.Op, payload, bulk []byte, dir rpc.BulkDir) ([]byte, error) {
	return p.CallTrace(op, payload, bulk, dir, rpc.Trace{})
}

// CallTrace implements rpc.TraceCaller, forwarding the trace to the
// slot's connection when it can carry one.
func (p *Pool) CallTrace(op rpc.Op, payload, bulk []byte, dir rpc.BulkDir, tr rpc.Trace) ([]byte, error) {
	if p.closed.Load() {
		return nil, ErrPoolClosed
	}
	s := &p.slots[(p.next.Add(1)-1)%uint64(len(p.slots))]
	var t0 time.Time
	if p.acquireHist != nil {
		t0 = time.Now()
	}
	conn, err := p.acquire(s)
	if p.acquireHist != nil {
		p.acquireHist.ObserveSince(t0)
	}
	if err != nil {
		return nil, err
	}
	resp, err := rpc.CallTrace(conn, op, payload, bulk, dir, tr)
	if err != nil && condemns(err) {
		p.invalidate(s, conn)
	}
	return resp, err
}

// acquire returns the slot's connection, dialing one if the slot is empty
// (first use, or the previous connection was condemned).
func (p *Pool) acquire(s *poolSlot) (rpc.Conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn != nil {
		return s.conn, nil
	}
	if p.closed.Load() {
		return nil, ErrPoolClosed
	}
	conn, err := p.dial()
	if err != nil {
		return nil, fmt.Errorf("transport: pool dial: %w", err)
	}
	if p.connHook != nil {
		p.connHook(conn)
	}
	s.conn = conn
	return conn, nil
}

// condemns reports whether err means the connection itself is unusable.
// Remote handler errors and call timeouts leave the socket healthy.
func condemns(err error) bool {
	var re *rpc.RemoteError
	return !errors.As(err, &re) && !errors.Is(err, ErrTimeout)
}

// invalidate empties the slot if it still holds conn, so the next call
// landing there re-dials.
func (p *Pool) invalidate(s *poolSlot, conn rpc.Conn) {
	s.mu.Lock()
	if s.conn == conn {
		s.conn = nil
	}
	s.mu.Unlock()
	conn.Close()
}

// Close implements rpc.Conn, closing every dialed connection. Subsequent
// calls fail with ErrPoolClosed.
func (p *Pool) Close() error {
	p.closed.Store(true)
	var errs []error
	for i := range p.slots {
		s := &p.slots[i]
		s.mu.Lock()
		if s.conn != nil {
			if err := s.conn.Close(); err != nil {
				errs = append(errs, err)
			}
			s.conn = nil
		}
		s.mu.Unlock()
	}
	return errors.Join(errs...)
}
