package transport

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/rpc"
)

// TestTCPBulkStress hammers one TCP connection with interleaved bulk
// writes and reads of varying sizes from many goroutines and verifies
// every payload survives the multiplexing.
func TestTCPBulkStress(t *testing.T) {
	srv := rpc.NewServer(16)
	// Echo bulk: pull the region, respond with its checksum; for reads,
	// push a deterministic pattern derived from the payload.
	srv.Register(1, func(req []byte, bulk rpc.Bulk) ([]byte, error) {
		buf := make([]byte, bulk.Len())
		if err := bulk.Pull(buf); err != nil {
			return nil, err
		}
		var sum uint64
		for _, b := range buf {
			sum += uint64(b)
		}
		return []byte(fmt.Sprintf("%d", sum)), nil
	})
	srv.Register(2, func(req []byte, bulk rpc.Bulk) ([]byte, error) {
		seed := req[0]
		out := make([]byte, bulk.Len())
		for i := range out {
			out[i] = seed + byte(i)
		}
		return []byte("ok"), bulk.Push(out)
	})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go ServeTCP(l, srv)
	conn, err := DialTCP(l.Addr().String(), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sizes := []int{1, 100, 4096, 70000, 1 << 20}
			for round := 0; round < 8; round++ {
				size := sizes[(g+round)%len(sizes)]
				// Write path.
				payload := bytes.Repeat([]byte{byte(g + 1)}, size)
				resp, err := conn.Call(1, nil, payload, rpc.BulkIn)
				if err != nil {
					t.Errorf("g%d r%d write: %v", g, round, err)
					return
				}
				want := fmt.Sprintf("%d", uint64(size)*uint64(g+1))
				if string(resp) != want {
					t.Errorf("g%d r%d checksum %s, want %s", g, round, resp, want)
					return
				}
				// Read path.
				buf := make([]byte, size)
				seed := byte(g * 3)
				if _, err := conn.Call(2, []byte{seed}, buf, rpc.BulkOut); err != nil {
					t.Errorf("g%d r%d read: %v", g, round, err)
					return
				}
				for i, b := range buf {
					if b != seed+byte(i) {
						t.Errorf("g%d r%d byte %d = %d, want %d", g, round, i, b, seed+byte(i))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if st := srv.Stats(); st.Errors != 0 {
		t.Fatalf("server recorded %d handler errors", st.Errors)
	}
}
