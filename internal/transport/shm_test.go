//go:build unix

package transport

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/rpc"
)

// startShmServer serves srv on a fresh Unix-domain doorbell socket and
// returns its path. The socket lives in its own short-named temp dir —
// t.TempDir can exceed the sockaddr_un path limit on long test names.
func startShmServer(t testing.TB, srv *rpc.Server, segBytes int) string {
	t.Helper()
	dir, err := os.MkdirTemp("", "gkfs-shm-t-")
	if err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(dir, "d.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		os.RemoveAll(dir)
		t.Fatal(err)
	}
	go ServeShm(l, srv, segBytes)
	t.Cleanup(func() {
		l.Close()
		os.RemoveAll(dir)
	})
	return sock
}

// platformConns adds the shared-memory transport to the generic
// cross-transport suite on platforms that have it.
func platformConns(t *testing.T, srv *rpc.Server) map[string]rpc.Conn {
	t.Helper()
	sock := startShmServer(t, srv, 0)
	shmConn, err := DialShm(sock, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shmConn.Close() })
	poolConn, err := DialShmPool(sock, 5*time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { poolConn.Close() })
	return map[string]rpc.Conn{"shm": shmConn, "shm-pool": poolConn}
}

// TestShmConcurrentBulkStress hammers one doorbell connection with mixed
// bulk traffic over a deliberately small segment, so callers constantly
// contend for (and block on) allocator windows. Run under -race this
// exercises every handoff: caller→segment, daemon in-place handler,
// segment→caller, and the allocator's block/wake path.
func TestShmConcurrentBulkStress(t *testing.T) {
	srv := newTestServer()
	sock := startShmServer(t, srv, 1<<20) // 1 MiB: a few large calls fill it
	c, err := DialShm(sock, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const workers = 16
	const iters = 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				n := 1 + rng.Intn(256<<10) // up to 256 KiB per window
				if i%2 == 0 {
					data := make([]byte, n)
					for j := range data {
						data[j] = byte(w + j)
					}
					var sum uint64
					for _, b := range data {
						sum += uint64(b)
					}
					resp, err := c.Call(opWrite, nil, data, rpc.BulkIn)
					if err != nil {
						t.Errorf("worker %d write: %v", w, err)
						return
					}
					if want := fmt.Sprintf("%d:%d", n, sum); string(resp) != want {
						t.Errorf("worker %d write: server saw %q, want %q", w, resp, want)
						return
					}
				} else {
					buf := make([]byte, n)
					resp, err := c.Call(opRead, nil, buf, rpc.BulkOut)
					if err != nil || string(resp) != "ok" {
						t.Errorf("worker %d read: %q, %v", w, resp, err)
						return
					}
					if !bytes.Equal(buf, bytes.Repeat([]byte{0x5A}, n)) {
						t.Errorf("worker %d read: scattered bytes corrupt", w)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestShmBulkExceedsSegment verifies that a transfer that can never fit
// the segment fails fast instead of deadlocking in the allocator.
func TestShmBulkExceedsSegment(t *testing.T) {
	srv := newTestServer()
	sock := startShmServer(t, srv, 64<<10)
	c, err := DialShm(sock, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call(opWrite, nil, make([]byte, 128<<10), rpc.BulkIn)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized bulk: err = %v, want segment-size failure", err)
	}
	// The connection itself is unharmed.
	resp, err := c.Call(opEcho, []byte("still-here"), nil, rpc.BulkNone)
	if err != nil || string(resp) != "echo:still-here" {
		t.Fatalf("post-failure call = %q, %v", resp, err)
	}
}

// TestShmDaemonCrashFailsPendingCalls drives the crash-mid-bulk contract:
// a daemon that dies between accepting requests and responding must fail
// every pending call promptly — the doorbell socket is the liveness
// signal — and doom the connection for later callers.
func TestShmDaemonCrashFailsPendingCalls(t *testing.T) {
	dir, err := os.MkdirTemp("", "gkfs-shm-t-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "d.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// A daemon that completes the handshake, swallows one request frame,
	// then dies mid-conversation.
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		seg, path, err := createShmSegment(1 << 20)
		if err != nil {
			conn.Close()
			return
		}
		defer syscall.Munmap(seg)
		defer os.Remove(path)
		if err := writeShmHello(conn, path, 1<<20); err != nil {
			conn.Close()
			return
		}
		var ack [1]byte
		if _, err := io.ReadFull(conn, ack[:]); err != nil {
			conn.Close()
			return
		}
		os.Remove(path)
		io.ReadFull(conn, make([]byte, 16)) // partial read of the first request
		conn.Close()                        // crash
	}()

	c, err := DialShm(sock, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const callers = 4
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func() {
			_, err := c.Call(opWrite, nil, make([]byte, 4<<10), rpc.BulkIn)
			errs <- err
		}()
	}
	for i := 0; i < callers; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Fatal("call against a crashed daemon succeeded")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("pending call hung after daemon crash")
		}
	}
	// The connection is condemned: later calls fail immediately.
	if _, err := c.Call(opEcho, []byte("x"), nil, rpc.BulkNone); err == nil {
		t.Fatal("condemned shm connection accepted another call")
	}
}

// TestShmTimeoutReclaimsWindowOnLateResponse checks the zombie-window
// protocol: a timed-out call's segment window stays reserved (the daemon
// may still be writing it) until the late response arrives, after which
// the full segment is allocatable again.
func TestShmTimeoutReclaimsWindowOnLateResponse(t *testing.T) {
	srv := newTestServer()
	const seg = 64 << 10
	sock := startShmServer(t, srv, seg)
	c, err := DialShm(sock, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// opSlow sleeps 200 ms, far past the 30 ms call timeout. The call's
	// window spans the whole segment, so nothing else fits until it is
	// reclaimed.
	if _, err := c.Call(opSlow, nil, make([]byte, seg), rpc.BulkIn); !errors.Is(err, ErrTimeout) {
		t.Fatalf("slow call: err = %v, want ErrTimeout", err)
	}
	// While the zombie still owns the segment, a whole-segment call
	// cannot acquire a window: the allocator is bounded by the call
	// timeout and reports ErrTimeout instead of hanging forever.
	if _, err := c.Call(opWrite, nil, make([]byte, seg), rpc.BulkIn); !errors.Is(err, ErrTimeout) {
		t.Fatalf("exhausted-segment call: err = %v, want ErrTimeout", err)
	}
	// Once the late response lands (~200 ms in) the window returns to
	// the allocator and the full segment is usable again.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := c.Call(opWrite, nil, make([]byte, seg), rpc.BulkIn)
		if err == nil {
			if want := fmt.Sprintf("%d:0", seg); string(resp) != want {
				t.Fatalf("post-timeout whole-segment call = %q, want %q", resp, want)
			}
			break
		}
		if !errors.Is(err, ErrTimeout) || time.Now().After(deadline) {
			t.Fatalf("post-timeout whole-segment call: %v", err)
		}
	}
}

// TestSegAllocAcquireTimeout pins the allocator's own timeout contract:
// a waiter on an exhausted segment gets ErrTimeout after the bound
// rather than blocking until some other call releases a window.
func TestSegAllocAcquireTimeout(t *testing.T) {
	a := newSegAlloc(1 << 10)
	off, err := a.acquire(1<<10, time.Second)
	if err != nil || off != 0 {
		t.Fatalf("acquire full segment = %d, %v", off, err)
	}
	start := time.Now()
	if _, err := a.acquire(1, 50*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("exhausted acquire: err = %v, want ErrTimeout", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("exhausted acquire took %v, want ~50ms", d)
	}
	a.release(off, 1<<10)
	if _, err := a.acquire(1, 50*time.Millisecond); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

// TestShmClientCrashMidDispatchKeepsDaemonAlive covers the unmap race:
// the client dies with a request in flight while the daemon handler
// still holds a slice into the mapped segment. serveShmConn must drain
// handlers before munmapping — otherwise the handler's late Push below
// writes unmapped memory, a SIGSEGV that would kill this whole process.
func TestShmClientCrashMidDispatchKeepsDaemonAlive(t *testing.T) {
	const opSlowRead rpc.Op = 99
	srv := newTestServer()
	srv.Register(opSlowRead, func(_ []byte, bulk rpc.Bulk) ([]byte, error) {
		time.Sleep(150 * time.Millisecond) // the client crashes in here
		out := bytes.Repeat([]byte{0xA5}, bulk.Len())
		if err := bulk.Push(out); err != nil {
			return nil, err
		}
		return []byte("ok"), nil
	})
	sock := startShmServer(t, srv, 1<<20)
	c, err := DialShm(sock, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Call(opSlowRead, nil, make([]byte, 64<<10), rpc.BulkOut)
	}()
	time.Sleep(30 * time.Millisecond) // request reaches the daemon; handler is asleep
	c.Close()                         // crash with the dispatch in flight
	<-done
	time.Sleep(300 * time.Millisecond) // handler wakes and pushes into the segment
	// The daemon survived and still serves fresh clients.
	c2, err := DialShm(sock, 5*time.Second)
	if err != nil {
		t.Fatalf("redial after client crash: %v", err)
	}
	defer c2.Close()
	resp, err := c2.Call(opEcho, []byte("alive"), nil, rpc.BulkNone)
	if err != nil || string(resp) != "echo:alive" {
		t.Fatalf("daemon after client crash: %q, %v", resp, err)
	}
}
