package transport

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/rpc"
)

// TestPoolSizesUnderConcurrentBulkTraffic drives pools of 1, 2 and 8
// striped connections with concurrent mixed bulk traffic (interleaved
// writes and reads, sizes from 1 B to 2 MiB) and verifies every payload
// survives the striping + per-connection multiplexing.
func TestPoolSizesUnderConcurrentBulkTraffic(t *testing.T) {
	for _, size := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("conns-%d", size), func(t *testing.T) {
			srv := rpc.NewServer(16)
			srv.Register(1, func(_ []byte, bulk rpc.Bulk) ([]byte, error) {
				buf := make([]byte, bulk.Len())
				if err := bulk.Pull(buf); err != nil {
					return nil, err
				}
				var sum uint64
				for _, b := range buf {
					sum += uint64(b)
				}
				return []byte(fmt.Sprintf("%d", sum)), nil
			})
			srv.Register(2, func(req []byte, bulk rpc.Bulk) ([]byte, error) {
				seed := req[0]
				out := make([]byte, bulk.Len())
				for i := range out {
					out[i] = seed + byte(i)
				}
				return []byte("ok"), bulk.Push(out)
			})

			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			go ServeTCP(l, srv)
			conn, err := DialTCPPool(l.Addr().String(), 30*time.Second, size)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			if p, ok := conn.(*Pool); !ok || p.Size() != size {
				t.Fatalf("DialTCPPool returned %T with size %d", conn, size)
			}

			var wg sync.WaitGroup
			for g := 0; g < 12; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					sizes := []int{1, 100, 4096, 70000, 2 << 20}
					for round := 0; round < 6; round++ {
						n := sizes[(g+round)%len(sizes)]
						payload := bytes.Repeat([]byte{byte(g + 1)}, n)
						resp, err := conn.Call(1, nil, payload, rpc.BulkIn)
						if err != nil {
							t.Errorf("g%d r%d write: %v", g, round, err)
							return
						}
						want := fmt.Sprintf("%d", uint64(n)*uint64(g+1))
						if string(resp) != want {
							t.Errorf("g%d r%d checksum %s, want %s", g, round, resp, want)
							return
						}
						buf := make([]byte, n)
						seed := byte(g * 5)
						if _, err := conn.Call(2, []byte{seed}, buf, rpc.BulkOut); err != nil {
							t.Errorf("g%d r%d read: %v", g, round, err)
							return
						}
						for i, b := range buf {
							if b != seed+byte(i) {
								t.Errorf("g%d r%d byte %d = %d, want %d", g, round, i, b, seed+byte(i))
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			if st := srv.Stats(); st.Errors != 0 {
				t.Fatalf("server recorded %d handler errors", st.Errors)
			}
		})
	}
}

// TestPoolLazyReconnect kills every server-side socket under a pool and
// verifies that subsequent calls re-dial the dead slots and succeed.
func TestPoolLazyReconnect(t *testing.T) {
	srv := newTestServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var mu sync.Mutex
	var accepted []net.Conn
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			accepted = append(accepted, c)
			mu.Unlock()
			go serveConn(c, srv)
		}
	}()

	pool, err := DialTCPPool(l.Addr().String(), 2*time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Touch both slots so both connections exist.
	for i := 0; i < 4; i++ {
		if resp, err := pool.Call(opEcho, []byte("warm"), nil, rpc.BulkNone); err != nil || string(resp) != "echo:warm" {
			t.Fatalf("warmup call %d = %q, %v", i, resp, err)
		}
	}

	// Sever every connection server-side.
	mu.Lock()
	for _, c := range accepted {
		c.Close()
	}
	mu.Unlock()

	// Calls hitting the dead sockets fail once per slot, condemning them;
	// the pool then re-dials lazily and traffic resumes.
	deadline := time.Now().Add(10 * time.Second)
	recovered := 0
	for recovered < 4 {
		if time.Now().After(deadline) {
			t.Fatal("pool did not recover after server-side connection loss")
		}
		resp, err := pool.Call(opEcho, []byte("x"), nil, rpc.BulkNone)
		if err != nil {
			recovered = 0
			continue
		}
		if string(resp) != "echo:x" {
			t.Fatalf("post-reconnect call = %q", resp)
		}
		recovered++
	}
}

// TestPoolClosed verifies calls into a closed pool fail cleanly.
func TestPoolClosed(t *testing.T) {
	srv := newTestServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go ServeTCP(l, srv)
	pool, err := DialTCPPool(l.Addr().String(), time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Call(opEcho, nil, nil, rpc.BulkNone); err == nil {
		t.Fatal("call into closed pool succeeded")
	}
}
