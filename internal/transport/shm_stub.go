//go:build !unix

package transport

import (
	"errors"
	"net"
	"time"

	"repro/internal/rpc"
)

// DefaultShmSegBytes sizes the per-connection segment when ServeShm is
// given no explicit size. Unused on this platform.
const DefaultShmSegBytes = 256 << 20

// ErrShmUnsupported reports that the shared-memory transport needs a
// Unix platform (mmap'd segment files and Unix-domain doorbell sockets).
var ErrShmUnsupported = errors.New("transport: shared-memory transport requires a unix platform")

// ServeShm is unavailable on this platform.
func ServeShm(l net.Listener, srv *rpc.Server, segBytes int) error {
	return ErrShmUnsupported
}

// DialShm is unavailable on this platform.
func DialShm(path string, timeout time.Duration) (rpc.Conn, error) {
	return nil, ErrShmUnsupported
}

// DialShmPool is unavailable on this platform.
func DialShmPool(path string, timeout time.Duration, n int) (rpc.Conn, error) {
	return nil, ErrShmUnsupported
}
