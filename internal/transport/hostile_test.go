package transport

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/rpc"
)

// Regression tests for length-prefix overflow in frame parsing: a payload
// length near 0xFFFFFFFF made plen+4 wrap past the truncation check and
// panicked the daemon (or the client's read loop) on p[:plen]. Corrupt
// frames must close the connection and leave the server serving.

// rawRequest frames a request with arbitrary header fields: the inner
// lengths need not match the bytes actually present.
func rawRequest(dir byte, plen, blen uint32, hasBlen bool, tail int) []byte {
	body := make([]byte, 0, 32+tail)
	body = binary.LittleEndian.AppendUint64(body, 1) // reqID
	body = binary.LittleEndian.AppendUint16(body, 1) // op
	body = append(body, dir)
	body = binary.LittleEndian.AppendUint32(body, plen)
	if hasBlen {
		body = binary.LittleEndian.AppendUint32(body, blen)
	}
	body = append(body, make([]byte, tail)...)
	out := binary.LittleEndian.AppendUint32(nil, uint32(len(body)))
	return append(out, body...)
}

// sendRaw writes frame to addr and reports whether the server closed the
// connection afterwards.
func sendRaw(t *testing.T, addr string, frame []byte) bool {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write(frame); err != nil {
		return true
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, err = c.Read(make([]byte, 1))
	if err == nil {
		return false
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		return false
	}
	return true
}

func TestHostileFramesCloseConnection(t *testing.T) {
	srv := newTestServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go ServeTCP(l, srv)
	addr := l.Addr().String()

	cases := []struct {
		name  string
		frame []byte
	}{
		// plen+4 wraps to 1 under u32 arithmetic; the old check passed and
		// p[:plen] panicked the handler goroutine (taking the daemon down).
		{"payload-len-wrap", rawRequest(byte(rpc.BulkNone), 0xFFFFFFFD, 0, false, 8)},
		// Bulk length beyond the remaining frame on the write path.
		{"bulk-len-overrun", rawRequest(byte(rpc.BulkIn), 0, 0xFFFFFFFF, true, 2)},
		// A BulkOut budget above maxFrame must not be honored (the old
		// code materialized it outright — a 4 GiB allocation per frame).
		{"huge-bulkout-budget", rawRequest(byte(rpc.BulkOut), 0, 0xFFFFFFF0, true, 0)},
		// Frame shorter than the fixed request header.
		{"truncated-header", append(binary.LittleEndian.AppendUint32(nil, 5), make([]byte, 5)...)},
		// Direction byte outside the BulkDir range.
		{"invalid-direction", rawRequest(9, 0, 0, true, 0)},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if !sendRaw(t, addr, tc.frame) {
				t.Fatal("server kept the connection open after a corrupt frame")
			}
			// The daemon survives: a fresh, legitimate connection works.
			c, err := DialTCP(addr, 5*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			resp, err := c.Call(opEcho, []byte("alive"), nil, rpc.BulkNone)
			if err != nil || string(resp) != "echo:alive" {
				t.Fatalf("post-hostile call = %q, %v", resp, err)
			}
		})
	}
}

// TestHostileResponseFailsClientCleanly serves a corrupt response whose
// payload length would wrap; the client must surface a connection error,
// not panic its read loop.
func TestHostileResponseFailsClientCleanly(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		// Read the request frame to learn the request id.
		hdr := make([]byte, 4)
		if _, err := io.ReadFull(c, hdr); err != nil {
			return
		}
		body := make([]byte, binary.LittleEndian.Uint32(hdr))
		if _, err := io.ReadFull(c, body); err != nil {
			return
		}
		reqID := binary.LittleEndian.Uint64(body)
		// Respond with plen = 0xFFFFFFFE: plen+4 wraps to 2.
		resp := make([]byte, 0, 32)
		resp = binary.LittleEndian.AppendUint64(resp, reqID)
		resp = append(resp, 0) // status OK
		resp = binary.LittleEndian.AppendUint32(resp, 0xFFFFFFFE)
		resp = append(resp, make([]byte, 8)...)
		out := binary.LittleEndian.AppendUint32(nil, uint32(len(resp)))
		c.Write(append(out, resp...))
	}()

	c, err := DialTCP(l.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(opEcho, []byte("x"), nil, rpc.BulkNone); err == nil {
		t.Fatal("corrupt response did not surface an error")
	}
	// The connection is condemned, not the process.
	if _, err := c.Call(opEcho, []byte("y"), nil, rpc.BulkNone); err == nil {
		t.Fatal("condemned connection accepted another call")
	}
}

// TestTruncatedMidBulkRequestLeavesServerServing targets the split
// header/bulk reader: a client that dies after the request header but
// mid-bulk leaves the server blocked in the bulk ReadFull. The read must
// fail with the connection — never dispatch a short region — and the
// server must keep serving other connections.
func TestTruncatedMidBulkRequestLeavesServerServing(t *testing.T) {
	srv := newTestServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go ServeTCP(l, srv)

	const blen = 64 << 10
	frame := binary.LittleEndian.AppendUint32(nil, uint32(minRequestLen+4+blen))
	frame = binary.LittleEndian.AppendUint64(frame, 7)               // reqID
	frame = binary.LittleEndian.AppendUint16(frame, uint16(opWrite)) // op
	frame = append(frame, byte(rpc.BulkIn))                          // dir
	frame = binary.LittleEndian.AppendUint32(frame, 0)               // payloadLen
	frame = binary.LittleEndian.AppendUint32(frame, blen)            // bulkLen
	frame = append(frame, make([]byte, blen/2)...)                   // half the bulk, then crash

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// The daemon survives the truncated stream: a fresh connection works.
	c, err := DialTCP(l.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(opEcho, []byte("alive"), nil, rpc.BulkNone)
	if err != nil || string(resp) != "echo:alive" {
		t.Fatalf("post-truncation call = %q, %v", resp, err)
	}
}

// TestTruncatedMidBulkResponseFailsClient is the mirror image: a server
// that advertises bulk bytes in the response header but dies before
// sending them all must fail the waiting call — whose dest buffer the
// read loop was scattering into — instead of hanging or delivering a
// short read as success.
func TestTruncatedMidBulkResponseFailsClient(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const blen = 64 << 10
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		hdr := make([]byte, 4)
		if _, err := io.ReadFull(c, hdr); err != nil {
			return
		}
		body := make([]byte, binary.LittleEndian.Uint32(hdr))
		if _, err := io.ReadFull(c, body); err != nil {
			return
		}
		reqID := binary.LittleEndian.Uint64(body)
		resp := binary.LittleEndian.AppendUint32(nil, uint32(minResponseLen+4+blen))
		resp = binary.LittleEndian.AppendUint64(resp, reqID)
		resp = append(resp, 0)                              // status OK
		resp = binary.LittleEndian.AppendUint32(resp, 0)    // payloadLen
		resp = binary.LittleEndian.AppendUint32(resp, blen) // bulkLen
		resp = append(resp, make([]byte, blen/2)...)        // half the bulk, then crash
		c.Write(resp)
	}()

	c, err := DialTCP(l.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(opRead, nil, make([]byte, blen), rpc.BulkOut); err == nil {
		t.Fatal("truncated-mid-bulk response did not surface an error")
	}
	if _, err := c.Call(opEcho, []byte("y"), nil, rpc.BulkNone); err == nil {
		t.Fatal("condemned connection accepted another call")
	}
}
