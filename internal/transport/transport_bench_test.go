package transport

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/rpc"
)

// Transport-level round-trip benchmarks: the same two ops — a BulkIn
// region consumed in place and a BulkOut window committed in place —
// driven over each wire backend, so the MB/s difference is the
// transport tier alone: no client span logic, no chunk store, handlers
// that cost the same everywhere. BenchmarkShmRoundTrip (unix only) is
// the co-located half of the comparison.

const (
	opBenchSink rpc.Op = 100 + iota // BulkIn: handler takes the wire region in place
	opBenchFill                     // BulkOut: handler commits the whole window
)

func newBenchServer() *rpc.Server {
	s := rpc.NewServer(8)
	s.Register(opBenchSink, func(_ []byte, bulk rpc.Bulk) ([]byte, error) {
		if _, err := bulk.Bytes(); err != nil {
			return nil, err
		}
		return nil, nil
	})
	s.Register(opBenchFill, func(_ []byte, bulk rpc.Bulk) ([]byte, error) {
		if _, err := bulk.Writable(bulk.Len()); err != nil {
			return nil, err
		}
		return nil, bulk.Commit(bulk.Len())
	})
	return s
}

// benchRoundTrip drives both bulk directions at a sub-chunk and a
// multi-megabyte size with GOMAXPROCS concurrent callers per case.
func benchRoundTrip(b *testing.B, c rpc.Conn) {
	cases := []struct {
		name string
		op   rpc.Op
		dir  rpc.BulkDir
	}{{"in", opBenchSink, rpc.BulkIn}, {"out", opBenchFill, rpc.BulkOut}}
	for _, size := range []int{64 << 10, 4 << 20} {
		for _, tc := range cases {
			b.Run(fmt.Sprintf("%s-%dKiB", tc.name, size>>10), func(b *testing.B) {
				b.SetBytes(int64(size))
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					buf := make([]byte, size)
					for pb.Next() {
						if _, err := c.Call(tc.op, nil, buf, tc.dir); err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
}

func BenchmarkTCPRoundTrip(b *testing.B) {
	srv := newBenchServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	go ServeTCP(l, srv)
	c, err := DialTCPPool(l.Addr().String(), 60*time.Second, 4)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	benchRoundTrip(b, c)
}
