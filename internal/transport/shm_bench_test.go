//go:build unix

package transport

import (
	"testing"
	"time"
)

// BenchmarkShmRoundTrip is the co-located half of the transport-level
// comparison (see transport_bench_test.go): identical ops and sizes as
// BenchmarkTCPRoundTrip, but the bulk bytes move through the mapped
// segment and only headers cross the doorbell socket.
func BenchmarkShmRoundTrip(b *testing.B) {
	srv := newBenchServer()
	sock := startShmServer(b, srv, 0)
	c, err := DialShmPool(sock, 60*time.Second, 1)
	if err != nil {
		b.Skipf("shm transport unavailable: %v", err)
	}
	defer c.Close()
	benchRoundTrip(b, c)
}
