//go:build !unix

package transport

import (
	"testing"

	"repro/internal/rpc"
)

// platformConns adds nothing on platforms without the shared-memory
// transport; the generic suite runs over mem and TCP only.
func platformConns(*testing.T, *rpc.Server) map[string]rpc.Conn { return nil }
