//go:build unix

package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"sort"
	"sync"
	"syscall"
	"time"

	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// Shared-memory fast path for co-located clients — the transport tier's
// answer to the paper's node-local IPC case, which the hash distributor
// already makes common (1/N of every client's traffic targets its own
// node). A Unix-domain socket is the doorbell: it carries only small
// header frames (request metadata, response status) plus the one-time
// segment handshake. Bulk bytes never touch the socket — they live in a
// file-backed mmap'd segment both processes map, so a chunk write is one
// copy (caller's buffer → segment, then the daemon pwrites straight from
// the mapping) and a chunk read is one copy (the daemon preads straight
// into the mapping, then segment → caller's buffer). No kernel socket
// copies, no frame joins, no per-byte syscall work.
//
// Handshake (once per accepted connection):
//
//	hello  (daemon→client): [u32 rest][u64 segBytes][segment path]
//	ack    (client→daemon): [u8 0x5A] after mapping succeeds
//
// The daemon creates the segment file (preferring the tmpfs at
// /dev/shm), maps it, and unlinks it as soon as the client acks — the
// segment then lives exactly as long as the two mappings and nothing
// else can attach to it.
//
// Doorbell frames, little-endian like the TCP format:
//
//	request:  [u32 rest][u64 reqID][u16 op][u8 dir]
//	          [u64 bulkOff][u32 bulkLen][u32 payloadLen][payload]
//	response: [u32 rest][u64 reqID][u8 status]
//	          [u32 pushedLen][u32 payloadLen][payload]
//
// Protocol v7 trace extension, exactly as on TCP: a request whose dir
// byte carries dirTraceFlag ends with a [u64 trace-ID][u8 flags]
// trailer after the payload; unsampled requests keep the old shape.
//
// The client owns segment placement: a per-connection first-fit
// allocator reserves [bulkOff, bulkOff+bulkLen) for each call, and the
// daemon validates the window against the segment bounds before touching
// it. The happens-before edge between a caller's segment writes and the
// daemon's reads is the doorbell round trip itself. Crash safety comes
// from the socket: either side dying closes it, which fails every
// pending call cleanly.

const (
	// DefaultShmSegBytes sizes the per-connection segment when ServeShm
	// is given no explicit size. The file is sparse and pages materialize
	// only where bulk traffic actually lands, so the cost of a generous
	// default is virtual address space, not memory.
	DefaultShmSegBytes = 256 << 20

	minShmRequestLen  = 8 + 2 + 1 + 8 + 4 + 4 // id+op+dir+bulkOff+bulkLen+payloadLen
	minShmResponseLen = 8 + 1 + 4 + 4         // id+status+pushedLen+payloadLen

	shmAck = 0x5A
)

// ServeShm accepts co-located clients on l — a Unix-domain socket
// listener — and serves srv until l is closed, one mapped segment of
// segBytes per connection (<= 0 selects DefaultShmSegBytes). It returns
// the first accept error (net.ErrClosed after a clean stop).
func ServeShm(l net.Listener, srv *rpc.Server, segBytes int) error {
	if segBytes <= 0 {
		segBytes = DefaultShmSegBytes
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go serveShmConn(conn, srv, segBytes)
	}
}

// createShmSegment creates, sizes and maps a fresh segment file,
// preferring the tmpfs at /dev/shm so pages never hit a disk.
func createShmSegment(n int) (seg []byte, path string, err error) {
	dir := "/dev/shm"
	if st, serr := os.Stat(dir); serr != nil || !st.IsDir() {
		dir = os.TempDir()
	}
	f, err := os.CreateTemp(dir, "gkfs-shm-*")
	if err != nil {
		return nil, "", err
	}
	path = f.Name()
	if err := f.Truncate(int64(n)); err != nil {
		f.Close()
		os.Remove(path)
		return nil, "", err
	}
	seg, err = syscall.Mmap(int(f.Fd()), 0, n, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	f.Close()
	if err != nil {
		os.Remove(path)
		return nil, "", err
	}
	return seg, path, nil
}

func serveShmConn(conn net.Conn, srv *rpc.Server, segBytes int) {
	defer conn.Close()
	seg, path, err := createShmSegment(segBytes)
	if err != nil {
		return
	}
	defer syscall.Munmap(seg)
	defer os.Remove(path) // no-op once the post-ack unlink below ran
	// Handler goroutines hold slices into seg until their response is
	// written; a client crashing with requests in flight must not unmap
	// the segment out from under them. LIFO defers: wait runs first.
	var handlers sync.WaitGroup
	defer handlers.Wait()
	if err := writeShmHello(conn, path, segBytes); err != nil {
		return
	}
	var ack [1]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil || ack[0] != shmAck {
		return
	}
	os.Remove(path) // the client holds its own mapping; nothing else may attach

	var wmu sync.Mutex // serializes response frames
	wire := srv.Wire()
	br := bufio.NewReaderSize(conn, 32<<10)
	for {
		req, off, blen, err := readShmRequest(br, uint64(segBytes))
		if err != nil {
			return
		}
		wire.FramesIn.Add(1)
		wire.BytesIn.Add(uint64(req.size))
		wire.ShmCalls.Add(1)
		handlers.Add(1)
		go func(req request, off, blen int) {
			defer handlers.Done()
			var region []byte
			if req.dir != rpc.BulkNone {
				region = seg[off : off+blen]
			}
			bulk := &shmServerBulk{dir: req.dir, region: region}
			resp, herr := srv.DispatchTrace(req.op, req.payload, bulkFor(bulk, req.dir), req.tr)
			writeShmResponse(conn, &wmu, wire, req.id, resp, bulk.pushed, herr)
			rpc.PutBuf(req.pbuf)
		}(req, off, blen)
	}
}

// readShmRequest reads one doorbell request. The bulk window is validated
// against the segment bounds without wrappable arithmetic: a hostile
// offset/length pair is a corrupt stream, not an out-of-bounds slice.
//
// Windows are NOT validated against each other: like an RDMA peer that
// registers overlapping memory regions, a client issuing concurrent
// requests over overlapping [off, off+len) windows gets racy reads and
// writes of its own segment bytes. That is accepted behavior — the
// segment is private to the one misbehaving connection, handlers only
// ever dereference memory inside the mapping, and daemon state (chunk
// files, metadata) stays consistent because handlers treat window
// contents as untrusted input; only that client's own data can come out
// scrambled. Tracking in-flight windows server-side would put a lock
// and an interval set on every call for no protection the client cannot
// already get by allocating correctly.
func readShmRequest(br *bufio.Reader, segSize uint64) (request, int, int, error) {
	// Prefix first, fixed header second — a frame too short for the
	// header fails now instead of stalling the loop.
	var pfx [4]byte
	if _, err := io.ReadFull(br, pfx[:]); err != nil {
		return request{}, 0, 0, err
	}
	rest := binary.LittleEndian.Uint32(pfx[:])
	if rest > maxFrame {
		return request{}, 0, 0, errFrameTooBig
	}
	if rest < minShmRequestLen {
		return request{}, 0, 0, rpc.ErrTruncated
	}
	var hdr [minShmRequestLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return request{}, 0, 0, err
	}
	dirByte := hdr[10]
	req := request{
		id:   binary.LittleEndian.Uint64(hdr[0:]),
		op:   rpc.Op(binary.LittleEndian.Uint16(hdr[8:])),
		dir:  rpc.BulkDir(dirByte & dirMask),
		size: 4 + int(rest),
	}
	if req.dir > rpc.BulkOut {
		return request{}, 0, 0, fmt.Errorf("transport: invalid bulk direction %d", req.dir)
	}
	tlen := uint64(0)
	if dirByte&dirTraceFlag != 0 {
		tlen = traceLen
	}
	bulkOff := binary.LittleEndian.Uint64(hdr[11:])
	blen := binary.LittleEndian.Uint32(hdr[19:])
	plen := binary.LittleEndian.Uint32(hdr[23:])
	if uint64(plen)+tlen != uint64(rest-minShmRequestLen) {
		return request{}, 0, 0, rpc.ErrTruncated
	}
	if uint64(blen) > segSize || bulkOff > segSize-uint64(blen) {
		return request{}, 0, 0, fmt.Errorf("transport: shm bulk window [%d,+%d) outside %d-byte segment",
			bulkOff, blen, segSize)
	}
	req.pbuf = rpc.GetBuf(int(plen))
	if _, err := io.ReadFull(br, req.pbuf); err != nil {
		rpc.PutBuf(req.pbuf)
		return request{}, 0, 0, err
	}
	req.payload = req.pbuf
	if tlen != 0 {
		var tb [traceLen]byte
		if _, err := io.ReadFull(br, tb[:]); err != nil {
			rpc.PutBuf(req.pbuf)
			return request{}, 0, 0, err
		}
		req.tr = getTrace(tb[:])
	}
	return req, int(bulkOff), int(blen), nil
}

// shmServerBulk implements rpc.Bulk directly over the segment window the
// client reserved for this call. Bytes and Writable hand the handler the
// client-visible memory itself, so the daemon side of both directions is
// copy-free; Pull and Push remain for handlers that want a staging copy.
type shmServerBulk struct {
	dir    rpc.BulkDir
	region []byte
	pushed int
}

// Pull implements rpc.Bulk.
func (b *shmServerBulk) Pull(p []byte) error {
	if b.dir != rpc.BulkIn {
		return errors.New("transport: pull from non-BulkIn region")
	}
	if len(p) > len(b.region) {
		return fmt.Errorf("transport: bulk pull of %d exceeds exposed %d", len(p), len(b.region))
	}
	copy(p, b.region)
	return nil
}

// Push implements rpc.Bulk.
func (b *shmServerBulk) Push(p []byte) error {
	if b.dir != rpc.BulkOut {
		return errors.New("transport: push into non-BulkOut region")
	}
	if len(p) > len(b.region) {
		return fmt.Errorf("transport: bulk push of %d exceeds exposed %d", len(p), len(b.region))
	}
	b.pushed = copy(b.region, p)
	return nil
}

// Len implements rpc.Bulk.
func (b *shmServerBulk) Len() int { return len(b.region) }

// Bytes implements rpc.Bulk: the BulkIn bytes are read in place from the
// mapping.
func (b *shmServerBulk) Bytes() ([]byte, error) {
	if b.dir != rpc.BulkIn {
		return nil, errors.New("transport: bytes of non-BulkIn region")
	}
	return b.region, nil
}

// Writable implements rpc.Bulk: the handler writes straight into the
// client-visible mapping.
func (b *shmServerBulk) Writable(n int) ([]byte, error) {
	if b.dir != rpc.BulkOut {
		return nil, errors.New("transport: writable on non-BulkOut region")
	}
	if n > len(b.region) {
		return nil, fmt.Errorf("transport: writable region of %d exceeds exposed %d", n, len(b.region))
	}
	return b.region[:n], nil
}

// Commit implements rpc.Bulk.
func (b *shmServerBulk) Commit(n int) error {
	if b.dir != rpc.BulkOut {
		return errors.New("transport: commit on non-BulkOut region")
	}
	if n > len(b.region) {
		return fmt.Errorf("transport: commit of %d exceeds region %d", n, len(b.region))
	}
	b.pushed = n
	return nil
}

func writeShmHello(conn net.Conn, path string, segBytes int) error {
	rest := 8 + len(path)
	buf := make([]byte, 0, 4+rest)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rest))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(segBytes))
	buf = append(buf, path...)
	_, err := conn.Write(buf)
	return err
}

func readShmHello(conn net.Conn) (segPath string, segBytes int, err error) {
	var lb [4]byte
	if _, err := io.ReadFull(conn, lb[:]); err != nil {
		return "", 0, err
	}
	rest := binary.LittleEndian.Uint32(lb[:])
	if rest < 8 || rest > 4096 {
		return "", 0, fmt.Errorf("transport: implausible shm hello length %d", rest)
	}
	buf := make([]byte, rest) //gkfs:bounded
	if _, err := io.ReadFull(conn, buf); err != nil {
		return "", 0, err
	}
	size := binary.LittleEndian.Uint64(buf)
	// The int conversion below must not truncate: on 32-bit unix
	// platforms int is 32 bits, so a size that only fits in int64 would
	// wrap or go negative and the client would mmap against a bogus
	// length instead of rejecting the hello.
	if size == 0 || size > 1<<40 || size > uint64(math.MaxInt) {
		return "", 0, fmt.Errorf("transport: implausible shm segment size %d", size)
	}
	return string(buf[8:]), int(size), nil
}

func writeShmResponse(conn net.Conn, wmu *sync.Mutex, wire *rpc.WireCounters, id uint64, payload []byte, pushed int, herr error) {
	status := byte(0)
	if herr != nil {
		status = 1
		payload = []byte(herr.Error())
		pushed = 0
	}
	rest := minShmResponseLen + len(payload)
	if rest > maxFrame {
		status = 1
		payload = []byte(errFrameTooBig.Error())
		pushed = 0
		rest = minShmResponseLen + len(payload)
	}
	out := rpc.GetBuf(4 + rest)[:0]
	out = binary.LittleEndian.AppendUint32(out, uint32(rest))
	out = binary.LittleEndian.AppendUint64(out, id)
	out = append(out, status)
	out = binary.LittleEndian.AppendUint32(out, uint32(pushed))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)

	wmu.Lock()
	// A write error tears down the connection via the read side.
	_, _ = conn.Write(out)
	wmu.Unlock()
	wire.FramesOut.Add(1)
	wire.BytesOut.Add(uint64(4 + rest))
	rpc.PutBuf(out)
}

// DialShm connects to a co-located daemon's shared-memory doorbell at
// path (a Unix-domain socket) and maps the segment it offers. timeout
// bounds each call's wait for a response; zero means no limit.
func DialShm(path string, timeout time.Duration) (rpc.Conn, error) {
	conn, err := net.Dial("unix", path)
	if err != nil {
		return nil, err
	}
	segPath, segBytes, err := readShmHello(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: shm handshake: %w", err)
	}
	f, err := os.OpenFile(segPath, os.O_RDWR, 0)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: shm segment: %w", err)
	}
	seg, err := syscall.Mmap(int(f.Fd()), 0, segBytes, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	f.Close()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: shm mmap: %w", err)
	}
	if _, err := conn.Write([]byte{shmAck}); err != nil {
		syscall.Munmap(seg)
		conn.Close()
		return nil, err
	}
	sc := &shmConn{
		conn:    conn,
		seg:     seg,
		timeout: timeout,
		alloc:   newSegAlloc(len(seg)),
		pending: make(map[uint64]*shmPending),
		zombies: make(map[uint64]segSpan),
	}
	go sc.readLoop()
	return sc, nil
}

// DialShmPool wraps DialShm connections in a pool, giving the
// shared-memory path the same lazy reconnect-on-failure behaviour as
// DialTCPPool. The doorbell carries only headers, so a single connection
// already serves concurrent callers; extra slots mean extra segments.
func DialShmPool(path string, timeout time.Duration, n int) (rpc.Conn, error) {
	p := NewPool(n, func() (rpc.Conn, error) { return DialShm(path, timeout) })
	conn, err := p.dial()
	if err != nil {
		return nil, err
	}
	p.slots[0].conn = conn
	return p, nil
}

type shmConn struct {
	conn    net.Conn
	seg     []byte
	timeout time.Duration
	alloc   *segAlloc

	// segWaitHist, when set, times segment-window acquisition — how
	// long bulk calls queue for segment space. Install before traffic
	// (SetSegWaitHist).
	segWaitHist *telemetry.Histogram

	wmu sync.Mutex // serializes request frames

	mu      sync.Mutex
	pending map[uint64]*shmPending
	zombies map[uint64]segSpan // timed-out calls' still-reserved windows
	nextID  uint64
	dead    error
}

// shmPending is one in-flight doorbell call and the segment window it
// reserved. The window stays reserved until the call's response arrives
// (or the connection dies): a timed-out caller cannot reclaim it early,
// because the daemon may still be writing into it.
type shmPending struct {
	ch     chan shmResult
	off, n int
}

type shmResult struct {
	payload []byte
	pushed  int
	err     error
}

type segSpan struct{ off, n int }

// SetSegWaitHist installs the histogram timing segment-window
// acquisition. Call before the connection serves traffic; nil leaves
// timing disabled.
func (c *shmConn) SetSegWaitHist(h *telemetry.Histogram) { c.segWaitHist = h }

// Call implements rpc.Conn.
func (c *shmConn) Call(op rpc.Op, payload, bulk []byte, dir rpc.BulkDir) ([]byte, error) {
	return c.CallTrace(op, payload, bulk, dir, rpc.Trace{})
}

// CallTrace implements rpc.TraceCaller: the doorbell frame carries tr
// in the trailing trace extension when sampled.
func (c *shmConn) CallTrace(op rpc.Op, payload, bulk []byte, dir rpc.BulkDir, tr rpc.Trace) ([]byte, error) {
	if bulk == nil {
		dir = rpc.BulkNone
	}
	var off, n int
	if dir != rpc.BulkNone {
		n = len(bulk)
		var err error
		var t0 time.Time
		if c.segWaitHist != nil {
			t0 = time.Now()
		}
		off, err = c.alloc.acquire(n, c.timeout)
		if c.segWaitHist != nil {
			c.segWaitHist.ObserveSince(t0)
		}
		if err != nil {
			return nil, err
		}
		if dir == rpc.BulkIn {
			copy(c.seg[off:off+n], bulk)
		}
	}
	pc := &shmPending{ch: make(chan shmResult, 1), off: off, n: n}
	c.mu.Lock()
	if c.dead != nil {
		err := c.dead
		c.mu.Unlock()
		c.alloc.release(off, n)
		return nil, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = pc
	c.mu.Unlock()

	hdr := buildShmRequest(id, op, dir, payload, off, n, tr)
	c.wmu.Lock()
	_, err := c.conn.Write(hdr)
	c.wmu.Unlock()
	rpc.PutBuf(hdr)
	if err != nil {
		// A doorbell write error dooms the stream; the read loop will
		// fail shortly and flush whatever this call left behind.
		if c.abandon(id) {
			return nil, err
		}
		res := <-pc.ch
		c.settle(pc, dir, bulk, res)
		return nil, err
	}

	var timeoutCh <-chan time.Time
	var timer *time.Timer
	if c.timeout > 0 {
		timer = acquireTimer(c.timeout)
		timeoutCh = timer.C
	}
	select {
	case res := <-pc.ch:
		if timer != nil {
			releaseTimer(timer)
		}
		return c.settle(pc, dir, bulk, res)
	case <-timeoutCh:
		if c.abandon(id) {
			releaseTimer(timer)
			return nil, fmt.Errorf("%w: call %d op %d after %v", ErrTimeout, id, op, c.timeout)
		}
		// The read loop claimed the call first; its delivery is imminent
		// and the segment window is still in use until it lands.
		res := <-pc.ch
		releaseTimer(timer)
		return c.settle(pc, dir, bulk, res)
	}
}

// settle completes a delivered call: BulkOut bytes are copied out of the
// segment window into the caller's buffer, and the window is released.
func (c *shmConn) settle(pc *shmPending, dir rpc.BulkDir, bulk []byte, res shmResult) ([]byte, error) {
	if res.err == nil && dir == rpc.BulkOut && res.pushed > 0 {
		copy(bulk[:res.pushed], c.seg[pc.off:pc.off+res.pushed])
	}
	c.alloc.release(pc.off, pc.n)
	if res.err != nil {
		return nil, res.err
	}
	return res.payload, nil
}

// abandon removes the call from the pending table, parking its segment
// window with the zombies (the daemon may still be writing it; the late
// response or connection death releases it). It returns false when the
// read loop already claimed the id — the caller must then wait on the
// call's channel.
func (c *shmConn) abandon(id uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	pc, ok := c.pending[id]
	if !ok {
		return false
	}
	delete(c.pending, id)
	if pc.n > 0 {
		c.zombies[id] = segSpan{pc.off, pc.n}
	}
	return true
}

// Close implements rpc.Conn. The segment mapping is deliberately left in
// place: concurrent callers may still be copying out of their windows,
// and the unlinked file's pages vanish with the process anyway.
func (c *shmConn) Close() error { return c.conn.Close() }

func (c *shmConn) readLoop() {
	br := bufio.NewReaderSize(c.conn, 32<<10)
	for {
		var pfx [4]byte
		if _, err := io.ReadFull(br, pfx[:]); err != nil {
			c.fail(err)
			return
		}
		rest := binary.LittleEndian.Uint32(pfx[:])
		if rest > maxFrame {
			c.fail(errFrameTooBig)
			return
		}
		if rest < minShmResponseLen {
			c.fail(rpc.ErrTruncated)
			return
		}
		var hdr [minShmResponseLen]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			c.fail(err)
			return
		}
		id := binary.LittleEndian.Uint64(hdr[0:])
		status := hdr[8]
		pushed := binary.LittleEndian.Uint32(hdr[9:])
		plen := binary.LittleEndian.Uint32(hdr[13:])
		if uint64(plen) != uint64(rest-minShmResponseLen) {
			c.fail(rpc.ErrTruncated)
			return
		}
		pbuf := rpc.GetBuf(int(plen))
		if _, err := io.ReadFull(br, pbuf); err != nil {
			rpc.PutBuf(pbuf)
			c.fail(err)
			return
		}

		c.mu.Lock()
		pc, ok := c.pending[id]
		delete(c.pending, id)
		var z segSpan
		var zok bool
		if !ok {
			z, zok = c.zombies[id]
			delete(c.zombies, id)
		}
		c.mu.Unlock()
		if !ok {
			// A timed-out call's late response: its window is finally
			// quiescent and returns to the allocator.
			if zok {
				c.alloc.release(z.off, z.n)
			}
			rpc.PutBuf(pbuf)
			continue
		}
		if status != 0 {
			pc.ch <- shmResult{err: &rpc.RemoteError{Msg: string(pbuf)}}
			rpc.PutBuf(pbuf)
			continue
		}
		if int64(pushed) > int64(pc.n) {
			err := fmt.Errorf("transport: shm response pushed %d exceeds the %d-byte window", pushed, pc.n)
			rpc.PutBuf(pbuf)
			pc.ch <- shmResult{err: err}
			c.fail(err)
			return
		}
		pc.ch <- shmResult{payload: append([]byte(nil), pbuf...), pushed: int(pushed)}
		rpc.PutBuf(pbuf)
	}
}

// fail marks the connection dead, delivers the failure to every pending
// call (each releases its own window on delivery), frees the zombie
// windows, and poisons the allocator so blocked acquirers error out.
func (c *shmConn) fail(err error) {
	c.mu.Lock()
	if c.dead == nil {
		c.dead = fmt.Errorf("transport: connection failed: %w", err)
	}
	dead := c.dead
	pend := c.pending
	c.pending = make(map[uint64]*shmPending)
	zom := c.zombies
	c.zombies = make(map[uint64]segSpan)
	c.mu.Unlock()
	for _, pc := range pend {
		pc.ch <- shmResult{err: dead}
	}
	for _, z := range zom {
		c.alloc.release(z.off, z.n)
	}
	c.alloc.poison(dead)
}

// buildShmRequest assembles one doorbell request header in a pooled
// buffer; the caller releases it with rpc.PutBuf after writing it out.
// A sampled trace appends the traceLen trailer after the payload and
// sets dirTraceFlag.
func buildShmRequest(id uint64, op rpc.Op, dir rpc.BulkDir, payload []byte, off, n int, tr rpc.Trace) []byte {
	dirByte := byte(dir)
	tlen := 0
	if tr.Sampled() {
		dirByte |= dirTraceFlag
		tlen = traceLen
	}
	rest := minShmRequestLen + len(payload) + tlen
	out := rpc.GetBuf(4 + rest)[:0]
	out = binary.LittleEndian.AppendUint32(out, uint32(rest))
	out = binary.LittleEndian.AppendUint64(out, id)
	out = binary.LittleEndian.AppendUint16(out, uint16(op))
	out = append(out, dirByte)
	out = binary.LittleEndian.AppendUint64(out, uint64(off))
	out = binary.LittleEndian.AppendUint32(out, uint32(n))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	if tlen != 0 {
		var tb [traceLen]byte
		putTrace(&tb, tr)
		out = append(out, tb[:]...)
	}
	return out
}

// segAlloc hands out byte windows of the mapped segment to concurrent
// calls: first-fit over an offset-sorted, coalesced free list, blocking
// while the segment is momentarily exhausted. Windows live for one call,
// so fragmentation stays negligible.
type segAlloc struct {
	mu   sync.Mutex
	cond *sync.Cond
	free []segSpan // sorted by off, adjacent spans coalesced
	size int
	dead error
}

func newSegAlloc(size int) *segAlloc {
	a := &segAlloc{free: []segSpan{{0, size}}, size: size}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// acquire reserves an n-byte window, blocking until one frees up. It
// fails fast when n can never fit or the connection died, and gives up
// with ErrTimeout after timeout (zero means wait without limit) — a
// stalled daemon parks windows as zombies, and without a bound here the
// exhausted segment would hang every later bulk call inside acquire
// instead of letting it report the timeout.
func (a *segAlloc) acquire(n int, timeout time.Duration) (int, error) {
	if n == 0 {
		return 0, nil
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		// The broadcast takes the lock so the fire cannot slip between a
		// waiter's deadline check and its cond.Wait and be lost.
		t := time.AfterFunc(timeout, func() {
			a.mu.Lock()
			//lint:ignore SA2001 empty critical section orders the broadcast after any in-progress deadline check
			a.mu.Unlock()
			a.cond.Broadcast()
		})
		defer t.Stop()
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for {
		if a.dead != nil {
			return 0, a.dead
		}
		if n > a.size {
			return 0, fmt.Errorf("transport: bulk of %d bytes exceeds the %d-byte shm segment", n, a.size)
		}
		for i := range a.free {
			if a.free[i].n >= n {
				off := a.free[i].off
				a.free[i].off += n
				a.free[i].n -= n
				if a.free[i].n == 0 {
					a.free = append(a.free[:i], a.free[i+1:]...)
				}
				return off, nil
			}
		}
		if timeout > 0 && !time.Now().Before(deadline) {
			return 0, fmt.Errorf("%w: waited %v for a %d-byte shm window", ErrTimeout, timeout, n)
		}
		a.cond.Wait()
	}
}

// release returns a window and wakes blocked acquirers.
func (a *segAlloc) release(off, n int) {
	if n == 0 {
		return
	}
	a.mu.Lock()
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].off >= off })
	a.free = append(a.free, segSpan{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = segSpan{off, n}
	if i+1 < len(a.free) && a.free[i].off+a.free[i].n == a.free[i+1].off {
		a.free[i].n += a.free[i+1].n
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].off+a.free[i-1].n == a.free[i].off {
		a.free[i-1].n += a.free[i].n
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
	a.mu.Unlock()
	a.cond.Broadcast()
}

// poison fails all current and future acquirers.
func (a *segAlloc) poison(err error) {
	a.mu.Lock()
	a.dead = err
	a.mu.Unlock()
	a.cond.Broadcast()
}
