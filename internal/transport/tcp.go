package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/rpc"
)

// TCP wire format. Requests and responses are length-prefixed frames
// multiplexed over one connection by request id.
//
//	request:  [u32 rest-len][u64 reqID][u16 op][u8 dir]
//	          [u32 payloadLen][payload][u32 bulkLen][bulk]
//	response: [u32 rest-len][u64 reqID][u8 status]
//	          [u32 payloadLen][payload][u32 bulkLen][bulk]
//
// dir is the rpc.BulkDir; bulk bytes travel client→server only for BulkIn
// and server→client only for BulkOut. status 0 is success; status 1
// carries a handler error message in the payload.
//
// Protocol v7 trace extension: a request whose dir byte has the
// dirTraceFlag bit set carries a [u64 trace-ID][u8 flags] trailer as the
// frame's last traceLen bytes (after the bulk bytes for BulkIn). The bit
// and trailer are absent on unsampled calls, so old-shape frames keep
// decoding — the PR 3 ReadWantSize discipline applied to framing.
//
// Both sides read a frame in two steps — fixed header first, body next —
// and never join header and bulk on send: the sender hands the kernel a
// header/bulk iovec pair (net.Buffers, writev) and the receiver
// demultiplexes the request id from the header *before* the bulk bytes
// arrive, then reads them straight into their final destination (the
// caller's buffer on the client, an exactly-sized pooled region on the
// daemon). Bulk bytes therefore cross user space at most once per
// direction; there is no joined frame to copy out of.
//
// Every length field is validated without arithmetic that can wrap: a
// frame whose inner lengths disagree with its outer length closes the
// connection — the stream position is unknowable after a corrupt prefix,
// so resynchronizing is impossible and dangerous.

// maxFrame guards against corrupt length prefixes (64 MiB transfer + slack).
const maxFrame = 128 << 20

var errFrameTooBig = errors.New("transport: frame exceeds limit")

// ErrTimeout reports a call that outlived the dial-configured wait. The
// connection itself remains usable (the late response is drained and
// discarded).
var ErrTimeout = errors.New("transport: call timed out")

const minRequestLen = 8 + 2 + 1 + 4 // reqID + op + dir + payloadLen
const minResponseLen = 8 + 1 + 4    // reqID + status + payloadLen

// dirTraceFlag marks a request frame carrying the trace trailer. The
// true bulk direction occupies the low bits (dir & dirMask).
const (
	dirTraceFlag = 0x80
	dirMask      = 0x7F
)

// traceLen is the trace trailer size: u64 trace-ID + u8 flags.
const traceLen = 8 + 1

// putTrace encodes tr into a trailer.
func putTrace(b *[traceLen]byte, tr rpc.Trace) {
	binary.LittleEndian.PutUint64(b[:8], tr.ID)
	b[8] = tr.Flags
}

// getTrace decodes a trailer.
func getTrace(b []byte) rpc.Trace {
	return rpc.Trace{ID: binary.LittleEndian.Uint64(b[:8]), Flags: b[8]}
}

// readBufSize sizes the per-connection bufio.Reader. Headers and small
// payloads coalesce into one kernel read; multi-megabyte bulk regions
// bypass the buffer entirely (io.ReadFull into the destination).
const readBufSize = 64 << 10

// timerPool recycles call timers. A per-RPC time.NewTimer is measurable
// garbage at millions of small metadata calls; pooled timers make the
// timeout path allocation-free.
var timerPool sync.Pool

// acquireTimer returns a running timer for d. Release with releaseTimer.
func acquireTimer(d time.Duration) *time.Timer {
	if v := timerPool.Get(); v != nil {
		t := v.(*time.Timer)
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

// releaseTimer stops t, drains a fire nobody consumed, and pools it. The
// caller must be the timer's only user.
func releaseTimer(t *time.Timer) {
	if !t.Stop() {
		// Already fired: the tick is either consumed (timeout path) or
		// still buffered; drain non-blockingly so Reset starts clean.
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

// ServeTCP accepts connections on l and serves srv until l is closed.
// It returns the first accept error (net.ErrClosed after a clean stop).
func ServeTCP(l net.Listener, srv *rpc.Server) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go serveConn(conn, srv)
	}
}

// request is one decoded request. pbuf and bulkIn are pooled and owned by
// whoever the reader hands the request to.
type request struct {
	id      uint64
	op      rpc.Op
	dir     rpc.BulkDir
	tr      rpc.Trace // zero when the frame carried no trace trailer
	pbuf    []byte    // pooled backing of payload (plus the bulk-length word)
	payload []byte
	bulkIn  []byte // pooled, exactly-sized BulkIn region (nil otherwise)
	outLen  int
	size    int // wire bytes consumed, length prefix included
}

func serveConn(conn net.Conn, srv *rpc.Server) {
	defer conn.Close()
	var wmu sync.Mutex // serializes response frames
	wire := srv.Wire()
	br := bufio.NewReaderSize(conn, readBufSize)
	for {
		req, err := readRequest(br)
		if err != nil {
			// Clean EOF, a dead peer, or a corrupt/hostile frame: in every
			// case the stream is unrecoverable — tear the connection down
			// instead of guessing at the next frame boundary.
			return
		}
		wire.FramesIn.Add(1)
		wire.BytesIn.Add(uint64(req.size))
		go func(req request) {
			bulk := &tcpServerBulk{dir: req.dir, in: req.bulkIn, outLen: req.outLen}
			resp, herr := srv.DispatchTrace(req.op, req.payload, bulkFor(bulk, req.dir), req.tr)
			writeResponse(conn, &wmu, wire, req.id, resp, bulk.committed(), herr)
			if bulk.out != nil {
				rpc.PutBuf(bulk.out)
			}
			rpc.PutBuf(req.pbuf)
			if req.bulkIn != nil {
				rpc.PutBuf(req.bulkIn)
			}
		}(req)
	}
}

// readRequest reads one request off br: fixed header, then payload, then
// — for BulkIn — the bulk bytes into their own exactly-sized pooled
// region. The inner lengths must account for the outer length exactly;
// any disagreement is a corrupt stream.
func readRequest(br *bufio.Reader) (request, error) {
	// The length prefix is validated before any further read blocks: a
	// frame too short to hold the fixed header must close the connection
	// now, not stall waiting for header bytes that will never come.
	var pfx [4]byte
	if _, err := io.ReadFull(br, pfx[:]); err != nil {
		return request{}, err
	}
	rest := binary.LittleEndian.Uint32(pfx[:])
	if rest > maxFrame {
		return request{}, errFrameTooBig
	}
	if rest < minRequestLen {
		return request{}, rpc.ErrTruncated
	}
	var hdr [minRequestLen]byte // id + op + dir + payloadLen
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return request{}, err
	}
	dirByte := hdr[10]
	req := request{
		id:   binary.LittleEndian.Uint64(hdr[0:]),
		op:   rpc.Op(binary.LittleEndian.Uint16(hdr[8:])),
		dir:  rpc.BulkDir(dirByte & dirMask),
		size: 4 + int(rest),
	}
	if req.dir > rpc.BulkOut {
		return request{}, fmt.Errorf("transport: invalid bulk direction %d", req.dir)
	}
	// The trace trailer, when flagged, occupies the frame's last
	// traceLen bytes and must be accounted for by the outer length
	// exactly like payload and bulk.
	tlen := uint64(0)
	if dirByte&dirTraceFlag != 0 {
		tlen = traceLen
	}
	plen := binary.LittleEndian.Uint32(hdr[11:])
	rem := uint64(rest - minRequestLen)
	if uint64(plen)+4+tlen > rem {
		return request{}, rpc.ErrTruncated
	}
	req.pbuf = rpc.GetBuf(int(plen) + 4)
	if _, err := io.ReadFull(br, req.pbuf); err != nil {
		rpc.PutBuf(req.pbuf)
		return request{}, err
	}
	req.payload = req.pbuf[:plen]
	blen := binary.LittleEndian.Uint32(req.pbuf[plen:])
	after := rem - uint64(plen) - 4 // wire bytes following the bulk-length word
	switch req.dir {
	case rpc.BulkIn:
		if uint64(blen)+tlen != after {
			rpc.PutBuf(req.pbuf)
			return request{}, rpc.ErrTruncated
		}
		req.bulkIn = rpc.GetBuf(int(blen))
		if _, err := io.ReadFull(br, req.bulkIn); err != nil {
			rpc.PutBuf(req.bulkIn)
			rpc.PutBuf(req.pbuf)
			return request{}, err
		}
	default:
		if after != tlen {
			rpc.PutBuf(req.pbuf)
			return request{}, rpc.ErrTruncated
		}
		if req.dir == rpc.BulkOut {
			// The advertised region is size-only — never materialized, so
			// a hostile budget cannot force a giant allocation; it is
			// still bounded by maxFrame because the response must carry
			// it back.
			if blen > maxFrame {
				rpc.PutBuf(req.pbuf)
				return request{}, errFrameTooBig
			}
			req.outLen = int(blen)
		}
	}
	if tlen != 0 {
		var tb [traceLen]byte
		if _, err := io.ReadFull(br, tb[:]); err != nil {
			if req.bulkIn != nil {
				rpc.PutBuf(req.bulkIn)
			}
			rpc.PutBuf(req.pbuf)
			return request{}, err
		}
		req.tr = getTrace(tb[:])
	}
	return req, nil
}

// bulkFor hides the bulk object entirely when no buffer was exposed, so
// handlers can test for nil.
func bulkFor(b rpc.Bulk, dir rpc.BulkDir) rpc.Bulk {
	if dir == rpc.BulkNone {
		return nil
	}
	return b
}

// tcpServerBulk implements rpc.Bulk over the wire regions of one request:
// `in` is the pooled region the BulkIn bytes were read into (Bytes hands
// it to the handler without copying), `out` is the pooled region a
// BulkOut handler fills (Writable) or copies into (Push) — writeResponse
// sends it as the second element of the response iovec, so the bytes are
// never re-joined into a frame.
type tcpServerBulk struct {
	dir    rpc.BulkDir
	in     []byte
	out    []byte // allocated at the full outLen budget on first use
	outN   int    // committed bytes; what travels back
	outLen int
}

// Pull implements rpc.Bulk.
func (b *tcpServerBulk) Pull(p []byte) error {
	if b.dir != rpc.BulkIn {
		return errors.New("transport: pull from non-BulkIn region")
	}
	if len(p) > len(b.in) {
		return fmt.Errorf("transport: bulk pull of %d exceeds exposed %d", len(p), len(b.in))
	}
	copy(p, b.in)
	return nil
}

// Push implements rpc.Bulk. The staging buffer is reserved at the full
// advertised budget once: repeated pushes previously appended past the
// first push's capacity, growing the slice outside its pool class so a
// later PutBuf recycled a buffer no GetBuf class owns.
func (b *tcpServerBulk) Push(p []byte) error {
	if b.dir != rpc.BulkOut {
		return errors.New("transport: push into non-BulkOut region")
	}
	if len(p) > b.outLen {
		return fmt.Errorf("transport: bulk push of %d exceeds exposed %d", len(p), b.outLen)
	}
	if b.out == nil {
		b.out = rpc.GetBuf(b.outLen)
	}
	b.outN = copy(b.out, p)
	return nil
}

// Len implements rpc.Bulk.
func (b *tcpServerBulk) Len() int {
	if b.dir == rpc.BulkIn {
		return len(b.in)
	}
	return b.outLen
}

// Bytes implements rpc.Bulk: the handler reads the wire region directly.
func (b *tcpServerBulk) Bytes() ([]byte, error) {
	if b.dir != rpc.BulkIn {
		return nil, errors.New("transport: bytes of non-BulkIn region")
	}
	return b.in, nil
}

// Writable implements rpc.Bulk: the handler fills the outgoing region in
// place and the response writev sends it as-is.
func (b *tcpServerBulk) Writable(n int) ([]byte, error) {
	if b.dir != rpc.BulkOut {
		return nil, errors.New("transport: writable on non-BulkOut region")
	}
	if n > b.outLen {
		return nil, fmt.Errorf("transport: writable region of %d exceeds exposed %d", n, b.outLen)
	}
	if b.out == nil {
		b.out = rpc.GetBuf(b.outLen)
	}
	return b.out[:n], nil
}

// Commit implements rpc.Bulk.
func (b *tcpServerBulk) Commit(n int) error {
	if b.dir != rpc.BulkOut || b.out == nil {
		return errors.New("transport: commit without a writable region")
	}
	if n > len(b.out) {
		return fmt.Errorf("transport: commit of %d exceeds region %d", n, len(b.out))
	}
	b.outN = n
	return nil
}

// committed returns the outgoing bulk bytes, nil when there are none.
func (b *tcpServerBulk) committed() []byte {
	if b.out == nil {
		return nil
	}
	return b.out[:b.outN]
}

// DialTCP connects to a server at addr. timeout bounds each call's wait
// for a response; zero means no limit.
func DialTCP(addr string, timeout time.Duration) (rpc.Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	tc := &tcpConn{
		conn:    c,
		timeout: timeout,
		pending: make(map[uint64]*pendingCall),
	}
	go tc.readLoop()
	return tc, nil
}

type tcpConn struct {
	conn    net.Conn
	timeout time.Duration

	wmu sync.Mutex // serializes request frames

	mu      sync.Mutex
	pending map[uint64]*pendingCall
	nextID  uint64
	dead    error
}

// pendingCall is one in-flight request. dest, for BulkOut calls, is the
// caller's buffer: the read loop claims the call by id as soon as the
// response header arrives and reads the bulk bytes straight into dest —
// the scatter half of the zero-copy wire path. The claim protocol (see
// abandon) guarantees dest is never written after Call returns.
type pendingCall struct {
	ch   chan tcpResult
	dest []byte
}

type tcpResult struct {
	payload []byte
	err     error
}

// Call implements rpc.Conn.
func (c *tcpConn) Call(op rpc.Op, payload, bulk []byte, dir rpc.BulkDir) ([]byte, error) {
	return c.CallTrace(op, payload, bulk, dir, rpc.Trace{})
}

// CallTrace implements rpc.TraceCaller: the frame carries tr in the
// trailing trace extension when sampled.
func (c *tcpConn) CallTrace(op rpc.Op, payload, bulk []byte, dir rpc.BulkDir, tr rpc.Trace) ([]byte, error) {
	if bulk == nil {
		dir = rpc.BulkNone
	}
	pc := &pendingCall{ch: make(chan tcpResult, 1)}
	if dir == rpc.BulkOut {
		pc.dest = bulk
	}
	c.mu.Lock()
	if c.dead != nil {
		err := c.dead
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = pc
	c.mu.Unlock()

	// Gather on TX: the header (with payload and bulk length) goes out as
	// one pooled buffer, the bulk bytes straight from the caller's buffer
	// as the second iovec — they are never copied into a frame. A sampled
	// trace rides as the frame's trailing bytes: inline in the header
	// buffer normally, as a third iovec when bulk bytes separate it from
	// the header.
	hdr := buildRequestHeader(id, op, dir, payload, lenOf(bulk, dir), tr)
	c.wmu.Lock()
	var err error
	if dir == rpc.BulkIn && len(bulk) > 0 {
		if tr.Sampled() {
			var tb [traceLen]byte
			putTrace(&tb, tr)
			bufs := net.Buffers{hdr, bulk, tb[:]}
			_, err = bufs.WriteTo(c.conn)
		} else {
			bufs := net.Buffers{hdr, bulk}
			_, err = bufs.WriteTo(c.conn)
		}
	} else {
		_, err = c.conn.Write(hdr)
	}
	c.wmu.Unlock()
	rpc.PutBuf(hdr)
	if err != nil {
		if !c.abandon(id) {
			// The read loop claimed the call between our failed write and
			// now (a racing response or connection failure); its delivery
			// is guaranteed, so wait it out before touching dest again.
			<-pc.ch
		}
		return nil, err
	}

	var timeoutCh <-chan time.Time
	var timer *time.Timer
	if c.timeout > 0 {
		timer = acquireTimer(c.timeout)
		timeoutCh = timer.C
	}
	select {
	case res := <-pc.ch:
		if timer != nil {
			releaseTimer(timer)
		}
		return res.payload, res.err
	case <-timeoutCh:
		if c.abandon(id) {
			releaseTimer(timer)
			return nil, fmt.Errorf("%w: call %d op %d after %v", ErrTimeout, id, op, c.timeout)
		}
		// Too late to time out: the read loop already claimed this call
		// and may be scattering bulk bytes into our dest buffer right
		// now. Returning would hand the caller a buffer the transport is
		// still writing — wait for the delivery instead.
		res := <-pc.ch
		releaseTimer(timer)
		return res.payload, res.err
	}
}

func lenOf(bulk []byte, dir rpc.BulkDir) int {
	if dir == rpc.BulkNone {
		return 0
	}
	return len(bulk)
}

// abandon removes the call from the pending table. It returns false when
// the read loop already claimed the id — the caller must then wait on the
// call's channel, because a claimed call always gets a delivery and its
// dest buffer is in use until it arrives.
func (c *tcpConn) abandon(id uint64) bool {
	c.mu.Lock()
	_, ok := c.pending[id]
	delete(c.pending, id)
	c.mu.Unlock()
	return ok
}

// Close implements rpc.Conn.
func (c *tcpConn) Close() error { return c.conn.Close() }

// readLoop demultiplexes responses. Scatter on RX: the fixed header and
// payload are read first, the request id is resolved to its pending call
// *before* the bulk bytes arrive, and the bulk is then read directly into
// the waiting caller's destination buffer — the frame→bulk staging copy
// this loop used to perform is gone. A late response (timed-out call)
// has no destination; its bulk bytes are discarded from the stream.
func (c *tcpConn) readLoop() {
	br := bufio.NewReaderSize(c.conn, readBufSize)
	for {
		// Prefix first, fixed header second — a frame too short for the
		// header fails now instead of stalling the loop.
		var pfx [4]byte
		if _, err := io.ReadFull(br, pfx[:]); err != nil {
			c.fail(err)
			return
		}
		rest := binary.LittleEndian.Uint32(pfx[:])
		if rest > maxFrame {
			c.fail(errFrameTooBig)
			return
		}
		if rest < minResponseLen {
			c.fail(rpc.ErrTruncated)
			return
		}
		var hdr [minResponseLen]byte // id + status + payloadLen
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			c.fail(err)
			return
		}
		id := binary.LittleEndian.Uint64(hdr[0:])
		status := hdr[8]
		plen := binary.LittleEndian.Uint32(hdr[9:])
		rem := uint64(rest - minResponseLen)
		if uint64(plen)+4 > rem {
			c.fail(rpc.ErrTruncated)
			return
		}
		pbuf := rpc.GetBuf(int(plen) + 4)
		if _, err := io.ReadFull(br, pbuf); err != nil {
			rpc.PutBuf(pbuf)
			c.fail(err)
			return
		}
		blen := binary.LittleEndian.Uint32(pbuf[plen:])
		if uint64(blen) != rem-uint64(plen)-4 {
			rpc.PutBuf(pbuf)
			c.fail(rpc.ErrTruncated)
			return
		}

		c.mu.Lock()
		pc, ok := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if !ok {
			// Timed-out call's late response: drain its bulk bytes to keep
			// the stream framed.
			rpc.PutBuf(pbuf)
			if _, err := io.CopyN(io.Discard, br, int64(blen)); err != nil {
				c.fail(err)
				return
			}
			continue
		}
		if status != 0 {
			err := &rpc.RemoteError{Msg: string(pbuf[:plen])}
			rpc.PutBuf(pbuf)
			if _, derr := io.CopyN(io.Discard, br, int64(blen)); derr != nil {
				pc.ch <- tcpResult{err: err}
				c.fail(derr)
				return
			}
			pc.ch <- tcpResult{err: err}
			continue
		}
		if blen > 0 {
			if int64(blen) > int64(len(pc.dest)) {
				// The server pushed past the region we exposed; trusting
				// the stream further would scribble out of bounds.
				err := fmt.Errorf("transport: response bulk %d exceeds exposed region %d", blen, len(pc.dest))
				rpc.PutBuf(pbuf)
				pc.ch <- tcpResult{err: err}
				c.fail(err)
				return
			}
			if _, err := io.ReadFull(br, pc.dest[:blen]); err != nil {
				rpc.PutBuf(pbuf)
				pc.ch <- tcpResult{err: err}
				c.fail(err)
				return
			}
		}
		// The payload escapes to the caller; copy it off the pooled buffer.
		pc.ch <- tcpResult{payload: append([]byte(nil), pbuf[:plen]...)}
		rpc.PutBuf(pbuf)
	}
}

// fail marks the connection dead and delivers the failure to every still
// pending call. Calls the read loop already claimed were (or will be)
// delivered to directly and are no longer in the table.
func (c *tcpConn) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead == nil {
		c.dead = fmt.Errorf("transport: connection failed: %w", err)
	}
	for id, pc := range c.pending {
		pc.ch <- tcpResult{err: c.dead}
		delete(c.pending, id)
	}
}

// --- framing ---

// buildRequestHeader assembles everything that precedes the bulk bytes —
// length prefix, fixed fields, payload, bulk length — in a pooled buffer;
// the caller releases it with rpc.PutBuf after writing it out. The bulk
// bytes themselves travel as a second iovec (BulkIn) or not at all
// (BulkOut advertises only the region size the server may push into). A
// sampled trace extends the frame by traceLen trailing bytes, appended
// here unless BulkIn bytes will separate them from the header (the
// caller then sends the trailer as its own iovec after the bulk).
func buildRequestHeader(id uint64, op rpc.Op, dir rpc.BulkDir, payload []byte, bulkLen int, tr rpc.Trace) []byte {
	inline := 0
	if dir == rpc.BulkIn {
		inline = bulkLen
	}
	dirByte := byte(dir)
	tlen := 0
	if tr.Sampled() {
		dirByte |= dirTraceFlag
		tlen = traceLen
	}
	rest := minRequestLen + len(payload) + 4 + inline + tlen
	trInline := tlen
	if inline > 0 {
		trInline = 0 // trailer travels after the bulk iovec
	}
	out := rpc.GetBuf(4 + rest - inline - (tlen - trInline))[:0]
	out = binary.LittleEndian.AppendUint32(out, uint32(rest))
	out = binary.LittleEndian.AppendUint64(out, id)
	out = binary.LittleEndian.AppendUint16(out, uint16(op))
	out = append(out, dirByte)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, uint32(bulkLen))
	if trInline != 0 {
		var tb [traceLen]byte
		putTrace(&tb, tr)
		out = append(out, tb[:]...)
	}
	return out
}

// writeResponse sends one response: header (with payload and bulk length)
// plus, when the handler produced bulk bytes, the bulk region as the
// second element of a writev — the server-side gather mirroring the
// client's. bulk is borrowed; the caller still owns its release.
func writeResponse(conn net.Conn, wmu *sync.Mutex, wire *rpc.WireCounters, id uint64, payload, bulk []byte, herr error) {
	status := byte(0)
	if herr != nil {
		status = 1
		payload = []byte(herr.Error())
		bulk = nil
	}
	rest := minResponseLen + len(payload) + 4 + len(bulk)
	if rest > maxFrame {
		// The client's read loop would reject this frame and condemn the
		// whole connection; degrade to a per-call error instead.
		status = 1
		payload = []byte(errFrameTooBig.Error())
		bulk = nil
		rest = minResponseLen + len(payload) + 4
	}
	hdr := rpc.GetBuf(4 + minResponseLen + len(payload) + 4)[:0]
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(rest))
	hdr = binary.LittleEndian.AppendUint64(hdr, id)
	hdr = append(hdr, status)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(payload)))
	hdr = append(hdr, payload...)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(bulk)))

	wmu.Lock()
	// A write error tears down the connection via the read side.
	if len(bulk) > 0 {
		bufs := net.Buffers{hdr, bulk}
		_, _ = bufs.WriteTo(conn)
		wire.VectoredWrites.Add(1)
	} else {
		_, _ = conn.Write(hdr)
	}
	wmu.Unlock()
	wire.FramesOut.Add(1)
	wire.BytesOut.Add(uint64(4 + rest))
	rpc.PutBuf(hdr)
}
