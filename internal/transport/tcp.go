package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/rpc"
)

// TCP wire format. Requests and responses are length-prefixed frames
// multiplexed over one connection by request id.
//
//	request:  [u32 rest-len][u64 reqID][u16 op][u8 dir]
//	          [u32 payloadLen][payload][u32 bulkLen][bulk]
//	response: [u32 rest-len][u64 reqID][u8 status]
//	          [u32 payloadLen][payload][u32 bulkLen][bulk]
//
// dir is the rpc.BulkDir; bulk bytes travel client→server only for BulkIn
// and server→client only for BulkOut. status 0 is success; status 1
// carries a handler error message in the payload.
//
// Every length field is validated without arithmetic that can wrap: a
// frame whose inner lengths disagree with its outer length closes the
// connection — the stream position is unknowable after a corrupt prefix,
// so resynchronizing is impossible and dangerous.

// maxFrame guards against corrupt length prefixes (64 MiB transfer + slack).
const maxFrame = 128 << 20

var errFrameTooBig = errors.New("transport: frame exceeds limit")

// ErrTimeout reports a call that outlived the dial-configured wait. The
// connection itself remains usable (the late response is drained and
// discarded).
var ErrTimeout = errors.New("transport: call timed out")

const minRequestLen = 8 + 2 + 1 + 4 // reqID + op + dir + payloadLen
const minResponseLen = 8 + 1 + 4    // reqID + status + payloadLen

// ServeTCP accepts connections on l and serves srv until l is closed.
// It returns the first accept error (net.ErrClosed after a clean stop).
func ServeTCP(l net.Listener, srv *rpc.Server) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go serveConn(conn, srv)
	}
}

func serveConn(conn net.Conn, srv *rpc.Server) {
	defer conn.Close()
	var wmu sync.Mutex // serializes response frames
	for {
		frame, err := readFrame(conn)
		if err != nil {
			return
		}
		go func(frame []byte) {
			defer rpc.PutBuf(frame)
			reqID, op, dir, payload, bulkIn, outLen, err := parseRequest(frame)
			if err != nil {
				// Corrupt or hostile frame: the stream is unrecoverable,
				// tear the connection down instead of guessing.
				conn.Close()
				return
			}
			bulk := &tcpServerBulk{dir: dir, in: bulkIn, outLen: outLen}
			resp, herr := srv.Dispatch(op, payload, bulkFor(bulk, dir))
			writeResponse(conn, &wmu, reqID, resp, bulk.out, herr)
			if bulk.out != nil {
				rpc.PutBuf(bulk.out)
			}
		}(frame)
	}
}

// bulkFor hides the bulk object entirely when no buffer was exposed, so
// handlers can test for nil.
func bulkFor(b *tcpServerBulk, dir rpc.BulkDir) rpc.Bulk {
	if dir == rpc.BulkNone {
		return nil
	}
	return b
}

// tcpServerBulk implements rpc.Bulk over the inlined bytes.
type tcpServerBulk struct {
	dir    rpc.BulkDir
	in     []byte
	out    []byte
	outLen int
}

// Pull implements rpc.Bulk.
func (b *tcpServerBulk) Pull(p []byte) error {
	if b.dir != rpc.BulkIn {
		return errors.New("transport: pull from non-BulkIn region")
	}
	if len(p) > len(b.in) {
		return fmt.Errorf("transport: bulk pull of %d exceeds exposed %d", len(p), len(b.in))
	}
	copy(p, b.in)
	return nil
}

// Push implements rpc.Bulk.
func (b *tcpServerBulk) Push(p []byte) error {
	if b.dir != rpc.BulkOut {
		return errors.New("transport: push into non-BulkOut region")
	}
	if len(p) > b.outLen {
		return fmt.Errorf("transport: bulk push of %d exceeds exposed %d", len(p), b.outLen)
	}
	if b.out == nil {
		b.out = rpc.GetBuf(len(p))
	}
	b.out = append(b.out[:0], p...)
	return nil
}

// Len implements rpc.Bulk.
func (b *tcpServerBulk) Len() int {
	if b.dir == rpc.BulkIn {
		return len(b.in)
	}
	return b.outLen
}

// DialTCP connects to a server at addr. timeout bounds each call's wait
// for a response; zero means no limit.
func DialTCP(addr string, timeout time.Duration) (rpc.Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	tc := &tcpConn{
		conn:    c,
		timeout: timeout,
		pending: make(map[uint64]chan tcpResult),
	}
	go tc.readLoop()
	return tc, nil
}

type tcpConn struct {
	conn    net.Conn
	timeout time.Duration

	wmu sync.Mutex // serializes request frames

	mu      sync.Mutex
	pending map[uint64]chan tcpResult
	nextID  uint64
	dead    error
}

type tcpResult struct {
	payload []byte
	bulk    []byte
	frame   []byte // pooled backing of bulk; recycled by the receiver
	err     error
}

// Call implements rpc.Conn.
func (c *tcpConn) Call(op rpc.Op, payload, bulk []byte, dir rpc.BulkDir) ([]byte, error) {
	if bulk == nil {
		dir = rpc.BulkNone
	}
	ch := make(chan tcpResult, 1)
	c.mu.Lock()
	if c.dead != nil {
		err := c.dead
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	var bulkOut []byte
	if dir == rpc.BulkIn {
		bulkOut = bulk
	}
	frame := buildRequest(id, op, dir, payload, bulkOut, lenOf(bulk, dir))
	c.wmu.Lock()
	_, err := c.conn.Write(frame)
	c.wmu.Unlock()
	rpc.PutBuf(frame)
	if err != nil {
		c.drop(id)
		return nil, err
	}

	var timer *time.Timer
	var timeoutCh <-chan time.Time
	if c.timeout > 0 {
		timer = time.NewTimer(c.timeout)
		defer timer.Stop()
		timeoutCh = timer.C
	}
	select {
	case res := <-ch:
		if res.err != nil {
			return nil, res.err
		}
		if dir == rpc.BulkOut && len(res.bulk) > 0 {
			copy(bulk, res.bulk)
		}
		if res.frame != nil {
			rpc.PutBuf(res.frame)
		}
		return res.payload, nil
	case <-timeoutCh:
		c.drop(id)
		return nil, fmt.Errorf("%w: call %d op %d after %v", ErrTimeout, id, op, c.timeout)
	}
}

func lenOf(bulk []byte, dir rpc.BulkDir) int {
	if dir == rpc.BulkNone {
		return 0
	}
	return len(bulk)
}

func (c *tcpConn) drop(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// Close implements rpc.Conn.
func (c *tcpConn) Close() error { return c.conn.Close() }

func (c *tcpConn) readLoop() {
	for {
		frame, err := readFrame(c.conn)
		if err != nil {
			c.fail(err)
			return
		}
		id, status, payload, bulk, err := parseResponse(frame)
		if err != nil {
			rpc.PutBuf(frame)
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if !ok {
			rpc.PutBuf(frame) // timed-out call's late response
			continue
		}
		if status != 0 {
			msg := string(payload)
			rpc.PutBuf(frame)
			ch <- tcpResult{err: &rpc.RemoteError{Msg: msg}}
			continue
		}
		// The payload escapes to the caller, so it is copied out of the
		// pooled frame; the (potentially large) bulk bytes stay in the
		// frame, which the caller recycles after consuming them.
		ch <- tcpResult{payload: append([]byte(nil), payload...), bulk: bulk, frame: frame}
	}
}

func (c *tcpConn) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead == nil {
		c.dead = fmt.Errorf("transport: connection failed: %w", err)
	}
	for id, ch := range c.pending {
		ch <- tcpResult{err: c.dead}
		delete(c.pending, id)
	}
}

// --- framing ---

// readFrame reads one length-prefixed frame into a pooled buffer. The
// caller owns the frame and must release it with rpc.PutBuf.
func readFrame(r io.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n > maxFrame {
		return nil, errFrameTooBig
	}
	frame := rpc.GetBuf(int(n))
	if _, err := io.ReadFull(r, frame); err != nil {
		rpc.PutBuf(frame)
		return nil, err
	}
	return frame, nil
}

// buildRequest assembles a request frame in a pooled buffer; the caller
// releases it with rpc.PutBuf after writing it out.
func buildRequest(id uint64, op rpc.Op, dir rpc.BulkDir, payload, bulk []byte, bulkLen int) []byte {
	rest := minRequestLen + len(payload) + 4 + len(bulk)
	out := rpc.GetBuf(4 + rest)[:0]
	out = binary.LittleEndian.AppendUint32(out, uint32(rest))
	out = binary.LittleEndian.AppendUint64(out, id)
	out = binary.LittleEndian.AppendUint16(out, uint16(op))
	out = append(out, byte(dir))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	if dir == rpc.BulkIn {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(bulk)))
		out = append(out, bulk...)
	} else {
		// BulkOut advertises only the region size the server may push into.
		out = binary.LittleEndian.AppendUint32(out, uint32(bulkLen))
	}
	return out
}

// parseRequest decodes a request frame. Length fields are checked against
// the remaining frame without addition, so a length near the u32 maximum
// cannot wrap past the truncation check (it previously panicked the
// daemon). For BulkOut the advertised region is size-only — it is never
// materialized, so a hostile budget cannot force a giant allocation; it
// is still bounded by maxFrame because the response must carry it back.
func parseRequest(frame []byte) (id uint64, op rpc.Op, dir rpc.BulkDir, payload, bulk []byte, outLen int, err error) {
	if len(frame) < minRequestLen {
		return 0, 0, 0, nil, nil, 0, rpc.ErrTruncated
	}
	id = binary.LittleEndian.Uint64(frame)
	op = rpc.Op(binary.LittleEndian.Uint16(frame[8:]))
	dir = rpc.BulkDir(frame[10])
	if dir > rpc.BulkOut {
		return 0, 0, 0, nil, nil, 0, fmt.Errorf("transport: invalid bulk direction %d", dir)
	}
	p := frame[11:]
	plen := binary.LittleEndian.Uint32(p)
	p = p[4:]
	if uint64(plen) > uint64(len(p)) {
		return 0, 0, 0, nil, nil, 0, rpc.ErrTruncated
	}
	payload = p[:plen]
	p = p[plen:]
	if len(p) < 4 {
		return 0, 0, 0, nil, nil, 0, rpc.ErrTruncated
	}
	blen := binary.LittleEndian.Uint32(p)
	p = p[4:]
	if dir == rpc.BulkIn {
		if uint64(blen) > uint64(len(p)) {
			return 0, 0, 0, nil, nil, 0, rpc.ErrTruncated
		}
		bulk = p[:blen]
	} else if dir == rpc.BulkOut {
		if blen > maxFrame {
			return 0, 0, 0, nil, nil, 0, errFrameTooBig
		}
		outLen = int(blen)
	}
	return id, op, dir, payload, bulk, outLen, nil
}

func writeResponse(conn net.Conn, wmu *sync.Mutex, id uint64, payload, bulk []byte, herr error) {
	status := byte(0)
	if herr != nil {
		status = 1
		payload = []byte(herr.Error())
		bulk = nil
	}
	rest := minResponseLen + len(payload) + 4 + len(bulk)
	if rest > maxFrame {
		// The client's readFrame would reject this frame and condemn the
		// whole connection; degrade to a per-call error instead.
		status = 1
		payload = []byte(errFrameTooBig.Error())
		bulk = nil
		rest = minResponseLen + len(payload) + 4
	}
	out := rpc.GetBuf(4 + rest)[:0]
	out = binary.LittleEndian.AppendUint32(out, uint32(rest))
	out = binary.LittleEndian.AppendUint64(out, id)
	out = append(out, status)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(bulk)))
	out = append(out, bulk...)

	wmu.Lock()
	// A write error tears down the connection via the read side.
	_, _ = conn.Write(out)
	wmu.Unlock()
	rpc.PutBuf(out)
}

// parseResponse decodes a response frame with the same wrap-proof length
// validation as parseRequest (a corrupt response previously panicked the
// client's read loop).
func parseResponse(frame []byte) (id uint64, status byte, payload, bulk []byte, err error) {
	if len(frame) < minResponseLen {
		return 0, 0, nil, nil, rpc.ErrTruncated
	}
	id = binary.LittleEndian.Uint64(frame)
	status = frame[8]
	p := frame[9:]
	plen := binary.LittleEndian.Uint32(p)
	p = p[4:]
	if uint64(plen) > uint64(len(p)) {
		return 0, 0, nil, nil, rpc.ErrTruncated
	}
	payload = p[:plen]
	p = p[plen:]
	if len(p) < 4 {
		return 0, 0, nil, nil, rpc.ErrTruncated
	}
	blen := binary.LittleEndian.Uint32(p)
	p = p[4:]
	if uint64(blen) > uint64(len(p)) {
		return 0, 0, nil, nil, rpc.ErrTruncated
	}
	bulk = p[:blen]
	return id, status, payload, bulk, nil
}
