package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/rpc"
)

// TCP wire format. Requests and responses are length-prefixed frames
// multiplexed over one connection by request id.
//
//	request:  [u32 rest-len][u64 reqID][u16 op][u8 dir]
//	          [u32 payloadLen][payload][u32 bulkLen][bulk]
//	response: [u32 rest-len][u64 reqID][u8 status]
//	          [u32 payloadLen][payload][u32 bulkLen][bulk]
//
// dir is the rpc.BulkDir; bulk bytes travel client→server only for BulkIn
// and server→client only for BulkOut. status 0 is success; status 1
// carries a handler error message in the payload.

// maxFrame guards against corrupt length prefixes (64 MiB transfer + slack).
const maxFrame = 128 << 20

var errFrameTooBig = errors.New("transport: frame exceeds limit")

// ServeTCP accepts connections on l and serves srv until l is closed.
// It returns the first accept error (net.ErrClosed after a clean stop).
func ServeTCP(l net.Listener, srv *rpc.Server) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go serveConn(conn, srv)
	}
}

func serveConn(conn net.Conn, srv *rpc.Server) {
	defer conn.Close()
	var wmu sync.Mutex // serializes response frames
	for {
		frame, err := readFrame(conn)
		if err != nil {
			return
		}
		go func(frame []byte) {
			reqID, op, dir, payload, bulkIn, err := parseRequest(frame)
			if err != nil {
				return // protocol violation; drop the request
			}
			bulk := &tcpServerBulk{dir: dir, in: bulkIn, outLen: len(bulkIn)}
			if dir == rpc.BulkOut {
				bulk.out = make([]byte, 0, bulk.outLen)
			}
			resp, herr := srv.Dispatch(op, payload, bulkFor(bulk, dir))
			writeResponse(conn, &wmu, reqID, resp, bulk.out, herr)
		}(frame)
	}
}

// bulkFor hides the bulk object entirely when no buffer was exposed, so
// handlers can test for nil.
func bulkFor(b *tcpServerBulk, dir rpc.BulkDir) rpc.Bulk {
	if dir == rpc.BulkNone {
		return nil
	}
	return b
}

// tcpServerBulk implements rpc.Bulk over the inlined bytes.
type tcpServerBulk struct {
	dir    rpc.BulkDir
	in     []byte
	out    []byte
	outLen int
}

// Pull implements rpc.Bulk.
func (b *tcpServerBulk) Pull(p []byte) error {
	if b.dir != rpc.BulkIn {
		return errors.New("transport: pull from non-BulkIn region")
	}
	if len(p) > len(b.in) {
		return fmt.Errorf("transport: bulk pull of %d exceeds exposed %d", len(p), len(b.in))
	}
	copy(p, b.in)
	return nil
}

// Push implements rpc.Bulk.
func (b *tcpServerBulk) Push(p []byte) error {
	if b.dir != rpc.BulkOut {
		return errors.New("transport: push into non-BulkOut region")
	}
	if len(p) > b.outLen {
		return fmt.Errorf("transport: bulk push of %d exceeds exposed %d", len(p), b.outLen)
	}
	b.out = append(b.out[:0], p...)
	return nil
}

// Len implements rpc.Bulk.
func (b *tcpServerBulk) Len() int {
	if b.dir == rpc.BulkIn {
		return len(b.in)
	}
	return b.outLen
}

// DialTCP connects to a server at addr. timeout bounds each call's wait
// for a response; zero means no limit.
func DialTCP(addr string, timeout time.Duration) (rpc.Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	tc := &tcpConn{
		conn:    c,
		timeout: timeout,
		pending: make(map[uint64]chan tcpResult),
	}
	go tc.readLoop()
	return tc, nil
}

type tcpConn struct {
	conn    net.Conn
	timeout time.Duration

	wmu sync.Mutex // serializes request frames

	mu      sync.Mutex
	pending map[uint64]chan tcpResult
	nextID  uint64
	dead    error
}

type tcpResult struct {
	payload []byte
	bulk    []byte
	err     error
}

// Call implements rpc.Conn.
func (c *tcpConn) Call(op rpc.Op, payload, bulk []byte, dir rpc.BulkDir) ([]byte, error) {
	if bulk == nil {
		dir = rpc.BulkNone
	}
	ch := make(chan tcpResult, 1)
	c.mu.Lock()
	if c.dead != nil {
		err := c.dead
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	var bulkOut []byte
	if dir == rpc.BulkIn {
		bulkOut = bulk
	}
	frame := buildRequest(id, op, dir, payload, bulkOut, lenOf(bulk, dir))
	c.wmu.Lock()
	_, err := c.conn.Write(frame)
	c.wmu.Unlock()
	if err != nil {
		c.drop(id)
		return nil, err
	}

	var timer *time.Timer
	var timeoutCh <-chan time.Time
	if c.timeout > 0 {
		timer = time.NewTimer(c.timeout)
		defer timer.Stop()
		timeoutCh = timer.C
	}
	select {
	case res := <-ch:
		if res.err != nil {
			return nil, res.err
		}
		if dir == rpc.BulkOut && len(res.bulk) > 0 {
			copy(bulk, res.bulk)
		}
		return res.payload, nil
	case <-timeoutCh:
		c.drop(id)
		return nil, fmt.Errorf("transport: call %d op %d timed out after %v", id, op, c.timeout)
	}
}

func lenOf(bulk []byte, dir rpc.BulkDir) int {
	if dir == rpc.BulkNone {
		return 0
	}
	return len(bulk)
}

func (c *tcpConn) drop(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// Close implements rpc.Conn.
func (c *tcpConn) Close() error { return c.conn.Close() }

func (c *tcpConn) readLoop() {
	for {
		frame, err := readFrame(c.conn)
		if err != nil {
			c.fail(err)
			return
		}
		id, status, payload, bulk, err := parseResponse(frame)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if !ok {
			continue // timed-out call's late response
		}
		res := tcpResult{payload: payload, bulk: bulk}
		if status != 0 {
			res = tcpResult{err: &rpc.RemoteError{Msg: string(payload)}}
		}
		ch <- res
	}
}

func (c *tcpConn) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead == nil {
		c.dead = fmt.Errorf("transport: connection failed: %w", err)
	}
	for id, ch := range c.pending {
		ch <- tcpResult{err: c.dead}
		delete(c.pending, id)
	}
}

// --- framing ---

func readFrame(r io.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n > maxFrame {
		return nil, errFrameTooBig
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(r, frame); err != nil {
		return nil, err
	}
	return frame, nil
}

func buildRequest(id uint64, op rpc.Op, dir rpc.BulkDir, payload, bulk []byte, bulkLen int) []byte {
	rest := 8 + 2 + 1 + 4 + len(payload) + 4 + len(bulk)
	out := make([]byte, 4, 4+rest)
	binary.LittleEndian.PutUint32(out, uint32(rest))
	out = binary.LittleEndian.AppendUint64(out, id)
	out = binary.LittleEndian.AppendUint16(out, uint16(op))
	out = append(out, byte(dir))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	if dir == rpc.BulkIn {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(bulk)))
		out = append(out, bulk...)
	} else {
		// BulkOut advertises only the region size the server may push into.
		out = binary.LittleEndian.AppendUint32(out, uint32(bulkLen))
	}
	return out
}

func parseRequest(frame []byte) (id uint64, op rpc.Op, dir rpc.BulkDir, payload, bulk []byte, err error) {
	if len(frame) < 8+2+1+4 {
		return 0, 0, 0, nil, nil, rpc.ErrTruncated
	}
	id = binary.LittleEndian.Uint64(frame)
	op = rpc.Op(binary.LittleEndian.Uint16(frame[8:]))
	dir = rpc.BulkDir(frame[10])
	p := frame[11:]
	plen := binary.LittleEndian.Uint32(p)
	p = p[4:]
	if uint32(len(p)) < plen+4 {
		return 0, 0, 0, nil, nil, rpc.ErrTruncated
	}
	payload = p[:plen]
	p = p[plen:]
	blen := binary.LittleEndian.Uint32(p)
	p = p[4:]
	if dir == rpc.BulkIn {
		if uint32(len(p)) < blen {
			return 0, 0, 0, nil, nil, rpc.ErrTruncated
		}
		bulk = p[:blen]
	} else {
		// The region is size-only; materialize the advertised length so
		// tcpServerBulk knows the push budget.
		bulk = make([]byte, blen)
	}
	return id, op, dir, payload, bulk, nil
}

func writeResponse(conn net.Conn, wmu *sync.Mutex, id uint64, payload, bulk []byte, herr error) {
	status := byte(0)
	if herr != nil {
		status = 1
		payload = []byte(herr.Error())
		bulk = nil
	}
	rest := 8 + 1 + 4 + len(payload) + 4 + len(bulk)
	out := make([]byte, 4, 4+rest)
	binary.LittleEndian.PutUint32(out, uint32(rest))
	out = binary.LittleEndian.AppendUint64(out, id)
	out = append(out, status)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(bulk)))
	out = append(out, bulk...)

	wmu.Lock()
	defer wmu.Unlock()
	// A write error tears down the connection via the read side.
	_, _ = conn.Write(out)
}

func parseResponse(frame []byte) (id uint64, status byte, payload, bulk []byte, err error) {
	if len(frame) < 8+1+4 {
		return 0, 0, nil, nil, rpc.ErrTruncated
	}
	id = binary.LittleEndian.Uint64(frame)
	status = frame[8]
	p := frame[9:]
	plen := binary.LittleEndian.Uint32(p)
	p = p[4:]
	if uint32(len(p)) < plen+4 {
		return 0, 0, nil, nil, rpc.ErrTruncated
	}
	payload = p[:plen]
	p = p[plen:]
	blen := binary.LittleEndian.Uint32(p)
	p = p[4:]
	if uint32(len(p)) < blen {
		return 0, 0, nil, nil, rpc.ErrTruncated
	}
	bulk = p[:blen]
	return id, status, payload, bulk, nil
}
