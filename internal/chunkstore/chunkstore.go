// Package chunkstore is the daemons' I/O persistence layer (paper
// §III-B): file data arrives pre-chunked from clients, and every chunk is
// stored as one file on the node-local file system, named by its owning
// path and chunk ID. The layout matches the released GekkoFS: a directory
// per GekkoFS file (escaped path) holding numbered chunk files.
package chunkstore

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/meta"
	"repro/internal/vfs"
)

// Store persists chunks on one node.
type Store struct {
	fs vfs.FS
	// pathLocks serialize remove/truncate against writes of the same
	// path. Plain chunk writes to different chunks proceed concurrently.
	pathLocks [64]sync.RWMutex

	// cowMu guards the snapshot copy-on-write state below (cow.go): the
	// pre-image index, the last-write-epoch map, and the first-touch pin
	// decision itself.
	cowMu sync.Mutex
	// pre indexes pre-image files: chunkKey → sorted ascending supersede
	// epochs. Rebuilt from the snap/ directory on open.
	pre map[string][]uint64
	// last tracks the newest write epoch seen per chunk this process
	// lifetime. Absence means unknown history (pin conservatively).
	last map[string]uint64

	cowCopies, cowBytes atomic.Uint64
}

// New returns a store backed by fs, rooted at "chunks/" with snapshot
// pre-images under "snap/".
func New(fs vfs.FS) *Store {
	s := &Store{fs: fs, pre: make(map[string][]uint64), last: make(map[string]uint64)}
	// A listing failure leaves the index empty; reads then resolve to
	// live chunks, the same behavior as a snapshot-free store.
	_ = s.loadPreImages()
	return s
}

// escapePath turns a GekkoFS path into a single directory name:
// '#' → "#23", '/' → "#2f". The mapping is injective, so distinct paths
// never share a chunk directory.
func escapePath(path string) string {
	var b strings.Builder
	b.Grow(len(path) + 8)
	for i := 0; i < len(path); i++ {
		switch path[i] {
		case '#':
			b.WriteString("#23")
		case '/':
			b.WriteString("#2f")
		default:
			b.WriteByte(path[i])
		}
	}
	return b.String()
}

func chunkDir(path string) string { return "chunks/" + escapePath(path) }

func chunkFile(path string, id meta.ChunkID) string {
	return chunkDir(path) + "/" + strconv.FormatUint(uint64(id), 10)
}

func (s *Store) lockFor(path string) *sync.RWMutex {
	h := uint32(2166136261)
	for i := 0; i < len(path); i++ {
		h = (h ^ uint32(path[i])) * 16777619
	}
	return &s.pathLocks[h%64]
}

// WriteChunk writes data into chunk id of path at the chunk-local offset,
// creating the chunk file as needed.
func (s *Store) WriteChunk(path string, id meta.ChunkID, offset int64, data []byte) error {
	l := s.lockFor(path)
	l.RLock()
	defer l.RUnlock()
	f, err := s.fs.OpenOrCreate(chunkFile(path, id))
	if err != nil {
		return fmt.Errorf("chunkstore: write %s#%d: %w", path, id, err)
	}
	defer f.Close()
	if _, err := f.WriteAt(data, offset); err != nil {
		return fmt.Errorf("chunkstore: write %s#%d: %w", path, id, err)
	}
	return nil
}

// ReadChunk reads up to len(dst) bytes from chunk id of path at the
// chunk-local offset. It returns the byte count actually present; a
// missing chunk or an offset at or past the chunk file's end reads as
// zero bytes (the client zero-fills sparse regions using the file size).
// Only a genuinely absent chunk is a hole — any other open failure
// (permissions, I/O error) propagates instead of silently reading zeros.
func (s *Store) ReadChunk(path string, id meta.ChunkID, offset int64, dst []byte) (int, error) {
	l := s.lockFor(path)
	l.RLock()
	defer l.RUnlock()
	n, err := s.readFileAt(chunkFile(path, id), offset, dst)
	if err != nil {
		return 0, fmt.Errorf("chunkstore: read %s#%d: %w", path, id, err)
	}
	return n, nil
}

// readFileAt reads up to len(dst) bytes from a chunk or pre-image file,
// clamping to the file's size; a missing file reads as a hole. The
// caller holds whatever lock the file needs.
func (s *Store) readFileAt(name string, offset int64, dst []byte) (int, error) {
	f, err := s.fs.Open(name)
	if errors.Is(err, vfs.ErrNotExist) {
		return 0, nil // never written: hole
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return 0, err
	}
	if offset >= size {
		return 0, nil
	}
	n := int64(len(dst))
	if offset+n > size {
		n = size - offset
	}
	if n == 0 {
		return 0, nil
	}
	if _, err := f.ReadAt(dst[:n], offset); err != nil {
		return 0, err
	}
	return int(n), nil
}

// RemoveChunks deletes every chunk of path. Removing a path without
// chunks succeeds.
func (s *Store) RemoveChunks(path string) error {
	l := s.lockFor(path)
	l.Lock()
	defer l.Unlock()
	dir := chunkDir(path)
	names, err := s.fs.List(dir)
	if err != nil {
		return err
	}
	for _, n := range names {
		if err := s.fs.Remove(dir + "/" + n); err != nil {
			return fmt.Errorf("chunkstore: remove %s: %w", path, err)
		}
	}
	return nil
}

// TruncateChunks discards data beyond newSize: chunks fully past the new
// end are removed and the final partial chunk, if present, is trimmed by
// rewriting its prefix.
func (s *Store) TruncateChunks(path string, chunkSize, newSize int64) error {
	l := s.lockFor(path)
	l.Lock()
	defer l.Unlock()
	dir := chunkDir(path)
	names, err := s.fs.List(dir)
	if err != nil {
		return err
	}
	keep := meta.ChunksForSize(newSize, chunkSize) // chunks [0, keep) survive
	for _, n := range names {
		id, err := strconv.ParseUint(n, 10, 64)
		if err != nil {
			continue // foreign file; leave it
		}
		if int64(id) >= keep {
			if err := s.fs.Remove(dir + "/" + n); err != nil {
				return err
			}
		}
	}
	if keep == 0 || newSize%chunkSize == 0 {
		return nil
	}
	// Trim the final chunk to its surviving prefix.
	lastID := meta.ChunkID(keep - 1)
	want := newSize - int64(lastID)*chunkSize
	name := chunkFile(path, lastID)
	f, err := s.fs.Open(name)
	if err != nil {
		return nil // final chunk never written: nothing to trim
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return err
	}
	if size <= want {
		f.Close()
		return nil
	}
	buf := make([]byte, want)
	if _, err := f.ReadAt(buf, 0); err != nil {
		f.Close()
		return err
	}
	f.Close()
	nf, err := s.fs.Create(name)
	if err != nil {
		return err
	}
	defer nf.Close()
	if _, err := nf.WriteAt(buf, 0); err != nil {
		return err
	}
	return nil
}

// ChunkIDs lists the chunk IDs stored for path, sorted ascending.
func (s *Store) ChunkIDs(path string) ([]meta.ChunkID, error) {
	l := s.lockFor(path)
	l.RLock()
	defer l.RUnlock()
	names, err := s.fs.List(chunkDir(path))
	if err != nil {
		return nil, err
	}
	ids := make([]meta.ChunkID, 0, len(names))
	for _, n := range names {
		id, err := strconv.ParseUint(n, 10, 64)
		if err != nil {
			continue
		}
		ids = append(ids, meta.ChunkID(id))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}
