package chunkstore

// Snapshot copy-on-write. A committed snapshot pins an epoch S; live
// chunks keep being overwritten in place, so the store preserves the
// superseded generation as a pre-image the first time a chunk is touched
// under a newer epoch. Pre-images live flat under "snap/", one file per
// superseded generation named "<escapedPath>.<id>.<E>" where E is the
// supersede epoch — the epoch of the first write that replaced the
// content. A snapshot read at S resolves to the pre-image with the
// smallest E > S, falling back to the live chunk when none exists; a
// zero-byte pre-image records that the chunk was a hole at pin time.
//
// The COW decision (and the pin itself, first-touch per chunk per epoch)
// runs under a single store-wide mutex, with the path's write lock held
// across the byte copy so an in-flight writer cannot tear the pre-image.
// The data write that follows runs outside both — steady-state writes
// pay one short critical section, not a copy.

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/meta"
	"repro/internal/vfs"
)

// snapDir is the flat pre-image directory. Flat because vfs.List only
// enumerates files, and a single directory lets a restarted daemon
// rebuild the pre-image index with one listing.
const snapDir = "snap"

// chunkKey identifies one chunk across the pre-image index and the
// last-write-epoch map. It doubles as the pre-image file-name prefix.
func chunkKey(path string, id meta.ChunkID) string {
	return escapePath(path) + "." + strconv.FormatUint(uint64(id), 10)
}

func preImageName(key string, epoch uint64) string {
	return snapDir + "/" + key + "." + strconv.FormatUint(epoch, 10)
}

// loadPreImages rebuilds the pre-image index from the snap/ directory —
// the only COW state that must survive a restart. The last-write-epoch
// map is deliberately not persisted; an unknown chunk is handled
// conservatively at the next write.
func (s *Store) loadPreImages() error {
	if err := s.fs.MkdirAll(snapDir); err != nil {
		return err
	}
	names, err := s.fs.List(snapDir)
	if err != nil {
		return err
	}
	for _, n := range names {
		i := strings.LastIndexByte(n, '.')
		if i < 0 {
			continue
		}
		epoch, err := strconv.ParseUint(n[i+1:], 10, 64)
		if err != nil {
			continue
		}
		key := n[:i]
		if j := strings.LastIndexByte(key, '.'); j < 0 {
			continue
		} else if _, err := strconv.ParseUint(key[j+1:], 10, 64); err != nil {
			continue
		}
		s.pre[key] = append(s.pre[key], epoch)
	}
	for _, epochs := range s.pre {
		sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	}
	return nil
}

// anyRetainedIn reports whether a retained epoch S satisfies
// lo <= S < hi.
func anyRetainedIn(retained []uint64, lo, hi uint64) bool {
	for _, r := range retained {
		if r >= lo && r < hi {
			return true
		}
	}
	return false
}

// needsPreImage decides, under cowMu, whether the live content of key
// must be pinned before a mutation stamped with epoch lands. When the
// last write epoch is known, a pin is needed exactly when a retained
// snapshot falls in [last, epoch) — it can still see the live content.
// When it is unknown (fresh process), the store pins conservatively
// unless this epoch already pinned the chunk; a redundant pre-image is
// never selected over an earlier, more precise one.
func (s *Store) needsPreImage(key string, epoch uint64, retained []uint64) bool {
	if last, ok := s.last[key]; ok {
		return last < epoch && anyRetainedIn(retained, last, epoch)
	}
	if !anyRetainedIn(retained, 0, epoch) {
		return false
	}
	for _, e := range s.pre[key] {
		if e == epoch {
			return false
		}
	}
	return true
}

// addPre records a pinned pre-image in the sorted index. Under cowMu.
func (s *Store) addPre(key string, epoch uint64) {
	epochs := s.pre[key]
	i := sort.Search(len(epochs), func(i int) bool { return epochs[i] >= epoch })
	if i < len(epochs) && epochs[i] == epoch {
		return
	}
	epochs = append(epochs, 0)
	copy(epochs[i+1:], epochs[i:])
	epochs[i] = epoch
	s.pre[key] = epochs
}

// bumpLast advances the known last-write epoch. Under cowMu.
func (s *Store) bumpLast(key string, epoch uint64) {
	if last, ok := s.last[key]; !ok || epoch > last {
		s.last[key] = epoch
	}
}

// copyPreImage pins the live content of (path, id) as the pre-image
// superseded at epoch. A missing live chunk pins as a zero-byte file —
// the hole marker. Caller holds cowMu and the path's write lock.
func (s *Store) copyPreImage(path string, id meta.ChunkID, key string, epoch uint64) error {
	name := preImageName(key, epoch)
	f, err := s.fs.Open(chunkFile(path, id))
	if errors.Is(err, vfs.ErrNotExist) {
		nf, err := s.fs.Create(name)
		if err != nil {
			return fmt.Errorf("chunkstore: pin %s#%d: %w", path, id, err)
		}
		s.cowCopies.Add(1)
		return nf.Close()
	}
	if err != nil {
		return fmt.Errorf("chunkstore: pin %s#%d: %w", path, id, err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return err
	}
	buf := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil {
			f.Close()
			return fmt.Errorf("chunkstore: pin %s#%d: %w", path, id, err)
		}
	}
	f.Close()
	nf, err := s.fs.Create(name)
	if err != nil {
		return fmt.Errorf("chunkstore: pin %s#%d: %w", path, id, err)
	}
	defer nf.Close()
	if size > 0 {
		if _, err := nf.WriteAt(buf, 0); err != nil {
			return fmt.Errorf("chunkstore: pin %s#%d: %w", path, id, err)
		}
	}
	s.cowCopies.Add(1)
	s.cowBytes.Add(uint64(size))
	return nil
}

// WriteChunkEpoch is WriteChunk under snapshot retention: before the
// write lands it pins the superseded generation if any retained snapshot
// still needs it.
func (s *Store) WriteChunkEpoch(path string, id meta.ChunkID, offset int64, data []byte, epoch uint64, retained []uint64) error {
	key := chunkKey(path, id)
	s.cowMu.Lock()
	if s.needsPreImage(key, epoch, retained) {
		l := s.lockFor(path)
		l.Lock()
		err := s.copyPreImage(path, id, key, epoch)
		l.Unlock()
		if err != nil {
			s.cowMu.Unlock()
			return err
		}
		s.addPre(key, epoch)
	}
	s.bumpLast(key, epoch)
	s.cowMu.Unlock()
	return s.WriteChunk(path, id, offset, data)
}

// ReadChunkAt reads chunk id of path as it was at snapshot epoch at: the
// pre-image with the smallest supersede epoch above at, or the live
// chunk when the content was never superseded.
func (s *Store) ReadChunkAt(path string, id meta.ChunkID, offset int64, dst []byte, at uint64) (int, error) {
	key := chunkKey(path, id)
	s.cowMu.Lock()
	var pick uint64
	found := false
	for _, e := range s.pre[key] {
		if e > at {
			pick, found = e, true
			break
		}
	}
	s.cowMu.Unlock()
	if !found {
		return s.ReadChunk(path, id, offset, dst)
	}
	// Pre-images are immutable once indexed; no lock needed.
	n, err := s.readFileAt(preImageName(key, pick), offset, dst)
	if err != nil {
		return 0, fmt.Errorf("chunkstore: snapshot read %s#%d@%d: %w", path, id, at, err)
	}
	return n, nil
}

// RemoveChunksEpoch is RemoveChunks under snapshot retention: chunks a
// retained snapshot can still see move to pre-images (a rename, no byte
// copy) instead of being deleted.
func (s *Store) RemoveChunksEpoch(path string, epoch uint64, retained []uint64) error {
	s.cowMu.Lock()
	defer s.cowMu.Unlock()
	l := s.lockFor(path)
	l.Lock()
	defer l.Unlock()
	dir := chunkDir(path)
	names, err := s.fs.List(dir)
	if err != nil {
		return err
	}
	for _, n := range names {
		id, err := strconv.ParseUint(n, 10, 64)
		if err != nil {
			continue // foreign file; leave it
		}
		key := chunkKey(path, meta.ChunkID(id))
		if s.needsPreImage(key, epoch, retained) {
			if err := s.fs.Rename(dir+"/"+n, preImageName(key, epoch)); err != nil {
				return fmt.Errorf("chunkstore: remove %s: %w", path, err)
			}
			s.addPre(key, epoch)
			s.cowCopies.Add(1)
		} else if err := s.fs.Remove(dir + "/" + n); err != nil {
			return fmt.Errorf("chunkstore: remove %s: %w", path, err)
		}
		s.bumpLast(key, epoch)
	}
	return nil
}

// TruncateChunksEpoch is TruncateChunks under snapshot retention:
// discarded chunks move to pre-images, and a final chunk about to be
// trimmed in place is pinned by copy first.
func (s *Store) TruncateChunksEpoch(path string, chunkSize, newSize int64, epoch uint64, retained []uint64) error {
	s.cowMu.Lock()
	keep := meta.ChunksForSize(newSize, chunkSize)
	l := s.lockFor(path)
	l.Lock()
	dir := chunkDir(path)
	names, err := s.fs.List(dir)
	if err == nil {
		for _, n := range names {
			id, perr := strconv.ParseUint(n, 10, 64)
			if perr != nil {
				continue
			}
			if int64(id) < keep {
				continue
			}
			key := chunkKey(path, meta.ChunkID(id))
			if s.needsPreImage(key, epoch, retained) {
				err = s.fs.Rename(dir+"/"+n, preImageName(key, epoch))
				if err == nil {
					s.addPre(key, epoch)
					s.cowCopies.Add(1)
				}
			} else {
				err = s.fs.Remove(dir + "/" + n)
			}
			if err != nil {
				break
			}
			s.bumpLast(key, epoch)
		}
	}
	if err == nil && keep > 0 && newSize%chunkSize != 0 {
		lastID := meta.ChunkID(keep - 1)
		key := chunkKey(path, lastID)
		if s.needsPreImage(key, epoch, retained) {
			err = s.copyPreImage(path, lastID, key, epoch)
			if err == nil {
				s.addPre(key, epoch)
			}
		}
		if err == nil {
			s.bumpLast(key, epoch)
		}
	}
	l.Unlock()
	s.cowMu.Unlock()
	if err != nil {
		return fmt.Errorf("chunkstore: truncate %s: %w", path, err)
	}
	return s.TruncateChunks(path, chunkSize, newSize)
}

// GCPreImages deletes every pre-image no retained snapshot can select: a
// pre-image superseded at E serves only reads at epochs strictly below
// E, so it survives exactly while a retained S < E exists.
func (s *Store) GCPreImages(retained []uint64) error {
	s.cowMu.Lock()
	defer s.cowMu.Unlock()
	var firstErr error
	for key, epochs := range s.pre {
		kept := epochs[:0]
		for _, e := range epochs {
			if anyRetainedIn(retained, 0, e) {
				kept = append(kept, e)
				continue
			}
			if err := s.fs.Remove(preImageName(key, e)); err != nil && !errors.Is(err, vfs.ErrNotExist) {
				if firstErr == nil {
					firstErr = err
				}
				kept = append(kept, e)
			}
		}
		if len(kept) == 0 {
			delete(s.pre, key)
		} else {
			s.pre[key] = kept
		}
	}
	return firstErr
}

// CowStats reports the cumulative pre-image pins and pinned bytes.
func (s *Store) CowStats() (copies, bytes uint64) {
	return s.cowCopies.Load(), s.cowBytes.Load()
}
