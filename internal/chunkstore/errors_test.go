package chunkstore

import (
	"errors"
	"testing"

	"repro/internal/vfs"
)

// failOpenFS injects an Open error for every file, standing in for
// permission or I/O failures on the node-local SSD.
type failOpenFS struct {
	vfs.FS
	openErr error
}

func (f *failOpenFS) Open(name string) (vfs.File, error) {
	if f.openErr != nil {
		return nil, f.openErr
	}
	return f.FS.Open(name)
}

// TestReadChunkPropagatesOpenErrors is the regression test for chunk-open
// errors being masked as holes: ReadChunk returned (0, nil) for *any*
// Open failure, silently turning an I/O error into a run of zeros. Only a
// genuinely missing chunk is a hole.
func TestReadChunkPropagatesOpenErrors(t *testing.T) {
	injected := errors.New("ssd: input/output error")
	fs := &failOpenFS{FS: vfs.NewMem()}
	s := New(fs)
	if err := s.WriteChunk("/f", 0, 0, []byte("persisted")); err != nil {
		t.Fatal(err)
	}

	fs.openErr = injected
	dst := make([]byte, 9)
	n, err := s.ReadChunk("/f", 0, 0, dst)
	if !errors.Is(err, injected) {
		t.Fatalf("ReadChunk = %d, %v; want the injected open error", n, err)
	}

	// A missing chunk is still a hole, not an error.
	fs.openErr = nil
	n, err = s.ReadChunk("/f", 99, 0, dst)
	if n != 0 || err != nil {
		t.Fatalf("missing chunk read = %d, %v; want 0, nil", n, err)
	}
}
