package chunkstore

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/meta"
	"repro/internal/vfs"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	return New(vfs.NewMem())
}

func TestWriteReadChunk(t *testing.T) {
	s := newStore(t)
	data := []byte("hello chunk world")
	if err := s.WriteChunk("/f", 0, 0, data); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(data))
	n, err := s.ReadChunk("/f", 0, 0, dst)
	if err != nil || n != len(data) || !bytes.Equal(dst, data) {
		t.Fatalf("ReadChunk = %d, %v, %q", n, err, dst)
	}
}

func TestReadMissingChunkIsHole(t *testing.T) {
	s := newStore(t)
	n, err := s.ReadChunk("/f", 7, 0, make([]byte, 100))
	if err != nil || n != 0 {
		t.Fatalf("missing chunk read = %d, %v", n, err)
	}
}

func TestReadPastChunkEnd(t *testing.T) {
	s := newStore(t)
	if err := s.WriteChunk("/f", 0, 0, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 10)
	n, err := s.ReadChunk("/f", 0, 0, dst)
	if err != nil || n != 3 {
		t.Fatalf("short read = %d, %v", n, err)
	}
	n, err = s.ReadChunk("/f", 0, 5, dst)
	if err != nil || n != 0 {
		t.Fatalf("read past end = %d, %v", n, err)
	}
}

func TestWriteAtOffsetWithinChunk(t *testing.T) {
	s := newStore(t)
	if err := s.WriteChunk("/f", 2, 100, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 103)
	n, err := s.ReadChunk("/f", 2, 0, dst)
	if err != nil || n != 103 {
		t.Fatalf("read = %d, %v", n, err)
	}
	if !bytes.Equal(dst[:100], make([]byte, 100)) || string(dst[100:]) != "xyz" {
		t.Fatalf("content = %q", dst)
	}
}

func TestOverlappingWritesLastWins(t *testing.T) {
	s := newStore(t)
	if err := s.WriteChunk("/f", 0, 0, []byte("AAAAAA")); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteChunk("/f", 0, 2, []byte("BB")); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 6)
	if _, err := s.ReadChunk("/f", 0, 0, dst); err != nil {
		t.Fatal(err)
	}
	if string(dst) != "AABBAA" {
		t.Fatalf("content = %q", dst)
	}
}

func TestRemoveChunks(t *testing.T) {
	s := newStore(t)
	for id := meta.ChunkID(0); id < 5; id++ {
		if err := s.WriteChunk("/f", id, 0, []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := s.ChunkIDs("/f")
	if err != nil || len(ids) != 5 {
		t.Fatalf("ChunkIDs = %v, %v", ids, err)
	}
	if err := s.RemoveChunks("/f"); err != nil {
		t.Fatal(err)
	}
	ids, err = s.ChunkIDs("/f")
	if err != nil || len(ids) != 0 {
		t.Fatalf("after remove = %v, %v", ids, err)
	}
	// Idempotent.
	if err := s.RemoveChunks("/f"); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateChunks(t *testing.T) {
	const cs = 100
	s := newStore(t)
	// 3.5 chunks of data.
	for id := meta.ChunkID(0); id < 3; id++ {
		if err := s.WriteChunk("/f", id, 0, bytes.Repeat([]byte{byte(id + 1)}, cs)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WriteChunk("/f", 3, 0, bytes.Repeat([]byte{9}, cs/2)); err != nil {
		t.Fatal(err)
	}

	// Truncate to 250 bytes: chunks 0,1 intact, chunk 2 trimmed to 50,
	// chunk 3 gone.
	if err := s.TruncateChunks("/f", cs, 250); err != nil {
		t.Fatal(err)
	}
	ids, _ := s.ChunkIDs("/f")
	if fmt.Sprint(ids) != "[0 1 2]" {
		t.Fatalf("surviving chunks = %v", ids)
	}
	dst := make([]byte, cs)
	n, err := s.ReadChunk("/f", 2, 0, dst)
	if err != nil || n != 50 {
		t.Fatalf("trimmed chunk read = %d, %v", n, err)
	}

	// Truncate to zero removes everything.
	if err := s.TruncateChunks("/f", cs, 0); err != nil {
		t.Fatal(err)
	}
	ids, _ = s.ChunkIDs("/f")
	if len(ids) != 0 {
		t.Fatalf("chunks after truncate-to-zero: %v", ids)
	}
}

func TestTruncateOnChunkBoundary(t *testing.T) {
	const cs = 64
	s := newStore(t)
	for id := meta.ChunkID(0); id < 4; id++ {
		if err := s.WriteChunk("/f", id, 0, bytes.Repeat([]byte{1}, cs)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.TruncateChunks("/f", cs, 2*cs); err != nil {
		t.Fatal(err)
	}
	ids, _ := s.ChunkIDs("/f")
	if fmt.Sprint(ids) != "[0 1]" {
		t.Fatalf("chunks = %v", ids)
	}
	dst := make([]byte, cs)
	if n, _ := s.ReadChunk("/f", 1, 0, dst); n != cs {
		t.Fatalf("boundary chunk trimmed: %d", n)
	}
}

func TestPathIsolation(t *testing.T) {
	s := newStore(t)
	// Paths that could collide under a naive escape.
	paths := []string{"/a/b", "/a#2fb", "/a#b", "/a/b/c"}
	for i, p := range paths {
		if err := s.WriteChunk(p, 0, 0, []byte{byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range paths {
		dst := make([]byte, 1)
		n, err := s.ReadChunk(p, 0, 0, dst)
		if err != nil || n != 1 || dst[0] != byte(i+1) {
			t.Fatalf("path %q: %d, %v, %v", p, n, err, dst)
		}
	}
	if err := s.RemoveChunks(paths[0]); err != nil {
		t.Fatal(err)
	}
	for i, p := range paths[1:] {
		dst := make([]byte, 1)
		n, _ := s.ReadChunk(p, 0, 0, dst)
		if n != 1 || dst[0] != byte(i+2) {
			t.Fatalf("remove of %q damaged %q", paths[0], p)
		}
	}
}

func TestEscapePathInjective(t *testing.T) {
	f := func(a, b string) bool {
		if a == b {
			return true
		}
		return escapePath(a) != escapePath(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentChunkWrites(t *testing.T) {
	s := newStore(t)
	var wg sync.WaitGroup
	const workers = 16
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := meta.ChunkID(w*50 + i)
				if err := s.WriteChunk("/shared", id, 0, []byte{byte(w), byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	ids, err := s.ChunkIDs("/shared")
	if err != nil || len(ids) != workers*50 {
		t.Fatalf("ChunkIDs = %d, %v", len(ids), err)
	}
}

func TestOSBackend(t *testing.T) {
	osfs, err := vfs.NewOS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(osfs)
	if err := s.WriteChunk("/dir/file", 1, 10, []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 9)
	n, err := s.ReadChunk("/dir/file", 1, 10, dst)
	if err != nil || n != 9 || string(dst) != "persisted" {
		t.Fatalf("os read = %d, %v, %q", n, err, dst)
	}
}
