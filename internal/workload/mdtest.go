// Package workload reimplements the semantics of the two unmodified
// microbenchmarks the paper evaluates with (§IV): mdtest (parallel
// create/stat/remove of zero-byte files in a single directory) and IOR
// (parallel sequential/random data transfers, file-per-process or
// shared-file). They drive the *real* file system through the client
// library, so the functional plane is measured with the same access
// patterns the simulation plane models at scale.
package workload

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/proto"
)

// ClientFactory mints one client per simulated benchmark process, like
// mdtest ranks each linking the interposition library.
type ClientFactory func() (*client.Client, error)

// MDTestConfig shapes a metadata run.
type MDTestConfig struct {
	// Dir is the working directory (created if missing); all files land
	// in this single directory — the paper's hardest PFS case.
	Dir string
	// Workers is the process count.
	Workers int
	// FilesPerWorker is the per-process file count.
	FilesPerWorker int
	// BatchSize > 1 drives every phase through the vectored metadata
	// plane (CreateMany/StatMany/RemoveMany) in groups of BatchSize ops
	// — one RPC per daemon per group instead of one RPC per file.
	// 0 or 1 keeps the per-op protocol.
	BatchSize int
}

// MDTestResult reports one phase triple.
type MDTestResult struct {
	// CreatesPerSec, StatsPerSec, RemovesPerSec are aggregate rates.
	CreatesPerSec, StatsPerSec, RemovesPerSec float64
	// Files is the total file count exercised.
	Files int
}

// RunMDTest executes create, stat and remove phases with a barrier
// between phases (mdtest's structure) and reports aggregate ops/s.
func RunMDTest(factory ClientFactory, cfg MDTestConfig) (MDTestResult, error) {
	if cfg.Workers <= 0 || cfg.FilesPerWorker <= 0 {
		return MDTestResult{}, errors.New("workload: mdtest needs workers and files > 0")
	}
	setup, err := factory()
	if err != nil {
		return MDTestResult{}, err
	}
	if err := setup.Mkdir(cfg.Dir); err != nil && !errors.Is(err, proto.ErrExist) {
		return MDTestResult{}, err
	}

	clients := make([]*client.Client, cfg.Workers)
	for i := range clients {
		c, err := factory()
		if err != nil {
			return MDTestResult{}, err
		}
		clients[i] = c
	}
	name := func(w, i int) string {
		return fmt.Sprintf("%s/mdtest.%d.%d", cfg.Dir, w, i)
	}

	phase := func(fn func(w int) error) (float64, error) {
		var wg sync.WaitGroup
		errs := make([]error, cfg.Workers)
		begin := time.Now()
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				errs[w] = fn(w)
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(begin)
		if err := errors.Join(errs...); err != nil {
			return 0, err
		}
		total := float64(cfg.Workers * cfg.FilesPerWorker)
		return total / elapsed.Seconds(), nil
	}

	// batches yields a worker's file names in groups of BatchSize.
	batches := func(w int, fn func(paths []string) []error) error {
		paths := make([]string, 0, cfg.BatchSize)
		flush := func() error {
			if len(paths) == 0 {
				return nil
			}
			err := errors.Join(fn(paths)...)
			paths = paths[:0]
			return err
		}
		for i := 0; i < cfg.FilesPerWorker; i++ {
			paths = append(paths, name(w, i))
			if len(paths) == cfg.BatchSize {
				if err := flush(); err != nil {
					return err
				}
			}
		}
		return flush()
	}
	batched := cfg.BatchSize > 1

	res := MDTestResult{Files: cfg.Workers * cfg.FilesPerWorker}
	res.CreatesPerSec, err = phase(func(w int) error {
		c := clients[w]
		if batched {
			return batches(w, c.CreateMany)
		}
		for i := 0; i < cfg.FilesPerWorker; i++ {
			fd, err := c.Open(name(w, i), client.O_WRONLY|client.O_CREATE|client.O_EXCL)
			if err != nil {
				return err
			}
			if err := c.Close(fd); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return res, fmt.Errorf("workload: mdtest create: %w", err)
	}
	res.StatsPerSec, err = phase(func(w int) error {
		c := clients[w]
		if batched {
			return batches(w, func(paths []string) []error {
				_, errs := c.StatMany(paths)
				return errs
			})
		}
		for i := 0; i < cfg.FilesPerWorker; i++ {
			if _, err := c.Stat(name(w, i)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return res, fmt.Errorf("workload: mdtest stat: %w", err)
	}
	res.RemovesPerSec, err = phase(func(w int) error {
		c := clients[w]
		if batched {
			return batches(w, c.RemoveMany)
		}
		for i := 0; i < cfg.FilesPerWorker; i++ {
			if err := c.Remove(name(w, i)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return res, fmt.Errorf("workload: mdtest remove: %w", err)
	}
	return res, nil
}
