package workload

import (
	"testing"

	"repro/internal/client"
	"repro/internal/core"
)

func clusterFactory(t *testing.T, nodes int, sizeCacheOps int) ClientFactory {
	t.Helper()
	c, err := core.NewCluster(core.Config{Nodes: nodes, ChunkSize: 8192, SizeCacheOps: sizeCacheOps})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return func() (*client.Client, error) { return c.NewClient() }
}

func TestMDTestRuns(t *testing.T) {
	f := clusterFactory(t, 3, 0)
	res, err := RunMDTest(f, MDTestConfig{Dir: "/mdt", Workers: 4, FilesPerWorker: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Files != 200 {
		t.Fatalf("files = %d", res.Files)
	}
	if res.CreatesPerSec <= 0 || res.StatsPerSec <= 0 || res.RemovesPerSec <= 0 {
		t.Fatalf("rates = %+v", res)
	}
	// All files must be gone after the remove phase.
	c, _ := f()
	ents, err := c.ReadDir("/mdt")
	if err != nil || len(ents) != 0 {
		t.Fatalf("leftovers = %v, %v", ents, err)
	}
}

func TestMDTestBatchedRuns(t *testing.T) {
	f := clusterFactory(t, 3, 0)
	// Batch size deliberately not dividing the per-worker file count, so
	// the final short batch is exercised too.
	res, err := RunMDTest(f, MDTestConfig{Dir: "/mdtb", Workers: 4, FilesPerWorker: 50, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Files != 200 {
		t.Fatalf("files = %d", res.Files)
	}
	if res.CreatesPerSec <= 0 || res.StatsPerSec <= 0 || res.RemovesPerSec <= 0 {
		t.Fatalf("rates = %+v", res)
	}
	c, _ := f()
	ents, err := c.ReadDir("/mdtb")
	if err != nil || len(ents) != 0 {
		t.Fatalf("leftovers = %v, %v", ents, err)
	}
	// A second batched run over the same directory must also work (the
	// create phase sees a clean namespace again).
	if _, err := RunMDTest(f, MDTestConfig{Dir: "/mdtb", Workers: 2, FilesPerWorker: 33, BatchSize: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestMDTestValidation(t *testing.T) {
	f := clusterFactory(t, 1, 0)
	if _, err := RunMDTest(f, MDTestConfig{Dir: "/x", Workers: 0, FilesPerWorker: 5}); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := RunMDTest(f, MDTestConfig{Dir: "/x", Workers: 2, FilesPerWorker: 0}); err == nil {
		t.Fatal("zero files accepted")
	}
}

func TestMDTestReusableDir(t *testing.T) {
	f := clusterFactory(t, 2, 0)
	for i := 0; i < 2; i++ { // second run reuses /again
		if _, err := RunMDTest(f, MDTestConfig{Dir: "/again", Workers: 2, FilesPerWorker: 10}); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}

func TestIORFilePerProcessVerified(t *testing.T) {
	f := clusterFactory(t, 3, 0)
	res, err := RunIOR(f, IORConfig{
		Dir: "/ior", Workers: 4, BlockBytes: 256 * 1024, TransferSize: 16 * 1024,
		Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteMiBps <= 0 || res.ReadMiBps <= 0 {
		t.Fatalf("rates = %+v", res)
	}
}

func TestIORSharedFileVerified(t *testing.T) {
	f := clusterFactory(t, 3, 0)
	_, err := RunIOR(f, IORConfig{
		Dir: "/iorsh", Workers: 4, BlockBytes: 128 * 1024, TransferSize: 8 * 1024,
		Shared: true, Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The shared file's final size covers every worker's last stride.
	c, _ := f()
	info, err := c.Stat("/iorsh/shared.dat")
	if err != nil {
		t.Fatal(err)
	}
	want := int64(4) * 128 * 1024
	if info.Size() != want {
		t.Fatalf("shared size = %d, want %d", info.Size(), want)
	}
}

func TestIORSharedWithSizeCache(t *testing.T) {
	// The paper's §IV-B configuration: shared file plus the client-side
	// size-update cache; correctness must be unchanged.
	f := clusterFactory(t, 3, 16)
	_, err := RunIOR(f, IORConfig{
		Dir: "/iorc", Workers: 4, BlockBytes: 128 * 1024, TransferSize: 8 * 1024,
		Shared: true, Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIORRandomOrderVerified(t *testing.T) {
	f := clusterFactory(t, 2, 0)
	_, err := RunIOR(f, IORConfig{
		Dir: "/iorr", Workers: 3, BlockBytes: 128 * 1024, TransferSize: 8 * 1024,
		Random: true, Verify: true, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIORValidation(t *testing.T) {
	f := clusterFactory(t, 1, 0)
	if _, err := RunIOR(f, IORConfig{Dir: "/x", Workers: 1, BlockBytes: 100, TransferSize: 64}); err == nil {
		t.Fatal("non-multiple block accepted")
	}
	if _, err := RunIOR(f, IORConfig{Dir: "/x", Workers: 0, BlockBytes: 64, TransferSize: 64}); err == nil {
		t.Fatal("zero workers accepted")
	}
}
