package workload

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/proto"
)

// IORConfig shapes a data run, mirroring the IOR options the paper uses:
// transfer size, sequential or random offsets, file-per-process or
// shared-file.
type IORConfig struct {
	// Dir is the working directory.
	Dir string
	// Workers is the process count.
	Workers int
	// BlockBytes is the total bytes each worker moves per phase.
	BlockBytes int64
	// TransferSize is the per-operation I/O size.
	TransferSize int64
	// Random shuffles the transfer order (offsets stay aligned, as in
	// IOR's random mode).
	Random bool
	// Shared writes one shared file with strided per-worker segments
	// (N-to-1); file-per-process otherwise (N-to-N).
	Shared bool
	// Verify re-checks the read phase against the written pattern.
	Verify bool
	// Seed fixes the random transfer order.
	Seed int64
}

// IORResult reports both phases.
type IORResult struct {
	// WriteMiBps and ReadMiBps are aggregate bandwidths.
	WriteMiBps, ReadMiBps float64
	// BytesPerWorker echoes the verified configuration.
	BytesPerWorker int64
}

// RunIOR executes a write phase and then a read phase, each with a
// barrier, and reports aggregate MiB/s.
func RunIOR(factory ClientFactory, cfg IORConfig) (IORResult, error) {
	if cfg.Workers <= 0 || cfg.BlockBytes <= 0 || cfg.TransferSize <= 0 {
		return IORResult{}, errors.New("workload: ior needs workers, block and transfer > 0")
	}
	if cfg.BlockBytes%cfg.TransferSize != 0 {
		return IORResult{}, errors.New("workload: block must be a multiple of transfer size")
	}
	setup, err := factory()
	if err != nil {
		return IORResult{}, err
	}
	if err := setup.Mkdir(cfg.Dir); err != nil && !errors.Is(err, proto.ErrExist) {
		return IORResult{}, err
	}

	clients := make([]*client.Client, cfg.Workers)
	for i := range clients {
		c, err := factory()
		if err != nil {
			return IORResult{}, err
		}
		clients[i] = c
	}

	nTransfers := cfg.BlockBytes / cfg.TransferSize
	filePath := func(w int) string {
		if cfg.Shared {
			return cfg.Dir + "/shared.dat"
		}
		return fmt.Sprintf("%s/rank%d.dat", cfg.Dir, w)
	}
	// offset of transfer i for worker w.
	offset := func(w int, i int64) int64 {
		if cfg.Shared {
			// Strided segments: transfer i of worker w lands at
			// (i*Workers + w) * TransferSize, IOR's segmented layout.
			return (i*int64(cfg.Workers) + int64(w)) * cfg.TransferSize
		}
		return i * cfg.TransferSize
	}
	order := func(w int) []int64 {
		idx := make([]int64, nTransfers)
		for i := range idx {
			idx[i] = int64(i)
		}
		if cfg.Random {
			rnd := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			rnd.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		}
		return idx
	}
	pattern := func(w int, i int64, buf []byte) {
		b := byte(w*31 + int(i%97) + 1)
		for j := range buf {
			buf[j] = b
		}
	}

	if cfg.Shared {
		// The shared file must exist before parallel O_WRONLY opens.
		fd, err := setup.Open(filePath(0), client.O_WRONLY|client.O_CREATE)
		if err != nil {
			return IORResult{}, err
		}
		if err := setup.Close(fd); err != nil {
			return IORResult{}, err
		}
	}

	res := IORResult{BytesPerWorker: cfg.BlockBytes}
	phase := func(write bool) (float64, error) {
		var wg sync.WaitGroup
		errs := make([]error, cfg.Workers)
		begin := time.Now()
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c := clients[w]
				flags := client.O_RDONLY
				if write {
					flags = client.O_WRONLY | client.O_CREATE
				}
				fd, err := c.Open(filePath(w), flags)
				if err != nil {
					errs[w] = err
					return
				}
				// Fsync and Close are the barriers that complete the phase:
				// under the write-behind pipeline in-flight chunk RPCs drain
				// and latched write errors surface here, so both results
				// count — a phase that dropped them would report bandwidth
				// for data that never landed.
				defer func() {
					errs[w] = errors.Join(errs[w], c.Fsync(fd), c.Close(fd))
				}()
				buf := make([]byte, cfg.TransferSize)
				want := make([]byte, cfg.TransferSize)
				for _, i := range order(w) {
					off := offset(w, i)
					if write {
						pattern(w, i, buf)
						if _, err := c.WriteAt(fd, buf, off); err != nil {
							errs[w] = err
							return
						}
					} else {
						if _, err := c.ReadAt(fd, buf, off); err != nil {
							errs[w] = err
							return
						}
						if cfg.Verify {
							pattern(w, i, want)
							if !bytes.Equal(buf, want) {
								errs[w] = fmt.Errorf("workload: verify failed at worker %d transfer %d", w, i)
								return
							}
						}
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(begin)
		if err := errors.Join(errs...); err != nil {
			return 0, err
		}
		total := float64(cfg.BlockBytes) * float64(cfg.Workers)
		return total / (1 << 20) / elapsed.Seconds(), nil
	}

	if res.WriteMiBps, err = phase(true); err != nil {
		return res, fmt.Errorf("workload: ior write: %w", err)
	}
	if res.ReadMiBps, err = phase(false); err != nil {
		return res, fmt.Errorf("workload: ior read: %w", err)
	}
	return res, nil
}
