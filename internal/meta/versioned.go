package meta

import (
	"encoding/binary"
	"fmt"
)

// Versioned metadata records give the flat namespace a time dimension:
// each key can carry a bounded, newest-first history of its states, one
// entry per snapshot epoch that observed a distinct state. The wire
// shape is chosen so every record the pre-snapshot code ever wrote is
// still valid: a plain 25-byte Metadata record decodes as a single live
// version at epoch 0, and records stay in that legacy shape until the
// first snapshot pins an epoch. Multi-version records are discriminated
// by a magic first byte that can never appear in a legacy record (no
// valid Mode is 0xF5).
//
// Versioned wire shape:
//
//	[0xF5] then, newest first, per version:
//	  [u64 epoch] [u8 flags] [25-byte Metadata payload, absent when
//	  flags has the tombstone bit]
//
// Epochs are strictly decreasing; a record holds at most MaxVersions
// entries (the bounded retention window — history beyond the window is
// compacted away, oldest first).

// MaxVersions bounds a record's retention window. Snapshot GC keeps the
// versions retained tags still need; the cap is the hard ceiling even
// when more tags are live.
const MaxVersions = 8

// versionedMagic discriminates multi-version records from legacy
// 25-byte Metadata records. 0xF5 is not a valid Mode byte.
const versionedMagic = 0xF5

// versionTombstone marks a version recording a removal: the key did not
// exist at that epoch.
const versionTombstone = 1 << 0

// versionHdrSize is the per-version fixed header: epoch plus flags.
const versionHdrSize = 8 + 1

// Version is one historical state of a metadata record.
type Version struct {
	// Epoch is the snapshot epoch this state was written under.
	Epoch uint64
	// Tombstone records a removal; Meta is meaningless when set.
	Tombstone bool
	// Meta is the record's state at Epoch.
	Meta Metadata
}

// VersionedMeta is a per-key history, newest first with strictly
// decreasing epochs. The vkv-style Versions accessor on the client
// surfaces exactly this slice.
type VersionedMeta struct {
	// V holds the versions, newest first. Never empty after a
	// successful decode.
	V []Version
}

// Encode serializes the history. A single live version at epoch 0 — the
// state of every record before any snapshot exists — encodes in the
// legacy 25-byte shape so snapshot-free deployments never pay the
// versioned framing.
func (vm *VersionedMeta) Encode() []byte {
	if len(vm.V) == 1 && !vm.V[0].Tombstone && vm.V[0].Epoch == 0 {
		return vm.V[0].Meta.Encode()
	}
	n := 1
	for i := range vm.V {
		n += versionHdrSize
		if !vm.V[i].Tombstone {
			n += metadataWireSize
		}
	}
	b := make([]byte, 1, n)
	b[0] = versionedMagic
	for i := range vm.V {
		v := &vm.V[i]
		var hdr [versionHdrSize]byte
		binary.LittleEndian.PutUint64(hdr[:8], v.Epoch)
		if v.Tombstone {
			hdr[8] = versionTombstone
		}
		b = append(b, hdr[:]...)
		if !v.Tombstone {
			b = append(b, v.Meta.Encode()...)
		}
	}
	return b
}

// DecodeVersionedMeta parses a stored record in either shape. Errors
// poison the whole record: a malformed history never yields a partial
// one.
func DecodeVersionedMeta(b []byte) (VersionedMeta, error) {
	if len(b) == metadataWireSize && b[0] != versionedMagic {
		md, err := DecodeMetadata(b)
		if err != nil {
			return VersionedMeta{}, err
		}
		return VersionedMeta{V: []Version{{Meta: md}}}, nil
	}
	if len(b) < 1 || b[0] != versionedMagic {
		return VersionedMeta{}, fmt.Errorf("%w: %d bytes, no version magic", ErrBadMetadata, len(b))
	}
	rest := b[1:]
	var vm VersionedMeta
	for len(rest) > 0 {
		if len(vm.V) == MaxVersions {
			return VersionedMeta{}, fmt.Errorf("%w: more than %d versions", ErrBadMetadata, MaxVersions)
		}
		if len(rest) < versionHdrSize {
			return VersionedMeta{}, fmt.Errorf("%w: truncated version header", ErrBadMetadata)
		}
		v := Version{Epoch: binary.LittleEndian.Uint64(rest[:8])}
		flags := rest[8]
		rest = rest[versionHdrSize:]
		if flags&^versionTombstone != 0 {
			return VersionedMeta{}, fmt.Errorf("%w: unknown version flags %#x", ErrBadMetadata, flags)
		}
		v.Tombstone = flags&versionTombstone != 0
		if !v.Tombstone {
			if len(rest) < metadataWireSize {
				return VersionedMeta{}, fmt.Errorf("%w: truncated version payload", ErrBadMetadata)
			}
			md, err := DecodeMetadata(rest[:metadataWireSize])
			if err != nil {
				return VersionedMeta{}, err
			}
			if md.Mode != ModeRegular && md.Mode != ModeDir {
				return VersionedMeta{}, fmt.Errorf("%w: bad mode %d in version payload", ErrBadMetadata, md.Mode)
			}
			v.Meta = md
			rest = rest[metadataWireSize:]
		}
		if n := len(vm.V); n > 0 && vm.V[n-1].Epoch <= v.Epoch {
			return VersionedMeta{}, fmt.Errorf("%w: epochs not strictly decreasing", ErrBadMetadata)
		}
		vm.V = append(vm.V, v)
	}
	if len(vm.V) == 0 {
		return VersionedMeta{}, fmt.Errorf("%w: empty version list", ErrBadMetadata)
	}
	return vm, nil
}

// Newest returns the most recent version.
func (vm *VersionedMeta) Newest() *Version { return &vm.V[0] }

// Live returns the current metadata; ok is false when the newest
// version is a tombstone (the key reads as removed).
func (vm *VersionedMeta) Live() (md Metadata, ok bool) {
	v := vm.Newest()
	return v.Meta, !v.Tombstone
}

// At returns the state visible at snapshot epoch s — the newest version
// with Epoch <= s. ok is false when the key did not exist at s (no such
// version, or it is a tombstone).
func (vm *VersionedMeta) At(s uint64) (md Metadata, ok bool) {
	for i := range vm.V {
		if vm.V[i].Epoch <= s {
			return vm.V[i].Meta, !vm.V[i].Tombstone
		}
	}
	return Metadata{}, false
}

// Stamp records md as the state at epoch. When the newest version
// already carries that epoch (or a later one — a write racing a
// snapshot commit folds into the state the snapshot captures) it is
// overwritten in place; otherwise a new newest version is pushed.
func (vm *VersionedMeta) Stamp(epoch uint64, md Metadata) {
	if len(vm.V) > 0 && vm.V[0].Epoch >= epoch {
		vm.V[0].Tombstone = false
		vm.V[0].Meta = md
		return
	}
	vm.V = append(vm.V, Version{})
	copy(vm.V[1:], vm.V)
	vm.V[0] = Version{Epoch: epoch, Meta: md}
}

// StampTombstone records a removal at epoch, same folding rule as
// Stamp.
func (vm *VersionedMeta) StampTombstone(epoch uint64) {
	if len(vm.V) > 0 && vm.V[0].Epoch >= epoch {
		vm.V[0].Tombstone = true
		vm.V[0].Meta = Metadata{}
		return
	}
	vm.V = append(vm.V, Version{})
	copy(vm.V[1:], vm.V)
	vm.V[0] = Version{Epoch: epoch, Tombstone: true}
}

// Compact drops versions no retained snapshot can see: it keeps the
// newest version plus, for each retained epoch, the version visible at
// it, then enforces MaxVersions by dropping oldest. retained need not
// be sorted.
func (vm *VersionedMeta) Compact(retained []uint64) {
	if len(vm.V) > 1 {
		keep := make([]bool, len(vm.V))
		keep[0] = true
		for _, s := range retained {
			for i := range vm.V {
				if vm.V[i].Epoch <= s {
					keep[i] = true
					break
				}
			}
		}
		out := vm.V[:0]
		for i := range vm.V {
			if keep[i] {
				out = append(out, vm.V[i])
			}
		}
		vm.V = out
	}
	if len(vm.V) > MaxVersions {
		vm.V = vm.V[:MaxVersions]
	}
}
