package meta

import (
	"testing"
	"testing/quick"
)

func TestChunksBasic(t *testing.T) {
	const cs = 512 * 1024
	tests := []struct {
		name           string
		offset, length int64
		first, last    ChunkID
		firstOff       int64
		lastLen        int64
	}{
		{"whole first chunk", 0, cs, 0, 0, 0, cs},
		{"one byte at zero", 0, 1, 0, 0, 0, 1},
		{"one byte at chunk end", cs - 1, 1, 0, 0, cs - 1, cs},
		{"one byte at chunk start", cs, 1, 1, 1, 0, 1},
		{"straddle two chunks", cs - 10, 20, 0, 1, cs - 10, 10},
		{"three chunks", cs / 2, 2 * cs, 0, 2, cs / 2, cs / 2},
		{"aligned two chunks", cs, 2 * cs, 1, 2, 0, cs},
	}
	for _, tt := range tests {
		r := Chunks(tt.offset, tt.length, cs)
		if r.First != tt.first || r.Last != tt.last || r.FirstOffset != tt.firstOff || r.LastLen != tt.lastLen {
			t.Errorf("%s: Chunks(%d,%d) = %+v, want first=%d last=%d firstOff=%d lastLen=%d",
				tt.name, tt.offset, tt.length, r, tt.first, tt.last, tt.firstOff, tt.lastLen)
		}
	}
}

func TestChunksPanicsOnBadArgs(t *testing.T) {
	for _, args := range [][3]int64{{-1, 1, 4}, {0, 0, 4}, {0, -5, 4}, {0, 1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Chunks(%v) did not panic", args)
				}
			}()
			Chunks(args[0], args[1], args[2])
		}()
	}
}

// TestSlicesPartitionProperty checks the central invariant the client I/O
// path relies on: Slices partitions the byte range exactly, in order, with
// contiguous buffer offsets, chunk-local spans inside chunk bounds, and
// total length equal to the request.
func TestSlicesPartitionProperty(t *testing.T) {
	f := func(off uint32, length uint16, csExp uint8) bool {
		chunkSize := int64(1) << (3 + csExp%12) // 8 B .. 16 KiB
		offset := int64(off % (1 << 20))
		l := int64(length)%(4*chunkSize) + 1
		slices := Slices(offset, l, chunkSize)
		if len(slices) == 0 {
			return false
		}
		bufOff := int64(0)
		pos := offset
		for i, s := range slices {
			if s.BufOff != bufOff {
				return false
			}
			if s.Len <= 0 || s.Len > chunkSize {
				return false
			}
			if s.ChunkOff < 0 || s.ChunkOff+s.Len > chunkSize {
				return false
			}
			// Global file offset covered by this slice must continue pos.
			if int64(s.ID)*chunkSize+s.ChunkOff != pos {
				return false
			}
			if i > 0 && s.ID != slices[i-1].ID+1 {
				return false
			}
			bufOff += s.Len
			pos += s.Len
		}
		return bufOff == l && pos == offset+l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestSlicesZeroLength(t *testing.T) {
	if s := Slices(100, 0, 512); s != nil {
		t.Fatalf("Slices(_, 0, _) = %v, want nil", s)
	}
}

func TestChunksForSize(t *testing.T) {
	const cs = 512
	tests := []struct {
		size, want int64
	}{
		{0, 0}, {1, 1}, {511, 1}, {512, 1}, {513, 2}, {1024, 2}, {1025, 3}, {-5, 0},
	}
	for _, tt := range tests {
		if got := ChunksForSize(tt.size, cs); got != tt.want {
			t.Errorf("ChunksForSize(%d) = %d, want %d", tt.size, got, tt.want)
		}
	}
}

func TestCountMatchesSlices(t *testing.T) {
	f := func(off uint16, length uint16) bool {
		const cs = 256
		o, l := int64(off), int64(length)+1
		return Chunks(o, l, cs).Count() == int64(len(Slices(o, l, cs)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
