package meta

import (
	"testing"
	"testing/quick"
)

func TestMetadataRoundTrip(t *testing.T) {
	m := Metadata{Mode: ModeRegular, Size: 123456789, CTimeNS: 42, MTimeNS: 43}
	got, err := DecodeMetadata(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("round trip = %+v, want %+v", got, m)
	}
}

func TestMetadataRoundTripProperty(t *testing.T) {
	f := func(mode bool, size, ct, mt int64) bool {
		m := Metadata{Mode: ModeRegular, Size: size, CTimeNS: ct, MTimeNS: mt}
		if mode {
			m.Mode = ModeDir
		}
		got, err := DecodeMetadata(m.Encode())
		return err == nil && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeMetadataRejectsBadLength(t *testing.T) {
	for _, n := range []int{0, 1, 24, 26, 100} {
		if _, err := DecodeMetadata(make([]byte, n)); err == nil {
			t.Errorf("DecodeMetadata accepted %d bytes", n)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeRegular.String() != "file" || ModeDir.String() != "dir" {
		t.Fatalf("unexpected mode strings: %q %q", ModeRegular, ModeDir)
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode must still format")
	}
}

func TestIsDir(t *testing.T) {
	d := Metadata{Mode: ModeDir}
	f := Metadata{Mode: ModeRegular}
	if !d.IsDir() || f.IsDir() {
		t.Fatal("IsDir misclassifies")
	}
}
