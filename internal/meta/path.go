// Package meta defines GekkoFS metadata: path handling for the flat
// namespace, the on-wire/on-disk metadata record, and the chunk arithmetic
// shared by clients and daemons.
//
// GekkoFS keeps a flat namespace: the key-value store maps an absolute,
// normalized path directly to its metadata record. There are no directory
// entry lists; a directory listing is reconstructed by scanning keys whose
// parent equals the listed directory (see internal/daemon).
package meta

import (
	"errors"
	"strings"
)

// Root is the canonical root path of a GekkoFS namespace.
const Root = "/"

// Path errors returned by Clean and related helpers.
var (
	// ErrRelativePath reports a path that does not start with '/'.
	// GekkoFS has no per-process working directory; the client library
	// resolves everything to absolute paths before forwarding.
	ErrRelativePath = errors.New("meta: path is not absolute")
	// ErrEmptyPath reports an empty path string.
	ErrEmptyPath = errors.New("meta: empty path")
	// ErrBadComponent reports a path with "." or ".." components, which
	// GekkoFS rejects at the interposition boundary (the paper's shim
	// normalizes them against the client's CWD before forwarding; our
	// Go-native client requires callers to pass normalized paths).
	ErrBadComponent = errors.New(`meta: path contains "." or ".." component`)
)

// Clean normalizes p into the canonical form used as the KV-store key:
// absolute, no duplicate slashes, no trailing slash (except the root
// itself), and no "." or ".." components. It returns an error if the path
// is relative, empty, or contains dot components.
func Clean(p string) (string, error) {
	if p == "" {
		return "", ErrEmptyPath
	}
	if p[0] != '/' {
		return "", ErrRelativePath
	}
	// Fast path: already canonical.
	if isCanonical(p) {
		return p, nil
	}
	parts := strings.Split(p, "/")
	out := make([]string, 0, len(parts))
	for _, c := range parts {
		switch c {
		case "":
			// duplicate or trailing slash
		case ".", "..":
			return "", ErrBadComponent
		default:
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return Root, nil
	}
	return "/" + strings.Join(out, "/"), nil
}

// isCanonical reports whether p is already in canonical form, so Clean can
// avoid allocating in the common case. It scans components in place.
func isCanonical(p string) bool {
	if p == Root {
		return true
	}
	if p == "" || p[0] != '/' || p[len(p)-1] == '/' {
		return false
	}
	start := 1 // start of current component
	for i := 1; i <= len(p); i++ {
		if i == len(p) || p[i] == '/' {
			comp := p[start:i]
			if comp == "" || comp == "." || comp == ".." {
				return false
			}
			start = i + 1
		}
	}
	return true
}

// Parent returns the parent directory of a canonical path. The parent of
// the root is the root itself.
func Parent(p string) string {
	if p == Root {
		return Root
	}
	i := strings.LastIndexByte(p, '/')
	if i <= 0 {
		return Root
	}
	return p[:i]
}

// Base returns the final component of a canonical path. The base of the
// root is "/".
func Base(p string) string {
	if p == Root {
		return Root
	}
	i := strings.LastIndexByte(p, '/')
	return p[i+1:]
}

// IsChildOf reports whether canonical path p is a direct child of the
// canonical directory dir (depth exactly one below dir). This is the
// predicate daemons evaluate when scanning their local KV store to answer
// a readdir request.
func IsChildOf(p, dir string) bool {
	if p == Root {
		return false
	}
	var prefixLen int
	if dir == Root {
		prefixLen = 1
	} else {
		if len(p) <= len(dir)+1 || p[:len(dir)] != dir || p[len(dir)] != '/' {
			return false
		}
		prefixLen = len(dir) + 1
	}
	rest := p[prefixLen:]
	return rest != "" && !strings.ContainsRune(rest, '/')
}

// Depth returns the number of components in a canonical path; the root has
// depth zero.
func Depth(p string) int {
	if p == Root {
		return 0
	}
	return strings.Count(p, "/")
}
