package meta

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestClean(t *testing.T) {
	tests := []struct {
		in      string
		want    string
		wantErr error
	}{
		{"/", "/", nil},
		{"//", "/", nil},
		{"///", "/", nil},
		{"/a", "/a", nil},
		{"/a/", "/a", nil},
		{"/a//b", "/a/b", nil},
		{"//a///b//", "/a/b", nil},
		{"/a/b/c", "/a/b/c", nil},
		{"/file.txt", "/file.txt", nil},
		{"/a b/c d", "/a b/c d", nil},
		{"", "", ErrEmptyPath},
		{"a/b", "", ErrRelativePath},
		{"./a", "", ErrRelativePath},
		{"/a/./b", "", ErrBadComponent},
		{"/a/../b", "", ErrBadComponent},
		{"/..", "", ErrBadComponent},
		{"/.", "", ErrBadComponent},
	}
	for _, tt := range tests {
		got, err := Clean(tt.in)
		if err != tt.wantErr {
			t.Errorf("Clean(%q) error = %v, want %v", tt.in, err, tt.wantErr)
			continue
		}
		if got != tt.want {
			t.Errorf("Clean(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestCleanIdempotent(t *testing.T) {
	// Property: Clean(Clean(p)) == Clean(p) for any p that cleans.
	f := func(parts []string) bool {
		p := "/" + strings.Join(parts, "/")
		c1, err := Clean(p)
		if err != nil {
			return true // rejected input; nothing to check
		}
		c2, err := Clean(c1)
		return err == nil && c1 == c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCleanCanonicalFastPath(t *testing.T) {
	// Canonical inputs must come back unchanged (and ideally without
	// reallocation; we check value equality which is the observable part).
	for _, p := range []string{"/", "/a", "/a/b", "/x1/y2/z3", "/with space/x"} {
		got, err := Clean(p)
		if err != nil || got != p {
			t.Errorf("Clean(%q) = %q, %v; want unchanged", p, got, err)
		}
	}
}

func TestParentBase(t *testing.T) {
	tests := []struct {
		p, parent, base string
	}{
		{"/", "/", "/"},
		{"/a", "/", "a"},
		{"/a/b", "/a", "b"},
		{"/a/b/c", "/a/b", "c"},
	}
	for _, tt := range tests {
		if got := Parent(tt.p); got != tt.parent {
			t.Errorf("Parent(%q) = %q, want %q", tt.p, got, tt.parent)
		}
		if got := Base(tt.p); got != tt.base {
			t.Errorf("Base(%q) = %q, want %q", tt.p, got, tt.base)
		}
	}
}

func TestIsChildOf(t *testing.T) {
	tests := []struct {
		p, dir string
		want   bool
	}{
		{"/a", "/", true},
		{"/a/b", "/", false},
		{"/a/b", "/a", true},
		{"/a/b/c", "/a", false},
		{"/a/b/c", "/a/b", true},
		{"/ab", "/a", false}, // prefix but not component boundary
		{"/a", "/a", false},
		{"/", "/", false},
		{"/a/bb", "/a/b", false},
	}
	for _, tt := range tests {
		if got := IsChildOf(tt.p, tt.dir); got != tt.want {
			t.Errorf("IsChildOf(%q, %q) = %v, want %v", tt.p, tt.dir, got, tt.want)
		}
	}
}

func TestIsChildOfConsistentWithParent(t *testing.T) {
	// Property: for canonical p != "/", IsChildOf(p, Parent(p)) is true and
	// IsChildOf(p, other) is false for any other canonical dir.
	f := func(parts []string) bool {
		p := "/" + strings.Join(parts, "/")
		c, err := Clean(p)
		if err != nil || c == Root {
			return true
		}
		return IsChildOf(c, Parent(c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDepth(t *testing.T) {
	tests := []struct {
		p    string
		want int
	}{
		{"/", 0},
		{"/a", 1},
		{"/a/b", 2},
		{"/a/b/c", 3},
	}
	for _, tt := range tests {
		if got := Depth(tt.p); got != tt.want {
			t.Errorf("Depth(%q) = %d, want %d", tt.p, got, tt.want)
		}
	}
}
