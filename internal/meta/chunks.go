package meta

// DefaultChunkSize is the paper's internal chunk size: 512 KiB.
const DefaultChunkSize = 512 * 1024

// ChunkID identifies one fixed-size chunk of a file. Chunk 0 covers bytes
// [0, ChunkSize), chunk 1 covers [ChunkSize, 2*ChunkSize), and so on.
type ChunkID uint64

// ChunkRange describes the chunk-aligned decomposition of a byte range
// [Offset, Offset+Length). Clients use it to split a read or write into
// per-chunk RPCs; daemons use it to locate chunk files.
type ChunkRange struct {
	// First and Last are the inclusive chunk IDs touched by the range.
	First, Last ChunkID
	// FirstOffset is the byte offset inside the first chunk at which the
	// range starts.
	FirstOffset int64
	// LastLen is the number of bytes of the last chunk covered by the
	// range (1..chunkSize). For single-chunk ranges it is the range length
	// plus FirstOffset capped at chunk end minus FirstOffset; see Slice.
	LastLen int64
}

// Chunks computes the chunk decomposition of [offset, offset+length) for
// the given chunk size. Length must be > 0 and offset >= 0; chunkSize must
// be > 0. The zero-length case is the caller's fast path (no RPCs).
func Chunks(offset, length, chunkSize int64) ChunkRange {
	if length <= 0 || offset < 0 || chunkSize <= 0 {
		panic("meta: Chunks requires offset >= 0, length > 0, chunkSize > 0")
	}
	end := offset + length // exclusive
	first := offset / chunkSize
	last := (end - 1) / chunkSize
	return ChunkRange{
		First:       ChunkID(first),
		Last:        ChunkID(last),
		FirstOffset: offset - first*chunkSize,
		LastLen:     end - last*chunkSize,
	}
}

// Count returns the number of chunks in the range.
func (r ChunkRange) Count() int64 { return int64(r.Last-r.First) + 1 }

// ChunkSlice describes the byte span of one chunk within a larger I/O
// buffer: buffer bytes [BufOff, BufOff+Len) map to chunk bytes
// [ChunkOff, ChunkOff+Len).
type ChunkSlice struct {
	// ID is the chunk the slice belongs to.
	ID ChunkID
	// ChunkOff is the offset inside the chunk file.
	ChunkOff int64
	// BufOff is the offset inside the caller's I/O buffer.
	BufOff int64
	// Len is the span length in bytes.
	Len int64
}

// Slices enumerates the per-chunk spans of [offset, offset+length). The
// result is ordered by chunk ID and partitions the buffer exactly:
// the BufOff/Len pairs are contiguous and sum to length.
func Slices(offset, length, chunkSize int64) []ChunkSlice {
	if length == 0 {
		return nil
	}
	r := Chunks(offset, length, chunkSize)
	out := make([]ChunkSlice, 0, r.Count())
	bufOff := int64(0)
	for id := r.First; ; id++ {
		chunkOff := int64(0)
		if id == r.First {
			chunkOff = r.FirstOffset
		}
		spanEnd := chunkSize
		if id == r.Last {
			spanEnd = r.LastLen
		}
		l := spanEnd - chunkOff
		out = append(out, ChunkSlice{ID: id, ChunkOff: chunkOff, BufOff: bufOff, Len: l})
		bufOff += l
		if id == r.Last {
			break
		}
	}
	return out
}

// ChunksForSize returns the number of chunk files a file of the given size
// occupies; size 0 occupies none.
func ChunksForSize(size, chunkSize int64) int64 {
	if size <= 0 {
		return 0
	}
	return (size + chunkSize - 1) / chunkSize
}
