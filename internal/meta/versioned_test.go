package meta

import (
	"bytes"
	"reflect"
	"testing"
)

func mdAt(size int64) Metadata {
	return Metadata{Mode: ModeRegular, Size: size, CTimeNS: 100, MTimeNS: 200}
}

func TestVersionedLegacyRoundTrip(t *testing.T) {
	md := mdAt(42)
	vm := VersionedMeta{V: []Version{{Meta: md}}}
	enc := vm.Encode()
	if len(enc) != metadataWireSize {
		t.Fatalf("single live epoch-0 version encoded to %d bytes, want legacy %d", len(enc), metadataWireSize)
	}
	got, err := DecodeVersionedMeta(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vm) {
		t.Fatalf("round trip changed record: %+v != %+v", got, vm)
	}
	live, ok := got.Live()
	if !ok || live != md {
		t.Fatalf("Live() = %+v, %v", live, ok)
	}
}

func TestVersionedHistoryRoundTrip(t *testing.T) {
	vm := VersionedMeta{V: []Version{
		{Epoch: 7, Meta: mdAt(300)},
		{Epoch: 4, Tombstone: true},
		{Epoch: 1, Meta: mdAt(100)},
	}}
	enc := vm.Encode()
	if enc[0] != versionedMagic {
		t.Fatalf("multi-version record lacks magic: %x", enc[0])
	}
	got, err := DecodeVersionedMeta(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vm) {
		t.Fatalf("round trip changed record: %+v != %+v", got, vm)
	}
}

func TestVersionedAt(t *testing.T) {
	vm := VersionedMeta{V: []Version{
		{Epoch: 7, Meta: mdAt(300)},
		{Epoch: 4, Tombstone: true},
		{Epoch: 1, Meta: mdAt(100)},
	}}
	if _, ok := vm.At(0); ok {
		t.Fatal("epoch 0 predates the key, At must report absent")
	}
	for _, s := range []uint64{1, 2, 3} {
		md, ok := vm.At(s)
		if !ok || md.Size != 100 {
			t.Fatalf("At(%d) = %+v, %v; want size 100", s, md, ok)
		}
	}
	for _, s := range []uint64{4, 5, 6} {
		if _, ok := vm.At(s); ok {
			t.Fatalf("At(%d) saw through a tombstone", s)
		}
	}
	for _, s := range []uint64{7, 8, 99} {
		md, ok := vm.At(s)
		if !ok || md.Size != 300 {
			t.Fatalf("At(%d) = %+v, %v; want size 300", s, md, ok)
		}
	}
}

func TestVersionedStamp(t *testing.T) {
	vm := VersionedMeta{V: []Version{{Epoch: 0, Meta: mdAt(10)}}}
	vm.Stamp(0, mdAt(20)) // same epoch folds in place
	if len(vm.V) != 1 || vm.V[0].Meta.Size != 20 {
		t.Fatalf("same-epoch stamp pushed a version: %+v", vm.V)
	}
	vm.Stamp(3, mdAt(30)) // later epoch pushes
	if len(vm.V) != 2 || vm.V[0].Epoch != 3 || vm.V[1].Meta.Size != 20 {
		t.Fatalf("later-epoch stamp: %+v", vm.V)
	}
	vm.Stamp(2, mdAt(40)) // write racing a commit folds into the newest
	if len(vm.V) != 2 || vm.V[0].Meta.Size != 40 || vm.V[0].Epoch != 3 {
		t.Fatalf("racing stamp: %+v", vm.V)
	}
	vm.StampTombstone(5)
	if len(vm.V) != 3 || !vm.V[0].Tombstone || vm.V[0].Epoch != 5 {
		t.Fatalf("tombstone stamp: %+v", vm.V)
	}
	if _, ok := vm.Live(); ok {
		t.Fatal("tombstoned record still live")
	}
}

func TestVersionedCompact(t *testing.T) {
	vm := VersionedMeta{V: []Version{
		{Epoch: 9, Meta: mdAt(900)},
		{Epoch: 6, Meta: mdAt(600)},
		{Epoch: 4, Meta: mdAt(400)},
		{Epoch: 2, Meta: mdAt(200)},
	}}
	// Retain {6, 2}: epoch 6 sees the epoch-6 version, epoch 2 the
	// epoch-2 one; the newest always survives; epoch 4 is unreachable.
	vm.Compact([]uint64{6, 2})
	want := []uint64{9, 6, 2}
	if len(vm.V) != len(want) {
		t.Fatalf("compact kept %d versions: %+v", len(vm.V), vm.V)
	}
	for i, e := range want {
		if vm.V[i].Epoch != e {
			t.Fatalf("compact kept epochs %+v, want %v", vm.V, want)
		}
	}
	// No retained epochs: only the newest survives.
	vm.Compact(nil)
	if len(vm.V) != 1 || vm.V[0].Epoch != 9 {
		t.Fatalf("compact(nil) kept %+v", vm.V)
	}
}

func TestVersionedCompactCap(t *testing.T) {
	var vm VersionedMeta
	var retained []uint64
	for e := uint64(1); e <= MaxVersions+4; e++ {
		vm.Stamp(e, mdAt(int64(e)))
		retained = append(retained, e)
		vm.Compact(retained)
	}
	if len(vm.V) != MaxVersions {
		t.Fatalf("retention window holds %d versions, want cap %d", len(vm.V), MaxVersions)
	}
	if vm.V[0].Epoch != MaxVersions+4 {
		t.Fatalf("cap dropped the newest version: %+v", vm.V)
	}
}

func TestVersionedDecodeRejects(t *testing.T) {
	live := VersionedMeta{V: []Version{{Epoch: 3, Meta: mdAt(1)}, {Epoch: 1, Meta: mdAt(2)}}}
	valid := live.Encode()
	cases := map[string][]byte{
		"empty":                  {},
		"magic only":             {versionedMagic},
		"truncated header":       valid[:5],
		"truncated payload":      valid[:len(valid)-3],
		"legacy with magic mode": append([]byte{versionedMagic}, bytes.Repeat([]byte{0}, metadataWireSize-1)...),
	}
	nonDecreasing := VersionedMeta{V: []Version{{Epoch: 1, Meta: mdAt(1)}, {Epoch: 3, Meta: mdAt(2)}}}
	// Encode doesn't validate ordering; build the hostile frame by hand.
	bad := []byte{versionedMagic}
	for i := range nonDecreasing.V {
		var hdr [versionHdrSize]byte
		hdr[0] = byte(nonDecreasing.V[i].Epoch)
		bad = append(bad, hdr[:]...)
		bad = append(bad, nonDecreasing.V[i].Meta.Encode()...)
	}
	cases["non-decreasing epochs"] = bad
	for name, frame := range cases {
		if _, err := DecodeVersionedMeta(frame); err == nil {
			t.Errorf("%s: decode accepted a malformed record", name)
		}
	}
}

// FuzzDecodeVersionedMeta throws hostile frames at the versioned record
// decoder. Properties: no panic, no allocation beyond what the frame
// can justify, errors poison the whole record, and every accepted frame
// re-encodes to an identical decode (canonicalization).
func FuzzDecodeVersionedMeta(f *testing.F) {
	legacy := mdAt(42)
	f.Add(legacy.Encode())
	multi := VersionedMeta{V: []Version{
		{Epoch: 7, Meta: mdAt(300)},
		{Epoch: 4, Tombstone: true},
		{Epoch: 1, Meta: mdAt(100)},
	}}
	valid := multi.Encode()
	f.Add(append([]byte(nil), valid...))
	f.Add(append([]byte(nil), valid[:len(valid)-4]...))
	f.Add([]byte{versionedMagic})
	f.Add([]byte{})
	hostile := []byte{versionedMagic}
	for i := 0; i < MaxVersions+2; i++ { // too many versions
		var hdr [versionHdrSize]byte
		hdr[0] = byte(MaxVersions + 2 - i)
		hdr[8] = versionTombstone
		hostile = append(hostile, hdr[:]...)
	}
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		vm, err := DecodeVersionedMeta(data)
		if err != nil {
			if vm.V != nil {
				t.Fatal("poisoned decode still returned versions")
			}
			return
		}
		if len(vm.V) == 0 || len(vm.V) > MaxVersions {
			t.Fatalf("accepted record holds %d versions", len(vm.V))
		}
		if len(vm.V)*versionHdrSize > len(data) {
			t.Fatalf("decoded %d versions from a %d-byte frame", len(vm.V), len(data))
		}
		for i := 1; i < len(vm.V); i++ {
			if vm.V[i].Epoch >= vm.V[i-1].Epoch {
				t.Fatalf("non-decreasing epochs survived decode: %+v", vm.V)
			}
		}
		re := vm.Encode()
		got, err := DecodeVersionedMeta(re)
		if err != nil {
			t.Fatalf("re-encode does not decode: %v", err)
		}
		if !reflect.DeepEqual(got, vm) {
			t.Fatalf("record changed across re-encode: %+v != %+v", got, vm)
		}
	})
}
