package meta

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Mode distinguishes the two object kinds GekkoFS knows about. The paper's
// relaxed POSIX drops permissions, ownership and links, so a single byte
// suffices.
type Mode uint8

// Object kinds stored in a metadata record.
const (
	// ModeRegular marks a regular file.
	ModeRegular Mode = iota
	// ModeDir marks a directory. Directories exist only as markers in the
	// flat namespace; they hold no entry lists.
	ModeDir
)

// String returns "file" or "dir".
func (m Mode) String() string {
	switch m {
	case ModeRegular:
		return "file"
	case ModeDir:
		return "dir"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Metadata is the value stored under a path key in the daemon-local KV
// store. It deliberately carries only what the paper's relaxed-POSIX
// surface needs: kind, size and coarse timestamps. No permissions, no link
// counts, no owner.
type Metadata struct {
	// Mode is the object kind.
	Mode Mode
	// Size is the file size in bytes; zero for directories.
	Size int64
	// CTimeNS is the creation time in UNIX nanoseconds.
	CTimeNS int64
	// MTimeNS is the last-modification time in UNIX nanoseconds. GekkoFS
	// updates it on size-changing operations only (synchronous design,
	// no atime tracking).
	MTimeNS int64
}

// metadataWireSize is the fixed encoded size of a Metadata record.
const metadataWireSize = 1 + 8 + 8 + 8

// ErrBadMetadata reports a malformed encoded metadata record.
var ErrBadMetadata = errors.New("meta: malformed metadata record")

// Encode serializes m into a fixed-size little-endian record. The encoding
// plays the role of GekkoFS's packed metadata string stored in RocksDB.
func (m *Metadata) Encode() []byte {
	b := make([]byte, metadataWireSize)
	b[0] = byte(m.Mode)
	binary.LittleEndian.PutUint64(b[1:], uint64(m.Size))
	binary.LittleEndian.PutUint64(b[9:], uint64(m.CTimeNS))
	binary.LittleEndian.PutUint64(b[17:], uint64(m.MTimeNS))
	return b
}

// DecodeMetadata parses a record produced by Encode.
func DecodeMetadata(b []byte) (Metadata, error) {
	if len(b) != metadataWireSize {
		return Metadata{}, fmt.Errorf("%w: %d bytes", ErrBadMetadata, len(b))
	}
	return Metadata{
		Mode:    Mode(b[0]),
		Size:    int64(binary.LittleEndian.Uint64(b[1:])),
		CTimeNS: int64(binary.LittleEndian.Uint64(b[9:])),
		MTimeNS: int64(binary.LittleEndian.Uint64(b[17:])),
	}, nil
}

// IsDir reports whether the record describes a directory.
func (m *Metadata) IsDir() bool { return m.Mode == ModeDir }

// DirEntry is one element of a directory listing as returned by the
// daemons' readdir scan.
type DirEntry struct {
	// Name is the entry's final path component.
	Name string
	// IsDir reports whether the entry is a directory.
	IsDir bool
	// Size is the file size at scan time (eventually consistent).
	Size int64
}
