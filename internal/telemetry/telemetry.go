// Package telemetry is the stdlib-only metrics core under the
// observability tier: sharded atomic counters, gauges, and log-linear
// latency histograms with a lock-free record path. Every type is
// nil-receiver safe — a component holds plain pointers and records
// unconditionally; when telemetry is disabled the pointers are nil and
// each record call is a single branch, no allocation, no atomics.
//
// A Registry names the metrics of one process (a daemon or a client).
// Snapshots are plain values: mergeable, JSON-encodable, and renderable
// as Prometheus text (see WriteMetrics), so the same document backs
// /metrics, /statz and `gkfs-shell stats -json`.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// counterShards spreads a hot counter over this many cache lines so
// concurrent writers on different cores do not serialize on one line.
// Must be a power of two.
const counterShards = 8

type counterShard struct {
	v atomic.Uint64
	_ [56]byte // pad to a 64-byte cache line
}

// Counter is a monotonically increasing, write-sharded counter. The
// record path is one atomic add on a shard picked from the caller's
// stack address — goroutines running on different stacks land on
// different cache lines with no per-goroutine state.
type Counter struct {
	shards [counterShards]counterShard
}

// Add increments the counter by n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	// A local's address is stable within one goroutine and spread
	// across goroutines; shifting off the 64-byte-alignment bits leaves
	// the stack-slot entropy that distinguishes stacks.
	var probe byte
	i := (uintptr(unsafe.Pointer(&probe)) >> 6) & (counterShards - 1)
	c.shards[i].v.Add(n)
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the shards. Concurrent adds may or may not be included;
// the result is exact once writers quiesce. Safe on a nil receiver.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var t uint64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

// Gauge is an instantaneous signed value (in-flight RPCs, window
// occupancy). Unlike Counter it is not sharded: gauges move both ways
// and read often, so one atomic is the right trade.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by d (negative to decrease). Safe on nil.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Set stores an absolute value. Safe on nil.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value reads the gauge. Safe on nil.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry names the metrics of one process. Get-or-create accessors
// are mutex-guarded (registration is rare); the returned metric
// pointers are then recorded to lock-free. A nil *Registry is the
// disabled state: every accessor returns nil, and the nil metrics
// swallow records for the cost of a branch.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid, inert counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of a registry: plain maps keyed by
// metric name, directly JSON-encodable. Individual metrics are read
// atomically; the set as a whole is not a consistent cut (normal for a
// monitoring scrape).
type Snapshot struct {
	Counters map[string]uint64       `json:"counters,omitempty"`
	Gauges   map[string]int64        `json:"gauges,omitempty"`
	Hists    map[string]HistSnapshot `json:"hists,omitempty"`
}

// Snapshot reads every registered metric once. Safe on a nil registry
// (returns an empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters: map[string]uint64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Hists[name] = h.Snapshot()
	}
	return s
}

// sortedKeys returns m's keys in lexical order, for deterministic
// rendering.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
