package telemetry

import (
	"encoding/json"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketLayout checks the index/bounds pair agree: every bucket's
// bounds map back to its own index, indexes are monotone in the value,
// and the whole uint64 range is covered.
func TestBucketLayout(t *testing.T) {
	for i := 0; i < histBuckets; i++ {
		lo, hi := bucketBounds(i)
		if bucketIndex(lo) != i || bucketIndex(hi) != i {
			t.Fatalf("bucket %d: bounds [%d,%d] map to indexes %d,%d",
				i, lo, hi, bucketIndex(lo), bucketIndex(hi))
		}
		if i > 0 {
			_, prevHi := bucketBounds(i - 1)
			if lo != prevHi+1 {
				t.Fatalf("bucket %d starts at %d, previous ended at %d (gap or overlap)", i, lo, prevHi)
			}
		}
		if mid := bucketMid(i); mid < lo || mid > hi {
			t.Fatalf("bucket %d: mid %d outside [%d,%d]", i, mid, lo, hi)
		}
	}
	if _, hi := bucketBounds(histBuckets - 1); hi != ^uint64(0) {
		t.Fatalf("last bucket ends at %d, want 2^64-1", hi)
	}
}

// TestPercentileErrorBounds records a known sample set and checks the
// recovered quantiles against the exact order statistics: the layout
// guarantees ≤ 1/32 relative quantization error, asserted here with a
// little slack at 7%.
func TestPercentileErrorBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, gen := range []struct {
		name string
		draw func() int64
	}{
		{"uniform", func() int64 { return rng.Int63n(1_000_000) }},
		{"lognormalish", func() int64 { return int64(1000 * (1 + rng.ExpFloat64()*50)) }},
		{"small", func() int64 { return rng.Int63n(40) }},
	} {
		var h Histogram
		exact := make([]int64, 0, 20000)
		for i := 0; i < 20000; i++ {
			v := gen.draw()
			exact = append(exact, v)
			h.Observe(v)
		}
		sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
		s := h.Snapshot()
		if s.Count != uint64(len(exact)) {
			t.Fatalf("%s: snapshot count %d, want %d", gen.name, s.Count, len(exact))
		}
		for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
			rank := int(q*float64(len(exact))) - 1
			if rank < 0 {
				rank = 0
			}
			want := exact[rank]
			got := s.Quantile(q)
			// Quantization never misplaces a sample across buckets, so
			// the reported value must be within one bucket width of the
			// true order statistic: ≤ ~6.25% relative, plus a small
			// absolute allowance where buckets are coarse vs tiny values.
			diff := int64(got) - want
			if diff < 0 {
				diff = -diff
			}
			if float64(diff) > 0.07*float64(want)+1 {
				t.Errorf("%s: q=%v: got %d, exact %d (err %.2f%%)",
					gen.name, q, got, want, 100*float64(diff)/float64(want))
			}
		}
	}
}

// TestMergeAssociativity checks (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) — the
// property gkfs-shell relies on when folding per-daemon snapshots in
// whatever order replies arrive.
func TestMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mk := func(n int, scale int64) HistSnapshot {
		var h Histogram
		for i := 0; i < n; i++ {
			h.Observe(rng.Int63n(scale))
		}
		return h.Snapshot()
	}
	a, b, c := mk(500, 1000), mk(300, 1_000_000), mk(0, 1)

	left := HistSnapshot{}
	left.Merge(a)
	left.Merge(b)
	left.Merge(c)

	bc := HistSnapshot{}
	bc.Merge(b)
	bc.Merge(c)
	right := HistSnapshot{}
	right.Merge(a)
	right.Merge(bc)

	if left.Count != right.Count || left.Sum != right.Sum {
		t.Fatalf("totals differ: left %d/%d, right %d/%d", left.Count, left.Sum, right.Count, right.Sum)
	}
	if len(left.Buckets) != len(right.Buckets) {
		t.Fatalf("bucket counts differ: %d vs %d", len(left.Buckets), len(right.Buckets))
	}
	for i := range left.Buckets {
		if left.Buckets[i] != right.Buckets[i] {
			t.Fatalf("bucket %d differs: %+v vs %+v", i, left.Buckets[i], right.Buckets[i])
		}
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if left.Quantile(q) != right.Quantile(q) {
			t.Fatalf("q=%v differs: %d vs %d", q, left.Quantile(q), right.Quantile(q))
		}
	}
}

// TestConcurrentRecording hammers one histogram from many goroutines
// (run under -race in CI) and checks no samples are lost.
func TestConcurrentRecording(t *testing.T) {
	const goroutines, per = 8, 5000
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count %d, want %d", s.Count, goroutines*per)
	}
	want := uint64(goroutines*per) * uint64(goroutines*per-1) / 2
	if s.Sum != want {
		t.Fatalf("sum %d, want %d", s.Sum, want)
	}
}

// TestRecordPathAllocs asserts the zero-allocation record path, both
// enabled and disabled (nil receiver) — the acceptance criterion that
// keeps telemetry safe to leave on in the data path.
func TestRecordPathAllocs(t *testing.T) {
	var h Histogram
	var nilH *Histogram
	var c Counter
	var nilC *Counter
	var g Gauge
	t0 := time.Now()
	for name, f := range map[string]func(){
		"histogram":      func() { h.Observe(12345) },
		"histogramSince": func() { h.ObserveSince(t0) },
		"nilHistogram":   func() { nilH.Observe(12345) },
		"nilSince":       func() { nilH.ObserveSince(t0) },
		"counter":        func() { c.Add(3) },
		"nilCounter":     func() { nilC.Add(3) },
		"gauge":          func() { g.Add(-1) },
	} {
		if allocs := testing.AllocsPerRun(100, f); allocs != 0 {
			t.Errorf("%s: %v allocs per record, want 0", name, allocs)
		}
	}
}

// TestQuantileEdges covers the degenerate snapshots.
func TestQuantileEdges(t *testing.T) {
	var empty HistSnapshot
	if empty.Quantile(0.99) != 0 || empty.Mean() != 0 {
		t.Fatal("empty snapshot must report zeros")
	}
	var h Histogram
	h.Observe(7)
	s := h.Snapshot()
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := s.Quantile(q); got != 7 {
			t.Fatalf("single-sample q=%v: got %d, want 7", q, got)
		}
	}
	h.Observe(-5) // clock step: clamps to 0
	if got := h.Snapshot().Quantile(0); got != 0 {
		t.Fatalf("negative observation should land at 0, q0=%d", got)
	}
}

// TestHistSnapshotJSON checks the summary document shape shared by
// /statz and `gkfs-shell stats -json`.
func TestHistSnapshotJSON(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000)
	}
	raw, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"count", "sum", "mean", "p50", "p95", "p99", "p999"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("summary JSON missing %q: %s", key, raw)
		}
	}
	if doc["count"].(float64) != 100 {
		t.Errorf("count = %v, want 100", doc["count"])
	}
}
