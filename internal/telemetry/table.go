package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// WriteOpTable renders nanosecond latency histograms as an aligned
// per-op percentile table (values shown in microseconds). Histograms
// without samples are skipped; metric-name prefixes/suffixes are
// stripped for display. gkfs-shell stats and gkfs-bench share it.
func WriteOpTable(w io.Writer, hists map[string]HistSnapshot) {
	names := sortedKeys(hists)
	header := false
	for _, name := range names {
		h := hists[name]
		if h.Count == 0 {
			continue
		}
		if !header {
			fmt.Fprintf(w, "%-18s %10s %12s %12s %12s %12s\n",
				"op", "count", "p50(us)", "p95(us)", "p99(us)", "p999(us)")
			header = true
		}
		fmt.Fprintf(w, "%-18s %10d %12.1f %12.1f %12.1f %12.1f\n",
			opDisplayName(name), h.Count,
			float64(h.Quantile(0.50))/1e3, float64(h.Quantile(0.95))/1e3,
			float64(h.Quantile(0.99))/1e3, float64(h.Quantile(0.999))/1e3)
	}
}

// opDisplayName shortens a metric name for table display:
// gkfs_daemon_op_write_chunks_ns → write_chunks.
func opDisplayName(n string) string {
	n = strings.TrimSuffix(n, "_ns")
	for _, p := range []string{"gkfs_daemon_op_", "gkfs_daemon_rpc_", "gkfs_daemon_", "gkfs_client_"} {
		if strings.HasPrefix(n, p) {
			return strings.TrimPrefix(n, p)
		}
	}
	return n
}
