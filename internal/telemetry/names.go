// The metric name catalog: every name this repo can export through a
// Registry or the daemon's /metrics endpoint is declared here, and
// Catalog returns the complete list. scripts/check-docs.sh runs
// `gkfs-daemon -print-metrics` (which prints Catalog) and requires each
// name to appear in docs/OBSERVABILITY.md, so a metric cannot ship
// undocumented.
package telemetry

import "sort"

// Daemon-side histograms (nanoseconds). The queue-wait histogram times
// the dispatch pool admission (Margo handler-stream saturation); the
// per-op histograms time the handler body itself.
const (
	DaemonQueueWaitNS = "gkfs_daemon_rpc_queue_wait_ns"

	DaemonOpPingNS           = "gkfs_daemon_op_ping_ns"
	DaemonOpCreateNS         = "gkfs_daemon_op_create_ns"
	DaemonOpStatNS           = "gkfs_daemon_op_stat_ns"
	DaemonOpRemoveMetaNS     = "gkfs_daemon_op_remove_meta_ns"
	DaemonOpUpdateSizeNS     = "gkfs_daemon_op_update_size_ns"
	DaemonOpWriteChunksNS    = "gkfs_daemon_op_write_chunks_ns"
	DaemonOpReadChunksNS     = "gkfs_daemon_op_read_chunks_ns"
	DaemonOpRemoveChunksNS   = "gkfs_daemon_op_remove_chunks_ns"
	DaemonOpTruncateChunksNS = "gkfs_daemon_op_truncate_chunks_ns"
	DaemonOpReadDirNS        = "gkfs_daemon_op_readdir_ns"
	DaemonOpStatsNS          = "gkfs_daemon_op_stats_ns"
	DaemonOpBatchMetaNS      = "gkfs_daemon_op_batch_meta_ns"
	DaemonOpSnapshotNS       = "gkfs_daemon_op_snapshot_ns"
	DaemonOpSnapshotListNS   = "gkfs_daemon_op_snapshot_list_ns"
	DaemonOpSnapshotDropNS   = "gkfs_daemon_op_snapshot_drop_ns"
)

// Client-side metrics. The rpc histograms time the full call round
// trip by family (write = OpWriteChunks, read = OpReadChunks,
// everything else meta); the wait histograms time the client-side
// queues in front of the wire (striped-connection acquire, shm segment
// allocation, async-write window admission, prefetch span fetches).
const (
	ClientRPCMetaNS  = "gkfs_client_rpc_meta_ns"
	ClientRPCWriteNS = "gkfs_client_rpc_write_ns"
	ClientRPCReadNS  = "gkfs_client_rpc_read_ns"

	ClientRPCInflight = "gkfs_client_rpc_inflight"

	ClientPoolAcquireWaitNS = "gkfs_client_pool_acquire_wait_ns"
	ClientShmSegWaitNS      = "gkfs_client_shm_seg_wait_ns"
	ClientWriteStageWaitNS  = "gkfs_client_write_stage_wait_ns"
	ClientPrefetchFetchNS   = "gkfs_client_prefetch_fetch_ns"

	ClientHedgedReadsTotal   = "gkfs_client_hedged_reads_total"
	ClientFailoverReadsTotal = "gkfs_client_failover_reads_total"
	ClientReplicaWritesTotal = "gkfs_client_replica_writes_total"
	ClientTracesTotal        = "gkfs_client_traces_total"
)

// DaemonStatNames are the /metrics names of the daemon's cumulative
// operation counters, in proto.DaemonStats wire order — the zip key
// for proto.(DaemonStats).Values. Keep the two orders identical.
var DaemonStatNames = []string{
	"gkfs_daemon_creates_total",
	"gkfs_daemon_stat_ops_total",
	"gkfs_daemon_removes_total",
	"gkfs_daemon_size_updates_total",
	"gkfs_daemon_write_ops_total",
	"gkfs_daemon_read_ops_total",
	"gkfs_daemon_write_bytes_total",
	"gkfs_daemon_read_bytes_total",
	"gkfs_daemon_read_spans_total",
	"gkfs_daemon_read_bytes_pushed_total",
	"gkfs_daemon_read_dirs_total",
	"gkfs_daemon_batch_rpcs_total",
	"gkfs_daemon_batched_ops_total",
	"gkfs_daemon_frames_in_total",
	"gkfs_daemon_frames_out_total",
	"gkfs_daemon_wire_bytes_in_total",
	"gkfs_daemon_wire_bytes_out_total",
	"gkfs_daemon_vectored_writes_total",
	"gkfs_daemon_shm_calls_total",
	"gkfs_daemon_replica_writes_total",
	"gkfs_daemon_snapshot_pins_total",
	"gkfs_daemon_snapshot_drops_total",
	"gkfs_daemon_snapshot_reads_total",
	"gkfs_daemon_snapshot_cow_copies_total",
	"gkfs_daemon_snapshot_cow_bytes_total",
}

// Catalog returns every exported metric name, sorted: the registry
// names above plus the DaemonStats-derived counters. This is what
// `gkfs-daemon -print-metrics` prints and what the doc gate checks.
func Catalog() []string {
	names := []string{
		DaemonQueueWaitNS,
		DaemonOpPingNS, DaemonOpCreateNS, DaemonOpStatNS,
		DaemonOpRemoveMetaNS, DaemonOpUpdateSizeNS,
		DaemonOpWriteChunksNS, DaemonOpReadChunksNS,
		DaemonOpRemoveChunksNS, DaemonOpTruncateChunksNS,
		DaemonOpReadDirNS, DaemonOpStatsNS, DaemonOpBatchMetaNS,
		DaemonOpSnapshotNS, DaemonOpSnapshotListNS, DaemonOpSnapshotDropNS,

		ClientRPCMetaNS, ClientRPCWriteNS, ClientRPCReadNS,
		ClientRPCInflight,
		ClientPoolAcquireWaitNS, ClientShmSegWaitNS,
		ClientWriteStageWaitNS, ClientPrefetchFetchNS,
		ClientHedgedReadsTotal, ClientFailoverReadsTotal,
		ClientReplicaWritesTotal, ClientTracesTotal,
	}
	names = append(names, DaemonStatNames...)
	sort.Strings(names)
	return names
}
