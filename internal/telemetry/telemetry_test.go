package telemetry

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestCounterSharding checks adds from many goroutines all land and
// sum exactly (run under -race in CI).
func TestCounterSharding(t *testing.T) {
	var c Counter
	const goroutines, per = 16, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("counter %d, want %d", got, goroutines*per)
	}
}

// TestNilRegistry checks the disabled state end to end: nil registry,
// nil metrics, inert records, empty snapshot.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	c, g, h := r.Counter("x"), r.Gauge("y"), r.Histogram("z")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	c.Add(1)
	c.Inc()
	g.Add(2)
	g.Set(3)
	h.Observe(4)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Hists) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

// TestRegistryGetOrCreate checks the same name always resolves to the
// same metric.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter identity not stable")
	}
	if r.Gauge("b") != r.Gauge("b") {
		t.Fatal("gauge identity not stable")
	}
	if r.Histogram("c") != r.Histogram("c") {
		t.Fatal("histogram identity not stable")
	}
	r.Counter("a").Add(5)
	r.Gauge("b").Set(-2)
	r.Histogram("c").Observe(100)
	s := r.Snapshot()
	if s.Counters["a"] != 5 || s.Gauges["b"] != -2 || s.Hists["c"].Count != 1 {
		t.Fatalf("snapshot mismatch: %+v", s)
	}
}

// TestCatalog checks the exported-name catalog is well formed: sorted,
// unique, gkfs-prefixed, and covering the DaemonStats wire order.
func TestCatalog(t *testing.T) {
	names := Catalog()
	seen := map[string]bool{}
	for i, n := range names {
		if !strings.HasPrefix(n, "gkfs_") {
			t.Errorf("metric %q lacks the gkfs_ prefix", n)
		}
		if seen[n] {
			t.Errorf("duplicate metric name %q", n)
		}
		seen[n] = true
		if i > 0 && names[i-1] > n {
			t.Errorf("catalog not sorted at %q", n)
		}
	}
	if len(DaemonStatNames) != 25 {
		t.Fatalf("DaemonStatNames has %d entries, want 25 (proto.DaemonStatsWireLen/8)", len(DaemonStatNames))
	}
	for _, n := range DaemonStatNames {
		if !seen[n] {
			t.Errorf("DaemonStatNames entry %q missing from Catalog", n)
		}
	}
}

// TestHandler exercises /metrics and /statz end to end against a live
// registry.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("gkfs_client_traces_total").Add(2)
	r.Gauge("gkfs_client_rpc_inflight").Set(3)
	for i := 0; i < 100; i++ {
		r.Histogram("gkfs_client_rpc_read_ns").Observe(int64(1000 + i))
	}
	h := Handler(r, func() map[string]uint64 {
		return map[string]uint64{"gkfs_daemon_read_ops_total": 7}
	}, nil)

	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String()
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"gkfs_client_traces_total 2",
		"gkfs_client_rpc_inflight 3",
		"gkfs_daemon_read_ops_total 7",
		`gkfs_client_rpc_read_ns{quantile="0.99"}`,
		"gkfs_client_rpc_read_ns_count 100",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	statz := get("/statz")
	for _, want := range []string{`"gkfs_client_traces_total": 2`, `"p99"`} {
		if !strings.Contains(statz, want) {
			t.Errorf("/statz missing %q:\n%s", want, statz)
		}
	}

	if pprof := get("/debug/pprof/cmdline"); len(pprof) == 0 {
		t.Error("pprof cmdline endpoint returned nothing")
	}
}
