// Log-linear latency histogram: fixed footprint, lock-free record
// path, mergeable snapshots with percentile extraction. The bucket
// layout is the HdrHistogram family's: values below 2^histSubBits map
// one-to-one to buckets (exact), and every later power-of-two range is
// split into 2^histSubBits equal sub-buckets, bounding the relative
// quantization error at 1/2^(histSubBits+1) — ~3.1% here — while the
// whole uint64 range fits in under a thousand buckets.
package telemetry

import (
	"encoding/json"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// histSubBits is the sub-bucket resolution: each power-of-two range
	// holds 2^histSubBits buckets.
	histSubBits = 4
	histSubs    = 1 << histSubBits // sub-buckets per power-of-two range

	// histBuckets covers all of uint64: the histSubs exact values, then
	// 16 sub-buckets for each exponent 4..63.
	histBuckets = histSubs + (64-histSubBits)*histSubs // 976

	// HistBucketCount is the fixed layout size, exported so wire
	// decoders can reject snapshots claiming impossible bucket indexes.
	HistBucketCount = histBuckets
)

// Histogram accumulates a latency distribution (nanoseconds by
// convention). Record is a bounded handful of atomic adds with no
// locks and no allocation; Snapshot extracts a mergeable sparse copy.
// The footprint is fixed (~7.8 KiB) regardless of volume. Safe for
// concurrent use; safe (inert) on a nil receiver.
type Histogram struct {
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// bucketIndex maps a value to its bucket. Values 0..15 are exact; a
// larger value v with top bit e keeps its histSubBits bits below the
// top bit, landing in sub-bucket (v >> (e-histSubBits)) & (histSubs-1)
// of exponent group e.
func bucketIndex(v uint64) int {
	if v < histSubs {
		return int(v)
	}
	e := bits.Len64(v) - 1 // 4..63
	sub := int(v>>(uint(e)-histSubBits)) & (histSubs - 1)
	return histSubs + (e-histSubBits)*histSubs + sub
}

// bucketBounds returns the closed value range [lo, hi] of bucket i.
func bucketBounds(i int) (lo, hi uint64) {
	if i < histSubs {
		return uint64(i), uint64(i)
	}
	g := uint(i-histSubs) >> histSubBits // exponent group: e - histSubBits
	sub := uint64(i-histSubs) & (histSubs - 1)
	lo = (histSubs + sub) << g
	width := uint64(1) << g
	return lo, lo + width - 1
}

// bucketMid returns the representative value of bucket i (the range
// midpoint), the value Quantile reports for samples in the bucket.
func bucketMid(i int) uint64 {
	lo, hi := bucketBounds(i)
	return lo + (hi-lo)/2
}

// Observe records one value. Negative durations (clock steps) record
// as zero. Safe on a nil receiver: a single branch, no allocation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	u := uint64(v)
	if v < 0 {
		u = 0
	}
	h.sum.Add(u)
	h.buckets[bucketIndex(u)].Add(1)
}

// ObserveSince records the elapsed nanoseconds since t0 — the common
// call at the end of a timed section. Safe on a nil receiver; the
// disabled path does not read the clock.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(t0)))
}

// HistBucket is one occupied bucket of a snapshot.
type HistBucket struct {
	// Index is the bucket's position in the fixed log-linear layout.
	Index uint32 `json:"i"`
	// Count is the number of samples recorded in the bucket.
	Count uint64 `json:"n"`
}

// HistSnapshot is a point-in-time copy of a histogram: only occupied
// buckets, in ascending index order. Snapshots merge associatively
// (Merge), travel over the stats RPC (proto.EncodeHistSnapshot) and
// JSON-encode as a summary document with p50/p95/p99/p999.
type HistSnapshot struct {
	// Count and Sum are the totals over all buckets. Count is derived
	// from the buckets so one snapshot is self-consistent even when
	// records land mid-copy.
	Count uint64
	Sum   uint64
	// Buckets holds the occupied buckets, ascending by Index.
	Buckets []HistBucket
}

// Snapshot copies the occupied buckets. Records running concurrently
// may or may not be included. Safe on a nil receiver (empty snapshot).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		s.Buckets = append(s.Buckets, HistBucket{Index: uint32(i), Count: n})
		s.Count += n
	}
	return s
}

// Quantile returns the value at quantile q in [0, 1] — the midpoint of
// the bucket holding the q-th sample, within the layout's ~3.1%
// relative error. An empty snapshot returns 0.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target sample, 1-based; q=0 means the first sample.
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			return bucketMid(int(b.Index))
		}
	}
	return bucketMid(int(s.Buckets[len(s.Buckets)-1].Index))
}

// Mean returns the arithmetic mean of the recorded values (0 when
// empty). Unlike quantiles it is exact: Sum is accumulated from the
// raw values.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Merge folds o into s. Merging is associative and commutative, so
// per-daemon snapshots fold into cluster-wide distributions in any
// order — the property that lets gkfs-shell aggregate a deployment.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if o.Count == 0 {
		return
	}
	if s.Count == 0 {
		s.Count = o.Count
		s.Sum = o.Sum
		s.Buckets = append([]HistBucket(nil), o.Buckets...)
		return
	}
	merged := make([]HistBucket, 0, len(s.Buckets)+len(o.Buckets))
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Index < o.Buckets[j].Index):
			merged = append(merged, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || o.Buckets[j].Index < s.Buckets[i].Index:
			merged = append(merged, o.Buckets[j])
			j++
		default:
			merged = append(merged, HistBucket{Index: s.Buckets[i].Index, Count: s.Buckets[i].Count + o.Buckets[j].Count})
			i++
			j++
		}
	}
	s.Buckets = merged
	s.Count += o.Count
	s.Sum += o.Sum
}

// histSummary is the JSON shape of a histogram: the summary document
// shared by /statz, `gkfs-shell stats -json` and the bench tripwire.
// Values are nanoseconds.
type histSummary struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P95   uint64  `json:"p95"`
	P99   uint64  `json:"p99"`
	P999  uint64  `json:"p999"`
}

// MarshalJSON implements json.Marshaler, rendering the summary
// document rather than raw buckets.
func (s HistSnapshot) MarshalJSON() ([]byte, error) {
	return json.Marshal(histSummary{
		Count: s.Count,
		Sum:   s.Sum,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
		P999:  s.Quantile(0.999),
	})
}
