// The live exposure surface: a handler serving Prometheus text on
// /metrics, the JSON stats document on /statz, and the stdlib pprof
// profiles on /debug/pprof/. gkfs-daemon mounts it behind -metrics;
// the default bind is loopback because the endpoint is unauthenticated
// (see docs/OBSERVABILITY.md).
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
)

// Handler returns the observability mux. extra, when non-nil, supplies
// additional cumulative counters merged into /metrics (the daemon
// passes its DaemonStats there). statz, when non-nil, supplies the
// /statz JSON document; otherwise /statz serves the registry snapshot.
func Handler(reg *Registry, extra func() map[string]uint64, statz func() any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s := reg.Snapshot()
		if extra != nil {
			for name, v := range extra() {
				s.Counters[name] = v
			}
		}
		WriteMetrics(w, s)
	})
	mux.HandleFunc("/statz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var doc any
		if statz != nil {
			doc = statz()
		} else {
			doc = reg.Snapshot()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// WriteMetrics renders a snapshot as Prometheus text exposition:
// counters and gauges as single samples, histograms as summaries with
// quantile labels plus _sum and _count. Output is sorted by name so
// scrapes diff cleanly.
func WriteMetrics(w io.Writer, s Snapshot) {
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Hists) {
		h := s.Hists[name]
		fmt.Fprintf(w, "# TYPE %s summary\n", name)
		for _, q := range [...]struct {
			label string
			q     float64
		}{{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}, {"0.999", 0.999}} {
			fmt.Fprintf(w, "%s{quantile=%q} %d\n", name, q.label, h.Quantile(q.q))
		}
		fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum, name, h.Count)
	}
}
