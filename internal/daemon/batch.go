package daemon

import (
	"errors"
	"fmt"

	"repro/internal/kvstore"
	"repro/internal/meta"
	"repro/internal/proto"
	"repro/internal/rpc"
)

// The vectored metadata plane. One OpBatchMeta RPC carries many
// create/stat/remove/update-size sub-operations; the mutating ones commit
// through a single kvstore.Batch — one WAL append for the whole vector
// instead of one per op — while per-op outcomes travel back as an errno
// vector, so one failed sub-op never poisons its batchmates.

// batchRec is the within-batch view of one path: the record as the batch
// will leave it once applied. It overlays the store so later sub-ops of
// the same batch observe earlier ones (a create after a remove of the
// same path must succeed).
type batchRec struct {
	exists bool
	md     meta.Metadata
}

func (d *Daemon) handleBatchMeta(req []byte, _ rpc.Bulk) ([]byte, error) {
	dec := rpc.NewDec(req)
	ops := proto.DecodeMetaOps(dec)
	if err := dec.Done(); err != nil {
		return nil, err
	}
	results := make([]proto.MetaResult, len(ops))

	// Keys of mutating sub-ops; their stripe locks are held across the
	// whole read-validate-apply sequence so the batch is atomic with
	// respect to the single-op handlers (PutIfAbsent, Update). The byte
	// conversions are kept (keyOf) and handed to the batch via the owned
	// variants — one key buffer per op, no re-copies.
	keys := make([][]byte, 0, len(ops))
	keyOf := make([][]byte, len(ops))
	for i := range ops {
		if ops[i].Kind != proto.MetaOpStat {
			k := []byte(ops[i].Path)
			keyOf[i] = k
			keys = append(keys, k)
		}
	}

	batch := &kvstore.Batch{}
	overlay := make(map[string]batchRec)
	// load returns the record as the batch will leave it: pending batch
	// state first, then the store.
	load := func(path string) (batchRec, error) {
		if rec, ok := overlay[path]; ok {
			return rec, nil
		}
		v, err := d.db.Get([]byte(path))
		if errors.Is(err, kvstore.ErrNotFound) {
			return batchRec{}, nil
		}
		if err != nil {
			return batchRec{}, err
		}
		md, err := meta.DecodeMetadata(v)
		if err != nil {
			return batchRec{}, fmt.Errorf("corrupt record at %s: %w", path, err)
		}
		return batchRec{exists: true, md: md}, nil
	}

	err := d.db.WithKeyLocks(keys, func() error {
		for i := range ops {
			op := &ops[i]
			if op.Kind == proto.MetaOpStat {
				// Stats bypass the decode+re-encode of load: outside the
				// overlay, the stored record is the reply blob as-is.
				d.statOps.Add(1)
				if rec, ok := overlay[op.Path]; ok {
					if !rec.exists {
						results[i].Errno = proto.ErrnoNotExist
					} else {
						results[i].Blob = rec.md.Encode()
					}
					continue
				}
				v, err := d.db.Get([]byte(op.Path))
				if errors.Is(err, kvstore.ErrNotFound) {
					results[i].Errno = proto.ErrnoNotExist
					continue
				}
				if err != nil {
					return err
				}
				results[i].Blob = v
				continue
			}
			rec, err := load(op.Path)
			if err != nil {
				return err
			}
			switch op.Kind {
			case proto.MetaOpCreate:
				d.creates.Add(1)
				if rec.exists {
					results[i].Errno = proto.ErrnoExist
					continue
				}
				md := meta.Metadata{Mode: op.Mode, CTimeNS: op.TimeNS, MTimeNS: op.TimeNS}
				batch.PutOwned(keyOf[i], md.Encode())
				overlay[op.Path] = batchRec{exists: true, md: md}
			case proto.MetaOpRemove:
				d.removes.Add(1)
				if !rec.exists {
					results[i].Errno = proto.ErrnoNotExist
					continue
				}
				if op.FileOnly && rec.md.IsDir() {
					results[i].Errno = proto.ErrnoIsDir
					continue
				}
				batch.DeleteOwned(keyOf[i])
				overlay[op.Path] = batchRec{}
				results[i].Mode = rec.md.Mode
				results[i].Size = rec.md.Size
			case proto.MetaOpUpdateSize:
				d.sizeUpdates.Add(1)
				if rec.exists && rec.md.IsDir() {
					results[i].Errno = proto.ErrnoIsDir
					continue
				}
				if op.Truncate {
					if !rec.exists {
						results[i].Errno = proto.ErrnoNotExist
						continue
					}
					md := rec.md
					md.Size = op.Size
					md.MTimeNS = op.TimeNS
					batch.PutOwned(keyOf[i], md.Encode())
					overlay[op.Path] = batchRec{exists: true, md: md}
				} else {
					// The grow stays a merge operand even inside a batch,
					// keeping the max-size resolution semantics shared
					// with the single-op path.
					operand := rpc.NewEnc(16)
					operand.I64(op.Size).I64(op.TimeNS)
					batch.MergeOwned(keyOf[i], operand.Bytes())
					md := rec.md
					if !rec.exists {
						md = meta.Metadata{Mode: meta.ModeRegular}
					}
					if op.Size > md.Size {
						md.Size = op.Size
					}
					if op.TimeNS > md.MTimeNS {
						md.MTimeNS = op.TimeNS
					}
					overlay[op.Path] = batchRec{exists: true, md: md}
				}
			}
		}
		return d.db.Apply(batch)
	})
	if err != nil {
		return nil, fmt.Errorf("batch meta: %w", err)
	}
	d.batchRPCs.Add(1)
	d.batchedOps.Add(uint64(len(ops)))

	e := okResp(4 + 4*len(results))
	proto.EncodeMetaResults(e, ops, results)
	return e.Bytes(), nil
}
