package daemon

import (
	"errors"
	"fmt"

	"repro/internal/kvstore"
	"repro/internal/meta"
	"repro/internal/proto"
	"repro/internal/rpc"
)

// The vectored metadata plane. One OpBatchMeta RPC carries many
// create/stat/remove/update-size sub-operations; the mutating ones commit
// through a single kvstore.Batch — one WAL append for the whole vector
// instead of one per op — while per-op outcomes travel back as an errno
// vector, so one failed sub-op never poisons its batchmates.

// batchRec is the within-batch view of one path: the versioned record as
// the batch will leave it once applied. It overlays the store so later
// sub-ops of the same batch observe earlier ones (a create after a
// remove of the same path must succeed). An empty history (nil V) means
// the key is absent.
type batchRec struct {
	vm meta.VersionedMeta
}

// live resolves the record's current state within the batch.
func (r *batchRec) live() (meta.Metadata, bool) {
	if len(r.vm.V) == 0 {
		return meta.Metadata{}, false
	}
	return r.vm.Live()
}

func (d *Daemon) handleBatchMeta(req []byte, _ rpc.Bulk) ([]byte, error) {
	dec := rpc.NewDec(req)
	ops := proto.DecodeMetaOps(dec)
	if err := dec.Done(); err != nil {
		return nil, err
	}
	results := make([]proto.MetaResult, len(ops))
	epoch, retained := d.snapEpoch(), d.retainedEpochs()

	// Keys of mutating sub-ops; their stripe locks are held across the
	// whole read-validate-apply sequence so the batch is atomic with
	// respect to the single-op handlers (Update). The byte conversions
	// are kept (keyOf) and handed to the batch via the owned variants —
	// one key buffer per op, no re-copies.
	keys := make([][]byte, 0, len(ops))
	keyOf := make([][]byte, len(ops))
	for i := range ops {
		if ops[i].Kind != proto.MetaOpStat {
			k := []byte(ops[i].Path)
			keyOf[i] = k
			keys = append(keys, k)
		}
	}

	batch := &kvstore.Batch{}
	overlay := make(map[string]batchRec)
	// load returns the record as the batch will leave it: pending batch
	// state first, then the store.
	load := func(path string) (batchRec, error) {
		if rec, ok := overlay[path]; ok {
			return rec, nil
		}
		v, err := d.db.Get([]byte(path))
		if errors.Is(err, kvstore.ErrNotFound) {
			return batchRec{}, nil
		}
		if err != nil {
			return batchRec{}, err
		}
		vm, err := meta.DecodeVersionedMeta(v)
		if err != nil {
			return batchRec{}, fmt.Errorf("corrupt record at %s: %w", path, err)
		}
		return batchRec{vm: vm}, nil
	}

	err := d.db.WithKeyLocks(keys, func() error {
		for i := range ops {
			op := &ops[i]
			if op.Kind == proto.MetaOpStat {
				d.statOps.Add(1)
				rec, err := load(op.Path)
				if err != nil {
					return err
				}
				md, ok := rec.live()
				if !ok {
					results[i].Errno = proto.ErrnoNotExist
					continue
				}
				results[i].Blob = md.Encode()
				continue
			}
			rec, err := load(op.Path)
			if err != nil {
				return err
			}
			cur, exists := rec.live()
			switch op.Kind {
			case proto.MetaOpCreate:
				d.creates.Add(1)
				if exists {
					results[i].Errno = proto.ErrnoExist
					continue
				}
				md := meta.Metadata{Mode: op.Mode, CTimeNS: op.TimeNS, MTimeNS: op.TimeNS}
				rec.vm.Stamp(epoch, md)
				rec.vm.Compact(retained)
				batch.PutOwned(keyOf[i], rec.vm.Encode())
				overlay[op.Path] = rec
			case proto.MetaOpRemove:
				d.removes.Add(1)
				if !exists {
					results[i].Errno = proto.ErrnoNotExist
					continue
				}
				if op.FileOnly && cur.IsDir() {
					results[i].Errno = proto.ErrnoIsDir
					continue
				}
				rec.vm.StampTombstone(epoch)
				rec.vm.Compact(retained)
				if len(rec.vm.V) == 1 {
					// Only the tombstone survives compaction: no retained
					// snapshot sees the old state, drop the key outright.
					batch.DeleteOwned(keyOf[i])
				} else {
					batch.PutOwned(keyOf[i], rec.vm.Encode())
				}
				overlay[op.Path] = rec
				results[i].Mode = cur.Mode
				results[i].Size = cur.Size
			case proto.MetaOpUpdateSize:
				d.sizeUpdates.Add(1)
				if exists && cur.IsDir() {
					results[i].Errno = proto.ErrnoIsDir
					continue
				}
				if op.Truncate {
					if !exists {
						results[i].Errno = proto.ErrnoNotExist
						continue
					}
					md := cur
					md.Size = op.Size
					md.MTimeNS = op.TimeNS
					rec.vm.Stamp(epoch, md)
					rec.vm.Compact(retained)
					batch.PutOwned(keyOf[i], rec.vm.Encode())
					overlay[op.Path] = rec
				} else {
					// The grow stays a merge operand even inside a batch,
					// keeping the max-size resolution semantics shared
					// with the single-op path. The operand carries the
					// arrival epoch for the merger (see sizeMerger).
					operand := rpc.NewEnc(24)
					operand.I64(op.Size).I64(op.TimeNS).U64(epoch)
					batch.MergeOwned(keyOf[i], operand.Bytes())
					// Mirror the merger's outcome into the overlay so
					// later sub-ops of this batch see the grown state.
					switch {
					case len(rec.vm.V) == 0:
						rec.vm.V = []meta.Version{{Epoch: epoch, Meta: meta.Metadata{Mode: meta.ModeRegular}}}
					case rec.vm.Newest().Tombstone:
						rec.vm.Stamp(epoch, meta.Metadata{Mode: meta.ModeRegular})
					case epoch > rec.vm.Newest().Epoch:
						rec.vm.Stamp(epoch, rec.vm.Newest().Meta)
					}
					n := rec.vm.Newest()
					if op.Size > n.Meta.Size {
						n.Meta.Size = op.Size
					}
					if op.TimeNS > n.Meta.MTimeNS {
						n.Meta.MTimeNS = op.TimeNS
					}
					overlay[op.Path] = rec
				}
			}
		}
		return d.db.Apply(batch)
	})
	if err != nil {
		return nil, fmt.Errorf("batch meta: %w", err)
	}
	d.batchRPCs.Add(1)
	d.batchedOps.Add(uint64(len(ops)))

	e := okResp(4 + 4*len(results))
	proto.EncodeMetaResults(e, ops, results)
	return e.Bytes(), nil
}
