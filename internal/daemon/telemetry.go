package daemon

import (
	"log/slog"
	"time"

	"repro/internal/proto"
	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// opHistNames maps an RPC op to its latency-histogram metric name.
// Indexed by proto op value (1-based); index 0 is unused.
var opHistNames = [proto.OpSnapshotDrop + 1]string{
	proto.OpPing:           telemetry.DaemonOpPingNS,
	proto.OpCreate:         telemetry.DaemonOpCreateNS,
	proto.OpStat:           telemetry.DaemonOpStatNS,
	proto.OpRemoveMeta:     telemetry.DaemonOpRemoveMetaNS,
	proto.OpUpdateSize:     telemetry.DaemonOpUpdateSizeNS,
	proto.OpWriteChunks:    telemetry.DaemonOpWriteChunksNS,
	proto.OpReadChunks:     telemetry.DaemonOpReadChunksNS,
	proto.OpRemoveChunks:   telemetry.DaemonOpRemoveChunksNS,
	proto.OpTruncateChunks: telemetry.DaemonOpTruncateChunksNS,
	proto.OpReadDir:        telemetry.DaemonOpReadDirNS,
	proto.OpStats:          telemetry.DaemonOpStatsNS,
	proto.OpBatchMeta:      telemetry.DaemonOpBatchMetaNS,
	proto.OpSnapshot:       telemetry.DaemonOpSnapshotNS,
	proto.OpSnapshotList:   telemetry.DaemonOpSnapshotListNS,
	proto.OpSnapshotDrop:   telemetry.DaemonOpSnapshotDropNS,
}

// initTelemetry builds the daemon's always-on metrics registry and
// installs the dispatch observer. Histograms are pre-resolved into an
// op-indexed array so the per-RPC record path is two atomic adds and
// no map lookups.
func (d *Daemon) initTelemetry() {
	d.reg = telemetry.NewRegistry()
	d.queueHist = d.reg.Histogram(telemetry.DaemonQueueWaitNS)
	for op, name := range opHistNames {
		if name != "" {
			d.opHists[op] = d.reg.Histogram(name)
		}
	}
	d.srv.SetObserver(d.observe)
}

// observe is the rpc.Server dispatch observer: it records the queue
// wait and per-op handle time, and emits the server half of a sampled
// trace as a structured log event carrying the client's trace ID.
func (d *Daemon) observe(op rpc.Op, tr rpc.Trace, queueWait, handle time.Duration, err error) {
	d.queueHist.Observe(int64(queueWait))
	if int(op) < len(d.opHists) {
		d.opHists[op].Observe(int64(handle))
	}
	if tr.ID == 0 {
		return
	}
	attrs := []any{
		slog.String("trace", traceHex(tr.ID)),
		slog.String("side", "daemon"),
		slog.Int("daemon", d.cfg.ID),
		slog.String("op", proto.OpName(op)),
		slog.Int64("queue_wait_ns", int64(queueWait)),
		slog.Int64("handle_ns", int64(handle)),
	}
	if err != nil {
		attrs = append(attrs, slog.String("error", err.Error()))
	}
	slog.Info("gkfs.trace", attrs...)
}

// traceHex renders a trace ID the way both ends log it, so one grep
// finds the client and daemon halves of a span.
func traceHex(id uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// Telemetry returns the daemon's metrics registry (never nil), for the
// process hosting the daemon to expose over HTTP.
func (d *Daemon) Telemetry() *telemetry.Registry { return d.reg }

// StatsExt snapshots the daemon's latency histograms in the wire shape
// the OpStats reply appends after the fixed counters. Only histograms
// with samples are included — an idle daemon's stats reply stays small.
func (d *Daemon) StatsExt() proto.StatsExt {
	var ext proto.StatsExt
	add := func(name string, h *telemetry.Histogram) {
		if s := h.Snapshot(); s.Count > 0 {
			ext.Ops = append(ext.Ops, proto.OpHist{Name: name, Hist: s})
		}
	}
	add(telemetry.DaemonQueueWaitNS, d.queueHist)
	for op, name := range opHistNames {
		if name != "" {
			add(name, d.opHists[op])
		}
	}
	return ext
}
