package daemon

import (
	"math"
	"testing"

	"repro/internal/proto"
	"repro/internal/rpc"
)

// TestChunkHandlersRejectSpanOverflow is the regression test for the
// span-sum overflow: span lengths near MaxInt64 wrapped proto.SpanBytes
// negative, slipped past the bulk-length guard, and panicked the daemon
// allocating the staging buffer. A ~100-byte hostile request must yield
// an error, not a dead daemon.
func TestChunkHandlersRejectSpanOverflow(t *testing.T) {
	d := newTestDaemon(t)
	hostile := [][]proto.ChunkSpan{
		// Two spans summing past MaxInt64 (negative total).
		{{ID: 0, Off: 0, Len: 1 << 62}, {ID: 1, Off: 0, Len: 1 << 62}},
		{{ID: 0, Off: 0, Len: math.MaxInt64}, {ID: 1, Off: 0, Len: 1}},
		// A single span beyond any sane transfer.
		{{ID: 0, Off: 0, Len: math.MaxInt64}},
		// Many moderate spans whose total is still absurd.
		{{ID: 0, Off: 0, Len: 100 << 20}, {ID: 1, Off: 0, Len: 100 << 20}},
	}
	for _, op := range []rpc.Op{proto.OpWriteChunks, proto.OpReadChunks} {
		for i, spans := range hostile {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("op %d case %d panicked: %v", op, i, r)
					}
				}()
				e := rpc.NewEnc(64)
				e.Str("/victim")
				proto.EncodeSpans(e, spans)
				bulk := rpc.SliceBulk(make([]byte, 16))
				if _, err := d.Server().Dispatch(op, e.Bytes(), bulk); err == nil {
					t.Fatalf("op %d case %d: hostile spans accepted", op, i)
				}
			}()
		}
	}
	// The daemon still serves valid traffic.
	e := rpc.NewEnc(64)
	e.Str("/victim")
	proto.EncodeSpans(e, []proto.ChunkSpan{{ID: 0, Off: 0, Len: 4}})
	if _, err := d.Server().Dispatch(proto.OpWriteChunks, e.Bytes(), rpc.SliceBulk([]byte("data"))); err != nil {
		t.Fatalf("valid write after hostile spans: %v", err)
	}
}
