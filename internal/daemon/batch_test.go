package daemon

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/meta"
	"repro/internal/proto"
	"repro/internal/rpc"
)

func callBatch(t *testing.T, d *Daemon, ops []proto.MetaOp) []proto.MetaResult {
	t.Helper()
	e := rpc.NewEnc(64)
	proto.EncodeMetaOps(e, ops)
	dec, err := call(t, d, proto.OpBatchMeta, e.Bytes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	results := proto.DecodeMetaResults(dec, ops)
	if err := dec.Done(); err != nil {
		t.Fatal(err)
	}
	return results
}

func TestBatchMetaMixedLifecycle(t *testing.T) {
	d := newTestDaemon(t)
	// One batch: create two files and a dir, grow one file, stat it.
	results := callBatch(t, d, []proto.MetaOp{
		{Kind: proto.MetaOpCreate, Path: "/f1", Mode: meta.ModeRegular, TimeNS: 10},
		{Kind: proto.MetaOpCreate, Path: "/f2", Mode: meta.ModeRegular, TimeNS: 11},
		{Kind: proto.MetaOpCreate, Path: "/d", Mode: meta.ModeDir, TimeNS: 12},
		{Kind: proto.MetaOpUpdateSize, Path: "/f1", Size: 999, TimeNS: 13},
		{Kind: proto.MetaOpStat, Path: "/f1"},
	})
	for i, r := range results {
		if r.Errno != proto.OK {
			t.Fatalf("op %d errno = %d", i, r.Errno)
		}
	}
	// The in-batch stat observed the in-batch grow.
	md, err := meta.DecodeMetadata(results[4].Blob)
	if err != nil || md.Size != 999 {
		t.Fatalf("in-batch stat = %+v, %v", md, err)
	}
	// The batch actually applied to the store.
	dec, err := call(t, d, proto.OpStat, encPath("/f1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	md, _ = meta.DecodeMetadata(dec.Blob())
	if md.Size != 999 {
		t.Fatalf("post-batch size = %d", md.Size)
	}

	// Second batch: per-op errnos for the failures, the successes land.
	results = callBatch(t, d, []proto.MetaOp{
		{Kind: proto.MetaOpCreate, Path: "/f1", Mode: meta.ModeRegular}, // exists
		{Kind: proto.MetaOpRemove, Path: "/missing", FileOnly: true},    // not exist
		{Kind: proto.MetaOpRemove, Path: "/d", FileOnly: true},          // dir, refused
		{Kind: proto.MetaOpUpdateSize, Path: "/d", Size: 5},             // dir, refused
		{Kind: proto.MetaOpRemove, Path: "/f2", FileOnly: true},         // ok
	})
	want := []proto.Errno{proto.ErrnoExist, proto.ErrnoNotExist, proto.ErrnoIsDir, proto.ErrnoIsDir, proto.OK}
	for i, r := range results {
		if r.Errno != want[i] {
			t.Fatalf("op %d errno = %d, want %d", i, r.Errno, want[i])
		}
	}
	if results[4].Mode != meta.ModeRegular || results[4].Size != 0 {
		t.Fatalf("remove result = %+v", results[4])
	}
	if _, err := call(t, d, proto.OpStat, encPath("/f2"), nil); !errors.Is(err, proto.ErrNotExist) {
		t.Fatalf("/f2 after batch remove = %v", err)
	}
	// The directory refused by FileOnly remains.
	if _, err := call(t, d, proto.OpStat, encPath("/d"), nil); err != nil {
		t.Fatalf("/d after refused remove = %v", err)
	}
}

func TestBatchMetaWithinBatchVisibility(t *testing.T) {
	d := newTestDaemon(t)
	// remove → create → stat of the same path inside one batch: each op
	// sees the batch's pending state, not just the store.
	if _, err := call(t, d, proto.OpCreate, encCreate("/x", meta.ModeRegular), nil); err != nil {
		t.Fatal(err)
	}
	results := callBatch(t, d, []proto.MetaOp{
		{Kind: proto.MetaOpRemove, Path: "/x", FileOnly: true},
		{Kind: proto.MetaOpCreate, Path: "/x", Mode: meta.ModeRegular, TimeNS: 77},
		{Kind: proto.MetaOpStat, Path: "/x"},
		{Kind: proto.MetaOpCreate, Path: "/x", Mode: meta.ModeRegular}, // duplicate within batch
	})
	want := []proto.Errno{proto.OK, proto.OK, proto.OK, proto.ErrnoExist}
	for i, r := range results {
		if r.Errno != want[i] {
			t.Fatalf("op %d errno = %d, want %d", i, r.Errno, want[i])
		}
	}
	md, err := meta.DecodeMetadata(results[2].Blob)
	if err != nil || md.CTimeNS != 77 {
		t.Fatalf("recreated record = %+v, %v", md, err)
	}
}

func TestBatchMetaTruncateInBatch(t *testing.T) {
	d := newTestDaemon(t)
	results := callBatch(t, d, []proto.MetaOp{
		{Kind: proto.MetaOpCreate, Path: "/t", Mode: meta.ModeRegular},
		{Kind: proto.MetaOpUpdateSize, Path: "/t", Size: 100, TimeNS: 1},
		{Kind: proto.MetaOpUpdateSize, Path: "/t", Size: 10, Truncate: true, TimeNS: 2},
		{Kind: proto.MetaOpStat, Path: "/t"},
		{Kind: proto.MetaOpUpdateSize, Path: "/gone", Size: 10, Truncate: true},
	})
	want := []proto.Errno{proto.OK, proto.OK, proto.OK, proto.OK, proto.ErrnoNotExist}
	for i, r := range results {
		if r.Errno != want[i] {
			t.Fatalf("op %d errno = %d, want %d", i, r.Errno, want[i])
		}
	}
	md, _ := meta.DecodeMetadata(results[3].Blob)
	if md.Size != 10 {
		t.Fatalf("size after in-batch truncate = %d", md.Size)
	}
	// The truncate's Put must supersede the earlier merge operand once
	// resolved from the store too.
	dec, err := call(t, d, proto.OpStat, encPath("/t"), nil)
	if err != nil {
		t.Fatal(err)
	}
	md, _ = meta.DecodeMetadata(dec.Blob())
	if md.Size != 10 {
		t.Fatalf("store size after batch = %d", md.Size)
	}
}

func TestBatchMetaCounters(t *testing.T) {
	d := newTestDaemon(t)
	callBatch(t, d, []proto.MetaOp{
		{Kind: proto.MetaOpCreate, Path: "/a", Mode: meta.ModeRegular},
		{Kind: proto.MetaOpCreate, Path: "/b", Mode: meta.ModeRegular},
		{Kind: proto.MetaOpStat, Path: "/a"},
		{Kind: proto.MetaOpRemove, Path: "/b", FileOnly: true},
	})
	st := d.Stats()
	if st.BatchRPCs != 1 || st.BatchedOps != 4 {
		t.Fatalf("batch counters = %d RPCs / %d ops", st.BatchRPCs, st.BatchedOps)
	}
	if st.Creates != 2 || st.StatOps != 1 || st.Removes != 1 {
		t.Fatalf("per-op counters = %+v", st)
	}
}

func TestBatchMetaHostileFrames(t *testing.T) {
	d := newTestDaemon(t)
	// Claimed op count far beyond the payload: must error, not allocate.
	e := rpc.NewEnc(8)
	e.U32(1 << 30)
	if _, err := d.Server().Dispatch(proto.OpBatchMeta, e.Bytes(), nil); err == nil {
		t.Fatal("absurd batch count accepted")
	}
	// Truncated mid-op.
	e = rpc.NewEnc(32)
	proto.EncodeMetaOps(e, []proto.MetaOp{{Kind: proto.MetaOpCreate, Path: "/x", Mode: meta.ModeRegular}})
	full := e.Bytes()
	if _, err := d.Server().Dispatch(proto.OpBatchMeta, full[:len(full)-3], nil); err == nil {
		t.Fatal("truncated batch accepted")
	}
	// Unknown sub-op kind.
	e = rpc.NewEnc(16)
	e.U32(1).U8(99)
	e.Str("/x")
	if _, err := d.Server().Dispatch(proto.OpBatchMeta, e.Bytes(), nil); err == nil {
		t.Fatal("unknown sub-op kind accepted")
	}
	// The daemon still serves valid traffic afterwards.
	if _, err := call(t, d, proto.OpPing, nil, nil); err != nil {
		t.Fatalf("daemon wedged after hostile batch: %v", err)
	}
}

func TestUpdateSizeGrowRejectsDir(t *testing.T) {
	d := newTestDaemon(t)
	if _, err := call(t, d, proto.OpCreate, encCreate("/dir", meta.ModeDir), nil); err != nil {
		t.Fatal(err)
	}
	e := rpc.NewEnc(32)
	e.Str("/dir").I64(100).U8(0).I64(1)
	if _, err := call(t, d, proto.OpUpdateSize, e.Bytes(), nil); !errors.Is(err, proto.ErrIsDir) {
		t.Fatalf("grow on dir = %v", err)
	}
	// The record is untouched.
	dec, err := call(t, d, proto.OpStat, encPath("/dir"), nil)
	if err != nil {
		t.Fatal(err)
	}
	md, _ := meta.DecodeMetadata(dec.Blob())
	if !md.IsDir() || md.Size != 0 {
		t.Fatalf("dir record after refused grow = %+v", md)
	}
}

func TestTruncateChunksRejectsDir(t *testing.T) {
	d := newTestDaemon(t)
	if _, err := call(t, d, proto.OpCreate, encCreate("/dir", meta.ModeDir), nil); err != nil {
		t.Fatal(err)
	}
	e := rpc.NewEnc(32)
	e.Str("/dir").I64(0)
	if _, err := call(t, d, proto.OpTruncateChunks, e.Bytes(), nil); !errors.Is(err, proto.ErrIsDir) {
		t.Fatalf("truncate-chunks on dir = %v", err)
	}
	// Paths without a record here (a file whose metadata lives on another
	// daemon) still truncate fine.
	e = rpc.NewEnc(32)
	e.Str("/remote-file").I64(0)
	if _, err := call(t, d, proto.OpTruncateChunks, e.Bytes(), nil); err != nil {
		t.Fatalf("truncate-chunks without record = %v", err)
	}
}

func TestRemoveMetaFileOnlyFlag(t *testing.T) {
	d := newTestDaemon(t)
	if _, err := call(t, d, proto.OpCreate, encCreate("/dir", meta.ModeDir), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := call(t, d, proto.OpRemoveMeta, encRemove("/dir", proto.RemoveFileOnly), nil); !errors.Is(err, proto.ErrIsDir) {
		t.Fatalf("file-only remove of dir = %v", err)
	}
	// Without the flag the directory goes.
	if _, err := call(t, d, proto.OpRemoveMeta, encRemove("/dir", 0), nil); err != nil {
		t.Fatalf("unflagged remove of dir = %v", err)
	}
}

func TestReadDirPagination(t *testing.T) {
	d := newTestDaemon(t)
	const n = 25
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("/dir/f%03d", i)
		if _, err := call(t, d, proto.OpCreate, encCreate(p, meta.ModeRegular), nil); err != nil {
			t.Fatal(err)
		}
		// Deeper descendants interleave with the children in key order
		// and must not disturb page boundaries or tokens.
		p = fmt.Sprintf("/dir/f%03d/deep", i)
		if _, err := call(t, d, proto.OpCreate, encCreate(p, meta.ModeRegular), nil); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	after := ""
	pages := 0
	for {
		dec, err := call(t, d, proto.OpReadDir, encReadDir("/dir", after, 7), nil)
		if err != nil {
			t.Fatal(err)
		}
		cnt := dec.U32()
		if cnt > 7 {
			t.Fatalf("page of %d entries exceeds limit 7", cnt)
		}
		for i := uint32(0); i < cnt; i++ {
			got = append(got, dec.Str())
			dec.U8()
			dec.I64()
		}
		next := dec.Str()
		if err := dec.Done(); err != nil {
			t.Fatal(err)
		}
		pages++
		if next == "" {
			break
		}
		after = next
	}
	if pages < 4 {
		t.Fatalf("scan of %d entries with limit 7 took %d pages", n, pages)
	}
	if len(got) != n {
		t.Fatalf("paged scan returned %d entries, want %d", len(got), n)
	}
	seen := make(map[string]bool, len(got))
	for _, name := range got {
		if seen[name] {
			t.Fatalf("duplicate entry %q across pages", name)
		}
		seen[name] = true
	}
}
