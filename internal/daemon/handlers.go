package daemon

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/kvstore"
	"repro/internal/meta"
	"repro/internal/proto"
	"repro/internal/rpc"
)

// Response convention: every payload starts with a u16 errno; success data
// follows. Unexpected internal failures return a Go error and surface at
// the client as rpc.RemoteError.

func okResp(extra int) *rpc.Enc {
	e := rpc.NewEnc(2 + extra)
	e.U16(uint16(proto.OK))
	return e
}

func errResp(errno proto.Errno) []byte {
	e := rpc.NewEnc(2)
	e.U16(uint16(errno))
	return e.Bytes()
}

func (d *Daemon) register() {
	d.srv.Register(proto.OpPing, d.handlePing)
	d.srv.Register(proto.OpCreate, d.handleCreate)
	d.srv.Register(proto.OpStat, d.handleStat)
	d.srv.Register(proto.OpRemoveMeta, d.handleRemoveMeta)
	d.srv.Register(proto.OpUpdateSize, d.handleUpdateSize)
	d.srv.Register(proto.OpWriteChunks, d.handleWriteChunks)
	d.srv.Register(proto.OpReadChunks, d.handleReadChunks)
	d.srv.Register(proto.OpRemoveChunks, d.handleRemoveChunks)
	d.srv.Register(proto.OpTruncateChunks, d.handleTruncateChunks)
	d.srv.Register(proto.OpReadDir, d.handleReadDir)
	d.srv.Register(proto.OpStats, d.handleStats)
	d.srv.Register(proto.OpBatchMeta, d.handleBatchMeta)
	d.srv.Register(proto.OpSnapshot, d.handleSnapshot)
	d.srv.Register(proto.OpSnapshotList, d.handleSnapshotList)
	d.srv.Register(proto.OpSnapshotDrop, d.handleSnapshotDrop)
}

// handlePing reports the daemon's ID, its protocol version and — when
// the daemon serves one — the path of its shared-memory doorbell socket,
// which co-located clients use to switch to the zero-copy segment
// transport at mount time. The version trailer is what lets a client
// refuse a mixed-generation deployment at mount time instead of failing
// obscurely mid-I/O (client.VerifyProtocol); each trailer is additive,
// so older clients simply never decode past what they know.
func (d *Daemon) handlePing([]byte, rpc.Bulk) ([]byte, error) {
	e := okResp(6 + 2 + len(d.cfg.ShmSocket))
	e.U32(uint32(d.cfg.ID))
	e.U16(proto.ProtocolVersion)
	e.Str(d.cfg.ShmSocket)
	return e.Bytes(), nil
}

// handleCreate inserts a metadata record. The flat namespace makes this a
// single conditional KV insert regardless of directory population — the
// property behind Fig. 2a's flat-vs-Lustre gap.
func (d *Daemon) handleCreate(req []byte, _ rpc.Bulk) ([]byte, error) {
	dec := rpc.NewDec(req)
	path := dec.Str()
	mode := meta.Mode(dec.U8())
	ctime := dec.I64()
	if err := dec.Done(); err != nil {
		return nil, err
	}
	d.creates.Add(1)
	md := meta.Metadata{Mode: mode, CTimeNS: ctime, MTimeNS: ctime}
	epoch, retained := d.snapEpoch(), d.retainedEpochs()
	var errno proto.Errno
	err := d.db.Update([]byte(path), func(cur []byte, ok bool) ([]byte, bool, error) {
		var vm meta.VersionedMeta
		if ok {
			v, err := meta.DecodeVersionedMeta(cur)
			if err != nil {
				return nil, false, err
			}
			if _, live := v.Live(); live {
				errno = proto.ErrnoExist
				return nil, false, proto.ErrExist
			}
			vm = v
		}
		vm.Stamp(epoch, md)
		vm.Compact(retained)
		return vm.Encode(), false, nil
	})
	if errno != proto.OK {
		return errResp(errno), nil
	}
	if err != nil {
		return nil, fmt.Errorf("create %s: %w", path, err)
	}
	return okResp(0).Bytes(), nil
}

// handleStat resolves a record's live state, or — via the trailing v8
// flags extension [u8 flags][u64 epoch, with StatAtEpoch] — its state at
// a pinned snapshot epoch. The reply blob is always a resolved 25-byte
// Metadata record regardless of how the record is stored; with
// StatWantVersions the full version history follows it.
func (d *Daemon) handleStat(req []byte, _ rpc.Bulk) ([]byte, error) {
	dec := rpc.NewDec(req)
	path := dec.Str()
	var flags uint8
	var at uint64
	if dec.Err() == nil && dec.Remaining() > 0 {
		flags = dec.U8()
		if flags&proto.StatAtEpoch != 0 {
			at = dec.U64()
		}
	}
	if err := dec.Done(); err != nil {
		return nil, err
	}
	d.statOps.Add(1)
	v, err := d.db.Get([]byte(path))
	if errors.Is(err, kvstore.ErrNotFound) {
		return errResp(proto.ErrnoNotExist), nil
	}
	if err != nil {
		return nil, fmt.Errorf("stat %s: %w", path, err)
	}
	vm, err := meta.DecodeVersionedMeta(v)
	if err != nil {
		return nil, fmt.Errorf("stat %s: %w", path, err)
	}
	var md meta.Metadata
	var ok bool
	if flags&proto.StatAtEpoch != 0 {
		d.snapReads.Add(1)
		md, ok = vm.At(at)
	} else {
		md, ok = vm.Live()
	}
	if !ok {
		return errResp(proto.ErrnoNotExist), nil
	}
	e := okResp(32 + 35*len(vm.V))
	e.Blob(md.Encode())
	if flags&proto.StatWantVersions != 0 {
		proto.EncodeVersions(e, vm.V)
	}
	return e.Bytes(), nil
}

// handleRemoveMeta deletes the record and reports the mode and size it
// had, so the client can decide whether chunk collection RPCs are needed
// (zero-size files need none — the common mdtest case). With
// proto.RemoveFileOnly set, directories are refused with ErrnoIsDir
// instead of deleted, which lets the client unlink a regular file in one
// RPC without a leading stat.
func (d *Daemon) handleRemoveMeta(req []byte, _ rpc.Bulk) ([]byte, error) {
	dec := rpc.NewDec(req)
	path := dec.Str()
	flags := dec.U8()
	if err := dec.Done(); err != nil {
		return nil, err
	}
	d.removes.Add(1)
	epoch, retained := d.snapEpoch(), d.retainedEpochs()
	var removed meta.Metadata
	var errno proto.Errno
	err := d.db.Update([]byte(path), func(cur []byte, ok bool) ([]byte, bool, error) {
		if !ok {
			errno = proto.ErrnoNotExist
			return nil, false, kvstore.ErrNotFound
		}
		vm, err := meta.DecodeVersionedMeta(cur)
		if err != nil {
			return nil, false, err
		}
		m, live := vm.Live()
		if !live {
			errno = proto.ErrnoNotExist
			return nil, false, kvstore.ErrNotFound
		}
		if flags&proto.RemoveFileOnly != 0 && m.IsDir() {
			errno = proto.ErrnoIsDir
			return nil, false, proto.ErrIsDir
		}
		removed = m
		vm.StampTombstone(epoch)
		vm.Compact(retained)
		if len(vm.V) == 1 {
			// No retained snapshot sees the old state: drop the key
			// outright instead of storing a lone tombstone.
			return nil, true, nil
		}
		return vm.Encode(), false, nil
	})
	if errno != proto.OK {
		return errResp(errno), nil
	}
	if err != nil {
		return nil, fmt.Errorf("remove %s: %w", path, err)
	}
	e := okResp(9)
	e.U8(uint8(removed.Mode)).I64(removed.Size)
	return e.Bytes(), nil
}

// handleUpdateSize grows the size through a merge operand (lock-free, the
// released GekkoFS's RocksDB merge) or sets it exactly for truncate.
func (d *Daemon) handleUpdateSize(req []byte, _ rpc.Bulk) ([]byte, error) {
	dec := rpc.NewDec(req)
	path := dec.Str()
	size := dec.I64()
	truncate := dec.U8() == 1
	mtime := dec.I64()
	if err := dec.Done(); err != nil {
		return nil, err
	}
	d.sizeUpdates.Add(1)
	epoch, retained := d.snapEpoch(), d.retainedEpochs()
	if !truncate {
		// A size grow against a directory record is refused rather than
		// silently folded in. The check is an unlocked read — a racing
		// mkdir could still slip a dir in before the merge lands — so
		// sizeMerger independently refuses to grow directory records.
		if m, live := d.liveMeta(path); live && m.IsDir() {
			return errResp(proto.ErrnoIsDir), nil
		}
		// The epoch is stamped server-side at arrival: clients never
		// carry epochs on mutations, and the merger (which must stay
		// deterministic for WAL replay) reads it from the operand.
		op := rpc.NewEnc(24)
		op.I64(size).I64(mtime).U64(epoch)
		if err := d.db.Merge([]byte(path), op.Bytes()); err != nil {
			return nil, fmt.Errorf("grow %s: %w", path, err)
		}
		return okResp(0).Bytes(), nil
	}
	var errno proto.Errno
	err := d.db.Update([]byte(path), func(cur []byte, ok bool) ([]byte, bool, error) {
		if !ok {
			errno = proto.ErrnoNotExist
			return nil, false, kvstore.ErrNotFound
		}
		vm, err := meta.DecodeVersionedMeta(cur)
		if err != nil {
			return nil, false, err
		}
		m, live := vm.Live()
		if !live {
			errno = proto.ErrnoNotExist
			return nil, false, kvstore.ErrNotFound
		}
		if m.IsDir() {
			errno = proto.ErrnoIsDir
			return nil, false, proto.ErrIsDir
		}
		m.Size = size
		m.MTimeNS = mtime
		vm.Stamp(epoch, m)
		vm.Compact(retained)
		return vm.Encode(), false, nil
	})
	if errno != proto.OK {
		return errResp(errno), nil
	}
	if err != nil {
		return nil, fmt.Errorf("truncate %s: %w", path, err)
	}
	return okResp(0).Bytes(), nil
}

// liveMeta reads a path's current resolved metadata. ok is false when
// the record is absent, tombstoned or unreadable — callers using this
// for advisory checks treat all three the same.
func (d *Daemon) liveMeta(path string) (meta.Metadata, bool) {
	cur, err := d.db.Get([]byte(path))
	if err != nil {
		return meta.Metadata{}, false
	}
	vm, err := meta.DecodeVersionedMeta(cur)
	if err != nil {
		return meta.Metadata{}, false
	}
	return vm.Live()
}

// maxSpanBytes bounds one chunk RPC's total span bytes (mirrors the TCP
// transport's frame limit). Summing attacker-supplied span lengths with
// plain int64 arithmetic can wrap negative and slip past the bulk-length
// guard, so totals are validated span by span.
const maxSpanBytes = 128 << 20

// spanTotal sums span lengths, rejecting any request whose total could
// not have arrived through a sane transport.
func spanTotal(path string, spans []proto.ChunkSpan) (int64, error) {
	var total int64
	for _, s := range spans {
		if s.Len < 0 || s.Len > maxSpanBytes {
			return 0, fmt.Errorf("chunks %s: span length %d out of range", path, s.Len)
		}
		total += s.Len
		if total > maxSpanBytes {
			return 0, fmt.Errorf("chunks %s: span total exceeds %d", path, int64(maxSpanBytes))
		}
	}
	return total, nil
}

// maxSpanWorkers bounds per-request chunk-file parallelism. Spans within
// one RPC touch distinct chunk files of the same path, which chunkstore
// serves under a shared read lock, so they can proceed concurrently —
// engaging the node-local SSD's internal parallelism instead of issuing
// one synchronous file I/O at a time.
const maxSpanWorkers = 8

// forEachSpan runs fn over every span, with its index and its byte offset
// into the request's concatenated bulk region. Multi-span requests fan
// out over a bounded worker set; the first error wins, but all spans are
// attempted.
func forEachSpan(spans []proto.ChunkSpan, fn func(i int, s proto.ChunkSpan, off int64) error) error {
	if len(spans) == 1 {
		return fn(0, spans[0], 0)
	}
	offs := make([]int64, len(spans))
	var off int64
	for i, s := range spans {
		offs[i] = off
		off += s.Len
	}
	workers := min(len(spans), maxSpanWorkers)
	errs := make([]error, len(spans))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(spans) {
					return
				}
				errs[i] = fn(i, spans[i], offs[i])
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// handleWriteChunks stores chunk spans. The flags field is a trailing u8
// absent from pre-version-6 requests; its WriteReplica bit marks the call
// as a non-primary replica copy, which feeds the ReplicaWrites counter
// and nothing else — replicas are stored exactly like primaries.
func (d *Daemon) handleWriteChunks(req []byte, bulk rpc.Bulk) ([]byte, error) {
	dec := rpc.NewDec(req)
	path := dec.Str()
	spans := proto.DecodeSpans(dec)
	var flags uint8
	if dec.Err() == nil && dec.Remaining() > 0 {
		flags = dec.U8()
	}
	if err := dec.Done(); err != nil {
		return nil, err
	}
	total, err := spanTotal(path, spans)
	if err != nil {
		return nil, err
	}
	if bulk == nil || int64(bulk.Len()) < total {
		return nil, fmt.Errorf("write %s: bulk region %d short of %d", path, bulkLen(bulk), total)
	}
	// The transport's wire-read region (or the shared segment window) is
	// the pwrite source itself — no staging copy.
	data, err := bulk.Bytes()
	if err != nil {
		return nil, err
	}
	epoch, retained := d.snapEpoch(), d.retainedEpochs()
	err = forEachSpan(spans, func(_ int, s proto.ChunkSpan, off int64) error {
		return d.chunks.WriteChunkEpoch(path, s.ID, s.Off, data[off:off+s.Len], epoch, retained)
	})
	if err != nil {
		return nil, err
	}
	d.writeOps.Add(1)
	d.writeBytes.Add(uint64(total))
	if flags&proto.WriteReplica != 0 {
		d.replicaWrites.Add(1)
	}
	e := okResp(8)
	e.I64(total)
	return e.Bytes(), nil
}

// handleReadChunks serves chunk spans and, when the request carries the
// ReadWantSize flag, piggybacks this daemon's size view of the path onto
// the reply — the stat-free read protocol. The flags field is a trailing
// u8 absent from pre-version-3 requests, so old clients keep getting the
// old reply shape. A zero-span request with the flag set is a pure size
// probe (the client sends one when none of a read's chunks live on the
// path's metadata owner) and moves no bulk bytes.
func (d *Daemon) handleReadChunks(req []byte, bulk rpc.Bulk) ([]byte, error) {
	dec := rpc.NewDec(req)
	path := dec.Str()
	spans := proto.DecodeSpans(dec)
	var flags uint8
	var at uint64
	if dec.Err() == nil && dec.Remaining() > 0 {
		flags = dec.U8()
		if flags&proto.ReadAtEpoch != 0 {
			at = dec.U64()
		}
	}
	if err := dec.Done(); err != nil {
		return nil, err
	}
	atEpoch := flags&proto.ReadAtEpoch != 0
	total, err := spanTotal(path, spans)
	if err != nil {
		return nil, err
	}
	if total > 0 && (bulk == nil || int64(bulk.Len()) < total) {
		return nil, fmt.Errorf("read %s: bulk region %d short of %d", path, bulkLen(bulk), total)
	}
	sizeState := proto.ReadSizeNone
	var sizeView int64
	if flags&proto.ReadWantSize != 0 {
		if cur, err := d.db.Get([]byte(path)); err == nil {
			vm, merr := meta.DecodeVersionedMeta(cur)
			if merr != nil {
				// A present-but-corrupt record must surface as an error,
				// not as ReadSizeNone — the client would mistake the file
				// for removed and the application could overwrite it.
				return nil, fmt.Errorf("read %s: corrupt metadata record: %w", path, merr)
			}
			var m meta.Metadata
			var live bool
			if atEpoch {
				m, live = vm.At(at)
			} else {
				m, live = vm.Live()
			}
			if live && m.IsDir() {
				return errResp(proto.ErrnoIsDir), nil
			}
			if live {
				sizeState = proto.ReadSizeFile
				sizeView = m.Size
			}
		} else if !errors.Is(err, kvstore.ErrNotFound) {
			return nil, fmt.Errorf("read %s: size view: %w", path, err)
		}
	}
	counts := make([]int64, len(spans))
	if total > 0 {
		// The transport's outgoing bulk region is the pread destination
		// itself — no staging copy, no Push.
		data, werr := bulk.Writable(int(total))
		if werr != nil {
			return nil, werr
		}
		err = forEachSpan(spans, func(i int, s proto.ChunkSpan, off int64) error {
			dst := data[off : off+s.Len]
			var n int
			var err error
			if atEpoch {
				n, err = d.chunks.ReadChunkAt(path, s.ID, s.Off, dst, at)
			} else {
				n, err = d.chunks.ReadChunk(path, s.ID, s.Off, dst)
			}
			if err != nil {
				return err
			}
			// The region is dirty (a pooled wire buffer or a reused segment
			// window); bytes past what the chunk file holds are holes and
			// must read as zeros.
			clear(dst[n:])
			counts[i] = int64(n)
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Commit only up to the last present byte: the client cleared its
		// bulk region before exposing it, so the untransferred tail reads
		// as zeros there. Reads past EOF and hole-heavy windows move
		// (almost) nothing over the wire instead of a window of zeros.
		var high, spanOff int64
		for i, s := range spans {
			if n := counts[i]; n > 0 && spanOff+n > high {
				high = spanOff + n
			}
			spanOff += s.Len
		}
		if err := bulk.Commit(int(high)); err != nil {
			return nil, err
		}
		d.readPushed.Add(uint64(high))
	}
	d.readOps.Add(1)
	d.readBytes.Add(uint64(total))
	d.readSpans.Add(uint64(len(spans)))
	if atEpoch {
		d.snapReads.Add(1)
	}
	e := okResp(4 + 8*len(counts) + 9)
	e.U32(uint32(len(counts)))
	for _, c := range counts {
		e.I64(c)
	}
	if flags&proto.ReadWantSize != 0 {
		e.U8(sizeState)
		e.I64(sizeView)
	}
	return e.Bytes(), nil
}

func bulkLen(b rpc.Bulk) int {
	if b == nil {
		return 0
	}
	return b.Len()
}

func (d *Daemon) handleRemoveChunks(req []byte, _ rpc.Bulk) ([]byte, error) {
	dec := rpc.NewDec(req)
	path := dec.Str()
	if err := dec.Done(); err != nil {
		return nil, err
	}
	if err := d.chunks.RemoveChunksEpoch(path, d.snapEpoch(), d.retainedEpochs()); err != nil {
		return nil, err
	}
	return okResp(0).Bytes(), nil
}

func (d *Daemon) handleTruncateChunks(req []byte, _ rpc.Bulk) ([]byte, error) {
	dec := rpc.NewDec(req)
	path := dec.Str()
	newSize := dec.I64()
	if err := dec.Done(); err != nil {
		return nil, err
	}
	if newSize < 0 {
		return errResp(proto.ErrnoInval), nil
	}
	// Directories carry no chunks; truncating one is a caller error. The
	// record lives only on the path's metadata owner, so the check bites
	// there and is a no-op on the other daemons of the fan-out.
	if m, live := d.liveMeta(path); live && m.IsDir() {
		return errResp(proto.ErrnoIsDir), nil
	}
	if err := d.chunks.TruncateChunksEpoch(path, d.cfg.ChunkSize, newSize, d.snapEpoch(), d.retainedEpochs()); err != nil {
		return nil, err
	}
	return okResp(0).Bytes(), nil
}

// handleReadDir scans this daemon's KV store for direct children of dir,
// returning one page per call: at most `limit` entries after the
// continuation token, plus the token for the next page (empty when the
// scan is exhausted). Paging bounds the response frame regardless of
// directory size — a listing that once had to fit in a single frame now
// streams. The scan runs against a point-in-time iterator locally, but
// pages and the client's cross-daemon merge see no global lock — the
// eventual consistency the paper accepts for indirect operations like
// `ls -l` (§III-A).
func (d *Daemon) handleReadDir(req []byte, _ rpc.Bulk) ([]byte, error) {
	dec := rpc.NewDec(req)
	dir := dec.Str()
	after := dec.Str()
	limit := dec.U32()
	// Trailing v8 extension: [u8 flags][u64 epoch, with bit 0]. With an
	// epoch the scan resolves each record at that snapshot instead of
	// its live state.
	var flags uint8
	var at uint64
	if dec.Err() == nil && dec.Remaining() > 0 {
		flags = dec.U8()
		if flags&proto.StatAtEpoch != 0 {
			at = dec.U64()
		}
	}
	if err := dec.Done(); err != nil {
		return nil, err
	}
	atEpoch := flags&proto.StatAtEpoch != 0
	if limit == 0 {
		limit = proto.DefaultReadDirPage
	}
	if limit > proto.MaxReadDirPage {
		limit = proto.MaxReadDirPage
	}
	d.readDirs.Add(1)
	if atEpoch {
		d.snapReads.Add(1)
	}
	prefix := dir
	if prefix != meta.Root {
		prefix += "/"
	}
	start := []byte(prefix)
	if after != "" {
		// Resume strictly after the last returned child: no string sorts
		// between name and name+"\x00", and the seek landing among that
		// child's own descendants is harmless — IsChildOf skips them.
		start = []byte(prefix + after + "\x00")
	}
	it, err := d.db.NewIterator()
	if err != nil {
		return nil, err
	}
	defer it.Close()
	type ent struct {
		name  string
		isDir bool
		size  int64
	}
	var ents []ent
	next := ""
	for it.Seek(start); it.Valid(); it.Next() {
		p := string(it.Key())
		if len(p) < len(prefix) || p[:len(prefix)] != prefix {
			break
		}
		if !meta.IsChildOf(p, dir) {
			continue // deeper descendant hashed here
		}
		if uint32(len(ents)) == limit {
			// A further child exists: hand back a token so the client
			// asks for the next page.
			next = ents[len(ents)-1].name
			break
		}
		vm, err := meta.DecodeVersionedMeta(it.Value())
		if err != nil {
			return nil, fmt.Errorf("readdir %s: corrupt record at %s: %w", dir, p, err)
		}
		var m meta.Metadata
		var ok bool
		if atEpoch {
			m, ok = vm.At(at)
		} else {
			m, ok = vm.Live()
		}
		if !ok {
			continue // tombstoned (or unborn at the requested epoch)
		}
		ents = append(ents, ent{name: meta.Base(p), isDir: m.IsDir(), size: m.Size})
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	e := okResp(16*len(ents) + len(next) + 8)
	e.U32(uint32(len(ents)))
	for _, en := range ents {
		e.Str(en.name)
		if en.isDir {
			e.U8(1)
		} else {
			e.U8(0)
		}
		e.I64(en.size)
	}
	e.Str(next)
	return e.Bytes(), nil
}

// handleStats serves the fixed counters plus, since protocol v7, the
// latency-histogram extension. The extension is trailing: a pre-v7
// client stops after the counters and never sees it.
func (d *Daemon) handleStats([]byte, rpc.Bulk) ([]byte, error) {
	e := okResp(proto.DaemonStatsWireLen)
	proto.EncodeDaemonStats(e, d.Stats())
	proto.EncodeStatsExt(e, d.StatsExt())
	return e.Bytes(), nil
}
