package daemon

// Cluster-wide snapshots, daemon side. Daemons never talk to each other
// (paper §III-B), so a snapshot is client-orchestrated two-phase: the
// client reserves the tag at every metadata owner (each proposes its
// current epoch), takes the maximum M, and commits tag→M everywhere; a
// daemon that cannot be reached aborts the tag. Each daemon keeps the
// tag table and its current epoch durably in its own KV store — commit
// is a single atomic batch (tag record + pending cleanup + epoch
// advance), which is what keeps a severed daemon's namespace strictly
// pre- or post-snapshot across a restart, never torn.
//
// State lives under keys prefixed "\x00snap\x00": "\x00" sorts before
// "/" (the namespace root), so directory scans can never surface them.

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/kvstore"
	"repro/internal/proto"
	"repro/internal/rpc"
)

const (
	snapStatePrefix   = "\x00snap\x00"
	snapEpochKey      = "\x00snap\x00e"
	snapCommitPrefix  = "\x00snap\x00c\x00"
	snapPendingPrefix = "\x00snap\x00p\x00"
)

// snapState is a daemon's in-memory mirror of its durable snapshot
// table. The epoch and the retained-epoch set are read on every write
// path, so they live outside the mutex.
type snapState struct {
	mu sync.Mutex
	// committed maps tag → pinned epoch.
	committed map[string]uint64
	// pending maps tag → this daemon's proposed epoch (reserved, not yet
	// committed).
	pending map[string]uint64
	// epoch is the current epoch: every mutation is stamped with it.
	epoch atomic.Uint64
	// retained caches the sorted epochs some tag (committed or pending)
	// still pins, as a []uint64. Recomputed under mu on every change.
	retained atomic.Value
}

func u64le(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

// snapEpoch returns the epoch to stamp a mutation arriving now.
func (d *Daemon) snapEpoch() uint64 { return d.snaps.epoch.Load() }

// retainedEpochs returns the sorted epochs still pinned by a tag. The
// slice is immutable — callers must not modify it.
func (d *Daemon) retainedEpochs() []uint64 {
	if r, ok := d.snaps.retained.Load().([]uint64); ok {
		return r
	}
	return nil
}

// storeRetainedLocked recomputes the retained-epoch cache. Pending
// reservations count: a write landing between reserve and commit must
// not discard state the about-to-commit snapshot needs. Caller holds
// snaps.mu.
func (d *Daemon) storeRetainedLocked() {
	s := &d.snaps
	set := make(map[uint64]struct{}, len(s.committed)+len(s.pending))
	for _, e := range s.committed {
		set[e] = struct{}{}
	}
	for _, e := range s.pending {
		set[e] = struct{}{}
	}
	out := make([]uint64, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	s.retained.Store(out)
}

// loadSnapshots rebuilds the snapshot table from the KV store at
// startup. The epoch resumes at least one past every committed tag —
// forgetting an advance would stamp new writes below a pinned epoch and
// tear the snapshot.
func (d *Daemon) loadSnapshots() error {
	s := &d.snaps
	s.committed = make(map[string]uint64)
	s.pending = make(map[string]uint64)
	it, err := d.db.NewIterator()
	if err != nil {
		return err
	}
	defer it.Close()
	var epoch uint64
	for it.Seek([]byte(snapStatePrefix)); it.Valid(); it.Next() {
		k := string(it.Key())
		if len(k) < len(snapStatePrefix) || k[:len(snapStatePrefix)] != snapStatePrefix {
			break
		}
		if len(it.Value()) != 8 {
			return fmt.Errorf("daemon: corrupt snapshot state at %q", k)
		}
		v := binary.LittleEndian.Uint64(it.Value())
		switch {
		case k == snapEpochKey:
			epoch = max(epoch, v)
		case len(k) > len(snapCommitPrefix) && k[:len(snapCommitPrefix)] == snapCommitPrefix:
			s.committed[k[len(snapCommitPrefix):]] = v
			epoch = max(epoch, v+1)
		case len(k) > len(snapPendingPrefix) && k[:len(snapPendingPrefix)] == snapPendingPrefix:
			s.pending[k[len(snapPendingPrefix):]] = v
			epoch = max(epoch, v)
		}
	}
	if err := it.Err(); err != nil {
		return err
	}
	s.epoch.Store(epoch)
	d.storeRetainedLocked()
	return nil
}

// handleSnapshot runs one phase of the two-phase snapshot protocol.
// Request: [u8 phase][str tag], plus [u64 epoch] for commit. Reserve
// replies this daemon's proposed epoch; commit pins the tag at the
// cluster maximum the client computed and advances the epoch past it;
// abort discards a reservation. Commit and abort are idempotent so the
// client can retry them blindly, including against a daemon that
// restarted and lost the reservation.
func (d *Daemon) handleSnapshot(req []byte, _ rpc.Bulk) ([]byte, error) {
	dec := rpc.NewDec(req)
	phase := dec.U8()
	tag := dec.Str()
	var epoch uint64
	if dec.Err() == nil && phase == proto.SnapCommit {
		epoch = dec.U64()
	}
	if err := dec.Done(); err != nil {
		return nil, err
	}
	if len(tag) == 0 || len(tag) > proto.MaxSnapshotTag {
		return errResp(proto.ErrnoInval), nil
	}
	s := &d.snaps
	s.mu.Lock()
	defer s.mu.Unlock()
	switch phase {
	case proto.SnapReserve:
		if _, ok := s.committed[tag]; ok {
			return errResp(proto.ErrnoExist), nil
		}
		if p, ok := s.pending[tag]; ok {
			// A retried reserve re-proposes the original epoch.
			e := okResp(8)
			e.U64(p)
			return e.Bytes(), nil
		}
		cur := s.epoch.Load()
		if err := d.db.Put([]byte(snapPendingPrefix+tag), u64le(cur)); err != nil {
			return nil, fmt.Errorf("snapshot reserve %s: %w", tag, err)
		}
		s.pending[tag] = cur
		d.storeRetainedLocked()
		e := okResp(8)
		e.U64(cur)
		return e.Bytes(), nil
	case proto.SnapCommit:
		if c, ok := s.committed[tag]; ok {
			e := okResp(8)
			e.U64(c)
			return e.Bytes(), nil
		}
		next := max(s.epoch.Load(), epoch+1)
		// One batch — one WAL append: the tag record, the reservation
		// cleanup and the epoch advance land atomically or not at all.
		b := &kvstore.Batch{}
		b.Put([]byte(snapCommitPrefix+tag), u64le(epoch))
		b.Delete([]byte(snapPendingPrefix + tag))
		b.Put([]byte(snapEpochKey), u64le(next))
		if err := d.db.Apply(b); err != nil {
			return nil, fmt.Errorf("snapshot commit %s: %w", tag, err)
		}
		delete(s.pending, tag)
		s.committed[tag] = epoch
		s.epoch.Store(next)
		d.storeRetainedLocked()
		d.snapPins.Add(1)
		e := okResp(8)
		e.U64(epoch)
		return e.Bytes(), nil
	case proto.SnapAbort:
		if _, ok := s.pending[tag]; ok {
			if err := d.db.Delete([]byte(snapPendingPrefix + tag)); err != nil {
				return nil, fmt.Errorf("snapshot abort %s: %w", tag, err)
			}
			delete(s.pending, tag)
			d.storeRetainedLocked()
		}
		return okResp(0).Bytes(), nil
	}
	return errResp(proto.ErrnoInval), nil
}

// handleSnapshotList replies this daemon's committed tags, sorted by
// tag. The client intersects the per-daemon views — a tag is usable
// only where every daemon agrees on its epoch.
func (d *Daemon) handleSnapshotList(req []byte, _ rpc.Bulk) ([]byte, error) {
	dec := rpc.NewDec(req)
	if err := dec.Done(); err != nil {
		return nil, err
	}
	s := &d.snaps
	s.mu.Lock()
	ents := make([]proto.SnapshotEntry, 0, len(s.committed))
	for tag, e := range s.committed {
		ents = append(ents, proto.SnapshotEntry{Tag: tag, Epoch: e})
	}
	s.mu.Unlock()
	sort.Slice(ents, func(i, j int) bool { return ents[i].Tag < ents[j].Tag })
	e := okResp(4 + 16*len(ents))
	proto.EncodeSnapshotList(e, ents)
	return e.Bytes(), nil
}

// handleSnapshotDrop unpins a committed tag and garbage-collects the
// chunk pre-images only it retained. Version history in metadata
// records is compacted lazily, on each record's next mutation.
func (d *Daemon) handleSnapshotDrop(req []byte, _ rpc.Bulk) ([]byte, error) {
	dec := rpc.NewDec(req)
	tag := dec.Str()
	if err := dec.Done(); err != nil {
		return nil, err
	}
	if len(tag) == 0 || len(tag) > proto.MaxSnapshotTag {
		return errResp(proto.ErrnoInval), nil
	}
	s := &d.snaps
	s.mu.Lock()
	if _, ok := s.committed[tag]; !ok {
		s.mu.Unlock()
		return errResp(proto.ErrnoNotExist), nil
	}
	if err := d.db.Delete([]byte(snapCommitPrefix + tag)); err != nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("snapshot drop %s: %w", tag, err)
	}
	delete(s.committed, tag)
	d.storeRetainedLocked()
	s.mu.Unlock()
	if err := d.chunks.GCPreImages(d.retainedEpochs()); err != nil {
		return nil, fmt.Errorf("snapshot drop %s: %w", tag, err)
	}
	d.snapDrops.Add(1)
	return okResp(0).Bytes(), nil
}
