package daemon

import (
	"math/rand"
	"testing"

	"repro/internal/proto"
	"repro/internal/rpc"
)

// TestHandlersSurviveGarbageRequests feeds random bytes to every
// registered operation: handlers must return errors, never panic and
// never corrupt the daemon (a follow-up valid request still works).
// Daemons face whatever arrives on the wire; decode failures must be
// contained.
func TestHandlersSurviveGarbageRequests(t *testing.T) {
	d := newTestDaemon(t)
	ops := []rpc.Op{
		proto.OpPing, proto.OpCreate, proto.OpStat, proto.OpRemoveMeta,
		proto.OpUpdateSize, proto.OpWriteChunks, proto.OpReadChunks,
		proto.OpRemoveChunks, proto.OpTruncateChunks, proto.OpReadDir, proto.OpStats,
		proto.OpBatchMeta,
	}
	rnd := rand.New(rand.NewSource(1))
	for trial := 0; trial < 3000; trial++ {
		op := ops[rnd.Intn(len(ops))]
		payload := make([]byte, rnd.Intn(64))
		rnd.Read(payload)
		var bulk rpc.Bulk
		if rnd.Intn(2) == 0 {
			b := make([]byte, rnd.Intn(256))
			bulk = rpc.SliceBulk(b)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("op %d panicked on %v: %v", op, payload, r)
				}
			}()
			// Errors are expected; panics and hangs are not.
			_, _ = d.Server().Dispatch(op, payload, bulk)
		}()
	}
	// The daemon still serves valid traffic.
	if _, err := call(t, d, proto.OpPing, nil, nil); err != nil {
		t.Fatalf("daemon wedged after garbage: %v", err)
	}
}

// TestSpanLimitsSane verifies a write RPC claiming an enormous span count
// with a tiny payload is rejected cleanly rather than allocating the
// claimed space from the length field alone.
func TestSpanLimitsSane(t *testing.T) {
	d := newTestDaemon(t)
	e := rpc.NewEnc(32)
	e.Str("/x")
	e.U32(1 << 30) // claimed span count, no span data follows
	if _, err := d.Server().Dispatch(proto.OpWriteChunks, e.Bytes(), rpc.SliceBulk(make([]byte, 8))); err == nil {
		t.Fatal("absurd span count accepted")
	}
}
