package daemon_test

// The snapshot crash-consistency harness: real TCP daemons on real
// on-disk state whose sockets a test severs at the protocol's worst
// moments — between reserve and commit, mid-commit fan-out, and
// mid-stage-out-from-snapshot. The invariant under test is the
// two-phase design's promise: a crash can leave a tag unusable
// (partially committed, recoverable by re-commit or drop) but never
// torn — after restart on the same directories the namespace reads
// either entirely pre-snapshot or entirely post-snapshot, and a
// committed tag's pinned bytes survive the crash byte-identically.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/daemon"
	"repro/internal/distributor"
	"repro/internal/rpc"
	"repro/internal/staging"
	"repro/internal/transport"
	"repro/internal/vfs"
)

// severListener remembers every accepted connection so the test can
// sever them: the client-visible signature of kill -9 is the socket
// dying mid-conversation, not a polite shutdown.
type severListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (r *severListener) Accept() (net.Conn, error) {
	c, err := r.Listener.Accept()
	if err == nil {
		r.mu.Lock()
		r.conns = append(r.conns, c)
		r.mu.Unlock()
	}
	return c, err
}

func (r *severListener) kill() {
	r.Listener.Close()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.conns {
		c.Close()
	}
}

// crashCluster runs nodes TCP daemons over per-node on-disk state. kill
// severs one daemon's socket and closes it; restart reopens the same
// directories under a fresh listener — the client's lazily re-dialing
// pools find the new address on their next call.
type crashCluster struct {
	t     *testing.T
	dirs  []string
	ds    []*daemon.Daemon
	lns   []*severListener
	addrs []string
	mu    sync.Mutex
	c     *client.Client
}

func (cc *crashCluster) addr(i int) string {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.addrs[i]
}

func (cc *crashCluster) serve(i int) {
	cc.t.Helper()
	fs, err := vfs.NewOS(cc.dirs[i])
	if err != nil {
		cc.t.Fatal(err)
	}
	d, err := daemon.New(daemon.Config{ID: i, FS: fs, ChunkSize: 1024, SyncWAL: true})
	if err != nil {
		cc.t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		d.Close()
		cc.t.Fatal(err)
	}
	rl := &severListener{Listener: l}
	go transport.ServeTCP(rl, d.Server())
	cc.mu.Lock()
	cc.ds[i], cc.lns[i], cc.addrs[i] = d, rl, l.Addr().String()
	cc.mu.Unlock()
}

// kill severs daemon i's socket mid-conversation, then releases its
// storage locks so restart can reopen the same directories. Operations
// acknowledged before the sever were made durable by SyncWAL; in-flight
// ones die with the socket, exactly as a crash loses them.
func (cc *crashCluster) kill(i int) {
	cc.lns[i].kill()
	cc.ds[i].Close()
}

func (cc *crashCluster) restart(i int) {
	cc.serve(i)
}

func startCrashCluster(t *testing.T, nodes int) *crashCluster {
	t.Helper()
	cc := &crashCluster{
		t:     t,
		dirs:  make([]string, nodes),
		ds:    make([]*daemon.Daemon, nodes),
		lns:   make([]*severListener, nodes),
		addrs: make([]string, nodes),
	}
	root := t.TempDir()
	for i := 0; i < nodes; i++ {
		cc.dirs[i] = filepath.Join(root, fmt.Sprintf("node%d", i))
		cc.serve(i)
	}
	t.Cleanup(func() {
		for i := range cc.ds {
			cc.lns[i].kill()
			cc.ds[i].Close()
		}
	})
	conns := make([]rpc.Conn, nodes)
	for i := range conns {
		node := i
		conns[i] = transport.NewPool(1, func() (rpc.Conn, error) {
			return transport.DialTCP(cc.addr(node), 5*time.Second)
		})
		t.Cleanup(func(conn rpc.Conn) func() { return func() { conn.Close() } }(conns[i]))
	}
	dist, err := distributor.New("simplehash", nodes)
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.New(client.Config{Conns: conns, Dist: dist, ChunkSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EnsureRoot(); err != nil {
		t.Fatal(err)
	}
	cc.c = c
	return cc
}

// seedFiles writes enough paths that every daemon owns some metadata and
// some chunks. Content is a function of (path, generation) so both sides
// of a snapshot are reconstructible.
func crashContent(i, generation int) []byte {
	buf := make([]byte, 1500+i*700) // crosses the 1024-byte chunk boundary
	for j := range buf {
		buf[j] = byte(i*31 + j/257 + generation*97)
	}
	return buf
}

func seedFiles(t *testing.T, c *client.Client, n, generation int) {
	t.Helper()
	for i := 0; i < n; i++ {
		fd, err := c.Open(fmt.Sprintf("/ck/f%d", i), client.O_WRONLY|client.O_CREATE|client.O_TRUNC)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.WriteAt(fd, crashContent(i, generation), 0); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(fd); err != nil {
			t.Fatal(err)
		}
	}
}

// readSnapFull reads one path's full pinned content at epoch.
func readSnapFull(t *testing.T, c *client.Client, path string, epoch uint64, size int) []byte {
	t.Helper()
	buf := make([]byte, size+512)
	var off int
	for {
		n, err := c.ReadSnapshot(path, epoch, buf[off:], int64(off))
		off += n
		if errors.Is(err, io.EOF) {
			return buf[:off]
		}
		if err != nil {
			t.Fatalf("read %s at epoch %d: %v", path, epoch, err)
		}
		if n == 0 {
			return buf[:off]
		}
	}
}

// readLiveFull reads one path's full live content.
func readLiveFull(c *client.Client, path string) ([]byte, error) {
	info, err := c.Stat(path)
	if err != nil {
		return nil, err
	}
	fd, err := c.Open(path, client.O_RDONLY)
	if err != nil {
		return nil, err
	}
	defer c.Close(fd)
	buf := make([]byte, info.Size())
	var off int
	for off < len(buf) {
		n, err := c.ReadAt(fd, buf[off:], int64(off))
		off += n
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	return buf[:off], nil
}

// TestCrashBetweenReserveAndCommit severs a daemon after every node
// reserved the tag but before any commit lands. After restart on the
// same directories, the tag is pending (unusable, not listed), the live
// namespace is untouched, and the client can still complete the commit
// — reservations are durable — or abort it cleanly.
func TestCrashBetweenReserveAndCommit(t *testing.T) {
	const nodes, files = 3, 6
	cc := startCrashCluster(t, nodes)
	c := cc.c
	if err := c.Mkdir("/ck"); err != nil {
		t.Fatal(err)
	}
	seedFiles(t, c, files, 1)

	epoch, err := c.SnapshotReserve("boundary")
	if err != nil {
		t.Fatal(err)
	}
	cc.kill(1)
	// The tag must not be listed anywhere: nothing committed.
	cc.restart(1)
	ents, err := c.Snapshots()
	if err != nil {
		// The first call after a sever eats the dead socket; the lazily
		// re-dialing pool reconnects on the next one.
		ents, err = c.Snapshots()
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("uncommitted tag listed: %v", ents)
	}
	// The live namespace reopened untorn.
	for i := 0; i < files; i++ {
		got, err := readLiveFull(c, fmt.Sprintf("/ck/f%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, crashContent(i, 1)) {
			t.Fatalf("file %d torn after crash between reserve and commit", i)
		}
	}
	// The reservation survived the crash: completing the commit works and
	// the tag pins the pre-crash namespace.
	if err := c.SnapshotCommit("boundary", epoch); err != nil {
		t.Fatal(err)
	}
	seedFiles(t, c, files, 2) // post-snapshot overwrites
	for i := 0; i < files; i++ {
		want := crashContent(i, 1)
		got := readSnapFull(t, c, fmt.Sprintf("/ck/f%d", i), epoch, len(want))
		if !bytes.Equal(got, want) {
			t.Fatalf("file %d: snapshot view diverged after completed commit", i)
		}
	}
}

// TestCrashMidCommit severs a daemon after some daemons committed the
// tag but before the fan-out reaches the severed one. The tag must be
// unusable but never torn: not listed while partial, fully usable after
// the client re-drives the idempotent commit against the restarted
// daemon, and every pinned byte identical to the pre-snapshot state.
func TestCrashMidCommit(t *testing.T) {
	const nodes, files = 3, 6
	cc := startCrashCluster(t, nodes)
	c := cc.c
	if err := c.Mkdir("/ck"); err != nil {
		t.Fatal(err)
	}
	seedFiles(t, c, files, 1)

	epoch, err := c.SnapshotReserve("mid")
	if err != nil {
		t.Fatal(err)
	}
	// Kill one daemon, then drive the commit fan-out: the survivors
	// commit, the dead one fails — a commit interrupted midway.
	cc.kill(2)
	if err := c.SnapshotCommit("mid", epoch); err == nil {
		t.Fatal("commit succeeded with a dead daemon")
	}
	cc.restart(2)
	// Partial commit: the intersection hides the tag.
	ents, err := c.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("partially committed tag listed: %v", ents)
	}
	// Live namespace untorn.
	for i := 0; i < files; i++ {
		got, err := readLiveFull(c, fmt.Sprintf("/ck/f%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, crashContent(i, 1)) {
			t.Fatalf("file %d torn after mid-commit crash", i)
		}
	}
	// Re-driving the commit is idempotent on the survivors and completes
	// the restarted daemon: the tag becomes fully usable.
	if err := c.SnapshotCommit("mid", epoch); err != nil {
		t.Fatal(err)
	}
	ents, err = c.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Tag != "mid" || ents[0].Epoch != epoch {
		t.Fatalf("completed tag not listed correctly: %v", ents)
	}
	seedFiles(t, c, files, 2)
	for i := 0; i < files; i++ {
		want := crashContent(i, 1)
		got := readSnapFull(t, c, fmt.Sprintf("/ck/f%d", i), epoch, len(want))
		if !bytes.Equal(got, want) {
			t.Fatalf("file %d: snapshot view diverged after recovered commit", i)
		}
	}
}

// TestCrashMidStageOutFromSnapshot commits a tag, overwrites the live
// files, severs a daemon while the tag is draining to the host, then
// restarts it and re-drives the stage-out. The retried transfer must
// produce exactly the pinned pre-image — the crash may lose the
// in-flight transfer, never the snapshot it reads from.
func TestCrashMidStageOutFromSnapshot(t *testing.T) {
	const nodes, files = 3, 8
	cc := startCrashCluster(t, nodes)
	c := cc.c
	if err := c.Mkdir("/ck"); err != nil {
		t.Fatal(err)
	}
	seedFiles(t, c, files, 1)
	epoch, err := c.Snapshot("drain")
	if err != nil {
		t.Fatal(err)
	}
	_ = epoch
	seedFiles(t, c, files, 2) // live tree moves on

	// First attempt races a kill: sever as soon as bytes start landing.
	dst1 := t.TempDir()
	done := make(chan error, 1)
	go func() {
		rep, err := staging.StageOut(c, "/ck", dst1, staging.Options{Snapshot: "drain", Workers: 2})
		if err == nil {
			err = rep.Err()
		}
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ents, _ := os.ReadDir(dst1); len(ents) > 0 {
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	cc.kill(0)
	<-done // failed or finished; either way the crash landed mid-run
	cc.restart(0)

	// The retry reads the same pinned bytes through the restarted daemon:
	// pre-images and version history reloaded from disk.
	dst2 := t.TempDir()
	rep, err := staging.StageOut(c, "/ck", dst2, staging.Options{Snapshot: "drain", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < files; i++ {
		got, err := os.ReadFile(filepath.Join(dst2, fmt.Sprintf("f%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, crashContent(i, 1)) {
			t.Fatalf("file %d: staged bytes differ from the snapshot pre-image after crash", i)
		}
	}
	// And the live tree still reads generation 2 — the drain never
	// disturbed it.
	for i := 0; i < files; i++ {
		got, err := readLiveFull(c, fmt.Sprintf("/ck/f%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, crashContent(i, 2)) {
			t.Fatalf("live file %d torn by snapshot drain crash", i)
		}
	}
	if err := c.SnapshotDrop("drain"); err != nil {
		t.Fatal(err)
	}
}
