// Package daemon implements the GekkoFS server process (paper §III-B,
// Fig. 1): a key-value store holding the metadata of the paths hashed to
// this node, an I/O persistence layer storing one file per chunk on the
// node-local file system, and an RPC layer accepting local and remote
// client operations. Daemons never talk to each other; all coordination
// happens through clients, which is what lets the file system scale
// without central structures.
package daemon

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/chunkstore"
	"repro/internal/kvstore"
	"repro/internal/meta"
	"repro/internal/proto"
	"repro/internal/rpc"
	"repro/internal/telemetry"
	"repro/internal/vfs"
)

// Config configures one daemon.
type Config struct {
	// ID is the daemon's index within the cluster's host list.
	ID int
	// FS is the node-local storage (the paper's SSD scratch dir). The KV
	// store lives under "meta/", chunks under "chunks/".
	FS vfs.FS
	// ChunkSize is the file system chunk size; must match the clients'.
	// Zero selects meta.DefaultChunkSize (512 KiB, the paper's value).
	ChunkSize int64
	// PoolSize bounds concurrently executing RPC handlers (Margo
	// execution streams). Zero selects the rpc default.
	PoolSize int
	// SyncWAL makes metadata operations durable before acknowledgement.
	SyncWAL bool
	// ShmSocket, when non-empty, is the path of the Unix-domain doorbell
	// socket this daemon serves the shared-memory transport on. The ping
	// reply advertises it so co-located clients can switch to the
	// zero-copy segment path at mount time. The daemon does not listen on
	// it itself — the process hosting the daemon does (transport.ServeShm).
	ShmSocket string
}

// Stats are the daemon's operation counters. The type is shared with the
// wire representation clients decode (proto.DaemonStats, served by
// OpStats), so in-process tests and remote tooling read the same shape.
type Stats = proto.DaemonStats

// Daemon is one GekkoFS server.
type Daemon struct {
	cfg    Config
	srv    *rpc.Server
	db     *kvstore.DB
	chunks *chunkstore.Store

	creates, statOps, removes atomic.Uint64
	sizeUpdates               atomic.Uint64
	writeOps, readOps         atomic.Uint64
	writeBytes, readBytes     atomic.Uint64
	readSpans, readPushed     atomic.Uint64
	readDirs                  atomic.Uint64
	batchRPCs, batchedOps     atomic.Uint64
	replicaWrites             atomic.Uint64
	snapPins, snapDrops       atomic.Uint64
	snapReads                 atomic.Uint64

	// snaps is the durable snapshot table's in-memory mirror (snapshot.go).
	snaps snapState

	reg       *telemetry.Registry
	queueHist *telemetry.Histogram
	opHists   [proto.OpSnapshotDrop + 1]*telemetry.Histogram

	startup time.Duration
}

// sub scopes a vfs.FS to a subdirectory by prefixing names.
type sub struct {
	fs     vfs.FS
	prefix string
}

func (s sub) Create(n string) (vfs.File, error)       { return s.fs.Create(s.prefix + n) }
func (s sub) Open(n string) (vfs.File, error)         { return s.fs.Open(s.prefix + n) }
func (s sub) OpenOrCreate(n string) (vfs.File, error) { return s.fs.OpenOrCreate(s.prefix + n) }
func (s sub) Remove(n string) error                   { return s.fs.Remove(s.prefix + n) }
func (s sub) Rename(o, n string) error                { return s.fs.Rename(s.prefix+o, s.prefix+n) }
func (s sub) List(d string) ([]string, error)         { return s.fs.List(s.prefix + d) }
func (s sub) MkdirAll(d string) error                 { return s.fs.MkdirAll(s.prefix + d) }
func (s sub) Exists(n string) bool                    { return s.fs.Exists(s.prefix + n) }

// New starts a daemon: opens (or recovers) the metadata store, attaches
// the chunk store, and registers every RPC handler. The measured startup
// time is retained because the paper quantifies deployment speed
// (< 20 s for 512 daemons).
func New(cfg Config) (*Daemon, error) {
	begin := time.Now()
	if cfg.FS == nil {
		return nil, errors.New("daemon: Config.FS is required")
	}
	if cfg.ChunkSize == 0 {
		cfg.ChunkSize = meta.DefaultChunkSize
	}
	if cfg.ChunkSize < 0 {
		return nil, fmt.Errorf("daemon: invalid chunk size %d", cfg.ChunkSize)
	}
	db, err := kvstore.Open(kvstore.Options{
		FS:      sub{fs: cfg.FS, prefix: "meta/"},
		Merger:  sizeMerger,
		SyncWAL: cfg.SyncWAL,
	})
	if err != nil {
		return nil, fmt.Errorf("daemon: metadata store: %w", err)
	}
	d := &Daemon{
		cfg:    cfg,
		srv:    rpc.NewServer(cfg.PoolSize),
		db:     db,
		chunks: chunkstore.New(cfg.FS),
	}
	if err := d.loadSnapshots(); err != nil {
		db.Close()
		return nil, fmt.Errorf("daemon: snapshot state: %w", err)
	}
	d.register()
	d.initTelemetry()
	d.startup = time.Since(begin)
	return d, nil
}

// Server returns the RPC dispatcher for transports to serve.
func (d *Daemon) Server() *rpc.Server { return d.srv }

// StartupTime reports how long New took (KV recovery dominates).
func (d *Daemon) StartupTime() time.Duration { return d.startup }

// Stats snapshots the operation counters, folding in the wire-tier
// counters the transports maintain on the RPC server.
func (d *Daemon) Stats() Stats {
	w := d.srv.Wire().Snapshot()
	st := Stats{
		Creates:         d.creates.Load(),
		StatOps:         d.statOps.Load(),
		Removes:         d.removes.Load(),
		SizeUpdates:     d.sizeUpdates.Load(),
		WriteOps:        d.writeOps.Load(),
		ReadOps:         d.readOps.Load(),
		WriteBytes:      d.writeBytes.Load(),
		ReadBytes:       d.readBytes.Load(),
		ReadSpans:       d.readSpans.Load(),
		ReadBytesPushed: d.readPushed.Load(),
		ReadDirs:        d.readDirs.Load(),
		BatchRPCs:       d.batchRPCs.Load(),
		BatchedOps:      d.batchedOps.Load(),
		FramesIn:        w.FramesIn,
		FramesOut:       w.FramesOut,
		WireBytesIn:     w.BytesIn,
		WireBytesOut:    w.BytesOut,
		VectoredWrites:  w.VectoredWrites,
		ShmCalls:        w.ShmCalls,
		ReplicaWrites:   d.replicaWrites.Load(),
		SnapshotPins:    d.snapPins.Load(),
		SnapshotDrops:   d.snapDrops.Load(),
		SnapshotReads:   d.snapReads.Load(),
	}
	st.CowCopies, st.CowBytes = d.chunks.CowStats()
	return st
}

// Close stops the RPC server and the metadata store.
func (d *Daemon) Close() error {
	d.srv.Close()
	return d.db.Close()
}

// sizeMerger folds size-update operands (encoded [i64 size][i64 mtime],
// plus a trailing [u64 epoch] since protocol v8) into a versioned
// metadata record, keeping the maximum size — the KV-store merge GekkoFS
// performs for lock-free size growth. An operand landing on a
// concurrently removed path recreates a bare regular-file record; GekkoFS
// accepts this relaxed outcome rather than serializing writers against
// removers (paper §III-A). The merger must stay deterministic — WAL
// recovery replays it — so the epoch travels in the operand (stamped by
// the handler at arrival) and version GC happens only in handlers.
func sizeMerger(_ []byte, existing []byte, operands [][]byte) []byte {
	var vm meta.VersionedMeta
	if existing != nil {
		if v, err := meta.DecodeVersionedMeta(existing); err == nil {
			vm = v
		}
	}
	if len(vm.V) > 0 {
		if md, live := vm.Live(); live && md.IsDir() {
			// Directories have no size to grow. The handlers refuse size
			// updates on directory records up front, but that check is
			// unlocked — an operand racing a mkdir can still land here,
			// and must not mutate the directory.
			return append([]byte(nil), existing...)
		}
	}
	for _, op := range operands {
		d := rpc.NewDec(op)
		size, mtime := d.I64(), d.I64()
		var epoch uint64
		if d.Err() == nil && d.Remaining() > 0 {
			epoch = d.U64()
		}
		if d.Err() != nil {
			continue
		}
		switch {
		case len(vm.V) == 0:
			// Absent (or corrupt) record: recreate at the operand's own
			// epoch — not epoch 0, which would fabricate history earlier
			// snapshots could see.
			vm.V = []meta.Version{{Epoch: epoch, Meta: meta.Metadata{Mode: meta.ModeRegular}}}
		case vm.Newest().Tombstone:
			vm.Stamp(epoch, meta.Metadata{Mode: meta.ModeRegular})
		case epoch > vm.Newest().Epoch:
			vm.Stamp(epoch, vm.Newest().Meta)
		}
		n := vm.Newest()
		if size > n.Meta.Size {
			n.Meta.Size = size
		}
		if mtime > n.Meta.MTimeNS {
			n.Meta.MTimeNS = mtime
		}
	}
	if len(vm.V) > meta.MaxVersions {
		vm.V = vm.V[:meta.MaxVersions]
	}
	return vm.Encode()
}
