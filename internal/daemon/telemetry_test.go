package daemon

import (
	"testing"
	"time"

	"repro/internal/meta"
	"repro/internal/proto"
	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// TestStatNamesZipValues pins the DaemonStats wire order to the metric
// name catalog: Values() and DaemonStatNames must stay parallel arrays,
// and a known counter must land under its exported name.
func TestStatNamesZipValues(t *testing.T) {
	d := newTestDaemon(t)
	if _, err := call(t, d, proto.OpCreate, encCreate("/f", meta.ModeRegular), nil); err != nil {
		t.Fatal(err)
	}
	vals := d.Stats().Values()
	if len(vals) != len(telemetry.DaemonStatNames) {
		t.Fatalf("Values() has %d entries, DaemonStatNames has %d — keep them parallel",
			len(vals), len(telemetry.DaemonStatNames))
	}
	byName := make(map[string]uint64, len(vals))
	for i, name := range telemetry.DaemonStatNames {
		byName[name] = vals[i]
	}
	if byName["gkfs_daemon_creates_total"] != 1 {
		t.Fatalf("creates_total = %d after one create (zip order broken?)", byName["gkfs_daemon_creates_total"])
	}
}

// TestStatsExtRidesStatsReply drives a few ops through the dispatch
// path, then decodes the OpStats reply the way a v7 client does: the
// fixed DaemonStats block first, then the trailing StatsExt histogram
// extension, with nothing left over.
func TestStatsExtRidesStatsReply(t *testing.T) {
	d := newTestDaemon(t)
	if _, err := call(t, d, proto.OpCreate, encCreate("/f", meta.ModeRegular), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := call(t, d, proto.OpStat, encPath("/f"), nil); err != nil {
		t.Fatal(err)
	}

	dec, err := call(t, d, proto.OpStats, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := proto.DecodeDaemonStats(dec)
	if st.Creates != 1 || st.StatOps != 1 {
		t.Fatalf("decoded stats = %+v", st)
	}
	if dec.Err() != nil || dec.Remaining() == 0 {
		t.Fatalf("no StatsExt after DaemonStats (err %v, %d remaining)", dec.Err(), dec.Remaining())
	}
	ext := proto.DecodeStatsExt(dec)
	if err := dec.Done(); err != nil {
		t.Fatalf("trailing bytes after StatsExt: %v", err)
	}
	got := make(map[string]telemetry.HistSnapshot, len(ext.Ops))
	for _, oh := range ext.Ops {
		if oh.Hist.Count == 0 {
			t.Fatalf("StatsExt carries empty histogram %q", oh.Name)
		}
		got[oh.Name] = oh.Hist
	}
	for _, want := range []string{
		telemetry.DaemonQueueWaitNS,
		telemetry.DaemonOpCreateNS,
		telemetry.DaemonOpStatNS,
	} {
		if got[want].Count == 0 {
			t.Fatalf("StatsExt missing %q after matching ops (have %v)", want, ext.Ops)
		}
	}
}

// TestObserverFeedsHistograms asserts the dispatch observer populates
// the always-on registry: per-op handler time and queue wait both
// record, and the samples carry plausible (non-negative, summed)
// durations.
func TestObserverFeedsHistograms(t *testing.T) {
	d := newTestDaemon(t)
	const n = 8
	for i := 0; i < n; i++ {
		if _, err := call(t, d, proto.OpPing, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	s := d.Telemetry().Snapshot()
	ping := s.Hists[telemetry.DaemonOpPingNS]
	if ping.Count != n {
		t.Fatalf("ping histogram count = %d, want %d", ping.Count, n)
	}
	if ping.Sum < 0 {
		t.Fatalf("ping histogram sum = %d", ping.Sum)
	}
	if queue := s.Hists[telemetry.DaemonQueueWaitNS]; queue.Count != n {
		t.Fatalf("queue-wait histogram count = %d, want %d", queue.Count, n)
	}
}

// TestObserverSeesDispatchTrace runs a sampled trace through the
// daemon's real dispatch path and asserts the observer-built telemetry
// still records it (the trace must not divert the op off the
// instrumented path).
func TestObserverSeesDispatchTrace(t *testing.T) {
	d := newTestDaemon(t)
	tr := rpc.Trace{ID: 0xABCD, Flags: rpc.TraceSampled}
	resp, err := d.Server().DispatchTrace(proto.OpPing, nil, nil, tr)
	if err != nil {
		t.Fatal(err)
	}
	dec := rpc.NewDec(resp)
	if errno := proto.Errno(dec.U16()); errno != proto.OK {
		t.Fatal(errno.Err())
	}
	deadline := time.Now().Add(time.Second)
	for {
		if d.Telemetry().Snapshot().Hists[telemetry.DaemonOpPingNS].Count == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("traced dispatch never reached the op histogram")
		}
		time.Sleep(time.Millisecond)
	}
}
