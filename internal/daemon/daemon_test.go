package daemon

import (
	"errors"
	"testing"
	"time"

	"repro/internal/meta"
	"repro/internal/proto"
	"repro/internal/rpc"
	"repro/internal/vfs"
)

func newTestDaemon(t *testing.T) *Daemon {
	t.Helper()
	d, err := New(Config{ID: 3, FS: vfs.NewMem(), ChunkSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// call dispatches directly against the daemon's server, decoding the
// errno header like the client does.
func call(t *testing.T, d *Daemon, op rpc.Op, payload, bulk []byte) (*rpc.Dec, error) {
	t.Helper()
	var b rpc.Bulk
	if bulk != nil {
		b = rpc.SliceBulk(bulk)
	}
	resp, err := d.Server().Dispatch(op, payload, b)
	if err != nil {
		return nil, err
	}
	dec := rpc.NewDec(resp)
	if errno := proto.Errno(dec.U16()); errno != proto.OK {
		return nil, errno.Err()
	}
	return dec, nil
}

func encPath(path string) []byte {
	e := rpc.NewEnc(len(path) + 4)
	e.Str(path)
	return e.Bytes()
}

func encCreate(path string, mode meta.Mode) []byte {
	e := rpc.NewEnc(len(path) + 16)
	e.Str(path).U8(uint8(mode)).I64(time.Now().UnixNano())
	return e.Bytes()
}

func encRemove(path string, flags uint8) []byte {
	e := rpc.NewEnc(len(path) + 8)
	e.Str(path).U8(flags)
	return e.Bytes()
}

func encReadDir(dir, after string, limit uint32) []byte {
	e := rpc.NewEnc(len(dir) + len(after) + 12)
	e.Str(dir).Str(after).U32(limit)
	return e.Bytes()
}

func TestPingReturnsIDAndVersion(t *testing.T) {
	d := newTestDaemon(t)
	dec, err := call(t, d, proto.OpPing, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if id := dec.U32(); id != 3 {
		t.Fatalf("ping id = %d", id)
	}
	if v := dec.U16(); v != proto.ProtocolVersion {
		t.Fatalf("ping version = %d, want %d", v, proto.ProtocolVersion)
	}
	// The shm advertisement trailer: empty unless the daemon was
	// configured with a doorbell socket.
	if sock := dec.Str(); sock != "" {
		t.Fatalf("ping shm socket = %q, want empty", sock)
	}
	if err := dec.Done(); err != nil {
		t.Fatal(err)
	}
}

// encRead builds an OpReadChunks request; withFlags selects the
// version-3 shape (trailing flags byte).
func encRead(path string, spans []proto.ChunkSpan, flags uint8, withFlags bool) []byte {
	e := rpc.NewEnc(len(path) + 17 + 24*len(spans))
	e.Str(path)
	proto.EncodeSpans(e, spans)
	if withFlags {
		e.U8(flags)
	}
	return e.Bytes()
}

// TestReadChunksSizeView covers the stat-free read reply extension: the
// size view is piggybacked only when requested, reports the metadata
// record when present, answers ReadSizeNone for missing paths, and
// refuses directories.
func TestReadChunksSizeView(t *testing.T) {
	d := newTestDaemon(t)
	if _, err := call(t, d, proto.OpCreate, encCreate("/f", meta.ModeRegular), nil); err != nil {
		t.Fatal(err)
	}
	// Give /f some bytes and a size.
	span := []proto.ChunkSpan{{ID: 0, Off: 0, Len: 5}}
	if _, err := call(t, d, proto.OpWriteChunks, encRead("/f", span, 0, false), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	e := rpc.NewEnc(32)
	e.Str("/f").I64(5).U8(0).I64(1)
	if _, err := call(t, d, proto.OpUpdateSize, e.Bytes(), nil); err != nil {
		t.Fatal(err)
	}

	// Old-shape request (no flags byte): the reply must carry no
	// extension — the exact frame a pre-version-3 client expects.
	dec, err := call(t, d, proto.OpReadChunks, encRead("/f", span, 0, false), make([]byte, 5))
	if err != nil {
		t.Fatal(err)
	}
	if cnt := dec.U32(); cnt != 1 {
		t.Fatalf("count = %d", cnt)
	}
	_ = dec.I64()
	if err := dec.Done(); err != nil {
		t.Fatalf("old-shape reply carries trailing bytes: %v", err)
	}

	// Versioned request: state + size follow the counts.
	dec, err = call(t, d, proto.OpReadChunks, encRead("/f", span, proto.ReadWantSize, true), make([]byte, 5))
	if err != nil {
		t.Fatal(err)
	}
	_ = dec.U32()
	_ = dec.I64()
	if state := dec.U8(); state != proto.ReadSizeFile {
		t.Fatalf("state = %d, want ReadSizeFile", state)
	}
	if size := dec.I64(); size != 5 {
		t.Fatalf("size view = %d, want 5", size)
	}
	if err := dec.Done(); err != nil {
		t.Fatal(err)
	}

	// Zero-span size probe on a missing path: no bulk region at all.
	dec, err = call(t, d, proto.OpReadChunks, encRead("/missing", nil, proto.ReadWantSize, true), nil)
	if err != nil {
		t.Fatal(err)
	}
	if cnt := dec.U32(); cnt != 0 {
		t.Fatalf("probe count = %d", cnt)
	}
	if state := dec.U8(); state != proto.ReadSizeNone {
		t.Fatalf("probe state = %d, want ReadSizeNone", state)
	}
	_ = dec.I64()
	if err := dec.Done(); err != nil {
		t.Fatal(err)
	}

	// A directory refuses size-view reads outright.
	if _, err := call(t, d, proto.OpCreate, encCreate("/dir", meta.ModeDir), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := call(t, d, proto.OpReadChunks, encRead("/dir", nil, proto.ReadWantSize, true), nil); !errors.Is(err, proto.ErrIsDir) {
		t.Fatalf("size-view read of a directory = %v, want ErrIsDir", err)
	}
}

func TestCreateStatRemoveLifecycle(t *testing.T) {
	d := newTestDaemon(t)
	if _, err := call(t, d, proto.OpCreate, encCreate("/f", meta.ModeRegular), nil); err != nil {
		t.Fatal(err)
	}
	// Duplicate create fails with ErrExist.
	if _, err := call(t, d, proto.OpCreate, encCreate("/f", meta.ModeRegular), nil); !errors.Is(err, proto.ErrExist) {
		t.Fatalf("duplicate create = %v", err)
	}
	dec, err := call(t, d, proto.OpStat, encPath("/f"), nil)
	if err != nil {
		t.Fatal(err)
	}
	md, err := meta.DecodeMetadata(dec.Blob())
	if err != nil || md.IsDir() || md.Size != 0 {
		t.Fatalf("stat = %+v, %v", md, err)
	}
	dec, err = call(t, d, proto.OpRemoveMeta, encRemove("/f", 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if mode := dec.U8(); meta.Mode(mode) != meta.ModeRegular {
		t.Fatalf("removed mode = %d", mode)
	}
	if size := dec.I64(); size != 0 {
		t.Fatalf("removed size = %d", size)
	}
	if _, err := call(t, d, proto.OpStat, encPath("/f"), nil); !errors.Is(err, proto.ErrNotExist) {
		t.Fatalf("stat after remove = %v", err)
	}
	if _, err := call(t, d, proto.OpRemoveMeta, encRemove("/f", 0), nil); !errors.Is(err, proto.ErrNotExist) {
		t.Fatalf("double remove = %v", err)
	}
}

func TestUpdateSizeGrowIsMonotone(t *testing.T) {
	d := newTestDaemon(t)
	if _, err := call(t, d, proto.OpCreate, encCreate("/f", meta.ModeRegular), nil); err != nil {
		t.Fatal(err)
	}
	grow := func(size int64) {
		e := rpc.NewEnc(32)
		e.Str("/f").I64(size).U8(0).I64(time.Now().UnixNano())
		if _, err := call(t, d, proto.OpUpdateSize, e.Bytes(), nil); err != nil {
			t.Fatal(err)
		}
	}
	grow(100)
	grow(50) // late-arriving smaller candidate must not shrink
	grow(80)
	dec, err := call(t, d, proto.OpStat, encPath("/f"), nil)
	if err != nil {
		t.Fatal(err)
	}
	md, _ := meta.DecodeMetadata(dec.Blob())
	if md.Size != 100 {
		t.Fatalf("size = %d, want max 100", md.Size)
	}
}

func TestUpdateSizeTruncateValidates(t *testing.T) {
	d := newTestDaemon(t)
	if _, err := call(t, d, proto.OpCreate, encCreate("/dir", meta.ModeDir), nil); err != nil {
		t.Fatal(err)
	}
	tr := func(path string, size int64) error {
		e := rpc.NewEnc(32)
		e.Str(path).I64(size).U8(1).I64(time.Now().UnixNano())
		_, err := call(t, d, proto.OpUpdateSize, e.Bytes(), nil)
		return err
	}
	if err := tr("/dir", 0); !errors.Is(err, proto.ErrIsDir) {
		t.Fatalf("truncate dir = %v", err)
	}
	if err := tr("/missing", 0); !errors.Is(err, proto.ErrNotExist) {
		t.Fatalf("truncate missing = %v", err)
	}
}

func TestWriteReadChunksThroughHandlers(t *testing.T) {
	d := newTestDaemon(t)
	// Two spans of different chunks in one RPC.
	e := rpc.NewEnc(64)
	e.Str("/data")
	proto.EncodeSpans(e, []proto.ChunkSpan{
		{ID: 0, Off: 10, Len: 5},
		{ID: 7, Off: 0, Len: 3},
	})
	bulk := []byte("HELLOxyz")
	dec, err := call(t, d, proto.OpWriteChunks, e.Bytes(), bulk)
	if err != nil {
		t.Fatal(err)
	}
	if n := dec.I64(); n != 8 {
		t.Fatalf("written = %d", n)
	}

	re := rpc.NewEnc(64)
	re.Str("/data")
	proto.EncodeSpans(re, []proto.ChunkSpan{
		{ID: 0, Off: 10, Len: 5},
		{ID: 7, Off: 0, Len: 3},
		{ID: 9, Off: 0, Len: 4}, // never written: zeros
	})
	out := make([]byte, 12)
	dec, err = call(t, d, proto.OpReadChunks, re.Bytes(), out)
	if err != nil {
		t.Fatal(err)
	}
	if cnt := dec.U32(); cnt != 3 {
		t.Fatalf("span count = %d", cnt)
	}
	if c0, c1, c2 := dec.I64(), dec.I64(), dec.I64(); c0 != 5 || c1 != 3 || c2 != 0 {
		t.Fatalf("counts = %d,%d,%d", c0, c1, c2)
	}
	if string(out[:8]) != "HELLOxyz" {
		t.Fatalf("bulk out = %q", out)
	}
	if string(out[8:]) != "\x00\x00\x00\x00" {
		t.Fatalf("hole not zero: %q", out[8:])
	}
}

func TestWriteChunksBulkTooSmall(t *testing.T) {
	d := newTestDaemon(t)
	e := rpc.NewEnc(32)
	e.Str("/x")
	proto.EncodeSpans(e, []proto.ChunkSpan{{ID: 0, Off: 0, Len: 100}})
	_, err := call(t, d, proto.OpWriteChunks, e.Bytes(), make([]byte, 10))
	if err == nil {
		t.Fatal("short bulk accepted")
	}
}

func TestReadDirScopedToChildren(t *testing.T) {
	d := newTestDaemon(t)
	for _, p := range []string{"/a", "/a/x", "/a/y", "/a/x/deep", "/ab", "/b"} {
		mode := meta.ModeRegular
		if p == "/a" || p == "/a/x" {
			mode = meta.ModeDir
		}
		if _, err := call(t, d, proto.OpCreate, encCreate(p, mode), nil); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := call(t, d, proto.OpReadDir, encReadDir("/a", "", 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	n := dec.U32()
	names := map[string]bool{}
	for i := uint32(0); i < n; i++ {
		name := dec.Str()
		dec.U8()
		dec.I64()
		names[name] = true
	}
	if next := dec.Str(); next != "" {
		t.Fatalf("unexpected continuation token %q", next)
	}
	if err := dec.Done(); err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || !names["x"] || !names["y"] {
		t.Fatalf("children of /a = %v", names)
	}
}

func TestSizeMerger(t *testing.T) {
	base := meta.Metadata{Mode: meta.ModeRegular, Size: 100, CTimeNS: 5, MTimeNS: 5}
	op := func(size, mtime int64) []byte {
		e := rpc.NewEnc(16)
		e.I64(size).I64(mtime)
		return e.Bytes()
	}
	out := sizeMerger(nil, base.Encode(), [][]byte{op(50, 6), op(300, 7), op(200, 8)})
	md, err := meta.DecodeMetadata(out)
	if err != nil || md.Size != 300 || md.MTimeNS != 8 || md.CTimeNS != 5 {
		t.Fatalf("merged = %+v, %v", md, err)
	}
	// Merge onto a missing record resurrects a bare file (documented
	// relaxed semantics).
	out = sizeMerger(nil, nil, [][]byte{op(42, 1)})
	md, err = meta.DecodeMetadata(out)
	if err != nil || md.Size != 42 || md.IsDir() {
		t.Fatalf("orphan merge = %+v, %v", md, err)
	}
	// Malformed operands are skipped.
	out = sizeMerger(nil, base.Encode(), [][]byte{{1, 2, 3}})
	md, _ = meta.DecodeMetadata(out)
	if md.Size != 100 {
		t.Fatalf("malformed operand changed size: %d", md.Size)
	}
}

func TestStatsCounters(t *testing.T) {
	d := newTestDaemon(t)
	if _, err := call(t, d, proto.OpCreate, encCreate("/f", meta.ModeRegular), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := call(t, d, proto.OpStat, encPath("/f"), nil); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Creates != 1 || st.StatOps != 1 {
		t.Fatalf("stats = %+v", st)
	}
	dec, err := call(t, d, proto.OpStats, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c := dec.U64(); c != 1 {
		t.Fatalf("wire stats creates = %d", c)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil FS accepted")
	}
	if _, err := New(Config{FS: vfs.NewMem(), ChunkSize: -1}); err == nil {
		t.Fatal("negative chunk size accepted")
	}
}

func TestStartupTimeRecorded(t *testing.T) {
	d := newTestDaemon(t)
	if d.StartupTime() <= 0 {
		t.Fatal("startup time not recorded")
	}
}
