package vfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Mem is an in-memory FS. It is safe for concurrent use. Mem tracks, per
// file, how many bytes have been made durable by Sync; CrashClone builds a
// new Mem holding only the durable prefix of every file, simulating a node
// crash between write and fsync.
type Mem struct {
	mu    sync.RWMutex
	files map[string]*memFile
	dirs  map[string]bool
}

// NewMem returns an empty in-memory file system.
func NewMem() *Mem {
	return &Mem{files: make(map[string]*memFile), dirs: map[string]bool{"": true}}
}

type memFile struct {
	mu     sync.RWMutex
	data   []byte
	synced int64 // durable prefix length
	name   string
}

// Create implements FS.
func (m *Mem) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{name: name}
	m.files[name] = f
	return f, nil
}

// OpenOrCreate implements FS.
func (m *Mem) OpenOrCreate(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[name]; ok {
		return f, nil
	}
	f := &memFile{name: name}
	m.files[name] = f
	return f, nil
}

// Open implements FS.
func (m *Mem) Open(name string) (File, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	f, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return f, nil
}

// Remove implements FS.
func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	delete(m.files, name)
	return nil
}

// Rename implements FS.
func (m *Mem) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, oldname)
	}
	delete(m.files, oldname)
	f.name = newname
	m.files[newname] = f
	return nil
}

// List implements FS.
func (m *Mem) List(dir string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	prefix := dir
	if prefix != "" && !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	var names []string
	for name := range m.files {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		rest := name[len(prefix):]
		if rest == "" || strings.Contains(rest, "/") {
			continue // not a direct child
		}
		names = append(names, rest)
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS.
func (m *Mem) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[dir] = true
	return nil
}

// Exists implements FS.
func (m *Mem) Exists(name string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.files[name]
	return ok
}

// CrashClone returns a new Mem containing, for every file, only the bytes
// that had been Synced when the clone was taken. It models a hard crash:
// everything after the last fsync is lost.
func (m *Mem) CrashClone() *Mem {
	m.mu.RLock()
	defer m.mu.RUnlock()
	c := NewMem()
	for name, f := range m.files {
		f.mu.RLock()
		nf := &memFile{name: name, data: append([]byte(nil), f.data[:f.synced]...), synced: f.synced}
		f.mu.RUnlock()
		c.files[name] = nf
	}
	for d := range m.dirs {
		c.dirs[d] = true
	}
	return c
}

// TotalBytes returns the sum of all file sizes, used by tests asserting
// space reclamation after compaction.
func (m *Mem) TotalBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var n int64
	for _, f := range m.files {
		f.mu.RLock()
		n += int64(len(f.data))
		f.mu.RUnlock()
	}
	return n
}

// ReadAt implements File.
func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if off >= int64(len(f.data)) {
		return 0, fmt.Errorf("vfs: read at %d past EOF %d of %s", off, len(f.data), f.name)
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, fmt.Errorf("vfs: short read of %s", f.name)
	}
	return n, nil
}

// WriteAt implements File.
func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(f.data)) {
		grown := make([]byte, end)
		copy(grown, f.data)
		f.data = grown
	}
	copy(f.data[off:], p)
	return len(p), nil
}

// Append implements File.
func (f *memFile) Append(p []byte) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	off := int64(len(f.data))
	f.data = append(f.data, p...)
	return off, nil
}

// Size implements File.
func (f *memFile) Size() (int64, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return int64(len(f.data)), nil
}

// Sync implements File.
func (f *memFile) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.synced = int64(len(f.data))
	return nil
}

// Close implements File.
func (f *memFile) Close() error { return nil }
