package vfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// OS is an FS backed by a directory on the real file system — the
// node-local SSD scratch directory in a production deployment.
type OS struct {
	root string
}

// NewOS returns an FS rooted at dir. The directory is created if missing.
func NewOS(dir string) (*OS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("vfs: root: %w", err)
	}
	return &OS{root: dir}, nil
}

func (o *OS) abs(name string) string { return filepath.Join(o.root, filepath.FromSlash(name)) }

// Create implements FS.
func (o *OS) Create(name string) (File, error) {
	p := o.abs(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(p, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &osFile{f: f}, nil
}

// OpenOrCreate implements FS.
func (o *OS) OpenOrCreate(name string) (File, error) {
	p := o.abs(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(p, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &osFile{f: f}, nil
}

// Open implements FS.
func (o *OS) Open(name string) (File, error) {
	f, err := os.OpenFile(o.abs(name), os.O_RDWR, 0o644)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		return nil, err
	}
	return &osFile{f: f}, nil
}

// Remove implements FS.
func (o *OS) Remove(name string) error {
	err := os.Remove(o.abs(name))
	if errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return err
}

// Rename implements FS.
func (o *OS) Rename(oldname, newname string) error {
	return os.Rename(o.abs(oldname), o.abs(newname))
}

// List implements FS.
func (o *OS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(o.abs(dir))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// MkdirAll implements FS.
func (o *OS) MkdirAll(dir string) error { return os.MkdirAll(o.abs(dir), 0o755) }

// Exists implements FS.
func (o *OS) Exists(name string) bool {
	_, err := os.Stat(o.abs(name))
	return err == nil
}

type osFile struct {
	f *os.File
}

func (f *osFile) ReadAt(p []byte, off int64) (int, error)  { return f.f.ReadAt(p, off) }
func (f *osFile) WriteAt(p []byte, off int64) (int, error) { return f.f.WriteAt(p, off) }

func (f *osFile) Append(p []byte) (int64, error) {
	off, err := f.f.Seek(0, 2)
	if err != nil {
		return 0, err
	}
	_, err = f.f.Write(p)
	return off, err
}

func (f *osFile) Size() (int64, error) {
	st, err := f.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (f *osFile) Sync() error  { return f.f.Sync() }
func (f *osFile) Close() error { return f.f.Close() }
