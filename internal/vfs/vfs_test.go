package vfs

import (
	"bytes"
	"errors"
	"testing"
)

// fsFactories lets every test run against both implementations.
func fsFactories(t *testing.T) map[string]FS {
	t.Helper()
	osfs, err := NewOS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]FS{"mem": NewMem(), "os": osfs}
}

func TestCreateWriteRead(t *testing.T) {
	for name, fs := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			f, err := fs.Create("dir/a.bin")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Append([]byte("hello ")); err != nil {
				t.Fatal(err)
			}
			off, err := f.Append([]byte("world"))
			if err != nil {
				t.Fatal(err)
			}
			if off != 6 {
				t.Fatalf("append offset = %d, want 6", off)
			}
			buf := make([]byte, 11)
			if _, err := f.ReadAt(buf, 0); err != nil {
				t.Fatal(err)
			}
			if string(buf) != "hello world" {
				t.Fatalf("read %q", buf)
			}
			sz, err := f.Size()
			if err != nil || sz != 11 {
				t.Fatalf("size = %d, %v", sz, err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestWriteAtExtends(t *testing.T) {
	for name, fs := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			f, err := fs.Create("w.bin")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt([]byte{1, 2, 3}, 10); err != nil {
				t.Fatal(err)
			}
			sz, _ := f.Size()
			if sz != 13 {
				t.Fatalf("size = %d, want 13", sz)
			}
			buf := make([]byte, 13)
			if _, err := f.ReadAt(buf, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf[:10], make([]byte, 10)) || !bytes.Equal(buf[10:], []byte{1, 2, 3}) {
				t.Fatalf("content %v", buf)
			}
		})
	}
}

func TestOpenMissing(t *testing.T) {
	for name, fs := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := fs.Open("nope"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("err = %v, want ErrNotExist", err)
			}
			if err := fs.Remove("nope"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("remove err = %v, want ErrNotExist", err)
			}
		})
	}
}

func TestRename(t *testing.T) {
	for name, fs := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			f, _ := fs.Create("old")
			if _, err := f.Append([]byte("x")); err != nil {
				t.Fatal(err)
			}
			f.Close()
			if err := fs.Rename("old", "new"); err != nil {
				t.Fatal(err)
			}
			if fs.Exists("old") || !fs.Exists("new") {
				t.Fatal("rename did not move the file")
			}
		})
	}
}

func TestList(t *testing.T) {
	for name, fs := range fsFactories(t) {
		t.Run(name, func(t *testing.T) {
			if err := fs.MkdirAll("d"); err != nil {
				t.Fatal(err)
			}
			for _, n := range []string{"d/b", "d/a", "d/c"} {
				f, err := fs.Create(n)
				if err != nil {
					t.Fatal(err)
				}
				f.Close()
			}
			sub, err := fs.Create("d/sub/x")
			if err != nil {
				t.Fatal(err)
			}
			sub.Close()
			names, err := fs.List("d")
			if err != nil {
				t.Fatal(err)
			}
			got := map[string]bool{}
			for _, n := range names {
				got[n] = true
			}
			if !got["a"] || !got["b"] || !got["c"] || got["x"] {
				t.Fatalf("List = %v", names)
			}
			empty, err := fs.List("missing-dir")
			if err != nil || len(empty) != 0 {
				t.Fatalf("List(missing) = %v, %v", empty, err)
			}
		})
	}
}

func TestMemCrashCloneDropsUnsynced(t *testing.T) {
	m := NewMem()
	f, _ := m.Create("wal")
	if _, err := f.Append([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Append([]byte("-lost")); err != nil {
		t.Fatal(err)
	}

	crashed := m.CrashClone()
	cf, err := crashed.Open("wal")
	if err != nil {
		t.Fatal(err)
	}
	sz, _ := cf.Size()
	if sz != int64(len("durable")) {
		t.Fatalf("crashed size = %d, want %d", sz, len("durable"))
	}
	buf := make([]byte, sz)
	if _, err := cf.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "durable" {
		t.Fatalf("crashed content = %q", buf)
	}

	// The original is unaffected.
	osz, _ := f.Size()
	if osz != int64(len("durable-lost")) {
		t.Fatalf("original size changed: %d", osz)
	}
}

func TestMemCrashCloneNeverSynced(t *testing.T) {
	m := NewMem()
	f, _ := m.Create("x")
	if _, err := f.Append([]byte("gone")); err != nil {
		t.Fatal(err)
	}
	c := m.CrashClone()
	cf, err := c.Open("x")
	if err != nil {
		t.Fatal(err)
	}
	if sz, _ := cf.Size(); sz != 0 {
		t.Fatalf("unsynced file survived crash with %d bytes", sz)
	}
}

func TestMemTotalBytes(t *testing.T) {
	m := NewMem()
	f, _ := m.Create("a")
	if _, err := f.Append(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	g, _ := m.Create("b")
	if _, err := g.Append(make([]byte, 50)); err != nil {
		t.Fatal(err)
	}
	if m.TotalBytes() != 150 {
		t.Fatalf("TotalBytes = %d", m.TotalBytes())
	}
	if err := m.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if m.TotalBytes() != 50 {
		t.Fatalf("TotalBytes after remove = %d", m.TotalBytes())
	}
}

func TestReadAtPastEOF(t *testing.T) {
	m := NewMem()
	f, _ := m.Create("a")
	if _, err := f.Append([]byte("ab")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(make([]byte, 1), 5); err == nil {
		t.Fatal("read past EOF succeeded")
	}
}
