// Package vfs is a minimal virtual file system boundary between storage
// engines (the KV store's WAL/SSTables, the chunk store's chunk files) and
// the machine they run on.
//
// Two implementations are provided: OS (real files, used by the daemons
// when persisting to node-local storage, the paper's XFS-formatted SSD)
// and Mem (in-memory, used by tests, benchmarks and the in-process
// cluster). Mem additionally models the synced-versus-written distinction
// so crash-recovery tests can drop unsynced bytes, which is how the WAL
// replay path is verified without killing processes.
package vfs

import (
	"errors"
	"io"
)

// ErrNotExist reports an access to a file that does not exist.
var ErrNotExist = errors.New("vfs: file does not exist")

// File is a random-access file handle.
type File interface {
	io.ReaderAt
	io.WriterAt
	// Append writes p at the current end of file and returns the offset
	// at which it was placed.
	Append(p []byte) (off int64, err error)
	// Size returns the current file length in bytes.
	Size() (int64, error)
	// Sync makes previously written data durable (survives CrashClone on
	// Mem; fsync on OS).
	Sync() error
	io.Closer
}

// FS is the file system surface storage engines build on. Paths use '/'
// separators and are interpreted relative to the FS root.
type FS interface {
	// Create creates or truncates a file for writing and reading.
	Create(name string) (File, error)
	// Open opens an existing file for reading and writing.
	Open(name string) (File, error)
	// OpenOrCreate opens name, creating it empty if missing, without
	// truncating existing content. The check-and-create is atomic with
	// respect to concurrent OpenOrCreate calls.
	OpenOrCreate(name string) (File, error)
	// Remove deletes a file. Removing a missing file returns ErrNotExist.
	Remove(name string) error
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// List returns the names (not full paths) of files in dir, in
	// unspecified order. A missing directory lists as empty.
	List(dir string) ([]string, error)
	// MkdirAll ensures dir and its parents exist.
	MkdirAll(dir string) error
	// Exists reports whether name exists.
	Exists(name string) bool
}
