package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("final time = %d", e.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.After(10, func() {
		hits = append(hits, e.Now())
		e.After(5, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func() { fired++ })
	e.At(100, func() { fired++ })
	e.RunUntil(50)
	if fired != 1 || e.Now() != 50 {
		t.Fatalf("fired=%d now=%d", fired, e.Now())
	}
	e.RunUntil(200)
	if fired != 2 {
		t.Fatalf("second event lost")
	}
}

func TestPastEventClamps(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		e.At(5, func() {
			if e.Now() != 100 {
				t.Errorf("past event ran at %d", e.Now())
			}
		})
	})
	e.Run()
}

func TestServerSingleSlotSerializes(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		s.Process(Dur(10*time.Microsecond), func() { ends = append(ends, e.Now()) })
	}
	e.Run()
	want := []Time{Dur(10 * time.Microsecond), Dur(20 * time.Microsecond), Dur(30 * time.Microsecond)}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
	if s.Completed() != 3 {
		t.Fatalf("completed = %d", s.Completed())
	}
}

func TestServerParallelSlots(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 4)
	var last Time
	for i := 0; i < 4; i++ {
		s.Process(Dur(time.Millisecond), func() { last = e.Now() })
	}
	e.Run()
	if last != Dur(time.Millisecond) {
		t.Fatalf("4 jobs on 4 slots finished at %v, want 1ms", last)
	}
}

// TestServerThroughputMatchesTheory drives a closed loop of customers
// through a single-slot server and checks the measured rate against the
// saturation law X = 1/S.
func TestServerThroughputMatchesTheory(t *testing.T) {
	e := NewEngine()
	svc := Dur(10 * time.Microsecond)
	s := NewServer(e, 1)
	completed := 0
	var issue func()
	issue = func() {
		s.Process(svc, func() {
			completed++
			issue()
		})
	}
	for i := 0; i < 8; i++ { // 8 closed-loop customers, zero think time
		issue()
	}
	horizon := Dur(100 * time.Millisecond)
	e.RunUntil(horizon)
	rate := float64(completed) / (float64(horizon) / 1e9)
	want := 1e9 / float64(svc) // 100k/s
	if rate < want*0.99 || rate > want*1.01 {
		t.Fatalf("rate = %.0f/s, want ≈ %.0f/s", rate, want)
	}
	if bf := s.BusyFraction(); bf < 0.99 {
		t.Fatalf("busy fraction = %.3f, want ~1", bf)
	}
}

func TestServerBusyFractionIdle(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, 1)
	s.Process(Dur(10*time.Millisecond), nil)
	e.At(Dur(100*time.Millisecond), func() {})
	e.Run()
	if bf := s.BusyFraction(); bf < 0.09 || bf > 0.11 {
		t.Fatalf("busy fraction = %.3f, want ≈ 0.1", bf)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(8)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRNG(7).Next() == c.Next() {
			same++
		}
	}
	if same > 10 {
		t.Fatal("different seeds too similar")
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(99)
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[r.Intn(10)]++
	}
	for b, c := range counts {
		if c < draws/10*85/100 || c > draws/10*115/100 {
			t.Fatalf("bucket %d has %d draws, expected ~%d", b, c, draws/10)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRNG(3)
	d := Dur(100 * time.Microsecond)
	for i := 0; i < 1000; i++ {
		j := r.Jitter(d, 0.2)
		if j < Dur(80*time.Microsecond) || j > Dur(120*time.Microsecond) {
			t.Fatalf("jitter %v out of ±20%% band", j)
		}
	}
	if r.Jitter(d, 0) != d {
		t.Fatal("zero jitter must be identity")
	}
}

func TestWaitGroup(t *testing.T) {
	fired := false
	wg := NewWaitGroup(3, func() { fired = true })
	wg.Done()
	wg.Done()
	if fired {
		t.Fatal("fired early")
	}
	wg.Done()
	if !fired {
		t.Fatal("did not fire")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-release not detected")
		}
	}()
	wg.Done()
}
