// Package sim is a deterministic discrete-event simulator: the substrate
// on which the paper's 512-node scaling experiments are regenerated
// without 512 nodes. Model code schedules closures on a virtual clock;
// shared components (NICs, RPC progress engines, SSDs, lock services) are
// Servers — FIFO queues with a fixed number of parallel slots — so
// contention, queueing delay and saturation emerge from the event
// interleaving rather than from closed-form formulas.
//
// Determinism: the engine breaks ties by schedule order and the models
// draw randomness from a seeded SplitMix64, so a given configuration
// always produces the same series.
package sim

import (
	"container/heap"
	"time"
)

// Time is virtual time in nanoseconds.
type Time int64

// Dur converts a wall-clock duration to virtual time.
func Dur(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Engine runs events in time order.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn at absolute time t (clamped to now).
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{t: t, seq: e.seq, fn: fn})
}

// After schedules fn d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Step executes the next event; it reports false when none remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.t
	ev.fn()
	return true
}

// RunUntil executes events until the clock would pass limit or no events
// remain.
func (e *Engine) RunUntil(limit Time) {
	for len(e.events) > 0 && e.events[0].t <= limit {
		e.Step()
	}
	if e.now < limit {
		e.now = limit
	}
}

// Run executes until no events remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

type event struct {
	t   Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Server is a k-slot FIFO service center. Process enqueues a job with a
// service duration and runs done when the job leaves. Utilization
// tracking supports the efficiency analyses.
type Server struct {
	eng  *Engine
	cap  int
	busy int
	q    []job

	busyTime  Time
	lastBusy  Time
	completed uint64
}

type job struct {
	d    Time
	done func()
}

// NewServer returns a server with k parallel slots.
func NewServer(eng *Engine, k int) *Server {
	if k <= 0 {
		k = 1
	}
	return &Server{eng: eng, cap: k}
}

// Process enqueues a job of duration d; done (optional) runs at service
// completion.
func (s *Server) Process(d Time, done func()) {
	if s.busy < s.cap {
		s.start(job{d: d, done: done})
		return
	}
	s.q = append(s.q, job{d: d, done: done})
}

func (s *Server) start(j job) {
	if s.busy == 0 {
		s.lastBusy = s.eng.now
	}
	s.busy++
	s.eng.After(j.d, func() {
		s.busy--
		s.completed++
		if s.busy == 0 {
			s.busyTime += s.eng.now - s.lastBusy
		}
		if len(s.q) > 0 {
			next := s.q[0]
			s.q = s.q[1:]
			s.start(next)
		}
		if j.done != nil {
			j.done()
		}
	})
}

// QueueLen returns the number of waiting jobs (not in service).
func (s *Server) QueueLen() int { return len(s.q) }

// Completed returns the number of finished jobs.
func (s *Server) Completed() uint64 { return s.completed }

// BusyFraction reports the fraction of [0, now] during which at least one
// slot was busy.
func (s *Server) BusyFraction() float64 {
	total := s.eng.now
	if total == 0 {
		return 0
	}
	bt := s.busyTime
	if s.busy > 0 {
		bt += s.eng.now - s.lastBusy
	}
	return float64(bt) / float64(total)
}

// RNG is SplitMix64: tiny, fast, deterministic.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64 random bits.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Next() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}

// Jitter returns a duration uniformly drawn from [d*(1-f), d*(1+f)].
func (r *RNG) Jitter(d Time, f float64) Time {
	if d <= 0 || f <= 0 {
		return d
	}
	lo := float64(d) * (1 - f)
	hi := float64(d) * (1 + f)
	return Time(lo + (hi-lo)*r.Float64())
}

// WaitGroup counts down outstanding sub-operations of a parallel fan-out
// (e.g. the chunk RPCs of one large transfer) and fires once.
type WaitGroup struct {
	n    int
	done func()
}

// NewWaitGroup returns a group expecting n completions.
func NewWaitGroup(n int, done func()) *WaitGroup {
	if n <= 0 {
		panic("sim: WaitGroup needs n > 0")
	}
	return &WaitGroup{n: n, done: done}
}

// Done signals one completion.
func (w *WaitGroup) Done() {
	w.n--
	if w.n == 0 && w.done != nil {
		w.done()
	}
	if w.n < 0 {
		panic("sim: WaitGroup over-released")
	}
}
