package rpc

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestServerDispatch(t *testing.T) {
	s := NewServer(4)
	s.Register(1, func(req []byte, _ Bulk) ([]byte, error) {
		return append([]byte("echo:"), req...), nil
	})
	resp, err := s.Dispatch(1, []byte("hi"), nil)
	if err != nil || string(resp) != "echo:hi" {
		t.Fatalf("Dispatch = %q, %v", resp, err)
	}
	if st := s.Stats(); st.Requests != 1 || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServerUnknownOp(t *testing.T) {
	s := NewServer(1)
	if _, err := s.Dispatch(9, nil, nil); !errors.Is(err, ErrUnknownOp) {
		t.Fatalf("err = %v", err)
	}
}

func TestServerClosed(t *testing.T) {
	s := NewServer(1)
	s.Register(1, func([]byte, Bulk) ([]byte, error) { return nil, nil })
	s.Close()
	if _, err := s.Dispatch(1, nil, nil); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestServerErrorCounting(t *testing.T) {
	s := NewServer(1)
	boom := errors.New("boom")
	s.Register(2, func([]byte, Bulk) ([]byte, error) { return nil, boom })
	if _, err := s.Dispatch(2, nil, nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if st := s.Stats(); st.Errors != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestHandlerPoolLimit verifies the Margo-style bounded execution pool:
// no more than poolSize handlers run at once.
func TestHandlerPoolLimit(t *testing.T) {
	const poolSize = 3
	s := NewServer(poolSize)
	var inFlight, maxSeen atomic.Int32
	s.Register(1, func([]byte, Bulk) ([]byte, error) {
		n := inFlight.Add(1)
		for {
			m := maxSeen.Load()
			if n <= m || maxSeen.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		inFlight.Add(-1)
		return nil, nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Dispatch(1, nil, nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if m := maxSeen.Load(); m > poolSize {
		t.Fatalf("observed %d concurrent handlers, pool is %d", m, poolSize)
	}
}

func TestSliceBulk(t *testing.T) {
	buf := []byte("0123456789")
	b := SliceBulk(buf)
	if b.Len() != 10 {
		t.Fatalf("Len = %d", b.Len())
	}
	dst := make([]byte, 4)
	if err := b.Pull(dst); err != nil || string(dst) != "0123" {
		t.Fatalf("Pull = %q, %v", dst, err)
	}
	if err := b.Push([]byte("AB")); err != nil {
		t.Fatal(err)
	}
	if string(buf[:2]) != "AB" {
		t.Fatalf("Push did not reach the client buffer: %q", buf)
	}
	if err := b.Pull(make([]byte, 11)); err == nil {
		t.Fatal("oversized pull allowed")
	}
	if err := b.Push(make([]byte, 11)); err == nil {
		t.Fatal("oversized push allowed")
	}
}

func TestRemoteErrorMessage(t *testing.T) {
	e := &RemoteError{Msg: "no such file"}
	if e.Error() != "rpc: remote: no such file" {
		t.Fatalf("Error() = %q", e.Error())
	}
}
