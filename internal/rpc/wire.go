package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire encoding helpers shared by the daemon protocol and the transports:
// little-endian fixed integers plus uvarint-length-prefixed byte strings.

// ErrTruncated reports a message shorter than its own framing claims.
var ErrTruncated = errors.New("rpc: truncated message")

// ErrMalformed reports a message that decodes structurally but fails
// semantic validation (impossible counts, negative lengths).
var ErrMalformed = errors.New("rpc: malformed message")

// Enc builds a wire message.
type Enc struct {
	buf []byte
}

// NewEnc returns an encoder with the given capacity hint.
func NewEnc(sizeHint int) *Enc { return &Enc{buf: make([]byte, 0, sizeHint)} }

// Bytes returns the encoded message.
func (e *Enc) Bytes() []byte { return e.buf }

// U8 appends a byte.
func (e *Enc) U8(v uint8) *Enc {
	e.buf = append(e.buf, v)
	return e
}

// U16 appends a little-endian uint16.
func (e *Enc) U16(v uint16) *Enc {
	e.buf = binary.LittleEndian.AppendUint16(e.buf, v)
	return e
}

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) *Enc {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
	return e
}

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) *Enc {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
	return e
}

// I64 appends a little-endian int64.
func (e *Enc) I64(v int64) *Enc { return e.U64(uint64(v)) }

// Str appends a uvarint-length-prefixed string.
func (e *Enc) Str(s string) *Enc {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(s)))
	e.buf = append(e.buf, s...)
	return e
}

// Blob appends a uvarint-length-prefixed byte slice.
func (e *Enc) Blob(b []byte) *Enc {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(b)))
	e.buf = append(e.buf, b...)
	return e
}

// Dec walks a wire message. Methods record the first error; check Err (or
// any later read, which returns zero values) after decoding.
type Dec struct {
	buf []byte
	err error
}

// NewDec returns a decoder over buf.
func NewDec(buf []byte) *Dec { return &Dec{buf: buf} }

// Err returns the first decode error, if any.
func (d *Dec) Err() error { return d.err }

// Remaining returns the number of unconsumed bytes, letting decoders
// validate claimed element counts before allocating for them.
func (d *Dec) Remaining() int { return len(d.buf) }

// Corrupt forces the decoder into its sticky error state; callers use it
// when semantic validation of decoded values fails.
func (d *Dec) Corrupt() {
	if d.err == nil {
		d.err = ErrMalformed
	}
}

func (d *Dec) fail() {
	if d.err == nil {
		d.err = ErrTruncated
	}
}

// U8 reads a byte.
func (d *Dec) U8() uint8 {
	if d.err != nil || len(d.buf) < 1 {
		d.fail()
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

// U16 reads a little-endian uint16.
func (d *Dec) U16() uint16 {
	if d.err != nil || len(d.buf) < 2 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf)
	d.buf = d.buf[2:]
	return v
}

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	if d.err != nil || len(d.buf) < 4 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	if d.err != nil || len(d.buf) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

// I64 reads a little-endian int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Str reads a length-prefixed string.
func (d *Dec) Str() string { return string(d.Blob()) }

// Blob reads a length-prefixed byte slice; the result aliases the input
// buffer.
func (d *Dec) Blob() []byte {
	if d.err != nil {
		return nil
	}
	l, n := binary.Uvarint(d.buf)
	if n <= 0 || uint64(len(d.buf)-n) < l {
		d.fail()
		return nil
	}
	b := d.buf[n : n+int(l)]
	d.buf = d.buf[n+int(l):]
	return b
}

// Done verifies the message was fully consumed and error-free.
func (d *Dec) Done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("rpc: %d trailing bytes", len(d.buf))
	}
	return nil
}
