package rpc

import (
	"math/bits"
	"sync"
)

// Data-path buffer pooling. Bulk transfers allocate multi-megabyte
// buffers per RPC (the request frame, the daemon's staging buffer, the
// client's concatenated span buffer); recycling them through size-classed
// pools keeps the hot read/write paths allocation-free in steady state.
//
// Buffers are grouped in power-of-two classes from 4 KiB to 128 MiB (one
// class above maxFrame, so a full transfer frame always fits a class).
// GetBuf returns dirty memory: callers that need zeros must clear.

const (
	minBufClass = 12 // 4 KiB
	maxBufClass = 27 // 128 MiB
)

var bufPools [maxBufClass - minBufClass + 1]sync.Pool

func bufClass(n int) int {
	c := bits.Len(uint(n - 1))
	if n <= 1<<minBufClass {
		return minBufClass
	}
	return c
}

// GetBuf returns a buffer of length n (capacity rounded up to the class
// size). Contents are unspecified. Requests beyond the largest class are
// served by plain allocation and dropped on PutBuf.
func GetBuf(n int) []byte {
	if n > 1<<maxBufClass {
		return make([]byte, n)
	}
	c := bufClass(n)
	if v := bufPools[c-minBufClass].Get(); v != nil {
		return (*(v.(*[]byte)))[:n]
	}
	return make([]byte, n, 1<<c)
}

// PutBuf recycles a buffer obtained from GetBuf. Buffers whose capacity
// is not an exact class size (grown, sliced oddly, or foreign) are
// silently dropped.
func PutBuf(b []byte) {
	c := cap(b)
	if c < 1<<minBufClass || c > 1<<maxBufClass || c&(c-1) != 0 {
		return
	}
	b = b[:c]
	bufPools[bits.Len(uint(c-1))-minBufClass].Put(&b)
}
