// Package rpc is the communication substrate standing in for Mercury with
// the Margo wrappers (paper §III-B): operation-keyed handlers executed on
// a bounded pool (Margo's Argobots execution streams), opaque binary
// payloads, and a bulk-transfer interface through which a daemon pulls
// write data from — or pushes read data into — a buffer the client
// exposed, the role RDMA plays on the paper's Omni-Path fabric.
//
// Transports live in internal/transport: an in-process one whose bulk
// transfers are zero-copy (the "RDMA" of the in-process cluster) and a TCP
// one that inlines bulk bytes into the frame.
package rpc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Op identifies a registered RPC operation, like a Mercury RPC id.
type Op uint16

// Bulk is the server-side view of the client's exposed buffer region for
// one call.
type Bulk interface {
	// Pull copies the client's buffer into p (an RDMA get). It fails if p
	// is longer than the exposed region.
	Pull(p []byte) error
	// Push copies p into the client's buffer (an RDMA put). It fails if p
	// is longer than the exposed region.
	Push(p []byte) error
	// Len returns the size of the exposed region.
	Len() int
}

// Handler serves one operation. req is the request payload; the returned
// bytes form the response payload. Returned errors travel to the client as
// a RemoteError.
type Handler func(req []byte, bulk Bulk) ([]byte, error)

// RemoteError is a handler failure surfaced at the caller.
type RemoteError struct {
	// Msg is the handler error text.
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string { return "rpc: remote: " + e.Msg }

// Errors returned by the framework itself.
var (
	// ErrUnknownOp reports a call to an unregistered operation.
	ErrUnknownOp = errors.New("rpc: unknown operation")
	// ErrServerClosed reports a call into a stopped server.
	ErrServerClosed = errors.New("rpc: server closed")
)

// BulkDir declares how the server will access the exposed buffer,
// mirroring Mercury's bulk access flags. Transports that must move the
// buffer over a wire use it to ship bytes in only the needed direction.
type BulkDir uint8

const (
	// BulkNone exposes no buffer.
	BulkNone BulkDir = iota
	// BulkIn lets the server Pull from the buffer (client → server, the
	// write path).
	BulkIn
	// BulkOut lets the server Push into the buffer (server → client, the
	// read path).
	BulkOut
)

// Conn is a client's connection to one server. Implementations are safe
// for concurrent use; calls block until the response arrives.
type Conn interface {
	// Call invokes op with payload. bulk, when non-nil, is the local
	// buffer region exposed to the server for Pull (dir=BulkIn) or Push
	// (dir=BulkOut) during the call.
	Call(op Op, payload, bulk []byte, dir BulkDir) ([]byte, error)
	// Close releases the connection.
	Close() error
}

// ServerStats counts server-side activity.
type ServerStats struct {
	// Requests is the number of handled calls.
	Requests uint64
	// Errors is the number of calls whose handler returned an error.
	Errors uint64
}

// Server dispatches operations to registered handlers on a bounded
// handler pool.
type Server struct {
	mu       sync.RWMutex
	handlers map[Op]Handler
	closed   bool

	pool chan struct{}

	requests atomic.Uint64
	errors   atomic.Uint64
}

// NewServer returns a server whose handler pool admits poolSize concurrent
// calls (Margo handler execution streams). poolSize <= 0 selects 16, a
// typical daemon configuration on a two-socket node.
func NewServer(poolSize int) *Server {
	if poolSize <= 0 {
		poolSize = 16
	}
	return &Server{
		handlers: make(map[Op]Handler),
		pool:     make(chan struct{}, poolSize),
	}
}

// Register installs the handler for op, replacing any previous one.
// Registration after serving starts is allowed but unusual.
func (s *Server) Register(op Op, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[op] = h
}

// Dispatch runs the handler for op, blocking while the pool is full.
// Transports call it once per decoded request.
func (s *Server) Dispatch(op Op, payload []byte, bulk Bulk) ([]byte, error) {
	s.mu.RLock()
	h, ok := s.handlers[op]
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return nil, ErrServerClosed
	}
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownOp, op)
	}
	s.pool <- struct{}{}
	defer func() { <-s.pool }()
	s.requests.Add(1)
	resp, err := h(payload, bulk)
	if err != nil {
		s.errors.Add(1)
	}
	return resp, err
}

// Close marks the server closed; subsequent dispatches fail.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{Requests: s.requests.Load(), Errors: s.errors.Load()}
}

// SliceBulk adapts a local byte slice to the Bulk interface. The
// in-process transport hands the client's buffer to the handler directly,
// making Pull and Push zero-copy in spirit: the copy is the single memcpy
// RDMA itself would perform.
type SliceBulk []byte

// Pull implements Bulk.
func (b SliceBulk) Pull(p []byte) error {
	if len(p) > len(b) {
		return fmt.Errorf("rpc: bulk pull of %d bytes exceeds exposed region %d", len(p), len(b))
	}
	copy(p, b)
	return nil
}

// Push implements Bulk.
func (b SliceBulk) Push(p []byte) error {
	if len(p) > len(b) {
		return fmt.Errorf("rpc: bulk push of %d bytes exceeds exposed region %d", len(p), len(b))
	}
	copy(b, p)
	return nil
}

// Len implements Bulk.
func (b SliceBulk) Len() int { return len(b) }
