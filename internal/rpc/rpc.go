// Package rpc is the communication substrate standing in for Mercury with
// the Margo wrappers (paper §III-B): operation-keyed handlers executed on
// a bounded pool (Margo's Argobots execution streams), opaque binary
// payloads, and a bulk-transfer interface through which a daemon pulls
// write data from — or pushes read data into — a buffer the client
// exposed, the role RDMA plays on the paper's Omni-Path fabric.
//
// Transports live in internal/transport: an in-process one whose bulk
// transfers are zero-copy (the "RDMA" of the in-process cluster) and a TCP
// one that inlines bulk bytes into the frame.
package rpc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Op identifies a registered RPC operation, like a Mercury RPC id.
type Op uint16

// Bulk is the server-side view of the client's exposed buffer region for
// one call.
//
// Pull and Push are the copying accessors (an RDMA get/put). Bytes,
// Writable and Commit are their zero-copy counterparts: they hand the
// handler a direct view of the transport's bulk region — the wire-read
// region for BulkIn, the outgoing region for BulkOut — so the data path
// touches each byte at most once per direction. Views are valid only
// until the handler returns; retaining one is a use-after-release.
type Bulk interface {
	// Pull copies the client's buffer into p (an RDMA get). It fails if p
	// is longer than the exposed region.
	Pull(p []byte) error
	// Push copies p into the client's buffer (an RDMA put). It fails if p
	// is longer than the exposed region.
	Push(p []byte) error
	// Len returns the size of the exposed region.
	Len() int
	// Bytes returns the BulkIn region itself, without copying. The view
	// is read-only by convention and dies with the handler invocation.
	Bytes() ([]byte, error)
	// Writable returns an n-byte outgoing region the handler fills in
	// place (n must not exceed Len). The transport sends nothing until
	// Commit declares how much of the region is meaningful.
	Writable(n int) ([]byte, error)
	// Commit declares that the first n bytes of the Writable region are
	// ready to travel back to the client. Bytes past n are never sent; on
	// the client they read as whatever the caller left there (the data
	// path pre-clears its regions, so trimmed tails read as zeros).
	Commit(n int) error
}

// Handler serves one operation. req is the request payload; the returned
// bytes form the response payload. Returned errors travel to the client as
// a RemoteError.
type Handler func(req []byte, bulk Bulk) ([]byte, error)

// RemoteError is a handler failure surfaced at the caller.
type RemoteError struct {
	// Msg is the handler error text.
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string { return "rpc: remote: " + e.Msg }

// Errors returned by the framework itself.
var (
	// ErrUnknownOp reports a call to an unregistered operation.
	ErrUnknownOp = errors.New("rpc: unknown operation")
	// ErrServerClosed reports a call into a stopped server.
	ErrServerClosed = errors.New("rpc: server closed")
)

// BulkDir declares how the server will access the exposed buffer,
// mirroring Mercury's bulk access flags. Transports that must move the
// buffer over a wire use it to ship bytes in only the needed direction.
type BulkDir uint8

const (
	// BulkNone exposes no buffer.
	BulkNone BulkDir = iota
	// BulkIn lets the server Pull from the buffer (client → server, the
	// write path).
	BulkIn
	// BulkOut lets the server Push into the buffer (server → client, the
	// read path).
	BulkOut
)

// Conn is a client's connection to one server. Implementations are safe
// for concurrent use; calls block until the response arrives.
type Conn interface {
	// Call invokes op with payload. bulk, when non-nil, is the local
	// buffer region exposed to the server for Pull (dir=BulkIn) or Push
	// (dir=BulkOut) during the call.
	Call(op Op, payload, bulk []byte, dir BulkDir) ([]byte, error)
	// Close releases the connection.
	Close() error
}

// Trace identifies one sampled RPC across the wire. The client mints
// the ID, the transport carries it in the frame's trailing trace
// extension (protocol v7), and the daemon's dispatch observer stamps
// its span timings with the same ID — so one slow call can be followed
// client → transport → daemon by grepping the structured logs on both
// ends. The zero Trace means "not sampled" and adds nothing to the
// frame.
type Trace struct {
	// ID is the sampled call's random identity; 0 means unsampled.
	ID uint64
	// Flags carries trace options (TraceSampled today).
	Flags uint8
}

// TraceSampled marks a trace the client chose for emission. It is set
// on every minted trace; further bits are reserved.
const TraceSampled uint8 = 1 << 0

// Sampled reports whether the trace should be carried and logged.
func (t Trace) Sampled() bool { return t.ID != 0 }

// TraceCaller is the optional Conn extension of transports that can
// carry a Trace to the server. Transports lacking it serve the call
// untraced — the trace is an observability hint, never a correctness
// dependency.
type TraceCaller interface {
	CallTrace(op Op, payload, bulk []byte, dir BulkDir, tr Trace) ([]byte, error)
}

// CallTrace invokes op over c, carrying tr when the connection
// supports it and silently dropping it otherwise.
func CallTrace(c Conn, op Op, payload, bulk []byte, dir BulkDir, tr Trace) ([]byte, error) {
	if tc, ok := c.(TraceCaller); ok && tr.Sampled() {
		return tc.CallTrace(op, payload, bulk, dir, tr)
	}
	return c.Call(op, payload, bulk, dir)
}

// ServerStats counts server-side activity.
type ServerStats struct {
	// Requests is the number of handled calls.
	Requests uint64
	// Errors is the number of calls whose handler returned an error.
	Errors uint64
}

// WireCounters aggregate transport-level activity below the dispatch
// layer: frames and bytes moved, scatter-gather writes issued, and
// shared-memory fast-path calls served. Transports increment them on the
// server they serve (Server.Wire); the daemon folds them into its stats
// reply so the wire tier's behaviour is observable end to end.
type WireCounters struct {
	// FramesIn/FramesOut count request frames decoded and response
	// frames written.
	FramesIn, FramesOut atomic.Uint64
	// BytesIn/BytesOut count wire bytes moved, length prefixes included.
	// On the shared-memory transport bulk bytes move through the mapped
	// segment, not the socket, so they are excluded here — the gap
	// between logical I/O volume and BytesIn/Out is the fast path's win.
	BytesIn, BytesOut atomic.Uint64
	// VectoredWrites counts responses sent as scatter-gather (writev)
	// header+bulk pairs instead of a joined frame.
	VectoredWrites atomic.Uint64
	// ShmCalls counts requests that arrived over the shared-memory
	// doorbell.
	ShmCalls atomic.Uint64
}

// WireStats is a plain snapshot of WireCounters.
type WireStats struct {
	FramesIn, FramesOut uint64
	BytesIn, BytesOut   uint64
	VectoredWrites      uint64
	ShmCalls            uint64
}

// Snapshot reads every counter once.
func (w *WireCounters) Snapshot() WireStats {
	return WireStats{
		FramesIn:       w.FramesIn.Load(),
		FramesOut:      w.FramesOut.Load(),
		BytesIn:        w.BytesIn.Load(),
		BytesOut:       w.BytesOut.Load(),
		VectoredWrites: w.VectoredWrites.Load(),
		ShmCalls:       w.ShmCalls.Load(),
	}
}

// Server dispatches operations to registered handlers on a bounded
// handler pool.
type Server struct {
	mu       sync.RWMutex
	handlers map[Op]Handler
	closed   bool

	pool chan struct{}

	requests atomic.Uint64
	errors   atomic.Uint64
	wire     WireCounters

	// observer, when set, receives one event per dispatched request.
	// Stored atomically so transports dispatching concurrently never
	// block on registration.
	observer atomic.Pointer[Observer]
}

// Observer receives one event per dispatched request: the operation,
// the trace carried by the frame (zero when unsampled), how long the
// request waited for a handler-pool slot, how long the handler ran,
// and the handler's error. Implementations must be fast and
// non-blocking — the call happens on the dispatch path.
type Observer func(op Op, tr Trace, queueWait, handle time.Duration, err error)

// SetObserver installs obs (nil removes it). The daemon uses it to
// feed per-op latency histograms and emit trace events.
func (s *Server) SetObserver(obs Observer) {
	if obs == nil {
		s.observer.Store(nil)
		return
	}
	s.observer.Store(&obs)
}

// NewServer returns a server whose handler pool admits poolSize concurrent
// calls (Margo handler execution streams). poolSize <= 0 selects 16, a
// typical daemon configuration on a two-socket node.
func NewServer(poolSize int) *Server {
	if poolSize <= 0 {
		poolSize = 16
	}
	return &Server{
		handlers: make(map[Op]Handler),
		pool:     make(chan struct{}, poolSize),
	}
}

// Register installs the handler for op, replacing any previous one.
// Registration after serving starts is allowed but unusual.
func (s *Server) Register(op Op, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[op] = h
}

// Dispatch runs the handler for op, blocking while the pool is full.
// Transports call it once per decoded request.
func (s *Server) Dispatch(op Op, payload []byte, bulk Bulk) ([]byte, error) {
	return s.DispatchTrace(op, payload, bulk, Trace{})
}

// DispatchTrace is Dispatch carrying the request's trace to the
// observer. Queue-wait and handle times are measured only when an
// observer is installed; without one the path is exactly the old
// Dispatch.
func (s *Server) DispatchTrace(op Op, payload []byte, bulk Bulk, tr Trace) ([]byte, error) {
	s.mu.RLock()
	h, ok := s.handlers[op]
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return nil, ErrServerClosed
	}
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownOp, op)
	}
	obs := s.observer.Load()
	var t0 time.Time
	if obs != nil {
		t0 = time.Now()
	}
	s.pool <- struct{}{}
	defer func() { <-s.pool }()
	var t1 time.Time
	if obs != nil {
		t1 = time.Now()
	}
	s.requests.Add(1)
	resp, err := h(payload, bulk)
	if err != nil {
		s.errors.Add(1)
	}
	if obs != nil {
		(*obs)(op, tr, t1.Sub(t0), time.Since(t1), err)
	}
	return resp, err
}

// Close marks the server closed; subsequent dispatches fail.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{Requests: s.requests.Load(), Errors: s.errors.Load()}
}

// Wire returns the transport-level counters for this server. Transports
// serving it increment them; observers snapshot them.
func (s *Server) Wire() *WireCounters { return &s.wire }

// SliceBulk adapts a local byte slice to the Bulk interface. The
// in-process transport hands the client's buffer to the handler directly,
// making Pull and Push zero-copy in spirit: the copy is the single memcpy
// RDMA itself would perform.
type SliceBulk []byte

// Pull implements Bulk.
func (b SliceBulk) Pull(p []byte) error {
	if len(p) > len(b) {
		return fmt.Errorf("rpc: bulk pull of %d bytes exceeds exposed region %d", len(p), len(b))
	}
	copy(p, b)
	return nil
}

// Push implements Bulk.
func (b SliceBulk) Push(p []byte) error {
	if len(p) > len(b) {
		return fmt.Errorf("rpc: bulk push of %d bytes exceeds exposed region %d", len(p), len(b))
	}
	copy(b, p)
	return nil
}

// Len implements Bulk.
func (b SliceBulk) Len() int { return len(b) }

// Bytes implements Bulk: the region is the client's buffer, so the view
// is genuinely zero-copy.
func (b SliceBulk) Bytes() ([]byte, error) { return b, nil }

// Writable implements Bulk. The handler writes straight into the
// client's buffer — the in-process analogue of an RDMA put with no
// staging at all.
func (b SliceBulk) Writable(n int) ([]byte, error) {
	if n > len(b) {
		return nil, fmt.Errorf("rpc: writable region of %d bytes exceeds exposed region %d", n, len(b))
	}
	return b[:n], nil
}

// Commit implements Bulk. In-process the bytes are already in place;
// only the bound is validated.
func (b SliceBulk) Commit(n int) error {
	if n > len(b) {
		return fmt.Errorf("rpc: commit of %d bytes exceeds exposed region %d", n, len(b))
	}
	return nil
}
