package rpc

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEncDecRoundTrip(t *testing.T) {
	e := NewEnc(64)
	e.U8(7).U16(300).U32(1 << 20).U64(1 << 40).I64(-42).Str("/path/file").Blob([]byte{1, 2, 3})
	d := NewDec(e.Bytes())
	if v := d.U8(); v != 7 {
		t.Fatalf("U8 = %d", v)
	}
	if v := d.U16(); v != 300 {
		t.Fatalf("U16 = %d", v)
	}
	if v := d.U32(); v != 1<<20 {
		t.Fatalf("U32 = %d", v)
	}
	if v := d.U64(); v != 1<<40 {
		t.Fatalf("U64 = %d", v)
	}
	if v := d.I64(); v != -42 {
		t.Fatalf("I64 = %d", v)
	}
	if v := d.Str(); v != "/path/file" {
		t.Fatalf("Str = %q", v)
	}
	if v := d.Blob(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("Blob = %v", v)
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestEncDecProperty(t *testing.T) {
	f := func(a uint8, b uint16, c uint32, d uint64, e int64, s string, blob []byte) bool {
		enc := NewEnc(32)
		enc.U8(a).U16(b).U32(c).U64(d).I64(e).Str(s).Blob(blob)
		dec := NewDec(enc.Bytes())
		ok := dec.U8() == a && dec.U16() == b && dec.U32() == c &&
			dec.U64() == d && dec.I64() == e && dec.Str() == s &&
			bytes.Equal(dec.Blob(), blob)
		return ok && dec.Done() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestDecTruncation(t *testing.T) {
	e := NewEnc(16)
	e.U64(99).Str("hello")
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDec(full[:cut])
		d.U64()
		d.Str()
		if d.Done() == nil {
			t.Fatalf("truncation at %d undetected", cut)
		}
	}
}

func TestDecTrailingBytes(t *testing.T) {
	e := NewEnc(8)
	e.U8(1)
	d := NewDec(append(e.Bytes(), 0xEE))
	d.U8()
	if err := d.Done(); err == nil {
		t.Fatal("trailing bytes undetected")
	}
}

func TestDecErrSticky(t *testing.T) {
	d := NewDec(nil)
	_ = d.U64() // fails
	if d.Err() == nil {
		t.Fatal("no error recorded")
	}
	if v := d.U32(); v != 0 {
		t.Fatal("reads after error must return zero values")
	}
}
