package kvstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/vfs"
)

func openTestDB(t *testing.T, opts Options) *DB {
	t.Helper()
	if opts.FS == nil {
		opts.FS = vfs.NewMem()
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestPutGetDelete(t *testing.T) {
	db := openTestDB(t, Options{})
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("k"))
	if err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := db.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("k")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after delete err = %v", err)
	}
	// Deleting an absent key succeeds.
	if err := db.Delete([]byte("never")); err != nil {
		t.Fatal(err)
	}
}

func TestOverwrite(t *testing.T) {
	db := openTestDB(t, Options{})
	for i := 0; i < 10; i++ {
		if err := db.Put([]byte("k"), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, err := db.Get([]byte("k"))
	if err != nil || string(v) != "v9" {
		t.Fatalf("Get = %q, %v", v, err)
	}
}

func TestGetMissing(t *testing.T) {
	db := openTestDB(t, Options{})
	if _, err := db.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	ok, err := db.Has([]byte("missing"))
	if err != nil || ok {
		t.Fatalf("Has = %v, %v", ok, err)
	}
}

func TestReadThroughSSTables(t *testing.T) {
	// Tiny memtable forces flushes; everything must remain readable.
	db := openTestDB(t, Options{MemTableBytes: 2048})
	const n = 2000
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Flushes == 0 {
		t.Fatal("no flush happened despite tiny memtable")
	}
	for i := 0; i < n; i++ {
		v, err := db.Get(key(i))
		if err != nil || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%d) = %q, %v", i, v, err)
		}
	}
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("value-%d-%d", i, i*7)) }

func TestCompactionPreservesData(t *testing.T) {
	db := openTestDB(t, Options{
		MemTableBytes:   2048,
		TargetFileBytes: 4096,
		LevelBytesBase:  8192,
	})
	const n = 3000
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite a third, delete a third.
	for i := 0; i < n; i += 3 {
		if err := db.Put(key(i), []byte("overwritten")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < n; i += 3 {
		if err := db.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Compactions == 0 {
		t.Fatal("CompactAll ran no compactions")
	}
	if st.TablesPerLevel[0] != 0 {
		t.Fatalf("L0 not drained: %v", st.TablesPerLevel)
	}
	for i := 0; i < n; i++ {
		v, err := db.Get(key(i))
		switch i % 3 {
		case 0:
			if err != nil || string(v) != "overwritten" {
				t.Fatalf("Get(%d) = %q, %v", i, v, err)
			}
		case 1:
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted key %d resurfaced: %q, %v", i, v, err)
			}
		case 2:
			if err != nil || !bytes.Equal(v, val(i)) {
				t.Fatalf("Get(%d) = %q, %v", i, v, err)
			}
		}
	}
}

func TestCompactionReclaimsSpace(t *testing.T) {
	mem := vfs.NewMem()
	db := openTestDB(t, Options{FS: mem, MemTableBytes: 4096, TargetFileBytes: 8192})
	// Write the same small key set many times over: garbage dominates.
	for round := 0; round < 50; round++ {
		for i := 0; i < 100; i++ {
			if err := db.Put(key(i), bytes.Repeat([]byte{byte(round)}, 64)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	// 100 keys * ~80 bytes each ≈ 8 KiB live; allow metadata overhead.
	if total := mem.TotalBytes(); total > 256*1024 {
		t.Fatalf("space not reclaimed: %d bytes on disk for ~8KiB live", total)
	}
}

// sizeMax is the merge operator the daemons use: operands are candidate
// sizes; the result is the maximum (encoded little-endian uint64).
func sizeMax(_, existing []byte, operands [][]byte) []byte {
	var max uint64
	if len(existing) == 8 {
		max = binary.LittleEndian.Uint64(existing)
	}
	for _, op := range operands {
		if len(op) == 8 {
			if v := binary.LittleEndian.Uint64(op); v > max {
				max = v
			}
		}
	}
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, max)
	return out
}

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func TestMergeOperator(t *testing.T) {
	db := openTestDB(t, Options{Merger: sizeMax})
	if err := db.Put([]byte("size"), u64(100)); err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint64{50, 300, 200} {
		if err := db.Merge([]byte("size"), u64(v)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := db.Get([]byte("size"))
	if err != nil || binary.LittleEndian.Uint64(got) != 300 {
		t.Fatalf("merged = %v, %v; want 300", got, err)
	}
}

func TestMergeWithoutBase(t *testing.T) {
	db := openTestDB(t, Options{Merger: sizeMax})
	if err := db.Merge([]byte("k"), u64(7)); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get([]byte("k"))
	if err != nil || binary.LittleEndian.Uint64(got) != 7 {
		t.Fatalf("merge-only key = %v, %v", got, err)
	}
}

func TestMergeAfterDelete(t *testing.T) {
	db := openTestDB(t, Options{Merger: sizeMax})
	if err := db.Put([]byte("k"), u64(1000)); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if err := db.Merge([]byte("k"), u64(5)); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get([]byte("k"))
	if err != nil || binary.LittleEndian.Uint64(got) != 5 {
		t.Fatalf("merge after delete = %v, %v; want 5 (old 1000 must not leak)", got, err)
	}
}

func TestMergeSurvivesCompaction(t *testing.T) {
	db := openTestDB(t, Options{Merger: sizeMax, MemTableBytes: 1024, TargetFileBytes: 2048})
	if err := db.Put([]byte("size"), u64(1)); err != nil {
		t.Fatal(err)
	}
	var want uint64
	for i := uint64(1); i <= 500; i++ {
		if err := db.Merge([]byte("size"), u64(i)); err != nil {
			t.Fatal(err)
		}
		if i > want {
			want = i
		}
		// Interleave unrelated churn to force flushes around the merges.
		if err := db.Put(key(int(i)), val(int(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get([]byte("size"))
	if err != nil || binary.LittleEndian.Uint64(got) != want {
		t.Fatalf("after compaction = %v, %v; want %d", got, err, want)
	}
}

func TestMergeRequiresOperator(t *testing.T) {
	db := openTestDB(t, Options{})
	if err := db.Merge([]byte("k"), []byte("x")); !errors.Is(err, ErrNoMerger) {
		t.Fatalf("err = %v, want ErrNoMerger", err)
	}
}

func TestBatchAtomicVisibility(t *testing.T) {
	db := openTestDB(t, Options{})
	var b Batch
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	b.Delete([]byte("a"))
	if b.Len() != 3 {
		t.Fatalf("batch len = %d", b.Len())
	}
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("a")); !errors.Is(err, ErrNotFound) {
		t.Fatal("delete inside batch not applied in order")
	}
	v, err := db.Get([]byte("b"))
	if err != nil || string(v) != "2" {
		t.Fatalf("b = %q, %v", v, err)
	}
	if err := db.Apply(&Batch{}); err != nil {
		t.Fatal("empty batch must be a no-op")
	}
}

func TestIteratorOrderedScan(t *testing.T) {
	db := openTestDB(t, Options{MemTableBytes: 1024})
	const n = 500
	for i := n - 1; i >= 0; i-- {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	i := 0
	for it.SeekFirst(); it.Valid(); it.Next() {
		if !bytes.Equal(it.Key(), key(i)) || !bytes.Equal(it.Value(), val(i)) {
			t.Fatalf("position %d: %q=%q", i, it.Key(), it.Value())
		}
		i++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Fatalf("scanned %d, want %d", i, n)
	}
}

func TestIteratorSeekAndPrefix(t *testing.T) {
	db := openTestDB(t, Options{})
	paths := []string{"/a/x", "/a/y", "/b/x", "/b/y", "/c/z"}
	for _, p := range paths {
		if err := db.Put([]byte(p), []byte("m")); err != nil {
			t.Fatal(err)
		}
	}
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var got []string
	for it.Seek([]byte("/b/")); it.Valid() && bytes.HasPrefix(it.Key(), []byte("/b/")); it.Next() {
		got = append(got, string(it.Key()))
	}
	if fmt.Sprint(got) != "[/b/x /b/y]" {
		t.Fatalf("prefix scan = %v", got)
	}
}

func TestIteratorSkipsTombstones(t *testing.T) {
	db := openTestDB(t, Options{MemTableBytes: 512})
	for i := 0; i < 100; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i += 2 {
		if err := db.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	count := 0
	for it.SeekFirst(); it.Valid(); it.Next() {
		n := 0
		fmt.Sscanf(string(it.Key()), "key-%06d", &n)
		if n%2 == 0 {
			t.Fatalf("deleted key %q visible", it.Key())
		}
		count++
	}
	if count != 50 {
		t.Fatalf("scanned %d live keys, want 50", count)
	}
}

func TestIteratorSnapshotIsolation(t *testing.T) {
	db := openTestDB(t, Options{})
	if err := db.Put([]byte("k1"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	// Mutations after iterator creation must stay invisible.
	if err := db.Put([]byte("k1"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k2"), []byte("born-late")); err != nil {
		t.Fatal(err)
	}
	it.SeekFirst()
	if !it.Valid() || string(it.Key()) != "k1" || string(it.Value()) != "old" {
		t.Fatalf("snapshot sees %q=%q", it.Key(), it.Value())
	}
	it.Next()
	if it.Valid() {
		t.Fatalf("snapshot sees late key %q", it.Key())
	}
}

func TestIteratorResolvesMerges(t *testing.T) {
	db := openTestDB(t, Options{Merger: sizeMax})
	if err := db.Put([]byte("f"), u64(10)); err != nil {
		t.Fatal(err)
	}
	if err := db.Merge([]byte("f"), u64(99)); err != nil {
		t.Fatal(err)
	}
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	it.SeekFirst()
	if !it.Valid() || binary.LittleEndian.Uint64(it.Value()) != 99 {
		t.Fatalf("iterator merge resolution = %v", it.Value())
	}
}

func TestWALRecovery(t *testing.T) {
	mem := vfs.NewMem()
	db, err := Open(Options{FS: mem, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: drop everything unsynced, reopen from the clone.
	crashed := mem.CrashClone()
	db.Close()

	db2, err := Open(Options{FS: crashed, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < n; i++ {
		v, err := db2.Get(key(i))
		if err != nil || !bytes.Equal(v, val(i)) {
			t.Fatalf("after crash Get(%d) = %q, %v", i, v, err)
		}
	}
}

func TestCrashLosesOnlyUnsyncedTail(t *testing.T) {
	mem := vfs.NewMem()
	db, err := Open(Options{FS: mem}) // SyncWAL off: appended but not synced
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("lost"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	crashed := mem.CrashClone()
	db.Close()

	db2, err := Open(Options{FS: crashed})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Get([]byte("lost")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unsynced write survived crash: %v", err)
	}
}

func TestReopenPersistence(t *testing.T) {
	mem := vfs.NewMem()
	db, err := Open(Options{FS: mem, MemTableBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 5 {
		if err := db.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{FS: mem, MemTableBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < n; i++ {
		v, err := db2.Get(key(i))
		if i%5 == 0 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted key %d resurrected after reopen", i)
			}
		} else if err != nil || !bytes.Equal(v, val(i)) {
			t.Fatalf("reopen Get(%d) = %q, %v", i, v, err)
		}
	}
	// Sequence numbers must continue, not restart (otherwise new writes
	// would be shadowed by old SSTable entries).
	if err := db2.Put(key(1), []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	v, err := db2.Get(key(1))
	if err != nil || string(v) != "fresh" {
		t.Fatalf("post-reopen write shadowed: %q, %v", v, err)
	}
}

func TestOSBackendEndToEnd(t *testing.T) {
	osfs, err := vfs.NewOS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(Options{FS: osfs, MemTableBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{FS: osfs})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 500; i++ {
		v, err := db2.Get(key(i))
		if err != nil || !bytes.Equal(v, val(i)) {
			t.Fatalf("os backend Get(%d) = %q, %v", i, v, err)
		}
	}
}

func TestPutIfAbsent(t *testing.T) {
	db := openTestDB(t, Options{})
	ok, err := db.PutIfAbsent([]byte("k"), []byte("first"))
	if err != nil || !ok {
		t.Fatalf("first PutIfAbsent = %v, %v", ok, err)
	}
	ok, err = db.PutIfAbsent([]byte("k"), []byte("second"))
	if err != nil || ok {
		t.Fatalf("second PutIfAbsent = %v, %v", ok, err)
	}
	v, _ := db.Get([]byte("k"))
	if string(v) != "first" {
		t.Fatalf("value = %q", v)
	}
	// After delete the key is absent again.
	if err := db.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	ok, err = db.PutIfAbsent([]byte("k"), []byte("third"))
	if err != nil || !ok {
		t.Fatalf("post-delete PutIfAbsent = %v, %v", ok, err)
	}
}

func TestPutIfAbsentRace(t *testing.T) {
	db := openTestDB(t, Options{})
	const workers = 32
	wins := make(chan int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ok, err := db.PutIfAbsent([]byte("contested"), []byte(fmt.Sprintf("w%d", id)))
			if err != nil {
				t.Error(err)
				return
			}
			if ok {
				wins <- id
			}
		}(w)
	}
	wg.Wait()
	close(wins)
	var winners []int
	for id := range wins {
		winners = append(winners, id)
	}
	if len(winners) != 1 {
		t.Fatalf("PutIfAbsent had %d winners, want exactly 1", len(winners))
	}
	v, err := db.Get([]byte("contested"))
	if err != nil || string(v) != fmt.Sprintf("w%d", winners[0]) {
		t.Fatalf("value %q does not match winner %d", v, winners[0])
	}
}

func TestUpdateAtomicCounter(t *testing.T) {
	db := openTestDB(t, Options{})
	const workers, rounds = 16, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				err := db.Update([]byte("ctr"), func(cur []byte, found bool) ([]byte, bool, error) {
					var n uint64
					if found {
						n = binary.LittleEndian.Uint64(cur)
					}
					return u64(n + 1), false, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	v, err := db.Get([]byte("ctr"))
	if err != nil || binary.LittleEndian.Uint64(v) != workers*rounds {
		t.Fatalf("counter = %v, %v; want %d", v, err, workers*rounds)
	}
}

func TestConcurrentReadersWriters(t *testing.T) {
	db := openTestDB(t, Options{MemTableBytes: 4096})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := []byte(fmt.Sprintf("w%d-%d", id, i))
				if err := db.Put(k, val(i)); err != nil {
					t.Error(err)
					return
				}
				if v, err := db.Get(k); err != nil || !bytes.Equal(v, val(i)) {
					t.Errorf("read own write %q: %q, %v", k, v, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestClosedErrors(t *testing.T) {
	db := openTestDB(t, Options{})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after close = %v", err)
	}
	if _, err := db.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close = %v", err)
	}
	if _, err := db.NewIterator(); !errors.Is(err, ErrClosed) {
		t.Fatalf("NewIterator after close = %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal("double close must be idempotent")
	}
}

func TestDisableWALFlushPersists(t *testing.T) {
	mem := vfs.NewMem()
	db, err := Open(Options{FS: mem, DisableWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	db2, err := Open(Options{FS: mem, DisableWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	v, err := db2.Get([]byte("k"))
	if err != nil || string(v) != "v" {
		t.Fatalf("flushed data lost: %q, %v", v, err)
	}
}

// TestModelCheck drives the store and a plain map with the same random
// operation stream across several configurations, then compares full
// scans. This is the store's main correctness net.
func TestModelCheck(t *testing.T) {
	configs := []Options{
		{},                   // everything in the memtable
		{MemTableBytes: 512}, // constant flushing
		{MemTableBytes: 512, TargetFileBytes: 1024, LevelBytesBase: 2048}, // constant compaction
	}
	for ci, opts := range configs {
		t.Run(fmt.Sprintf("config%d", ci), func(t *testing.T) {
			db := openTestDB(t, opts)
			model := make(map[string]string)
			rnd := rand.New(rand.NewSource(int64(ci) + 99))
			const ops = 4000
			for i := 0; i < ops; i++ {
				k := fmt.Sprintf("k%03d", rnd.Intn(300))
				switch rnd.Intn(10) {
				case 0, 1, 2:
					if err := db.Delete([]byte(k)); err != nil {
						t.Fatal(err)
					}
					delete(model, k)
				default:
					v := fmt.Sprintf("v%d", i)
					if err := db.Put([]byte(k), []byte(v)); err != nil {
						t.Fatal(err)
					}
					model[k] = v
				}
				if i%377 == 0 {
					// Point-check a random key.
					probe := fmt.Sprintf("k%03d", rnd.Intn(300))
					v, err := db.Get([]byte(probe))
					want, ok := model[probe]
					if ok && (err != nil || string(v) != want) {
						t.Fatalf("op %d: Get(%s) = %q, %v; want %q", i, probe, v, err, want)
					}
					if !ok && !errors.Is(err, ErrNotFound) {
						t.Fatalf("op %d: Get(%s) = %q, %v; want not-found", i, probe, v, err)
					}
				}
			}
			// Full-scan equivalence.
			it, err := db.NewIterator()
			if err != nil {
				t.Fatal(err)
			}
			defer it.Close()
			got := make(map[string]string)
			for it.SeekFirst(); it.Valid(); it.Next() {
				got[string(it.Key())] = string(it.Value())
			}
			if len(got) != len(model) {
				t.Fatalf("scan found %d keys, model has %d", len(got), len(model))
			}
			for k, v := range model {
				if got[k] != v {
					t.Fatalf("key %s: scan %q, model %q", k, got[k], v)
				}
			}
		})
	}
}

func TestStatsCounters(t *testing.T) {
	db := openTestDB(t, Options{Merger: sizeMax})
	if err := db.Put([]byte("a"), nil); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := db.Merge([]byte("a"), u64(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("a")); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Puts != 1 || st.Deletes != 1 || st.Merges != 1 || st.Gets != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLargeValues(t *testing.T) {
	db := openTestDB(t, Options{MemTableBytes: 64 << 10})
	big := bytes.Repeat([]byte{0xAB}, 1<<20)
	if err := db.Put([]byte("big"), big); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("big"))
	if err != nil || !bytes.Equal(v, big) {
		t.Fatalf("big value corrupted: len=%d, %v", len(v), err)
	}
}

func TestIteratorDuringCompaction(t *testing.T) {
	db := openTestDB(t, Options{MemTableBytes: 1024, TargetFileBytes: 2048})
	for i := 0; i < 500; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	// Trigger heavy rewriting while the iterator is open.
	for i := 0; i < 500; i++ {
		if err := db.Put(key(i), []byte("new")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	count := 0
	for it.SeekFirst(); it.Valid(); it.Next() {
		if !bytes.Equal(it.Value(), val(count)) {
			t.Fatalf("iterator saw post-snapshot data at %q", it.Key())
		}
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	it.Close()
	if count != 500 {
		t.Fatalf("scanned %d, want 500", count)
	}
	// New reads see the new values.
	v, err := db.Get(key(7))
	if err != nil || string(v) != "new" {
		t.Fatalf("post-compaction read = %q, %v", v, err)
	}
}

func TestWithKeyLocksAtomicVsPutIfAbsent(t *testing.T) {
	db := openTestDB(t, Options{})
	// A read-validate-apply sequence under WithKeyLocks must be atomic
	// with respect to concurrent PutIfAbsent on the same keys: exactly
	// one side of each race wins, never both.
	const keys = 200
	keyOf := func(i int) []byte { return []byte(fmt.Sprintf("key-%03d", i)) }
	batchWins := make([]bool, keys)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < keys; i++ {
			k := keyOf(i)
			db.WithKeyLocks([][]byte{k}, func() error {
				if _, err := db.Get(k); errors.Is(err, ErrNotFound) {
					b := &Batch{}
					b.Put(k, []byte("batch"))
					batchWins[i] = true
					return db.Apply(b)
				}
				return nil
			})
		}
	}()
	go func() {
		defer wg.Done()
		for i := keys - 1; i >= 0; i-- {
			if _, err := db.PutIfAbsent(keyOf(i), []byte("single")); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	for i := 0; i < keys; i++ {
		v, err := db.Get(keyOf(i))
		if err != nil {
			t.Fatal(err)
		}
		want := "single"
		if batchWins[i] {
			want = "batch"
		}
		if string(v) != want {
			t.Fatalf("key %d = %q, want %q (winner not exclusive)", i, v, want)
		}
	}
}

func TestBatchOwnedVariantsRoundTrip(t *testing.T) {
	db := openTestDB(t, Options{Merger: func(_, existing []byte, ops [][]byte) []byte {
		out := append([]byte(nil), existing...)
		for _, op := range ops {
			out = append(out, op...)
		}
		return out
	}})
	if err := db.Put([]byte("gone"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	b := &Batch{}
	b.PutOwned([]byte("a"), []byte("1"))
	b.MergeOwned([]byte("a"), []byte("2"))
	b.DeleteOwned([]byte("gone"))
	if b.Len() != 3 {
		t.Fatalf("batch len = %d", b.Len())
	}
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("a"))
	if err != nil || string(v) != "12" {
		t.Fatalf("merged owned batch = %q, %v", v, err)
	}
	if _, err := db.Get([]byte("gone")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("owned delete = %v", err)
	}
	// Apply consumed the batch; an accidental re-Apply is a no-op.
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
}
