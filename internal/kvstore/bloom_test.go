package kvstore

import (
	"fmt"
	"testing"
)

func TestBloomNoFalseNegatives(t *testing.T) {
	var keys [][]byte
	for i := 0; i < 5000; i++ {
		keys = append(keys, []byte(fmt.Sprintf("/data/file.%d", i)))
	}
	f := buildBloom(keys, 10)
	for _, k := range keys {
		if !f.mayContain(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	var keys [][]byte
	for i := 0; i < 10000; i++ {
		keys = append(keys, []byte(fmt.Sprintf("member-%d", i)))
	}
	f := buildBloom(keys, 10)
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.mayContain([]byte(fmt.Sprintf("absent-%d", i))) {
			fp++
		}
	}
	// 10 bits/key targets ~1%; allow generous slack.
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Fatalf("false positive rate %.3f > 0.05", rate)
	}
}

func TestBloomEncodeDecode(t *testing.T) {
	keys := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	f := buildBloom(keys, 10)
	g := decodeBloom(f.encode())
	for _, k := range keys {
		if !g.mayContain(k) {
			t.Fatalf("decoded filter lost %q", k)
		}
	}
	if g.hashes != f.hashes || len(g.bits) != len(f.bits) {
		t.Fatal("decoded filter shape differs")
	}
}

func TestBloomEmptyAndDegenerate(t *testing.T) {
	f := buildBloom(nil, 10)
	// An empty filter may answer anything, but must not panic.
	f.mayContain([]byte("x"))

	var zero bloomFilter
	if !zero.mayContain([]byte("x")) {
		t.Fatal("zero-value filter must be permissive")
	}
	garbage := decodeBloom(nil)
	if !garbage.mayContain([]byte("k")) {
		t.Fatal("decode of garbage must yield permissive filter")
	}
	// Degenerate bits-per-key still works.
	one := buildBloom([][]byte{[]byte("k")}, 0)
	if !one.mayContain([]byte("k")) {
		t.Fatal("bitsPerKey=0 filter lost its key")
	}
}
