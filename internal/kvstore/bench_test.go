package kvstore

import (
	"fmt"
	"testing"

	"repro/internal/vfs"
)

// These microbenchmarks measure the metadata-operation building blocks the
// simulation plane's service-time constants are calibrated from
// (internal/simcluster/params.go): a GekkoFS create is one small put, a
// stat is one point get.

func BenchmarkPutSmall(b *testing.B) {
	db, err := Open(Options{FS: vfs.NewMem()})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	v := make([]byte, 25) // metadata record size
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put([]byte(fmt.Sprintf("/bench/dir/file.%08d", i)), v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetSmall(b *testing.B) {
	db, err := Open(Options{FS: vfs.NewMem()})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const n = 100000
	v := make([]byte, 25)
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("/bench/dir/file.%08d", i)), v); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("/bench/dir/file.%08d", i%n))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeleteSmall(b *testing.B) {
	db, err := Open(Options{FS: vfs.NewMem()})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Delete([]byte(fmt.Sprintf("/bench/dir/file.%08d", i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMergeSizeUpdate(b *testing.B) {
	db, err := Open(Options{FS: vfs.NewMem(), Merger: sizeMax})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Merge([]byte("/shared/file"), u64(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
