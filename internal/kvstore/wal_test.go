package kvstore

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/vfs"
)

func TestWALRoundTrip(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := newWALWriter(f)
	batches := [][]entry{
		{{key: []byte("a"), val: []byte("1"), kind: kindPut}},
		{{key: []byte("b"), kind: kindDelete}, {key: []byte("c"), val: []byte("3"), kind: kindMerge}},
	}
	seq := uint64(1)
	for _, b := range batches {
		if err := w.append(seq, b, true); err != nil {
			t.Fatal(err)
		}
		seq += uint64(len(b))
	}

	var got []entry
	maxSeq, err := replayWAL(f, func(e entry) { got = append(got, e) })
	if err != nil {
		t.Fatal(err)
	}
	if maxSeq != 3 {
		t.Fatalf("maxSeq = %d, want 3", maxSeq)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d entries, want 3", len(got))
	}
	if string(got[0].key) != "a" || got[0].kind != kindPut || got[0].seq != 1 {
		t.Fatalf("entry 0 = %+v", got[0])
	}
	if string(got[1].key) != "b" || got[1].kind != kindDelete || got[1].seq != 2 {
		t.Fatalf("entry 1 = %+v", got[1])
	}
	if string(got[2].key) != "c" || got[2].kind != kindMerge || got[2].seq != 3 {
		t.Fatalf("entry 2 = %+v", got[2])
	}
}

func TestWALTornTailIgnored(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := newWALWriter(f)
	if err := w.append(1, []entry{{key: []byte("good"), val: []byte("v"), kind: kindPut}}, true); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: append garbage that looks like a header.
	if _, err := f.Append([]byte{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}

	var got []entry
	if _, err := replayWAL(f, func(e entry) { got = append(got, e) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].key) != "good" {
		t.Fatalf("replay = %v, want only the intact record", got)
	}
}

func TestWALCorruptPayloadStopsReplay(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("wal")
	w := newWALWriter(f)
	for i, k := range []string{"a", "b", "c"} {
		if err := w.append(uint64(i+1), []entry{{key: []byte(k), kind: kindPut}}, true); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt one byte in the middle record's payload region.
	sz, _ := f.Size()
	if _, err := f.WriteAt([]byte{0xff}, sz/2); err != nil {
		t.Fatal(err)
	}
	var got []entry
	if _, err := replayWAL(f, func(e entry) { got = append(got, e) }); err != nil {
		t.Fatal(err)
	}
	if len(got) >= 3 {
		t.Fatalf("corruption not detected; replayed %d records", len(got))
	}
}

func TestBatchEncodeDecodeProperty(t *testing.T) {
	f := func(keys [][]byte, vals [][]byte, kinds []uint8, seq uint64) bool {
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		if len(kinds) < n {
			n = len(kinds)
		}
		ops := make([]entry, n)
		for i := 0; i < n; i++ {
			ops[i] = entry{key: keys[i], val: vals[i], kind: kind(kinds[i] % 3)}
		}
		dec, err := decodeBatch(encodeBatch(seq, ops))
		if err != nil || len(dec) != n {
			return false
		}
		for i := range dec {
			if !bytes.Equal(dec[i].key, ops[i].key) || !bytes.Equal(dec[i].val, ops[i].val) {
				return false
			}
			if dec[i].kind != ops[i].kind || dec[i].seq != seq+uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeBatchRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {1}, make([]byte, 11)} {
		if _, err := decodeBatch(b); err == nil {
			t.Errorf("decodeBatch(%v) succeeded", b)
		}
	}
	// Count says 1 op but no payload follows.
	bad := encodeBatch(1, nil)
	bad[8] = 5
	if _, err := decodeBatch(bad); err == nil {
		t.Error("decodeBatch accepted truncated op list")
	}
}
