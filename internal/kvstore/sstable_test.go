package kvstore

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/vfs"
)

func buildTestTable(t *testing.T, ents []entry, blockBytes int) *sstReader {
	t.Helper()
	fs := vfs.NewMem()
	f, _ := fs.Create("t.sst")
	w := newSSTWriter(f, 1)
	for i := range ents {
		if err := w.add(&ents[i], blockBytes); err != nil {
			t.Fatal(err)
		}
	}
	meta, err := w.finish(10)
	if err != nil {
		t.Fatal(err)
	}
	r, err := openSSTReader(f, meta)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSSTableRoundTrip(t *testing.T) {
	var ents []entry
	for i := 0; i < 500; i++ {
		ents = append(ents, entry{
			key:  []byte(fmt.Sprintf("key-%05d", i)),
			val:  []byte(fmt.Sprintf("val-%d", i)),
			seq:  uint64(1000 + i),
			kind: kindPut,
		})
	}
	r := buildTestTable(t, ents, 256) // small blocks force many index entries

	if r.meta.entries != 500 {
		t.Fatalf("entries = %d", r.meta.entries)
	}
	if string(r.meta.smallest) != "key-00000" || string(r.meta.largest) != "key-00499" {
		t.Fatalf("bounds = %q..%q", r.meta.smallest, r.meta.largest)
	}

	for i := 0; i < 500; i += 37 {
		key := []byte(fmt.Sprintf("key-%05d", i))
		vs, err := r.get(key, ^uint64(0))
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) != 1 || string(vs[0].val) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("get(%q) = %v", key, vs)
		}
	}
	if vs, _ := r.get([]byte("nope"), ^uint64(0)); len(vs) != 0 {
		t.Fatalf("absent key returned %v", vs)
	}
}

func TestSSTableIterFullScan(t *testing.T) {
	var ents []entry
	for i := 0; i < 300; i++ {
		ents = append(ents, entry{key: []byte(fmt.Sprintf("%04d", i)), seq: uint64(i + 1), kind: kindPut})
	}
	r := buildTestTable(t, ents, 128)
	it := r.iter()
	n := 0
	var prev []byte
	for it.seekFirst(); it.valid(); it.next() {
		if prev != nil && bytes.Compare(prev, it.cur().key) >= 0 {
			t.Fatalf("order violation at %q", it.cur().key)
		}
		prev = append(prev[:0], it.cur().key...)
		n++
	}
	if it.err != nil {
		t.Fatal(it.err)
	}
	if n != 300 {
		t.Fatalf("scanned %d, want 300", n)
	}
}

func TestSSTableIterSeek(t *testing.T) {
	var ents []entry
	for i := 0; i < 100; i += 2 { // even keys only
		ents = append(ents, entry{key: []byte(fmt.Sprintf("%04d", i)), seq: 1, kind: kindPut})
	}
	r := buildTestTable(t, ents, 64)
	it := r.iter()
	it.seek(&entry{key: []byte("0013"), seq: ^uint64(0)})
	if !it.valid() || string(it.cur().key) != "0014" {
		t.Fatalf("seek(0013) -> %v", it.valid())
	}
	it.seek(&entry{key: []byte("9999"), seq: ^uint64(0)})
	if it.valid() {
		t.Fatal("seek past end valid")
	}
	it.seek(&entry{key: []byte(""), seq: ^uint64(0)})
	if !it.valid() || string(it.cur().key) != "0000" {
		t.Fatal("seek to start failed")
	}
}

func TestSSTableVersionRunAcrossBlocks(t *testing.T) {
	// Many versions of one key with tiny blocks: the version run spans
	// blocks, and get must keep collecting merge operands across block
	// boundaries.
	var ents []entry
	for seq := 50; seq >= 2; seq-- {
		ents = append(ents, entry{key: []byte("k"), val: []byte{byte(seq)}, seq: uint64(seq), kind: kindMerge})
	}
	ents = append(ents, entry{key: []byte("k"), val: []byte("base"), seq: 1, kind: kindPut})
	r := buildTestTable(t, ents, 32)
	vs, err := r.get([]byte("k"), ^uint64(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 50 {
		t.Fatalf("collected %d versions, want 50 (49 merges + base)", len(vs))
	}
	if vs[len(vs)-1].kind != kindPut {
		t.Fatal("chain did not terminate at the base put")
	}
}

func TestSSTableRejectsOutOfOrder(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("t.sst")
	w := newSSTWriter(f, 1)
	if err := w.add(&entry{key: []byte("b"), seq: 1, kind: kindPut}, 4096); err != nil {
		t.Fatal(err)
	}
	if err := w.add(&entry{key: []byte("a"), seq: 2, kind: kindPut}, 4096); err == nil {
		t.Fatal("out-of-order key accepted")
	}
	// Same key must order by descending seq: seq 1 then seq 2 is invalid.
	f2, _ := fs.Create("t2.sst")
	w2 := newSSTWriter(f2, 2)
	if err := w2.add(&entry{key: []byte("k"), seq: 1, kind: kindPut}, 4096); err != nil {
		t.Fatal(err)
	}
	if err := w2.add(&entry{key: []byte("k"), seq: 2, kind: kindPut}, 4096); err == nil {
		t.Fatal("ascending seq for same key accepted")
	}
}

func TestSSTableBadMagic(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("bad.sst")
	if _, err := f.Append(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := openSSTReader(f, tableMeta{num: 9}); err == nil {
		t.Fatal("opened garbage as sstable")
	}
}

func TestSSTableSnapshotGet(t *testing.T) {
	ents := []entry{
		{key: []byte("k"), val: []byte("new"), seq: 10, kind: kindPut},
		{key: []byte("k"), val: []byte("old"), seq: 5, kind: kindPut},
	}
	r := buildTestTable(t, ents, 4096)
	vs, err := r.get([]byte("k"), 7)
	if err != nil || len(vs) != 1 || string(vs[0].val) != "old" {
		t.Fatalf("snapshot get = %v, %v; want old", vs, err)
	}
	vs, err = r.get([]byte("k"), 4)
	if err != nil || len(vs) != 0 {
		t.Fatalf("pre-creation snapshot returned %v", vs)
	}
}
