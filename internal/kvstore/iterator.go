package kvstore

import "bytes"

// internalIterator walks entries in internal order (key asc, seq desc).
// memIter and sstIter implement it; mergeIter combines them.
type internalIterator interface {
	seekFirst()
	seek(probe *entry)
	valid() bool
	next()
	cur() *entry
}

// mergeIter interleaves several internalIterators into one ordered stream.
// The source count is small (memtable + immutables + tables), so a linear
// minimum scan beats heap bookkeeping.
type mergeIter struct {
	srcs []internalIterator
	min  int // index of current minimum, -1 when exhausted
}

func newMergeIter(srcs []internalIterator) *mergeIter {
	return &mergeIter{srcs: srcs, min: -1}
}

func (m *mergeIter) findMin() {
	m.min = -1
	for i, s := range m.srcs {
		if !s.valid() {
			continue
		}
		if m.min < 0 || compareEntries(s.cur(), m.srcs[m.min].cur()) < 0 {
			m.min = i
		}
	}
}

func (m *mergeIter) seekFirst() {
	for _, s := range m.srcs {
		s.seekFirst()
	}
	m.findMin()
}

func (m *mergeIter) seek(probe *entry) {
	for _, s := range m.srcs {
		s.seek(probe)
	}
	m.findMin()
}

func (m *mergeIter) valid() bool { return m.min >= 0 }

func (m *mergeIter) next() {
	m.srcs[m.min].next()
	m.findMin()
}

func (m *mergeIter) cur() *entry { return m.srcs[m.min].cur() }

// Iterator is the user-facing ordered cursor over live keys. It resolves
// versions, tombstones and merge chains against a snapshot sequence taken
// at creation, so a scan observes a consistent point-in-time view even
// while writes continue — the property the daemons' readdir scans rely on
// locally (cross-daemon listings remain eventually consistent, paper
// §III-A).
type Iterator struct {
	db   *DB
	it   *mergeIter
	snap uint64

	key []byte
	val []byte
	ok  bool
	err error
}

// SeekFirst positions the iterator at the smallest live key.
func (i *Iterator) SeekFirst() {
	i.it.seekFirst()
	i.settle()
}

// Seek positions the iterator at the first live key >= target.
func (i *Iterator) Seek(target []byte) {
	probe := entry{key: target, seq: i.snap}
	i.it.seek(&probe)
	i.settle()
}

// Valid reports whether the iterator is positioned at a live key.
func (i *Iterator) Valid() bool { return i.ok }

// Err returns the first error the iterator encountered, if any.
func (i *Iterator) Err() error { return i.err }

// Key returns the current key. The slice is owned by the iterator and
// valid until the next positioning call.
func (i *Iterator) Key() []byte { return i.key }

// Value returns the current value under the same ownership rules as Key.
func (i *Iterator) Value() []byte { return i.val }

// Next advances to the next live key.
func (i *Iterator) Next() {
	if !i.ok {
		return
	}
	i.skipRestOfKey(i.key)
	i.settle()
}

// skipRestOfKey consumes all remaining versions of key.
func (i *Iterator) skipRestOfKey(key []byte) {
	for i.it.valid() && bytes.Equal(i.it.cur().key, key) {
		i.it.next()
	}
}

// settle advances the underlying merged stream to the next key whose
// resolved state is a live value, loading Key/Value.
func (i *Iterator) settle() {
	i.ok = false
	for i.it.valid() {
		e := i.it.cur()
		if e.seq > i.snap {
			// Version newer than the snapshot: ignore it and look at
			// older versions of the same key.
			i.it.next()
			continue
		}
		key := append([]byte(nil), e.key...)
		// Collect the visible version chain for this key.
		var chain []entry
		for i.it.valid() && bytes.Equal(i.it.cur().key, key) {
			c := i.it.cur()
			if c.seq <= i.snap && (len(chain) == 0 || chain[len(chain)-1].kind == kindMerge) {
				chain = append(chain, entry{
					key:  key,
					val:  append([]byte(nil), c.val...),
					seq:  c.seq,
					kind: c.kind,
				})
			}
			i.it.next()
		}
		val, live := i.db.resolveChain(key, chain)
		if live {
			i.key, i.val, i.ok = key, val, true
			return
		}
	}
}

// Close releases the iterator's references to the snapshot state.
func (i *Iterator) Close() {
	i.db.releaseIterRefs()
	i.it = nil
}
