package kvstore

import "encoding/binary"

// bloomFilter is a split block-less Bloom filter over user keys, built per
// SSTable like RocksDB's full filters. A negative answer proves the key is
// absent from the table, letting point lookups skip the data blocks that
// dominate stat-heavy metadata workloads.
type bloomFilter struct {
	bits   []byte
	hashes uint32
}

// buildBloom constructs a filter for keys with the given bits-per-key
// budget (10 ≈ 1% false-positive rate).
func buildBloom(keys [][]byte, bitsPerKey int) bloomFilter {
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	k := uint32(float64(bitsPerKey) * 69 / 100) // ln2 * bitsPerKey
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	nBits := len(keys) * bitsPerKey
	if nBits < 64 {
		nBits = 64
	}
	nBytes := (nBits + 7) / 8
	bits := make([]byte, nBytes)
	for _, key := range keys {
		h := bloomHash(key)
		delta := h>>17 | h<<15 // rotate for double hashing
		for i := uint32(0); i < k; i++ {
			pos := h % uint32(nBytes*8)
			bits[pos/8] |= 1 << (pos % 8)
			h += delta
		}
	}
	return bloomFilter{bits: bits, hashes: k}
}

// mayContain reports whether key could be in the set; false negatives are
// impossible.
func (f *bloomFilter) mayContain(key []byte) bool {
	if len(f.bits) == 0 {
		return true
	}
	nBits := uint32(len(f.bits) * 8)
	h := bloomHash(key)
	delta := h>>17 | h<<15
	for i := uint32(0); i < f.hashes; i++ {
		pos := h % nBits
		if f.bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}

// encode serializes the filter as [hashes u32][bits...].
func (f *bloomFilter) encode() []byte {
	out := make([]byte, 4+len(f.bits))
	binary.LittleEndian.PutUint32(out, f.hashes)
	copy(out[4:], f.bits)
	return out
}

// decodeBloom parses an encoded filter.
func decodeBloom(b []byte) bloomFilter {
	if len(b) < 4 {
		return bloomFilter{}
	}
	return bloomFilter{hashes: binary.LittleEndian.Uint32(b), bits: b[4:]}
}

// bloomHash is the classic Murmur-inspired hash LevelDB uses for its
// filters; cheap and well-spread for short path keys.
func bloomHash(data []byte) uint32 {
	const (
		seed = 0xbc9f1d34
		m    = 0xc6a4a793
	)
	h := uint32(seed) ^ uint32(len(data))*m
	for ; len(data) >= 4; data = data[4:] {
		h += binary.LittleEndian.Uint32(data)
		h *= m
		h ^= h >> 16
	}
	switch len(data) {
	case 3:
		h += uint32(data[2]) << 16
		fallthrough
	case 2:
		h += uint32(data[1]) << 8
		fallthrough
	case 1:
		h += uint32(data[0])
		h *= m
		h ^= h >> 24
	}
	return h
}
