package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func TestMemTableOrdering(t *testing.T) {
	mt := newMemTable(1)
	keys := []string{"b", "a", "d", "c", "aa"}
	for i, k := range keys {
		mt.add(entry{key: []byte(k), val: []byte{byte(i)}, seq: uint64(i + 1), kind: kindPut})
	}
	var got []string
	for it := mt.iter(); ; {
		if it.n == nil {
			it.seekFirst()
		} else {
			it.next()
		}
		if !it.valid() {
			break
		}
		got = append(got, string(it.cur().key))
	}
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("iteration order %v, want %v", got, want)
	}
}

func TestMemTableVersionsNewestFirst(t *testing.T) {
	mt := newMemTable(1)
	mt.add(entry{key: []byte("k"), val: []byte("v1"), seq: 1, kind: kindPut})
	mt.add(entry{key: []byte("k"), val: []byte("v2"), seq: 2, kind: kindPut})
	mt.add(entry{key: []byte("k"), val: []byte("v3"), seq: 3, kind: kindPut})

	vs := mt.get([]byte("k"), 100)
	if len(vs) != 1 || string(vs[0].val) != "v3" {
		t.Fatalf("get = %v, want single newest v3", vs)
	}
	// Snapshot below the newest version sees the older one.
	vs = mt.get([]byte("k"), 2)
	if len(vs) != 1 || string(vs[0].val) != "v2" {
		t.Fatalf("snapshot get = %v, want v2", vs)
	}
}

func TestMemTableMergeChainCollection(t *testing.T) {
	mt := newMemTable(1)
	mt.add(entry{key: []byte("k"), val: []byte("base"), seq: 1, kind: kindPut})
	mt.add(entry{key: []byte("k"), val: []byte("m1"), seq: 2, kind: kindMerge})
	mt.add(entry{key: []byte("k"), val: []byte("m2"), seq: 3, kind: kindMerge})

	vs := mt.get([]byte("k"), 100)
	if len(vs) != 3 {
		t.Fatalf("chain length = %d, want 3 (m2, m1, base)", len(vs))
	}
	if string(vs[0].val) != "m2" || string(vs[1].val) != "m1" || string(vs[2].val) != "base" {
		t.Fatalf("chain = %v", vs)
	}
}

func TestMemTableGetAbsent(t *testing.T) {
	mt := newMemTable(1)
	mt.add(entry{key: []byte("a"), seq: 1, kind: kindPut})
	if vs := mt.get([]byte("b"), 10); len(vs) != 0 {
		t.Fatalf("absent key returned %v", vs)
	}
}

func TestMemTableRandomizedOrder(t *testing.T) {
	mt := newMemTable(42)
	rnd := rand.New(rand.NewSource(7))
	n := 2000
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%06d", rnd.Intn(100000))
		mt.add(entry{key: []byte(k), seq: uint64(i + 1), kind: kindPut})
	}
	it := mt.iter()
	it.seekFirst()
	var prev *entry
	count := 0
	for ; it.valid(); it.next() {
		cur := it.cur()
		if prev != nil && compareEntries(prev, cur) >= 0 {
			t.Fatalf("order violation: %q/%d then %q/%d", prev.key, prev.seq, cur.key, cur.seq)
		}
		cp := *cur
		prev = &cp
		count++
	}
	if count != n {
		t.Fatalf("iterated %d entries, want %d", count, n)
	}
}

func TestMemTableSeek(t *testing.T) {
	mt := newMemTable(1)
	for _, k := range []string{"a", "c", "e"} {
		mt.add(entry{key: []byte(k), seq: 1, kind: kindPut})
	}
	it := mt.iter()
	it.seek(&entry{key: []byte("b"), seq: ^uint64(0)})
	if !it.valid() || !bytes.Equal(it.cur().key, []byte("c")) {
		t.Fatalf("seek(b) landed on %v", it.n)
	}
	it.seek(&entry{key: []byte("z"), seq: ^uint64(0)})
	if it.valid() {
		t.Fatal("seek past end still valid")
	}
}
