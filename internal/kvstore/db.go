package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/vfs"
)

// MergeOperator combines a key's existing value (nil if absent) with merge
// operands, oldest first, producing the new value. GekkoFS daemons use it
// for lock-free file-size updates, mirroring the released system's RocksDB
// merge operands.
type MergeOperator func(key, existing []byte, operands [][]byte) []byte

// Options tunes a DB. The zero value plus an FS is usable; defaults follow
// the paper's setting of an LSM store on low-latency NAND storage.
type Options struct {
	// FS is the backing file system; required. Use vfs.NewMem() for a
	// purely in-memory store.
	FS vfs.FS
	// Merger resolves merge operands. Required before calling Merge.
	Merger MergeOperator
	// SyncWAL forces an fsync per write batch. GekkoFS acknowledges
	// operations synchronously; tests enable this together with crash
	// injection.
	SyncWAL bool
	// DisableWAL turns the log off entirely (volatile store). Used by the
	// in-process benchmarks where durability is irrelevant.
	DisableWAL bool
	// MemTableBytes is the flush threshold (default 4 MiB).
	MemTableBytes int64
	// BlockBytes is the SSTable block target (default 4 KiB).
	BlockBytes int
	// L0CompactTrigger is the number of L0 tables that triggers a
	// compaction into L1 (default 4).
	L0CompactTrigger int
	// LevelBytesBase is the size budget of L1 (default 8 MiB); each level
	// below is LevelMultiplier times larger.
	LevelBytesBase int64
	// LevelMultiplier is the growth factor between levels (default 10).
	LevelMultiplier int64
	// TargetFileBytes is the compaction output file size (default 2 MiB).
	TargetFileBytes int64
	// BloomBitsPerKey sizes the per-table bloom filters (default 10).
	BloomBitsPerKey int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MemTableBytes == 0 {
		out.MemTableBytes = 4 << 20
	}
	if out.BlockBytes == 0 {
		out.BlockBytes = 4 << 10
	}
	if out.L0CompactTrigger == 0 {
		out.L0CompactTrigger = 4
	}
	if out.LevelBytesBase == 0 {
		out.LevelBytesBase = 8 << 20
	}
	if out.LevelMultiplier == 0 {
		out.LevelMultiplier = 10
	}
	if out.TargetFileBytes == 0 {
		out.TargetFileBytes = 2 << 20
	}
	if out.BloomBitsPerKey == 0 {
		out.BloomBitsPerKey = 10
	}
	return out
}

// Stats exposes engine counters for benchmarks and tests.
type Stats struct {
	// Puts, Gets, Deletes, Merges count user operations.
	Puts, Gets, Deletes, Merges uint64
	// Flushes counts memtable flushes; Compactions counts table merges.
	Flushes, Compactions uint64
	// TablesPerLevel is the current table count per level.
	TablesPerLevel [numLevels]int
	// MemBytes is the active memtable's approximate size.
	MemBytes int64
}

// Common errors.
var (
	// ErrNotFound reports a missing key.
	ErrNotFound = errors.New("kvstore: key not found")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("kvstore: store is closed")
	// ErrNoMerger reports a Merge call without Options.Merger.
	ErrNoMerger = errors.New("kvstore: no merge operator configured")
)

// DB is the store. It is safe for concurrent use.
type DB struct {
	opts Options
	fs   vfs.FS

	mu       sync.Mutex
	cond     *sync.Cond // signals the background worker
	mem      *memTable
	imm      []immTable // flush queue, oldest first
	wal      *walWriter
	walNum   uint64
	seq      uint64
	vers     *version
	readers  map[uint64]*sstReader
	nextFile uint64
	closed   bool
	bgErr    error
	workDone chan struct{}
	iterRefs int
	// obsoleteTables are table numbers replaced by compaction whose files
	// are deleted once no iterator references them.
	obsoleteTables []uint64
	stats          Stats

	keyLocks [64]sync.Mutex // striped locks backing PutIfAbsent
}

type immTable struct {
	mt     *memTable
	walNum uint64
}

// Open creates or recovers a store in opts.FS.
func Open(opts Options) (*DB, error) {
	if opts.FS == nil {
		return nil, errors.New("kvstore: Options.FS is required")
	}
	o := opts.withDefaults()
	db := &DB{
		opts:     o,
		fs:       o.FS,
		vers:     &version{},
		readers:  make(map[uint64]*sstReader),
		nextFile: 1,
		workDone: make(chan struct{}),
	}
	db.cond = sync.NewCond(&db.mu)

	st, ok, err := readManifest(db.fs)
	if err != nil {
		return nil, err
	}
	if ok {
		db.vers = st.vers
		db.seq = st.lastSeq
		db.nextFile = st.nextFile
		db.walNum = st.walNum
	}

	db.mem = newMemTable(int64(db.seq) + 1)
	if err := db.recoverWALs(); err != nil {
		return nil, err
	}
	if err := db.rotateWAL(); err != nil {
		return nil, err
	}

	go db.backgroundWork()
	return db, nil
}

// recoverWALs replays every intact log batch into the fresh memtable and,
// if anything was recovered, flushes it straight to L0 so the old logs can
// be deleted. Recovery therefore leaves the store with an empty log.
func (db *DB) recoverWALs() error {
	names, err := db.fs.List("")
	if err != nil {
		return err
	}
	var nums []uint64
	for _, n := range names {
		var num uint64
		if _, err := fmt.Sscanf(n, "wal-%d.log", &num); err == nil {
			nums = append(nums, num)
		}
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	recovered := false
	for _, num := range nums {
		f, err := db.fs.Open(walName(num))
		if err != nil {
			return err
		}
		maxSeq, err := replayWAL(f, func(e entry) {
			db.mem.add(e)
			recovered = true
		})
		f.Close()
		if err != nil {
			return err
		}
		if maxSeq > db.seq {
			db.seq = maxSeq
		}
	}
	if recovered {
		num := db.nextFile
		db.nextFile++
		t, err := db.buildTable(num, db.mem.iter())
		if err != nil {
			return err
		}
		db.vers.levels[0] = append([]tableMeta{t}, db.vers.levels[0]...)
		db.mem = newMemTable(int64(db.seq) + 1)
		if err := db.persistManifestLocked(); err != nil {
			return err
		}
	}
	for _, num := range nums {
		if err := db.fs.Remove(walName(num)); err != nil {
			return err
		}
	}
	return nil
}

func walName(num uint64) string { return fmt.Sprintf("wal-%06d.log", num) }

// rotateWAL opens a fresh log for the active memtable.
func (db *DB) rotateWAL() error {
	if db.opts.DisableWAL {
		return nil
	}
	db.walNum++
	f, err := db.fs.Create(walName(db.walNum))
	if err != nil {
		return err
	}
	db.wal = newWALWriter(f)
	return nil
}

// Put stores key=value.
func (db *DB) Put(key, value []byte) error {
	return db.apply([]entry{{key: key, val: value, kind: kindPut}})
}

// Delete removes key; deleting an absent key succeeds.
func (db *DB) Delete(key []byte) error {
	return db.apply([]entry{{key: key, kind: kindDelete}})
}

// Merge records a merge operand for key, resolved lazily by
// Options.Merger.
func (db *DB) Merge(key, operand []byte) error {
	if db.opts.Merger == nil {
		return ErrNoMerger
	}
	return db.apply([]entry{{key: key, val: operand, kind: kindMerge}})
}

// Batch applies several operations atomically with respect to recovery:
// either the whole batch replays from the WAL or none of it. Batch
// methods copy keys and values as they are queued, so Apply can hand the
// entries to the memtable without a second copy.
type Batch struct {
	ops []entry
}

// Put adds a put to the batch.
func (b *Batch) Put(key, value []byte) {
	b.ops = append(b.ops, entry{key: append([]byte(nil), key...), val: append([]byte(nil), value...), kind: kindPut})
}

// Delete adds a delete to the batch.
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, entry{key: append([]byte(nil), key...), kind: kindDelete})
}

// Merge adds a merge operand to the batch.
func (b *Batch) Merge(key, operand []byte) {
	b.ops = append(b.ops, entry{key: append([]byte(nil), key...), val: append([]byte(nil), operand...), kind: kindMerge})
}

// PutOwned, DeleteOwned and MergeOwned are the zero-copy variants: the
// batch takes ownership of the buffers, which the caller must not touch
// afterwards. They exist for hot batch producers (the daemon's vectored
// metadata handler) whose buffers are freshly built per op anyway.

// PutOwned adds a put whose buffers the batch takes ownership of.
func (b *Batch) PutOwned(key, value []byte) {
	b.ops = append(b.ops, entry{key: key, val: value, kind: kindPut})
}

// DeleteOwned adds a delete whose key buffer the batch takes ownership of.
func (b *Batch) DeleteOwned(key []byte) {
	b.ops = append(b.ops, entry{key: key, kind: kindDelete})
}

// MergeOwned adds a merge operand whose buffers the batch takes ownership
// of.
func (b *Batch) MergeOwned(key, operand []byte) {
	b.ops = append(b.ops, entry{key: key, val: operand, kind: kindMerge})
}

// Len returns the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

// Apply commits the batch. The batch owns its entry buffers (its methods
// copied them at queue time), so they move into the memtable as-is; the
// batch must not be reused after Apply.
func (db *DB) Apply(b *Batch) error {
	if len(b.ops) == 0 {
		return nil
	}
	err := db.applyEntries(b.ops, true)
	b.ops = nil
	return err
}

// apply copies the callers' buffers and inserts the operations.
func (db *DB) apply(ops []entry) error {
	return db.applyEntries(ops, false)
}

// applyEntries assigns sequence numbers, logs, and inserts the
// operations. owned declares that the entries' key/value buffers belong
// to the store already and need no defensive copy.
func (db *DB) applyEntries(ops []entry, owned bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.bgErr != nil {
		return db.bgErr
	}
	// Backpressure: cap the flush queue.
	for len(db.imm) >= 2 {
		db.cond.Wait()
		if db.closed {
			return ErrClosed
		}
		if db.bgErr != nil {
			return db.bgErr
		}
	}

	first := db.seq + 1
	for i := range ops {
		ops[i].seq = first + uint64(i)
	}
	db.seq += uint64(len(ops))

	if !db.opts.DisableWAL {
		if err := db.wal.append(first, ops, db.opts.SyncWAL); err != nil {
			return err
		}
	}
	for i := range ops {
		e := ops[i]
		if !owned {
			// Copy key/val so callers may reuse their buffers.
			e.key = append([]byte(nil), ops[i].key...)
			e.val = append([]byte(nil), ops[i].val...)
		}
		db.mem.add(e)
		switch e.kind {
		case kindPut:
			db.stats.Puts++
		case kindDelete:
			db.stats.Deletes++
		case kindMerge:
			db.stats.Merges++
		}
	}

	if db.mem.sizeBytes() >= db.opts.MemTableBytes {
		if err := db.rotateMemLocked(); err != nil {
			return err
		}
	}
	return nil
}

// rotateMemLocked moves the active memtable to the flush queue and starts
// a fresh one with a fresh WAL. Caller holds db.mu.
func (db *DB) rotateMemLocked() error {
	db.imm = append(db.imm, immTable{mt: db.mem, walNum: db.walNum})
	if db.wal != nil {
		if err := db.wal.close(); err != nil {
			return err
		}
		db.wal = nil
	}
	if err := db.rotateWAL(); err != nil {
		return err
	}
	db.mem = newMemTable(int64(db.seq) + 1)
	db.cond.Broadcast()
	return nil
}

// Get returns the value of key. The returned slice is the caller's to
// keep.
func (db *DB) Get(key []byte) ([]byte, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	db.stats.Gets++
	mem := db.mem
	imms := make([]*memTable, len(db.imm))
	for i := range db.imm {
		imms[i] = db.imm[i].mt
	}
	vers := db.vers
	snap := db.seq
	db.mu.Unlock()

	chain, err := db.collectChain(key, snap, mem, imms, vers)
	if err != nil {
		return nil, err
	}
	val, live := db.resolveChain(key, chain)
	if !live {
		return nil, ErrNotFound
	}
	return val, nil
}

// Has reports whether key exists.
func (db *DB) Has(key []byte) (bool, error) {
	_, err := db.Get(key)
	if err == nil {
		return true, nil
	}
	if errors.Is(err, ErrNotFound) {
		return false, nil
	}
	return false, err
}

// collectChain gathers the newest-first version chain of key, stopping at
// the first non-merge entry, searching memtable, immutables, then tables.
func (db *DB) collectChain(key []byte, snap uint64, mem *memTable, imms []*memTable, vers *version) ([]entry, error) {
	var chain []entry
	need := func() bool { return len(chain) == 0 || chain[len(chain)-1].kind == kindMerge }

	appendVersions := func(vs []entry) {
		for i := range vs {
			if !need() {
				return
			}
			if vs[i].seq > snap {
				continue
			}
			chain = append(chain, entry{
				key:  key,
				val:  append([]byte(nil), vs[i].val...),
				seq:  vs[i].seq,
				kind: vs[i].kind,
			})
		}
	}

	appendVersions(mem.get(key, snap))
	for i := len(imms) - 1; i >= 0 && need(); i-- {
		appendVersions(imms[i].get(key, snap))
	}
	// L0 newest-first.
	for _, t := range vers.levels[0] {
		if !need() {
			return chain, nil
		}
		r, err := db.reader(t)
		if err != nil {
			return nil, err
		}
		vs, err := r.get(key, snap)
		if err != nil {
			return nil, err
		}
		appendVersions(vs)
	}
	for l := 1; l < numLevels && need(); l++ {
		tables := vers.levels[l]
		i := sort.Search(len(tables), func(i int) bool { return bytes.Compare(tables[i].largest, key) >= 0 })
		if i >= len(tables) || bytes.Compare(tables[i].smallest, key) > 0 {
			continue
		}
		r, err := db.reader(tables[i])
		if err != nil {
			return nil, err
		}
		vs, err := r.get(key, snap)
		if err != nil {
			return nil, err
		}
		appendVersions(vs)
	}
	return chain, nil
}

// resolveChain folds a newest-first version chain into the key's live
// value.
func (db *DB) resolveChain(key []byte, chain []entry) ([]byte, bool) {
	var operands [][]byte // collected newest-first
	for i := range chain {
		switch chain[i].kind {
		case kindMerge:
			operands = append(operands, chain[i].val)
		case kindPut:
			return db.applyMerge(key, chain[i].val, operands), true
		case kindDelete:
			if len(operands) == 0 {
				return nil, false
			}
			return db.applyMerge(key, nil, operands), true
		}
	}
	if len(operands) == 0 {
		return nil, false
	}
	return db.applyMerge(key, nil, operands), true
}

// applyMerge runs the merge operator with operands reordered oldest-first.
func (db *DB) applyMerge(key, existing []byte, newestFirst [][]byte) []byte {
	if len(newestFirst) == 0 {
		return existing
	}
	oldest := make([][]byte, len(newestFirst))
	for i := range newestFirst {
		oldest[len(newestFirst)-1-i] = newestFirst[i]
	}
	if db.opts.Merger == nil {
		// Without a merger the newest operand wins (last-write-wins).
		return oldest[len(oldest)-1]
	}
	return db.opts.Merger(key, existing, oldest)
}

// PutIfAbsent atomically stores key=value if the key has no live value,
// returning whether it stored. The daemons build create-exclusive
// semantics for paths on this.
func (db *DB) PutIfAbsent(key, value []byte) (bool, error) {
	l := &db.keyLocks[keyStripe(key)]
	l.Lock()
	defer l.Unlock()
	switch _, err := db.Get(key); {
	case err == nil:
		return false, nil
	case errors.Is(err, ErrNotFound):
		return true, db.Put(key, value)
	default:
		return false, err
	}
}

// Update atomically transforms the value of key under the key's stripe
// lock: fn receives the current value (nil if absent) and returns the new
// value, or delete=true to remove the key. fn must not call back into the
// DB.
func (db *DB) Update(key []byte, fn func(cur []byte, found bool) (next []byte, del bool, err error)) error {
	l := &db.keyLocks[keyStripe(key)]
	l.Lock()
	defer l.Unlock()
	cur, err := db.Get(key)
	found := err == nil
	if err != nil && !errors.Is(err, ErrNotFound) {
		return err
	}
	next, del, err := fn(cur, found)
	if err != nil {
		return err
	}
	if del {
		return db.Delete(key)
	}
	return db.Put(key, next)
}

func keyStripe(key []byte) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % 64)
}

// WithKeyLocks runs fn while holding the stripe locks covering every key,
// acquired in stripe order so concurrent multi-key holders cannot
// deadlock. PutIfAbsent and Update take the same locks, so fn reads and
// mutates the covered keys atomically with respect to them — the
// foundation for applying a read-validate-write batch (e.g. a vector of
// create-exclusive inserts) as one Apply. fn must not call back into
// PutIfAbsent, Update, or WithKeyLocks.
func (db *DB) WithKeyLocks(keys [][]byte, fn func() error) error {
	var stripes uint64 // one bit per stripe; len(keyLocks) == 64
	for _, k := range keys {
		stripes |= 1 << keyStripe(k)
	}
	for s := 0; s < len(db.keyLocks); s++ {
		if stripes&(1<<s) != 0 {
			db.keyLocks[s].Lock()
		}
	}
	defer func() {
		for s := len(db.keyLocks) - 1; s >= 0; s-- {
			if stripes&(1<<s) != 0 {
				db.keyLocks[s].Unlock()
			}
		}
	}()
	return fn()
}

// reader returns (opening if needed) the cached sstReader for a table.
func (db *DB) reader(t tableMeta) (*sstReader, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if r, ok := db.readers[t.num]; ok {
		return r, nil
	}
	f, err := db.fs.Open(sstName(t.num))
	if err != nil {
		return nil, err
	}
	r, err := openSSTReader(f, t)
	if err != nil {
		f.Close()
		return nil, err
	}
	db.readers[t.num] = r
	return r, nil
}

// NewIterator returns an ordered cursor over the store at the current
// sequence snapshot. Callers must Close it.
func (db *DB) NewIterator() (*Iterator, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	snap := db.seq
	srcs := []internalIterator{db.mem.iter()}
	for i := len(db.imm) - 1; i >= 0; i-- {
		srcs = append(srcs, db.imm[i].mt.iter())
	}
	vers := db.vers
	db.iterRefs++
	db.mu.Unlock()

	for l := 0; l < numLevels; l++ {
		for _, t := range vers.levels[l] {
			r, err := db.reader(t)
			if err != nil {
				db.releaseIterRefs()
				return nil, err
			}
			srcs = append(srcs, r.iter())
		}
	}
	return &Iterator{db: db, it: newMergeIter(srcs), snap: snap}, nil
}

// releaseIterRefs drops one iterator reference and deletes any files whose
// removal was deferred while iterators were open.
func (db *DB) releaseIterRefs() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.iterRefs--
	if db.iterRefs == 0 {
		db.deleteObsoleteLocked()
	}
}

func (db *DB) deleteObsoleteLocked() {
	for _, num := range db.obsoleteTables {
		if r, ok := db.readers[num]; ok {
			r.close()
			delete(db.readers, num)
		}
		// Best effort; a leaked file is harmless.
		_ = db.fs.Remove(sstName(num))
	}
	db.obsoleteTables = nil
}

// Flush forces the active memtable to disk and waits for the flush queue
// to drain. Mainly for tests and for DisableWAL users that want a
// consistent on-disk state.
func (db *DB) Flush() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	if db.mem.entries() > 0 {
		if err := db.rotateMemLocked(); err != nil {
			db.mu.Unlock()
			return err
		}
	}
	for len(db.imm) > 0 && db.bgErr == nil && !db.closed {
		db.cond.Wait()
	}
	err := db.bgErr
	db.mu.Unlock()
	return err
}

// CompactAll flushes and then compacts until every level respects its
// budget and L0 is empty. Tests use it to exercise full merges.
func (db *DB) CompactAll() error {
	if err := db.Flush(); err != nil {
		return err
	}
	for {
		db.mu.Lock()
		job, ok := db.pickCompactionLocked(true)
		db.mu.Unlock()
		if !ok {
			return nil
		}
		if err := db.runCompaction(job); err != nil {
			return err
		}
	}
}

// Stats returns a snapshot of engine counters.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	st := db.stats
	st.MemBytes = db.mem.sizeBytes()
	for l := 0; l < numLevels; l++ {
		st.TablesPerLevel[l] = len(db.vers.levels[l])
	}
	return st
}

// Close stops background work and releases files. Buffered but unflushed
// data stays recoverable through the WAL (unless DisableWAL).
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	db.cond.Broadcast()
	db.mu.Unlock()
	<-db.workDone

	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal != nil {
		db.wal.close()
		db.wal = nil
	}
	for _, r := range db.readers {
		r.close()
	}
	db.readers = nil
	return db.bgErr
}
