package kvstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/vfs"
)

// SSTable layout (single immutable file):
//
//	[data block]* [filter block] [index block] [footer]
//
// Data blocks hold entries in internal order, each encoded as
// [kind u8][seq uvarint][klen uvarint][key][vlen uvarint][val]; a block
// closes once it exceeds Options.BlockBytes. The index holds, per block,
// the last internal key plus the block's offset and length; the filter
// block is a Bloom filter over user keys. The fixed footer points at both.
const sstMagic = 0x67656b6b6f667331 // "gekkofs1"

const footerSize = 40

// tableMeta describes one SSTable in a version.
type tableMeta struct {
	num      uint64 // file number; file name is sst-<num>.sst
	size     int64
	entries  int
	smallest []byte // user key bounds (inclusive)
	largest  []byte
}

func sstName(num uint64) string { return fmt.Sprintf("sst-%06d.sst", num) }

// sstWriter streams sorted entries into a table file.
type sstWriter struct {
	f       vfs.File
	block   []byte
	offset  int64
	index   []indexEntry
	keys    [][]byte // user keys for the bloom filter
	meta    tableMeta
	lastKey []byte
	lastSeq uint64
	started bool
}

type indexEntry struct {
	lastKey []byte // internal: user key of last entry in block
	lastSeq uint64
	off     int64
	size    int64
}

func newSSTWriter(f vfs.File, num uint64) *sstWriter {
	return &sstWriter{f: f, meta: tableMeta{num: num}}
}

// add appends e; entries must arrive in strictly increasing internal order.
func (w *sstWriter) add(e *entry, blockBytes int) error {
	if w.started {
		probe := entry{key: w.lastKey, seq: w.lastSeq}
		if compareEntries(&probe, e) >= 0 {
			return fmt.Errorf("kvstore: sstable entries out of order: %q/%d after %q/%d",
				e.key, e.seq, w.lastKey, w.lastSeq)
		}
	} else {
		w.meta.smallest = append([]byte(nil), e.key...)
		w.started = true
	}
	var tmp [binary.MaxVarintLen64]byte
	w.block = append(w.block, byte(e.kind))
	w.block = append(w.block, tmp[:binary.PutUvarint(tmp[:], e.seq)]...)
	w.block = append(w.block, tmp[:binary.PutUvarint(tmp[:], uint64(len(e.key)))]...)
	w.block = append(w.block, e.key...)
	w.block = append(w.block, tmp[:binary.PutUvarint(tmp[:], uint64(len(e.val)))]...)
	w.block = append(w.block, e.val...)

	w.lastKey = append(w.lastKey[:0], e.key...)
	w.lastSeq = e.seq
	w.meta.largest = append(w.meta.largest[:0], e.key...)
	w.meta.entries++
	w.keys = append(w.keys, append([]byte(nil), e.key...))

	if len(w.block) >= blockBytes {
		return w.flushBlock()
	}
	return nil
}

func (w *sstWriter) flushBlock() error {
	if len(w.block) == 0 {
		return nil
	}
	// Trailing CRC32-C guards every data block against bit rot and torn
	// writes on the node-local device.
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(w.block, castagnoli))
	w.block = append(w.block, crc[:]...)
	off, err := w.f.Append(w.block)
	if err != nil {
		return err
	}
	w.index = append(w.index, indexEntry{
		lastKey: append([]byte(nil), w.lastKey...),
		lastSeq: w.lastSeq,
		off:     off,
		size:    int64(len(w.block)),
	})
	w.offset = off + int64(len(w.block))
	w.block = w.block[:0]
	return nil
}

// finish writes filter, index and footer and syncs the file. It returns
// the completed table metadata.
func (w *sstWriter) finish(bloomBitsPerKey int) (tableMeta, error) {
	if err := w.flushBlock(); err != nil {
		return tableMeta{}, err
	}
	filter := buildBloom(w.keys, bloomBitsPerKey)
	filterBytes := filter.encode()
	filterOff, err := w.f.Append(filterBytes)
	if err != nil {
		return tableMeta{}, err
	}

	var idx []byte
	var tmp [binary.MaxVarintLen64]byte
	for _, ie := range w.index {
		idx = append(idx, tmp[:binary.PutUvarint(tmp[:], uint64(len(ie.lastKey)))]...)
		idx = append(idx, ie.lastKey...)
		idx = append(idx, tmp[:binary.PutUvarint(tmp[:], ie.lastSeq)]...)
		idx = append(idx, tmp[:binary.PutUvarint(tmp[:], uint64(ie.off))]...)
		idx = append(idx, tmp[:binary.PutUvarint(tmp[:], uint64(ie.size))]...)
	}
	indexOff, err := w.f.Append(idx)
	if err != nil {
		return tableMeta{}, err
	}

	var footer [footerSize]byte
	binary.LittleEndian.PutUint64(footer[0:], uint64(indexOff))
	binary.LittleEndian.PutUint64(footer[8:], uint64(len(idx)))
	binary.LittleEndian.PutUint64(footer[16:], uint64(filterOff))
	binary.LittleEndian.PutUint64(footer[24:], uint64(len(filterBytes)))
	binary.LittleEndian.PutUint64(footer[32:], sstMagic)
	if _, err := w.f.Append(footer[:]); err != nil {
		return tableMeta{}, err
	}
	if err := w.f.Sync(); err != nil {
		return tableMeta{}, err
	}
	sz, err := w.f.Size()
	if err != nil {
		return tableMeta{}, err
	}
	w.meta.size = sz
	return w.meta, nil
}

// sstReader serves point lookups and scans from one table file. The index
// and filter stay resident; data blocks are read on demand.
type sstReader struct {
	f      vfs.File
	meta   tableMeta
	index  []indexEntry
	filter bloomFilter
}

func openSSTReader(f vfs.File, meta tableMeta) (*sstReader, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	if size < footerSize {
		return nil, fmt.Errorf("kvstore: sstable %d too small", meta.num)
	}
	var footer [footerSize]byte
	if _, err := f.ReadAt(footer[:], size-footerSize); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(footer[32:]) != sstMagic {
		return nil, fmt.Errorf("kvstore: sstable %d bad magic", meta.num)
	}
	indexOff := int64(binary.LittleEndian.Uint64(footer[0:]))
	indexLen := int64(binary.LittleEndian.Uint64(footer[8:]))
	filterOff := int64(binary.LittleEndian.Uint64(footer[16:]))
	filterLen := int64(binary.LittleEndian.Uint64(footer[24:]))

	idx := make([]byte, indexLen)
	if _, err := f.ReadAt(idx, indexOff); err != nil {
		return nil, err
	}
	fb := make([]byte, filterLen)
	if _, err := f.ReadAt(fb, filterOff); err != nil {
		return nil, err
	}
	r := &sstReader{f: f, meta: meta, filter: decodeBloom(fb)}
	for len(idx) > 0 {
		key, rest, err := readLenPrefixed(idx)
		if err != nil {
			return nil, err
		}
		seq, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("kvstore: sstable %d bad index", meta.num)
		}
		rest = rest[n:]
		off, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("kvstore: sstable %d bad index", meta.num)
		}
		rest = rest[n:]
		sz, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("kvstore: sstable %d bad index", meta.num)
		}
		idx = rest[n:]
		r.index = append(r.index, indexEntry{lastKey: key, lastSeq: seq, off: int64(off), size: int64(sz)})
	}
	return r, nil
}

func (r *sstReader) close() error { return r.f.Close() }

// readBlock loads, checksums and decodes data block i.
func (r *sstReader) readBlock(i int) ([]entry, error) {
	ie := r.index[i]
	buf := make([]byte, ie.size)
	if _, err := r.f.ReadAt(buf, ie.off); err != nil {
		return nil, err
	}
	if len(buf) < 4 {
		return nil, fmt.Errorf("kvstore: sstable %d block %d too small", r.meta.num, i)
	}
	want := binary.LittleEndian.Uint32(buf[len(buf)-4:])
	buf = buf[:len(buf)-4]
	if crc32.Checksum(buf, castagnoli) != want {
		return nil, fmt.Errorf("kvstore: sstable %d block %d checksum mismatch", r.meta.num, i)
	}
	var out []entry
	for len(buf) > 0 {
		k := kind(buf[0])
		buf = buf[1:]
		seq, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("kvstore: sstable %d corrupt block %d", r.meta.num, i)
		}
		buf = buf[n:]
		key, rest, err := readLenPrefixed(buf)
		if err != nil {
			return nil, err
		}
		val, rest, err := readLenPrefixed(rest)
		if err != nil {
			return nil, err
		}
		buf = rest
		out = append(out, entry{key: key, val: val, seq: seq, kind: k})
	}
	return out, nil
}

// blockFor returns the first block index that could contain probe, i.e.
// the first block whose last internal key is >= probe.
func (r *sstReader) blockFor(probe *entry) int {
	return sort.Search(len(r.index), func(i int) bool {
		last := entry{key: r.index[i].lastKey, seq: r.index[i].lastSeq}
		return compareEntries(&last, probe) >= 0
	})
}

// get collects the version chain for key starting at maxSeq, in
// newest-first order, stopping after the first non-merge entry, matching
// memTable.get semantics.
func (r *sstReader) get(key []byte, maxSeq uint64) ([]entry, error) {
	if !r.filter.mayContain(key) {
		return nil, nil
	}
	if bytes.Compare(key, r.meta.smallest) < 0 || bytes.Compare(key, r.meta.largest) > 0 {
		return nil, nil
	}
	probe := entry{key: key, seq: maxSeq}
	bi := r.blockFor(&probe)
	var versions []entry
	for ; bi < len(r.index); bi++ {
		ents, err := r.readBlock(bi)
		if err != nil {
			return nil, err
		}
		i := sort.Search(len(ents), func(i int) bool { return compareEntries(&ents[i], &probe) >= 0 })
		for ; i < len(ents); i++ {
			if !bytes.Equal(ents[i].key, key) {
				return versions, nil
			}
			versions = append(versions, ents[i])
			if ents[i].kind != kindMerge {
				return versions, nil
			}
		}
		// Version run continues into the next block.
	}
	return versions, nil
}

// iter returns an iterator over the whole table.
func (r *sstReader) iter() *sstIter { return &sstIter{r: r, bi: -1} }

// sstIter walks one SSTable in internal order. It satisfies
// internalIterator.
type sstIter struct {
	r    *sstReader
	bi   int
	ents []entry
	i    int
	err  error
}

func (it *sstIter) seekFirst() {
	it.bi = -1
	it.advanceBlock()
}

func (it *sstIter) advanceBlock() {
	it.bi++
	it.i = 0
	for it.bi < len(it.r.index) {
		ents, err := it.r.readBlock(it.bi)
		if err != nil {
			it.err = err
			it.ents = nil
			return
		}
		if len(ents) > 0 {
			it.ents = ents
			return
		}
		it.bi++
	}
	it.ents = nil
}

func (it *sstIter) seek(probe *entry) {
	it.bi = it.r.blockFor(probe)
	it.i = 0
	if it.bi >= len(it.r.index) {
		it.ents = nil
		return
	}
	ents, err := it.r.readBlock(it.bi)
	if err != nil {
		it.err = err
		it.ents = nil
		return
	}
	it.ents = ents
	it.i = sort.Search(len(ents), func(i int) bool { return compareEntries(&ents[i], probe) >= 0 })
	if it.i >= len(ents) {
		it.advanceBlock()
	}
}

func (it *sstIter) valid() bool { return it.ents != nil && it.i < len(it.ents) }

func (it *sstIter) next() {
	it.i++
	if it.i >= len(it.ents) {
		it.advanceBlock()
	}
}

func (it *sstIter) cur() *entry { return &it.ents[it.i] }
