package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/vfs"
)

// TestBlockChecksumDetectsCorruption flips a byte inside a data block of
// a flushed table and verifies reads fail loudly instead of returning
// garbage.
func TestBlockChecksumDetectsCorruption(t *testing.T) {
	mem := vfs.NewMem()
	db, err := Open(Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := db.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	// Find the table file and corrupt a byte early in the data region.
	names, err := mem.List("")
	if err != nil {
		t.Fatal(err)
	}
	var sst string
	for _, n := range names {
		if strings.HasSuffix(n, ".sst") {
			sst = n
			break
		}
	}
	if sst == "" {
		t.Fatal("no sstable produced")
	}
	f, err := mem.Open(sst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, 20); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db2, err := Open(Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	// Some key in the first block must now fail with a checksum error
	// (not silently return wrong data).
	var sawChecksumErr bool
	for i := 0; i < 200; i++ {
		v, err := db2.Get(key(i))
		if err != nil {
			if strings.Contains(err.Error(), "checksum") {
				sawChecksumErr = true
				break
			}
			if errors.Is(err, ErrNotFound) {
				continue
			}
			t.Fatalf("unexpected error kind: %v", err)
		}
		if !bytes.Equal(v, val(i)) {
			t.Fatalf("corruption returned wrong data for key %d without error", i)
		}
	}
	if !sawChecksumErr {
		t.Fatal("no checksum error surfaced after corrupting a data block")
	}
}

// TestManyReopenCycles puts the store through repeated write/close/open
// cycles, accumulating state across generations of WALs and manifests.
func TestManyReopenCycles(t *testing.T) {
	mem := vfs.NewMem()
	const cycles = 8
	const perCycle = 150
	for c := 0; c < cycles; c++ {
		db, err := Open(Options{FS: mem, MemTableBytes: 2048})
		if err != nil {
			t.Fatalf("cycle %d open: %v", c, err)
		}
		for i := 0; i < perCycle; i++ {
			k := []byte(fmt.Sprintf("cycle-%d-key-%d", c, i))
			if err := db.Put(k, val(i)); err != nil {
				t.Fatal(err)
			}
		}
		// Every earlier cycle's data must still be intact.
		for pc := 0; pc <= c; pc++ {
			for i := 0; i < perCycle; i += 37 {
				k := []byte(fmt.Sprintf("cycle-%d-key-%d", pc, i))
				v, err := db.Get(k)
				if err != nil || !bytes.Equal(v, val(i)) {
					t.Fatalf("cycle %d: lost %s: %q, %v", c, k, v, err)
				}
			}
		}
		if err := db.Close(); err != nil {
			t.Fatalf("cycle %d close: %v", c, err)
		}
	}
}

// TestCrashDuringHeavyWrites crashes mid-stream at several points and
// verifies the store always reopens cleanly with a prefix of the
// acknowledged synced state.
func TestCrashDuringHeavyWrites(t *testing.T) {
	for _, crashAt := range []int{10, 100, 500, 999} {
		mem := vfs.NewMem()
		db, err := Open(Options{FS: mem, SyncWAL: true, MemTableBytes: 4096})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i <= crashAt; i++ {
			if err := db.Put(key(i), val(i)); err != nil {
				t.Fatal(err)
			}
		}
		crashed := mem.CrashClone()
		db.Close()

		db2, err := Open(Options{FS: crashed, SyncWAL: true})
		if err != nil {
			t.Fatalf("crashAt=%d reopen: %v", crashAt, err)
		}
		for i := 0; i <= crashAt; i++ {
			v, err := db2.Get(key(i))
			if err != nil || !bytes.Equal(v, val(i)) {
				t.Fatalf("crashAt=%d: acknowledged key %d lost: %q, %v", crashAt, i, v, err)
			}
		}
		db2.Close()
	}
}

// TestIteratorSeekPropertyAgainstModel cross-checks Seek against a sorted
// model over a store that spans memtable, L0 and deeper levels.
func TestIteratorSeekPropertyAgainstModel(t *testing.T) {
	db := openTestDB(t, Options{MemTableBytes: 1024, TargetFileBytes: 2048})
	model := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("k%04d", (i*7919)%1000)
		if err := db.Put([]byte(k), []byte("v")); err != nil {
			t.Fatal(err)
		}
		model[k] = true
	}
	for i := 0; i < 1000; i += 3 {
		k := fmt.Sprintf("k%04d", i)
		if err := db.Delete([]byte(k)); err != nil {
			t.Fatal(err)
		}
		delete(model, k)
	}
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}

	it, err := db.NewIterator()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	for probe := 0; probe < 1000; probe += 13 {
		target := fmt.Sprintf("k%04d", probe)
		// Model answer: smallest live key >= target.
		want := ""
		for k := range model {
			if k >= target && (want == "" || k < want) {
				want = k
			}
		}
		it.Seek([]byte(target))
		if want == "" {
			if it.Valid() {
				t.Fatalf("Seek(%s): got %q, want exhausted", target, it.Key())
			}
			continue
		}
		if !it.Valid() || string(it.Key()) != want {
			t.Fatalf("Seek(%s): got %q (valid=%v), want %q", target, it.Key(), it.Valid(), want)
		}
	}
}
