package kvstore

import (
	"math/rand"
	"sync"
)

const (
	skiplistMaxHeight = 12
	skiplistBranch    = 4 // promotion probability 1/4
)

// memTable is a skiplist-backed sorted buffer of entries. Writers insert;
// nothing is ever removed (newer sequence numbers shadow older versions),
// which keeps iteration simple and lock scopes short.
type memTable struct {
	mu     sync.RWMutex
	head   *skipNode
	height int
	rnd    *rand.Rand
	bytes  int64
	count  int
}

type skipNode struct {
	ent  entry
	next [skiplistMaxHeight]*skipNode
}

func newMemTable(seed int64) *memTable {
	return &memTable{
		head:   &skipNode{},
		height: 1,
		rnd:    rand.New(rand.NewSource(seed)),
	}
}

// add inserts e. Entries with identical (key, seq) must not be inserted
// twice; the DB's monotonically increasing sequence numbers guarantee it.
func (m *memTable) add(e entry) {
	m.mu.Lock()
	defer m.mu.Unlock()

	var prev [skiplistMaxHeight]*skipNode
	x := m.head
	for lvl := m.height - 1; lvl >= 0; lvl-- {
		for x.next[lvl] != nil && compareEntries(&x.next[lvl].ent, &e) < 0 {
			x = x.next[lvl]
		}
		prev[lvl] = x
	}

	h := 1
	for h < skiplistMaxHeight && m.rnd.Intn(skiplistBranch) == 0 {
		h++
	}
	if h > m.height {
		for lvl := m.height; lvl < h; lvl++ {
			prev[lvl] = m.head
		}
		m.height = h
	}

	n := &skipNode{ent: e}
	for lvl := 0; lvl < h; lvl++ {
		n.next[lvl] = prev[lvl].next[lvl]
		prev[lvl].next[lvl] = n
	}
	m.bytes += entrySize(&e)
	m.count++
}

// seekGE returns the first node whose entry is >= probe in entry order.
func (m *memTable) seekGE(probe *entry) *skipNode {
	x := m.head
	for lvl := m.height - 1; lvl >= 0; lvl-- {
		for x.next[lvl] != nil && compareEntries(&x.next[lvl].ent, probe) < 0 {
			x = x.next[lvl]
		}
	}
	return x.next[0]
}

// get returns the newest version of key at or below maxSeq, walking the
// key's version run (sorted newest-first).
//
// The returned values alias memtable memory; callers must copy before
// retaining (db.Get copies).
func (m *memTable) get(key []byte, maxSeq uint64) (versions []entry) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	probe := entry{key: key, seq: maxSeq}
	for n := m.seekGE(&probe); n != nil && string(n.ent.key) == string(key); n = n.next[0] {
		versions = append(versions, n.ent)
		// Merge chains need all versions down to the first put/delete.
		if n.ent.kind != kindMerge {
			break
		}
	}
	return versions
}

// sizeBytes returns the approximate memory footprint.
func (m *memTable) sizeBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.bytes
}

// entries returns the number of entries.
func (m *memTable) entries() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.count
}

// iter returns an iterator positioned before the first entry. The iterator
// takes the read lock per step, so concurrent inserts are safe; entries
// inserted during iteration may or may not be observed (the DB filters by
// snapshot sequence anyway).
func (m *memTable) iter() *memIter { return &memIter{m: m} }

// memIter walks a memtable in entry order. It satisfies internalIterator.
type memIter struct {
	m *memTable
	n *skipNode
}

func (it *memIter) seekFirst() {
	it.m.mu.RLock()
	it.n = it.m.head.next[0]
	it.m.mu.RUnlock()
}

func (it *memIter) seek(probe *entry) {
	it.m.mu.RLock()
	it.n = it.m.seekGE(probe)
	it.m.mu.RUnlock()
}

func (it *memIter) valid() bool { return it.n != nil }

func (it *memIter) next() {
	it.m.mu.RLock()
	it.n = it.n.next[0]
	it.m.mu.RUnlock()
}

func (it *memIter) cur() *entry { return &it.n.ent }
