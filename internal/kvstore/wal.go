package kvstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/vfs"
)

// The write-ahead log makes every batch durable before it is acknowledged
// (when Options.SyncWAL is set; GekkoFS daemons run synchronously, so the
// acknowledgement a client receives implies the metadata operation has
// reached the log).
//
// Record framing: [crc32c u32][len u32][payload]. Payload encodes one
// batch: [seq u64][count u32] then per operation
// [kind u8][klen uvarint][key][vlen uvarint][val]. Replay stops at the
// first torn or corrupt record, which after a crash is exactly the
// unacknowledged tail.

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// walWriter appends batches to a log file.
type walWriter struct {
	f   vfs.File
	buf []byte
}

func newWALWriter(f vfs.File) *walWriter { return &walWriter{f: f} }

// append writes one batch record; sync forces durability before return.
func (w *walWriter) append(seq uint64, ops []entry, sync bool) error {
	payload := encodeBatch(seq, ops)
	w.buf = w.buf[:0]
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, payload...)
	if _, err := w.f.Append(w.buf); err != nil {
		return fmt.Errorf("kvstore: wal append: %w", err)
	}
	if sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("kvstore: wal sync: %w", err)
		}
	}
	return nil
}

func (w *walWriter) close() error { return w.f.Close() }

// encodeBatch serializes a batch payload.
func encodeBatch(seq uint64, ops []entry) []byte {
	n := 12
	for i := range ops {
		n += 1 + 2*binary.MaxVarintLen32 + len(ops[i].key) + len(ops[i].val)
	}
	out := make([]byte, 12, n)
	binary.LittleEndian.PutUint64(out[0:], seq)
	binary.LittleEndian.PutUint32(out[8:], uint32(len(ops)))
	var tmp [binary.MaxVarintLen32]byte
	for i := range ops {
		out = append(out, byte(ops[i].kind))
		out = append(out, tmp[:binary.PutUvarint(tmp[:], uint64(len(ops[i].key)))]...)
		out = append(out, ops[i].key...)
		out = append(out, tmp[:binary.PutUvarint(tmp[:], uint64(len(ops[i].val)))]...)
		out = append(out, ops[i].val...)
	}
	return out
}

// decodeBatch parses a batch payload. The returned entries carry
// sequence numbers seq, seq+1, ... in operation order.
func decodeBatch(payload []byte) (ops []entry, err error) {
	if len(payload) < 12 {
		return nil, fmt.Errorf("kvstore: batch too short: %d", len(payload))
	}
	seq := binary.LittleEndian.Uint64(payload[0:])
	count := binary.LittleEndian.Uint32(payload[8:])
	p := payload[12:]
	ops = make([]entry, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(p) < 1 {
			return nil, fmt.Errorf("kvstore: truncated batch op %d", i)
		}
		k := kind(p[0])
		if k > kindMerge {
			return nil, fmt.Errorf("kvstore: bad op kind %d", k)
		}
		p = p[1:]
		key, rest, err := readLenPrefixed(p)
		if err != nil {
			return nil, err
		}
		val, rest, err := readLenPrefixed(rest)
		if err != nil {
			return nil, err
		}
		p = rest
		ops = append(ops, entry{key: key, val: val, seq: seq + uint64(i), kind: k})
	}
	return ops, nil
}

func readLenPrefixed(p []byte) (data, rest []byte, err error) {
	l, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < l {
		return nil, nil, fmt.Errorf("kvstore: truncated length-prefixed field")
	}
	return p[n : n+int(l)], p[n+int(l):], nil
}

// replayWAL reads every intact batch from a log file, invoking fn per
// entry, and returns the highest sequence number seen. A corrupt or torn
// tail terminates replay without error (it is the crash-lost suffix).
func replayWAL(f vfs.File, fn func(entry)) (maxSeq uint64, err error) {
	size, err := f.Size()
	if err != nil {
		return 0, err
	}
	var off int64
	hdr := make([]byte, 8)
	for off+8 <= size {
		if _, err := f.ReadAt(hdr, off); err != nil {
			return maxSeq, nil // torn header
		}
		want := binary.LittleEndian.Uint32(hdr[0:])
		l := int64(binary.LittleEndian.Uint32(hdr[4:]))
		if off+8+l > size {
			return maxSeq, nil // torn payload
		}
		payload := make([]byte, l)
		if _, err := f.ReadAt(payload, off+8); err != nil {
			return maxSeq, nil
		}
		if crc32.Checksum(payload, castagnoli) != want {
			return maxSeq, nil // corrupt tail
		}
		ops, err := decodeBatch(payload)
		if err != nil {
			return maxSeq, nil
		}
		for i := range ops {
			if ops[i].seq > maxSeq {
				maxSeq = ops[i].seq
			}
			fn(ops[i])
		}
		off += 8 + l
	}
	return maxSeq, nil
}
