// Package kvstore is a log-structured merge-tree key-value store: the
// from-scratch stand-in for the RocksDB instance each GekkoFS daemon runs
// (paper §III-B). It provides the pieces GekkoFS metadata handling needs:
//
//   - point puts/gets/deletes with a write-ahead log and crash recovery,
//   - a merge operator (GekkoFS updates file sizes with RocksDB merge
//     operands; internal/daemon does the same here),
//   - ordered iteration for the daemons' readdir scans,
//   - memtable flush into SSTables with bloom filters and leveled
//     compaction, tuned like an LSM for low-latency NAND storage.
//
// The store is safe for concurrent use by multiple goroutines.
package kvstore

import "bytes"

// kind tags the operation a log entry represents.
type kind uint8

const (
	kindPut kind = iota
	kindDelete
	kindMerge
)

// entry is one versioned record flowing through memtables, WAL and
// SSTables.
type entry struct {
	key  []byte
	val  []byte
	seq  uint64
	kind kind
}

// compareEntries orders entries by user key ascending, then by sequence
// number descending, so the newest version of a key sorts first within the
// key's run. This is the total order used by the memtable and SSTables.
func compareEntries(a, b *entry) int {
	if c := bytes.Compare(a.key, b.key); c != 0 {
		return c
	}
	switch {
	case a.seq > b.seq:
		return -1
	case a.seq < b.seq:
		return 1
	default:
		return 0
	}
}

// entrySize approximates the in-memory footprint of an entry, used for the
// memtable flush threshold.
func entrySize(e *entry) int64 {
	return int64(len(e.key)+len(e.val)) + 32
}
