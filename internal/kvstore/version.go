package kvstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/vfs"
)

// numLevels is the depth of the leveled LSM. L0 holds freshly flushed,
// possibly overlapping tables newest-first; L1+ hold disjoint key ranges
// sorted by smallest key.
const numLevels = 7

// version is an immutable snapshot of the table layout. The DB swaps in a
// new version after every flush or compaction.
type version struct {
	levels [numLevels][]tableMeta
}

func (v *version) clone() *version {
	nv := &version{}
	for i := range v.levels {
		nv.levels[i] = append([]tableMeta(nil), v.levels[i]...)
	}
	return nv
}

// tablesTotal counts tables across all levels.
func (v *version) tablesTotal() int {
	n := 0
	for i := range v.levels {
		n += len(v.levels[i])
	}
	return n
}

// levelBytes sums table sizes within a level.
func (v *version) levelBytes(l int) int64 {
	var n int64
	for _, t := range v.levels[l] {
		n += t.size
	}
	return n
}

// overlaps returns the tables of level l intersecting [smallest, largest].
func (v *version) overlaps(l int, smallest, largest []byte) []tableMeta {
	var out []tableMeta
	for _, t := range v.levels[l] {
		if bytes.Compare(t.largest, smallest) < 0 || bytes.Compare(t.smallest, largest) > 0 {
			continue
		}
		out = append(out, t)
	}
	return out
}

// sortLevel orders a non-L0 level by smallest key.
func sortLevel(tables []tableMeta) {
	sort.Slice(tables, func(i, j int) bool {
		return bytes.Compare(tables[i].smallest, tables[j].smallest) < 0
	})
}

// Manifest format: a single record
// [magic u64][lastSeq u64][nextFile u64][walNum u64]
// then per level: [count u32] then per table:
// [num u64][size u64][entries u64][slen uvarint][smallest][llen uvarint][largest]
// and a trailing crc32c over everything before it.
const manifestMagic = 0x67656b6b6f6d6631

const (
	manifestName = "MANIFEST"
	manifestTmp  = "MANIFEST.tmp"
)

type manifestState struct {
	lastSeq  uint64
	nextFile uint64
	walNum   uint64
	vers     *version
}

func encodeManifest(st manifestState) []byte {
	var out []byte
	var tmp [binary.MaxVarintLen64]byte
	var hdr [32]byte
	binary.LittleEndian.PutUint64(hdr[0:], manifestMagic)
	binary.LittleEndian.PutUint64(hdr[8:], st.lastSeq)
	binary.LittleEndian.PutUint64(hdr[16:], st.nextFile)
	binary.LittleEndian.PutUint64(hdr[24:], st.walNum)
	out = append(out, hdr[:]...)
	for l := 0; l < numLevels; l++ {
		var cnt [4]byte
		binary.LittleEndian.PutUint32(cnt[:], uint32(len(st.vers.levels[l])))
		out = append(out, cnt[:]...)
		for _, t := range st.vers.levels[l] {
			var fixed [24]byte
			binary.LittleEndian.PutUint64(fixed[0:], t.num)
			binary.LittleEndian.PutUint64(fixed[8:], uint64(t.size))
			binary.LittleEndian.PutUint64(fixed[16:], uint64(t.entries))
			out = append(out, fixed[:]...)
			out = append(out, tmp[:binary.PutUvarint(tmp[:], uint64(len(t.smallest)))]...)
			out = append(out, t.smallest...)
			out = append(out, tmp[:binary.PutUvarint(tmp[:], uint64(len(t.largest)))]...)
			out = append(out, t.largest...)
		}
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(out, castagnoli))
	return append(out, crc[:]...)
}

func decodeManifest(b []byte) (manifestState, error) {
	if len(b) < 36 {
		return manifestState{}, fmt.Errorf("kvstore: manifest too short")
	}
	body, crc := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.Checksum(body, castagnoli) != crc {
		return manifestState{}, fmt.Errorf("kvstore: manifest checksum mismatch")
	}
	if binary.LittleEndian.Uint64(body[0:]) != manifestMagic {
		return manifestState{}, fmt.Errorf("kvstore: manifest bad magic")
	}
	st := manifestState{
		lastSeq:  binary.LittleEndian.Uint64(body[8:]),
		nextFile: binary.LittleEndian.Uint64(body[16:]),
		walNum:   binary.LittleEndian.Uint64(body[24:]),
		vers:     &version{},
	}
	p := body[32:]
	for l := 0; l < numLevels; l++ {
		if len(p) < 4 {
			return manifestState{}, fmt.Errorf("kvstore: manifest truncated at level %d", l)
		}
		count := binary.LittleEndian.Uint32(p)
		p = p[4:]
		for i := uint32(0); i < count; i++ {
			if len(p) < 24 {
				return manifestState{}, fmt.Errorf("kvstore: manifest truncated table")
			}
			t := tableMeta{
				num:     binary.LittleEndian.Uint64(p[0:]),
				size:    int64(binary.LittleEndian.Uint64(p[8:])),
				entries: int(binary.LittleEndian.Uint64(p[16:])),
			}
			p = p[24:]
			var err error
			t.smallest, p, err = readLenPrefixed(p)
			if err != nil {
				return manifestState{}, err
			}
			t.largest, p, err = readLenPrefixed(p)
			if err != nil {
				return manifestState{}, err
			}
			// Copy out of the shared buffer.
			t.smallest = append([]byte(nil), t.smallest...)
			t.largest = append([]byte(nil), t.largest...)
			st.vers.levels[l] = append(st.vers.levels[l], t)
		}
	}
	return st, nil
}

// writeManifest atomically replaces the manifest via tmp-file rename.
func writeManifest(fs vfs.FS, st manifestState) error {
	f, err := fs.Create(manifestTmp)
	if err != nil {
		return err
	}
	if _, err := f.Append(encodeManifest(st)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fs.Rename(manifestTmp, manifestName)
}

// readManifest loads the manifest; ok=false means no manifest exists yet.
func readManifest(fs vfs.FS) (manifestState, bool, error) {
	if !fs.Exists(manifestName) {
		return manifestState{}, false, nil
	}
	f, err := fs.Open(manifestName)
	if err != nil {
		return manifestState{}, false, err
	}
	defer f.Close()
	sz, err := f.Size()
	if err != nil {
		return manifestState{}, false, err
	}
	buf := make([]byte, sz)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return manifestState{}, false, err
	}
	st, err := decodeManifest(buf)
	if err != nil {
		return manifestState{}, false, err
	}
	return st, true, nil
}
