package kvstore

import (
	"bytes"
	"fmt"
)

// backgroundWork is the single maintenance goroutine: it drains the
// memtable flush queue and runs compactions until the store closes,
// mirroring RocksDB's background job pool (collapsed to one worker, which
// keeps the engine deterministic under test).
func (db *DB) backgroundWork() {
	defer close(db.workDone)
	for {
		db.mu.Lock()
		for !db.closed && db.bgErr == nil && len(db.imm) == 0 && !db.needsCompactionLocked() {
			db.cond.Wait()
		}
		if db.closed || db.bgErr != nil {
			db.mu.Unlock()
			return
		}
		if len(db.imm) > 0 {
			im := db.imm[0]
			db.mu.Unlock()
			err := db.flushImm(im)
			db.mu.Lock()
			if err != nil {
				db.bgErr = err
			}
			db.cond.Broadcast()
			db.mu.Unlock()
			continue
		}
		job, ok := db.pickCompactionLocked(false)
		db.mu.Unlock()
		if !ok {
			continue
		}
		if err := db.runCompaction(job); err != nil {
			db.mu.Lock()
			db.bgErr = err
			db.cond.Broadcast()
			db.mu.Unlock()
			return
		}
	}
}

// needsCompactionLocked reports whether any level exceeds its trigger.
func (db *DB) needsCompactionLocked() bool {
	_, ok := db.pickCompactionLocked(false)
	return ok
}

// compactionJob names the input tables of one merge step.
type compactionJob struct {
	level      int // input level
	outLevel   int
	inputs     []tableMeta // from level
	nextInputs []tableMeta // overlapping tables in outLevel
}

// pickCompactionLocked chooses the next compaction. force relaxes the
// triggers so CompactAll can push everything down. Caller holds db.mu.
func (db *DB) pickCompactionLocked(force bool) (compactionJob, bool) {
	v := db.vers
	// L0 → L1 when the file count trigger fires.
	l0 := len(v.levels[0])
	if l0 >= db.opts.L0CompactTrigger || (force && l0 > 0) {
		inputs := append([]tableMeta(nil), v.levels[0]...)
		smallest, largest := keyRange(inputs)
		return compactionJob{
			level:      0,
			outLevel:   1,
			inputs:     inputs,
			nextInputs: v.overlaps(1, smallest, largest),
		}, true
	}
	// Size-triggered merges for L1..Ln-1.
	budget := db.opts.LevelBytesBase
	for l := 1; l < numLevels-1; l++ {
		if v.levelBytes(l) > budget && len(v.levels[l]) > 0 {
			t := v.levels[l][0]
			return compactionJob{
				level:      l,
				outLevel:   l + 1,
				inputs:     []tableMeta{t},
				nextInputs: v.overlaps(l+1, t.smallest, t.largest),
			}, true
		}
		budget *= db.opts.LevelMultiplier
	}
	return compactionJob{}, false
}

// keyRange returns the [min smallest, max largest] bounds of tables.
func keyRange(tables []tableMeta) (smallest, largest []byte) {
	for i, t := range tables {
		if i == 0 {
			smallest, largest = t.smallest, t.largest
			continue
		}
		if bytes.Compare(t.smallest, smallest) < 0 {
			smallest = t.smallest
		}
		if bytes.Compare(t.largest, largest) > 0 {
			largest = t.largest
		}
	}
	return smallest, largest
}

// allocFileNumLocked hands out the next table file number.
func (db *DB) allocFileNum() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	n := db.nextFile
	db.nextFile++
	return n
}

// buildTable streams an iterator into one table file.
func (db *DB) buildTable(num uint64, it internalIterator) (tableMeta, error) {
	f, err := db.fs.Create(sstName(num))
	if err != nil {
		return tableMeta{}, err
	}
	w := newSSTWriter(f, num)
	for it.seekFirst(); it.valid(); it.next() {
		if err := w.add(it.cur(), db.opts.BlockBytes); err != nil {
			f.Close()
			return tableMeta{}, err
		}
	}
	t, err := w.finish(db.opts.BloomBitsPerKey)
	if err != nil {
		f.Close()
		return tableMeta{}, err
	}
	if err := f.Close(); err != nil {
		return tableMeta{}, err
	}
	return t, nil
}

// flushImm writes the oldest immutable memtable to a fresh L0 table,
// installs it, and retires the memtable's WAL.
func (db *DB) flushImm(im immTable) error {
	if im.mt.entries() == 0 {
		db.mu.Lock()
		db.imm = db.imm[1:]
		db.mu.Unlock()
		if !db.opts.DisableWAL {
			_ = db.fs.Remove(walName(im.walNum))
		}
		return nil
	}
	num := db.allocFileNum()
	t, err := db.buildTable(num, im.mt.iter())
	if err != nil {
		return err
	}
	db.mu.Lock()
	nv := db.vers.clone()
	nv.levels[0] = append([]tableMeta{t}, nv.levels[0]...)
	db.vers = nv
	db.imm = db.imm[1:]
	db.stats.Flushes++
	err = db.persistManifestLocked()
	db.mu.Unlock()
	if err != nil {
		return err
	}
	if !db.opts.DisableWAL {
		_ = db.fs.Remove(walName(im.walNum))
	}
	return nil
}

// persistManifestLocked snapshots the current version to the manifest.
// Caller holds db.mu (or is single-threaded during Open).
func (db *DB) persistManifestLocked() error {
	return writeManifest(db.fs, manifestState{
		lastSeq:  db.seq,
		nextFile: db.nextFile,
		walNum:   db.walNum,
		vers:     db.vers,
	})
}

// compactionOutput rolls entries into output tables of roughly
// TargetFileBytes each.
type compactionOutput struct {
	db  *DB
	w   *sstWriter
	num uint64
	out []tableMeta
}

func (o *compactionOutput) add(e *entry) error {
	if o.w == nil {
		o.num = o.db.allocFileNum()
		f, err := o.db.fs.Create(sstName(o.num))
		if err != nil {
			return err
		}
		o.w = newSSTWriter(f, o.num)
	}
	if err := o.w.add(e, o.db.opts.BlockBytes); err != nil {
		return err
	}
	if o.w.offset+int64(len(o.w.block)) >= o.db.opts.TargetFileBytes {
		return o.roll()
	}
	return nil
}

func (o *compactionOutput) roll() error {
	if o.w == nil {
		return nil
	}
	t, err := o.w.finish(o.db.opts.BloomBitsPerKey)
	if err != nil {
		return err
	}
	if err := o.w.f.Close(); err != nil {
		return err
	}
	o.out = append(o.out, t)
	o.w = nil
	return nil
}

// runCompaction merges job.inputs with job.nextInputs into job.outLevel,
// dropping shadowed versions, collapsing merge chains when a base value is
// available, and dropping tombstones at the bottom of the tree.
func (db *DB) runCompaction(job compactionJob) error {
	all := append(append([]tableMeta(nil), job.inputs...), job.nextInputs...)
	smallest, largest := keyRange(all)

	db.mu.Lock()
	isBottom := true
	for l := job.outLevel + 1; l < numLevels; l++ {
		if len(db.vers.overlaps(l, smallest, largest)) > 0 {
			isBottom = false
			break
		}
	}
	db.mu.Unlock()

	srcs := make([]internalIterator, 0, len(all))
	for _, t := range all {
		r, err := db.reader(t)
		if err != nil {
			return err
		}
		srcs = append(srcs, r.iter())
	}
	it := newMergeIter(srcs)
	out := &compactionOutput{db: db}

	it.seekFirst()
	var versions []entry
	for it.valid() {
		// Gather the full version run of the current user key.
		versions = versions[:0]
		key := append([]byte(nil), it.cur().key...)
		for it.valid() && bytes.Equal(it.cur().key, key) {
			c := it.cur()
			versions = append(versions, entry{
				key:  key,
				val:  append([]byte(nil), c.val...),
				seq:  c.seq,
				kind: c.kind,
			})
			it.next()
		}
		if err := emitCompacted(db, out, key, versions, isBottom); err != nil {
			return err
		}
	}
	if err := out.roll(); err != nil {
		return err
	}

	// Install the result.
	db.mu.Lock()
	nv := db.vers.clone()
	nv.levels[job.level] = removeTables(nv.levels[job.level], job.inputs)
	nv.levels[job.outLevel] = removeTables(nv.levels[job.outLevel], job.nextInputs)
	nv.levels[job.outLevel] = append(nv.levels[job.outLevel], out.out...)
	sortLevel(nv.levels[job.outLevel])
	db.vers = nv
	db.stats.Compactions++
	for _, t := range all {
		db.obsoleteTables = append(db.obsoleteTables, t.num)
	}
	err := db.persistManifestLocked()
	if err == nil && db.iterRefs == 0 {
		db.deleteObsoleteLocked()
	}
	db.cond.Broadcast()
	db.mu.Unlock()
	return err
}

// emitCompacted writes the surviving representation of one key's
// newest-first version run.
func emitCompacted(db *DB, out *compactionOutput, key []byte, versions []entry, isBottom bool) error {
	if len(versions) == 0 {
		return nil
	}
	newest := versions[0]
	switch newest.kind {
	case kindPut:
		return out.add(&newest)
	case kindDelete:
		if isBottom {
			return nil // tombstone and everything below it vanish
		}
		return out.add(&newest)
	}
	// Merge chain: collect operands down to the first base.
	var operands [][]byte // newest-first
	for i := range versions {
		v := &versions[i]
		switch v.kind {
		case kindMerge:
			operands = append(operands, v.val)
			continue
		case kindPut:
			merged := db.applyMerge(key, v.val, operands)
			return out.add(&entry{key: key, val: merged, seq: newest.seq, kind: kindPut})
		case kindDelete:
			merged := db.applyMerge(key, nil, operands)
			return out.add(&entry{key: key, val: merged, seq: newest.seq, kind: kindPut})
		}
	}
	if isBottom {
		// No base anywhere below: merge against absence.
		merged := db.applyMerge(key, nil, operands)
		return out.add(&entry{key: key, val: merged, seq: newest.seq, kind: kindPut})
	}
	// A base may exist in deeper levels; the operands must survive as-is.
	for i := range versions {
		if err := out.add(&versions[i]); err != nil {
			return err
		}
	}
	return nil
}

// removeTables filters drop out of tables by file number.
func removeTables(tables, drop []tableMeta) []tableMeta {
	if len(drop) == 0 {
		return tables
	}
	dropSet := make(map[uint64]bool, len(drop))
	for _, t := range drop {
		dropSet[t.num] = true
	}
	out := tables[:0:0]
	for _, t := range tables {
		if !dropSet[t.num] {
			out = append(out, t)
		}
	}
	return out
}

// String renders a job for debug logs.
func (j compactionJob) String() string {
	return fmt.Sprintf("L%d(%d tables) + L%d(%d tables) -> L%d",
		j.level, len(j.inputs), j.outLevel, len(j.nextInputs), j.outLevel)
}
