package simcluster

import (
	"testing"
	"time"
)

// The simulation tests assert the paper's *shape*: near-linear scaling,
// plateau positions within generous bands, ordering between
// configurations. Exact values are pinned separately by determinism
// tests.

func mdRun(t *testing.T, nodes int, op MDOp) Result {
	t.Helper()
	return RunMetadata(DefaultParams(), nodes, op, 3*time.Millisecond, 9*time.Millisecond, 7)
}

func TestMetadataNearLinearScaling(t *testing.T) {
	r1 := mdRun(t, 1, MDOpCreate)
	r16 := mdRun(t, 16, MDOpCreate)
	r64 := mdRun(t, 64, MDOpCreate)
	if r16.OpsPerSec < 12*r1.OpsPerSec {
		t.Fatalf("16-node creates %.0f < 12x 1-node %.0f", r16.OpsPerSec, r1.OpsPerSec)
	}
	if r64.OpsPerSec < 3.2*r16.OpsPerSec {
		t.Fatalf("64-node creates %.0f < 3.2x 16-node %.0f", r64.OpsPerSec, r16.OpsPerSec)
	}
}

func TestMetadataPlateausMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("512-node simulation")
	}
	// Paper, 512 nodes: ~46 M creates/s, ~44 M stats/s, ~22 M removes/s.
	// Accept ±25 %.
	checks := []struct {
		op   MDOp
		want float64
	}{
		{MDOpCreate, 46e6},
		{MDOpStat, 44e6},
		{MDOpRemove, 22e6},
	}
	for _, c := range checks {
		got := mdRun(t, 512, c.op).OpsPerSec
		if got < c.want*0.75 || got > c.want*1.25 {
			t.Errorf("%v @512 = %.1fM ops/s, want %.0fM ±25%%", c.op, got/1e6, c.want/1e6)
		}
	}
}

func TestCreateFasterThanRemove(t *testing.T) {
	// Removes cost ~2x creates on the daemon (delete + existence check),
	// visible in the paper's 46M vs 22M plateaus.
	create := mdRun(t, 32, MDOpCreate)
	remove := mdRun(t, 32, MDOpRemove)
	ratio := create.OpsPerSec / remove.OpsPerSec
	if ratio < 1.6 || ratio > 2.6 {
		t.Fatalf("create/remove ratio = %.2f, want ≈ 2", ratio)
	}
}

func TestMetadataDeterminism(t *testing.T) {
	a := RunMetadata(DefaultParams(), 8, MDOpCreate, time.Millisecond, 5*time.Millisecond, 42)
	b := RunMetadata(DefaultParams(), 8, MDOpCreate, time.Millisecond, 5*time.Millisecond, 42)
	if a.OpsPerSec != b.OpsPerSec || a.MeanLatency != b.MeanLatency {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	c := RunMetadata(DefaultParams(), 8, MDOpCreate, time.Millisecond, 5*time.Millisecond, 43)
	if a.OpsPerSec == c.OpsPerSec {
		t.Fatal("different seeds produced identical series (suspicious)")
	}
}

func ioRun(t *testing.T, cfg IOConfig) Result {
	t.Helper()
	if cfg.Warmup == 0 {
		cfg.Warmup = 25 * time.Millisecond
		cfg.Window = 50 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 11
	}
	return RunIO(DefaultParams(), cfg)
}

func TestIOScalesWithNodes(t *testing.T) {
	small := ioRun(t, IOConfig{Nodes: 4, Write: true, TransferSize: 1 << 20})
	big := ioRun(t, IOConfig{Nodes: 32, Write: true, TransferSize: 1 << 20})
	if big.MiBPerSec < 6.5*small.MiBPerSec {
		t.Fatalf("32-node write %.0f < 6.5x 4-node %.0f MiB/s", big.MiBPerSec, small.MiBPerSec)
	}
}

func TestWriteEfficiencyNearPaper(t *testing.T) {
	// Paper: ~80 % of aggregated SSD write peak at 64 MiB transfers.
	p := DefaultParams()
	r := ioRun(t, IOConfig{Nodes: 16, Write: true, TransferSize: 64 << 20})
	eff := r.MiBPerSec / AggregateSSDPeak(p, 16, true)
	if eff < 0.70 || eff > 0.92 {
		t.Fatalf("write efficiency = %.2f, want ≈ 0.80", eff)
	}
}

func TestReadEfficiencyNearPaper(t *testing.T) {
	// Paper: ~70 % of aggregated SSD read peak at 64 MiB transfers.
	p := DefaultParams()
	r := ioRun(t, IOConfig{Nodes: 16, Write: false, TransferSize: 64 << 20})
	eff := r.MiBPerSec / AggregateSSDPeak(p, 16, false)
	if eff < 0.60 || eff > 0.82 {
		t.Fatalf("read efficiency = %.2f, want ≈ 0.70", eff)
	}
}

func TestLargerTransfersFaster(t *testing.T) {
	// Fig. 3: throughput ordering 8K < 64K < 1M at every node count.
	var prev float64
	for _, ts := range []int64{8 << 10, 64 << 10, 1 << 20} {
		r := ioRun(t, IOConfig{Nodes: 8, Write: true, TransferSize: ts})
		if r.MiBPerSec <= prev {
			t.Fatalf("transfer size %d not faster than smaller size (%.0f <= %.0f)",
				ts, r.MiBPerSec, prev)
		}
		prev = r.MiBPerSec
	}
}

func TestSmallTransferLatencyBound(t *testing.T) {
	// Paper: average latency ≤ 700 µs at 8 KiB transfers (512 nodes); the
	// bound holds at smaller scale too since the closed-loop population
	// per daemon is constant.
	r := ioRun(t, IOConfig{Nodes: 32, Write: true, TransferSize: 8 << 10})
	if r.MeanLatency > 700*time.Microsecond {
		t.Fatalf("8KiB write latency = %v > 700µs", r.MeanLatency)
	}
	if r.MeanLatency < 50*time.Microsecond {
		t.Fatalf("8KiB write latency = %v implausibly low", r.MeanLatency)
	}
}

func TestRandomVersusSequential(t *testing.T) {
	// Paper §IV-B: at 8 KiB and 512 nodes random write loses ~33 %,
	// random read ~60 %; at or above the chunk size there is no
	// difference. Bands: write −20..45 %, read −45..70 %.
	seqW := ioRun(t, IOConfig{Nodes: 16, Write: true, TransferSize: 8 << 10})
	rndW := ioRun(t, IOConfig{Nodes: 16, Write: true, TransferSize: 8 << 10, Random: true})
	dropW := 1 - rndW.MiBPerSec/seqW.MiBPerSec
	if dropW < 0.20 || dropW > 0.45 {
		t.Errorf("random write drop = %.0f%%, want ≈ 33%%", dropW*100)
	}
	seqR := ioRun(t, IOConfig{Nodes: 16, Write: false, TransferSize: 8 << 10})
	rndR := ioRun(t, IOConfig{Nodes: 16, Write: false, TransferSize: 8 << 10, Random: true})
	dropR := 1 - rndR.MiBPerSec/seqR.MiBPerSec
	if dropR < 0.45 || dropR > 0.70 {
		t.Errorf("random read drop = %.0f%%, want ≈ 60%%", dropR*100)
	}
	// Chunk-sized transfers: random ≈ sequential.
	seqC := ioRun(t, IOConfig{Nodes: 16, Write: true, TransferSize: 512 << 10})
	rndC := ioRun(t, IOConfig{Nodes: 16, Write: true, TransferSize: 512 << 10, Random: true})
	if d := 1 - rndC.MiBPerSec/seqC.MiBPerSec; d > 0.08 || d < -0.08 {
		t.Errorf("chunk-sized random penalty = %.0f%%, want ≈ 0", d*100)
	}
}

func TestSharedFileCeilingAndCacheFix(t *testing.T) {
	// Paper §IV-B: without caching, shared-file writes cap at ~150 K
	// ops/s because every write updates the size on one daemon; the
	// client size cache restores file-per-process performance.
	noCache := ioRun(t, IOConfig{Nodes: 64, Write: true, TransferSize: 64 << 10, Shared: true})
	if noCache.OpsPerSec < 100e3 || noCache.OpsPerSec > 220e3 {
		t.Errorf("shared-file ceiling = %.0fK ops/s, want ≈ 150K", noCache.OpsPerSec/1e3)
	}
	cached := ioRun(t, IOConfig{Nodes: 64, Write: true, TransferSize: 64 << 10, Shared: true, SizeCacheOps: 32})
	fpp := ioRun(t, IOConfig{Nodes: 64, Write: true, TransferSize: 64 << 10})
	if cached.MiBPerSec < 0.9*fpp.MiBPerSec {
		t.Errorf("cached shared-file %.0f MiB/s below 90%% of file-per-process %.0f",
			cached.MiBPerSec, fpp.MiBPerSec)
	}
	if noCache.MiBPerSec > 0.6*fpp.MiBPerSec {
		t.Errorf("uncached shared file too fast: %.0f vs fpp %.0f MiB/s",
			noCache.MiBPerSec, fpp.MiBPerSec)
	}
}

func TestIODeterminism(t *testing.T) {
	cfg := IOConfig{Nodes: 8, Write: true, TransferSize: 64 << 10,
		Warmup: 5 * time.Millisecond, Window: 10 * time.Millisecond, Seed: 5}
	a := RunIO(DefaultParams(), cfg)
	b := RunIO(DefaultParams(), cfg)
	if a != b {
		t.Fatalf("same config diverged: %+v vs %+v", a, b)
	}
}

func TestAggregateSSDPeak(t *testing.T) {
	p := DefaultParams()
	w1 := AggregateSSDPeak(p, 1, true)
	w8 := AggregateSSDPeak(p, 8, true)
	if w8 != 8*w1 {
		t.Fatalf("peak not linear: %f vs %f", w8, 8*w1)
	}
	if AggregateSSDPeak(p, 1, false) <= w1 {
		t.Fatal("read peak should exceed write peak for this device")
	}
}

func TestMDOpString(t *testing.T) {
	if MDOpCreate.String() != "create" || MDOpStat.String() != "stat" || MDOpRemove.String() != "remove" {
		t.Fatal("bad op names")
	}
	if MDOp(9).String() == "" {
		t.Fatal("unknown op must format")
	}
}
