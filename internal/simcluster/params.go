// Package simcluster models a full-scale GekkoFS deployment on the
// discrete-event simulator: N nodes, each running 16 benchmark processes
// and one daemon, connected by a non-blocking 100 Gbit/s fabric (MOGON
// II's Omni-Path fat tree). It regenerates the scaling behaviour of the
// paper's Figures 2 and 3 and the in-text results, with every process a
// closed loop of synchronous operations — exactly the protocol of the
// real client (internal/client), whose RPCs are cache-less and awaited
// one I/O at a time.
//
// Per node the model charges four resources:
//
//	nicIn, nicOut — 12.5 GB/s each way; bulk payloads serialize here
//	progress      — the daemon's RPC progress/handler critical path
//	                (Mercury/Margo progress loop), one RPC at a time
//	ssd           — the node-local drive, service times from internal/ssd
//
// Calibration (params below) is anchored on two independent sources: the
// paper's own 512-node plateaus (46 M creates/s → ~11 µs per create on a
// daemon; 44 M stats/s; 22 M removes/s → ~2× create cost) and this
// repository's measured kvstore microbenchmarks (put ≈ 1.7–2.5 µs, get ≈
// 7–11 µs — see internal/kvstore/bench_test.go), which fit inside those
// budgets once RPC handling is added.
package simcluster

import (
	"time"

	"repro/internal/ssd"
)

// Params are the calibrated model constants.
type Params struct {
	// ProcsPerNode is the benchmark process count per node (paper: 16).
	ProcsPerNode int
	// NetLatency is the one-way fabric latency between distinct nodes;
	// same-node IPC pays half.
	NetLatency time.Duration
	// NetBandwidth is the per-NIC bandwidth in bytes/s per direction
	// (100 Gbit/s Omni-Path ≈ 12.5 GB/s).
	NetBandwidth float64
	// MDCreate, MDStat, MDRemove, MDSizeUpdate are the daemon-side
	// critical-path costs of one metadata RPC (progress loop + KV
	// operation).
	MDCreate, MDStat, MDRemove, MDSizeUpdate time.Duration
	// DataRPC is the daemon-side critical-path cost of one chunk RPC
	// before the SSD access (progress loop + handler dispatch).
	DataRPC time.Duration
	// ClientOverhead is the client-side per-operation cost (interception,
	// marshalling, fd-map bookkeeping).
	ClientOverhead time.Duration
	// JitterFrac randomizes service times by ±frac for realism.
	JitterFrac float64
	// SSD is the node-local drive model.
	SSD ssd.Model
	// ChunkSize is the file system chunk size (512 KiB).
	ChunkSize int64
}

// DefaultParams returns the calibrated MOGON II model.
func DefaultParams() Params {
	return Params{
		ProcsPerNode:   16,
		NetLatency:     3 * time.Microsecond,
		NetBandwidth:   12.5e9,
		MDCreate:       11 * time.Microsecond,
		MDStat:         11500 * time.Nanosecond,
		MDRemove:       23 * time.Microsecond,
		MDSizeUpdate:   6500 * time.Nanosecond,
		DataRPC:        7 * time.Microsecond,
		ClientOverhead: 1500 * time.Nanosecond,
		JitterFrac:     0.08,
		SSD:            ssd.MOGON(),
		ChunkSize:      512 * 1024,
	}
}
