package simcluster

import (
	"time"

	"repro/internal/sim"
)

// MDOp names a metadata operation of the mdtest workload.
type MDOp int

// Metadata operations.
const (
	// MDOpCreate creates zero-byte files in a single directory.
	MDOpCreate MDOp = iota
	// MDOpStat stats existing files.
	MDOpStat
	// MDOpRemove unlinks zero-byte files.
	MDOpRemove
)

// String names the op for reports.
func (op MDOp) String() string {
	switch op {
	case MDOpCreate:
		return "create"
	case MDOpStat:
		return "stat"
	case MDOpRemove:
		return "remove"
	default:
		return "md?"
	}
}

// Result is one simulated measurement.
type Result struct {
	// OpsPerSec is the aggregate operation rate during the measurement
	// window.
	OpsPerSec float64
	// MiBPerSec is the aggregate data rate (I/O phases only).
	MiBPerSec float64
	// MeanLatency is the mean per-operation completion latency.
	MeanLatency time.Duration
	// SSDBusy is the mean SSD busy fraction across nodes (I/O phases).
	SSDBusy float64
}

// node bundles one simulated machine's contended resources.
type node struct {
	nicIn, nicOut *sim.Server
	progress      *sim.Server
	ssd           *sim.Server
}

// cluster is a running model.
type cluster struct {
	eng   *sim.Engine
	p     Params
	nodes []*node
	rng   *sim.RNG
}

func newCluster(p Params, nodes int, seed uint64) *cluster {
	eng := sim.NewEngine()
	c := &cluster{eng: eng, p: p, rng: sim.NewRNG(seed)}
	for i := 0; i < nodes; i++ {
		c.nodes = append(c.nodes, &node{
			nicIn:    sim.NewServer(eng, 1),
			nicOut:   sim.NewServer(eng, 1),
			progress: sim.NewServer(eng, 1),
			ssd:      sim.NewServer(eng, 1),
		})
	}
	return c
}

// latency returns the one-way delay between two nodes; local IPC is
// cheaper (the paper's Margo IPC path).
func (c *cluster) latency(from, to int) sim.Time {
	l := sim.Dur(c.p.NetLatency)
	if from == to {
		return l / 2
	}
	return l
}

// txTime is the NIC serialization time of a payload.
func (c *cluster) txTime(bytes int64) sim.Time {
	if bytes <= 0 {
		return 0
	}
	return sim.Time(float64(bytes) / c.p.NetBandwidth * 1e9)
}

// jit applies the configured service-time jitter.
func (c *cluster) jit(d time.Duration) sim.Time {
	return c.rng.Jitter(sim.Dur(d), c.p.JitterFrac)
}

// metadataRPC models one small RPC from a client on node `from` to the
// daemon on node `to`: request latency, serialized progress+KV work at
// the daemon, response latency. Small messages don't meaningfully load
// the NICs, so only the latency and the daemon critical path are charged.
func (c *cluster) metadataRPC(from, to int, svc time.Duration, done func()) {
	c.eng.After(c.latency(from, to), func() {
		c.nodes[to].progress.Process(c.jit(svc), func() {
			c.eng.After(c.latency(to, from), done)
		})
	})
}

// mdSvc returns the daemon-side cost of op.
func (c *cluster) mdSvc(op MDOp) time.Duration {
	switch op {
	case MDOpCreate:
		return c.p.MDCreate
	case MDOpStat:
		return c.p.MDStat
	default:
		return c.p.MDRemove
	}
}

// RunMetadata simulates the mdtest phase `op` on the given node count:
// every process is a closed loop issuing one operation at a time against
// a uniformly hashed daemon (the flat namespace spreads a single
// directory over all daemons — the paper's central metadata property).
// Throughput is measured over the steady-state window after warmup.
func RunMetadata(p Params, nodes int, op MDOp, warmup, window time.Duration, seed uint64) Result {
	c := newCluster(p, nodes, seed)
	start := sim.Dur(warmup)
	end := start + sim.Dur(window)

	var completed uint64
	var latSum sim.Time
	var latN uint64

	procs := nodes * p.ProcsPerNode
	for pr := 0; pr < procs; pr++ {
		home := pr / p.ProcsPerNode
		var loop func()
		loop = func() {
			issued := c.eng.Now()
			target := c.rng.Intn(len(c.nodes))
			c.eng.After(c.jit(p.ClientOverhead), func() {
				c.metadataRPC(home, target, c.mdSvc(op), func() {
					if c.eng.Now() > start && c.eng.Now() <= end {
						completed++
						latSum += c.eng.Now() - issued
						latN++
					}
					loop()
				})
			})
		}
		loop()
	}
	c.eng.RunUntil(end)

	res := Result{
		OpsPerSec: float64(completed) / window.Seconds(),
	}
	if latN > 0 {
		res.MeanLatency = time.Duration(latSum / sim.Time(latN))
	}
	return res
}

// IOConfig describes one IOR-like phase.
type IOConfig struct {
	// Nodes is the node count; 16 processes run per node.
	Nodes int
	// Write selects write (true) or read (false).
	Write bool
	// TransferSize is the per-operation I/O size.
	TransferSize int64
	// Random selects random offsets within each process's region;
	// sequential otherwise.
	Random bool
	// Shared makes all processes write one shared file, so every size
	// update targets the single daemon holding its metadata — the
	// bottleneck of paper §IV-B. File-per-process otherwise.
	Shared bool
	// SizeCacheOps batches size updates client-side, flushing every N
	// transfers (0 disables — the paper's default protocol).
	SizeCacheOps int
	// LocalWrites places every chunk on the writer's own node (the
	// BurstFS-style "write local" placement of distributor.LocalFirst,
	// ablation A2); reads then fetch from the writers' nodes, modeled as
	// uniformly remote. False selects the paper's hashing.
	LocalWrites bool
	// ProducerFrac limits the fraction of nodes whose processes
	// participate in the phase (1.0 or 0 = all). A skewed producer set
	// is where placement policies diverge: hashing still engages every
	// node's SSD, write-local only the producers'.
	ProducerFrac float64
	// Warmup and Window bound the measurement.
	Warmup, Window time.Duration
	// Seed fixes the RNG.
	Seed uint64
}

// RunIO simulates one IOR phase and reports aggregate bandwidth, op rate
// and latency.
func RunIO(p Params, cfg IOConfig) Result {
	c := newCluster(p, cfg.Nodes, cfg.Seed+0x10)
	start := sim.Dur(cfg.Warmup)
	end := start + sim.Dur(cfg.Window)

	chunk := p.ChunkSize
	// Spans per transfer: the client splits on chunk boundaries. Aligned
	// sequential I/O touches ceil(T/chunk) chunks; model transfers as
	// aligned (IOR's default).
	nChunks := (cfg.TransferSize + chunk - 1) / chunk
	if nChunks < 1 {
		nChunks = 1
	}
	lastLen := cfg.TransferSize - (nChunks-1)*chunk

	// Random accesses below the chunk size hit chunk files at random
	// offsets; at or above it they address whole chunk files and behave
	// sequentially (paper §IV-B).
	randomDevice := cfg.Random && cfg.TransferSize < chunk

	var completed uint64
	var bytesDone int64
	var latSum sim.Time
	var latN uint64

	// Bandwidth is accounted at chunk-RPC completion so that transfers
	// longer than the window (64 MiB) still measure steady-state rate.
	countChunk := func(l int64) {
		if c.eng.Now() > start && c.eng.Now() <= end {
			bytesDone += l
		}
	}

	// The shared file's metadata lives on one daemon.
	sharedMetaNode := c.rng.Intn(cfg.Nodes)

	// Transfers smaller than a chunk hit the same chunk — and therefore
	// the same daemon — for chunk/transfer consecutive sequential ops;
	// random offsets re-draw the chunk (and daemon) every op. This is the
	// real client's locality pattern (internal/client hashes path+chunk).
	stickyOps := int(chunk / cfg.TransferSize)
	if stickyOps < 1 || cfg.TransferSize >= chunk {
		stickyOps = 1
	}

	producerNodes := cfg.Nodes
	if cfg.ProducerFrac > 0 && cfg.ProducerFrac < 1 {
		producerNodes = int(float64(cfg.Nodes)*cfg.ProducerFrac + 0.5)
		if producerNodes < 1 {
			producerNodes = 1
		}
	}

	procs := producerNodes * p.ProcsPerNode
	for pr := 0; pr < procs; pr++ {
		home := pr / p.ProcsPerNode
		// Each file-per-process file has a fixed metadata daemon.
		fppMetaNode := c.rng.Intn(cfg.Nodes)
		pending := 0 // transfers since last size-update flush
		curTarget := c.rng.Intn(cfg.Nodes)
		opsOnChunk := 0

		var loop func()
		finish := func(issued sim.Time) {
			if c.eng.Now() > start && c.eng.Now() <= end {
				completed++
				latSum += c.eng.Now() - issued
				latN++
			}
			loop()
		}
		loop = func() {
			issued := c.eng.Now()
			c.eng.After(c.jit(p.ClientOverhead), func() {
				// One wait slot per chunk RPC plus one for the size
				// update (writes without an elided update).
				sizeUpdate := false
				if cfg.Write {
					if cfg.SizeCacheOps > 0 {
						pending++
						if pending >= cfg.SizeCacheOps {
							pending = 0
							sizeUpdate = true
						}
					} else {
						sizeUpdate = true
					}
				}
				slots := int(nChunks)
				if sizeUpdate {
					slots++
				}
				wg := sim.NewWaitGroup(slots, func() { finish(issued) })
				for ci := int64(0); ci < nChunks; ci++ {
					l := chunk
					if ci == nChunks-1 {
						l = lastLen
					}
					var target int
					switch {
					case cfg.LocalWrites && cfg.Write:
						target = home
					case cfg.TransferSize >= chunk || cfg.Random || cfg.LocalWrites:
						target = c.rng.Intn(cfg.Nodes)
					default:
						if opsOnChunk >= stickyOps {
							curTarget = c.rng.Intn(cfg.Nodes)
							opsOnChunk = 0
						}
						target = curTarget
						opsOnChunk++
					}
					done := func() {
						countChunk(l)
						wg.Done()
					}
					if cfg.Write {
						c.writeChunk(home, target, l, randomDevice, done)
					} else {
						c.readChunk(home, target, l, randomDevice, done)
					}
				}
				if sizeUpdate {
					metaNode := fppMetaNode
					if cfg.Shared {
						metaNode = sharedMetaNode
					}
					c.metadataRPC(home, metaNode, p.MDSizeUpdate, wg.Done)
				}
			})
		}
		loop()
	}
	c.eng.RunUntil(end)

	res := Result{
		OpsPerSec: float64(completed) / cfg.Window.Seconds(),
		MiBPerSec: float64(bytesDone) / (1 << 20) / cfg.Window.Seconds(),
	}
	if latN > 0 {
		res.MeanLatency = time.Duration(latSum / sim.Time(latN))
	}
	var busy float64
	for _, n := range c.nodes {
		busy += n.ssd.BusyFraction()
	}
	res.SSDBusy = busy / float64(len(c.nodes))
	return res
}

// writeChunk: the payload serializes out of the client NIC, crosses the
// fabric, serializes into the daemon NIC, passes the daemon's RPC
// critical path (which pulls the bulk region — the paper's RDMA read),
// is persisted by the SSD, and a small ack returns.
func (c *cluster) writeChunk(from, to int, size int64, random bool, done func()) {
	nf, nt := c.nodes[from], c.nodes[to]
	nf.nicOut.Process(c.txTime(size), func() {
		c.eng.After(c.latency(from, to), func() {
			nt.nicIn.Process(c.txTime(size), func() {
				nt.progress.Process(c.jit(c.p.DataRPC), func() {
					nt.ssd.Process(c.rng.Jitter(sim.Dur(c.p.SSD.WriteTime(size, random)), c.p.JitterFrac), func() {
						c.eng.After(c.latency(to, from), done)
					})
				})
			})
		})
	})
}

// readChunk: a small request travels to the daemon, the SSD fetches the
// chunk, and the payload serializes back through both NICs (the daemon's
// RDMA write into the client's exposed buffer).
func (c *cluster) readChunk(from, to int, size int64, random bool, done func()) {
	nf, nt := c.nodes[from], c.nodes[to]
	c.eng.After(c.latency(from, to), func() {
		nt.progress.Process(c.jit(c.p.DataRPC), func() {
			nt.ssd.Process(c.rng.Jitter(sim.Dur(c.p.SSD.ReadTime(size, random)), c.p.JitterFrac), func() {
				nt.nicOut.Process(c.txTime(size), func() {
					c.eng.After(c.latency(to, from), func() {
						nf.nicIn.Process(c.txTime(size), done)
					})
				})
			})
		})
	})
}

// AggregateSSDPeak returns the reference series of Fig. 3: the summed
// sequential device bandwidth of all node-local SSDs, in MiB/s.
func AggregateSSDPeak(p Params, nodes int, write bool) float64 {
	var per float64
	if write {
		per = p.SSD.SeqWriteBandwidth()
	} else {
		per = p.SSD.SeqReadBandwidth()
	}
	return per * float64(nodes) / (1 << 20)
}
