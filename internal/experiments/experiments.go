// Package experiments regenerates every figure and quantified in-text
// result of the paper's evaluation (§IV), one function per experiment,
// each returning a printable table. DESIGN.md's experiment index maps
// IDs (Fig2a…, T1…T4, A1, A2) to these functions; cmd/gkfs-sim exposes
// them on the command line and the repository-root benchmarks wrap them.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/lustre"
	"repro/internal/sim"
	"repro/internal/simcluster"
)

// Table is one experiment's result, formatted for humans and for
// EXPERIMENTS.md.
type Table struct {
	// Title names the experiment ("Fig. 2a — create throughput").
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, already formatted.
	Rows [][]string
	// Notes carries the paper-versus-measured commentary.
	Notes []string
}

// Fprint renders the table as GitHub-flavored markdown.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "### %s\n\n", t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, r := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n%s\n", n)
	}
	fmt.Fprintln(w)
}

// NodeSet returns the figure's node axis: powers of two from 1 to 512
// (quick mode stops at 64 for fast iteration).
func NodeSet(quick bool) []int {
	full := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	if quick {
		return full[:7]
	}
	return full
}

// windows returns warmup and measurement windows sized for the node
// count: bigger systems complete more events per simulated second, so
// shorter windows suffice.
func mdWindows(nodes int) (warmup, window time.Duration) {
	if nodes >= 256 {
		return 3 * time.Millisecond, 9 * time.Millisecond
	}
	return 5 * time.Millisecond, 20 * time.Millisecond
}

func ioWindows(nodes int) (warmup, window time.Duration) {
	if nodes >= 256 {
		return 30 * time.Millisecond, 60 * time.Millisecond
	}
	return 40 * time.Millisecond, 80 * time.Millisecond
}

func fm(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fK", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// Fig2 regenerates one panel of Figure 2: create (a), stat (b) or remove
// (c) throughput for GekkoFS and the Lustre baseline in both directory
// configurations, across the node axis.
func Fig2(op simcluster.MDOp, nodes []int) Table {
	panel := map[simcluster.MDOp]string{
		simcluster.MDOpCreate: "2a", simcluster.MDOpStat: "2b", simcluster.MDOpRemove: "2c",
	}[op]
	t := Table{
		Title: fmt.Sprintf("Fig. %s — %s throughput (ops/s), 16 procs/node, single dir", panel, op),
		Columns: []string{"nodes", "GekkoFS", "Lustre single dir", "Lustre unique dir",
			"GekkoFS / Lustre single"},
	}
	p := simcluster.DefaultParams()
	lp := lustre.DefaultParams()
	lop := lustre.MDOp(op)
	for _, n := range nodes {
		warm, win := mdWindows(n)
		g := simcluster.RunMetadata(p, n, op, warm, win, 1)
		ls := lustre.RunMetadata(lp, n, lop, true, 20*time.Millisecond, 80*time.Millisecond, 1)
		lu := lustre.RunMetadata(lp, n, lop, false, 20*time.Millisecond, 80*time.Millisecond, 1)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fm(g.OpsPerSec), fm(ls.OpsPerSec), fm(lu.OpsPerSec),
			fmt.Sprintf("%.0fx", g.OpsPerSec/ls.OpsPerSec),
		})
	}
	t.Notes = append(t.Notes,
		"Paper @512 nodes: ~46M creates/s (~1405x Lustre), ~44M stats/s (~359x), ~22M removes/s (~453x); GekkoFS close to linear, Lustre flat.")
	return t
}

// TransferSizes is Fig. 3's transfer-size axis.
var TransferSizes = []int64{8 << 10, 64 << 10, 1 << 20, 64 << 20}

func tsName(ts int64) string {
	switch {
	case ts >= 1<<20:
		return fmt.Sprintf("%dm", ts>>20)
	default:
		return fmt.Sprintf("%dk", ts>>10)
	}
}

// Fig3 regenerates one panel of Figure 3: sequential write (a) or read
// (b) throughput per transfer size, against the aggregated-SSD peak
// reference.
func Fig3(write bool, nodes []int) Table {
	panel, verb := "3a", "write"
	if !write {
		panel, verb = "3b", "read"
	}
	cols := []string{"nodes"}
	for _, ts := range TransferSizes {
		cols = append(cols, tsName(ts)+" MiB/s")
	}
	cols = append(cols, "SSD peak MiB/s", "64m efficiency")
	t := Table{
		Title:   fmt.Sprintf("Fig. %s — sequential %s throughput, file-per-process, 16 procs/node", panel, verb),
		Columns: cols,
	}
	p := simcluster.DefaultParams()
	for _, n := range nodes {
		warm, win := ioWindows(n)
		row := []string{fmt.Sprint(n)}
		var last float64
		for _, ts := range TransferSizes {
			r := simcluster.RunIO(p, simcluster.IOConfig{
				Nodes: n, Write: write, TransferSize: ts,
				Warmup: warm, Window: win, Seed: 3,
			})
			row = append(row, fmt.Sprintf("%.0f", r.MiBPerSec))
			last = r.MiBPerSec
		}
		peak := simcluster.AggregateSSDPeak(p, n, write)
		row = append(row, fmt.Sprintf("%.0f", peak), fmt.Sprintf("%.0f%%", 100*last/peak))
		t.Rows = append(t.Rows, row)
	}
	if write {
		t.Notes = append(t.Notes, "Paper @512 nodes: ~141 GiB/s (~144,384 MiB/s), ~80% of the aggregated SSD write peak at 64 MiB transfers.")
	} else {
		t.Notes = append(t.Notes, "Paper @512 nodes: ~204 GiB/s (~208,896 MiB/s), ~70% of the aggregated SSD read peak at 64 MiB transfers.")
	}
	return t
}

// TextRandVsSeq regenerates T1 (§IV-B): random versus sequential
// throughput per transfer size at the given node count.
func TextRandVsSeq(nodes int) Table {
	t := Table{
		Title:   fmt.Sprintf("T1 — random vs sequential throughput, %d nodes", nodes),
		Columns: []string{"op", "transfer", "sequential MiB/s", "random MiB/s", "delta"},
	}
	p := simcluster.DefaultParams()
	warm, win := ioWindows(nodes)
	for _, write := range []bool{true, false} {
		verb := "write"
		if !write {
			verb = "read"
		}
		for _, ts := range []int64{8 << 10, 64 << 10, 512 << 10, 1 << 20} {
			seq := simcluster.RunIO(p, simcluster.IOConfig{
				Nodes: nodes, Write: write, TransferSize: ts, Warmup: warm, Window: win, Seed: 4,
			})
			rnd := simcluster.RunIO(p, simcluster.IOConfig{
				Nodes: nodes, Write: write, TransferSize: ts, Random: true, Warmup: warm, Window: win, Seed: 4,
			})
			t.Rows = append(t.Rows, []string{
				verb, tsName(ts), fmt.Sprintf("%.0f", seq.MiBPerSec), fmt.Sprintf("%.0f", rnd.MiBPerSec),
				fmt.Sprintf("%+.0f%%", 100*(rnd.MiBPerSec/seq.MiBPerSec-1)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"Paper @512 nodes, 8 KiB: random write ≈ −33%, random read ≈ −60%; no difference at or above the 512 KiB chunk size.")
	return t
}

// TextSharedFile regenerates T2 (§IV-B): the shared-file size-update
// bottleneck and the client size cache that removes it.
func TextSharedFile(nodes int) Table {
	t := Table{
		Title:   fmt.Sprintf("T2 — shared-file writes (64 KiB transfers), %d nodes", nodes),
		Columns: []string{"configuration", "ops/s", "MiB/s", "vs file-per-process"},
	}
	p := simcluster.DefaultParams()
	warm, win := ioWindows(nodes)
	run := func(shared bool, cacheOps int) simcluster.Result {
		return simcluster.RunIO(p, simcluster.IOConfig{
			Nodes: nodes, Write: true, TransferSize: 64 << 10,
			Shared: shared, SizeCacheOps: cacheOps,
			Warmup: warm, Window: win, Seed: 5,
		})
	}
	fpp := run(false, 0)
	noCache := run(true, 0)
	cache := run(true, 32)
	row := func(name string, r simcluster.Result) []string {
		return []string{name, fm(r.OpsPerSec), fmt.Sprintf("%.0f", r.MiBPerSec),
			fmt.Sprintf("%.0f%%", 100*r.MiBPerSec/fpp.MiBPerSec)}
	}
	t.Rows = append(t.Rows,
		row("file-per-process", fpp),
		row("shared, no cache", noCache),
		row("shared, size cache (32 ops)", cache))
	t.Notes = append(t.Notes,
		"Paper: without caching no more than ~150K write ops/s (size updates contend on one daemon); with the client size cache shared-file throughput matches file-per-process.")
	return t
}

// TextLatency regenerates T3: mean operation latency per transfer size.
func TextLatency(nodes int) Table {
	t := Table{
		Title:   fmt.Sprintf("T3 — mean write latency by transfer size, %d nodes", nodes),
		Columns: []string{"transfer", "mean latency", "within paper bound (700µs @ 8 KiB)"},
	}
	p := simcluster.DefaultParams()
	warm, win := ioWindows(nodes)
	for _, ts := range []int64{8 << 10, 64 << 10} {
		r := simcluster.RunIO(p, simcluster.IOConfig{
			Nodes: nodes, Write: true, TransferSize: ts, Warmup: warm, Window: win, Seed: 6,
		})
		bound := "-"
		if ts == 8<<10 {
			if r.MeanLatency <= 700*time.Microsecond {
				bound = "yes"
			} else {
				bound = "NO"
			}
		}
		t.Rows = append(t.Rows, []string{tsName(ts), r.MeanLatency.Round(time.Microsecond).String(), bound})
	}
	t.Notes = append(t.Notes, "Paper: average latency bounded by at most 700 µs for 8 KiB operations at 512 nodes.")
	return t
}

// TextStartup regenerates T4: deployment time. The modeled launch is a
// tree-structured job start plus per-daemon initialization (storage scan
// and KV recovery dominate on real nodes); the real column measures this
// repository's in-process bring-up where feasible.
func TextStartup(nodes []int, measureReal bool) Table {
	t := Table{
		Title:   "T4 — deployment time",
		Columns: []string{"nodes", "modeled startup", "measured in-process bring-up"},
	}
	for _, n := range nodes {
		modeled := SimStartup(n, 9)
		real := "-"
		if measureReal && n <= 64 {
			c, err := core.NewCluster(core.Config{Nodes: n})
			if err == nil {
				real = c.DeployTime().Round(time.Millisecond).String()
				c.Close()
			}
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), modeled.Round(10 * time.Millisecond).String(), real})
	}
	t.Notes = append(t.Notes, "Paper: GekkoFS deploys in under 20 s on 512 nodes; daemons restart in <20 s between experiment iterations.")
	return t
}

// SimStartup models bring-up: a binary launch tree (parallel job start),
// per-daemon initialization drawn from 1.5–4.5 s (storage scan, KV
// recovery, RPC registration), and a registration barrier.
func SimStartup(nodes int, seed uint64) time.Duration {
	rng := sim.NewRNG(seed)
	depth := 0
	for n := 1; n < nodes; n *= 2 {
		depth++
	}
	launch := time.Duration(depth) * 120 * time.Millisecond
	var maxInit time.Duration
	for i := 0; i < nodes; i++ {
		init := 1500*time.Millisecond + time.Duration(rng.Float64()*3000)*time.Millisecond
		if init > maxInit {
			maxInit = init
		}
	}
	barrier := time.Duration(depth) * 40 * time.Millisecond
	return launch + maxInit + barrier
}

// AblationChunkSize regenerates A1 — the paper's "investigate various
// chunk sizes" future work: sequential write bandwidth and 8 KiB latency
// across chunk sizes.
func AblationChunkSize(nodes int) Table {
	t := Table{
		Title:   fmt.Sprintf("A1 — chunk-size ablation, %d nodes", nodes),
		Columns: []string{"chunk size", "64m write MiB/s", "1m write MiB/s", "8k write MiB/s", "8k mean latency"},
	}
	warm, win := ioWindows(nodes)
	for _, chunk := range []int64{64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20} {
		p := simcluster.DefaultParams()
		p.ChunkSize = chunk
		p.SSD.RandomFadeBytes = chunk // accesses ≥ chunk are whole-file
		var row []string
		row = append(row, tsName(chunk))
		var lat8k time.Duration
		for _, ts := range []int64{64 << 20, 1 << 20, 8 << 10} {
			r := simcluster.RunIO(p, simcluster.IOConfig{
				Nodes: nodes, Write: true, TransferSize: ts, Warmup: warm, Window: win, Seed: 7,
			})
			row = append(row, fmt.Sprintf("%.0f", r.MiBPerSec))
			if ts == 8<<10 {
				lat8k = r.MeanLatency
			}
		}
		row = append(row, lat8k.Round(time.Microsecond).String())
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"Larger chunks amortize per-chunk-file overheads for streaming I/O; smaller chunks spread single-file access over more daemons. The paper ships 512 KiB and defers this sweep to future work.")
	return t
}

// AblationDistributor regenerates A2 — "explore different data
// distribution patterns": the paper's hashing versus a BurstFS-style
// write-local placement, under a balanced load (every node writes) and
// a skewed one (half the nodes write, e.g. a coupled workflow's
// producer stage).
func AblationDistributor(nodes int) Table {
	t := Table{
		Title:   fmt.Sprintf("A2 — data distribution ablation (1 MiB writes), %d nodes", nodes),
		Columns: []string{"placement", "all nodes writing MiB/s", "half the nodes writing MiB/s"},
	}
	p := simcluster.DefaultParams()
	warm, win := ioWindows(nodes)
	run := func(local bool, frac float64) simcluster.Result {
		return simcluster.RunIO(p, simcluster.IOConfig{
			Nodes: nodes, Write: true, TransferSize: 1 << 20, LocalWrites: local,
			ProducerFrac: frac, Warmup: warm, Window: win, Seed: 8,
		})
	}
	for _, local := range []bool{false, true} {
		name := "hash (GekkoFS)"
		if local {
			name = "write-local (BurstFS-style)"
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.0f", run(local, 1).MiBPerSec),
			fmt.Sprintf("%.0f", run(local, 0.5).MiBPerSec),
		})
	}
	t.Notes = append(t.Notes,
		"Under uniform load both placements saturate every SSD. With a skewed producer set, hashing still spreads chunks over all nodes' SSDs while write-local is confined to the producers' — the balance argument behind GekkoFS's wide striping (paper §III-B).")
	return t
}
