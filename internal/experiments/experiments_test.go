package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/simcluster"
)

func TestNodeSet(t *testing.T) {
	full := NodeSet(false)
	if len(full) != 10 || full[0] != 1 || full[9] != 512 {
		t.Fatalf("full = %v", full)
	}
	quick := NodeSet(true)
	if quick[len(quick)-1] != 64 {
		t.Fatalf("quick = %v", quick)
	}
}

func TestFig2TableShape(t *testing.T) {
	tab := Fig2(simcluster.MDOpCreate, []int{1, 4})
	if len(tab.Rows) != 2 || len(tab.Columns) != 5 {
		t.Fatalf("shape = %dx%d", len(tab.Rows), len(tab.Columns))
	}
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	if !strings.Contains(out, "Fig. 2a") || !strings.Contains(out, "| nodes |") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFig3TableShape(t *testing.T) {
	tab := Fig3(true, []int{2})
	if len(tab.Rows) != 1 || len(tab.Columns) != 1+len(TransferSizes)+2 {
		t.Fatalf("shape = %dx%d", len(tab.Rows), len(tab.Columns))
	}
	if !strings.Contains(tab.Title, "3a") {
		t.Fatal(tab.Title)
	}
	if !strings.Contains(Fig3(false, []int{2}).Title, "3b") {
		t.Fatal("read panel mislabeled")
	}
}

func TestTextTablesRun(t *testing.T) {
	if rows := TextRandVsSeq(4).Rows; len(rows) != 8 {
		t.Fatalf("rand-vs-seq rows = %d", len(rows))
	}
	if rows := TextSharedFile(4).Rows; len(rows) != 3 {
		t.Fatalf("shared rows = %d", len(rows))
	}
	if rows := TextLatency(4).Rows; len(rows) != 2 {
		t.Fatalf("latency rows = %d", len(rows))
	}
}

func TestStartupModel(t *testing.T) {
	d512 := SimStartup(512, 9)
	if d512 >= 20*time.Second {
		t.Fatalf("modeled 512-node startup %v ≥ 20s; paper promises less", d512)
	}
	if d512 <= SimStartup(1, 9) {
		t.Fatal("startup should grow with node count")
	}
	if SimStartup(512, 9) != SimStartup(512, 9) {
		t.Fatal("startup model not deterministic")
	}
}

func TestStartupTableWithRealMeasurement(t *testing.T) {
	tab := TextStartup([]int{1, 4}, true)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r[2] == "-" {
			t.Fatalf("real measurement missing for %s nodes", r[0])
		}
	}
}

func TestAblationsRun(t *testing.T) {
	if rows := AblationChunkSize(2).Rows; len(rows) != 6 {
		t.Fatalf("chunk rows = %d", len(rows))
	}
	tab := AblationDistributor(4)
	if len(tab.Rows) != 2 {
		t.Fatalf("dist rows = %d", len(tab.Rows))
	}
}

func TestFig2SpeedupGrowsWithNodes(t *testing.T) {
	tab := Fig2(simcluster.MDOpCreate, []int{1, 16})
	// Column 4 is the speedup "Nx"; the 16-node speedup must exceed the
	// 1-node one.
	parse := func(s string) float64 {
		var v float64
		if _, err := fmt.Sscanf(s, "%fx", &v); err != nil {
			t.Fatalf("bad speedup cell %q: %v", s, err)
		}
		return v
	}
	if parse(tab.Rows[1][4]) <= parse(tab.Rows[0][4]) {
		t.Fatalf("speedup not growing: %v vs %v", tab.Rows[0][4], tab.Rows[1][4])
	}
}
