package ssd

import (
	"testing"
	"time"
)

func TestSequentialTimesScaleWithSize(t *testing.T) {
	m := DCS3700()
	small := m.WriteTime(8<<10, false)
	large := m.WriteTime(64<<20, false)
	if large <= small {
		t.Fatalf("64MiB (%v) not slower than 8KiB (%v)", large, small)
	}
	// 64 MiB at 460 MB/s ≈ 146 ms; allow wide tolerance around overheads.
	sizeBytes := float64(int64(64 << 20))
	want := time.Duration(sizeBytes / 460e6 * float64(time.Second))
	if large < want || large > want+time.Millisecond {
		t.Fatalf("64MiB write = %v, want ≈ %v", large, want)
	}
}

func TestRandomPenaltyAtSmallSizes(t *testing.T) {
	m := DCS3700()
	seq := m.ReadTime(8<<10, false)
	rnd := m.ReadTime(8<<10, true)
	if rnd <= seq {
		t.Fatalf("8KiB random read (%v) not slower than sequential (%v)", rnd, seq)
	}
	wSeq := m.WriteTime(8<<10, false)
	wRnd := m.WriteTime(8<<10, true)
	if wRnd <= wSeq {
		t.Fatalf("8KiB random write (%v) not slower than sequential (%v)", wRnd, wSeq)
	}
}

func TestRandomPenaltyFadesAtChunkSize(t *testing.T) {
	// Paper §IV-B: transfers at or above the chunk size behave like
	// sequential accesses because whole chunk files are accessed.
	m := DCS3700()
	seq := m.ReadTime(512<<10, false)
	rnd := m.ReadTime(512<<10, true)
	if rnd != seq {
		t.Fatalf("512KiB random (%v) != sequential (%v)", rnd, seq)
	}
}

func TestSequentialWriteSlowerThanSequentialRead(t *testing.T) {
	// 460 MB/s write vs 500 MB/s read: large sequential writes take
	// longer than reads of the same size.
	m := DCS3700()
	if m.WriteTime(1<<20, false) <= m.ReadTime(1<<20, false) {
		t.Fatal("sequential 1MiB write should be slower than read")
	}
}

func TestZeroSize(t *testing.T) {
	m := DCS3700()
	if m.ReadTime(0, false) != m.PerOpOverhead {
		t.Fatal("zero-size read must cost exactly the per-op overhead")
	}
}

func TestPeakBandwidthAccessors(t *testing.T) {
	m := DCS3700()
	if m.SeqReadBandwidth() != 500e6 || m.SeqWriteBandwidth() != 460e6 {
		t.Fatalf("peaks = %v, %v", m.SeqReadBandwidth(), m.SeqWriteBandwidth())
	}
}

func TestPenaltyMonotoneInSize(t *testing.T) {
	// The absolute random penalty must shrink as the I/O size grows
	// toward the fade boundary.
	m := DCS3700()
	prev := time.Duration(1 << 62)
	for _, size := range []int64{4 << 10, 8 << 10, 64 << 10, 256 << 10} {
		extra := m.ReadTime(size, true) - m.ReadTime(size, false)
		if extra >= prev {
			t.Fatalf("penalty at %d (%v) not below penalty at smaller size (%v)", size, extra, prev)
		}
		prev = extra
	}
}

func TestReadPenaltyExceedsWritePenalty(t *testing.T) {
	// Paper §IV-B: at 8 KiB and 512 nodes reads drop ~60 %, writes ~33 %,
	// so the device-level read penalty must dominate.
	m := DCS3700()
	readExtra := m.ReadTime(8<<10, true) - m.ReadTime(8<<10, false)
	writeExtra := m.WriteTime(8<<10, true) - m.WriteTime(8<<10, false)
	if readExtra <= writeExtra {
		t.Fatalf("read penalty %v not above write penalty %v", readExtra, writeExtra)
	}
}
