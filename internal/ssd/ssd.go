// Package ssd models the node-local drive of the paper's testbed (an
// Intel DC S3700-class SATA data-center SSD, XFS-formatted) for the
// simulation plane. Figure 3 normalizes GekkoFS throughput against the
// "plain SSD peak throughput", so the model's sequential numbers define
// the white reference rectangles, and its random-access penalties drive
// the in-text random-I/O results.
package ssd

import "time"

// Model captures the device parameters the simulation needs. All rates
// are bytes per second.
type Model struct {
	// SeqReadBps and SeqWriteBps are the sustained sequential rates.
	SeqReadBps, SeqWriteBps float64
	// PerOpOverhead is the controller/file-system cost charged once per
	// chunk-file access (open + metadata + submission).
	PerOpOverhead time.Duration
	// RandReadPenalty and RandWritePenalty are the extra per-access costs
	// of a random small access relative to a streaming one. They bundle
	// device positioning, the SATA round trip that readahead would have
	// hidden, and the kernel page-cache miss: sequential small reads of a
	// chunk file ride XFS readahead; random ones go to the device every
	// time. Calibrated so the full simulation lands near the paper's
	// −~60 % read / −~33 % write at 8 KiB and 512 nodes.
	RandReadPenalty, RandWritePenalty time.Duration
	// RandomFadeBytes is the I/O size at which random access behaves like
	// sequential access (GekkoFS chunk files make accesses ≥ chunk size
	// whole-file sequential; paper §IV-B).
	RandomFadeBytes int64
	// SustainedWriteDerate and SustainedReadDerate model the bandwidth
	// lost to file-system amplification when streaming chunk files (XFS
	// journaling, extent allocation, readahead over-fetch): the effective
	// rate of an access of SustainedFadeBytes or more is
	// seq × (1 − derate), fading linearly away for smaller accesses,
	// whose cost is already dominated by per-op overheads. Calibrated so
	// the simulation reproduces Fig. 3's measured ~80 % write / ~70 %
	// read of aggregated raw peak at 64 MiB transfers.
	SustainedWriteDerate, SustainedReadDerate float64
	// SustainedFadeBytes is the access size at which the sustained
	// derate fully applies.
	SustainedFadeBytes int64
}

// DCS3700 returns parameters for the Intel SSD DC S3700 (800 GB class):
// 500 MB/s sequential read, 460 MB/s sequential write (vendor datasheet);
// random penalties calibrated as described on Model.
func DCS3700() Model {
	return Model{
		SeqReadBps:       500e6,
		SeqWriteBps:      460e6,
		PerOpOverhead:    12 * time.Microsecond,
		RandReadPenalty:  40 * time.Microsecond,
		RandWritePenalty: 17 * time.Microsecond,
		RandomFadeBytes:  512 * 1024,
	}
}

// MOGON returns the simulation plane's device: the same drive class with
// the *achievable* sequential rates backed out of Fig. 3's reference
// rectangles (141 GiB/s ≈ 80 % of the aggregated write peak at 512 nodes
// → ~370 MB/s per node; 204 GiB/s ≈ 70 % of the read peak → ~560 MB/s,
// the SATA ceiling). Random penalties are calibrated so the end-to-end
// simulation lands near the paper's −~60 % random-read and −~33 %
// random-write deltas at 8 KiB.
func MOGON() Model {
	return Model{
		SeqReadBps:           560e6,
		SeqWriteBps:          370e6,
		PerOpOverhead:        12 * time.Microsecond,
		RandReadPenalty:      40 * time.Microsecond,
		RandWritePenalty:     17 * time.Microsecond,
		RandomFadeBytes:      512 * 1024,
		SustainedWriteDerate: 0.20,
		SustainedReadDerate:  0.28,
		SustainedFadeBytes:   64 * 1024,
	}
}

// ReadTime returns the device service time of one read of size bytes.
func (m Model) ReadTime(size int64, random bool) time.Duration {
	return m.accessTime(size, random, m.SeqReadBps, m.RandReadPenalty, m.SustainedReadDerate)
}

// WriteTime returns the device service time of one write of size bytes.
func (m Model) WriteTime(size int64, random bool) time.Duration {
	return m.accessTime(size, random, m.SeqWriteBps, m.RandWritePenalty, m.SustainedWriteDerate)
}

// accessTime = per-op overhead + derated transfer time + random penalty.
// The random penalty fades linearly to zero — and the sustained derate
// fades linearly in — as the I/O size approaches RandomFadeBytes.
func (m Model) accessTime(size int64, random bool, seqBps float64, penalty time.Duration, derate float64) time.Duration {
	if size <= 0 {
		return m.PerOpOverhead
	}
	fade := m.SustainedFadeBytes
	if fade <= 0 {
		fade = m.RandomFadeBytes
	}
	dscale := 1.0
	if fade > 0 && size < fade {
		dscale = float64(size) / float64(fade)
	}
	eff := seqBps * (1 - derate*dscale)
	transfer := time.Duration(float64(size) / eff * float64(time.Second))
	t := m.PerOpOverhead + transfer
	if random && penalty > 0 && size < m.RandomFadeBytes {
		rscale := float64(size) / float64(m.RandomFadeBytes)
		t += time.Duration(float64(penalty) * (1 - rscale))
	}
	return t
}

// SeqReadBandwidth exposes the peak read rate used for Fig. 3's
// aggregated-SSD reference series.
func (m Model) SeqReadBandwidth() float64 { return m.SeqReadBps }

// SeqWriteBandwidth returns the sequential write peak in bytes/s.
func (m Model) SeqWriteBandwidth() float64 { return m.SeqWriteBps }
