package staging_test

// Snapshot isolation under live traffic: concurrent writers overwrite a
// small tree non-stop while the test snapshots it, captures each tag's
// pinned pre-image through the epoch read path, stages the tag out
// concurrently with the writers, and byte-compares the staged tree
// against the capture. The writers' iteration counters prove the drain
// never blocked them.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/staging"
)

const (
	raceChunk = 4096
	raceFiles = 6
	raceDir   = "/race"
)

// raceSize keeps files 0..2 single-chunk (their pinned content must be
// one complete generation — a chunk write is atomic under the snapshot
// cut) and files 3.. multi-chunk (their pinned content is only required
// to be stable: capture and stage-out must agree byte for byte).
func raceSize(i int) int {
	if i < 3 {
		return 1000 + i*700
	}
	return raceChunk*2 + 500 + i*300
}

func racePath(i int) string { return fmt.Sprintf("%s/f%d", raceDir, i) }

func raceWrite(c *client.Client, i, gen int) error {
	buf := make([]byte, raceSize(i))
	for j := range buf {
		buf[j] = byte(gen % 251)
	}
	fd, err := c.Open(racePath(i), client.O_WRONLY|client.O_CREATE)
	if err != nil {
		return err
	}
	if _, err := c.WriteAt(fd, buf, 0); err != nil {
		c.Close(fd)
		return err
	}
	return c.Close(fd)
}

// captureAt reads one path's full pinned content at epoch; nil with ok
// false means the path did not exist at the epoch.
func captureAt(c *client.Client, path string, epoch uint64) ([]byte, bool, error) {
	buf := make([]byte, raceChunk*4)
	var off int
	for {
		n, err := c.ReadSnapshot(path, epoch, buf[off:], int64(off))
		off += n
		if errors.Is(err, io.EOF) {
			return buf[:off], true, nil
		}
		if errors.Is(err, proto.ErrNotExist) {
			return nil, false, nil
		}
		if err != nil {
			return nil, false, err
		}
		if n == 0 {
			return buf[:off], true, nil
		}
	}
}

func TestSnapshotStageOutUnderConcurrentWriters(t *testing.T) {
	cluster, err := core.NewCluster(core.Config{Nodes: 4, ChunkSize: raceChunk})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	wc, err := cluster.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := cluster.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	if err := wc.Mkdir(raceDir); err != nil {
		t.Fatal(err)
	}

	// Writers: one per file, overwriting full generations until stopped.
	var (
		stop  atomic.Bool
		iters atomic.Uint64
		wg    sync.WaitGroup
		werrs = make([]error, raceFiles)
	)
	for i := 0; i < raceFiles; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for gen := 1; !stop.Load(); gen++ {
				if err := raceWrite(wc, i, gen); err != nil {
					werrs[i] = err
					return
				}
				iters.Add(1)
			}
		}(i)
	}
	defer func() {
		stop.Store(true)
		wg.Wait()
	}()

	for round := 0; round < 4; round++ {
		tag := fmt.Sprintf("race-%d", round)
		epoch, err := sc.Snapshot(tag)
		if err != nil {
			t.Fatal(err)
		}
		// Capture the pinned pre-image through the epoch read path.
		want := make([][]byte, raceFiles)
		exists := make([]bool, raceFiles)
		for i := 0; i < raceFiles; i++ {
			want[i], exists[i], err = captureAt(sc, racePath(i), epoch)
			if err != nil {
				t.Fatalf("capture %s at %d: %v", racePath(i), epoch, err)
			}
			if i < 3 && exists[i] {
				// Single-chunk files must pin one complete generation:
				// every byte identical, never a torn mix.
				for j := 1; j < len(want[i]); j++ {
					if want[i][j] != want[i][0] {
						t.Fatalf("round %d: %s pinned a torn write (byte %d: %d != %d)",
							round, racePath(i), j, want[i][j], want[i][0])
					}
				}
			}
		}
		// Stage the tag out while the writers keep hammering the files.
		before := iters.Load()
		dst := t.TempDir()
		rep, err := staging.StageOut(sc, raceDir, dst, staging.Options{Snapshot: tag, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Err(); err != nil {
			t.Fatal(err)
		}
		if after := iters.Load(); after == before {
			t.Fatalf("round %d: writers made no progress during the snapshot drain", round)
		}
		// The staged tree is exactly the capture.
		for i := 0; i < raceFiles; i++ {
			got, err := os.ReadFile(filepath.Join(dst, fmt.Sprintf("f%d", i)))
			if !exists[i] {
				if err == nil {
					t.Fatalf("round %d: %s staged but did not exist at epoch %d", round, racePath(i), epoch)
				}
				continue
			}
			if err != nil {
				t.Fatalf("round %d: staged %s: %v", round, racePath(i), err)
			}
			if !bytes.Equal(got, want[i]) {
				t.Fatalf("round %d: staged %s differs from the epoch pre-image (%d vs %d bytes)",
					round, racePath(i), len(got), len(want[i]))
			}
		}
		if err := sc.SnapshotDrop(tag); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	if err := errors.Join(werrs...); err != nil {
		t.Fatal(err)
	}
}
