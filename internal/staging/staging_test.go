package staging_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"repro/internal/client"
	"repro/internal/daemon"
	"repro/internal/rpc"
	"repro/internal/staging"
	"repro/internal/transport"
	"repro/internal/vfs"
)

// newStageCluster builds an in-process deployment and one client wired
// to it, returning the daemons so tests can inspect operation counters.
func newStageCluster(t testing.TB, nodes int, cfg client.Config) (*client.Client, []*daemon.Daemon) {
	t.Helper()
	net := transport.NewMemNetwork()
	daemons := make([]*daemon.Daemon, nodes)
	conns := make([]rpc.Conn, nodes)
	for i := 0; i < nodes; i++ {
		d, err := daemon.New(daemon.Config{ID: i, FS: vfs.NewMem(), ChunkSize: cfg.ChunkSize})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		daemons[i] = d
		net.Register(i, d.Server())
		conn, err := net.Dial(i)
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = conn
	}
	cfg.Conns = conns
	c, err := client.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EnsureRoot(); err != nil {
		t.Fatal(err)
	}
	return c, daemons
}

func sumStats(daemons []*daemon.Daemon) daemon.Stats {
	var total daemon.Stats
	for _, d := range daemons {
		total.Add(d.Stats())
	}
	return total
}

func writeHostFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
}

// patterned returns deterministic non-zero data.
func patterned(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	for i := range b {
		if b[i] == 0 {
			b[i] = 0xA5
		}
	}
	return b
}

// mustStageIn / mustStageOut run a transfer and assert it finished with
// no failures of any kind.
func mustStageIn(t *testing.T, c *client.Client, hostDir, fsDir string, opts staging.Options) *staging.Report {
	t.Helper()
	rep, err := staging.StageIn(c, hostDir, fsDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("per-file failures: %v", err)
	}
	return rep
}

func mustStageOut(t *testing.T, c *client.Client, fsDir, hostDir string, opts staging.Options) *staging.Report {
	t.Helper()
	rep, err := staging.StageOut(c, fsDir, hostDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("per-file failures: %v", err)
	}
	return rep
}

// compareTrees asserts every regular file under want has an identical
// counterpart under got, and vice versa.
func compareTrees(t *testing.T, want, got string) {
	t.Helper()
	count := func(root string) int {
		n := 0
		filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				t.Fatalf("walk %s: %v", p, err)
			}
			if !d.IsDir() {
				n++
			}
			return nil
		})
		return n
	}
	filepath.WalkDir(want, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			t.Fatalf("walk %s: %v", p, err)
		}
		if d.IsDir() {
			return nil
		}
		rel, _ := filepath.Rel(want, p)
		w, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		g, err := os.ReadFile(filepath.Join(got, rel))
		if err != nil {
			t.Fatalf("round-tripped file missing: %v", err)
		}
		if !bytes.Equal(w, g) {
			t.Fatalf("%s differs after round trip (%d vs %d bytes)", rel, len(w), len(g))
		}
		return nil
	})
	if cw, cg := count(want), count(got); cw != cg {
		t.Fatalf("tree file counts differ: %d vs %d", cw, cg)
	}
}

// allocatedBytes reports a host file's allocated (non-hole) bytes, or -1
// when the platform does not expose block counts.
func allocatedBytes(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return -1
	}
	st, ok := fi.Sys().(*syscall.Stat_t)
	if !ok {
		return -1
	}
	return st.Blocks * 512
}

// TestStageRoundTripFidelity stages a mixed tree in and back out and
// requires byte identity, including a sparse file whose holes must
// survive the round trip.
func TestStageRoundTripFidelity(t *testing.T) {
	for _, async := range []bool{false, true} {
		t.Run(fmt.Sprintf("async=%v", async), func(t *testing.T) {
			c, _ := newStageCluster(t, 4, client.Config{ChunkSize: 64 << 10, AsyncWrites: async})
			src, out := t.TempDir(), t.TempDir()

			writeHostFile(t, filepath.Join(src, "small.txt"), []byte("hello staging"))
			writeHostFile(t, filepath.Join(src, "empty.dat"), nil)
			writeHostFile(t, filepath.Join(src, "sub", "with space.txt"), []byte("spaced name"))
			// Large: several chunks across every daemon.
			writeHostFile(t, filepath.Join(src, "sub", "deep", "large.bin"), patterned(1<<20, 1))
			// Sparse: data, a 2 MiB hole, data, then a 1 MiB trailing hole.
			sp, err := os.Create(filepath.Join(src, "sparse.bin"))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sp.WriteAt(patterned(8<<10, 2), 0); err != nil {
				t.Fatal(err)
			}
			if _, err := sp.WriteAt(patterned(8<<10, 3), 2<<20); err != nil {
				t.Fatal(err)
			}
			if err := sp.Truncate(3 << 20); err != nil {
				t.Fatal(err)
			}
			if err := sp.Close(); err != nil {
				t.Fatal(err)
			}

			rep := mustStageIn(t, c, src, "/job", staging.Options{Workers: 4})
			if rep.Files != 5 {
				t.Fatalf("stage-in moved %d files, want 5", rep.Files)
			}
			if rep.Dirs != 2 {
				t.Fatalf("stage-in created %d dirs, want 2", rep.Dirs)
			}
			info, err := c.Stat("/job/sparse.bin")
			if err != nil {
				t.Fatal(err)
			}
			if info.Size() != 3<<20 {
				t.Fatalf("sparse file staged to %d bytes, want %d", info.Size(), 3<<20)
			}

			rep = mustStageOut(t, c, "/job", out, staging.Options{Workers: 4})
			if rep.Files != 5 {
				t.Fatalf("stage-out moved %d files, want 5", rep.Files)
			}
			compareTrees(t, src, out)

			// Holes must come back as holes when the host FS supports
			// them (judged by whether the source file is itself sparse).
			srcAlloc := allocatedBytes(filepath.Join(src, "sparse.bin"))
			outAlloc := allocatedBytes(filepath.Join(out, "sparse.bin"))
			if srcAlloc >= 0 && srcAlloc < 3<<20 {
				if outAlloc < 0 || outAlloc >= 3<<20 {
					t.Fatalf("sparseness lost: src allocates %d bytes, round-trip allocates %d", srcAlloc, outAlloc)
				}
			}
		})
	}
}

// TestStageSegmentedLargeFile forces the striped large-file path (tiny
// SegmentBytes) and requires byte fidelity for a file whose data and
// holes straddle segment boundaries, in both directions.
func TestStageSegmentedLargeFile(t *testing.T) {
	for _, async := range []bool{false, true} {
		t.Run(fmt.Sprintf("async=%v", async), func(t *testing.T) {
			c, _ := newStageCluster(t, 4, client.Config{ChunkSize: 16 << 10, AsyncWrites: async})
			src, out := t.TempDir(), t.TempDir()
			// 1 MiB file, 128 KiB segments → 8 segments. Data blocks at
			// irregular offsets; the rest is holes, including the first
			// and last segments entirely.
			f, err := os.Create(filepath.Join(src, "big.bin"))
			if err != nil {
				t.Fatal(err)
			}
			for _, off := range []int64{140 << 10, 300 << 10, 511 << 10, 700 << 10} {
				if _, err := f.WriteAt(patterned(24<<10, off), off); err != nil {
					t.Fatal(err)
				}
			}
			if err := f.Truncate(1 << 20); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			opts := staging.Options{Workers: 4, SegmentBytes: 128 << 10, BufBytes: 64 << 10}
			rep := mustStageIn(t, c, src, "/job", opts)
			if rep.Files != 1 || rep.Bytes != 1<<20 {
				t.Fatalf("stage-in report: %s", rep.Summary())
			}
			info, err := c.Stat("/job/big.bin")
			if err != nil {
				t.Fatal(err)
			}
			if info.Size() != 1<<20 {
				t.Fatalf("staged size = %d, want %d", info.Size(), 1<<20)
			}
			rep = mustStageOut(t, c, "/job", out, opts)
			if rep.Files != 1 || rep.Bytes != 1<<20 {
				t.Fatalf("stage-out report: %s", rep.Summary())
			}
			compareTrees(t, src, out)

			// Restage over the existing tree (the O_TRUNC-once path) and
			// verify again.
			rep = mustStageIn(t, c, src, "/job", opts)
			if rep.Files != 1 {
				t.Fatalf("restage report: %s", rep.Summary())
			}
			out2 := t.TempDir()
			mustStageOut(t, c, "/job", out2, opts)
			compareTrees(t, src, out2)
		})
	}
}

// TestStageInHoleOnlyFileMovesNoBytes stages a file that is one giant
// hole: the namespace must get the full size, the wire must carry zero
// chunk payload.
func TestStageInHoleOnlyFileMovesNoBytes(t *testing.T) {
	c, daemons := newStageCluster(t, 4, client.Config{ChunkSize: 64 << 10})
	src := t.TempDir()
	f, err := os.Create(filepath.Join(src, "hole.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(8 << 20); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rep := mustStageIn(t, c, src, "/job", staging.Options{})
	if rep.Files != 1 || rep.Bytes != 8<<20 {
		t.Fatalf("report = %d files, %d bytes; want 1 file, %d bytes", rep.Files, rep.Bytes, 8<<20)
	}
	if st := sumStats(daemons); st.WriteBytes != 0 {
		t.Fatalf("hole-only stage-in pushed %d chunk bytes, want 0", st.WriteBytes)
	}
	info, err := c.Stat("/job/hole.dat")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 8<<20 {
		t.Fatalf("staged size = %d, want %d", info.Size(), 8<<20)
	}
	// The hole reads as zeros.
	fd, err := c.Open("/job/hole.dat", client.O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(fd)
	buf := make([]byte, 4096)
	if _, err := c.ReadAt(fd, buf, 4<<20); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("hole read back non-zero")
		}
	}
}

// TestStageEmptyFileRoundTrip covers the zero-size edge end to end.
func TestStageEmptyFileRoundTrip(t *testing.T) {
	c, _ := newStageCluster(t, 2, client.Config{ChunkSize: 64 << 10})
	src, out := t.TempDir(), t.TempDir()
	writeHostFile(t, filepath.Join(src, "empty"), nil)
	rep := mustStageIn(t, c, src, "/job", staging.Options{})
	if rep.Files != 1 || rep.Bytes != 0 {
		t.Fatalf("stage-in report = %+v", rep)
	}
	rep = mustStageOut(t, c, "/job", out, staging.Options{})
	if rep.Files != 1 || rep.Bytes != 0 {
		t.Fatalf("stage-out report = %+v", rep)
	}
	fi, err := os.Stat(filepath.Join(out, "empty"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("empty file came back %d bytes", fi.Size())
	}
}

// TestStageDeepAndWideTree pushes a directory past one ReadDir page
// (4096 entries) plus a deep chain, and requires the full population to
// round-trip.
func TestStageDeepAndWideTree(t *testing.T) {
	const wide = 4200 // > proto.DefaultReadDirPage
	c, _ := newStageCluster(t, 4, client.Config{ChunkSize: 64 << 10})
	src, out := t.TempDir(), t.TempDir()
	if err := os.MkdirAll(filepath.Join(src, "wide"), 0o777); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < wide; i++ {
		if err := os.WriteFile(filepath.Join(src, "wide", fmt.Sprintf("f%05d", i)), nil, 0o666); err != nil {
			t.Fatal(err)
		}
	}
	deep := filepath.Join(src, "a", "b", "c", "d", "e")
	writeHostFile(t, filepath.Join(deep, "leaf.txt"), []byte("deep leaf"))

	rep := mustStageIn(t, c, src, "/job", staging.Options{Workers: 8})
	if rep.Files != wide+1 {
		t.Fatalf("stage-in moved %d files, want %d", rep.Files, wide+1)
	}
	ents, err := c.ReadDir("/job/wide")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != wide {
		t.Fatalf("cluster listing has %d entries, want %d", len(ents), wide)
	}
	rep = mustStageOut(t, c, "/job", out, staging.Options{Workers: 8})
	if rep.Files != wide+1 {
		t.Fatalf("stage-out moved %d files, want %d", rep.Files, wide+1)
	}
	compareTrees(t, src, out)
}

// TestStageInPartialFailure plants a directory where a file must land:
// that file fails, is recorded, and its siblings still move.
func TestStageInPartialFailure(t *testing.T) {
	c, _ := newStageCluster(t, 2, client.Config{ChunkSize: 64 << 10})
	src := t.TempDir()
	writeHostFile(t, filepath.Join(src, "collide.txt"), []byte("cannot land"))
	writeHostFile(t, filepath.Join(src, "ok.txt"), []byte("sibling moves"))
	if err := c.Mkdir("/job"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/job/collide.txt"); err != nil {
		t.Fatal(err)
	}

	rep, err := staging.StageIn(c, src, "/job", staging.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 || rep.Files != 1 {
		t.Fatalf("report = %d moved, %d failed; want 1 and 1", rep.Files, rep.Failed)
	}
	rerr := rep.Err()
	if rerr == nil {
		t.Fatal("partial failure reported no error")
	}
	if !strings.Contains(rerr.Error(), "/job/collide.txt") {
		t.Fatalf("failure does not name the path: %v", rerr)
	}
	fd, err := c.Open("/job/ok.txt", client.O_RDONLY)
	if err != nil {
		t.Fatalf("sibling did not move: %v", err)
	}
	defer c.Close(fd)
	buf := make([]byte, 32)
	n, _ := c.ReadAt(fd, buf, 0)
	if string(buf[:n]) != "sibling moves" {
		t.Fatalf("sibling content = %q", buf[:n])
	}
}

// TestStageOutPartialFailure plants a host directory where a cluster
// file must land; the sibling still moves and the failure names the
// path.
func TestStageOutPartialFailure(t *testing.T) {
	c, _ := newStageCluster(t, 2, client.Config{ChunkSize: 64 << 10})
	src, out := t.TempDir(), t.TempDir()
	writeHostFile(t, filepath.Join(src, "blocked.txt"), []byte("x"))
	writeHostFile(t, filepath.Join(src, "fine.txt"), []byte("moves fine"))
	mustStageIn(t, c, src, "/job", staging.Options{})
	if err := os.MkdirAll(filepath.Join(out, "blocked.txt"), 0o777); err != nil {
		t.Fatal(err)
	}

	rep, err := staging.StageOut(c, "/job", out, staging.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 || rep.Files != 1 {
		t.Fatalf("report = %d moved, %d failed; want 1 and 1", rep.Files, rep.Failed)
	}
	if rerr := rep.Err(); rerr == nil || !strings.Contains(rerr.Error(), "blocked.txt") {
		t.Fatalf("failure does not name the path: %v", rerr)
	}
	got, err := os.ReadFile(filepath.Join(out, "fine.txt"))
	if err != nil || string(got) != "moves fine" {
		t.Fatalf("sibling = %q, %v", got, err)
	}
}

// TestIncrementalStageOut verifies the manifest-driven skip: an
// unmodified tree moves zero bytes, a modified file moves alone, and a
// repeat pass skips everything again.
func TestIncrementalStageOut(t *testing.T) {
	c, daemons := newStageCluster(t, 4, client.Config{ChunkSize: 64 << 10})
	src := t.TempDir()
	manifest := filepath.Join(t.TempDir(), "manifest.txt")
	writeHostFile(t, filepath.Join(src, "a.dat"), patterned(256<<10, 10))
	writeHostFile(t, filepath.Join(src, "sub", "b.dat"), patterned(32<<10, 11))
	writeHostFile(t, filepath.Join(src, "c.txt"), []byte("small and stable"))

	opts := staging.Options{Manifest: manifest}
	mustStageIn(t, c, src, "/job", opts)

	// Pass 1: nothing changed — everything skips, zero bytes move.
	inc := staging.Options{Manifest: manifest, Incremental: true}
	before := sumStats(daemons)
	rep := mustStageOut(t, c, "/job", src, inc)
	if rep.Files != 0 || rep.Bytes != 0 {
		t.Fatalf("unmodified tree moved %d files (%d bytes), want 0", rep.Files, rep.Bytes)
	}
	if rep.Skipped != 3 {
		t.Fatalf("skipped = %d, want 3", rep.Skipped)
	}
	if st := sumStats(daemons); st.ReadBytes != before.ReadBytes {
		t.Fatalf("incremental skip still read %d chunk bytes", st.ReadBytes-before.ReadBytes)
	}

	// Modify one file in the cluster; only it should move.
	fd, err := c.Open("/job/sub/b.dat", client.O_WRONLY)
	if err != nil {
		t.Fatal(err)
	}
	update := patterned(32<<10, 12)
	if _, err := c.WriteAt(fd, update, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}
	rep = mustStageOut(t, c, "/job", src, inc)
	if rep.Files != 1 || rep.Skipped != 2 {
		t.Fatalf("after modification: moved=%d skipped=%d, want 1 and 2", rep.Files, rep.Skipped)
	}
	if rep.Bytes != 32<<10 {
		t.Fatalf("moved %d bytes, want %d", rep.Bytes, 32<<10)
	}
	got, err := os.ReadFile(filepath.Join(src, "sub", "b.dat"))
	if err != nil || !bytes.Equal(got, update) {
		t.Fatalf("modified file not refreshed on host: %v", err)
	}

	// Pass 3: the rewritten manifest covers the refreshed file too.
	rep = mustStageOut(t, c, "/job", src, inc)
	if rep.Files != 0 || rep.Skipped != 3 {
		t.Fatalf("repeat pass: moved=%d skipped=%d, want 0 and 3", rep.Files, rep.Skipped)
	}
}

// TestIncrementalNeedsManifest pins the structural error.
func TestIncrementalNeedsManifest(t *testing.T) {
	c, _ := newStageCluster(t, 1, client.Config{})
	if _, err := staging.StageOut(c, "/", t.TempDir(), staging.Options{Incremental: true}); err == nil {
		t.Fatal("incremental stage-out without a manifest accepted")
	}
}

// TestManifestRoundTrip exercises the codec, including paths with
// spaces, and rejects traversal and garbage.
func TestManifestRoundTrip(t *testing.T) {
	m := staging.NewManifest()
	m.Put(staging.Entry{Rel: "sub dir/file with spaces.txt", Size: 42, Hash: "abcd", MTimeNS: 7})
	m.Put(staging.Entry{Rel: "sub dir", Dir: true, MTimeNS: 6})
	m.Put(staging.Entry{Rel: "plain", Size: 0, Hash: "ef01", MTimeNS: 9})
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := staging.DecodeManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("decoded %d entries, want 3", got.Len())
	}
	e, ok := got.Get("sub dir/file with spaces.txt")
	if !ok || e.Size != 42 || e.Hash != "abcd" || e.MTimeNS != 7 || e.Dir {
		t.Fatalf("entry = %+v", e)
	}
	if e, ok := got.Get("sub dir"); !ok || !e.Dir {
		t.Fatalf("dir entry = %+v, ok=%v", e, ok)
	}

	for _, bad := range []string{
		"",
		"not-a-manifest\n",
		"gekkofs-stage-manifest v1\nf x abcd 0 p\n",
		"gekkofs-stage-manifest v1\nf 1 abcd 0 ../escape\n",
		"gekkofs-stage-manifest v1\nf 1 abcd 0 /abs\n",
		"gekkofs-stage-manifest v1\nz 1 abcd 0 p\n",
		"gekkofs-stage-manifest v1\nf 1 abcd\n",
	} {
		if _, err := staging.DecodeManifest(strings.NewReader(bad)); err == nil {
			t.Fatalf("malformed manifest accepted: %q", bad)
		}
	}
}

// TestManifestRejectsLineBreaks covers both sides: Encode refuses an
// injected entry, and a manifest-recording stage-in fails a
// newline-bearing filename up front instead of corrupting the manifest.
func TestManifestRejectsLineBreaks(t *testing.T) {
	m := staging.NewManifest()
	m.Put(staging.Entry{Rel: "a\nf 0 deadbeef 9 victim", Size: 1, Hash: "ab"})
	if err := m.Encode(&bytes.Buffer{}); err == nil {
		t.Fatal("newline-bearing rel encoded")
	}

	c, _ := newStageCluster(t, 2, client.Config{})
	src := t.TempDir()
	writeHostFile(t, filepath.Join(src, "ok.txt"), []byte("fine"))
	if err := os.WriteFile(filepath.Join(src, "bad\nname"), []byte("x"), 0o666); err != nil {
		t.Skipf("filesystem rejects newline names: %v", err)
	}
	manifest := filepath.Join(t.TempDir(), "m.txt")
	rep, err := staging.StageIn(c, src, "/job", staging.Options{Manifest: manifest})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 || rep.Files != 1 {
		t.Fatalf("report = %d moved, %d failed; want 1 and 1", rep.Files, rep.Failed)
	}
	if _, err := staging.LoadManifest(manifest); err != nil {
		t.Fatalf("manifest corrupted by newline name: %v", err)
	}
}

// TestStageOutDaemonDownIsLoud kills a daemon between stage-in and
// stage-out: teardown must report the failure, never a clean transfer
// that quietly lost result data.
func TestStageOutDaemonDownIsLoud(t *testing.T) {
	c, daemons := newStageCluster(t, 4, client.Config{ChunkSize: 64 << 10})
	src := t.TempDir()
	manifest := filepath.Join(t.TempDir(), "m.txt")
	for i := 0; i < 8; i++ {
		writeHostFile(t, filepath.Join(src, fmt.Sprintf("f%d.dat", i)), patterned(8<<10, int64(i)))
	}
	mustStageIn(t, c, src, "/job", staging.Options{Manifest: manifest})
	daemons[2].Close()
	rep, _ := staging.StageOut(c, "/job", t.TempDir(),
		staging.Options{Manifest: manifest, Incremental: true})
	if rep.Err() == nil {
		t.Fatal("stage-out with a dead daemon reported a clean transfer")
	}
}

// TestStageInUnsupportedType records symlinks as failures without
// aborting the transfer.
func TestStageInUnsupportedType(t *testing.T) {
	c, _ := newStageCluster(t, 2, client.Config{})
	src := t.TempDir()
	writeHostFile(t, filepath.Join(src, "real.txt"), []byte("data"))
	if err := os.Symlink("real.txt", filepath.Join(src, "link")); err != nil {
		t.Skipf("symlinks unavailable: %v", err)
	}
	rep, err := staging.StageIn(c, src, "/job", staging.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unsupported != 1 || rep.Files != 1 || rep.Failed != 0 {
		t.Fatalf("report: %s", rep.Summary())
	}
	// A tree whose data all moved is a clean transfer: unsupported
	// entries are notes, not errors.
	if err := rep.Err(); err != nil {
		t.Fatalf("unsupported entry failed the transfer: %v", err)
	}
	if len(rep.Notes) != 1 || !strings.Contains(rep.Notes[0], "link") {
		t.Fatalf("notes = %q", rep.Notes)
	}
}
