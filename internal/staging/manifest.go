package staging

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The staging manifest records what a stage-in put into the cluster —
// per file its size, content hash and the cluster mtime observed when
// the copy completed — so a later stage-out can prove a file unmodified
// and skip it (XUFS-style resumable synchronization back to the home
// file system), and gkfs-fsck can cross-check a live namespace against
// what was staged. It is a plain line-oriented text file on the host
// side; the cluster never stores it.

// manifestMagic is the first line of every manifest file.
const manifestMagic = "gekkofs-stage-manifest v1"

// ErrBadManifest reports a manifest file that does not parse.
var ErrBadManifest = errors.New("staging: malformed manifest")

// Entry is one manifest record.
type Entry struct {
	// Rel is the path relative to the staged root, slash-separated,
	// never absolute and never escaping the root.
	Rel string
	// Dir marks a directory entry (Size/Hash are meaningless).
	Dir bool
	// Size is the file size in bytes at recording time.
	Size int64
	// Hash is the hex SHA-256 of the file content at recording time.
	Hash string
	// MTimeNS is the cluster mtime (UnixNano) observed when the entry was
	// recorded; a cluster file whose mtime moved past it has been
	// modified since.
	MTimeNS int64
}

// Manifest is a set of entries keyed by relative path. Methods are not
// safe for concurrent use; the staging engine serializes access.
type Manifest struct {
	entries map[string]Entry
}

// NewManifest returns an empty manifest.
func NewManifest() *Manifest {
	return &Manifest{entries: make(map[string]Entry)}
}

// Put inserts or replaces an entry.
func (m *Manifest) Put(e Entry) { m.entries[e.Rel] = e }

// Get looks an entry up by relative path.
func (m *Manifest) Get(rel string) (Entry, bool) {
	e, ok := m.entries[rel]
	return e, ok
}

// Delete removes an entry (a file that failed to transfer must not be
// skippable on the next incremental pass).
func (m *Manifest) Delete(rel string) { delete(m.entries, rel) }

// Len reports the entry count.
func (m *Manifest) Len() int { return len(m.entries) }

// Entries returns all entries sorted by relative path.
func (m *Manifest) Entries() []Entry {
	out := make([]Entry, 0, len(m.entries))
	for _, e := range m.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rel < out[j].Rel })
	return out
}

// checkRel validates a relative path for manifest use: slash-form,
// clean, unable to escape the staging root (a hostile manifest must not
// redirect a stage-out outside its destination directory), and free of
// line breaks (a newline-bearing name would otherwise split into — or
// forge — manifest lines). Both the decode and encode sides apply it.
func checkRel(rel string) error {
	if rel == "" || rel == "." || path.IsAbs(rel) {
		return fmt.Errorf("%w: bad path %q", ErrBadManifest, rel)
	}
	if path.Clean(rel) != rel || rel == ".." || strings.HasPrefix(rel, "../") {
		return fmt.Errorf("%w: unclean path %q", ErrBadManifest, rel)
	}
	if strings.ContainsAny(rel, "\n\r") {
		return fmt.Errorf("%w: line break in path %q", ErrBadManifest, rel)
	}
	return nil
}

// Encode writes the manifest: a magic line, then one
// `<kind> <size> <hash> <mtime> <relpath>` line per entry, sorted so
// encodings are deterministic. Paths may contain spaces — the path is
// the final field and runs to end of line.
func (m *Manifest) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, manifestMagic)
	for _, e := range m.Entries() {
		if err := checkRel(e.Rel); err != nil {
			return err
		}
		if e.Dir {
			fmt.Fprintf(bw, "d 0 - %d %s\n", e.MTimeNS, e.Rel)
			continue
		}
		hash := e.Hash
		if hash == "" {
			hash = "-"
		}
		fmt.Fprintf(bw, "f %d %s %d %s\n", e.Size, hash, e.MTimeNS, e.Rel)
	}
	return bw.Flush()
}

// DecodeManifest parses what Encode wrote.
func DecodeManifest(r io.Reader) (*Manifest, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("%w: empty file", ErrBadManifest)
	}
	if sc.Text() != manifestMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadManifest, sc.Text())
	}
	m := NewManifest()
	line := 1
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		fields := strings.SplitN(text, " ", 5)
		if len(fields) != 5 {
			return nil, fmt.Errorf("%w: line %d: %q", ErrBadManifest, line, text)
		}
		size, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || size < 0 {
			return nil, fmt.Errorf("%w: line %d: bad size %q", ErrBadManifest, line, fields[1])
		}
		mtime, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: bad mtime %q", ErrBadManifest, line, fields[3])
		}
		rel := fields[4]
		if err := checkRel(rel); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		e := Entry{Rel: rel, Size: size, MTimeNS: mtime}
		switch fields[0] {
		case "d":
			e.Dir = true
			e.Size = 0
		case "f":
			if fields[2] != "-" {
				e.Hash = fields[2]
			}
		default:
			return nil, fmt.Errorf("%w: line %d: bad kind %q", ErrBadManifest, line, fields[0])
		}
		m.Put(e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("staging: reading manifest: %w", err)
	}
	return m, nil
}

// LoadManifest reads a manifest file from the host file system.
func LoadManifest(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeManifest(f)
}

// WriteFile stores the manifest at path atomically (temp file + rename),
// so a crashed stage never leaves a half-written manifest behind.
func (m *Manifest) WriteFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".gkfs-manifest-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := m.Encode(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
