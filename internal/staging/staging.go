// Package staging is the data-movement layer between a GekkoFS
// deployment and the permanent parallel file system. GekkoFS is a
// temporary file system living for one job (paper §I, §III): inputs must
// be staged in from the PFS at startup and results flushed back out at
// teardown. This package implements that lifecycle as a parallel
// transfer engine over the client library:
//
//   - Stage-in walks a host directory tree, creates the namespace
//     through the vectored metadata plane (CreateMany batches, one RPC
//     per daemon), and pumps file data through a bounded worker pool —
//     small files take a descriptor-free fast path (WritePath + batched
//     GrowMany size updates), large files stream through descriptors and
//     benefit from the write-behind pipeline when the client has one.
//   - Stage-out drains the cluster tree via paginated ReadDir, recreates
//     it on the host file system, and can run incrementally against a
//     staging manifest: files provably unmodified since stage-in move
//     zero bytes. File data streams through read-ahead descriptors
//     (client.OpenReadAhead), so the sequential copy loops ride the
//     prefetch window instead of a synchronous fan-out per buffer.
//   - Both directions are sparse-aware: runs of zeros are never
//     transferred — they become holes on whichever side receives them.
//
// Per-file failures never abort a transfer; they are collected into the
// Report (errors.Join semantics) while siblings keep moving.
package staging

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/meta"
	"repro/internal/proto"
)

// Defaults and tuning constants.
const (
	// DefaultWorkers is the transfer pool size when Options.Workers is 0.
	DefaultWorkers = 8
	// DefaultBufBytes is the stage-in per-worker streaming buffer when
	// Options.BufBytes is 0. One-MiB blocks feed the write-behind window
	// as single RPCs (smooth pipelining) and stay cache-resident through
	// the scan-and-scatter; bigger blocks measurably lose throughput.
	DefaultBufBytes = 1 << 20
	// DefaultReadBufBytes is the stage-out equivalent. Reads have no
	// write-behind window — each buffer is one synchronous parallel
	// fan-out — so larger blocks mean fewer round trips.
	DefaultReadBufBytes = 4 << 20
	// DefaultSegmentBytes is the large-file striping granularity when
	// Options.SegmentBytes is 0.
	DefaultSegmentBytes = 8 << 20
	// zeroProbe is the zero-run detection granularity: aligned runs of
	// zeros at least this long are transferred as holes.
	zeroProbe = 4 << 10
	// growBatchSize bounds how many small-file size updates one worker
	// accumulates before flushing them through GrowMany.
	growBatchSize = 256
)

// Options tune a transfer. The zero value is a sensible default.
type Options struct {
	// Workers bounds concurrent file transfers (default DefaultWorkers).
	Workers int
	// BufBytes is the per-worker streaming buffer size (defaults:
	// DefaultBufBytes staging in, DefaultReadBufBytes staging out).
	// Files up to this size take stage-in's descriptor-free small-file
	// path.
	BufBytes int
	// SegmentBytes is the striping granularity for huge files (default
	// DefaultSegmentBytes): a file larger than this is transferred as
	// concurrent segments, each pumped by its own worker over its own
	// descriptor, so one giant checkpoint saturates the cluster the way
	// many files do. Content hashing needs a sequential stream, so
	// manifest-recording transfers keep one worker per file.
	SegmentBytes int64
	// Manifest, when non-empty, names a host-side manifest file: stage-in
	// records every transferred file (size, SHA-256, cluster mtime) and
	// stage-out rewrites it to match what landed on the host.
	Manifest string
	// Incremental makes stage-out skip files that are provably unmodified
	// since the manifest was written: cluster size and mtime still match
	// the entry, and the host copy verifies against the recorded hash.
	// Requires Manifest.
	Incremental bool
	// Snapshot, when non-empty, names a committed snapshot tag: stage-out
	// reads the namespace and every byte as pinned at that tag's epoch,
	// so concurrent writers never tear the staged tree. Incompatible with
	// Incremental (a snapshot's frozen mtimes defeat the skip check) and
	// ignored by stage-in.
	Snapshot string
}

func (o Options) withDefaults(defaultBuf int) Options {
	if o.Workers <= 0 {
		o.Workers = DefaultWorkers
	}
	if o.BufBytes <= 0 {
		o.BufBytes = defaultBuf
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	return o
}

// Report is the structured outcome of one transfer. Partial failure is
// the normal failure mode: Failed counts files (or subtrees) that did
// not move, Errs says why, and everything else moved regardless.
type Report struct {
	// Dirs counts directories created on the receiving side.
	Dirs int
	// Files counts files fully transferred; Bytes their logical size sum
	// (holes count at full extent — the wire moves far less for them).
	Files int
	Bytes int64
	// Skipped counts files an incremental stage-out proved unmodified;
	// SkippedBytes their logical sizes. Skipped files move zero bytes.
	Skipped      int
	SkippedBytes int64
	// Failed counts files and directories that did not transfer.
	Failed int
	// Unsupported counts entries staging deliberately cannot move —
	// symlinks, devices (GekkoFS has neither, paper §III-A). They are
	// listed in Notes, not in Errs: a tree whose data all moved is a
	// clean transfer even when markers like symlinks stayed behind.
	Unsupported int
	// Duration is the wall-clock transfer time.
	Duration time.Duration
	// Errs holds one error per failure, each naming the operation and
	// path.
	Errs []error
	// Notes records non-fatal observations (one per unsupported entry).
	Notes []string
}

// Err joins the per-file failures; nil means a fully clean transfer.
func (r *Report) Err() error { return errors.Join(r.Errs...) }

// Summary renders the report as one stable, grep-friendly line.
func (r *Report) Summary() string {
	return fmt.Sprintf("moved=%d files (%d bytes), dirs=%d, skipped=%d (%d bytes), failed=%d, unsupported=%d, took=%v",
		r.Files, r.Bytes, r.Dirs, r.Skipped, r.SkippedBytes, r.Failed, r.Unsupported,
		r.Duration.Round(time.Millisecond))
}

// errUnsupportedType reports a walk entry staging cannot move (GekkoFS
// has no symlinks or special files — paper §III-A).
var errUnsupportedType = errors.New("staging: unsupported file type (not a regular file or directory)")

// engine carries one transfer's shared state; rep and mf are guarded by
// mu (workers report concurrently).
type engine struct {
	c    *client.Client
	opts Options

	// snap pins every namespace and data read to snapEpoch (stage-out
	// from a committed snapshot tag); immutable after StageOut resolves
	// the tag.
	snap      bool
	snapEpoch uint64

	mu  sync.Mutex
	rep Report    // guarded by mu
	mf  *Manifest // guarded by mu; nil when no manifest is in play
}

// statFS stats a cluster path, pinned to the snapshot epoch when one is
// in play.
func (e *engine) statFS(p string) (client.FileInfo, error) {
	if e.snap {
		return e.c.StatAt(p, e.snapEpoch)
	}
	return e.c.Stat(p)
}

// readDirFS lists a cluster directory, pinned to the snapshot epoch
// when one is in play.
func (e *engine) readDirFS(p string) ([]client.DirEntry, error) {
	if e.snap {
		return e.c.ReadDirAt(p, e.snapEpoch)
	}
	return e.c.ReadDir(p)
}

func (e *engine) fail(op, path string, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rep.Failed++
	e.rep.Errs = append(e.rep.Errs, fmt.Errorf("%s %s: %w", op, path, err))
}

// unsupported records an entry staging cannot move without failing the
// transfer.
func (e *engine) unsupported(path string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rep.Unsupported++
	e.rep.Notes = append(e.rep.Notes, fmt.Sprintf("stage-in %s: %v", path, errUnsupportedType))
}

// done records one fully transferred file and, when a manifest is being
// built, its entry.
func (e *engine) done(rel string, size int64, h hash.Hash, mtimeNS int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rep.Files++
	e.rep.Bytes += size
	if e.mf != nil {
		ent := Entry{Rel: rel, Size: size, MTimeNS: mtimeNS}
		if h != nil {
			ent.Hash = hex.EncodeToString(h.Sum(nil))
		}
		e.mf.Put(ent)
	}
}

func (e *engine) skip(size int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rep.Skipped++
	e.rep.SkippedBytes += size
}

// report stamps the elapsed time and hands out the engine's report.
// Every StageIn/StageOut exit funnels through here, so the guarded
// fields are touched under mu even in the single-threaded phases.
func (e *engine) report(begin time.Time) *Report {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rep.Duration = time.Since(begin)
	return &e.rep
}

// dirDone counts one created directory.
func (e *engine) dirDone() {
	e.mu.Lock()
	e.rep.Dirs++
	e.mu.Unlock()
}

// setManifest installs the manifest during single-threaded setup.
func (e *engine) setManifest(mf *Manifest) {
	e.mu.Lock()
	e.mf = mf
	e.mu.Unlock()
}

// hasManifest reports whether a manifest is in play.
func (e *engine) hasManifest() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.mf != nil
}

// putEntry records a manifest entry; a no-op without a manifest.
func (e *engine) putEntry(ent Entry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.mf != nil {
		e.mf.Put(ent)
	}
}

// writeManifest persists the manifest when one is in play.
func (e *engine) writeManifest() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.mf == nil {
		return nil
	}
	return e.mf.WriteFile(e.opts.Manifest)
}

// dropEntry forgets a manifest entry whose file failed to transfer, so a
// later incremental pass cannot wrongly skip it.
func (e *engine) dropEntry(rel string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.mf != nil {
		e.mf.Delete(rel)
	}
}

// lookupEntry reads a manifest entry under the engine lock (workers
// update the manifest concurrently).
func (e *engine) lookupEntry(rel string) (Entry, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.mf == nil {
		return Entry{}, false
	}
	return e.mf.Get(rel)
}

// newHash returns a SHA-256 only when a manifest wants one — hashing is
// pure overhead otherwise.
func (e *engine) newHash() hash.Hash {
	if !e.hasManifest() {
		return nil
	}
	return sha256.New()
}

// recordDone reports a transferred file, stat'ing it first when a
// manifest entry must be recorded: the entry carries the cluster's own
// mtime, not this client's wall clock — a wall-clock stamp is strictly
// later than the write stamps and would let a clock-lagging writer's
// later modification hide under it (unsound incremental skips). The
// small-file batch path records from a batched StatMany instead of
// calling this.
func (e *engine) recordDone(rel, fsPath string, size int64, h hash.Hash) {
	if !e.hasManifest() {
		e.done(rel, size, nil, 0)
		return
	}
	info, err := e.c.Stat(fsPath)
	if err != nil {
		e.fail("stage-in stat", fsPath, err)
		return
	}
	e.done(rel, size, h, info.ModTime().UnixNano())
}

// manifestable reports whether rel can be recorded in the line-oriented
// manifest. When a manifest is active, unrepresentable names (line
// breaks, unclean forms) fail their file up front — transferring it and
// then corrupting or forging manifest lines would be worse.
func (e *engine) manifestable(rel string) error {
	if !e.hasManifest() {
		return nil
	}
	return checkRel(rel)
}

// --- zero-run detection ---

var zeroBlock [zeroProbe]byte

// isZero reports whether b is all zeros (vectorized via bytes.Equal
// against a static zero block; non-zero data exits on the first word).
func isZero(b []byte) bool {
	for len(b) >= zeroProbe {
		if !bytes.Equal(b[:zeroProbe], zeroBlock[:]) {
			return false
		}
		b = b[zeroProbe:]
	}
	return bytes.Equal(b, zeroBlock[:len(b)])
}

// forNonzero calls fn for each maximal run of zeroProbe-granular blocks
// of p containing any nonzero byte. Aligned zero runs are simply never
// visited: unwritten GekkoFS regions and host-file holes both read as
// zeros, so skipping them is lossless and is what turns sparse files
// back into sparse files on the other side.
func forNonzero(p []byte, fn func(lo, hi int64) error) error {
	runStart := -1
	for b := 0; b < len(p); b += zeroProbe {
		end := min(b+zeroProbe, len(p))
		if isZero(p[b:end]) {
			if runStart >= 0 {
				if err := fn(int64(runStart), int64(b)); err != nil {
					return err
				}
				runStart = -1
			}
		} else if runStart < 0 {
			runStart = b
		}
	}
	if runStart >= 0 {
		return fn(int64(runStart), int64(len(p)))
	}
	return nil
}

// --- path plumbing ---

// fsJoin joins a cluster root and a slash-relative path.
func fsJoin(root, rel string) string {
	if rel == "" || rel == "." {
		return root
	}
	if root == meta.Root {
		return "/" + rel
	}
	return root + "/" + rel
}

// --- segmented large-file transfer ---

// segFile coordinates the segments of one striped large-file transfer:
// the file counts as moved only when every segment landed, and the first
// failing segment reports for all of them.
type segFile struct {
	rel, fsPath, hostPath string
	size                  int64
	remaining             atomic.Int32
	failed                atomic.Bool
	maxEnd                atomic.Int64 // stage-out: highest byte read back
}

// segFail records a segment failure exactly once per file.
func (e *engine) segFail(sf *segFile, op string, err error) {
	if sf.failed.CompareAndSwap(false, true) {
		e.fail(op, sf.fsPath, err)
	}
}

// raiseMax lifts sf.maxEnd to at least end.
func (sf *segFile) raiseMax(end int64) {
	for {
		cur := sf.maxEnd.Load()
		if end <= cur || sf.maxEnd.CompareAndSwap(cur, end) {
			return
		}
	}
}

// segments appends one work item per SegmentBytes-sized slice of sf.
func appendSegments(queue []stageWork, sf *segFile, segBytes int64) []stageWork {
	nseg := (sf.size + segBytes - 1) / segBytes
	sf.remaining.Store(int32(nseg))
	for s := int64(0); s < nseg; s++ {
		queue = append(queue, stageWork{
			sf:  sf,
			off: s * segBytes,
			end: min((s+1)*segBytes, sf.size),
		})
	}
	return queue
}

// stageWork is one worker-pool item: a whole file, or one segment of a
// striped large file (sf != nil).
type stageWork struct {
	file     inFile // stage-in whole-file
	out      outJob // stage-out whole-file
	sf       *segFile
	off, end int64
}

// --- stage-in ---

// inFile is one regular file found by the host-tree walk.
type inFile struct {
	rel  string
	size int64
	// trunc marks a file whose cluster record pre-existed: it must go
	// through a descriptor with O_TRUNC instead of the small-file path,
	// which assumes a fresh zero-size record.
	trunc bool
}

// StageIn copies the directory tree under hostDir into the cluster at
// fsDir (created if missing). The returned Report is never nil; the
// error covers structural failures only (bad arguments, unreadable
// source root, manifest write) — per-file failures land in the Report.
func StageIn(c *client.Client, hostDir, fsDir string, opts Options) (*Report, error) {
	begin := time.Now()
	e := &engine{c: c, opts: opts.withDefaults(DefaultBufBytes)}
	if e.opts.Manifest != "" {
		e.setManifest(NewManifest())
	}
	fsRoot, err := meta.Clean(fsDir)
	if err != nil {
		return e.report(begin), fmt.Errorf("staging: destination %q: %w", fsDir, err)
	}
	if info, err := os.Stat(hostDir); err != nil {
		return e.report(begin), fmt.Errorf("staging: source: %w", err)
	} else if !info.IsDir() {
		return e.report(begin), fmt.Errorf("staging: source %s is not a directory", hostDir)
	}

	// Walk the host tree. The walk returns nil for every per-entry
	// problem (recorded in the report), so WalkDir itself cannot fail
	// past the root.
	var dirs []string
	var files []inFile
	_ = filepath.WalkDir(hostDir, func(p string, d iofs.DirEntry, werr error) error {
		if werr != nil {
			e.fail("walk", p, werr)
			if d != nil && d.IsDir() {
				return iofs.SkipDir
			}
			return nil
		}
		rel, rerr := filepath.Rel(hostDir, p)
		if rerr != nil {
			e.fail("walk", p, rerr)
			return nil
		}
		rel = filepath.ToSlash(rel)
		if rel == "." {
			return nil
		}
		switch {
		case d.IsDir():
			if err := e.manifestable(rel); err != nil {
				e.fail("stage-in", p, err)
				return iofs.SkipDir
			}
			dirs = append(dirs, rel)
		case d.Type().IsRegular():
			if err := e.manifestable(rel); err != nil {
				e.fail("stage-in", p, err)
				return nil
			}
			fi, err := d.Info()
			if err != nil {
				e.fail("walk", p, err)
				return nil
			}
			files = append(files, inFile{rel: rel, size: fi.Size()})
		default:
			e.unsupported(p)
		}
		return nil
	})

	// Namespace: the destination root, then the tree's directories in
	// walk order (parents first), then every file record in sharded
	// CreateMany batches — one RPC per daemon instead of one per file.
	if err := c.MkdirAll(fsRoot); err != nil {
		return e.report(begin), fmt.Errorf("staging: create %s: %w", fsRoot, err)
	}
	for _, rel := range dirs {
		p := fsJoin(fsRoot, rel)
		if err := c.Mkdir(p); err != nil && !errors.Is(err, proto.ErrExist) {
			e.fail("mkdir", p, err)
			continue
		}
		e.dirDone()
		e.putEntry(Entry{Rel: rel, Dir: true, MTimeNS: time.Now().UnixNano()})
	}
	paths := make([]string, len(files))
	for i := range files {
		paths[i] = fsJoin(fsRoot, files[i].rel)
	}
	cerrs := c.CreateMany(paths)
	pump := files[:0]
	for i := range files {
		switch {
		case cerrs[i] == nil:
			pump = append(pump, files[i])
		case errors.Is(cerrs[i], proto.ErrExist):
			// The record pre-existed (restaging over a previous job's
			// tree, or a directory squatting on the name — the open will
			// say which). Old data must not shine through.
			files[i].trunc = true
			pump = append(pump, files[i])
		default:
			e.fail("create", paths[i], cerrs[i])
		}
	}

	// Queue the pump work: small and medium files as whole-file items,
	// huge files as striped segments (unless a manifest needs their
	// sequential hash) so one giant checkpoint engages as many workers
	// as a directory of files would.
	var queue []stageWork
	withManifest := e.hasManifest()
	for _, f := range pump {
		fsPath := fsJoin(fsRoot, f.rel)
		if !withManifest && f.size > e.opts.SegmentBytes {
			if f.trunc {
				// One truncate up front; segments must not O_TRUNC each
				// other's freshly written data.
				if err := c.Truncate(fsPath, 0); err != nil {
					e.fail("stage-in truncate", fsPath, err)
					continue
				}
			}
			sf := &segFile{
				rel: f.rel, fsPath: fsPath,
				hostPath: filepath.Join(hostDir, filepath.FromSlash(f.rel)),
				size:     f.size,
			}
			queue = appendSegments(queue, sf, e.opts.SegmentBytes)
			continue
		}
		queue = append(queue, stageWork{file: f})
	}

	// Pump file data through the worker pool. Each worker owns one
	// streaming buffer and one small-file size batch.
	jobs := make(chan stageWork)
	var wg sync.WaitGroup
	for w := 0; w < e.opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, e.opts.BufBytes)
			gb := &growBatch{}
			for work := range jobs {
				if work.sf != nil {
					e.copyInSegment(buf, work)
					continue
				}
				job := work.file
				hostPath := filepath.Join(hostDir, filepath.FromSlash(job.rel))
				fsPath := fsJoin(fsRoot, job.rel)
				switch {
				case !job.trunc && job.size == 0:
					// Empty file: the CreateMany record is the whole
					// transfer — don't even open the host file. (Marker
					// and lock files by the thousand are common.)
					e.recordDone(job.rel, fsPath, 0, e.newHash())
				case !job.trunc && job.size <= int64(e.opts.BufBytes):
					e.copyInSmall(buf, gb, hostPath, fsPath, job.rel)
				default:
					e.copyInFD(buf, hostPath, fsPath, job.rel, job.trunc)
				}
			}
			e.flushGrow(gb)
		}()
	}
	for _, work := range queue {
		jobs <- work
	}
	close(jobs)
	wg.Wait()

	if err := e.writeManifest(); err != nil {
		return e.report(begin), fmt.Errorf("staging: manifest: %w", err)
	}
	return e.report(begin), nil
}

// growBatch accumulates small-file size updates for one worker, flushed
// through the vector plane in one batched RPC per daemon.
type growBatch struct {
	fsPaths []string
	rels    []string
	sizes   []int64
	hashes  []hash.Hash
}

func (e *engine) addGrow(gb *growBatch, fsPath, rel string, size int64, h hash.Hash) {
	gb.fsPaths = append(gb.fsPaths, fsPath)
	gb.rels = append(gb.rels, rel)
	gb.sizes = append(gb.sizes, size)
	gb.hashes = append(gb.hashes, h)
	if len(gb.fsPaths) >= growBatchSize {
		e.flushGrow(gb)
	}
}

func (e *engine) flushGrow(gb *growBatch) {
	if len(gb.fsPaths) == 0 {
		return
	}
	errs := e.c.GrowMany(gb.fsPaths, gb.sizes)
	// Manifest entries need each file's cluster mtime (see recordDone);
	// one batched StatMany per flush reads them all back.
	var infos []client.FileInfo
	var serrs []error
	withManifest := e.hasManifest()
	if withManifest {
		infos, serrs = e.c.StatMany(gb.fsPaths)
	}
	for i := range gb.fsPaths {
		if errs[i] != nil {
			e.fail("stage-in size", gb.fsPaths[i], errs[i])
			continue
		}
		mtime := int64(0)
		if withManifest {
			if serrs[i] != nil {
				e.fail("stage-in stat", gb.fsPaths[i], serrs[i])
				continue
			}
			mtime = infos[i].ModTime().UnixNano()
		}
		e.done(gb.rels[i], gb.sizes[i], gb.hashes[i], mtime)
	}
	gb.fsPaths, gb.rels, gb.sizes, gb.hashes = gb.fsPaths[:0], gb.rels[:0], gb.sizes[:0], gb.hashes[:0]
}

// copyInSmall is the small-file fast path: the record was just created
// by CreateMany, the whole file fits the worker buffer, so the data
// moves as bare chunk writes (WritePath, no descriptor, no stat) and the
// size joins the worker's batched GrowMany flush. RPCs per small file:
// one chunk write (zero for hole-only or empty files) plus amortized
// shares of one create batch and one size batch.
func (e *engine) copyInSmall(buf []byte, gb *growBatch, hostPath, fsPath, rel string) {
	src, err := os.Open(hostPath)
	if err != nil {
		e.fail("stage-in open", hostPath, err)
		return
	}
	defer src.Close()
	// Read to EOF rather than trusting the walk-time size: the file is
	// what it is now. A file grown past the buffer since the walk is
	// truncated to the buffer — staging a tree while it mutates is
	// undefined, but stays bounded.
	n, err := io.ReadFull(src, buf)
	if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		e.fail("stage-in read", hostPath, err)
		return
	}
	data := buf[:n]
	h := e.newHash()
	if h != nil {
		h.Write(data)
	}
	werr := forNonzero(data, func(lo, hi int64) error {
		return e.c.WritePath(fsPath, data[lo:hi], lo)
	})
	if werr != nil {
		e.fail("stage-in write", fsPath, werr)
		return
	}
	if n == 0 {
		// Empty file: the CreateMany record is already complete.
		e.recordDone(rel, fsPath, 0, h)
		return
	}
	e.addGrow(gb, fsPath, rel, int64(n), h)
}

// copyInFD streams one file through a descriptor: large files (the
// write-behind pipeline overlaps their chunk RPCs when the client has
// one) and re-staged files needing O_TRUNC. Trailing zero runs are
// never written; GrowSize gives the file its full extent instead.
func (e *engine) copyInFD(buf []byte, hostPath, fsPath, rel string, trunc bool) {
	src, err := os.Open(hostPath)
	if err != nil {
		e.fail("stage-in open", hostPath, err)
		return
	}
	defer src.Close()
	flags := client.O_WRONLY
	if trunc {
		flags |= client.O_TRUNC
	}
	fd, err := e.c.Open(fsPath, flags)
	if err != nil {
		e.fail("stage-in open", fsPath, err)
		return
	}
	h := e.newHash()
	var off, lastData int64
	for {
		n, rerr := io.ReadFull(src, buf)
		if n > 0 {
			data := buf[:n]
			if h != nil {
				h.Write(data)
			}
			werr := forNonzero(data, func(lo, hi int64) error {
				if _, err := e.c.WriteAt(fd, data[lo:hi], off+lo); err != nil {
					return err
				}
				lastData = off + hi
				return nil
			})
			if werr != nil {
				e.fail("stage-in write", fsPath, werr)
				e.c.Close(fd)
				return
			}
			off += int64(n)
		}
		if errors.Is(rerr, io.EOF) || errors.Is(rerr, io.ErrUnexpectedEOF) {
			break
		}
		if rerr != nil {
			e.fail("stage-in read", hostPath, rerr)
			e.c.Close(fd)
			return
		}
	}
	if lastData < off {
		if err := e.c.GrowSize(fd, off); err != nil {
			e.fail("stage-in size", fsPath, err)
			e.c.Close(fd)
			return
		}
	}
	// Close is the barrier: under async writes it drains the in-flight
	// window and flushes the size, so a clean return means the file is
	// stored and visible cluster-wide.
	if err := e.c.Close(fd); err != nil {
		e.fail("stage-in close", fsPath, err)
		return
	}
	e.recordDone(rel, fsPath, off, h)
}

// copyInSegment moves one byte range of a striped large file into the
// cluster. Every segment has its own descriptor — its own write-behind
// window when the client pipelines — so the segments of one file overlap
// exactly like independent files do. Non-overlapping ranges make the
// concurrent writes conflict-free.
func (e *engine) copyInSegment(buf []byte, w stageWork) {
	sf := w.sf
	finish := func(err error) {
		if err != nil {
			e.segFail(sf, "stage-in", err)
		}
		if sf.remaining.Add(-1) == 0 && !sf.failed.Load() {
			e.done(sf.rel, sf.size, nil, 0) // segments never record manifests
		}
	}
	if sf.failed.Load() {
		finish(nil) // a sibling already failed; don't waste the wire
		return
	}
	src, err := os.Open(sf.hostPath)
	if err != nil {
		finish(err)
		return
	}
	defer src.Close()
	fd, err := e.c.Open(sf.fsPath, client.O_WRONLY)
	if err != nil {
		finish(err)
		return
	}
	off, lastData := w.off, w.off
	for off < w.end {
		n, rerr := src.ReadAt(buf[:min(int64(len(buf)), w.end-off)], off)
		if n > 0 {
			data := buf[:n]
			werr := forNonzero(data, func(lo, hi int64) error {
				if _, err := e.c.WriteAt(fd, data[lo:hi], off+lo); err != nil {
					return err
				}
				lastData = off + hi
				return nil
			})
			if werr != nil {
				e.c.Close(fd)
				finish(werr)
				return
			}
			off += int64(n)
		}
		if errors.Is(rerr, io.EOF) {
			break // source shrank since the walk; take what exists
		}
		if rerr != nil {
			e.c.Close(fd)
			finish(rerr)
			return
		}
	}
	if lastData < off {
		if err := e.c.GrowSize(fd, off); err != nil {
			e.c.Close(fd)
			finish(err)
			return
		}
	}
	finish(e.c.Close(fd))
}

// copyOutSegment drains one byte range of a striped large file to the
// host. The host file was created (and emptied) by the coordinator; the
// last segment to finish settles its final length.
func (e *engine) copyOutSegment(buf []byte, w stageWork) {
	sf := w.sf
	finish := func(err error) {
		if err != nil {
			e.segFail(sf, "stage-out", err)
		}
		if sf.remaining.Add(-1) != 0 || sf.failed.Load() {
			return
		}
		end := sf.maxEnd.Load()
		if err := os.Truncate(sf.hostPath, end); err != nil {
			e.fail("stage-out truncate", sf.hostPath, err)
			return
		}
		e.done(sf.rel, end, nil, 0) // segments never record manifests
	}
	if sf.failed.Load() {
		finish(nil)
		return
	}
	// Segments are sequential streams: read-ahead keeps a window of
	// chunk fetches in flight ahead of the copy loop instead of paying a
	// full synchronous fan-out per buffer.
	fd, err := e.c.OpenReadAhead(sf.fsPath, client.O_RDONLY)
	if err != nil {
		finish(err)
		return
	}
	defer e.c.Close(fd)
	dst, err := os.OpenFile(sf.hostPath, os.O_WRONLY, 0)
	if err != nil {
		finish(err)
		return
	}
	off := w.off
	for off < w.end {
		n, rerr := e.c.ReadAt(fd, buf[:min(int64(len(buf)), w.end-off)], off)
		if n > 0 {
			data := buf[:n]
			werr := forNonzero(data, func(lo, hi int64) error {
				_, err := dst.WriteAt(data[lo:hi], off+lo)
				return err
			})
			if werr != nil {
				dst.Close()
				finish(werr)
				return
			}
			off += int64(n)
		}
		if errors.Is(rerr, io.EOF) {
			break // the file ends inside this segment
		}
		if rerr != nil {
			dst.Close()
			finish(rerr)
			return
		}
	}
	// Only a segment that actually observed bytes (data or in-size
	// holes) extends the final length: a segment past the EOF of a
	// concurrently shrunk file must not zero-pad the host copy out to
	// its own start offset.
	if off > w.off {
		sf.raiseMax(off)
	}
	finish(dst.Close())
}

// --- stage-out ---

// outJob is one cluster file queued for stage-out. size/mtime are
// authoritative (StatMany) only in incremental mode, where the skip
// check needs them; the copy itself trusts neither and reads to EOF.
type outJob struct {
	rel     string
	size    int64
	mtimeNS int64
	hasStat bool
}

// StageOut copies the cluster tree under fsDir into hostDir (created if
// missing). With Options.Incremental (requires Manifest) files provably
// unmodified since stage-in are skipped without moving a byte. The
// returned Report is never nil; the error covers structural failures
// only.
func StageOut(c *client.Client, fsDir, hostDir string, opts Options) (*Report, error) {
	begin := time.Now()
	e := &engine{c: c, opts: opts.withDefaults(DefaultReadBufBytes)}
	fsRoot, err := meta.Clean(fsDir)
	if err != nil {
		return e.report(begin), fmt.Errorf("staging: source %q: %w", fsDir, err)
	}
	switch {
	case e.opts.Incremental && e.opts.Manifest == "":
		return e.report(begin), errors.New("staging: incremental stage-out requires a manifest")
	case e.opts.Incremental && e.opts.Snapshot != "":
		return e.report(begin), errors.New("staging: incremental stage-out cannot read from a snapshot")
	case e.opts.Incremental:
		mf, err := LoadManifest(e.opts.Manifest)
		if err != nil {
			return e.report(begin), fmt.Errorf("staging: manifest: %w", err)
		}
		e.setManifest(mf)
	case e.opts.Manifest != "":
		e.setManifest(NewManifest())
	}
	if e.opts.Snapshot != "" {
		// Resolve the tag to its pinned epoch once, up front: a tag that
		// is unknown or only partially committed fails the whole transfer
		// structurally rather than staging a torn tree.
		epoch, err := c.SnapshotEpoch(e.opts.Snapshot)
		if err != nil {
			return e.report(begin), fmt.Errorf("staging: snapshot %q: %w", e.opts.Snapshot, err)
		}
		e.snap, e.snapEpoch = true, epoch
	}
	if info, err := e.statFS(fsRoot); err != nil {
		return e.report(begin), fmt.Errorf("staging: source %s: %w", fsRoot, err)
	} else if !info.IsDir() {
		return e.report(begin), fmt.Errorf("staging: source %s: %w", fsRoot, proto.ErrNotDir)
	}
	if err := os.MkdirAll(hostDir, 0o777); err != nil {
		return e.report(begin), fmt.Errorf("staging: destination: %w", err)
	}

	// Walk the cluster tree (paginated ReadDir under the hood), creating
	// host directories as encountered and queueing files. In incremental
	// mode each directory's files are stat'ed in one batched RPC per
	// daemon — the skip check needs authoritative sizes and mtimes.
	var jobs []outJob
	var walk func(rel string)
	walk = func(rel string) {
		fsPath := fsJoin(fsRoot, rel)
		ents, err := e.readDirFS(fsPath)
		if err != nil {
			e.fail("stage-out readdir", fsPath, err)
			return
		}
		var filePaths []string
		var fileJobs []outJob
		for _, en := range ents {
			childRel := en.Name
			if rel != "" {
				childRel = rel + "/" + en.Name
			}
			if err := e.manifestable(childRel); err != nil {
				e.fail("stage-out", fsJoin(fsRoot, childRel), err)
				continue
			}
			if en.IsDir {
				hostPath := filepath.Join(hostDir, filepath.FromSlash(childRel))
				if err := os.MkdirAll(hostPath, 0o777); err != nil {
					e.fail("stage-out mkdir", hostPath, err)
					continue
				}
				e.mu.Lock()
				e.rep.Dirs++
				if e.mf != nil && !e.opts.Incremental {
					e.mf.Put(Entry{Rel: childRel, Dir: true, MTimeNS: time.Now().UnixNano()})
				}
				e.mu.Unlock()
				walk(childRel)
				continue
			}
			filePaths = append(filePaths, fsJoin(fsRoot, childRel))
			fileJobs = append(fileJobs, outJob{rel: childRel, size: en.Size})
		}
		if e.opts.Incremental && len(filePaths) > 0 {
			infos, errs := c.StatMany(filePaths)
			for i := range fileJobs {
				if errors.Is(errs[i], proto.ErrNotExist) {
					// Listed but gone by stat time: removed concurrently.
					// Eventual consistency makes this expected; skip it.
					continue
				}
				if errs[i] != nil {
					// Anything else (an unreachable metadata daemon fails
					// its whole shard) must be loud: silently skipping
					// here would report a clean transfer while result
					// data quietly misses the stage-out.
					e.fail("stage-out stat", filePaths[i], errs[i])
					continue
				}
				fileJobs[i].size = infos[i].Size()
				fileJobs[i].mtimeNS = infos[i].ModTime().UnixNano()
				fileJobs[i].hasStat = true
				jobs = append(jobs, fileJobs[i])
			}
			return
		}
		jobs = append(jobs, fileJobs...)
	}
	walk("")

	// Huge files stripe into segments (no manifest in play — hashing
	// would need one sequential stream); the host file is created empty
	// here so segments only ever write their own ranges. Snapshot
	// stage-out keeps one worker per file: its reads are descriptor-free
	// epoch-pinned spans, not the read-ahead descriptors segments pump.
	var queue []stageWork
	withManifest := e.hasManifest()
	for _, job := range jobs {
		if !withManifest && !e.snap && job.size > e.opts.SegmentBytes {
			hostPath := filepath.Join(hostDir, filepath.FromSlash(job.rel))
			f, err := os.OpenFile(hostPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
			if err != nil {
				e.fail("stage-out create", hostPath, err)
				continue
			}
			if err := f.Close(); err != nil {
				e.fail("stage-out create", hostPath, err)
				continue
			}
			sf := &segFile{
				rel: job.rel, fsPath: fsJoin(fsRoot, job.rel),
				hostPath: hostPath, size: job.size,
			}
			queue = appendSegments(queue, sf, e.opts.SegmentBytes)
			continue
		}
		queue = append(queue, stageWork{out: job})
	}

	work := make(chan stageWork)
	var wg sync.WaitGroup
	for w := 0; w < e.opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, e.opts.BufBytes)
			for item := range work {
				if item.sf != nil {
					e.copyOutSegment(buf, item)
				} else {
					e.copyOut(buf, fsRoot, hostDir, item.out)
				}
			}
		}()
	}
	for _, item := range queue {
		work <- item
	}
	close(work)
	wg.Wait()

	if err := e.writeManifest(); err != nil {
		return e.report(begin), fmt.Errorf("staging: manifest: %w", err)
	}
	return e.report(begin), nil
}

// unmodifiedSince reports whether the cluster file described by job is
// provably the same content the manifest entry recorded: identical size
// and cluster mtime (the entry stores the cluster's own stamp, so any
// later write — whose stamp the size-merger only ever raises — breaks
// equality), and a host copy that verifies against the recorded hash.
// Any doubt returns false and the file transfers. Caveat shared with
// every mtime-based synchronizer: detection trusts writers' clocks.
func unmodifiedSince(job outJob, ent Entry, hostPath string) bool {
	if ent.Dir || !job.hasStat || ent.Hash == "" {
		return false
	}
	if job.size != ent.Size || job.mtimeNS != ent.MTimeNS {
		return false
	}
	fi, err := os.Stat(hostPath)
	if err != nil || !fi.Mode().IsRegular() || fi.Size() != ent.Size {
		return false
	}
	f, err := os.Open(hostPath)
	if err != nil {
		return false
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return false
	}
	return hex.EncodeToString(h.Sum(nil)) == ent.Hash
}

// copyOut moves one cluster file onto the host, preserving sparseness:
// zero runs are skipped and the final Truncate extends the file past a
// trailing hole. The read loop is size-oblivious — it trusts the EOF
// the stat-free read path reports, not the listing.
func (e *engine) copyOut(buf []byte, fsRoot, hostDir string, job outJob) {
	fsPath := fsJoin(fsRoot, job.rel)
	hostPath := filepath.Join(hostDir, filepath.FromSlash(job.rel))
	if e.opts.Incremental {
		ent, ok := e.lookupEntry(job.rel)
		if ok && unmodifiedSince(job, ent, hostPath) {
			e.skip(ent.Size)
			return
		}
	}
	// Stage-out streams each file sequentially; read-ahead pipelines the
	// chunk fetches so the copy loop is not round-trip bound. Snapshot
	// mode reads descriptor-free, epoch-pinned spans instead — the
	// pre-image view has no descriptor to read ahead through.
	readAt := func(p []byte, off int64) (int, error) {
		return e.c.ReadSnapshot(fsPath, e.snapEpoch, p, off)
	}
	if !e.snap {
		fd, err := e.c.OpenReadAhead(fsPath, client.O_RDONLY)
		if err != nil {
			e.fail("stage-out open", fsPath, err)
			e.dropEntry(job.rel)
			return
		}
		defer e.c.Close(fd)
		readAt = func(p []byte, off int64) (int, error) {
			return e.c.ReadAt(fd, p, off)
		}
	}
	dst, err := os.OpenFile(hostPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		e.fail("stage-out create", hostPath, err)
		e.dropEntry(job.rel)
		return
	}
	h := e.newHash()
	var off int64
	for {
		// Clamp the read window to the listed size plus one byte: a file
		// at its listed size then answers one right-sized RPC whose EOF
		// arrives with the data, instead of a full buffer-wide span
		// fan-out (ruinous for small files). The +1 keeps the loop honest
		// when the file grew past the listing — no EOF, keep reading.
		want := int64(len(buf))
		if job.size >= off {
			if rem := job.size - off + 1; rem < want {
				want = rem
			}
		}
		n, rerr := readAt(buf[:want], off)
		if n > 0 {
			data := buf[:n]
			if h != nil {
				h.Write(data)
			}
			werr := forNonzero(data, func(lo, hi int64) error {
				_, err := dst.WriteAt(data[lo:hi], off+lo)
				return err
			})
			if werr != nil {
				e.fail("stage-out write", hostPath, werr)
				dst.Close()
				e.dropEntry(job.rel)
				return
			}
			off += int64(n)
		}
		if errors.Is(rerr, io.EOF) {
			break
		}
		if rerr != nil {
			e.fail("stage-out read", fsPath, rerr)
			dst.Close()
			e.dropEntry(job.rel)
			return
		}
	}
	// Extend past a trailing hole (WriteAt never reached EOF) and settle
	// the exact length in one stroke.
	if err := dst.Truncate(off); err != nil {
		e.fail("stage-out truncate", hostPath, err)
		dst.Close()
		e.dropEntry(job.rel)
		return
	}
	if err := dst.Close(); err != nil {
		e.fail("stage-out close", hostPath, err)
		e.dropEntry(job.rel)
		return
	}
	// Manifest entries carry the cluster's own mtime (see recordDone's
	// rationale): the incremental walk already stat'ed it; a fresh
	// manifest pays one stat here.
	mtime := int64(0)
	if e.hasManifest() {
		if job.hasStat {
			mtime = job.mtimeNS
		} else if info, err := e.statFS(fsPath); err == nil {
			mtime = info.ModTime().UnixNano()
		} else {
			e.fail("stage-out stat", fsPath, err)
			e.dropEntry(job.rel)
			return
		}
	}
	e.done(job.rel, off, h, mtime)
}
