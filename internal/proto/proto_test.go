package proto

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/meta"
	"repro/internal/rpc"
)

func TestErrnoRoundTrip(t *testing.T) {
	for _, err := range []error{ErrNotExist, ErrExist, ErrIsDir, ErrNotDir, ErrNotEmpty} {
		if got := ErrnoOf(err).Err(); !errors.Is(got, err) {
			t.Errorf("round trip of %v = %v", err, got)
		}
	}
	if ErrnoOf(nil) != OK {
		t.Error("ErrnoOf(nil) != OK")
	}
	if OK.Err() != nil {
		t.Error("OK.Err() != nil")
	}
	if Errno(999).Err() == nil {
		t.Error("unknown errno must map to an error")
	}
	if ErrnoOf(errors.New("weird")) != ErrnoInval {
		t.Error("unknown error must map to ErrnoInval")
	}
}

func TestSpanCodecProperty(t *testing.T) {
	f := func(ids []uint32, offs []uint16, lens []uint16) bool {
		n := len(ids)
		if len(offs) < n {
			n = len(offs)
		}
		if len(lens) < n {
			n = len(lens)
		}
		spans := make([]ChunkSpan, n)
		var want int64
		for i := 0; i < n; i++ {
			spans[i] = ChunkSpan{ID: meta.ChunkID(ids[i]), Off: int64(offs[i]), Len: int64(lens[i])}
			want += int64(lens[i])
		}
		e := rpc.NewEnc(16)
		EncodeSpans(e, spans)
		d := rpc.NewDec(e.Bytes())
		got := DecodeSpans(d)
		if d.Done() != nil || len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != spans[i] {
				return false
			}
		}
		return SpanBytes(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeSpansTruncated(t *testing.T) {
	e := rpc.NewEnc(16)
	EncodeSpans(e, []ChunkSpan{{ID: 1, Off: 2, Len: 3}})
	full := e.Bytes()
	d := rpc.NewDec(full[:len(full)-4])
	DecodeSpans(d)
	if d.Err() == nil {
		t.Fatal("truncated span list decoded cleanly")
	}
}
