package proto

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/meta"
	"repro/internal/rpc"
)

func TestErrnoRoundTrip(t *testing.T) {
	for _, err := range []error{ErrNotExist, ErrExist, ErrIsDir, ErrNotDir, ErrNotEmpty} {
		if got := ErrnoOf(err).Err(); !errors.Is(got, err) {
			t.Errorf("round trip of %v = %v", err, got)
		}
	}
	if ErrnoOf(nil) != OK {
		t.Error("ErrnoOf(nil) != OK")
	}
	if OK.Err() != nil {
		t.Error("OK.Err() != nil")
	}
	if Errno(999).Err() == nil {
		t.Error("unknown errno must map to an error")
	}
	if ErrnoOf(errors.New("weird")) != ErrnoInval {
		t.Error("unknown error must map to ErrnoInval")
	}
}

func TestSpanCodecProperty(t *testing.T) {
	f := func(ids []uint32, offs []uint16, lens []uint16) bool {
		n := len(ids)
		if len(offs) < n {
			n = len(offs)
		}
		if len(lens) < n {
			n = len(lens)
		}
		spans := make([]ChunkSpan, n)
		var want int64
		for i := 0; i < n; i++ {
			spans[i] = ChunkSpan{ID: meta.ChunkID(ids[i]), Off: int64(offs[i]), Len: int64(lens[i])}
			want += int64(lens[i])
		}
		e := rpc.NewEnc(16)
		EncodeSpans(e, spans)
		d := rpc.NewDec(e.Bytes())
		got := DecodeSpans(d)
		if d.Done() != nil || len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != spans[i] {
				return false
			}
		}
		return SpanBytes(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeSpansTruncated(t *testing.T) {
	e := rpc.NewEnc(16)
	EncodeSpans(e, []ChunkSpan{{ID: 1, Off: 2, Len: 3}})
	full := e.Bytes()
	d := rpc.NewDec(full[:len(full)-4])
	DecodeSpans(d)
	if d.Err() == nil {
		t.Fatal("truncated span list decoded cleanly")
	}
}

func sampleMetaOps() []MetaOp {
	return []MetaOp{
		{Kind: MetaOpCreate, Path: "/a", Mode: meta.ModeRegular, TimeNS: 42},
		{Kind: MetaOpCreate, Path: "/d", Mode: meta.ModeDir, TimeNS: 43},
		{Kind: MetaOpStat, Path: "/a"},
		{Kind: MetaOpRemove, Path: "/a", FileOnly: true},
		{Kind: MetaOpRemove, Path: "/d"},
		{Kind: MetaOpUpdateSize, Path: "/a", Size: 1 << 30, TimeNS: 44},
		{Kind: MetaOpUpdateSize, Path: "/a", Size: 7, Truncate: true, TimeNS: 45},
	}
}

func TestMetaOpsRoundTrip(t *testing.T) {
	ops := sampleMetaOps()
	e := rpc.NewEnc(64)
	EncodeMetaOps(e, ops)
	d := rpc.NewDec(e.Bytes())
	got := DecodeMetaOps(d)
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Errorf("op %d = %+v, want %+v", i, got[i], ops[i])
		}
	}
}

func TestMetaOpsHostileFrames(t *testing.T) {
	// A claimed count far beyond what the remaining bytes could hold must
	// poison the decoder before any allocation.
	e := rpc.NewEnc(8)
	e.U32(1 << 30)
	d := rpc.NewDec(e.Bytes())
	if DecodeMetaOps(d); d.Err() == nil {
		t.Fatal("absurd op count decoded cleanly")
	}

	// Counts above the batch cap are refused even when the bytes exist.
	e = rpc.NewEnc(8)
	e.U32(MaxBatchOps + 1)
	d = rpc.NewDec(append(e.Bytes(), make([]byte, 3*(MaxBatchOps+1))...))
	if DecodeMetaOps(d); d.Err() == nil {
		t.Fatal("over-cap op count decoded cleanly")
	}

	// Unknown kinds poison the decoder.
	e = rpc.NewEnc(8)
	e.U32(1).U8(200)
	e.Str("/x")
	d = rpc.NewDec(e.Bytes())
	if DecodeMetaOps(d); d.Err() == nil {
		t.Fatal("unknown op kind decoded cleanly")
	}

	// Negative sizes poison the decoder.
	e = rpc.NewEnc(16)
	e.U32(1).U8(uint8(MetaOpUpdateSize))
	e.Str("/x")
	e.I64(-5).U8(1).I64(0)
	d = rpc.NewDec(e.Bytes())
	if DecodeMetaOps(d); d.Err() == nil {
		t.Fatal("negative size decoded cleanly")
	}

	// Truncated mid-op frames error instead of fabricating ops.
	e = rpc.NewEnc(16)
	EncodeMetaOps(e, sampleMetaOps())
	full := e.Bytes()
	for _, cut := range []int{1, len(full) / 2, len(full) - 1} {
		d = rpc.NewDec(full[:cut])
		if ops := DecodeMetaOps(d); d.Err() == nil && len(ops) == len(sampleMetaOps()) {
			t.Fatalf("cut at %d decoded a full vector", cut)
		}
	}
}

func TestMetaResultsRoundTrip(t *testing.T) {
	ops := sampleMetaOps()
	md := meta.Metadata{Mode: meta.ModeRegular, Size: 9, CTimeNS: 1, MTimeNS: 2}
	results := []MetaResult{
		{Errno: ErrnoExist},
		{},
		{Blob: md.Encode()},
		{Mode: meta.ModeRegular, Size: 512},
		{Errno: ErrnoIsDir},
		{},
		{Errno: ErrnoNotExist},
	}
	e := rpc.NewEnc(64)
	EncodeMetaResults(e, ops, results)
	d := rpc.NewDec(e.Bytes())
	got := DecodeMetaResults(d, ops)
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if got[i].Errno != results[i].Errno || got[i].Mode != results[i].Mode || got[i].Size != results[i].Size {
			t.Errorf("result %d = %+v, want %+v", i, got[i], results[i])
		}
	}
	if dec, err := meta.DecodeMetadata(got[2].Blob); err != nil || dec != md {
		t.Errorf("stat blob = %+v, %v", dec, err)
	}

	// A reply whose count disagrees with the request poisons the decoder.
	d = rpc.NewDec(e.Bytes())
	if DecodeMetaResults(d, ops[:3]); d.Err() == nil {
		t.Fatal("count mismatch decoded cleanly")
	}
}
