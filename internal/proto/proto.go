// Package proto defines the client↔daemon protocol: RPC operation IDs,
// request/response encodings, and the file system error space. Both
// internal/client and internal/daemon speak exactly this vocabulary, the
// Go analogue of GekkoFS's Mercury RPC definitions.
package proto

import (
	"errors"
	"fmt"

	"repro/internal/meta"
	"repro/internal/rpc"
)

// RPC operations. Each corresponds to one registered Mercury RPC in the
// released GekkoFS.
const (
	// OpPing checks daemon liveness during deployment.
	OpPing rpc.Op = iota + 1
	// OpCreate inserts a metadata record (file or directory) if absent.
	OpCreate
	// OpStat fetches a path's metadata record.
	OpStat
	// OpRemoveMeta deletes a path's metadata record, returning the size
	// it had so the client knows whether chunks must be collected.
	OpRemoveMeta
	// OpUpdateSize grows (merge) or sets (truncate) a file's size.
	OpUpdateSize
	// OpWriteChunks stores spans of one or more chunks held by the target
	// daemon; data travels in the bulk region (daemon pulls).
	OpWriteChunks
	// OpReadChunks fetches spans of chunks; data returns through the bulk
	// region (daemon pushes).
	OpReadChunks
	// OpRemoveChunks deletes all chunks of a path on the target daemon.
	OpRemoveChunks
	// OpTruncateChunks discards chunk data beyond a new size on the
	// target daemon.
	OpTruncateChunks
	// OpReadDir scans the daemon-local KV store for children of a
	// directory.
	OpReadDir
	// OpStats returns daemon operation counters (tooling/tests).
	OpStats
)

// Errno is the wire representation of an expected file system error.
// Unexpected failures travel as rpc.RemoteError instead.
type Errno uint16

// Wire error codes.
const (
	OK Errno = iota
	ErrnoNotExist
	ErrnoExist
	ErrnoIsDir
	ErrnoNotDir
	ErrnoNotEmpty
	ErrnoInval
)

// File system errors shared by daemon, client and the public facade.
var (
	// ErrNotExist reports a missing path.
	ErrNotExist = errors.New("gekkofs: no such file or directory")
	// ErrExist reports a create of an existing path.
	ErrExist = errors.New("gekkofs: file exists")
	// ErrIsDir reports a file operation on a directory.
	ErrIsDir = errors.New("gekkofs: is a directory")
	// ErrNotDir reports a directory operation on a file.
	ErrNotDir = errors.New("gekkofs: not a directory")
	// ErrNotEmpty reports removal of a non-empty directory.
	ErrNotEmpty = errors.New("gekkofs: directory not empty")
	// ErrInval reports an invalid argument.
	ErrInval = errors.New("gekkofs: invalid argument")
	// ErrNotSupported reports POSIX functionality GekkoFS deliberately
	// omits: rename/move, links, and permission management (paper
	// §III-A).
	ErrNotSupported = errors.New("gekkofs: operation not supported")
)

var errnoToErr = map[Errno]error{
	ErrnoNotExist: ErrNotExist,
	ErrnoExist:    ErrExist,
	ErrnoIsDir:    ErrIsDir,
	ErrnoNotDir:   ErrNotDir,
	ErrnoNotEmpty: ErrNotEmpty,
	ErrnoInval:    ErrInval,
}

// Err converts a wire code to its Go error; OK maps to nil.
func (e Errno) Err() error {
	if e == OK {
		return nil
	}
	if err, ok := errnoToErr[e]; ok {
		return err
	}
	return fmt.Errorf("gekkofs: errno %d", uint16(e))
}

// ErrnoOf maps a Go error to its wire code; nil maps to OK. Unknown
// errors map to ErrnoInval (daemons convert unexpected errors to
// rpc.RemoteError before this is consulted).
func ErrnoOf(err error) Errno {
	switch {
	case err == nil:
		return OK
	case errors.Is(err, ErrNotExist):
		return ErrnoNotExist
	case errors.Is(err, ErrExist):
		return ErrnoExist
	case errors.Is(err, ErrIsDir):
		return ErrnoIsDir
	case errors.Is(err, ErrNotDir):
		return ErrnoNotDir
	case errors.Is(err, ErrNotEmpty):
		return ErrnoNotEmpty
	default:
		return ErrnoInval
	}
}

// ChunkSpan names one contiguous byte range of one chunk inside a
// write/read RPC. Spans of a single RPC address chunks owned by the same
// daemon; their data is concatenated in span order inside the bulk
// region.
type ChunkSpan struct {
	// ID is the chunk.
	ID meta.ChunkID
	// Off is the offset inside the chunk file.
	Off int64
	// Len is the span length in bytes.
	Len int64
}

// EncodeSpans appends spans to an encoder: [u32 count] + triples.
func EncodeSpans(e *rpc.Enc, spans []ChunkSpan) {
	e.U32(uint32(len(spans)))
	for _, s := range spans {
		e.U64(uint64(s.ID)).I64(s.Off).I64(s.Len)
	}
}

// spanWireBytes is the encoded size of one span triple.
const spanWireBytes = 24

// DecodeSpans reads what EncodeSpans wrote. The claimed count is
// validated against the remaining buffer before any allocation, and
// spans with negative offsets or lengths are rejected — length fields on
// the wire must never size allocations unchecked.
func DecodeSpans(d *rpc.Dec) []ChunkSpan {
	n := d.U32()
	if d.Err() != nil {
		return nil
	}
	if int64(n)*spanWireBytes > int64(d.Remaining()) {
		d.Corrupt()
		return nil
	}
	spans := make([]ChunkSpan, 0, n)
	for i := uint32(0); i < n; i++ {
		s := ChunkSpan{
			ID:  meta.ChunkID(d.U64()),
			Off: d.I64(),
			Len: d.I64(),
		}
		if s.Off < 0 || s.Len < 0 {
			d.Corrupt()
			return nil
		}
		spans = append(spans, s)
	}
	return spans
}

// SpanBytes sums the lengths of spans (the expected bulk region size).
func SpanBytes(spans []ChunkSpan) int64 {
	var n int64
	for _, s := range spans {
		n += s.Len
	}
	return n
}
