// Package proto defines the client↔daemon protocol: RPC operation IDs,
// request/response encodings, and the file system error space. Both
// internal/client and internal/daemon speak exactly this vocabulary, the
// Go analogue of GekkoFS's Mercury RPC definitions.
package proto

import (
	"errors"
	"fmt"

	"repro/internal/meta"
	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// ProtocolVersion is the client↔daemon wire protocol generation. Daemons
// report it in every OpPing reply (appended after the daemon ID) and
// clients verify it at mount time (client.VerifyProtocol): the frame
// formats carry no per-message version tag, so a deployment must run
// clients and daemons of the same generation. Version 3 introduced the
// OpReadChunks reply extension (piggybacked size view, ReadWantSize) and
// the versioned ping itself. Version 4 extended the OpStats reply with
// the read-span counters (ReadSpans, ReadBytesPushed) that make
// prefetch-window efficiency and cache hit rates observable. Version 5
// appended the shared-memory doorbell advertisement to the OpPing reply
// and the six wire-tier counters (frames, wire bytes, vectored writes,
// shm calls) to the OpStats reply. Version 6 introduced chunk
// replication: the OpWriteChunks trailing flags byte (WriteReplica marks
// non-primary copies) and the ReplicaWrites counter appended to the
// OpStats reply. Version 7 introduced the observability tier: request
// frames may carry a trailing trace extension (a dir-byte flag bit plus
// a [u64 trace-ID][u8 flags] trailer — see the transports), and the
// OpStats reply carries a StatsExt block (per-op latency histogram
// snapshots) after the counters. Both are trailing-optional in the
// PR 3 ReadWantSize style: frames and replies without them keep the
// exact old shape, so old-shape requests are still served. Version 8
// introduced namespace snapshots: the OpSnapshot/OpSnapshotList/
// OpSnapshotDrop trio that pins a cluster-wide epoch, trailing-optional
// epoch extensions on OpStat/OpReadDir/OpReadChunks requests (reads at
// a pinned epoch), the OpStat versions extension (StatWantVersions),
// and the five snapshot counters appended to the OpStats reply.
const ProtocolVersion uint16 = 8

// RPC operations. Each corresponds to one registered Mercury RPC in the
// released GekkoFS.
const (
	// OpPing checks daemon liveness during deployment.
	OpPing rpc.Op = iota + 1
	// OpCreate inserts a metadata record (file or directory) if absent.
	OpCreate
	// OpStat fetches a path's metadata record.
	OpStat
	// OpRemoveMeta deletes a path's metadata record, returning the size
	// it had so the client knows whether chunks must be collected.
	OpRemoveMeta
	// OpUpdateSize grows (merge) or sets (truncate) a file's size.
	OpUpdateSize
	// OpWriteChunks stores spans of one or more chunks held by the target
	// daemon; data travels in the bulk region (daemon pulls).
	OpWriteChunks
	// OpReadChunks fetches spans of chunks; data returns through the bulk
	// region (daemon pushes).
	OpReadChunks
	// OpRemoveChunks deletes all chunks of a path on the target daemon.
	OpRemoveChunks
	// OpTruncateChunks discards chunk data beyond a new size on the
	// target daemon.
	OpTruncateChunks
	// OpReadDir scans the daemon-local KV store for children of a
	// directory, one bounded page per call (continuation token + limit),
	// so listings of any size stream in bounded frames.
	OpReadDir
	// OpStats returns daemon operation counters (tooling/tests).
	OpStats
	// OpBatchMeta applies a vector of metadata sub-ops
	// (create/stat/remove/update-size) in one RPC, returning a per-op
	// errno vector. Mutating sub-ops commit through one KV batch (one WAL
	// append per RPC instead of one per op).
	OpBatchMeta
	// OpSnapshot drives the two-phase epoch pin on one daemon: reserve
	// proposes an epoch for a tag, commit durably records the
	// cluster-agreed epoch and advances the daemon's write epoch, abort
	// discards a reservation. The client fans the phases across every
	// daemon — daemons never talk to each other.
	OpSnapshot
	// OpSnapshotList returns the daemon's committed tags with their
	// pinned epochs.
	OpSnapshotList
	// OpSnapshotDrop deletes a committed or pending tag and garbage
	// collects the versions and chunk pre-images only that tag retained.
	OpSnapshotDrop
)

// opNames gives ops human names for trace events, metric tables and
// tooling output. Indexed by op value.
var opNames = [OpSnapshotDrop + 1]string{
	OpPing:           "ping",
	OpCreate:         "create",
	OpStat:           "stat",
	OpRemoveMeta:     "remove_meta",
	OpUpdateSize:     "update_size",
	OpWriteChunks:    "write_chunks",
	OpReadChunks:     "read_chunks",
	OpRemoveChunks:   "remove_chunks",
	OpTruncateChunks: "truncate_chunks",
	OpReadDir:        "readdir",
	OpStats:          "stats",
	OpBatchMeta:      "batch_meta",
	OpSnapshot:       "snapshot",
	OpSnapshotList:   "snapshot_list",
	OpSnapshotDrop:   "snapshot_drop",
}

// OpName returns the human name of op, or "op<N>" for values this
// build does not know. Trace events on both ends and the percentile
// tables use it, so the names line up across processes.
func OpName(op rpc.Op) string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op%d", op)
}

// Errno is the wire representation of an expected file system error.
// Unexpected failures travel as rpc.RemoteError instead.
type Errno uint16

// Wire error codes.
const (
	OK Errno = iota
	ErrnoNotExist
	ErrnoExist
	ErrnoIsDir
	ErrnoNotDir
	ErrnoNotEmpty
	ErrnoInval
)

// File system errors shared by daemon, client and the public facade.
var (
	// ErrNotExist reports a missing path.
	ErrNotExist = errors.New("gekkofs: no such file or directory")
	// ErrExist reports a create of an existing path.
	ErrExist = errors.New("gekkofs: file exists")
	// ErrIsDir reports a file operation on a directory.
	ErrIsDir = errors.New("gekkofs: is a directory")
	// ErrNotDir reports a directory operation on a file.
	ErrNotDir = errors.New("gekkofs: not a directory")
	// ErrNotEmpty reports removal of a non-empty directory.
	ErrNotEmpty = errors.New("gekkofs: directory not empty")
	// ErrInval reports an invalid argument.
	ErrInval = errors.New("gekkofs: invalid argument")
	// ErrNotSupported reports POSIX functionality GekkoFS deliberately
	// omits: rename/move, links, and permission management (paper
	// §III-A).
	ErrNotSupported = errors.New("gekkofs: operation not supported")
)

var errnoToErr = map[Errno]error{
	ErrnoNotExist: ErrNotExist,
	ErrnoExist:    ErrExist,
	ErrnoIsDir:    ErrIsDir,
	ErrnoNotDir:   ErrNotDir,
	ErrnoNotEmpty: ErrNotEmpty,
	ErrnoInval:    ErrInval,
}

// Err converts a wire code to its Go error; OK maps to nil.
func (e Errno) Err() error {
	if e == OK {
		return nil
	}
	if err, ok := errnoToErr[e]; ok {
		return err
	}
	return fmt.Errorf("gekkofs: errno %d", uint16(e))
}

// ErrnoOf maps a Go error to its wire code; nil maps to OK. Unknown
// errors map to ErrnoInval (daemons convert unexpected errors to
// rpc.RemoteError before this is consulted).
func ErrnoOf(err error) Errno {
	switch {
	case err == nil:
		return OK
	case errors.Is(err, ErrNotExist):
		return ErrnoNotExist
	case errors.Is(err, ErrExist):
		return ErrnoExist
	case errors.Is(err, ErrIsDir):
		return ErrnoIsDir
	case errors.Is(err, ErrNotDir):
		return ErrnoNotDir
	case errors.Is(err, ErrNotEmpty):
		return ErrnoNotEmpty
	default:
		return ErrnoInval
	}
}

// ChunkSpan names one contiguous byte range of one chunk inside a
// write/read RPC. Spans of a single RPC address chunks owned by the same
// daemon; their data is concatenated in span order inside the bulk
// region.
type ChunkSpan struct {
	// ID is the chunk.
	ID meta.ChunkID
	// Off is the offset inside the chunk file.
	Off int64
	// Len is the span length in bytes.
	Len int64
}

// EncodeSpans appends spans to an encoder: [u32 count] + triples.
func EncodeSpans(e *rpc.Enc, spans []ChunkSpan) {
	e.U32(uint32(len(spans)))
	for _, s := range spans {
		e.U64(uint64(s.ID)).I64(s.Off).I64(s.Len)
	}
}

// spanWireBytes is the encoded size of one span triple.
const spanWireBytes = 24

// DecodeSpans reads what EncodeSpans wrote. The claimed count is
// validated against the remaining buffer before any allocation, and
// spans with negative offsets or lengths are rejected — length fields on
// the wire must never size allocations unchecked.
func DecodeSpans(d *rpc.Dec) []ChunkSpan {
	n := d.U32()
	if d.Err() != nil {
		return nil
	}
	if int64(n)*spanWireBytes > int64(d.Remaining()) {
		d.Corrupt()
		return nil
	}
	spans := make([]ChunkSpan, 0, n)
	for i := uint32(0); i < n; i++ {
		s := ChunkSpan{
			ID:  meta.ChunkID(d.U64()),
			Off: d.I64(),
			Len: d.I64(),
		}
		if s.Off < 0 || s.Len < 0 {
			d.Corrupt()
			return nil
		}
		spans = append(spans, s)
	}
	return spans
}

// SpanBytes sums the lengths of spans (the expected bulk region size).
func SpanBytes(spans []ChunkSpan) int64 {
	var n int64
	for _, s := range spans {
		n += s.Len
	}
	return n
}

// ReadWantSize is the OpReadChunks request flag bit (a trailing u8 flags
// field after the span vector; absent means 0) asking the daemon to
// piggyback its current size view of the path onto the reply: a
// [u8 state][i64 size] pair after the per-span present-byte counts. It is
// what makes reads stat-free — the client learns the EOF clamp from the
// chunk RPC itself instead of a leading OpStat round trip. Only the reply
// of the path's metadata owner carries an authoritative state; other
// daemons answer ReadSizeNone. The reply extension is emitted only when
// the request sets this bit, so pre-version-3 clients keep receiving the
// exact reply shape they expect.
const ReadWantSize uint8 = 1 << 0

// ReadAtEpoch is the OpReadChunks request flag bit asking the daemon to
// serve the spans as of a pinned snapshot epoch: a [u64 epoch] follows
// the flags byte when set, and the daemon resolves each chunk through
// its retained pre-images so bytes written after the pin are invisible.
// The size view piggybacked by ReadWantSize is likewise resolved at the
// epoch.
const ReadAtEpoch uint8 = 1 << 1

// OpReadChunks size-view states (the u8 preceding the piggybacked size).
// A directory record produces no state: the daemon refuses the whole
// call with ErrnoIsDir instead.
const (
	// ReadSizeNone: this daemon holds no metadata record for the path.
	// From the path's metadata owner this means the file does not exist.
	ReadSizeNone uint8 = 0
	// ReadSizeFile: a regular-file record exists; its size follows.
	ReadSizeFile uint8 = 1
)

// WriteReplica is the OpWriteChunks request flag bit (a trailing u8
// flags field after the bulk-length prefix of the span vector; absent
// means 0) marking the write as a non-primary replica copy. The daemon
// stores it exactly like a primary write — the bit only feeds the
// ReplicaWrites counter, so replication overhead is observable per
// daemon without changing the storage path.
const WriteReplica uint8 = 1 << 0

// RemoveFileOnly is the OpRemoveMeta flag bit asking the daemon to refuse
// directories with ErrnoIsDir instead of deleting them. It lets a client
// unlink a regular file in a single RPC — no leading stat to find out
// whether the path is a directory — and fall back to the directory
// protocol only when the daemon says so.
const RemoveFileOnly uint8 = 1 << 0

// OpStat request flag bits (a trailing u8 after the path; absent means
// 0 — the exact pre-version-8 request shape).
const (
	// StatAtEpoch: a [u64 epoch] follows the flags byte and the daemon
	// resolves the record as of that snapshot epoch instead of live.
	StatAtEpoch uint8 = 1 << 0
	// StatWantVersions: the reply appends the record's full version
	// history after the resolved metadata blob — [u32 n] then, newest
	// first, [u64 epoch][u8 flags][25-byte payload when live]. The
	// vkv-style Versions accessor rides on this bit.
	StatWantVersions uint8 = 1 << 1
)

// OpSnapshot phases (the leading u8 of the request). The pin is
// two-phase and client-driven: reserve at every metadata owner to learn
// the cluster-maximum epoch, then commit that epoch everywhere. A
// daemon that fails reserve aborts the tag on the daemons that already
// took it.
const (
	// SnapReserve proposes tag; the reply carries the epoch this daemon
	// would pin ([u64 epoch]).
	SnapReserve uint8 = 1
	// SnapCommit finalizes tag at the cluster-agreed epoch
	// ([u64 epoch] follows the tag) and advances the daemon's write
	// epoch past it; the reply echoes the pinned epoch.
	SnapCommit uint8 = 2
	// SnapAbort discards a reservation; committed tags are untouched.
	SnapAbort uint8 = 3
)

// MaxSnapshotTag bounds a snapshot tag's length on the wire, keeping
// tag state keys and reply frames small.
const MaxSnapshotTag = 255

// ReadDir pagination. Each OpReadDir call returns at most a page of
// entries plus a continuation token (the last returned name; empty means
// the scan is exhausted), so a huge directory never has to fit in one
// response frame.
const (
	// DefaultReadDirPage is the page size used when a request asks for 0.
	DefaultReadDirPage = 4096
	// MaxReadDirPage caps the page size a daemon will honor, bounding the
	// response frame regardless of what the request claims.
	MaxReadDirPage = 1 << 16
)

// DaemonStats are one daemon's operation counters as carried by the
// OpStats reply. The struct doubles as the daemon's in-memory snapshot
// type (daemon.Stats is an alias) and the wire shape tooling decodes
// (gkfs-shell's stats command, tests).
type DaemonStats struct {
	// Creates, StatOps, Removes count metadata operations.
	Creates, StatOps, Removes uint64
	// SizeUpdates counts size merge/truncate operations.
	SizeUpdates uint64
	// WriteOps and ReadOps count chunk RPCs; WriteBytes and ReadBytes the
	// logical payloads they addressed.
	WriteOps, ReadOps     uint64
	WriteBytes, ReadBytes uint64
	// ReadSpans counts the chunk spans read RPCs carried (a zero-span
	// size probe adds none) and ReadBytesPushed the bulk bytes actually
	// pushed back after trimming trailing holes/EOF. Against a client's
	// logical read volume these expose the read path's efficiency: a
	// prefetch-heavy workload shows large spans per op, and a chunk-cache
	// hit moves no wire bytes at all, so cache hit rates appear as
	// logical reads outpacing ReadBytes (see gkfs-shell stats).
	ReadSpans, ReadBytesPushed uint64
	// ReadDirs counts directory scan pages served.
	ReadDirs uint64
	// BatchRPCs counts OpBatchMeta calls; BatchedOps the sub-operations
	// they carried. BatchedOps/BatchRPCs is the achieved batching factor —
	// the number of metadata ops amortized over one RPC and one WAL
	// append.
	BatchRPCs, BatchedOps uint64
	// FramesIn/FramesOut count transport frames the daemon decoded and
	// wrote; WireBytesIn/WireBytesOut the socket bytes they moved (bulk
	// bytes over the shared-memory segment are excluded — they never
	// touch a socket). VectoredWrites counts responses sent as
	// scatter-gather header+bulk pairs, ShmCalls requests that arrived
	// over the shared-memory doorbell. Together they expose the wire
	// tier: logical I/O volume versus WireBytes shows the zero-copy and
	// fast-path win directly.
	FramesIn, FramesOut       uint64
	WireBytesIn, WireBytesOut uint64
	VectoredWrites, ShmCalls  uint64
	// ReplicaWrites counts OpWriteChunks calls carrying the WriteReplica
	// flag — chunk copies stored on behalf of replication rather than
	// primary placement. WriteOps counts primaries and replicas alike, so
	// WriteOps−ReplicaWrites is the primary write load.
	ReplicaWrites uint64
	// SnapshotPins counts committed epoch pins (OpSnapshot commits) and
	// SnapshotDrops dropped tags. SnapshotReads counts epoch-pinned
	// reads served (stat/readdir/chunk reads carrying an epoch).
	// CowCopies and CowBytes count chunk pre-images preserved by
	// copy-on-write before a post-pin overwrite, and the bytes they
	// hold — the physical cost of keeping snapshots readable.
	SnapshotPins, SnapshotDrops, SnapshotReads uint64
	CowCopies, CowBytes                        uint64
}

// Add accumulates other's counters into st (per-cluster totals).
func (st *DaemonStats) Add(other DaemonStats) {
	st.Creates += other.Creates
	st.StatOps += other.StatOps
	st.Removes += other.Removes
	st.SizeUpdates += other.SizeUpdates
	st.WriteOps += other.WriteOps
	st.ReadOps += other.ReadOps
	st.WriteBytes += other.WriteBytes
	st.ReadBytes += other.ReadBytes
	st.ReadSpans += other.ReadSpans
	st.ReadBytesPushed += other.ReadBytesPushed
	st.ReadDirs += other.ReadDirs
	st.BatchRPCs += other.BatchRPCs
	st.BatchedOps += other.BatchedOps
	st.FramesIn += other.FramesIn
	st.FramesOut += other.FramesOut
	st.WireBytesIn += other.WireBytesIn
	st.WireBytesOut += other.WireBytesOut
	st.VectoredWrites += other.VectoredWrites
	st.ShmCalls += other.ShmCalls
	st.ReplicaWrites += other.ReplicaWrites
	st.SnapshotPins += other.SnapshotPins
	st.SnapshotDrops += other.SnapshotDrops
	st.SnapshotReads += other.SnapshotReads
	st.CowCopies += other.CowCopies
	st.CowBytes += other.CowBytes
}

// MetaRPCs sums the metadata-plane RPC counters.
func (st DaemonStats) MetaRPCs() uint64 {
	return st.Creates + st.StatOps + st.Removes + st.SizeUpdates + st.ReadDirs + st.BatchRPCs
}

// DaemonStatsWireLen is the encoded size of one DaemonStats (25 u64
// counters); daemons use it to size the OpStats reply.
const DaemonStatsWireLen = 25 * 8

// EncodeDaemonStats appends the OpStats reply body (25 u64 counters, in
// struct order).
func EncodeDaemonStats(e *rpc.Enc, st DaemonStats) {
	e.U64(st.Creates).U64(st.StatOps).U64(st.Removes).U64(st.SizeUpdates)
	e.U64(st.WriteOps).U64(st.ReadOps).U64(st.WriteBytes).U64(st.ReadBytes)
	e.U64(st.ReadSpans).U64(st.ReadBytesPushed)
	e.U64(st.ReadDirs).U64(st.BatchRPCs).U64(st.BatchedOps)
	e.U64(st.FramesIn).U64(st.FramesOut)
	e.U64(st.WireBytesIn).U64(st.WireBytesOut)
	e.U64(st.VectoredWrites).U64(st.ShmCalls)
	e.U64(st.ReplicaWrites)
	e.U64(st.SnapshotPins).U64(st.SnapshotDrops).U64(st.SnapshotReads)
	e.U64(st.CowCopies).U64(st.CowBytes)
}

// DecodeDaemonStats reads what EncodeDaemonStats wrote.
func DecodeDaemonStats(d *rpc.Dec) DaemonStats {
	var st DaemonStats
	st.Creates = d.U64()
	st.StatOps = d.U64()
	st.Removes = d.U64()
	st.SizeUpdates = d.U64()
	st.WriteOps = d.U64()
	st.ReadOps = d.U64()
	st.WriteBytes = d.U64()
	st.ReadBytes = d.U64()
	st.ReadSpans = d.U64()
	st.ReadBytesPushed = d.U64()
	st.ReadDirs = d.U64()
	st.BatchRPCs = d.U64()
	st.BatchedOps = d.U64()
	st.FramesIn = d.U64()
	st.FramesOut = d.U64()
	st.WireBytesIn = d.U64()
	st.WireBytesOut = d.U64()
	st.VectoredWrites = d.U64()
	st.ShmCalls = d.U64()
	st.ReplicaWrites = d.U64()
	st.SnapshotPins = d.U64()
	st.SnapshotDrops = d.U64()
	st.SnapshotReads = d.U64()
	st.CowCopies = d.U64()
	st.CowBytes = d.U64()
	return st
}

// Values returns the counters in wire order — the order
// EncodeDaemonStats writes and telemetry.DaemonStatNames names. The
// three orders must stay identical; tests zip them.
func (st DaemonStats) Values() []uint64 {
	return []uint64{
		st.Creates, st.StatOps, st.Removes, st.SizeUpdates,
		st.WriteOps, st.ReadOps, st.WriteBytes, st.ReadBytes,
		st.ReadSpans, st.ReadBytesPushed,
		st.ReadDirs, st.BatchRPCs, st.BatchedOps,
		st.FramesIn, st.FramesOut,
		st.WireBytesIn, st.WireBytesOut,
		st.VectoredWrites, st.ShmCalls,
		st.ReplicaWrites,
		st.SnapshotPins, st.SnapshotDrops, st.SnapshotReads,
		st.CowCopies, st.CowBytes,
	}
}

// OpHist is one named latency histogram inside a StatsExt block.
type OpHist struct {
	// Name is the metric name (see internal/telemetry/names.go).
	Name string
	// Hist is the histogram snapshot, mergeable across daemons.
	Hist telemetry.HistSnapshot
}

// StatsExt is the protocol-v7 extension of the OpStats reply: the
// daemon's latency histogram snapshots, appended after the fixed
// counters. It rides the existing stats RPC so percentile tables need
// no new operation and no side channel.
type StatsExt struct {
	// Ops holds the daemon's histograms, one per exported metric name.
	Ops []OpHist
}

// minOpHistWireBytes is the smallest encoded OpHist: an empty name
// prefix (1 varint byte), the u64 sum, and a zero bucket count.
const minOpHistWireBytes = 1 + 8 + 4

// EncodeHistSnapshot appends one histogram snapshot: the sum, then the
// occupied buckets as [u32 index][u64 count] pairs. Count is derived
// from the buckets on decode.
func EncodeHistSnapshot(e *rpc.Enc, h telemetry.HistSnapshot) {
	e.U64(h.Sum)
	e.U32(uint32(len(h.Buckets)))
	for _, b := range h.Buckets {
		e.U32(b.Index)
		e.U64(b.Count)
	}
}

// histBucketWireBytes is the encoded size of one bucket pair.
const histBucketWireBytes = 12

// DecodeHistSnapshot reads what EncodeHistSnapshot wrote, with the
// usual wrap-proof discipline: the claimed bucket count is validated
// against the remaining buffer before allocation, and indexes must be
// strictly ascending and inside the fixed layout.
func DecodeHistSnapshot(d *rpc.Dec) telemetry.HistSnapshot {
	sum := d.U64()
	n := d.U32()
	if d.Err() != nil {
		return telemetry.HistSnapshot{}
	}
	if int64(n)*histBucketWireBytes > int64(d.Remaining()) {
		d.Corrupt()
		return telemetry.HistSnapshot{}
	}
	buckets := make([]telemetry.HistBucket, 0, n)
	var count uint64
	last := int64(-1)
	for i := uint32(0); i < n; i++ {
		b := telemetry.HistBucket{Index: d.U32(), Count: d.U64()}
		if int64(b.Index) <= last || b.Index >= telemetry.HistBucketCount {
			d.Corrupt()
			return telemetry.HistSnapshot{}
		}
		last = int64(b.Index)
		buckets = append(buckets, b)
		count += b.Count
	}
	if d.Err() != nil {
		return telemetry.HistSnapshot{}
	}
	return telemetry.HistSnapshot{Count: count, Sum: sum, Buckets: buckets}
}

// EncodeStatsExt appends the histogram block to an OpStats reply.
func EncodeStatsExt(e *rpc.Enc, ext StatsExt) {
	e.U32(uint32(len(ext.Ops)))
	for _, oh := range ext.Ops {
		e.Str(oh.Name)
		EncodeHistSnapshot(e, oh.Hist)
	}
}

// DecodeStatsExt reads what EncodeStatsExt wrote. Callers gate on
// Remaining() — a reply without the block (an old daemon) simply
// yields no histograms.
func DecodeStatsExt(d *rpc.Dec) StatsExt {
	n := d.U32()
	if d.Err() != nil {
		return StatsExt{}
	}
	if int64(n)*minOpHistWireBytes > int64(d.Remaining()) {
		d.Corrupt()
		return StatsExt{}
	}
	ext := StatsExt{Ops: make([]OpHist, 0, n)}
	for i := uint32(0); i < n; i++ {
		oh := OpHist{Name: d.Str(), Hist: DecodeHistSnapshot(d)}
		if d.Err() != nil {
			return StatsExt{}
		}
		ext.Ops = append(ext.Ops, oh)
	}
	return ext
}

// MetaOpKind discriminates OpBatchMeta sub-operations.
type MetaOpKind uint8

// Batch sub-operation kinds.
const (
	// MetaOpCreate inserts a metadata record if absent (OpCreate).
	MetaOpCreate MetaOpKind = iota + 1
	// MetaOpStat fetches a record (OpStat).
	MetaOpStat
	// MetaOpRemove deletes a record, reporting its mode and size
	// (OpRemoveMeta).
	MetaOpRemove
	// MetaOpUpdateSize grows or truncates a file's size (OpUpdateSize).
	MetaOpUpdateSize
)

// MetaOp is one sub-operation of an OpBatchMeta request.
type MetaOp struct {
	// Kind selects the operation.
	Kind MetaOpKind
	// Path is the target path (canonical).
	Path string
	// Mode is the record mode for MetaOpCreate.
	Mode meta.Mode
	// Size is the size candidate (grow) or exact size (truncate) for
	// MetaOpUpdateSize.
	Size int64
	// Truncate selects set-exactly over grow for MetaOpUpdateSize.
	Truncate bool
	// FileOnly makes MetaOpRemove refuse directories (RemoveFileOnly).
	FileOnly bool
	// TimeNS is the ctime (create) or mtime (update-size) in UnixNano.
	TimeNS int64
}

// MetaResult is one sub-operation's outcome in an OpBatchMeta reply.
type MetaResult struct {
	// Errno is the per-op outcome; OK means the op-specific fields below
	// are populated.
	Errno Errno
	// Blob is the encoded metadata record (MetaOpStat only).
	Blob []byte
	// Mode and Size describe the removed record (MetaOpRemove only), so
	// the client knows whether chunk collection is needed.
	Mode meta.Mode
	Size int64
}

// minMetaOpBytes is the smallest possible encoded sub-op: kind byte plus a
// zero-length path prefix. Anything claiming more ops than the remaining
// bytes could hold at this size is lying about its count.
const minMetaOpBytes = 2

// MaxBatchOps caps the sub-ops one OpBatchMeta may carry. It bounds how
// long a daemon holds the KV stripe locks for one batch; clients shard
// larger vectors into multiple RPCs.
const MaxBatchOps = 1 << 16

// EncodeMetaOps appends a sub-op vector to an encoder: [u32 count] then
// per op a kind byte, the path, and kind-specific fields.
func EncodeMetaOps(e *rpc.Enc, ops []MetaOp) {
	e.U32(uint32(len(ops)))
	for i := range ops {
		EncodeMetaOp(e, &ops[i])
	}
}

// EncodeMetaOp appends one sub-op. Callers encoding a shard of a larger
// vector emit the count themselves and call this per op, avoiding a
// gathered copy of the shard.
func EncodeMetaOp(e *rpc.Enc, op *MetaOp) {
	e.U8(uint8(op.Kind)).Str(op.Path)
	switch op.Kind {
	case MetaOpCreate:
		e.U8(uint8(op.Mode)).I64(op.TimeNS)
	case MetaOpStat:
	case MetaOpRemove:
		var flags uint8
		if op.FileOnly {
			flags |= RemoveFileOnly
		}
		e.U8(flags)
	case MetaOpUpdateSize:
		var flags uint8
		if op.Truncate {
			flags |= 1
		}
		e.I64(op.Size).U8(flags).I64(op.TimeNS)
	}
}

// DecodeMetaOps reads what EncodeMetaOps wrote, with the same wrap-proof
// discipline as DecodeSpans: the claimed count is validated against the
// remaining buffer before any allocation, unknown kinds and negative
// sizes poison the decoder.
func DecodeMetaOps(d *rpc.Dec) []MetaOp {
	n := d.U32()
	if d.Err() != nil {
		return nil
	}
	if n > MaxBatchOps || int64(n)*minMetaOpBytes > int64(d.Remaining()) {
		d.Corrupt()
		return nil
	}
	ops := make([]MetaOp, 0, n)
	for i := uint32(0); i < n; i++ {
		op := MetaOp{Kind: MetaOpKind(d.U8()), Path: d.Str()}
		switch op.Kind {
		case MetaOpCreate:
			op.Mode = meta.Mode(d.U8())
			op.TimeNS = d.I64()
		case MetaOpStat:
		case MetaOpRemove:
			op.FileOnly = d.U8()&RemoveFileOnly != 0
		case MetaOpUpdateSize:
			op.Size = d.I64()
			op.Truncate = d.U8()&1 != 0
			op.TimeNS = d.I64()
			if op.Size < 0 {
				d.Corrupt()
				return nil
			}
		default:
			d.Corrupt()
			return nil
		}
		if d.Err() != nil {
			return nil
		}
		ops = append(ops, op)
	}
	return ops
}

// EncodeMetaResults appends the per-op outcome vector. ops must be the
// request vector the results answer — the reply shape of each result
// depends on its op's kind.
func EncodeMetaResults(e *rpc.Enc, ops []MetaOp, results []MetaResult) {
	e.U32(uint32(len(results)))
	for i, r := range results {
		e.U16(uint16(r.Errno))
		if r.Errno != OK {
			continue
		}
		switch ops[i].Kind {
		case MetaOpStat:
			e.Blob(r.Blob)
		case MetaOpRemove:
			e.U8(uint8(r.Mode)).I64(r.Size)
		}
	}
}

// DecodeMetaResults reads what EncodeMetaResults wrote, against the
// request vector the caller sent. A reply whose count disagrees with the
// request poisons the decoder.
func DecodeMetaResults(d *rpc.Dec, ops []MetaOp) []MetaResult {
	n := d.U32()
	if d.Err() != nil {
		return nil
	}
	if int(n) != len(ops) {
		d.Corrupt()
		return nil
	}
	results := make([]MetaResult, 0, n)
	for i := range ops {
		r := DecodeMetaResult(d, ops[i].Kind)
		if d.Err() != nil {
			return nil
		}
		results = append(results, r)
	}
	return results
}

// DecodeMetaResult reads one result. The shard-count preamble and the
// count check are the caller's job (see DecodeMetaResults); this is the
// per-op half for callers scattering a reply without a gathered shard.
func DecodeMetaResult(d *rpc.Dec, kind MetaOpKind) MetaResult {
	r := MetaResult{Errno: Errno(d.U16())}
	if r.Errno == OK {
		switch kind {
		case MetaOpStat:
			r.Blob = d.Blob()
		case MetaOpRemove:
			r.Mode = meta.Mode(d.U8())
			r.Size = d.I64()
		}
	}
	return r
}
