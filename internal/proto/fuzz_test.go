package proto

import (
	"testing"

	"repro/internal/rpc"
)

// The fuzz harnesses drive the two decoders that parse daemon-supplied
// byte counts with arbitrary frames. The properties under test are the
// wrap-proof discipline gkfs-vet's framebound analyzer enforces
// statically: no panic, no allocation larger than the frame that claimed
// it, errors always poison the decoder instead of fabricating values,
// and every accepted frame re-encodes to an identical decode
// (canonicalization).

// FuzzDecodeFrame throws hostile frames at the span decoder.
func FuzzDecodeFrame(f *testing.F) {
	e := rpc.NewEnc(32)
	EncodeSpans(e, []ChunkSpan{{ID: 1, Off: 2, Len: 3}, {ID: 9, Off: 0, Len: 1 << 20}})
	valid := e.Bytes()
	f.Add(append([]byte(nil), valid...))
	f.Add(append([]byte(nil), valid[:len(valid)-4]...))

	absurd := rpc.NewEnc(8)
	absurd.U32(1 << 30)
	f.Add(absurd.Bytes())

	negative := rpc.NewEnc(32)
	negative.U32(1)
	negative.U64(7).I64(-1).I64(4)
	f.Add(negative.Bytes())

	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := rpc.NewDec(data)
		spans := DecodeSpans(d)
		if int64(len(spans))*spanWireBytes > int64(len(data)) {
			t.Fatalf("decoded %d spans from a %d-byte frame", len(spans), len(data))
		}
		if d.Err() != nil {
			if spans != nil {
				t.Fatal("poisoned decode still returned spans")
			}
			return
		}
		for _, s := range spans {
			if s.Off < 0 || s.Len < 0 {
				t.Fatalf("negative span %+v survived decode", s)
			}
		}
		re := rpc.NewEnc(len(data))
		EncodeSpans(re, spans)
		rd := rpc.NewDec(re.Bytes())
		got := DecodeSpans(rd)
		if rd.Done() != nil || len(got) != len(spans) {
			t.Fatalf("re-encode of %d spans decoded to %d, err %v", len(spans), len(got), rd.Done())
		}
		for i := range got {
			if got[i] != spans[i] {
				t.Fatalf("span %d changed across re-encode: %+v != %+v", i, got[i], spans[i])
			}
		}
	})
}

// FuzzDecodeBatchMeta throws hostile frames at the batch sub-op decoder.
func FuzzDecodeBatchMeta(f *testing.F) {
	e := rpc.NewEnc(64)
	EncodeMetaOps(e, sampleMetaOps())
	valid := e.Bytes()
	f.Add(append([]byte(nil), valid...))
	f.Add(append([]byte(nil), valid[:len(valid)/2]...))

	absurd := rpc.NewEnc(8)
	absurd.U32(1 << 30)
	f.Add(absurd.Bytes())

	overCap := rpc.NewEnc(8)
	overCap.U32(MaxBatchOps + 1)
	f.Add(append(overCap.Bytes(), make([]byte, 64)...))

	badKind := rpc.NewEnc(16)
	badKind.U32(1).U8(200)
	badKind.Str("/x")
	f.Add(badKind.Bytes())

	negSize := rpc.NewEnc(32)
	negSize.U32(1).U8(uint8(MetaOpUpdateSize))
	negSize.Str("/x")
	negSize.I64(-5).U8(1).I64(0)
	f.Add(negSize.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		d := rpc.NewDec(data)
		ops := DecodeMetaOps(d)
		if len(ops) > MaxBatchOps {
			t.Fatalf("decoded %d ops, above MaxBatchOps", len(ops))
		}
		if d.Err() != nil {
			if ops != nil {
				t.Fatal("poisoned decode still returned ops")
			}
			return
		}
		for _, op := range ops {
			if op.Kind < MetaOpCreate || op.Kind > MetaOpUpdateSize {
				t.Fatalf("unknown kind %d survived decode", op.Kind)
			}
			if op.Kind == MetaOpUpdateSize && op.Size < 0 {
				t.Fatalf("negative size %d survived decode", op.Size)
			}
		}
		re := rpc.NewEnc(len(data))
		EncodeMetaOps(re, ops)
		rd := rpc.NewDec(re.Bytes())
		got := DecodeMetaOps(rd)
		if rd.Done() != nil || len(got) != len(ops) {
			t.Fatalf("re-encode of %d ops decoded to %d, err %v", len(ops), len(got), rd.Done())
		}
		for i := range got {
			if got[i] != ops[i] {
				t.Fatalf("op %d changed across re-encode: %+v != %+v", i, got[i], ops[i])
			}
		}
	})
}
