package proto

// Snapshot wire encodings shared by daemon and client: the version
// history that rides the OpStat StatWantVersions extension and the tag
// list the OpSnapshotList reply carries. Both follow the framebound
// discipline — counts are checked against the frame before allocating.

import (
	"repro/internal/meta"
	"repro/internal/rpc"
)

// versionWireMin is the smallest encoded version: epoch, flags and an
// empty payload prefix (a tombstone carries no metadata payload).
const versionWireMin = 8 + 1 + 1

// EncodeVersions appends a record's version history, newest first:
// [u32 n] then per version [u64 epoch][u8 flags][blob payload — the
// 25-byte Metadata record when live, empty for a tombstone].
func EncodeVersions(e *rpc.Enc, vs []meta.Version) {
	e.U32(uint32(len(vs)))
	for i := range vs {
		e.U64(vs[i].Epoch)
		if vs[i].Tombstone {
			e.U8(1).Blob(nil)
			continue
		}
		e.U8(0).Blob(vs[i].Meta.Encode())
	}
}

// DecodeVersions reads what EncodeVersions wrote. Counts above
// meta.MaxVersions or beyond what the frame can hold poison the
// decoder.
func DecodeVersions(d *rpc.Dec) []meta.Version {
	n := d.U32()
	if d.Err() != nil {
		return nil
	}
	if n > meta.MaxVersions || int(n)*versionWireMin > d.Remaining() {
		d.Corrupt()
		return nil
	}
	vs := make([]meta.Version, 0, n)
	for i := uint32(0); i < n; i++ {
		v := meta.Version{Epoch: d.U64()}
		flags := d.U8()
		payload := d.Blob()
		if d.Err() != nil {
			return nil
		}
		if flags > 1 {
			d.Corrupt()
			return nil
		}
		v.Tombstone = flags == 1
		if !v.Tombstone {
			md, err := meta.DecodeMetadata(payload)
			if err != nil {
				d.Corrupt()
				return nil
			}
			v.Meta = md
		} else if len(payload) != 0 {
			d.Corrupt()
			return nil
		}
		vs = append(vs, v)
	}
	return vs
}

// SnapshotEntry is one committed tag in an OpSnapshotList reply.
type SnapshotEntry struct {
	// Tag is the snapshot's cluster-wide name.
	Tag string
	// Epoch is the epoch the tag pinned.
	Epoch uint64
}

// minSnapshotEntryBytes is the smallest encoded entry: an empty tag's
// length prefix plus the epoch.
const minSnapshotEntryBytes = 1 + 8

// EncodeSnapshotList appends the committed tag list: [u32 n] then per
// entry [str tag][u64 epoch].
func EncodeSnapshotList(e *rpc.Enc, ents []SnapshotEntry) {
	e.U32(uint32(len(ents)))
	for i := range ents {
		e.Str(ents[i].Tag).U64(ents[i].Epoch)
	}
}

// DecodeSnapshotList reads what EncodeSnapshotList wrote, bounding the
// allocation by what the frame can actually hold.
func DecodeSnapshotList(d *rpc.Dec) []SnapshotEntry {
	n := d.U32()
	if d.Err() != nil {
		return nil
	}
	if int(n)*minSnapshotEntryBytes > d.Remaining() {
		d.Corrupt()
		return nil
	}
	ents := make([]SnapshotEntry, 0, n)
	for i := uint32(0); i < n; i++ {
		ent := SnapshotEntry{Tag: d.Str(), Epoch: d.U64()}
		if d.Err() != nil {
			return nil
		}
		if len(ent.Tag) == 0 || len(ent.Tag) > MaxSnapshotTag {
			d.Corrupt()
			return nil
		}
		ents = append(ents, ent)
	}
	return ents
}
