package gekkofs_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/gekkofs"
)

// Cross-mount behaviours: GekkoFS promises strong consistency for
// operations naming a specific file regardless of which client issues
// them, and eventual consistency only for directory listings.

func TestCrossMountVisibility(t *testing.T) {
	cl, fs1 := newCluster(t)
	fs2, err := cl.Mount()
	if err != nil {
		t.Fatal(err)
	}
	// A file created through one mount is immediately visible to stat,
	// open and read through another (synchronous, cache-less protocol).
	if err := fs1.WriteFile("/x", []byte("from-mount-1")); err != nil {
		t.Fatal(err)
	}
	got, err := fs2.ReadFile("/x")
	if err != nil || string(got) != "from-mount-1" {
		t.Fatalf("mount2 read = %q, %v", got, err)
	}
	// A remove through mount 2 is immediately final for mount 1.
	if err := fs2.Remove("/x"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs1.Stat("/x"); !errors.Is(err, gekkofs.ErrNotExist) {
		t.Fatalf("mount1 still sees removed file: %v", err)
	}
}

func TestCrossMountWriteReadInterleaving(t *testing.T) {
	cl, fs1 := newCluster(t)
	fs2, err := cl.Mount()
	if err != nil {
		t.Fatal(err)
	}
	f1, err := fs1.Create("/ping")
	if err != nil {
		t.Fatal(err)
	}
	defer f1.Close()
	f2, err := fs2.OpenFile("/ping", gekkofs.O_RDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()

	// Ping-pong: each side reads what the other last acknowledged.
	for round := 0; round < 10; round++ {
		msg := []byte(fmt.Sprintf("round-%d", round))
		if _, err := f1.WriteAt(msg, 0); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, len(msg))
		if _, err := f2.ReadAt(buf, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, msg) {
			t.Fatalf("round %d: read %q, want %q", round, buf, msg)
		}
	}
}

func TestManyMounts(t *testing.T) {
	cl, _ := newCluster(t)
	const mounts = 32
	var wg sync.WaitGroup
	for m := 0; m < mounts; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			fs, err := cl.Mount()
			if err != nil {
				t.Error(err)
				return
			}
			path := fmt.Sprintf("/m%d", m)
			if err := fs.WriteFile(path, []byte{byte(m)}); err != nil {
				t.Error(err)
				return
			}
			got, err := fs.ReadFile(path)
			if err != nil || len(got) != 1 || got[0] != byte(m) {
				t.Errorf("mount %d round trip: %v, %v", m, got, err)
			}
		}(m)
	}
	wg.Wait()
	fs, err := cl.Mount()
	if err != nil {
		t.Fatal(err)
	}
	ents, err := fs.ReadDir("/")
	if err != nil || len(ents) != mounts {
		t.Fatalf("root has %d entries, want %d (%v)", len(ents), mounts, err)
	}
}

func TestMixedMetadataAndDataLoad(t *testing.T) {
	// mdtest-style churn and IOR-style streaming at the same time — the
	// interference scenario burst buffers exist to absorb.
	cl, fs := newCluster(t)
	if err := fs.Mkdir("/churn"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // metadata churner
		defer wg.Done()
		m, err := cl.Mount()
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p := fmt.Sprintf("/churn/f%d", i%50)
			f, err := m.OpenFile(p, gekkofs.O_WRONLY|gekkofs.O_CREATE)
			if err != nil {
				t.Error(err)
				return
			}
			f.Close()
			if i%3 == 0 {
				if err := m.Remove(p); err != nil && !errors.Is(err, gekkofs.ErrNotExist) {
					t.Error(err)
					return
				}
			}
		}
	}()

	// Streaming writer+reader in the foreground.
	m2, err := cl.Mount()
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 256*1024)
	for i := range data {
		data[i] = byte(i * 31)
	}
	for round := 0; round < 5; round++ {
		if err := m2.WriteFile("/stream.dat", data); err != nil {
			t.Fatal(err)
		}
		got, err := m2.ReadFile("/stream.dat")
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("round %d stream corrupted (%d bytes, %v)", round, len(got), err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestDeepDirectoryTree(t *testing.T) {
	_, fs := newCluster(t)
	path := ""
	for d := 0; d < 24; d++ {
		path = fmt.Sprintf("%s/d%d", path, d)
	}
	if err := fs.MkdirAll(path); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(path+"/leaf", []byte("deep")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(path + "/leaf")
	if err != nil || string(got) != "deep" {
		t.Fatalf("deep leaf = %q, %v", got, err)
	}
	// Each level lists exactly its single child.
	cur := ""
	for d := 0; d < 24; d++ {
		parent := cur
		if parent == "" {
			parent = "/"
		}
		ents, err := fs.ReadDir(parent)
		if err != nil || len(ents) != 1 {
			t.Fatalf("level %d: %v, %v", d, ents, err)
		}
		cur = fmt.Sprintf("%s/d%d", cur, d)
	}
}

func TestWriteFileOverwrites(t *testing.T) {
	_, fs := newCluster(t)
	if err := fs.WriteFile("/w", bytes.Repeat([]byte{1}, 100000)); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/w", []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/w")
	if err != nil || string(got) != "tiny" {
		t.Fatalf("overwrite left %d bytes, %v", len(got), err)
	}
}

func TestStatDirectoriesReportZeroSize(t *testing.T) {
	_, fs := newCluster(t)
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/d/f", []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	info, err := fs.Stat("/d")
	if err != nil || !info.IsDir() || info.Size() != 0 {
		t.Fatalf("dir stat = %+v, %v", info, err)
	}
}
